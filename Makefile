# AcceSys build and CI entry points.
#
#   make ci       - what CI runs: lint + vet + race-enabled tests +
#                   example builds + a manifest sweep smoke run
#   make lint     - gofmt gate (fails listing unformatted files)
#   make test     - fast test pass
#   make race     - full test pass under the race detector (exercises
#                   the sweep worker pool with concurrent simulations)
#   make examples - compile every example and command
#   make smoke    - run a tiny manifest through `accesys sweep`
#   make shardsmoke - 3-shard fig4 plan -> run -> merge -> verify the
#                   merged cache warm-hits every row
#   make fleetsmoke - one-command fleet (2 workers) over the smoke
#                   manifest, then verify the merged cache is warm
#   make servesmoke - sweep-as-a-service daemon e2e: a real `accesys
#                   serve` process on an ephemeral port, driven over
#                   HTTP (submit -> poll -> rows, then a fully-warm
#                   re-submit), drained with SIGTERM
#   make exploresmoke - seeded small-budget `accesys explore` over the
#                   fig4-derived objective, run twice from fresh caches
#                   to verify byte-identical frontiers/traces, with the
#                   trace proving the screen pruned the space
#   make hetsmoke - heterogeneous farms: deterministic mixed-kind
#                   sweeps, per-tenant contention metrics, and the
#                   pareq band under -domains 4
#   make fuzz     - short native-fuzz pass over the manifest and shard
#                   plan parsers (FUZZTIME per target, default 10s)
#   make golden   - golden-row conformance suite (all nine experiments)
#   make bench    - one pass over the benchmark harness (short mode);
#                   refreshes the BENCH_*.json perf trajectories in
#                   place (ratcheted: committed values only improve)
#   make benchcheck - perf regression gate: fresh trajectory run into a
#                   scratch dir, compared against the committed
#                   BENCH_*.json baselines with a BENCH_TOL band
#   make cover    - coverage profile with a minimum total-coverage gate
#   make figures  - regenerate every paper artifact (parallel, cached)
#   make equiv    - timing-vs-analytic audit of every reproduced figure

GO ?= go

.PHONY: all build vet lint test race examples smoke shardsmoke fleetsmoke servesmoke exploresmoke parallelsmoke hetsmoke fuzz golden cover equiv ci bench benchcheck figures clean

# Minimum total statement coverage (percent) make cover enforces.
COVER_FLOOR ?= 75

# Per-target budget for make fuzz.
FUZZTIME ?= 10s

# Allowed fractional slowdown before make benchcheck fails (0.40 =
# fresh throughput may be up to 40% below the committed baseline —
# wide enough for shared-runner noise, tight enough to catch real
# hot-path regressions).
BENCH_TOL ?= 0.40

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

lint:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

# -short keeps this the fast pass: the golden suite and full-experiment
# determinism checks only run in their dedicated targets (golden, race).
test:
	$(GO) test -short ./...

race:
	$(GO) test -race ./...

# go test only compiles packages it tests; examples and commands have
# no test files, so CI builds them explicitly.
examples:
	$(GO) build ./examples/... ./cmd/...

smoke:
	$(GO) run ./cmd/accesys sweep -nocache -jobs 2 testdata/smoke.json

# Distributed-sweep smoke: partition fig4 into 3 shards, run each into
# its own cache directory, merge, and verify a sweep over the merged
# cache serves all 35 rows warm (zero cold simulations).
SHARDSMOKE_DIR := .shardsmoke
shardsmoke:
	@rm -rf $(SHARDSMOKE_DIR) && mkdir -p $(SHARDSMOKE_DIR)
	$(GO) run ./cmd/accesys shard plan -shards 3 testdata/fig4.json > $(SHARDSMOKE_DIR)/plan.json
	$(GO) run ./cmd/accesys shard run -shard 0/3 -dir $(SHARDSMOKE_DIR)/s0 testdata/fig4.json
	$(GO) run ./cmd/accesys shard run -shard 1/3 -dir $(SHARDSMOKE_DIR)/s1 testdata/fig4.json
	$(GO) run ./cmd/accesys shard run -shard 2/3 -dir $(SHARDSMOKE_DIR)/s2 testdata/fig4.json
	$(GO) run ./cmd/accesys shard merge -out $(SHARDSMOKE_DIR)/merged \
		$(SHARDSMOKE_DIR)/s0 $(SHARDSMOKE_DIR)/s1 $(SHARDSMOKE_DIR)/s2
	$(GO) run ./cmd/accesys sweep -cache $(SHARDSMOKE_DIR)/merged -v testdata/fig4.json \
		> $(SHARDSMOKE_DIR)/rows.txt 2> $(SHARDSMOKE_DIR)/verify.log
	@grep -q "35 hits, 0 misses" $(SHARDSMOKE_DIR)/verify.log || \
		{ echo "shardsmoke: merged cache not fully warm:"; cat $(SHARDSMOKE_DIR)/verify.log; exit 1; }
	@echo "shardsmoke: merged cache served all 35 rows warm"
	@rm -rf $(SHARDSMOKE_DIR)

# Fleet smoke: a cold multi-worker sweep as one command, verified by a
# fully-warm follow-up sweep over the merged cache.
FLEETSMOKE_DIR := .fleetsmoke
fleetsmoke:
	@rm -rf $(FLEETSMOKE_DIR)
	$(GO) run ./cmd/accesys fleet -workers 2 -out $(FLEETSMOKE_DIR) testdata/smoke.json
	$(GO) run ./cmd/accesys sweep -cache $(FLEETSMOKE_DIR) -v testdata/smoke.json \
		> $(FLEETSMOKE_DIR)/rows.txt 2> $(FLEETSMOKE_DIR)/verify.log
	@grep -q "4 hits, 0 misses" $(FLEETSMOKE_DIR)/verify.log || \
		{ echo "fleetsmoke: fleet cache not fully warm:"; cat $(FLEETSMOKE_DIR)/verify.log; exit 1; }
	@echo "fleetsmoke: fleet cache served all 4 rows warm"
	@rm -rf $(FLEETSMOKE_DIR)

# Serve smoke: the daemon e2e re-execs the test binary as a real
# `accesys serve` process and drives the submit/poll/rows lifecycle
# over HTTP, including the warm second submission and the SIGTERM
# drain.
servesmoke:
	$(GO) test -count=1 -run '^TestServeSmokeDaemon$$' ./cmd/accesys

# Explore smoke: the multi-fidelity search over the fig4-derived
# objective, twice from fresh caches — frontiers and traces must be
# byte-identical (the determinism contract), rank 1 must be the known
# optimum, and the trace must show the analytic screen pruned the
# timing rung to under half the space. A third run over the first
# cache must promote zero cold points.
EXPLORESMOKE_DIR := .exploresmoke
exploresmoke:
	@rm -rf $(EXPLORESMOKE_DIR) && mkdir -p $(EXPLORESMOKE_DIR)
	$(GO) run ./cmd/accesys explore -cache $(EXPLORESMOKE_DIR)/c1 \
		-trace $(EXPLORESMOKE_DIR)/t1.json testdata/explore_fig4.json \
		> $(EXPLORESMOKE_DIR)/f1.txt
	$(GO) run ./cmd/accesys explore -cache $(EXPLORESMOKE_DIR)/c2 \
		-trace $(EXPLORESMOKE_DIR)/t2.json testdata/explore_fig4.json \
		> $(EXPLORESMOKE_DIR)/f2.txt
	@cmp $(EXPLORESMOKE_DIR)/f1.txt $(EXPLORESMOKE_DIR)/f2.txt || \
		{ echo "exploresmoke: same-seed frontiers differ"; exit 1; }
	@cmp $(EXPLORESMOKE_DIR)/t1.json $(EXPLORESMOKE_DIR)/t2.json || \
		{ echo "exploresmoke: same-seed traces differ"; exit 1; }
	@grep -Eq '^ *1 +fig4-64-512 ' $(EXPLORESMOKE_DIR)/f1.txt || \
		{ echo "exploresmoke: rank 1 is not the known optimum:"; cat $(EXPLORESMOKE_DIR)/f1.txt; exit 1; }
	@cold=$$(awk -F': ' '/"cold_timing"/ {gsub(/,/, "", $$2); print $$2}' $(EXPLORESMOKE_DIR)/t1.json); \
		[ "$$cold" -gt 0 ] && [ "$$cold" -lt 18 ] || \
		{ echo "exploresmoke: cold-simulated $$cold of 35 points; screen not pruning"; exit 1; }
	$(GO) run ./cmd/accesys explore -cache $(EXPLORESMOKE_DIR)/c1 \
		-trace $(EXPLORESMOKE_DIR)/t3.json testdata/explore_fig4.json \
		> $(EXPLORESMOKE_DIR)/f3.txt
	@cmp $(EXPLORESMOKE_DIR)/f1.txt $(EXPLORESMOKE_DIR)/f3.txt || \
		{ echo "exploresmoke: warm re-run frontier differs"; exit 1; }
	@grep -q '"cold_timing": 0' $(EXPLORESMOKE_DIR)/t3.json || \
		{ echo "exploresmoke: warm re-run cold-simulated points"; exit 1; }
	@echo "exploresmoke: deterministic frontier, optimum found, warm re-run fully cached"
	@rm -rf $(EXPLORESMOKE_DIR)

# Heterogeneous smoke: the mixed-kind farm manifest swept twice from
# fresh caches must render byte-identical rows, the two-tenant
# contention sweep must surface per-tenant slowdown and fairness, and
# both manifests must stay inside the 5% pareq band under -domains 4.
HETSMOKE_DIR := .hetsmoke
hetsmoke:
	@rm -rf $(HETSMOKE_DIR) && mkdir -p $(HETSMOKE_DIR)
	$(GO) run ./cmd/accesys sweep -nocache -jobs 4 testdata/hetfarm.json > $(HETSMOKE_DIR)/farm1.txt
	$(GO) run ./cmd/accesys sweep -nocache -jobs 4 testdata/hetfarm.json > $(HETSMOKE_DIR)/farm2.txt
	@cmp $(HETSMOKE_DIR)/farm1.txt $(HETSMOKE_DIR)/farm2.txt || \
		{ echo "hetsmoke: fresh-cache hetfarm sweeps differ"; exit 1; }
	$(GO) run ./cmd/accesys sweep -nocache -jobs 4 testdata/tenants.json > $(HETSMOKE_DIR)/tenants.txt
	@grep -q "t0_slowdown" $(HETSMOKE_DIR)/tenants.txt && \
		grep -q "t1_slowdown" $(HETSMOKE_DIR)/tenants.txt && \
		grep -q "fairness" $(HETSMOKE_DIR)/tenants.txt || \
		{ echo "hetsmoke: per-tenant metrics missing:"; cat $(HETSMOKE_DIR)/tenants.txt; exit 1; }
	$(GO) run ./cmd/accesys pareq -nocache -domains 4 -tol 0.05 testdata/hetfarm.json testdata/tenants.json
	@echo "hetsmoke: deterministic rows, tenant metrics present, pareq within band"
	@rm -rf $(HETSMOKE_DIR)

# Parallel smoke: run the fig4 matrix partitioned into 4 tick-domains
# and audit every point's divergence against the sequential loop via
# the pareq command — the conservative barrier scheme must stay inside
# the pinned band at the timing-exact default quantum.
parallelsmoke:
	$(GO) run ./cmd/accesys pareq -nocache -domains 4 -tol 0.05 testdata/fig4.json

# Short native-fuzz pass: both parsers explore beyond their seed
# corpora for FUZZTIME each. Crashers land under testdata/fuzz/ in the
# failing package — commit them as regression seeds after fixing.
fuzz:
	$(GO) test -run '^$$' -fuzz '^FuzzManifestParse$$' -fuzztime $(FUZZTIME) ./internal/scenario
	$(GO) test -run '^$$' -fuzz '^FuzzPlanParse$$' -fuzztime $(FUZZTIME) ./internal/shard

# The golden suite re-runs all nine experiments and diffs their rows
# against testdata/golden/ (it skips itself under -short and -race, so
# this is its only CI entry point).
golden:
	$(GO) test -count=1 -run TestGolden ./internal/exp

cover:
	$(GO) test -short -coverprofile=cover.out ./...
	@total=$$($(GO) tool cover -func=cover.out | awk '/^total:/ {sub(/%/, "", $$3); print $$3}'); \
	echo "total coverage: $$total% (floor $(COVER_FLOOR)%)"; \
	awk -v t="$$total" -v floor="$(COVER_FLOOR)" 'BEGIN { exit (t+0 < floor+0) ? 1 : 0 }' || \
	{ echo "coverage $$total% below floor $(COVER_FLOOR)%"; exit 1; }

# Cross-backend equivalence audit of every reproduced figure (exit 1
# on divergence beyond each scenario's fail band).
equiv:
	$(GO) run ./cmd/accesys equiv fig2 fig3 fig4 fig5 fig6 tab4 fig7 fig8 fig9

ci: lint vet race examples smoke shardsmoke fleetsmoke servesmoke exploresmoke parallelsmoke hetsmoke fuzz golden bench benchcheck cover

bench:
	$(GO) test -short -bench=. -benchtime=1x -run '^$$' .

# Fresh trajectory run (3 samples, ratcheted to best) into a scratch
# directory, then compare against the committed baselines.
BENCHFRESH_DIR := .benchfresh
benchcheck:
	@rm -rf $(BENCHFRESH_DIR) && mkdir -p $(BENCHFRESH_DIR)
	BENCH_DIR=$(BENCHFRESH_DIR) $(GO) test -short -run '^$$' \
		-bench 'SimulatorThroughput|SweepThroughput|ShardMerge|ParallelSpeedup|Explore' \
		-benchtime=1x -count=3 .
	$(GO) run ./cmd/benchcheck -baseline . -fresh $(BENCHFRESH_DIR) -tol $(BENCH_TOL)
	@rm -rf $(BENCHFRESH_DIR)

figures: build
	$(GO) run ./cmd/accesys run -v

clean:
	$(GO) clean ./...
