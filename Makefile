# AcceSys build and CI entry points.
#
#   make ci      - what CI runs: vet + race-enabled tests
#   make test    - fast test pass
#   make race    - full test pass under the race detector (exercises
#                  the sweep worker pool with concurrent simulations)
#   make bench   - one pass over the benchmark harness
#   make figures - regenerate every paper artifact (parallel, cached)

GO ?= go

.PHONY: all build vet test race ci bench figures clean

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

ci: vet race

bench:
	$(GO) test -bench=. -benchtime=1x .

figures: build
	$(GO) run ./cmd/accesys -v

clean:
	$(GO) clean ./...
