# AcceSys build and CI entry points.
#
#   make ci       - what CI runs: lint + vet + race-enabled tests +
#                   example builds + a manifest sweep smoke run
#   make lint     - gofmt gate (fails listing unformatted files)
#   make test     - fast test pass
#   make race     - full test pass under the race detector (exercises
#                   the sweep worker pool with concurrent simulations)
#   make examples - compile every example and command
#   make smoke    - run a tiny manifest through `accesys sweep`
#   make bench    - one pass over the benchmark harness
#   make figures  - regenerate every paper artifact (parallel, cached)

GO ?= go

.PHONY: all build vet lint test race examples smoke ci bench figures clean

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

lint:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# go test only compiles packages it tests; examples and commands have
# no test files, so CI builds them explicitly.
examples:
	$(GO) build ./examples/... ./cmd/...

smoke:
	$(GO) run ./cmd/accesys sweep -nocache -jobs 2 testdata/smoke.json

ci: lint vet race examples smoke

bench:
	$(GO) test -bench=. -benchtime=1x .

figures: build
	$(GO) run ./cmd/accesys run -v

clean:
	$(GO) clean ./...
