# AcceSys build and CI entry points.
#
#   make ci       - what CI runs: lint + vet + race-enabled tests +
#                   example builds + a manifest sweep smoke run
#   make lint     - gofmt gate (fails listing unformatted files)
#   make test     - fast test pass
#   make race     - full test pass under the race detector (exercises
#                   the sweep worker pool with concurrent simulations)
#   make examples - compile every example and command
#   make smoke    - run a tiny manifest through `accesys sweep`
#   make golden   - golden-row conformance suite (all nine experiments)
#   make bench    - one pass over the benchmark harness (short mode)
#   make cover    - coverage profile with a minimum total-coverage gate
#   make figures  - regenerate every paper artifact (parallel, cached)
#   make equiv    - timing-vs-analytic audit of every reproduced figure

GO ?= go

.PHONY: all build vet lint test race examples smoke golden cover equiv ci bench figures clean

# Minimum total statement coverage (percent) make cover enforces.
COVER_FLOOR ?= 65

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

lint:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

# -short keeps this the fast pass: the golden suite and full-experiment
# determinism checks only run in their dedicated targets (golden, race).
test:
	$(GO) test -short ./...

race:
	$(GO) test -race ./...

# go test only compiles packages it tests; examples and commands have
# no test files, so CI builds them explicitly.
examples:
	$(GO) build ./examples/... ./cmd/...

smoke:
	$(GO) run ./cmd/accesys sweep -nocache -jobs 2 testdata/smoke.json

# The golden suite re-runs all nine experiments and diffs their rows
# against testdata/golden/ (it skips itself under -short and -race, so
# this is its only CI entry point).
golden:
	$(GO) test -count=1 -run TestGolden ./internal/exp

cover:
	$(GO) test -short -coverprofile=cover.out ./...
	@total=$$($(GO) tool cover -func=cover.out | awk '/^total:/ {sub(/%/, "", $$3); print $$3}'); \
	echo "total coverage: $$total% (floor $(COVER_FLOOR)%)"; \
	awk -v t="$$total" -v floor="$(COVER_FLOOR)" 'BEGIN { exit (t+0 < floor+0) ? 1 : 0 }' || \
	{ echo "coverage $$total% below floor $(COVER_FLOOR)%"; exit 1; }

# Cross-backend equivalence audit of every reproduced figure (exit 1
# on divergence beyond each scenario's fail band).
equiv:
	$(GO) run ./cmd/accesys equiv fig2 fig3 fig4 fig5 fig6 tab4 fig7 fig8 fig9

ci: lint vet race examples smoke golden bench cover

bench:
	$(GO) test -short -bench=. -benchtime=1x -run '^$$' .

figures: build
	$(GO) run ./cmd/accesys run -v

clean:
	$(GO) clean ./...
