// Package accesys_bench hosts the benchmark harness: one testing.B
// benchmark per table and figure of the paper's evaluation, each
// regenerating the artifact's rows at interactive scale (run the
// accesys command with -full for paper-scale matrices), plus ablation
// benchmarks for the design choices called out in DESIGN.md.
package accesys_bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"accesys/internal/analytic"
	"accesys/internal/bench"
	"accesys/internal/core"
	"accesys/internal/dram"
	"accesys/internal/driver"
	"accesys/internal/exp"
	"accesys/internal/explore"
	"accesys/internal/pcie"
	"accesys/internal/scenario"
	"accesys/internal/shard"
	"accesys/internal/sim"
	"accesys/internal/sweep"
	"accesys/internal/workload"
)

// recordBest merges records into the named trajectory file under
// bench.Dir, keeping the higher value wherever a (benchmark, metric)
// pair is already recorded. This is the perf ratchet: `make bench`
// can only improve the committed numbers, so a genuine regression
// shows up as a benchcheck failure instead of silently overwriting
// the baseline. To deliberately re-baseline (new host), delete the
// file and re-run `make bench`.
func recordBest(b *testing.B, name string, recs []bench.Record) {
	b.Helper()
	path := filepath.Join(bench.Dir("."), name)
	if old, err := bench.ReadFile(path); err == nil {
		prev := make(map[string]bench.Record, len(old))
		for _, r := range old {
			prev[r.Benchmark+"\x00"+r.Metric] = r
		}
		for i, r := range recs {
			if o, ok := prev[r.Benchmark+"\x00"+r.Metric]; ok && o.Value > r.Value {
				recs[i] = o
			}
		}
	}
	if err := bench.WriteFile(path, recs); err != nil {
		b.Logf("bench trajectory not recorded: %v", err)
	}
}

// run executes one experiment per benchmark iteration and reports the
// emitted rows so regressions in coverage are visible.
func run(b *testing.B, f func(exp.Options) *exp.Result) {
	b.Helper()
	opt := exp.Options{}
	var rows int
	for i := 0; i < b.N; i++ {
		res := f(opt)
		rows = len(res.Rows)
		if testing.Verbose() {
			res.Fprint(io.Discard)
		}
	}
	b.ReportMetric(float64(rows), "rows")
}

func BenchmarkFig2Roofline(b *testing.B)       { run(b, exp.Fig2Roofline) }
func BenchmarkFig3BandwidthSweep(b *testing.B) { run(b, exp.Fig3BandwidthSweep) }
func BenchmarkFig4PacketSize(b *testing.B)     { run(b, exp.Fig4PacketSize) }
func BenchmarkFig5MemoryLocation(b *testing.B) { run(b, exp.Fig5MemoryLocation) }
func BenchmarkFig6MemSweep(b *testing.B)       { run(b, exp.Fig6MemSweep) }
func BenchmarkTab4Translation(b *testing.B)    { run(b, exp.Tab4Translation) }
func BenchmarkFig7Transformer(b *testing.B)    { run(b, exp.Fig7Transformer) }
func BenchmarkFig8Split(b *testing.B)          { run(b, exp.Fig8Split) }
func BenchmarkFig9Model(b *testing.B)          { run(b, exp.Fig9Model) }

// timeGEMM is the shared single-run kernel for the ablations below.
func timeGEMM(b *testing.B, cfg core.Config, n int) sim.Tick {
	b.Helper()
	sys, drv := exp.BuildSystem(cfg)
	var d sim.Tick
	drv.RunGEMM(driver.GEMMSpec{M: n, N: n, K: n}, func(r driver.Result) { d = r.Job.Duration() })
	sys.Run()
	if d == 0 {
		b.Fatal("GEMM did not complete")
	}
	return d
}

// BenchmarkAblationLocalBuffer quantifies the local-buffer blocking
// choice: smaller buffers force B-panel reloads (more PCIe traffic).
func BenchmarkAblationLocalBuffer(b *testing.B) {
	for _, kb := range []int{128, 256, 1024} {
		b.Run(fmt.Sprintf("%dKiB", kb), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := core.PCIe8GB()
				cfg.Name = fmt.Sprintf("abl-buf-%d-%d", kb, i)
				cfg.Accel.LocalBufBytes = kb << 10
				d := timeGEMM(b, cfg, 256)
				b.ReportMetric(d.Seconds()*1e6, "sim_us")
			}
		})
	}
}

// BenchmarkAblationAccessMethod compares the three access methods on
// one workload.
func BenchmarkAblationAccessMethod(b *testing.B) {
	methods := []core.AccessMethod{core.DC, core.DM, core.DevMem}
	for _, m := range methods {
		b.Run(m.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				var cfg core.Config
				if m == core.DevMem {
					cfg = core.DevMemCfg()
				} else {
					cfg = core.PCIe8GB()
					cfg.Access = m
				}
				cfg.Name = fmt.Sprintf("abl-acc-%s-%d", m, i)
				d := timeGEMM(b, cfg, 256)
				b.ReportMetric(d.Seconds()*1e6, "sim_us")
			}
		})
	}
}

// BenchmarkAblationSMMU measures translation cost directly: SMMU on vs
// bypassed.
func BenchmarkAblationSMMU(b *testing.B) {
	for _, bypass := range []bool{false, true} {
		name := "translated"
		if bypass {
			name = "bypass"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := core.PCIe8GB()
				cfg.Name = fmt.Sprintf("abl-smmu-%v-%d", bypass, i)
				cfg.SMMU.Bypass = bypass
				d := timeGEMM(b, cfg, 256)
				b.ReportMetric(d.Seconds()*1e6, "sim_us")
			}
		})
	}
}

// BenchmarkAblationHostMemTech sweeps the banked DRAM technologies on
// the host side (Table III presets) behind a fast link.
func BenchmarkAblationHostMemTech(b *testing.B) {
	for _, spec := range []dram.Spec{dram.DDR3_1600, dram.DDR4_2400, dram.DDR5_3200, dram.HBM2_2000} {
		b.Run(spec.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := core.PCIe64GB()
				cfg.Name = fmt.Sprintf("abl-mem-%s-%d", spec.Name, i)
				cfg.HostSpec = spec
				d := timeGEMM(b, cfg, 256)
				b.ReportMetric(d.Seconds()*1e6, "sim_us")
			}
		})
	}
}

// BenchmarkSimulatorThroughput measures raw simulator speed: simulated
// events (and simulated ticks) per wall second on the pinned GEMM
// streaming workload (256^3 over PCIe-8GB). The wall clock covers
// only the event loop, not system construction, and the measurement
// lands in BENCH_sim.json — the main line of the perf trajectory.
func BenchmarkSimulatorThroughput(b *testing.B) {
	var events, ticks float64
	var wall time.Duration
	for i := 0; i < b.N; i++ {
		cfg := core.PCIe8GB()
		cfg.Name = fmt.Sprintf("throughput-%d", i)
		sys, drv := exp.BuildSystem(cfg)
		drv.RunGEMM(driver.GEMMSpec{M: 256, N: 256, K: 256}, func(driver.Result) {})
		start := time.Now()
		sys.Run()
		wall += time.Since(start)
		events = float64(sys.EQ.Executed)
		ticks = float64(sys.EQ.Now())
		b.ReportMetric(events, "events")
	}
	b.StopTimer()
	secs := wall.Seconds()
	if secs <= 0 {
		return
	}
	ctx := map[string]float64{"events_per_run": events, "gemm_n": 256}
	recordBest(b, "BENCH_sim.json", []bench.Record{
		{Benchmark: "SimulatorThroughput", Metric: "events_per_sec",
			Value: events * float64(b.N) / secs, Unit: "events/s", Context: ctx},
		{Benchmark: "SimulatorThroughput", Metric: "ticks_per_sec",
			Value: ticks * float64(b.N) / secs, Unit: "ticks/s", Context: ctx},
	})
}

// BenchmarkParallelSpeedup races the partitioned event loop against
// the sequential one on the pinned GEMM workload (256^3 over
// PCIe-8GB, four domains at the timing-exact quantum) and records the
// wall-clock ratio plus partitioned throughput in BENCH_parallel.json.
// The context pins the host's core count: the barrier scheme can only
// win wall-clock when the domains actually occupy separate cores, so
// a speedup below 1 on a single-core host measures coordination
// overhead, not a regression.
func BenchmarkParallelSpeedup(b *testing.B) {
	var seqWall, parWall time.Duration
	var parEvents float64
	for i := 0; i < b.N; i++ {
		seqCfg := core.PCIe8GB()
		seqCfg.Name = fmt.Sprintf("parbench-seq-%d", i)
		sys, drv := exp.BuildSystem(seqCfg)
		drv.RunGEMM(driver.GEMMSpec{M: 256, N: 256, K: 256}, func(driver.Result) {})
		start := time.Now()
		sys.Run()
		seqWall += time.Since(start)

		parCfg := core.PCIe8GB()
		parCfg.Name = fmt.Sprintf("parbench-par-%d", i)
		parCfg.Domains = 4
		psys, pdrv := exp.BuildSystem(parCfg)
		pdrv.RunGEMM(driver.GEMMSpec{M: 256, N: 256, K: 256}, func(driver.Result) {})
		start = time.Now()
		psys.Run()
		parWall += time.Since(start)
		parEvents = float64(psys.ExecutedEvents())
	}
	b.StopTimer()
	if seqWall <= 0 || parWall <= 0 {
		return
	}
	speedup := seqWall.Seconds() / parWall.Seconds()
	b.ReportMetric(speedup, "speedup")
	ctx := map[string]float64{
		"gemm_n": 256, "domains": 4,
		"host_cores": float64(runtime.NumCPU()),
	}
	recordBest(b, "BENCH_parallel.json", []bench.Record{
		{Benchmark: "ParallelSpeedup", Metric: "speedup_vs_seq",
			Value: speedup, Unit: "x", Context: ctx},
		{Benchmark: "ParallelSpeedup", Metric: "par_events_per_sec",
			Value: parEvents * float64(b.N) / parWall.Seconds(), Unit: "events/s", Context: ctx},
	})
}

// BenchmarkSweepThroughput measures end-to-end sweep speed over the
// fig4 matrix, cold (every point simulated) and warm (every point
// recalled from the on-disk cache), single-worker so the numbers are
// comparable across hosts. Both land in BENCH_sweep.json.
func BenchmarkSweepThroughput(b *testing.B) {
	sc := scenario.MustBuiltin("fig4")
	runs, err := sc.Expand(false)
	if err != nil {
		b.Fatal(err)
	}
	points := sc.Points(runs)
	var coldWall, warmWall time.Duration
	for i := 0; i < b.N; i++ {
		cache, err := sweep.Open(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		start := time.Now()
		eng := &sweep.Engine{Jobs: 1, Cache: cache}
		eng.Run(points)
		coldWall += time.Since(start)
		start = time.Now()
		warm := &sweep.Engine{Jobs: 1, Cache: cache}
		warm.Run(points)
		warmWall += time.Since(start)
		if _, misses, _ := cache.Stats(); misses != len(points) {
			b.Fatalf("warm pass missed: %d misses for %d points", misses, len(points))
		}
	}
	b.StopTimer()
	n := float64(len(points) * b.N)
	b.ReportMetric(float64(len(points)), "points")
	if coldWall <= 0 || warmWall <= 0 {
		return
	}
	ctx := map[string]float64{"points": float64(len(points)), "jobs": 1}
	recordBest(b, "BENCH_sweep.json", []bench.Record{
		{Benchmark: "SweepThroughput/cold", Metric: "points_per_sec",
			Value: n / coldWall.Seconds(), Unit: "points/s", Context: ctx},
		{Benchmark: "SweepThroughput/warm", Metric: "points_per_sec",
			Value: n / warmWall.Seconds(), Unit: "points/s", Context: ctx},
	})
}

// BenchmarkViTLayer measures one simulated encoder layer end to end.
func BenchmarkViTLayer(b *testing.B) {
	g := workload.ViT(workload.ViTBase)
	b.ReportMetric(float64(len(g.Items)), "ops/layer")
	for i := 0; i < b.N; i++ {
		res := exp.Fig9Model(exp.Options{})
		if len(res.Rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// BenchmarkScenarioExpand measures the declarative layer's
// cross-product expansion: the fixed cost every sweep, audit, and
// manifest run pays before the first simulation starts.
func BenchmarkScenarioExpand(b *testing.B) {
	sc := scenario.MustBuiltin("fig4")
	var runs int
	for i := 0; i < b.N; i++ {
		expanded, err := sc.Expand(false)
		if err != nil {
			b.Fatal(err)
		}
		runs = len(expanded)
	}
	b.ReportMetric(float64(runs), "points")
}

// BenchmarkWarmCacheSweep measures warm-cache sweep throughput: every
// point is served from the on-disk result cache, so this is the
// end-to-end cost of an `accesys sweep`/`accesys equiv` re-run over
// already-simulated design points.
func BenchmarkWarmCacheSweep(b *testing.B) {
	cache, err := sweep.Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	sc := scenario.MustBuiltin("fig4")
	runs, err := sc.Expand(false)
	if err != nil {
		b.Fatal(err)
	}
	points := sc.Points(runs)
	for _, p := range points {
		cache.Put(p.Fingerprint, sweep.Outcome{Dur: sim.Millisecond})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := &sweep.Engine{Jobs: 1, Cache: cache}
		outs := eng.Run(points)
		if outs[0].Dur != sim.Millisecond {
			b.Fatal("cache miss in warm sweep")
		}
	}
	b.ReportMetric(float64(len(points)), "points")
}

// BenchmarkCompositionSeries measures the analytic composition model's
// sampling cost — the closed-form backend the equivalence harness runs
// per design point.
func BenchmarkCompositionSeries(b *testing.B) {
	m := analytic.Composition{TOtherNs: 1000}
	c := analytic.Config{Name: "bench", GEMMNs: 5e6, NonGEMMs: 2e6}
	var sum float64
	for i := 0; i < b.N; i++ {
		s := m.Series(c, 1024)
		sum += s[len(s)-1]
	}
	if sum == 0 {
		b.Fatal("model returned zeros")
	}
}

// BenchmarkAnalyticBackend measures the full analytic evaluation of a
// built-in matrix: what `accesys equiv` pays on top of (cached) timing
// outcomes.
func BenchmarkAnalyticBackend(b *testing.B) {
	sc := scenario.MustBuiltin("fig4")
	runs, err := sc.Expand(false)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		for _, r := range runs {
			if _, err := sc.AnalyticMetrics(r); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(len(runs)), "points")
}

// BenchmarkShardMerge measures the distributed-sweep merge step:
// folding pre-seeded shard cache directories into one canonical cache
// (entry import + counter fold), reported as merged points per
// second. The measurement lands in BENCH_shard.json under the unified
// bench-record schema.
func BenchmarkShardMerge(b *testing.B) {
	const shards, perShard = 4, 250
	root := b.TempDir()
	srcs := make([]string, shards)
	salt := "bench-salt"
	for k := range srcs {
		srcs[k] = filepath.Join(root, fmt.Sprintf("src-%d", k))
		cache, err := sweep.Open(srcs[k])
		if err != nil {
			b.Fatal(err)
		}
		cache.Salt = salt
		var sum shard.Summary
		sum.Scenario = "bench"
		sum.Shard, sum.Of, sum.Salt, sum.Points = k, shards, salt, perShard
		for i := 0; i < perShard; i++ {
			cache.Put(fmt.Sprintf("bench-shard-%d-point-%d", k, i), sweep.Outcome{Dur: sim.Tick(i + 1)})
		}
		data, err := json.Marshal(sum)
		if err != nil {
			b.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(srcs[k], shard.SummaryName), data, 0o644); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	start := time.Now()
	merged := 0
	for i := 0; i < b.N; i++ {
		dst := filepath.Join(root, fmt.Sprintf("dst-%d", i))
		st, err := shard.Merge(dst, srcs)
		if err != nil {
			b.Fatal(err)
		}
		if st.Imported != shards*perShard {
			b.Fatalf("imported %d of %d entries", st.Imported, shards*perShard)
		}
		merged += st.Imported
	}
	elapsed := time.Since(start)
	pps := float64(merged) / elapsed.Seconds()
	b.ReportMetric(pps, "points/s")
	b.StopTimer()
	recordBest(b, "BENCH_shard.json", []bench.Record{
		// Tol: merge throughput is filesystem-bound and varies ~2x
		// run to run, so it carries its own wide tolerance band.
		{Benchmark: "ShardMerge", Metric: "points_per_sec", Value: pps, Unit: "points/s", Tol: 0.70,
			Context: map[string]float64{"shards": shards, "points": shards * perShard}},
	})
}

// Guard: the paper's link presets must keep their raw bandwidth.
func TestPaperLinkPresets(t *testing.T) {
	if got := pcie.LinkForGBps(2, 4).RawGBps(); got != 2 {
		t.Fatalf("PCIe-2GB preset = %v", got)
	}
	if got := pcie.LinkForGBps(64, 16).RawGBps(); got != 64 {
		t.Fatalf("PCIe-64GB preset = %v", got)
	}
}

// BenchmarkAblationCutThrough compares store-and-forward hops (the
// paper's model) against cut-through forwarding on a large-packet
// workload where S&F stalls bite hardest.
func BenchmarkAblationCutThrough(b *testing.B) {
	for _, cut := range []bool{false, true} {
		name := "store-and-forward"
		if cut {
			name = "cut-through"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := core.PCIe8GB()
				cfg.Name = fmt.Sprintf("abl-cut-%v-%d", cut, i)
				cfg.PCIe.CutThrough = cut
				cfg.Accel.HostDMA.BurstBytes = 4096
				d := timeGEMM(b, cfg, 256)
				b.ReportMetric(d.Seconds()*1e6, "sim_us")
			}
		})
	}
}

// BenchmarkExplore measures the search-driven front-end end to end:
// one seeded random search per iteration over a six-point matrix with
// a two-point budget, cold every time (fresh cache state per run), so
// the number covers analytic screening, ranking, budget admission,
// and the promoted timing simulations. Reported as points screened
// per second and promotions per second; the measurement lands in
// BENCH_explore.json under the unified bench-record schema.
func BenchmarkExplore(b *testing.B) {
	sc := func() *scenario.Scenario {
		return &scenario.Scenario{
			Name:     "bench-explore",
			Base:     "pcie8gb",
			Workload: scenario.Workload{Kind: "gemm", N: scenario.Size{Quick: 64, Full: 64}},
			Axes: []scenario.Axis{
				{Name: "lanes", Values: []scenario.Value{4.0, 8.0}},
				{Name: "packet_bytes", Values: []scenario.Value{64.0, 128.0, 256.0}},
			},
			Explore: &scenario.ExploreSpec{
				Objective: scenario.Objective{Metric: "exec", Goal: "min"},
				Strategy:  "random",
				Seed:      7,
				Budget:    "2",
			},
		}
	}
	b.ResetTimer()
	start := time.Now()
	screened, promoted := 0, 0
	for i := 0; i < b.N; i++ {
		rep, err := explore.Run(sc(), scenario.Options{Jobs: runtime.NumCPU()}, explore.Params{})
		if err != nil {
			b.Fatal(err)
		}
		sum := rep.Trace.Summary
		if sum.Screened == 0 || sum.Promoted == 0 {
			b.Fatalf("degenerate search: %+v", sum)
		}
		screened += sum.Screened
		promoted += sum.Promoted
	}
	elapsed := time.Since(start)
	sps := float64(screened) / elapsed.Seconds()
	pps := float64(promoted) / elapsed.Seconds()
	b.ReportMetric(sps, "screened/s")
	b.ReportMetric(pps, "promotions/s")
	b.StopTimer()
	recordBest(b, "BENCH_explore.json", []bench.Record{
		// Tol: each promotion is a full cold simulation, so the rates
		// inherit simulator wall-clock noise; wide band like ShardMerge.
		{Benchmark: "Explore", Metric: "screened_per_sec", Value: sps, Unit: "points/s", Tol: 0.60,
			Context: map[string]float64{"space": 6, "budget": 2}},
		{Benchmark: "Explore", Metric: "promotions_per_sec", Value: pps, Unit: "points/s", Tol: 0.60,
			Context: map[string]float64{"space": 6, "budget": 2}},
	})
}
