// Design-space exploration: sweep PCIe bandwidth x host memory
// technology for a GEMM workload, then recommend the cheapest
// configuration within a target of the best performance — the
// "balanced performance and cost" co-design flow the paper motivates.
//
//	go run ./examples/designsweep [-n 512] [-target 0.85]
package main

import (
	"flag"
	"fmt"

	"accesys/internal/core"
	"accesys/internal/dram"
	"accesys/internal/driver"
	"accesys/internal/exp"
	"accesys/internal/pcie"
	"accesys/internal/sim"
)

// relCost is a toy bill-of-materials weight per design point: wider
// and faster links and exotic memories cost more.
func relCost(gbps float64, spec dram.Spec) float64 {
	memCost := map[string]float64{
		"DDR3-1600": 1.0, "DDR4-2400": 1.3, "DDR5-3200": 1.8,
		"GDDR5-2000": 2.5, "HBM2-2000": 5.0, "LPDDR5-6400": 1.6,
	}
	return gbps/4 + memCost[spec.Name]
}

func main() {
	n := flag.Int("n", 512, "square GEMM size")
	target := flag.Float64("target", 0.85, "required fraction of best performance")
	flag.Parse()

	links := []float64{2, 8, 16, 32, 64}
	specs := []dram.Spec{dram.DDR3_1600, dram.DDR4_2400, dram.DDR5_3200, dram.GDDR5_2000, dram.HBM2_2000}

	type point struct {
		gbps float64
		spec dram.Spec
		time sim.Tick
		cost float64
	}
	var points []point
	var best sim.Tick

	fmt.Printf("sweeping %d design points (GEMM %d)...\n\n", len(links)*len(specs), *n)
	fmt.Printf("%-8s", "GB/s")
	for _, s := range specs {
		fmt.Printf("  %-12s", s.Name)
	}
	fmt.Println()

	for _, gbps := range links {
		fmt.Printf("%-8g", gbps)
		for _, spec := range specs {
			cfg := core.PCIe8GB()
			cfg.Name = fmt.Sprintf("dse-%g-%s", gbps, spec.Name)
			cfg.PCIe = pcie.Config{Link: pcie.LinkForGBps(gbps, 16)}
			cfg.HostSpec = spec
			sys, drv := exp.BuildSystem(cfg)
			var d sim.Tick
			drv.RunGEMM(driver.GEMMSpec{M: *n, N: *n, K: *n}, func(r driver.Result) {
				d = r.Job.Duration()
			})
			sys.Run()
			points = append(points, point{gbps, spec, d, relCost(gbps, spec)})
			if best == 0 || d < best {
				best = d
			}
			fmt.Printf("  %-12s", d)
		}
		fmt.Println()
	}

	// Recommend: cheapest point achieving target x best performance.
	var pick *point
	for i := range points {
		p := &points[i]
		if float64(best)/float64(p.time) >= *target {
			if pick == nil || p.cost < pick.cost {
				pick = p
			}
		}
	}
	fmt.Printf("\nbest time: %v\n", best)
	fmt.Printf("recommendation (>= %.0f%% of best, lowest cost): %g GB/s PCIe + %s (%v, cost %.1f)\n",
		*target*100, pick.gbps, pick.spec.Name, pick.time, pick.cost)
}
