// Design-space exploration: sweep PCIe bandwidth x host memory
// technology for a GEMM workload, then recommend the cheapest
// configuration within a target of the best performance — the
// "balanced performance and cost" co-design flow the paper motivates.
//
// The sweep fans out over the parallel sweep engine: all 25 design
// points run concurrently (-jobs bounds the pool) and -cache memoises
// finished points on disk so iterating on the cost model or target is
// instant.
//
//	go run ./examples/designsweep [-n 512] [-target 0.85] [-jobs N] [-cache dir]
package main

import (
	"flag"
	"fmt"
	"os"

	"accesys/internal/core"
	"accesys/internal/dram"
	"accesys/internal/driver"
	"accesys/internal/exp"
	"accesys/internal/pcie"
	"accesys/internal/sim"
	"accesys/internal/sweep"
)

// relCost is a toy bill-of-materials weight per design point: wider
// and faster links and exotic memories cost more.
func relCost(gbps float64, spec dram.Spec) float64 {
	memCost := map[string]float64{
		"DDR3-1600": 1.0, "DDR4-2400": 1.3, "DDR5-3200": 1.8,
		"GDDR5-2000": 2.5, "HBM2-2000": 5.0, "LPDDR5-6400": 1.6,
	}
	return gbps/4 + memCost[spec.Name]
}

func main() {
	n := flag.Int("n", 512, "square GEMM size")
	target := flag.Float64("target", 0.85, "required fraction of best performance")
	jobs := flag.Int("jobs", 0, "parallel simulation workers (0 = all CPUs)")
	cacheDir := flag.String("cache", "", "result cache directory (empty = no cache)")
	flag.Parse()

	links := []float64{2, 8, 16, 32, 64}
	specs := []dram.Spec{dram.DDR3_1600, dram.DDR4_2400, dram.DDR5_3200, dram.GDDR5_2000, dram.HBM2_2000}

	eng := &sweep.Engine{Jobs: *jobs}
	if *cacheDir != "" {
		cache, err := sweep.OpenSalted(*cacheDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "designsweep: cache disabled: %v\n", err)
		} else {
			eng.Cache = cache
		}
	}

	var points []sweep.Point
	for _, gbps := range links {
		for _, spec := range specs {
			cfg := core.PCIe8GB()
			cfg.Name = fmt.Sprintf("dse-%g-%s", gbps, spec.Name)
			cfg.PCIe = pcie.Config{Link: pcie.LinkForGBps(gbps, 16)}
			cfg.HostSpec = spec
			points = append(points, sweep.Point{
				Key:         cfg.Name,
				Fingerprint: sweep.Fingerprint("designsweep", cfg, *n),
				Run: func() sweep.Outcome {
					sys, drv := exp.BuildSystem(cfg)
					var d sim.Tick
					done := false
					drv.RunGEMM(driver.GEMMSpec{M: *n, N: *n, K: *n}, func(r driver.Result) {
						d = r.Job.Duration()
						done = true
					})
					sys.Run()
					if !done {
						panic(fmt.Sprintf("designsweep: GEMM under %s never completed", cfg.Name))
					}
					return sweep.Outcome{Dur: d}
				},
			})
		}
	}

	// Stream per-point progress to stderr so long sweeps don't look
	// hung; OnResult calls are serialised by the engine.
	done := 0
	eng.OnResult = func(r sweep.Result) {
		done++
		tag := ""
		if r.Cached {
			tag = " (cached)"
		}
		fmt.Fprintf(os.Stderr, "  [%2d/%d] %-22s %v%s\n", done, len(points), r.Key, r.Outcome.Dur, tag)
	}

	fmt.Printf("sweeping %d design points (GEMM %d)...\n\n", len(points), *n)
	outs := eng.Run(points)

	type point struct {
		gbps float64
		spec dram.Spec
		time sim.Tick
		cost float64
	}
	var results []point
	var best sim.Tick

	fmt.Printf("%-8s", "GB/s")
	for _, s := range specs {
		fmt.Printf("  %-12s", s.Name)
	}
	fmt.Println()
	for li, gbps := range links {
		fmt.Printf("%-8g", gbps)
		for si, spec := range specs {
			d := outs[li*len(specs)+si].Dur
			results = append(results, point{gbps, spec, d, relCost(gbps, spec)})
			if best == 0 || d < best {
				best = d
			}
			fmt.Printf("  %-12s", d)
		}
		fmt.Println()
	}

	// Recommend: cheapest point achieving target x best performance.
	var pick *point
	for i := range results {
		p := &results[i]
		if float64(best)/float64(p.time) >= *target {
			if pick == nil || p.cost < pick.cost {
				pick = p
			}
		}
	}
	fmt.Printf("\nbest time: %v\n", best)
	fmt.Printf("recommendation (>= %.0f%% of best, lowest cost): %g GB/s PCIe + %s (%v, cost %.1f)\n",
		*target*100, pick.gbps, pick.spec.Name, pick.time, pick.cost)
}
