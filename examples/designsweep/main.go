// Design-space exploration: sweep PCIe bandwidth x host memory
// technology for a GEMM workload, then recommend the cheapest
// configuration within a target of the best performance — the
// "balanced performance and cost" co-design flow the paper motivates.
//
// The matrix is declared programmatically through the scenario layer
// (the same model `accesys sweep` loads from JSON manifests) and fans
// out over the parallel sweep engine: all 25 design points run
// concurrently (-jobs bounds the pool) and -cache memoises finished
// points on disk so iterating on the cost model or target is instant.
//
//	go run ./examples/designsweep [-n 512] [-target 0.85] [-jobs N] [-cache dir]
package main

import (
	"flag"
	"fmt"
	"os"

	"accesys/internal/scenario"
	"accesys/internal/sim"
	"accesys/internal/sweep"
)

// relCost is a toy bill-of-materials weight per design point: wider
// and faster links and exotic memories cost more.
func relCost(gbps float64, spec string) float64 {
	memCost := map[string]float64{
		"DDR3-1600": 1.0, "DDR4-2400": 1.3, "DDR5-3200": 1.8,
		"GDDR5-2000": 2.5, "HBM2-2000": 5.0, "LPDDR5-6400": 1.6,
	}
	return gbps/4 + memCost[spec]
}

func main() {
	n := flag.Int("n", 512, "square GEMM size")
	target := flag.Float64("target", 0.85, "required fraction of best performance")
	jobs := flag.Int("jobs", 0, "parallel simulation workers (0 = all CPUs)")
	cacheDir := flag.String("cache", "", "result cache directory (empty = no cache)")
	flag.Parse()

	links := []float64{2, 8, 16, 32, 64}
	specs := []string{"DDR3-1600", "DDR4-2400", "DDR5-3200", "GDDR5-2000", "HBM2-2000"}

	// Declare the matrix: link bandwidth (outer) x host memory
	// technology (inner). This could equally be a JSON manifest run
	// with `accesys sweep`; here the cost model needs the raw
	// outcomes, so the sweep runs programmatically.
	linkVals := make([]scenario.Value, len(links))
	for i, gbps := range links {
		linkVals[i] = map[string]any{"gbps": gbps, "lanes": 16.0}
	}
	specVals := make([]scenario.Value, len(specs))
	for i, s := range specs {
		specVals[i] = s
	}
	sc := &scenario.Scenario{
		Name:     "dse",
		Title:    "PCIe bandwidth x host memory, GEMM %d",
		Base:     "pcie8gb",
		Workload: scenario.Workload{Kind: "gemm", N: scenario.Size{Quick: *n, Full: *n}},
		Axes: []scenario.Axis{
			{Name: "link", Values: linkVals},
			{Name: "hostmem", Values: specVals},
		},
	}
	runs, err := sc.Expand(false)
	if err != nil {
		fmt.Fprintln(os.Stderr, "designsweep:", err)
		os.Exit(1)
	}
	points := sc.Points(runs)

	eng := &sweep.Engine{Jobs: *jobs}
	if *cacheDir != "" {
		cache, err := sweep.OpenSalted(*cacheDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "designsweep: cache disabled: %v\n", err)
		} else {
			eng.Cache = cache
		}
	}
	// Stream per-point progress with an ETA to stderr so long sweeps
	// don't look hung.
	eng.OnResult = sweep.NewProgress(os.Stderr, "dse", len(points), eng.Workers(len(points))).Observe

	fmt.Printf("sweeping %d design points (GEMM %d)...\n\n", len(points), *n)
	outs := eng.Run(points)

	type point struct {
		gbps float64
		spec string
		time sim.Tick
		cost float64
	}
	var results []point
	var best sim.Tick

	fmt.Printf("%-8s", "GB/s")
	for _, s := range specs {
		fmt.Printf("  %-12s", s)
	}
	fmt.Println()
	for li, gbps := range links {
		fmt.Printf("%-8g", gbps)
		for si, spec := range specs {
			d := outs[li*len(specs)+si].Dur
			results = append(results, point{gbps, spec, d, relCost(gbps, spec)})
			if best == 0 || d < best {
				best = d
			}
			fmt.Printf("  %-12s", d)
		}
		fmt.Println()
	}

	// Recommend: cheapest point achieving target x best performance.
	var pick *point
	for i := range results {
		p := &results[i]
		if float64(best)/float64(p.time) >= *target {
			if pick == nil || p.cost < pick.cost {
				pick = p
			}
		}
	}
	fmt.Printf("\nbest time: %v\n", best)
	if pick == nil {
		fmt.Printf("no design point reaches %.0f%% of best performance (-target above 1 is unsatisfiable)\n",
			*target*100)
		return
	}
	fmt.Printf("recommendation (>= %.0f%% of best, lowest cost): %g GB/s PCIe + %s (%v, cost %.1f)\n",
		*target*100, pick.gbps, pick.spec, pick.time, pick.cost)
}
