// Packet-size tuning: sweep the accelerator's DMA request size on one
// link and print the convex curve of Fig. 4, highlighting the optimum.
//
//	go run ./examples/packetsize [-gbps 8] [-n 512]
package main

import (
	"flag"
	"fmt"

	"accesys/internal/core"
	"accesys/internal/driver"
	"accesys/internal/exp"
	"accesys/internal/pcie"
	"accesys/internal/sim"
)

func main() {
	gbps := flag.Float64("gbps", 8, "raw link bandwidth in GB/s")
	n := flag.Int("n", 512, "square GEMM size")
	flag.Parse()

	sizes := []int{64, 128, 256, 512, 1024, 2048, 4096}
	var times []sim.Tick
	var bestIdx int

	for i, sz := range sizes {
		cfg := core.PCIe8GB()
		cfg.Name = fmt.Sprintf("pkt-%d", sz)
		cfg.PCIe = pcie.Config{Link: pcie.LinkForGBps(*gbps, 16)}
		cfg.Accel.HostDMA.BurstBytes = sz
		sys, drv := exp.BuildSystem(cfg)
		var d sim.Tick
		drv.RunGEMM(driver.GEMMSpec{M: *n, N: *n, K: *n}, func(r driver.Result) {
			d = r.Job.Duration()
		})
		sys.Run()
		times = append(times, d)
		if d < times[bestIdx] {
			bestIdx = i
		}
	}

	fmt.Printf("link %g GB/s, GEMM %d — execution time vs request packet size:\n\n", *gbps, *n)
	for i, sz := range sizes {
		bar := ""
		for j := 0; j < int(60*float64(times[i])/float64(times[len(times)-1])); j++ {
			bar += "#"
		}
		marker := "  "
		if i == bestIdx {
			marker = "<-- optimum"
		}
		fmt.Printf("%5dB  %10v  %-60s %s\n", sz, times[i], bar, marker)
	}
	fmt.Printf("\n64B costs +%.0f%%, 4096B costs +%.0f%% versus the optimum (%dB).\n",
		100*(float64(times[0])/float64(times[bestIdx])-1),
		100*(float64(times[len(times)-1])/float64(times[bestIdx])-1),
		sizes[bestIdx])
}
