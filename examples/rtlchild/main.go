// RTL-style child-process accelerator: spawn cmd/safarm as a separate
// process serving the cycle-level systolic-array model over pipes —
// the AcceSys analogue of the paper's Verilator-compiled RTL running
// as a gem5 child process — and verify a tile computation through it.
//
//	go run ./examples/rtlchild
//
// The example invokes the Go toolchain to run the child; use
// "-child /path/to/safarm" with a prebuilt binary instead.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"os/exec"

	"accesys/internal/accel"
)

func main() {
	child := flag.String("child", "", "path to a prebuilt safarm binary (default: go run ./cmd/safarm)")
	flag.Parse()

	var cmd *exec.Cmd
	if *child != "" {
		cmd = exec.Command(*child, "-backend", "cycle")
	} else {
		cmd = exec.Command("go", "run", "./cmd/safarm", "-backend", "cycle")
	}
	stdin, err := cmd.StdinPipe()
	if err != nil {
		fail(err)
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		fail(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		fail(err)
	}

	backend := accel.NewRemoteBackend(stdout, stdin)
	fmt.Printf("child accelerator model: %s\n", backend.Name())

	const k = 64
	rng := rand.New(rand.NewSource(9))
	aPanel := make([]int32, k*accel.Dim)
	bPanel := make([]int32, k*accel.Dim)
	for i := range aPanel {
		aPanel[i] = int32(rng.Intn(9) - 4)
		bPanel[i] = int32(rng.Intn(9) - 4)
	}

	got := make([]int32, accel.Dim*accel.Dim)
	backend.ComputeTile(aPanel, bPanel, k, got)
	want := make([]int32, accel.Dim*accel.Dim)
	accel.TileModel{}.ComputeTile(aPanel, bPanel, k, want)

	for i := range want {
		if got[i] != want[i] {
			fail(fmt.Errorf("tile mismatch at %d: %d != %d", i, got[i], want[i]))
		}
	}
	fmt.Printf("16x16 tile over K=%d verified through the child process.\n", k)
	fmt.Printf("cycle-accurate tile latency: %d cycles (K + 2*Dim - 1)\n", backend.TileCycles(k))

	stdin.Close()
	if err := cmd.Wait(); err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "rtlchild:", err)
	os.Exit(1)
}
