// ViT inference study: run one Vision Transformer encoder layer on
// each of the paper's four system configurations (Section V.C) and
// report the GEMM / Non-GEMM split — the data behind Figs. 7 and 8.
//
//	go run ./examples/vit [-model base|large|huge]
package main

import (
	"flag"
	"fmt"
	"os"

	"accesys/internal/core"
	"accesys/internal/cpu"
	"accesys/internal/driver"
	"accesys/internal/exp"
	"accesys/internal/sim"
	"accesys/internal/workload"
)

func main() {
	model := flag.String("model", "base", "ViT variant: base, large, or huge")
	flag.Parse()

	var variant workload.ViTVariant
	switch *model {
	case "base":
		variant = workload.ViTBase
	case "large":
		variant = workload.ViTLarge
	case "huge":
		variant = workload.ViTHuge
	default:
		fmt.Fprintf(os.Stderr, "unknown model %q\n", *model)
		os.Exit(2)
	}
	g := workload.ViT(variant)
	fmt.Printf("%s: %d layers, %d ops/layer, %.1f GMACs total\n\n",
		variant.Name, g.Layers, len(g.Items), float64(g.TotalMACs())/1e9)

	configs := []core.Config{core.PCIe2GB(), core.PCIe8GB(), core.PCIe64GB(), core.DevMemCfg()}
	fmt.Printf("%-10s  %12s  %12s  %12s\n", "config", "gemm", "non-gemm", "total")
	var baseline sim.Tick
	for _, cfg := range configs {
		gemm, nonGemm := runLayer(cfg, g)
		total := (gemm + nonGemm) * sim.Tick(g.Layers)
		if baseline == 0 {
			baseline = total
		}
		fmt.Printf("%-10s  %12v  %12v  %12v  (%.2fx)\n",
			cfg.Name, gemm*sim.Tick(g.Layers), nonGemm*sim.Tick(g.Layers), total,
			float64(baseline)/float64(total))
	}
}

// runLayer simulates one encoder layer and returns the timed split.
func runLayer(cfg core.Config, g workload.Graph) (gemm, nonGemm sim.Tick) {
	sys, drv := exp.BuildSystem(cfg)
	var actBase uint64
	if sys.Cfg.Access == core.DevMem {
		actBase = drv.AllocDev(64 << 20)
	} else {
		actBase = drv.AllocHost(64 << 20)
	}

	idx := 0
	var step func()
	step = func() {
		if idx == len(g.Items) {
			return
		}
		it := g.Items[idx]
		idx++
		start := sys.Now()
		if it.GEMM != nil {
			j := it.GEMM
			drv.RunGEMM(driver.GEMMSpec{M: j.M, N: j.N, K: j.K}, func(driver.Result) {
				gemm += sys.Now() - start
				step()
			})
			return
		}
		op := it.CPU
		sys.CPU.Run([]cpu.Op{{
			Name:          op.Name,
			ReadAddr:      actBase,
			ReadBytes:     op.ReadBytes,
			WriteAddr:     actBase + 32<<20,
			WriteBytes:    op.WriteBytes,
			ComputeCycles: op.ComputeCycles,
		}}, func() {
			nonGemm += sys.Now() - start
			step()
		})
	}
	step()
	sys.Run()
	return gemm, nonGemm
}
