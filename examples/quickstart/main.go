// Quickstart: build the paper's Table II system, offload one GEMM to
// the MatrixFlow accelerator through the kernel driver, verify the
// result against a reference multiplication, and dump key statistics.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"math/rand"
	"os"

	"accesys/internal/accel"
	"accesys/internal/core"
	"accesys/internal/driver"
	"accesys/internal/exp"
)

func main() {
	// A complete system: 1 GHz CPU cluster, DDR4 host memory behind a
	// 2 MiB LLC, an 8 GB/s PCIe link, SMMU, IOCache, and the 16x16
	// systolic-array accelerator.
	cfg := core.PCIe8GB()
	cfg.Functional = true // carry real data end to end
	sys, drv := exp.BuildSystem(cfg)

	// Random operands for C = A x B with M = N = K = 128.
	const n = 128
	rng := rand.New(rand.NewSource(1))
	a := make([]int32, n*n)
	b := make([]int32, n*n)
	for i := range a {
		a[i] = int32(rng.Intn(17) - 8)
		b[i] = int32(rng.Intn(17) - 8)
	}

	// The driver stages packed operands in host memory, maps them into
	// the device's IOVA space via SMMU page tables, programs the CSRs
	// over PCIe, and rings the doorbell.
	var res driver.Result
	drv.RunGEMM(driver.GEMMSpec{M: n, N: n, K: n, A: a, B: b}, func(r driver.Result) {
		res = r
	})
	sys.Run()

	want := accel.MatMulRef(a, b, n, n, n)
	for i := range want {
		if res.C[i] != want[i] {
			fmt.Fprintf(os.Stderr, "MISMATCH at %d: %d != %d\n", i, res.C[i], want[i])
			os.Exit(1)
		}
	}

	fmt.Printf("GEMM %dx%dx%d verified against reference.\n", n, n, n)
	fmt.Printf("  simulated time:   %v\n", res.Job.Duration())
	fmt.Printf("  tiles computed:   %d\n", res.Job.Tiles)
	fmt.Printf("  bytes streamed:   %d in / %d out\n", res.Job.BytesIn, res.Job.BytesOut)
	fmt.Printf("  SMMU pages:       %d\n", res.PagesMapped)
	fmt.Printf("  array busy:       %v (%.0f%% of job)\n", res.Job.ComputeBusy,
		100*float64(res.Job.ComputeBusy)/float64(res.Job.Duration()))

	for _, stat := range []string{
		"PCIe-8GB.smmu.translations",
		"PCIe-8GB.smmu.ptws",
		"PCIe-8GB.iocache.hit_rate",
		"PCIe-8GB.hostmem.row_hit_rate",
		"PCIe-8GB.pcie.rc.tlps_up",
	} {
		fmt.Printf("  %-34s %.3f\n", stat, sys.Stats.Lookup(stat).Value())
	}
}
