module accesys

go 1.24
