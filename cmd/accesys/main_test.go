package main

// End-to-end tests of the accesys subcommand dispatch: flag parsing,
// exit codes on bad input, CSV output, and the equivalence audit's
// pass/fail exit semantics. Everything runs in-process through app, so
// the tests assert on the same code paths main executes.

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// testApp runs the command in-process and returns (exit code, stdout,
// stderr).
func testApp(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	a := &app{stdout: &stdout, stderr: &stderr}
	code := a.main(args)
	return code, stdout.String(), stderr.String()
}

// miniManifest is a two-point GEMM matrix small enough to simulate in
// milliseconds.
const miniManifest = `{
  "name": "mini",
  "title": "mini sweep",
  "base": "pcie8gb",
  "workload": {"kind": "gemm", "n": 64},
  "axes": [{"axis": "lanes", "values": [4, 8]}]
}`

func writeManifest(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "mini.json")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestListOutputsExperimentIDs(t *testing.T) {
	code, out, _ := testApp(t, "list")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, id := range []string{"fig2", "tab4", "fig9"} {
		if !strings.Contains(out, id) {
			t.Fatalf("list output missing %s:\n%s", id, out)
		}
	}
}

func TestListRejectsArguments(t *testing.T) {
	if code, _, _ := testApp(t, "list", "extra"); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

func TestRunUnknownExperimentFails(t *testing.T) {
	code, _, errOut := testApp(t, "run", "-nocache", "nope")
	if code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(errOut, "unknown experiment") {
		t.Fatalf("stderr missing diagnosis:\n%s", errOut)
	}
}

func TestRunBadFlagFails(t *testing.T) {
	if code, _, _ := testApp(t, "run", "-definitely-not-a-flag"); code != 2 {
		t.Fatal("bad flag should exit 2")
	}
}

func TestSweepRequiresManifest(t *testing.T) {
	code, _, errOut := testApp(t, "sweep")
	if code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(errOut, "usage:") {
		t.Fatalf("no usage on stderr:\n%s", errOut)
	}
}

func TestSweepBadManifestFails(t *testing.T) {
	path := writeManifest(t, `{"name": "bad", "workload": {"kind": "gemm", "n": 64}, "axes": [{"axis": "nope", "values": [1]}]}`)
	code, _, errOut := testApp(t, "sweep", "-nocache", path)
	if code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(errOut, "unknown axis") {
		t.Fatalf("stderr missing validation error:\n%s", errOut)
	}
}

func TestSweepMissingManifestFileFails(t *testing.T) {
	if code, _, _ := testApp(t, "sweep", "-nocache", "no/such/file.json"); code != 2 {
		t.Fatal("missing manifest should exit 2")
	}
}

func TestSweepRunsManifestAndWritesCSV(t *testing.T) {
	manifest := writeManifest(t, miniManifest)
	csvPath := filepath.Join(t.TempDir(), "out.csv")
	code, out, errOut := testApp(t, "sweep", "-nocache", "-jobs", "2", "-csv", csvPath, manifest)
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, errOut)
	}
	if !strings.Contains(out, "mini sweep") {
		t.Fatalf("table missing title:\n%s", out)
	}
	data, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 3 { // header + two points
		t.Fatalf("CSV rows = %d, want 3:\n%s", len(lines), data)
	}
	if !strings.HasPrefix(lines[0], "point,exec") {
		t.Fatalf("CSV header = %q", lines[0])
	}
}

func TestSweepCSVNeedsSingleManifest(t *testing.T) {
	manifest := writeManifest(t, miniManifest)
	code, _, _ := testApp(t, "sweep", "-nocache", "-csv", "x.csv", manifest, manifest)
	if code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

func TestEquivRequiresTargets(t *testing.T) {
	if code, _, _ := testApp(t, "equiv"); code != 2 {
		t.Fatal("equiv without targets should exit 2")
	}
}

func TestEquivRejectsBadTolerances(t *testing.T) {
	manifest := writeManifest(t, miniManifest)
	if code, _, _ := testApp(t, "equiv", "-nocache", "-tol", "0.1", "-warn", "0.5", manifest); code != 2 {
		t.Fatal("warn > tol should exit 2")
	}
}

func TestEquivUnknownTargetFails(t *testing.T) {
	code, _, errOut := testApp(t, "equiv", "-nocache", "not-a-figure")
	if code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(errOut, "neither a built-in experiment nor a loadable manifest") {
		t.Fatalf("stderr missing diagnosis:\n%s", errOut)
	}
}

func TestEquivPassesWithinTolerance(t *testing.T) {
	manifest := writeManifest(t, miniManifest)
	code, out, errOut := testApp(t, "equiv", "-nocache", manifest)
	if code != 0 {
		t.Fatalf("exit %d, stdout:\n%s\nstderr:\n%s", code, out, errOut)
	}
	if !strings.Contains(out, "timing vs analytic divergence") {
		t.Fatalf("no divergence table:\n%s", out)
	}
}

func TestEquivFailsOnInjectedDivergence(t *testing.T) {
	// A vanishing tolerance turns ordinary model error into failures —
	// the injected-divergence path of the acceptance criteria.
	manifest := writeManifest(t, miniManifest)
	code, out, _ := testApp(t, "equiv", "-nocache", "-tol", "0.000001", "-warn", "0.0000005", manifest)
	if code != 1 {
		t.Fatalf("exit %d, want 1:\n%s", code, out)
	}
	if !strings.Contains(out, "fail") {
		t.Fatalf("no failing rows reported:\n%s", out)
	}
}

func TestEquivJSONReport(t *testing.T) {
	manifest := writeManifest(t, miniManifest)
	code, out, errOut := testApp(t, "equiv", "-nocache", "-json", manifest)
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, errOut)
	}
	var reports []struct {
		Scenario    string `json:"scenario"`
		Comparisons []struct {
			Metric string `json:"metric"`
			Status string `json:"status"`
		} `json:"comparisons"`
	}
	if err := json.Unmarshal([]byte(out), &reports); err != nil {
		t.Fatalf("not valid JSON: %v\n%s", err, out)
	}
	if len(reports) != 1 || reports[0].Scenario != "mini" {
		t.Fatalf("unexpected reports: %+v", reports)
	}
	if len(reports[0].Comparisons) != 2 {
		t.Fatalf("comparisons = %d, want 2", len(reports[0].Comparisons))
	}
}

func TestEquivUsesWarmCache(t *testing.T) {
	manifest := writeManifest(t, miniManifest)
	cacheDir := t.TempDir()
	if code, _, errOut := testApp(t, "sweep", "-cache", cacheDir, manifest); code != 0 {
		t.Fatalf("seeding sweep failed: %s", errOut)
	}
	code, _, errOut := testApp(t, "equiv", "-cache", cacheDir, "-v", manifest)
	if code != 0 {
		t.Fatalf("equiv exit %d: %s", code, errOut)
	}
	if !strings.Contains(errOut, "2 hits") {
		t.Fatalf("warm cache not used:\n%s", errOut)
	}
}

func TestCachestatsOnFreshDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")
	code, out, _ := testApp(t, "cachestats", "-cache", dir)
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, want := range []string{"entries: 0", "hits:    0"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestCachestatsGCReports(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")
	code, out, _ := testApp(t, "cachestats", "-cache", dir, "-gc")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "gc: scanned 0 entries") {
		t.Fatalf("no gc report:\n%s", out)
	}
}

func TestCachestatsRejectsArgs(t *testing.T) {
	if code, _, _ := testApp(t, "cachestats", "stray"); code != 2 {
		t.Fatal("stray arg should exit 2")
	}
}

func TestHelpFlagExitsZero(t *testing.T) {
	// flag.ExitOnError historically exited 0 on -h; the in-process
	// FlagSets must preserve that for scripts probing subcommand usage.
	for _, cmd := range []string{"run", "sweep", "equiv", "cachestats"} {
		code, _, errOut := testApp(t, cmd, "-h")
		if code != 0 {
			t.Fatalf("%s -h exit %d, want 0", cmd, code)
		}
		if !strings.Contains(errOut, "usage: accesys "+cmd) {
			t.Fatalf("%s -h printed no usage:\n%s", cmd, errOut)
		}
	}
}

func TestHelpExitsUsage(t *testing.T) {
	code, _, errOut := testApp(t, "help")
	if code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(errOut, "run|sweep|equiv|explore|pareq|shard|fleet|serve|cachestats|list") {
		t.Fatalf("help missing subcommands:\n%s", errOut)
	}
}

// TestSweepWritesProfiles pins the app-layer profiling flags: a sweep
// with -cpuprofile/-memprofile must leave non-empty pprof files.
func TestSweepWritesProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.out")
	mem := filepath.Join(dir, "mem.out")
	manifest := writeManifest(t, miniManifest)
	code, _, stderr := testApp(t, "sweep", "-nocache", "-cpuprofile", cpu, "-memprofile", mem, manifest)
	if code != exitOK {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile missing: %v", err)
		}
		if st.Size() == 0 {
			t.Fatalf("profile %s is empty", p)
		}
	}
}

// TestRunBadProfilePathFails pins the error path: an unwritable
// profile destination is a usage error, not a silent no-op.
func TestRunBadProfilePathFails(t *testing.T) {
	code, _, stderr := testApp(t, "run", "-nocache", "-cpuprofile", filepath.Join(t.TempDir(), "no", "such", "dir", "p.out"), "fig2")
	if code != usageErr {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
}
