// Command accesys regenerates the paper's evaluation artifacts, runs
// manifest-driven sweeps, and audits timing-vs-analytic equivalence.
//
// Usage:
//
//	accesys run [-full] [-v] [-jobs N] [-cache dir] [-nocache] [experiment ...]
//	accesys sweep [-full] [-v] [-jobs N] [-cache dir] [-nocache] [-csv file] manifest.json ...
//	accesys equiv [-full] [-v] [-jobs N] [-cache dir] [-nocache] [-tol f] [-warn f] [-json] manifest.json|experiment ...
//	accesys explore [-full] [-v] [-jobs N] [-cache dir] [-nocache] [-strategy name] [-seed N] [-budget N|dur] [-trace file] [-csv file] manifest.json
//	accesys pareq [-full] [-v] [-jobs N] [-cache dir] [-nocache] [-domains N] [-quantum d] [-tol f] manifest.json|experiment ...
//	accesys shard plan [-full] [-profile DIR] -shards N manifest.json
//	accesys shard run [-full] [-v] [-jobs N] [-plan FILE] -shard k/N -dir DIR manifest.json
//	accesys shard merge -out DIR sharddir ...
//	accesys fleet [-full] [-v] [-jobs N] [-workers N | -fleet spec.json] [-out DIR] [-work DIR] manifest.json
//	accesys serve [-addr host:port] [-cache dir] [-jobs N] [-concurrency N] [-queue N] [-quota N] [-fleet spec.json] [-gcinterval d] [-v]
//	accesys cachestats [-cache dir] [-gc] [-maxage d] [-maxentries n]
//	accesys list
//
// Invoking accesys without a subcommand behaves like `accesys run`
// (the historical interface), so `accesys -full fig4` keeps working.
//
// run executes built-in experiments in paper order (all of them by
// default). Experiment ids: fig2 fig3 fig4 fig5 fig6 tab4 fig7 fig8
// fig9.
//
// sweep loads declarative scenario manifests (JSON; see README.md
// "Manifest-driven sweeps" for the schema) and runs their matrices —
// new scenario matrices need no new Go. A manifest encoding of a
// built-in matrix emits rows byte-identical to the built-in
// experiment, because both reach the same renderer.
//
// equiv is the cross-backend equivalence harness: it runs the same
// expanded points through the timing simulation and the closed-form
// analytic models (parameterized from the same configuration) and
// reports per-point relative divergence against tolerance bands
// (pass / warn / fail). Arguments are manifests or built-in
// experiment ids; warm cache outcomes satisfy the timing side without
// re-simulating. Exit status 1 when any point diverges beyond the
// fail band. -json emits machine-readable reports instead of tables.
//
// explore is the search-driven front-end over a manifest's axis
// space: instead of sweeping the exhaustive cross product, it runs
// the manifest's declared optimization (an `explore` stanza with an
// objective, constraints, strategy, seed, and budget), screening
// candidate generations through the ~free analytic backend and
// promoting only the promising fraction to timing simulation. The
// ranked frontier prints as a table (plus -csv), and -trace records
// every generation — candidate, fidelity, objective, promoted — as
// JSON. Searches are deterministic per (manifest, seed, budget) and
// compose with the warm cache: re-exploring promotes the same points
// and simulates none of them cold. See README.md "Design-space
// exploration" for the stanza schema.
//
// pareq is the intra-point parallelism audit: it runs the same matrix
// through the sequential event loop and through a partitioned
// (-domains N) build — N concurrent tick-domains under conservative
// barrier synchronization — and reports per-point relative divergence
// of the primary duration. Exit status 1 when any point diverges
// beyond -tol. run/sweep/equiv also accept -domains/-quantum to
// execute their matrices on partitioned builds directly; -domains 1
// (the default) is the sequential loop the golden corpus pins.
//
// Every run matrix executes on the parallel sweep engine: -jobs
// bounds the worker pool (default: all CPUs) and completed runs are
// memoised in an on-disk cache keyed by the run's full configuration,
// so repeated invocations skip untouched design points. Parallel and
// sequential execution produce identical rows. With -v each completed
// point prints a k/n progress line with an ETA derived from measured
// per-point wall times.
//
// shard distributes a manifest's matrix across worker processes or
// machines: plan prints the deterministic partition (stable rendezvous
// hashing over configuration fingerprints) as JSON for external
// schedulers, run executes one shard's slice into a self-contained
// cache directory plus a shard.json summary, and merge folds shard
// directories into one canonical cache — verifying that all shards
// were produced by one simulator build (binary salt), detecting
// fingerprint collisions with differing payloads, and summing
// persisted counters. A merged cache warm-hits a subsequent
// `accesys sweep`/`equiv` byte-identically to a single-process run.
//
// fleet is the shard launcher folded into one command: it computes a
// shard plan weighted by the output cache's wall-time profile
// (profile.json, fed by every cached sweep), drives `shard run` on N
// workers concurrently — in-process goroutines (-workers), or the
// subprocess/ssh-style workers a fleet spec declares (-fleet) —
// reassigns shards away from failed workers (a killed worker's
// completed points are served warm to its successor, because shard
// cache directories survive attempts), and merges everything into the
// output cache.
//
// serve runs the sweep-as-a-service daemon: an HTTP/JSON API that
// accepts manifest submissions (POST /sweeps, async — 202 + job id),
// serves status polls, rendered rows (json/csv/text), and a streaming
// ndjson progress feed, all against one shared warm cache. Concurrent
// jobs submitting overlapping manifests coalesce on in-flight points,
// so the overlap is simulated exactly once; a full queue answers 503
// and an over-quota client 429, both with Retry-After. See README.md
// "Sweep as a service" for the API schema.
//
// cachestats reports the result cache's on-disk footprint (entries,
// bytes) and cumulative hit/miss/error counters, and with -gc evicts
// entries by age (-maxage) and count (-maxentries).
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"accesys/internal/equiv"
	"accesys/internal/exp"
	"accesys/internal/scenario"
	"accesys/internal/sim"
	"accesys/internal/sweep"
)

// defaultCacheDir places the result cache under the user cache root,
// falling back to a working-directory folder when none exists.
func defaultCacheDir() string {
	if dir, err := os.UserCacheDir(); err == nil {
		return filepath.Join(dir, "accesys")
	}
	return ".accesys-cache"
}

// app carries the command's output streams so tests can run any
// subcommand in-process and assert on exit codes and output.
type app struct {
	stdout io.Writer
	stderr io.Writer
}

// Exit codes: 0 success, 1 failed equivalence audit (points diverged
// beyond the fail band), 2 usage or execution error.
const (
	exitOK   = 0
	exitFail = 1
	usageErr = 2
)

func (a *app) errorf(format string, args ...any) int {
	fmt.Fprintf(a.stderr, "accesys: "+format+"\n", args...)
	return usageErr
}

// sweepFlags are the execution flags shared by run, sweep, and equiv.
type sweepFlags struct {
	full       *bool
	verbose    *bool
	jobs       *int
	cache      *string
	nocache    *bool
	cpuprofile *string
	memprofile *string
	domains    *int
	quantum    *time.Duration
}

func addSweepFlags(fs *flag.FlagSet) *sweepFlags {
	return &sweepFlags{
		full:       fs.Bool("full", false, "run paper-scale matrix sizes (2048); slower"),
		verbose:    fs.Bool("v", false, "stream per-run progress with completion counts and ETA"),
		jobs:       fs.Int("jobs", runtime.NumCPU(), "parallel simulation workers per experiment"),
		cache:      fs.String("cache", defaultCacheDir(), "result cache directory"),
		nocache:    fs.Bool("nocache", false, "disable the on-disk result cache"),
		cpuprofile: fs.String("cpuprofile", "", "write a CPU profile of the whole command to this file"),
		memprofile: fs.String("memprofile", "", "write a heap profile (post-GC) to this file on exit"),
		domains:    fs.Int("domains", 1, "partition each simulated system into N concurrent tick-domains (1 = the sequential event loop)"),
		quantum:    fs.Duration("quantum", 0, "barrier window for -domains > 1 (0 = the build's minimum cut latency, timing-exact)"),
	}
}

// startProfiles begins CPU profiling when -cpuprofile was given. The
// returned stop function finishes the CPU profile and writes the
// -memprofile heap snapshot; defer it around the workload. A negative
// code means continue; otherwise exit with it.
func (a *app) startProfiles(f *sweepFlags) (stop func(), code int) {
	stopCPU := func() {}
	if *f.cpuprofile != "" {
		w, err := os.Create(*f.cpuprofile)
		if err != nil {
			return func() {}, a.errorf("%v", err)
		}
		if err := pprof.StartCPUProfile(w); err != nil {
			w.Close()
			return func() {}, a.errorf("starting CPU profile: %v", err)
		}
		stopCPU = func() {
			pprof.StopCPUProfile()
			w.Close()
		}
	}
	memPath := *f.memprofile
	return func() {
		stopCPU()
		if memPath == "" {
			return
		}
		w, err := os.Create(memPath)
		if err != nil {
			fmt.Fprintf(a.stderr, "accesys: heap profile: %v\n", err)
			return
		}
		// A forced GC first so the snapshot shows live retained heap,
		// not garbage awaiting collection.
		runtime.GC()
		if err := pprof.WriteHeapProfile(w); err != nil {
			fmt.Fprintf(a.stderr, "accesys: heap profile: %v\n", err)
		}
		w.Close()
	}, -1
}

// options opens the cache (unless disabled) and assembles the shared
// execution options.
func (a *app) options(f *sweepFlags) scenario.Options {
	opt := scenario.Options{
		Full: *f.full, Verbose: *f.verbose, Out: a.stderr, Jobs: *f.jobs,
		Domains: *f.domains,
		Quantum: sim.Tick(f.quantum.Nanoseconds()) * sim.Nanosecond,
	}
	if !*f.nocache {
		cache, err := sweep.OpenSalted(*f.cache)
		if err != nil {
			fmt.Fprintf(a.stderr, "accesys: result cache disabled: %v\n", err)
		} else {
			opt.Cache = cache
			// The wall-time profile rides along with the cache: every
			// cached sweep also learns how long its points take, which
			// later feeds the fleet launcher's weighted partition. A
			// corrupt profile only costs future balancing, but silently
			// never repairing it would cost it forever.
			if prof, err := sweep.LoadProfile(cache.Dir()); err == nil {
				opt.Profile = prof
			} else {
				fmt.Fprintf(a.stderr, "accesys: wall profile disabled: %v\n", err)
			}
		}
	}
	return opt
}

// finish folds this process's cache counters into the persisted totals
// (backing `accesys cachestats`) and reports them when verbose.
func (a *app) finish(opt scenario.Options) {
	if opt.Cache == nil {
		return
	}
	hits, misses, errors := opt.Cache.Stats()
	if opt.Verbose {
		fmt.Fprintf(a.stderr, "accesys: cache %s: %d hits, %d misses, %d errors\n",
			opt.Cache.Dir(), hits, misses, errors)
	}
	if err := opt.Cache.FlushCounters(); err != nil {
		fmt.Fprintf(a.stderr, "accesys: persisting cache counters: %v\n", err)
	}
	if opt.Profile != nil {
		if err := opt.Profile.Flush(); err != nil {
			fmt.Fprintf(a.stderr, "accesys: persisting wall profile: %v\n", err)
		}
	}
}

// newFlagSet builds a flag set that reports usage on the app's stderr
// without exiting the process.
func (a *app) newFlagSet(name string) *flag.FlagSet {
	fs := flag.NewFlagSet(name, flag.ContinueOnError)
	fs.SetOutput(a.stderr)
	return fs
}

// parse runs the flag set and maps the outcome to an exit code: -1 to
// continue, exitOK for an explicit -h/-help (usage was printed, and
// flag.ExitOnError historically exited 0 there), usageErr for bad
// flags.
func parse(fs *flag.FlagSet, args []string) int {
	switch err := fs.Parse(args); {
	case err == nil:
		return -1
	case errors.Is(err, flag.ErrHelp):
		return exitOK
	default:
		return usageErr
	}
}

func (a *app) cmdRun(args []string) int {
	fs := a.newFlagSet("run")
	f := addSweepFlags(fs)
	list := fs.Bool("list", false, "list experiment ids and exit")
	fs.Usage = func() {
		fmt.Fprintf(a.stderr, "usage: accesys run [-full] [-v] [-jobs N] [-cache dir] [-nocache] [-cpuprofile file] [-memprofile file] [experiment ...]\n")
		fmt.Fprintf(a.stderr, "experiments: %s (default: all)\n", strings.Join(exp.IDs(), " "))
		fs.PrintDefaults()
	}
	if code := parse(fs, args); code >= 0 {
		return code
	}

	if *list {
		return a.cmdList(nil)
	}

	stop, code := a.startProfiles(f)
	if code >= 0 {
		return code
	}
	defer stop()

	opt := a.options(f)
	ids := fs.Args()
	if len(ids) == 0 {
		ids = exp.IDs()
	}
	for _, id := range ids {
		expf, ok := exp.ByID(id)
		if !ok {
			return a.errorf("unknown experiment %q (want one of %s)", id, strings.Join(exp.IDs(), " "))
		}
		start := time.Now()
		res := expf(opt)
		res.Note("wall time: %.1fs", time.Since(start).Seconds())
		res.Fprint(a.stdout)
	}
	a.finish(opt)
	return exitOK
}

func (a *app) cmdSweep(args []string) int {
	fs := a.newFlagSet("sweep")
	f := addSweepFlags(fs)
	csvPath := fs.String("csv", "", "also write the table as CSV to this file (single manifest only)")
	fs.Usage = func() {
		fmt.Fprintf(a.stderr, "usage: accesys sweep [-full] [-v] [-jobs N] [-cache dir] [-nocache] [-csv file] [-cpuprofile file] [-memprofile file] manifest.json ...\n")
		fs.PrintDefaults()
	}
	if code := parse(fs, args); code >= 0 {
		return code
	}

	manifests := fs.Args()
	if len(manifests) == 0 {
		fs.Usage()
		return usageErr
	}
	if *csvPath != "" && len(manifests) != 1 {
		return a.errorf("-csv needs exactly one manifest, have %d", len(manifests))
	}

	stop, code := a.startProfiles(f)
	if code >= 0 {
		return code
	}
	defer stop()

	opt := a.options(f)
	for _, path := range manifests {
		sc, err := scenario.Load(path)
		if err != nil {
			return a.errorf("%v", err)
		}
		start := time.Now()
		res, err := sc.Run(opt)
		if err != nil {
			return a.errorf("%v", err)
		}
		res.Note("wall time: %.1fs", time.Since(start).Seconds())
		res.Fprint(a.stdout)
		if *csvPath != "" {
			if code := a.writeCSV(*csvPath, res); code != exitOK {
				return code
			}
		}
	}
	a.finish(opt)
	return exitOK
}

func (a *app) writeCSV(path string, res *scenario.Result) int {
	w, err := os.Create(path)
	if err != nil {
		return a.errorf("%v", err)
	}
	if err := res.WriteCSV(w); err != nil {
		w.Close()
		return a.errorf("writing %s: %v", path, err)
	}
	if err := w.Close(); err != nil {
		return a.errorf("writing %s: %v", path, err)
	}
	return exitOK
}

// cmdEquiv audits scenarios (manifests or built-in experiment ids)
// with the cross-backend equivalence harness.
func (a *app) cmdEquiv(args []string) int {
	fs := a.newFlagSet("equiv")
	f := addSweepFlags(fs)
	tol := fs.Float64("tol", 0, "fail when relative divergence exceeds this (0 = scenario/default bands)")
	warn := fs.Float64("warn", 0, "warn when relative divergence exceeds this (0 = scenario/default bands)")
	asJSON := fs.Bool("json", false, "emit machine-readable JSON reports instead of tables")
	fs.Usage = func() {
		fmt.Fprintf(a.stderr, "usage: accesys equiv [-full] [-v] [-jobs N] [-cache dir] [-nocache] [-tol f] [-warn f] [-json] manifest.json|experiment ...\n")
		fmt.Fprintf(a.stderr, "experiments: %s\n", strings.Join(exp.IDs(), " "))
		fs.PrintDefaults()
	}
	if code := parse(fs, args); code >= 0 {
		return code
	}
	targets := fs.Args()
	if len(targets) == 0 {
		fs.Usage()
		return usageErr
	}
	if *tol < 0 || *warn < 0 || (*tol > 0 && *warn > *tol) {
		return a.errorf("tolerances must satisfy 0 <= warn <= tol")
	}

	opt := a.options(f)
	cli := equiv.Tolerances{Tol: *tol, Warn: *warn}
	failed := false
	var reports []*equiv.Report
	for _, target := range targets {
		sc, ok := exp.Matrix(target)
		if !ok {
			var err error
			sc, err = scenario.Load(target)
			if err != nil {
				return a.errorf("%q is neither a built-in experiment nor a loadable manifest: %v", target, err)
			}
		}
		rep, err := equiv.Run(sc, opt, cli)
		if err != nil {
			return a.errorf("%v", err)
		}
		reports = append(reports, rep)
		if !rep.OK() {
			failed = true
		}
		if !*asJSON {
			rep.Result().Fprint(a.stdout)
		}
	}
	if *asJSON {
		if code := a.printJSON(reports); code != exitOK {
			return code
		}
	}
	a.finish(opt)
	if failed {
		return exitFail
	}
	return exitOK
}

// printJSON emits the reports as one JSON array, all or nothing — a
// failed encode must never leave partial output on stdout.
func (a *app) printJSON(reports []*equiv.Report) int {
	data, err := json.MarshalIndent(reports, "", "  ")
	if err != nil {
		return a.errorf("encoding reports: %v", err)
	}
	fmt.Fprintln(a.stdout, string(data))
	return exitOK
}

func (a *app) cmdCachestats(args []string) int {
	fs := a.newFlagSet("cachestats")
	dir := fs.String("cache", defaultCacheDir(), "result cache directory")
	gc := fs.Bool("gc", false, "evict entries by age and count")
	maxAge := fs.Duration("maxage", 30*24*time.Hour, "with -gc: evict entries older than this (0 = no age bound)")
	maxEntries := fs.Int("maxentries", 0, "with -gc: keep at most this many newest entries (0 = unbounded)")
	fs.Usage = func() {
		fmt.Fprintf(a.stderr, "usage: accesys cachestats [-cache dir] [-gc] [-maxage d] [-maxentries n]\n")
		fs.PrintDefaults()
	}
	if code := parse(fs, args); code >= 0 {
		return code
	}
	if fs.NArg() != 0 {
		fs.Usage()
		return usageErr
	}

	// Open unsalted: inspection and GC span entries from every binary
	// that ever shared the directory.
	cache, err := sweep.Open(*dir)
	if err != nil {
		return a.errorf("%v", err)
	}

	if *gc {
		res, err := cache.GC(*maxAge, *maxEntries)
		if err != nil {
			return a.errorf("gc: %v", err)
		}
		fmt.Fprintf(a.stdout, "gc: scanned %d entries, evicted %d (%d bytes), removed %d stale temp files\n",
			res.Scanned, res.Evicted, res.EvictedBytes, res.Temps)
	}

	entries, bytes, err := cache.Usage()
	if err != nil {
		return a.errorf("%v", err)
	}
	counters, err := cache.Counters()
	if err != nil {
		return a.errorf("%v", err)
	}
	fmt.Fprintf(a.stdout, "cache %s\n", cache.Dir())
	fmt.Fprintf(a.stdout, "  entries: %d\n", entries)
	fmt.Fprintf(a.stdout, "  bytes:   %d\n", bytes)
	fmt.Fprintf(a.stdout, "  hits:    %d\n", counters.Hits)
	fmt.Fprintf(a.stdout, "  misses:  %d\n", counters.Misses)
	fmt.Fprintf(a.stdout, "  errors:  %d\n", counters.Errors)
	return exitOK
}

func (a *app) cmdList(args []string) int {
	if len(args) != 0 {
		return a.errorf("list takes no arguments")
	}
	for _, id := range exp.IDs() {
		fmt.Fprintln(a.stdout, id)
	}
	return exitOK
}

// main dispatches a subcommand; a bare flag list runs `run` (the
// historical interface).
func (a *app) main(args []string) int {
	if len(args) > 0 {
		switch args[0] {
		case "run":
			return a.cmdRun(args[1:])
		case "sweep":
			return a.cmdSweep(args[1:])
		case "equiv":
			return a.cmdEquiv(args[1:])
		case "explore":
			return a.cmdExplore(args[1:])
		case "pareq":
			return a.cmdPareq(args[1:])
		case "shard":
			return a.cmdShard(args[1:])
		case "fleet":
			return a.cmdFleet(args[1:])
		case "serve":
			return a.cmdServe(args[1:])
		case "cachestats":
			return a.cmdCachestats(args[1:])
		case "list":
			return a.cmdList(args[1:])
		case "help", "-h", "-help", "--help":
			fmt.Fprintf(a.stderr, "usage: accesys [run|sweep|equiv|explore|pareq|shard|fleet|serve|cachestats|list] ...\n")
			fmt.Fprintf(a.stderr, "run 'accesys <command> -h' for command flags; a bare flag list runs `run`\n")
			return usageErr
		}
	}
	return a.cmdRun(args)
}

func main() {
	a := &app{stdout: os.Stdout, stderr: os.Stderr}
	os.Exit(a.main(os.Args[1:]))
}
