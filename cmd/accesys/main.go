// Command accesys regenerates the paper's evaluation artifacts.
//
// Usage:
//
//	accesys [-full] [-v] [experiment ...]
//
// With no arguments every experiment runs in paper order. Experiment
// ids: fig2 fig3 fig4 fig5 fig6 tab4 fig7 fig8 fig9.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"accesys/internal/exp"
)

func main() {
	full := flag.Bool("full", false, "run paper-scale matrix sizes (2048); slower")
	verbose := flag.Bool("v", false, "stream per-run progress")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: accesys [-full] [-v] [experiment ...]\n")
		fmt.Fprintf(os.Stderr, "experiments: %s (default: all)\n", strings.Join(exp.IDs(), " "))
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, id := range exp.IDs() {
			fmt.Println(id)
		}
		return
	}

	opt := exp.Options{Full: *full, Verbose: *verbose, Out: os.Stderr}

	ids := flag.Args()
	if len(ids) == 0 {
		ids = exp.IDs()
	}
	for _, id := range ids {
		f, ok := exp.ByID(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "accesys: unknown experiment %q (want one of %s)\n",
				id, strings.Join(exp.IDs(), " "))
			os.Exit(2)
		}
		start := time.Now()
		res := f(opt)
		res.Note("wall time: %.1fs", time.Since(start).Seconds())
		res.Fprint(os.Stdout)
	}
}
