// Command accesys regenerates the paper's evaluation artifacts and
// runs manifest-driven sweeps.
//
// Usage:
//
//	accesys run [-full] [-v] [-jobs N] [-cache dir] [-nocache] [experiment ...]
//	accesys sweep [-full] [-v] [-jobs N] [-cache dir] [-nocache] [-csv file] manifest.json ...
//	accesys cachestats [-cache dir] [-gc] [-maxage d] [-maxentries n]
//	accesys list
//
// Invoking accesys without a subcommand behaves like `accesys run`
// (the historical interface), so `accesys -full fig4` keeps working.
//
// run executes built-in experiments in paper order (all of them by
// default). Experiment ids: fig2 fig3 fig4 fig5 fig6 tab4 fig7 fig8
// fig9.
//
// sweep loads declarative scenario manifests (JSON; see README.md
// "Manifest-driven sweeps" for the schema) and runs their matrices —
// new scenario matrices need no new Go. A manifest encoding of a
// built-in matrix emits rows byte-identical to the built-in
// experiment, because both reach the same renderer.
//
// Every run matrix executes on the parallel sweep engine: -jobs
// bounds the worker pool (default: all CPUs) and completed runs are
// memoised in an on-disk cache keyed by the run's full configuration,
// so repeated invocations skip untouched design points. Parallel and
// sequential execution produce identical rows. With -v each completed
// point prints a k/n progress line with an ETA derived from measured
// per-point wall times.
//
// cachestats reports the result cache's on-disk footprint (entries,
// bytes) and cumulative hit/miss/error counters, and with -gc evicts
// entries by age (-maxage) and count (-maxentries).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"accesys/internal/exp"
	"accesys/internal/scenario"
	"accesys/internal/sweep"
)

// defaultCacheDir places the result cache under the user cache root,
// falling back to a working-directory folder when none exists.
func defaultCacheDir() string {
	if dir, err := os.UserCacheDir(); err == nil {
		return filepath.Join(dir, "accesys")
	}
	return ".accesys-cache"
}

// sweepFlags are the execution flags shared by run and sweep.
type sweepFlags struct {
	full    *bool
	verbose *bool
	jobs    *int
	cache   *string
	nocache *bool
}

func addSweepFlags(fs *flag.FlagSet) *sweepFlags {
	return &sweepFlags{
		full:    fs.Bool("full", false, "run paper-scale matrix sizes (2048); slower"),
		verbose: fs.Bool("v", false, "stream per-run progress with completion counts and ETA"),
		jobs:    fs.Int("jobs", runtime.NumCPU(), "parallel simulation workers per experiment"),
		cache:   fs.String("cache", defaultCacheDir(), "result cache directory"),
		nocache: fs.Bool("nocache", false, "disable the on-disk result cache"),
	}
}

// options opens the cache (unless disabled) and assembles the shared
// execution options.
func (f *sweepFlags) options() scenario.Options {
	opt := scenario.Options{Full: *f.full, Verbose: *f.verbose, Out: os.Stderr, Jobs: *f.jobs}
	if !*f.nocache {
		cache, err := sweep.OpenSalted(*f.cache)
		if err != nil {
			fmt.Fprintf(os.Stderr, "accesys: result cache disabled: %v\n", err)
		} else {
			opt.Cache = cache
		}
	}
	return opt
}

// finish folds this process's cache counters into the persisted totals
// (backing `accesys cachestats`) and reports them when verbose.
func finish(opt scenario.Options) {
	if opt.Cache == nil {
		return
	}
	hits, misses, errors := opt.Cache.Stats()
	if opt.Verbose {
		fmt.Fprintf(os.Stderr, "accesys: cache %s: %d hits, %d misses, %d errors\n",
			opt.Cache.Dir(), hits, misses, errors)
	}
	if err := opt.Cache.FlushCounters(); err != nil {
		fmt.Fprintf(os.Stderr, "accesys: persisting cache counters: %v\n", err)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "accesys: "+format+"\n", args...)
	os.Exit(2)
}

func cmdRun(args []string) {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	f := addSweepFlags(fs)
	list := fs.Bool("list", false, "list experiment ids and exit")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: accesys run [-full] [-v] [-jobs N] [-cache dir] [-nocache] [experiment ...]\n")
		fmt.Fprintf(os.Stderr, "experiments: %s (default: all)\n", strings.Join(exp.IDs(), " "))
		fs.PrintDefaults()
	}
	fs.Parse(args)

	if *list {
		cmdList(nil)
		return
	}

	opt := f.options()
	ids := fs.Args()
	if len(ids) == 0 {
		ids = exp.IDs()
	}
	for _, id := range ids {
		expf, ok := exp.ByID(id)
		if !ok {
			fatalf("unknown experiment %q (want one of %s)", id, strings.Join(exp.IDs(), " "))
		}
		start := time.Now()
		res := expf(opt)
		res.Note("wall time: %.1fs", time.Since(start).Seconds())
		res.Fprint(os.Stdout)
	}
	finish(opt)
}

func cmdSweep(args []string) {
	fs := flag.NewFlagSet("sweep", flag.ExitOnError)
	f := addSweepFlags(fs)
	csvPath := fs.String("csv", "", "also write the table as CSV to this file (single manifest only)")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: accesys sweep [-full] [-v] [-jobs N] [-cache dir] [-nocache] [-csv file] manifest.json ...\n")
		fs.PrintDefaults()
	}
	fs.Parse(args)

	manifests := fs.Args()
	if len(manifests) == 0 {
		fs.Usage()
		os.Exit(2)
	}
	if *csvPath != "" && len(manifests) != 1 {
		fatalf("-csv needs exactly one manifest, have %d", len(manifests))
	}

	opt := f.options()
	for _, path := range manifests {
		sc, err := scenario.Load(path)
		if err != nil {
			fatalf("%v", err)
		}
		start := time.Now()
		res, err := sc.Run(opt)
		if err != nil {
			fatalf("%v", err)
		}
		res.Note("wall time: %.1fs", time.Since(start).Seconds())
		res.Fprint(os.Stdout)
		if *csvPath != "" {
			w, err := os.Create(*csvPath)
			if err != nil {
				fatalf("%v", err)
			}
			if err := res.WriteCSV(w); err != nil {
				fatalf("writing %s: %v", *csvPath, err)
			}
			if err := w.Close(); err != nil {
				fatalf("writing %s: %v", *csvPath, err)
			}
		}
	}
	finish(opt)
}

func cmdCachestats(args []string) {
	fs := flag.NewFlagSet("cachestats", flag.ExitOnError)
	dir := fs.String("cache", defaultCacheDir(), "result cache directory")
	gc := fs.Bool("gc", false, "evict entries by age and count")
	maxAge := fs.Duration("maxage", 30*24*time.Hour, "with -gc: evict entries older than this (0 = no age bound)")
	maxEntries := fs.Int("maxentries", 0, "with -gc: keep at most this many newest entries (0 = unbounded)")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: accesys cachestats [-cache dir] [-gc] [-maxage d] [-maxentries n]\n")
		fs.PrintDefaults()
	}
	fs.Parse(args)
	if fs.NArg() != 0 {
		fs.Usage()
		os.Exit(2)
	}

	// Open unsalted: inspection and GC span entries from every binary
	// that ever shared the directory.
	cache, err := sweep.Open(*dir)
	if err != nil {
		fatalf("%v", err)
	}

	if *gc {
		res, err := cache.GC(*maxAge, *maxEntries)
		if err != nil {
			fatalf("gc: %v", err)
		}
		fmt.Printf("gc: scanned %d entries, evicted %d (%d bytes), removed %d stale temp files\n",
			res.Scanned, res.Evicted, res.EvictedBytes, res.Temps)
	}

	entries, bytes, err := cache.Usage()
	if err != nil {
		fatalf("%v", err)
	}
	counters, err := cache.Counters()
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("cache %s\n", cache.Dir())
	fmt.Printf("  entries: %d\n", entries)
	fmt.Printf("  bytes:   %d\n", bytes)
	fmt.Printf("  hits:    %d\n", counters.Hits)
	fmt.Printf("  misses:  %d\n", counters.Misses)
	fmt.Printf("  errors:  %d\n", counters.Errors)
}

func cmdList(args []string) {
	if len(args) != 0 {
		fatalf("list takes no arguments")
	}
	for _, id := range exp.IDs() {
		fmt.Println(id)
	}
}

func main() {
	args := os.Args[1:]
	if len(args) > 0 {
		switch args[0] {
		case "run":
			cmdRun(args[1:])
			return
		case "sweep":
			cmdSweep(args[1:])
			return
		case "cachestats":
			cmdCachestats(args[1:])
			return
		case "list":
			cmdList(args[1:])
			return
		case "help", "-h", "-help", "--help":
			fmt.Fprintf(os.Stderr, "usage: accesys [run|sweep|cachestats|list] ...\n")
			fmt.Fprintf(os.Stderr, "run 'accesys <command> -h' for command flags; a bare flag list runs `run`\n")
			os.Exit(2)
		}
	}
	// Historical interface: flags and experiment ids without a
	// subcommand behave like `run`.
	cmdRun(args)
}
