// Command accesys regenerates the paper's evaluation artifacts.
//
// Usage:
//
//	accesys [-full] [-v] [-jobs N] [-cache dir] [-nocache] [experiment ...]
//
// With no arguments every experiment runs in paper order. Experiment
// ids: fig2 fig3 fig4 fig5 fig6 tab4 fig7 fig8 fig9.
//
// Each experiment's run matrix executes on the sweep engine: -jobs
// bounds the worker pool (default: all CPUs) and completed runs are
// memoised in an on-disk cache keyed by the run's full configuration,
// so repeated invocations skip untouched design points. Parallel and
// sequential execution produce identical rows.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"accesys/internal/exp"
	"accesys/internal/sweep"
)

// defaultCacheDir places the result cache under the user cache root,
// falling back to a working-directory folder when none exists.
func defaultCacheDir() string {
	if dir, err := os.UserCacheDir(); err == nil {
		return filepath.Join(dir, "accesys")
	}
	return ".accesys-cache"
}

func main() {
	full := flag.Bool("full", false, "run paper-scale matrix sizes (2048); slower")
	verbose := flag.Bool("v", false, "stream per-run progress")
	list := flag.Bool("list", false, "list experiment ids and exit")
	jobs := flag.Int("jobs", runtime.NumCPU(), "parallel simulation workers per experiment")
	cacheDir := flag.String("cache", defaultCacheDir(), "result cache directory")
	noCache := flag.Bool("nocache", false, "disable the on-disk result cache")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: accesys [-full] [-v] [-jobs N] [-cache dir] [-nocache] [experiment ...]\n")
		fmt.Fprintf(os.Stderr, "experiments: %s (default: all)\n", strings.Join(exp.IDs(), " "))
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, id := range exp.IDs() {
			fmt.Println(id)
		}
		return
	}

	opt := exp.Options{Full: *full, Verbose: *verbose, Out: os.Stderr, Jobs: *jobs}
	if !*noCache {
		cache, err := sweep.OpenSalted(*cacheDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "accesys: result cache disabled: %v\n", err)
		} else {
			opt.Cache = cache
		}
	}

	ids := flag.Args()
	if len(ids) == 0 {
		ids = exp.IDs()
	}
	for _, id := range ids {
		f, ok := exp.ByID(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "accesys: unknown experiment %q (want one of %s)\n",
				id, strings.Join(exp.IDs(), " "))
			os.Exit(2)
		}
		start := time.Now()
		res := f(opt)
		res.Note("wall time: %.1fs", time.Since(start).Seconds())
		res.Fprint(os.Stdout)
	}
	if opt.Cache != nil && *verbose {
		hits, misses, errors := opt.Cache.Stats()
		fmt.Fprintf(os.Stderr, "accesys: cache %s: %d hits, %d misses, %d errors\n",
			opt.Cache.Dir(), hits, misses, errors)
	}
}
