package main

// The `accesys serve` subcommand: the sweep-as-a-service daemon. It
// opens the shared result cache and wall profile once, starts the
// serve.Server's bounded job queue, and exposes the HTTP/JSON API
// until SIGINT/SIGTERM, then drains gracefully — running jobs finish,
// queued jobs fail fast, and the cache counters and profile flush.

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"accesys/internal/fleet"
	"accesys/internal/serve"
	"accesys/internal/sweep"
)

func (a *app) cmdServe(args []string) int {
	fs := a.newFlagSet("serve")
	addr := fs.String("addr", "localhost:8044", "listen address (host:port; port 0 picks a free port)")
	cacheDir := fs.String("cache", defaultCacheDir(), "shared result cache directory")
	jobs := fs.Int("jobs", 0, "simulation workers per running job (0 = one per CPU)")
	concurrency := fs.Int("concurrency", 0, "jobs running at once (0 = serve default)")
	queue := fs.Int("queue", 0, "max jobs queued but not running before 503 (0 = serve default)")
	quota := fs.Int("quota", 0, "max unfinished jobs per client before 429 (0 = serve default)")
	retain := fs.Int("retain", 0, "max finished jobs kept pollable before the oldest are evicted (0 = serve default)")
	specPath := fs.String("fleet", "", "fleet spec JSON: run jobs through the fleet scheduler instead of in-process")
	gcInterval := fs.Duration("gcinterval", 0, "periodically GC the cache at this interval (0 = never)")
	gcMaxAge := fs.Duration("gcmaxage", 30*24*time.Hour, "with -gcinterval: evict entries older than this (0 = no age bound)")
	gcMaxEntries := fs.Int("gcmaxentries", 0, "with -gcinterval: keep at most this many newest entries (0 = unbounded)")
	verbose := fs.Bool("v", false, "log job lifecycle and GC diagnostics")
	fs.Usage = func() {
		fmt.Fprintf(a.stderr, "usage: accesys serve [-addr host:port] [-cache dir] [-jobs N] [-concurrency N] [-queue N] [-quota N] [-retain N] [-fleet spec.json] [-gcinterval d] [-v]\n")
		fs.PrintDefaults()
	}
	if code := parse(fs, args); code >= 0 {
		return code
	}
	if fs.NArg() != 0 {
		fs.Usage()
		return usageErr
	}

	cache, err := sweep.OpenSalted(*cacheDir)
	if err != nil {
		return a.errorf("%v", err)
	}
	cfg := serve.Config{
		Cache:        cache,
		Jobs:         *jobs,
		Concurrency:  *concurrency,
		QueueLimit:   *queue,
		ClientQuota:  *quota,
		JobRetention: *retain,
		GCInterval:   *gcInterval,
		GCMaxAge:     *gcMaxAge,
		GCMaxEntries: *gcMaxEntries,
	}
	if prof, err := sweep.LoadProfile(cache.Dir()); err == nil {
		cfg.Profile = prof
	} else {
		fmt.Fprintf(a.stderr, "accesys: wall profile disabled: %v\n", err)
	}
	if *specPath != "" {
		spec, err := fleet.LoadSpec(*specPath)
		if err != nil {
			return a.errorf("%v", err)
		}
		cfg.FleetSpec = spec
	}
	if *verbose {
		cfg.Logf = func(format string, args ...any) {
			fmt.Fprintf(a.stderr, "accesys: "+format+"\n", args...)
		}
	}

	srv, err := serve.New(cfg)
	if err != nil {
		return a.errorf("%v", err)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		srv.Close()
		return a.errorf("%v", err)
	}
	// The test harness (and anyone scripting against port 0) parses the
	// bound address off this line.
	fmt.Fprintf(a.stderr, "accesys: serving on http://%s\n", ln.Addr())

	hs := &http.Server{Handler: srv.Handler()}
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigs)
	go func() {
		sig := <-sigs
		fmt.Fprintf(a.stderr, "accesys: %s received, draining\n", sig)
		// Stop accepting connections first, then drain the job queue;
		// in-flight HTTP requests get a short grace period.
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		hs.Shutdown(ctx)
	}()

	serveErr := hs.Serve(ln)
	if closeErr := srv.Close(); closeErr != nil {
		fmt.Fprintf(a.stderr, "accesys: flushing state at shutdown: %v\n", closeErr)
	}
	if serveErr != nil && serveErr != http.ErrServerClosed {
		return a.errorf("%v", serveErr)
	}
	fmt.Fprintf(a.stderr, "accesys: serve drained\n")
	return exitOK
}
