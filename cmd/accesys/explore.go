package main

// accesys explore: the search-driven front-end. One manifest with an
// explore stanza in, a ranked frontier table (text/CSV) and an
// explore.json trace out. Flags override the stanza so one manifest
// serves many search configurations.

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"accesys/internal/explore"
	"accesys/internal/scenario"
)

func (a *app) cmdExplore(args []string) int {
	fs := a.newFlagSet("explore")
	f := addSweepFlags(fs)
	strategy := fs.String("strategy", "", "search strategy: random or halving (default: the manifest's, else random)")
	seed := fs.Int64("seed", 0, "search RNG seed (default: the manifest's, else 0); runs are deterministic per (manifest, seed, budget)")
	budget := fs.String("budget", "", "stopping rule: a point count (\"32\") or a predicted-wall duration (\"2m\"); default: the manifest's, else 32")
	tracePath := fs.String("trace", "explore.json", "write the generation-by-generation search trace to this file (\"\" = skip)")
	csvPath := fs.String("csv", "", "also write the frontier table as CSV to this file")
	fs.Usage = func() {
		fmt.Fprintf(a.stderr, "usage: accesys explore [-full] [-v] [-jobs N] [-cache dir] [-nocache] [-domains N] [-quantum d] [-strategy name] [-seed N] [-budget N|dur] [-trace file] [-csv file] manifest.json\n")
		fs.PrintDefaults()
	}
	if code := parse(fs, args); code >= 0 {
		return code
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return usageErr
	}

	stop, code := a.startProfiles(f)
	if code >= 0 {
		return code
	}
	defer stop()

	sc, err := scenario.Load(fs.Arg(0))
	if err != nil {
		return a.errorf("%v", err)
	}
	opt := a.options(f)
	p := explore.Params{Strategy: *strategy, Budget: *budget}
	// Override the manifest's seed only when -seed was explicitly set
	// (no sentinel value: every int64, negatives included, is a valid
	// seed).
	fs.Visit(func(fl *flag.Flag) {
		if fl.Name == "seed" {
			p.Seed = seed
		}
	})
	rep, err := explore.Run(sc, opt, p)
	if err != nil {
		return a.errorf("%v", err)
	}
	rep.Frontier.Fprint(a.stdout)
	if *csvPath != "" {
		if code := a.writeCSV(*csvPath, rep.Frontier); code != exitOK {
			return code
		}
	}
	if *tracePath != "" {
		data, err := rep.Trace.Marshal()
		if err != nil {
			return a.errorf("encoding trace: %v", err)
		}
		if dir := filepath.Dir(*tracePath); dir != "." {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				return a.errorf("%v", err)
			}
		}
		if err := os.WriteFile(*tracePath, data, 0o644); err != nil {
			return a.errorf("writing trace: %v", err)
		}
	}
	a.finish(opt)
	return exitOK
}
