package main

// The `accesys fleet` subcommand: a cold multi-worker sweep as one
// command. It expands the manifest, computes a wall-time-weighted
// shard plan from the output cache's profile (rendezvous when the
// profile is cold), writes the plan to the work directory, drives
// every worker of the fleet spec concurrently with retry and
// reassignment, and merges the shard caches into the output cache —
// which a subsequent `accesys sweep` then warm-hits byte-identically
// to a single-process run.

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"accesys/internal/fleet"
	"accesys/internal/scenario"
	"accesys/internal/shard"
	"accesys/internal/sweep"
)

func (a *app) cmdFleet(args []string) int {
	fs := a.newFlagSet("fleet")
	full := fs.Bool("full", false, "run the paper-scale (-full) expansion")
	verbose := fs.Bool("v", false, "stream per-run progress from every worker")
	jobs := fs.Int("jobs", 0, "simulation workers per fleet worker (default: CPUs split across -workers; all CPUs with -fleet)")
	workers := fs.Int("workers", 0, "run N local in-process workers (default: all CPUs; exclusive with -fleet)")
	specPath := fs.String("fleet", "", "fleet spec JSON declaring the workers (see README)")
	out := fs.String("out", defaultCacheDir(), "merged cache directory (created if needed)")
	work := fs.String("work", "", "working directory for shard caches and the plan (default: <out>/fleet)")
	attempts := fs.Int("attempts", 0, "max executions per shard before the fleet gives up (default 3)")
	fs.Usage = func() {
		fmt.Fprintf(a.stderr, "usage: accesys fleet [-full] [-v] [-jobs N] [-workers N | -fleet spec.json] [-out DIR] [-work DIR] manifest.json\n")
		fs.PrintDefaults()
	}
	if code := parse(fs, args); code >= 0 {
		return code
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return usageErr
	}
	if *specPath != "" && *workers > 0 {
		return a.errorf("use -workers N or -fleet spec.json, not both")
	}

	spec := fleet.LocalSpec(max(1, orDefault(*workers, runtime.NumCPU())))
	if *specPath != "" {
		var err error
		if spec, err = fleet.LoadSpec(*specPath); err != nil {
			return a.errorf("%v", err)
		}
	} else if *jobs == 0 {
		// Local in-process fleets split the CPU budget across workers:
		// N workers each defaulting to a full NumCPU engine would
		// oversubscribe the machine quadratically. Explicit -fleet
		// specs keep their own per-worker jobs knob.
		*jobs = max(1, runtime.NumCPU()/len(spec.Workers))
	}

	manifest := fs.Arg(0)
	sc, err := scenario.Load(manifest)
	if err != nil {
		return a.errorf("%v", err)
	}
	points, err := sc.PointsFor(*full)
	if err != nil {
		return a.errorf("%v", err)
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		return a.errorf("%v", err)
	}
	// The output cache's profile (fed by every prior cached sweep and
	// fleet run) drives the weighted partition; a cold profile degrades
	// to the rendezvous plan. Degrading silently on a *corrupt* profile
	// would disable the advertised balancing forever, so say so.
	var prof *sweep.Profile
	if p, err := sweep.LoadProfile(*out); err == nil {
		prof = p
	} else {
		fmt.Fprintf(a.stderr, "accesys: wall profile unusable, planning unweighted: %v\n", err)
	}
	plan, err := shard.PartitionWeighted(sc.Name, *full, points, len(spec.Workers), prof)
	if err != nil {
		return a.errorf("%v", err)
	}

	workDir := *work
	if workDir == "" {
		workDir = filepath.Join(*out, "fleet")
	}
	if err := os.MkdirAll(workDir, 0o755); err != nil {
		return a.errorf("%v", err)
	}
	planData, err := plan.Marshal()
	if err != nil {
		return a.errorf("encoding plan: %v", err)
	}
	planPath := filepath.Join(workDir, "plan.json")
	if err := os.WriteFile(planPath, append(planData, '\n'), 0o644); err != nil {
		return a.errorf("writing plan: %v", err)
	}
	if plan.Weighted {
		fmt.Fprintf(a.stderr, "fleet: plan weighted by %d profiled points (predicted makespan %.1fs)\n",
			plan.Profiled, maxWallSeconds(plan.PredictedWallNs))
	}

	// One locked stream carries the scheduler's and every worker's
	// output: workers write from their own goroutines.
	stream := fleet.NewSyncWriter(a.stderr)
	execs, err := spec.Executors(fleet.ExecutorDeps{Plan: plan, Points: points, Out: stream})
	if err != nil {
		return a.errorf("%v", err)
	}
	sched := &fleet.Scheduler{
		Plan:        plan,
		Manifest:    manifest,
		PlanPath:    planPath,
		Workers:     execs,
		WorkDir:     workDir,
		OutDir:      *out,
		Full:        *full,
		Jobs:        *jobs,
		Verbose:     *verbose,
		Out:         stream,
		MaxAttempts: *attempts,
	}
	start := time.Now()
	rep, err := sched.Run(context.Background())
	if err != nil {
		return a.errorf("%v", err)
	}

	for _, sr := range rep.Shards {
		note := ""
		if sr.Attempts > 1 {
			note = fmt.Sprintf(" (%d attempts)", sr.Attempts)
		}
		fmt.Fprintf(a.stdout, "shard %d/%d: %d points (%d cold, %d warm) on %s in %.1fs%s\n",
			sr.Shard, plan.Shards, sr.Points, sr.Cold, sr.Warm, sr.Worker,
			time.Duration(sr.WallNs).Seconds(), note)
	}
	m := rep.Merge
	if own, err := sweep.BinaryFingerprint(); err == nil && own != m.Salt {
		fmt.Fprintf(a.stderr, "accesys: warning: merged entries were produced by a different simulator build (salt %.12s… vs this binary's %.12s…); this binary's sweeps will re-simulate them\n",
			m.Salt, own)
	}
	reassigned := ""
	if rep.Reassigned > 0 {
		reassigned = fmt.Sprintf("; %d reassignments, %d workers retired", rep.Reassigned, rep.Retired)
	}
	fmt.Fprintf(a.stdout, "fleet %s: %d shards over %d workers in %.1fs -> %s (%d entries imported, %d duplicates; %d hits, %d misses)%s\n",
		sc.Name, plan.Shards, len(execs), time.Since(start).Seconds(), *out,
		m.Imported, m.Duplicates, m.Counters.Hits, m.Counters.Misses, reassigned)
	return exitOK
}

// orDefault returns v unless it is zero, then d.
func orDefault(v, d int) int {
	if v > 0 {
		return v
	}
	return d
}

func maxWallSeconds(walls []int64) float64 {
	var m int64
	for _, w := range walls {
		if w > m {
			m = w
		}
	}
	return time.Duration(m).Seconds()
}
