package main

// The `accesys fleet` subcommand: a cold multi-worker sweep as one
// command. It expands the manifest, computes a wall-time-weighted
// shard plan from the output cache's profile (rendezvous when the
// profile is cold), writes the plan to the work directory, drives
// every worker of the fleet spec concurrently with retry and
// reassignment, and merges the shard caches into the output cache —
// which a subsequent `accesys sweep` then warm-hits byte-identically
// to a single-process run.

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"accesys/internal/fleet"
	"accesys/internal/scenario"
	"accesys/internal/shard"
	"accesys/internal/sweep"
)

func (a *app) cmdFleet(args []string) int {
	fs := a.newFlagSet("fleet")
	full := fs.Bool("full", false, "run the paper-scale (-full) expansion")
	verbose := fs.Bool("v", false, "stream per-run progress from every worker")
	jobs := fs.Int("jobs", 0, "simulation workers per fleet worker (default: CPUs split across -workers; all CPUs with -fleet)")
	workers := fs.Int("workers", 0, "run N local in-process workers (default: all CPUs; exclusive with -fleet)")
	specPath := fs.String("fleet", "", "fleet spec JSON declaring the workers (see README)")
	out := fs.String("out", defaultCacheDir(), "merged cache directory (created if needed)")
	work := fs.String("work", "", "working directory for shard caches and the plan (default: <out>/fleet)")
	attempts := fs.Int("attempts", 0, "max executions per shard before the fleet gives up (default 3)")
	fs.Usage = func() {
		fmt.Fprintf(a.stderr, "usage: accesys fleet [-full] [-v] [-jobs N] [-workers N | -fleet spec.json] [-out DIR] [-work DIR] manifest.json\n")
		fs.PrintDefaults()
	}
	if code := parse(fs, args); code >= 0 {
		return code
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return usageErr
	}
	if *specPath != "" && *workers > 0 {
		return a.errorf("use -workers N or -fleet spec.json, not both")
	}

	spec := fleet.LocalSpec(max(1, orDefault(*workers, runtime.NumCPU())))
	if *specPath != "" {
		var err error
		if spec, err = fleet.LoadSpec(*specPath); err != nil {
			return a.errorf("%v", err)
		}
	} else if *jobs == 0 {
		// Local in-process fleets split the CPU budget across workers:
		// N workers each defaulting to a full NumCPU engine would
		// oversubscribe the machine quadratically. Explicit -fleet
		// specs keep their own per-worker jobs knob.
		*jobs = max(1, runtime.NumCPU()/len(spec.Workers))
	}

	manifest := fs.Arg(0)
	sc, err := scenario.Load(manifest)
	if err != nil {
		return a.errorf("%v", err)
	}
	points, err := sc.PointsFor(*full)
	if err != nil {
		return a.errorf("%v", err)
	}

	start := time.Now()
	rep, plan, err := fleet.Launch(context.Background(), fleet.LaunchOptions{
		Name:        sc.Name,
		Full:        *full,
		Points:      points,
		Manifest:    manifest,
		Spec:        spec,
		OutDir:      *out,
		WorkDir:     *work,
		Jobs:        *jobs,
		Verbose:     *verbose,
		Out:         a.stderr,
		MaxAttempts: *attempts,
		OnPlan: func(p *shard.Plan) {
			if p.Weighted {
				fmt.Fprintf(a.stderr, "fleet: plan weighted by %d profiled points (predicted makespan %.1fs)\n",
					p.Profiled, maxWallSeconds(p.PredictedWallNs))
			}
		},
		Warnf: func(format string, args ...any) {
			fmt.Fprintf(a.stderr, "accesys: "+format+"\n", args...)
		},
	})
	if err != nil {
		return a.errorf("%v", err)
	}

	for _, sr := range rep.Shards {
		note := ""
		if sr.Attempts > 1 {
			note = fmt.Sprintf(" (%d attempts)", sr.Attempts)
		}
		fmt.Fprintf(a.stdout, "shard %d/%d: %d points (%d cold, %d warm) on %s in %.1fs%s\n",
			sr.Shard, plan.Shards, sr.Points, sr.Cold, sr.Warm, sr.Worker,
			time.Duration(sr.WallNs).Seconds(), note)
	}
	m := rep.Merge
	if own, err := sweep.BinaryFingerprint(); err == nil && own != m.Salt {
		fmt.Fprintf(a.stderr, "accesys: warning: merged entries were produced by a different simulator build (salt %.12s… vs this binary's %.12s…); this binary's sweeps will re-simulate them\n",
			m.Salt, own)
	}
	reassigned := ""
	if rep.Reassigned > 0 {
		reassigned = fmt.Sprintf("; %d reassignments, %d workers retired", rep.Reassigned, rep.Retired)
	}
	fmt.Fprintf(a.stdout, "fleet %s: %d shards over %d workers in %.1fs -> %s (%d entries imported, %d duplicates; %d hits, %d misses)%s\n",
		sc.Name, plan.Shards, len(spec.Workers), time.Since(start).Seconds(), *out,
		m.Imported, m.Duplicates, m.Counters.Hits, m.Counters.Misses, reassigned)
	return exitOK
}

// orDefault returns v unless it is zero, then d.
func orDefault(v, d int) int {
	if v > 0 {
		return v
	}
	return d
}

func maxWallSeconds(walls []int64) float64 {
	var m int64
	for _, w := range walls {
		if w > m {
			m = w
		}
	}
	return time.Duration(m).Seconds()
}
