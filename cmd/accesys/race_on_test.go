//go:build race

package main

// raceEnabled reports whether this test binary runs under the race
// detector, so long re-simulating suites can skip themselves there.
const raceEnabled = true
