package main

// End-to-end tests of the `accesys fleet` subcommand. The short tests
// drive in-process fleets over a tiny manifest; the full e2e re-execs
// this test binary as `accesys` for local-subprocess workers (TestMain
// dispatches on ACCESYS_WORKER_MODE) and kills one of them mid-run to
// exercise reassignment against the committed fig4 golden rows.

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestMain lets the test binary double as the accesys CLI: fleet specs
// in these tests declare subprocess workers, and a subprocess worker
// re-execs its own binary — under `go test`, this binary. The modes:
//
//	"" (unset) - run the tests (the normal invocation)
//	run        - behave exactly like accesys
//	die        - behave like accesys but exit 137 after the first
//	             progress line: a worker killed mid-run, after some
//	             cache entries have already landed on disk
func TestMain(m *testing.M) {
	switch os.Getenv("ACCESYS_WORKER_MODE") {
	case "":
		os.Exit(m.Run())
	case "run":
		a := &app{stdout: os.Stdout, stderr: os.Stderr}
		os.Exit(a.main(os.Args[1:]))
	case "die":
		a := &app{stdout: os.Stdout, stderr: &dieAfterFirstProgress{}}
		os.Exit(a.main(os.Args[1:]))
	default:
		fmt.Fprintln(os.Stderr, "unknown ACCESYS_WORKER_MODE")
		os.Exit(2)
	}
}

// dieAfterFirstProgress forwards stderr until the first per-point
// progress line ("... [k/n] key -> dur ...") has been written, then
// kills the process from inside the sweep — a worker dying mid-shard
// with a partially filled cache directory (the completed point's entry
// is persisted before its progress line prints).
type dieAfterFirstProgress struct{}

func (d *dieAfterFirstProgress) Write(p []byte) (int, error) {
	n, err := os.Stderr.Write(p)
	if bytes.Contains(p, []byte("->")) {
		os.Exit(137)
	}
	return n, err
}

func TestFleetUsageErrors(t *testing.T) {
	if code, _, _ := testApp(t, "fleet"); code != 2 {
		t.Fatal("fleet without a manifest should exit 2")
	}
	manifest := writeManifest(t, quadManifest)
	if code, _, _ := testApp(t, "fleet", "-workers", "2", "-fleet", "spec.json", manifest); code != 2 {
		t.Fatal("-workers with -fleet should exit 2")
	}
	if code, _, _ := testApp(t, "fleet", "-fleet", "no/such/spec.json", manifest); code != 2 {
		t.Fatal("missing fleet spec should exit 2")
	}
	spec := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(spec, []byte(`{"workers": []}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if code, _, _ := testApp(t, "fleet", "-fleet", spec, manifest); code != 2 {
		t.Fatal("workerless spec should exit 2")
	}
	if code, _, _ := testApp(t, "fleet", "-workers", "2", "no/such/manifest.json"); code != 2 {
		t.Fatal("missing manifest should exit 2")
	}
}

func TestFleetHelpExitsZero(t *testing.T) {
	code, _, errOut := testApp(t, "fleet", "-h")
	if code != 0 {
		t.Fatalf("fleet -h exit %d, want 0", code)
	}
	if !strings.Contains(errOut, "usage: accesys fleet") {
		t.Fatalf("fleet -h printed no usage:\n%s", errOut)
	}
}

func TestFleetInProcessRoundTrip(t *testing.T) {
	// The acceptance path at quick scale: one `accesys fleet`
	// invocation completes plan -> run -> merge, and the resulting
	// cache serves a subsequent sweep entirely warm with rows identical
	// to a fresh single-process run.
	manifest := writeManifest(t, quadManifest)
	root := t.TempDir()
	out := filepath.Join(root, "merged")
	work := filepath.Join(root, "work")

	code, stdout, errOut := testApp(t, "fleet", "-workers", "2", "-out", out, "-work", work, manifest)
	if code != 0 {
		t.Fatalf("fleet exit %d:\n%s%s", code, stdout, errOut)
	}
	if !strings.Contains(stdout, "fleet quad: 2 shards over 2 workers") {
		t.Fatalf("fleet summary missing:\n%s", stdout)
	}
	if _, err := os.Stat(filepath.Join(work, "plan.json")); err != nil {
		t.Fatalf("fleet left no serialized plan: %v", err)
	}

	code, warm, errOut := testApp(t, "sweep", "-cache", out, "-v", manifest)
	if code != 0 {
		t.Fatalf("warm sweep exit %d:\n%s", code, errOut)
	}
	if !strings.Contains(errOut, "4 hits, 0 misses") {
		t.Fatalf("fleet cache not fully warm:\n%s", errOut)
	}
	code, cold, errOut := testApp(t, "sweep", "-nocache", manifest)
	if code != 0 {
		t.Fatalf("reference sweep exit %d:\n%s", code, errOut)
	}
	if got, want := stripNotes(warm), stripNotes(cold); got != want {
		t.Fatalf("fleet rows differ from single-process rows:\n--- fleet\n%s\n--- cold\n%s", got, want)
	}

	// A second fleet run sees the profile the first one persisted: the
	// plan is now weighted. The weighted plan may move points between
	// shard directories (so some re-simulate there), but the merge must
	// import nothing new — every outcome is byte-identical to what the
	// first fleet already produced.
	code, stdout2, errOut2 := testApp(t, "fleet", "-workers", "2", "-out", out, "-work", work, manifest)
	if code != 0 {
		t.Fatalf("second fleet exit %d:\n%s", code, errOut2)
	}
	if !strings.Contains(errOut2, "plan weighted by 4 profiled points") {
		t.Fatalf("second run did not weight the plan:\n%s", errOut2)
	}
	if !strings.Contains(stdout2, "0 entries imported") || strings.Contains(stdout2, "reassignments") {
		t.Fatalf("second run imported new entries into a complete cache:\n%s", stdout2)
	}
	_, _, errOut2 = testApp(t, "sweep", "-cache", out, "-v", manifest)
	if !strings.Contains(errOut2, "4 hits, 0 misses") {
		t.Fatalf("cache no longer warm after second fleet run:\n%s", errOut2)
	}
}

func TestFleetSingleWorkerMatchesSweep(t *testing.T) {
	// Degenerate fleet: one worker, one shard — still a correct,
	// mergeable run.
	manifest := writeManifest(t, miniManifest)
	root := t.TempDir()
	out := filepath.Join(root, "merged")
	code, stdout, errOut := testApp(t, "fleet", "-workers", "1", "-out", out, manifest)
	if code != 0 {
		t.Fatalf("fleet exit %d:\n%s%s", code, stdout, errOut)
	}
	_, _, errOut = testApp(t, "sweep", "-cache", out, "-v", manifest)
	if !strings.Contains(errOut, "2 hits, 0 misses") {
		t.Fatalf("single-worker fleet cache not warm:\n%s", errOut)
	}
}

// writeFleetSpec writes a fleet spec of subprocess workers re-execing
// this test binary; mode maps worker names to ACCESYS_WORKER_MODE
// values.
func writeFleetSpec(t *testing.T, modes map[string]string, order []string) string {
	t.Helper()
	var workers []string
	for _, name := range order {
		workers = append(workers, fmt.Sprintf(
			`{"name": %q, "kind": "subprocess", "env": ["ACCESYS_WORKER_MODE=%s"]}`, name, modes[name]))
	}
	spec := fmt.Sprintf(`{"workers": [%s]}`, strings.Join(workers, ", "))
	path := filepath.Join(t.TempDir(), "fleet.json")
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestFleetSubprocessWorkerKilledMidRunMatchesGolden(t *testing.T) {
	// The full acceptance e2e: three local-subprocess workers over
	// fig4, one of which is killed mid-run after its first completed
	// point. The fleet must reassign the dead worker's shard (serving
	// its partial progress warm), and the merged cache must serve
	// `accesys sweep` rows byte-identical to the committed golden rows
	// with zero cold misses.
	if testing.Short() {
		t.Skip("re-simulates all of fig4; skipped in -short")
	}
	if raceEnabled {
		t.Skip("re-simulates all of fig4 under -race for minutes without adding race coverage")
	}
	const manifest = "../../testdata/fig4.json"
	spec := writeFleetSpec(t,
		map[string]string{"w0": "run", "dying": "die", "w2": "run"},
		[]string{"w0", "dying", "w2"})
	root := t.TempDir()
	out := filepath.Join(root, "merged")
	work := filepath.Join(root, "work")

	code, stdout, errOut := testApp(t, "fleet", "-v", "-fleet", spec, "-out", out, "-work", work, manifest)
	if code != 0 {
		t.Fatalf("fleet exit %d:\nstdout:\n%s\nstderr:\n%s", code, stdout, errOut)
	}
	if !strings.Contains(errOut, "failed on dying") || !strings.Contains(errOut, "reassigning") {
		t.Fatalf("dying worker's shard was not reassigned:\n%s", errOut)
	}
	if !strings.Contains(stdout, "reassignments") {
		t.Fatalf("fleet summary does not report reassignments:\n%s", stdout)
	}
	for _, line := range strings.Split(stdout, "\n") {
		if strings.Contains(line, "on dying") {
			t.Fatalf("a shard is credited to the killed worker:\n%s", stdout)
		}
	}

	// Zero cold misses on re-sweep, rows byte-identical to golden.
	code, rows, errOut := testApp(t, "sweep", "-cache", out, "-v", manifest)
	if code != 0 {
		t.Fatalf("warm sweep exit %d:\n%s", code, errOut)
	}
	if !strings.Contains(errOut, "35 hits, 0 misses") {
		t.Fatalf("merged fig4 cache not fully warm:\n%s", errOut)
	}
	golden, err := os.ReadFile("../../testdata/golden/fig4.txt")
	if err != nil {
		t.Fatal(err)
	}
	if got, want := stripNotes(rows), stripNotes(string(golden)); got != want {
		t.Fatalf("fleet rows differ from golden fig4 rows:\n--- got\n%s\n--- want\n%s", got, want)
	}
}
