package main

// End-to-end tests of the `accesys serve` daemon. The smoke test
// re-execs this test binary as the real daemon process (TestMain's
// ACCESYS_WORKER_MODE=run), drives it over HTTP on an ephemeral port,
// and shuts it down with SIGTERM; the golden test runs the serve
// engine in-process over concurrently submitted overlapping fig4
// manifests and holds the rows to the committed golden corpus.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"accesys/internal/serve"
	"accesys/internal/sweep"
)

// serveJobStatus mirrors the daemon's job status wire format.
type serveJobStatus struct {
	ID        string `json:"id"`
	State     string `json:"state"`
	Error     string `json:"error"`
	Total     int    `json:"total"`
	Completed int    `json:"completed"`
	Cold      int    `json:"cold"`
	Warm      int    `json:"warm"`
	Shared    int    `json:"shared"`
}

// servePost submits a manifest and decodes the JSON answer.
func servePost(t *testing.T, base, manifest, client string) (int, map[string]any, http.Header) {
	t.Helper()
	req, err := http.NewRequest("POST", base+"/sweeps", strings.NewReader(manifest))
	if err != nil {
		t.Fatal(err)
	}
	if client != "" {
		req.Header.Set("X-Accesys-Client", client)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body map[string]any
	json.NewDecoder(resp.Body).Decode(&body)
	return resp.StatusCode, body, resp.Header
}

// serveWait polls a job until it reaches a terminal state.
func serveWait(t *testing.T, base, id string) serveJobStatus {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for {
		resp, err := http.Get(base + "/sweeps/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st serveJobStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if st.State == "done" || st.State == "failed" {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %q (%d/%d)", id, st.State, st.Completed, st.Total)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// serveGetText fetches a job's rows in text format.
func serveGetText(t *testing.T, base, id string) string {
	t.Helper()
	resp, err := http.Get(base + "/sweeps/" + id + "/rows?format=text")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("rows status %d: %s", resp.StatusCode, data)
	}
	return string(data)
}

func TestServeSmokeDaemon(t *testing.T) {
	// The daemon smoke: a real `accesys serve` process on an ephemeral
	// port runs the CI smoke manifest cold, then warm, renders rows
	// identical to a direct sweep, and drains cleanly on SIGTERM.
	manifest, err := os.ReadFile("../../testdata/smoke.json")
	if err != nil {
		t.Fatal(err)
	}
	cacheDir := t.TempDir()

	cmd := exec.Command(os.Args[0], "serve", "-addr", "127.0.0.1:0", "-cache", cacheDir, "-v")
	cmd.Env = append(os.Environ(), "ACCESYS_WORKER_MODE=run")
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// The daemon prints its bound address once the listener is up; keep
	// draining stderr afterwards so the process never blocks on the pipe.
	var base string
	var logged bytes.Buffer
	var drained sync.WaitGroup
	scanner := bufio.NewScanner(stderr)
	for scanner.Scan() {
		line := scanner.Text()
		logged.WriteString(line + "\n")
		if _, addr, ok := strings.Cut(line, "serving on "); ok {
			base = addr
			break
		}
	}
	if base == "" {
		t.Fatalf("daemon never announced its address:\n%s", logged.String())
	}
	drained.Add(1)
	go func() {
		defer drained.Done()
		for scanner.Scan() {
			logged.WriteString(scanner.Text() + "\n")
		}
	}()

	// Cold run: every point simulated here.
	code, body, _ := servePost(t, base, string(manifest), "smoke")
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %v", code, body)
	}
	st := serveWait(t, base, body["id"].(string))
	if st.State != "done" || st.Cold != 4 || st.Warm != 0 {
		t.Fatalf("cold job = %+v, want done with 4 cold", st)
	}
	rows := serveGetText(t, base, st.ID)

	// Warm run: the same manifest resolves entirely from the shared cache.
	code, body, _ = servePost(t, base, string(manifest), "smoke")
	if code != http.StatusAccepted {
		t.Fatalf("warm submit: %d %v", code, body)
	}
	if st := serveWait(t, base, body["id"].(string)); st.Warm != 4 || st.Cold != 0 {
		t.Fatalf("warm job = %+v, want 4 warm", st)
	}

	// The daemon's rows match a direct in-process sweep byte for byte.
	sweepCode, direct, errOut := testApp(t, "sweep", "-nocache", "../../testdata/smoke.json")
	if sweepCode != 0 {
		t.Fatalf("reference sweep exit %d:\n%s", sweepCode, errOut)
	}
	if got, want := stripNotes(rows), stripNotes(direct); got != want {
		t.Fatalf("daemon rows differ from direct sweep:\n--- daemon\n%s\n--- direct\n%s", got, want)
	}

	// A manifest carrying an explore stanza must bounce with a clear
	// 422 naming the stanza — the daemon used to strip it silently and
	// sweep the full matrix instead of searching it.
	exploreManifest := strings.Replace(string(manifest), `"axes"`,
		`"explore": {"strategy": "random", "budget": "4"}, "axes"`, 1)
	code, body, _ = servePost(t, base, exploreManifest, "smoke")
	if code != http.StatusUnprocessableEntity {
		t.Fatalf("explore manifest submit: %d %v, want 422", code, body)
	}
	if msg, _ := body["error"].(string); !strings.Contains(msg, "explore") {
		t.Fatalf("explore rejection must name the stanza: %v", body)
	}

	// Graceful shutdown: SIGTERM drains and exits 0.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	drained.Wait()
	if err := cmd.Wait(); err != nil {
		t.Fatalf("daemon exit after SIGTERM: %v\n%s", err, logged.String())
	}
	if !strings.Contains(logged.String(), "serve drained") {
		t.Fatalf("daemon log missing drain notice:\n%s", logged.String())
	}
}

// fig4Superset is testdata/fig4.json with one extra packet size: the
// same scenario name, so its 35 overlapping points carry identical
// fingerprints, plus 5 points of its own.
const fig4Superset = `{
  "name": "fig4",
  "title": "Packet size sweep, GEMM %d",
  "base": "pcie8gb",
  "workload": {"kind": "gemm", "n": {"quick": 512, "full": 2048}},
  "axes": [
    {"axis": "link", "values": [
      {"gbps": 4, "lanes": 4},
      {"gbps": 8, "lanes": 8},
      {"gbps": 16, "lanes": 16},
      {"gbps": 32, "lanes": 16},
      {"gbps": 64, "lanes": 16}
    ]},
    {"axis": "packet_bytes", "values": [32, 64, 128, 256, 512, 1024, 2048, 4096]}
  ],
  "table": {"row": "link", "row_header": "GB/s", "col": "packet_bytes", "cell": "ms3"}
}`

func TestServeConcurrentOverlapMatchesGolden(t *testing.T) {
	// The acceptance e2e: two clients concurrently submit overlapping
	// manifests (fig4 and a superset of it). In-flight dedup must
	// simulate the 35 shared points exactly once — cold counts across
	// both jobs sum to the 40 unique points — and the fig4 job's rows
	// must match the committed golden corpus byte for byte. While both
	// jobs occupy the runners, a queue-full submission bounces with the
	// documented back-pressure status.
	if testing.Short() {
		t.Skip("re-simulates all of fig4; skipped in -short")
	}
	if raceEnabled {
		t.Skip("re-simulates all of fig4 under -race for minutes without adding race coverage")
	}
	fig4, err := os.ReadFile("../../testdata/fig4.json")
	if err != nil {
		t.Fatal(err)
	}
	cache, err := sweep.OpenSalted(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv, err := serve.New(serve.Config{Cache: cache, Concurrency: 2, QueueLimit: 1, Jobs: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })

	code, b1, _ := servePost(t, ts.URL, string(fig4), "alice")
	if code != http.StatusAccepted {
		t.Fatalf("fig4 submit: %d %v", code, b1)
	}
	code, b2, _ := servePost(t, ts.URL, fig4Superset, "bob")
	if code != http.StatusAccepted {
		t.Fatalf("superset submit: %d %v", code, b2)
	}

	// Both runners are busy for the next several seconds. One more job
	// fits the queue; the next must be pushed back.
	code, b3, _ := servePost(t, ts.URL, miniManifest, "carol")
	if code != http.StatusAccepted {
		t.Fatalf("queued submit: %d %v", code, b3)
	}
	code, _, hdr := servePost(t, ts.URL, miniManifest, "dave")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("queue-full submit: %d, want 503", code)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("back-pressure response missing Retry-After")
	}

	st1 := serveWait(t, ts.URL, b1["id"].(string))
	st2 := serveWait(t, ts.URL, b2["id"].(string))
	if st1.State != "done" || st2.State != "done" {
		t.Fatalf("jobs failed: %+v / %+v", st1, st2)
	}
	if st1.Total != 35 || st2.Total != 40 {
		t.Fatalf("totals %d/%d, want 35/40", st1.Total, st2.Total)
	}
	// 40 unique points across both jobs, every one simulated exactly
	// once: the 35-point overlap resolved through the shared cache or
	// in-flight adoption, never by a second simulation.
	if st1.Cold+st2.Cold != 40 {
		t.Fatalf("cold sum %d+%d = %d, want the 40 unique points",
			st1.Cold, st2.Cold, st1.Cold+st2.Cold)
	}
	for _, st := range []serveJobStatus{st1, st2} {
		if st.Cold+st.Warm+st.Shared != st.Completed || st.Completed != st.Total {
			t.Fatalf("job %s counters inconsistent: %+v", st.ID, st)
		}
	}

	golden, err := os.ReadFile("../../testdata/golden/fig4.txt")
	if err != nil {
		t.Fatal(err)
	}
	rows := serveGetText(t, ts.URL, st1.ID)
	if got, want := stripNotes(rows), stripNotes(string(golden)); got != want {
		t.Fatalf("served fig4 rows differ from golden:\n--- got\n%s\n--- want\n%s", got, want)
	}
	serveWait(t, ts.URL, b3["id"].(string))
}
