package main

// End-to-end coverage of the heterogeneous manifests: golden rows for
// the mixed-kind farm and the two-tenant contention scenario (quick
// scale), byte-determinism across fresh caches and worker counts, the
// per-tenant metric surface, and the pareq divergence audit under
// -domains 4. Regenerate the golden files with
//
//	UPDATE_GOLDEN=1 go test ./cmd/accesys -run TestHetGoldenRows
//
// and review the diff like any other code change.

import (
	"os"
	"strings"
	"testing"
)

var hetManifests = []string{"hetfarm", "tenants"}

func hetSweep(t *testing.T, args ...string) string {
	t.Helper()
	code, rows, errOut := testApp(t, args...)
	if code != 0 {
		t.Fatalf("sweep %v exit %d:\n%s", args, code, errOut)
	}
	return rows
}

func TestHetGoldenRows(t *testing.T) {
	update := os.Getenv("UPDATE_GOLDEN") != ""
	for _, name := range hetManifests {
		rows := hetSweep(t, "sweep", "-nocache", "../../testdata/"+name+".json")
		path := "../../testdata/golden/" + name + ".txt"
		if update {
			if err := os.WriteFile(path, []byte(rows), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		golden, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("missing golden file (run UPDATE_GOLDEN=1 go test ./cmd/accesys -run TestHetGoldenRows): %v", err)
		}
		if got, want := stripNotes(rows), stripNotes(string(golden)); got != want {
			t.Fatalf("%s rows drifted from golden:\n--- got\n%s\n--- want\n%s", name, got, want)
		}
	}
}

func TestHetSweepDeterministicAcrossJobs(t *testing.T) {
	// Two fresh-cache runs and -jobs 1 vs -jobs 4 must render
	// byte-identical rows: heterogeneous points are fingerprint-carried
	// and deterministic per config.
	for _, name := range hetManifests {
		manifest := "../../testdata/" + name + ".json"
		one := hetSweep(t, "sweep", "-nocache", "-jobs", "1", manifest)
		again := hetSweep(t, "sweep", "-nocache", "-jobs", "1", manifest)
		four := hetSweep(t, "sweep", "-nocache", "-jobs", "4", manifest)
		if a, b := stripNotes(one), stripNotes(again); a != b {
			t.Fatalf("%s not deterministic across fresh caches:\n--- first\n%s\n--- second\n%s", name, a, b)
		}
		if a, b := stripNotes(one), stripNotes(four); a != b {
			t.Fatalf("%s differs between -jobs 1 and -jobs 4:\n--- jobs1\n%s\n--- jobs4\n%s", name, a, b)
		}
	}
}

func TestTenantSweepReportsPerTenantMetrics(t *testing.T) {
	rows := hetSweep(t, "sweep", "-nocache", "../../testdata/tenants.json")
	for _, col := range []string{"t0_slowdown", "t1_slowdown", "t0_solo_ns", "fairness"} {
		if !strings.Contains(rows, col) {
			t.Fatalf("tenant sweep missing %s column:\n%s", col, rows)
		}
	}
}

func TestHetPareqWithinBand(t *testing.T) {
	// The acceptance bound: both heterogeneous manifests run under
	// -domains 4 within the 5% pareq divergence band.
	for _, name := range hetManifests {
		code, out, errOut := testApp(t, "pareq", "-nocache", "-domains", "4", "-tol", "0.05",
			"../../testdata/"+name+".json")
		if code != 0 {
			t.Fatalf("pareq %s exit %d:\n%s%s", name, code, out, errOut)
		}
	}
}
