package main

// End-to-end tests of the `accesys shard` subcommand tree: dispatch
// and usage errors, plan JSON, the plan -> run -> merge -> warm-sweep
// round trip on a small manifest (and, under -race, with two workers
// running concurrently), and the full fig4 acceptance path against
// the committed golden rows.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// quadManifest is a four-point GEMM matrix small enough to simulate
// in milliseconds but wide enough that a 2-way partition usually
// populates both shards.
const quadManifest = `{
  "name": "quad",
  "title": "quad sweep",
  "base": "pcie8gb",
  "workload": {"kind": "gemm", "n": 64},
  "axes": [{"axis": "lanes", "values": [1, 2, 4, 8]}]
}`

func TestShardRequiresSubcommand(t *testing.T) {
	code, _, errOut := testApp(t, "shard")
	if code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(errOut, "usage: accesys shard plan") {
		t.Fatalf("no usage on stderr:\n%s", errOut)
	}
}

func TestShardUnknownSubcommandFails(t *testing.T) {
	code, _, errOut := testApp(t, "shard", "frobnicate")
	if code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(errOut, "unknown shard subcommand") {
		t.Fatalf("stderr missing diagnosis:\n%s", errOut)
	}
}

func TestShardHelpExitsZero(t *testing.T) {
	if code, _, _ := testApp(t, "shard", "-h"); code != 0 {
		t.Fatal("shard -h should exit 0")
	}
}

func TestShardPlanEmitsPartitionJSON(t *testing.T) {
	manifest := writeManifest(t, quadManifest)
	code, out, errOut := testApp(t, "shard", "plan", "-shards", "3", manifest)
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, errOut)
	}
	var plan struct {
		Scenario string `json:"scenario"`
		Shards   int    `json:"shards"`
		Counts   []int  `json:"counts"`
		Points   []struct {
			Index       int    `json:"index"`
			Key         string `json:"key"`
			Fingerprint string `json:"fingerprint"`
			Shard       int    `json:"shard"`
		} `json:"points"`
	}
	if err := json.Unmarshal([]byte(out), &plan); err != nil {
		t.Fatalf("plan is not valid JSON: %v\n%s", err, out)
	}
	if plan.Scenario != "quad" || plan.Shards != 3 || len(plan.Points) != 4 {
		t.Fatalf("unexpected plan: %+v", plan)
	}
	total := 0
	for _, c := range plan.Counts {
		total += c
	}
	if total != 4 {
		t.Fatalf("counts %v do not cover 4 points", plan.Counts)
	}
	for i, p := range plan.Points {
		if p.Index != i || p.Shard < 0 || p.Shard >= 3 || p.Fingerprint == "" {
			t.Fatalf("bad assignment %d: %+v", i, p)
		}
	}
}

func TestShardPlanRequiresShards(t *testing.T) {
	manifest := writeManifest(t, quadManifest)
	code, _, errOut := testApp(t, "shard", "plan", manifest)
	if code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(errOut, "-shards") {
		t.Fatalf("stderr missing diagnosis:\n%s", errOut)
	}
}

func TestShardRunRejectsBadSpecs(t *testing.T) {
	manifest := writeManifest(t, quadManifest)
	dir := t.TempDir()
	for _, spec := range []string{"", "2", "3/3", "-1/3", "x/3", "1/x"} {
		if code, _, _ := testApp(t, "shard", "run", "-shard", spec, "-dir", dir, manifest); code != 2 {
			t.Fatalf("-shard %q accepted", spec)
		}
	}
	if code, _, _ := testApp(t, "shard", "run", "-shard", "0/2", manifest); code != 2 {
		t.Fatal("missing -dir accepted")
	}
}

func TestShardMergeRejectsBadInput(t *testing.T) {
	if code, _, _ := testApp(t, "shard", "merge", t.TempDir()); code != 2 {
		t.Fatal("missing -out accepted")
	}
	if code, _, _ := testApp(t, "shard", "merge", "-out", t.TempDir()); code != 2 {
		t.Fatal("missing shard dirs accepted")
	}
	// A directory without shard.json is not a shard.
	code, _, errOut := testApp(t, "shard", "merge", "-out", t.TempDir(), t.TempDir())
	if code != 2 || !strings.Contains(errOut, "not a shard directory") {
		t.Fatalf("summary-less dir accepted (exit %d):\n%s", code, errOut)
	}
}

// runShardCLI runs `shard run` for slice k/n into dir, reporting a
// non-zero exit via t.Errorf — Error, not Fatal, so it is safe to
// call from spawned worker goroutines too.
func runShardCLI(t *testing.T, manifest, dir string, k, n int) bool {
	t.Helper()
	code, out, errOut := testApp(t, "shard", "run", "-shard", fmt.Sprintf("%d/%d", k, n), "-dir", dir, manifest)
	if code != 0 {
		t.Errorf("shard run %d/%d exit %d:\n%s%s", k, n, code, out, errOut)
		return false
	}
	return true
}

func TestShardRoundTripWarmsSweep(t *testing.T) {
	// plan -> run each shard -> merge -> sweep over the merged cache:
	// every point must be served warm and the rows must match a
	// single-process run byte for byte.
	manifest := writeManifest(t, quadManifest)
	root := t.TempDir()
	var dirs []string
	for k := 0; k < 2; k++ {
		dir := filepath.Join(root, fmt.Sprintf("s%d", k))
		if !runShardCLI(t, manifest, dir, k, 2) {
			return
		}
		dirs = append(dirs, dir)
	}
	merged := filepath.Join(root, "merged")
	code, out, errOut := testApp(t, append([]string{"shard", "merge", "-out", merged}, dirs...)...)
	if code != 0 {
		t.Fatalf("merge exit %d:\n%s%s", code, out, errOut)
	}
	if !strings.Contains(out, "4 entries imported") {
		t.Fatalf("merge report:\n%s", out)
	}

	code, warm, errOut := testApp(t, "sweep", "-cache", merged, "-v", manifest)
	if code != 0 {
		t.Fatalf("warm sweep exit %d:\n%s", code, errOut)
	}
	if !strings.Contains(errOut, "4 hits, 0 misses") {
		t.Fatalf("merged cache not fully warm:\n%s", errOut)
	}
	code, cold, errOut := testApp(t, "sweep", "-nocache", manifest)
	if code != 0 {
		t.Fatalf("reference sweep exit %d:\n%s", code, errOut)
	}
	if got, want := stripNotes(warm), stripNotes(cold); got != want {
		t.Fatalf("warm rows differ from single-process rows:\n--- warm\n%s\n--- cold\n%s", got, want)
	}

	// The equivalence audit's timing side must be served from the
	// merged cache too.
	code, _, errOut = testApp(t, "equiv", "-cache", merged, "-v", manifest)
	if code != 0 {
		t.Fatalf("equiv over merged cache exit %d:\n%s", code, errOut)
	}
	if !strings.Contains(errOut, "4 hits, 0 misses") {
		t.Fatalf("equiv did not warm-hit the merged cache:\n%s", errOut)
	}
}

func TestShardConcurrentWorkers(t *testing.T) {
	// Two shard workers running concurrently against sibling
	// directories — the process-parallel deployment, compressed into
	// goroutines so the race detector can watch it.
	manifest := writeManifest(t, quadManifest)
	root := t.TempDir()
	dirs := []string{filepath.Join(root, "s0"), filepath.Join(root, "s1")}
	var wg sync.WaitGroup
	for k := 0; k < 2; k++ {
		k := k
		wg.Add(1)
		go func() {
			defer wg.Done()
			runShardCLI(t, manifest, dirs[k], k, 2)
		}()
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	merged := filepath.Join(root, "merged")
	if code, _, errOut := testApp(t, append([]string{"shard", "merge", "-out", merged}, dirs...)...); code != 0 {
		t.Fatalf("merge exit %d:\n%s", code, errOut)
	}
	_, _, errOut := testApp(t, "sweep", "-cache", merged, "-v", manifest)
	if !strings.Contains(errOut, "4 hits, 0 misses") {
		t.Fatalf("merged cache not fully warm:\n%s", errOut)
	}
}

func TestShardWeightedPlanRoundTripViaCLI(t *testing.T) {
	// Warm a cache (which also warms its wall-time profile), compute a
	// weighted plan from it, and run both shards from the serialized
	// plan file — the same path the fleet launcher drives.
	manifest := writeManifest(t, quadManifest)
	root := t.TempDir()
	cacheDir := filepath.Join(root, "cache")
	if code, _, errOut := testApp(t, "sweep", "-cache", cacheDir, manifest); code != 0 {
		t.Fatalf("profiling sweep failed:\n%s", errOut)
	}

	code, planJSON, errOut := testApp(t, "shard", "plan", "-profile", cacheDir, "-shards", "2", manifest)
	if code != 0 {
		t.Fatalf("weighted plan exit %d:\n%s", code, errOut)
	}
	if !strings.Contains(planJSON, `"weighted": true`) || !strings.Contains(planJSON, `"predicted_wall_ns"`) {
		t.Fatalf("plan is not weighted:\n%s", planJSON)
	}
	planPath := filepath.Join(root, "plan.json")
	if err := os.WriteFile(planPath, []byte(planJSON), 0o644); err != nil {
		t.Fatal(err)
	}

	var dirs []string
	for k := 0; k < 2; k++ {
		dir := filepath.Join(root, fmt.Sprintf("s%d", k))
		code, out, errOut := testApp(t, "shard", "run", "-plan", planPath, "-shard", fmt.Sprintf("%d/2", k), "-dir", dir, manifest)
		if code != 0 {
			t.Fatalf("shard run -plan %d/2 exit %d:\n%s%s", k, code, out, errOut)
		}
		dirs = append(dirs, dir)
	}
	merged := filepath.Join(root, "merged")
	if code, _, errOut := testApp(t, append([]string{"shard", "merge", "-out", merged}, dirs...)...); code != 0 {
		t.Fatalf("merge exit %d:\n%s", code, errOut)
	}
	_, _, errOut = testApp(t, "sweep", "-cache", merged, "-v", manifest)
	if !strings.Contains(errOut, "4 hits, 0 misses") {
		t.Fatalf("merged weighted-plan cache not fully warm:\n%s", errOut)
	}
}

func TestShardRunRejectsMismatchedPlan(t *testing.T) {
	manifest := writeManifest(t, quadManifest)
	root := t.TempDir()
	code, planJSON, errOut := testApp(t, "shard", "plan", "-shards", "2", manifest)
	if code != 0 {
		t.Fatalf("plan exit %d:\n%s", code, errOut)
	}
	planPath := filepath.Join(root, "plan.json")
	if err := os.WriteFile(planPath, []byte(planJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(root, "s0")
	// Shard width disagrees with the plan.
	if code, _, _ := testApp(t, "shard", "run", "-plan", planPath, "-shard", "0/3", "-dir", dir, manifest); code != 2 {
		t.Fatal("plan/shard width mismatch accepted")
	}
	// -full disagrees with the plan.
	if code, _, _ := testApp(t, "shard", "run", "-full", "-plan", planPath, "-shard", "0/2", "-dir", dir, manifest); code != 2 {
		t.Fatal("plan/full mismatch accepted")
	}
	// A different manifest (scenario name) disagrees with the plan.
	other := writeManifest(t, miniManifest)
	if code, _, _ := testApp(t, "shard", "run", "-plan", planPath, "-shard", "0/2", "-dir", dir, other); code != 2 {
		t.Fatal("plan/scenario mismatch accepted")
	}
	// A missing or corrupt plan file fails loudly.
	if code, _, _ := testApp(t, "shard", "run", "-plan", "no/such/plan.json", "-shard", "0/2", "-dir", dir, manifest); code != 2 {
		t.Fatal("missing plan accepted")
	}
	bad := filepath.Join(root, "bad.json")
	if err := os.WriteFile(bad, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code, _, _ := testApp(t, "shard", "run", "-plan", bad, "-shard", "0/2", "-dir", dir, manifest); code != 2 {
		t.Fatal("corrupt plan accepted")
	}
}

// stripNotes drops the trailing comment lines (wall time, shape
// checks) a renderer appends, leaving title, header, and data rows.
func stripNotes(table string) string {
	var rows []string
	for _, line := range strings.Split(table, "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "#") {
			continue
		}
		rows = append(rows, line)
	}
	return strings.Join(rows, "\n")
}

func TestShardFig4RoundTripMatchesGolden(t *testing.T) {
	// The acceptance path: 3-shard fig4 plan/run/merge, then the
	// merged cache must serve `accesys sweep` rows byte-identical to
	// the committed golden rows with zero cold simulations.
	if testing.Short() {
		t.Skip("re-simulates all of fig4; skipped in -short")
	}
	if raceEnabled {
		t.Skip("re-simulates all of fig4 under -race for minutes without adding race coverage")
	}
	const manifest = "../../testdata/fig4.json"
	root := t.TempDir()
	var dirs []string
	for k := 0; k < 3; k++ {
		dir := filepath.Join(root, fmt.Sprintf("s%d", k))
		if !runShardCLI(t, manifest, dir, k, 3) {
			return
		}
		dirs = append(dirs, dir)
	}
	merged := filepath.Join(root, "merged")
	code, out, errOut := testApp(t, append([]string{"shard", "merge", "-out", merged}, dirs...)...)
	if code != 0 {
		t.Fatalf("merge exit %d:\n%s%s", code, out, errOut)
	}

	code, rows, errOut := testApp(t, "sweep", "-cache", merged, "-v", manifest)
	if code != 0 {
		t.Fatalf("warm sweep exit %d:\n%s", code, errOut)
	}
	if !strings.Contains(errOut, "35 hits, 0 misses") {
		t.Fatalf("merged fig4 cache not fully warm:\n%s", errOut)
	}
	golden, err := os.ReadFile("../../testdata/golden/fig4.txt")
	if err != nil {
		t.Fatal(err)
	}
	// The golden file carries the experiment's shape-check notes and
	// the sweep appends a wall-time note; the byte-identity claim is
	// about title, header, and data rows.
	if got, want := stripNotes(rows), stripNotes(string(golden)); got != want {
		t.Fatalf("merged-cache rows differ from golden fig4 rows:\n--- got\n%s\n--- want\n%s", got, want)
	}
}
