package main

// pareq is the parallel-vs-sequential divergence audit: it runs the
// same expanded matrix through the sequential event loop and through a
// partitioned (-domains N) build and reports the per-point relative
// divergence of the primary duration metric. Conservative barrier
// synchronization with a timing-exact quantum still diverges from the
// sequential loop by the latency annotated on the domain cuts (the cut
// turns a same-tick port hop into a PCIe/device-bus flight), so the
// audit pins that band rather than demanding byte-identity — which
// only `-domains 1` guarantees, and which the golden corpus pins
// separately.

import (
	"fmt"
	"math"
	"strings"

	"accesys/internal/exp"
	"accesys/internal/scenario"
)

func (a *app) cmdPareq(args []string) int {
	fs := a.newFlagSet("pareq")
	f := addSweepFlags(fs)
	tol := fs.Float64("tol", 0.05, "fail when any point's relative divergence exceeds this")
	fs.Usage = func() {
		fmt.Fprintf(a.stderr, "usage: accesys pareq [-full] [-v] [-jobs N] [-cache dir] [-nocache] [-domains N] [-quantum d] [-tol f] manifest.json|experiment ...\n")
		fmt.Fprintf(a.stderr, "experiments: %s\n", strings.Join(exp.IDs(), " "))
		fs.PrintDefaults()
	}
	if code := parse(fs, args); code >= 0 {
		return code
	}
	targets := fs.Args()
	if len(targets) == 0 {
		fs.Usage()
		return usageErr
	}
	if *tol <= 0 {
		return a.errorf("-tol must be positive")
	}

	opt := a.options(f)
	// The audit needs a partitioned side; default to the full ladder
	// when the shared flag was left at its sequential default.
	nd := opt.Domains
	if nd <= 1 {
		nd = 4
	}

	failed := false
	for _, target := range targets {
		sc, ok := exp.Matrix(target)
		if !ok {
			var err error
			sc, err = scenario.Load(target)
			if err != nil {
				return a.errorf("%q is neither a built-in experiment nor a loadable manifest: %v", target, err)
			}
		}

		seqRuns, err := sc.Expand(opt.Full)
		if err != nil {
			return a.errorf("%v", err)
		}
		parRuns, err := sc.Expand(opt.Full)
		if err != nil {
			return a.errorf("%v", err)
		}
		if len(seqRuns) == 0 {
			return a.errorf("%s: empty matrix", sc.Name)
		}
		parOpt := opt
		parOpt.Domains = nd
		parOpt.Apply(parRuns)

		seqOpt := opt
		seqOpt.Domains = 1
		seqOuts := seqOpt.Sweep(sc.Name+" seq", sc.Points(seqRuns))
		parOuts := parOpt.Sweep(fmt.Sprintf("%s par%d", sc.Name, nd), sc.Points(parRuns))

		var sum, worst float64
		worstKey := ""
		quantum := "exact"
		if opt.Quantum > 0 {
			quantum = opt.Quantum.String()
		}
		fmt.Fprintf(a.stdout, "pareq %s (domains=%d quantum=%s): %d points\n",
			sc.Name, nd, quantum, len(seqOuts))
		for i := range seqOuts {
			s := float64(seqOuts[i].Dur)
			p := float64(parOuts[i].Dur)
			var rel float64
			if s > 0 {
				rel = math.Abs(p-s) / s
			} else if p != 0 {
				rel = math.Inf(1)
			}
			sum += rel
			if rel > worst {
				worst, worstKey = rel, seqRuns[i].Key
			}
			fmt.Fprintf(a.stdout, "  %-40s seq=%-12v par=%-12v %+.2f%%\n",
				seqRuns[i].Key, seqOuts[i].Dur, parOuts[i].Dur, 100*(p-s)/s)
		}
		mean := sum / float64(len(seqOuts))
		verdict := "PASS"
		if worst > *tol {
			verdict, failed = "FAIL", true
		}
		fmt.Fprintf(a.stdout, "  mean %.2f%%  max %.2f%% (%s)  tol %.1f%%: %s\n",
			100*mean, 100*worst, worstKey, 100**tol, verdict)
	}
	a.finish(opt)
	if failed {
		return exitFail
	}
	return exitOK
}
