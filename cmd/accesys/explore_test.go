package main

// End-to-end tests of accesys explore: flag validation, deterministic
// output across identical invocations, trace emission, and the
// acceptance claim that explore's cache entries alias the plain fig4
// sweep's (so the golden corpus stays byte-identical for every point
// the search touched).

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// miniExploreManifest is the two-point mini matrix plus an explore
// stanza with a fixed seed and a one-point budget.
const miniExploreManifest = `{
  "name": "mini",
  "title": "mini sweep",
  "base": "pcie8gb",
  "workload": {"kind": "gemm", "n": 64},
  "axes": [{"axis": "lanes", "values": [4, 8]}],
  "explore": {
    "objective": {"metric": "exec", "goal": "min"},
    "strategy": "random",
    "seed": 3,
    "budget": "1"
  }
}`

func TestExploreRequiresManifest(t *testing.T) {
	code, _, errOut := testApp(t, "explore")
	if code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(errOut, "usage:") {
		t.Fatalf("no usage on stderr:\n%s", errOut)
	}
}

func TestExploreWithoutStanzaFails(t *testing.T) {
	manifest := writeManifest(t, miniManifest)
	code, _, errOut := testApp(t, "explore", "-nocache", "-trace", "", manifest)
	if code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(errOut, "no explore stanza") {
		t.Fatalf("stderr missing diagnosis:\n%s", errOut)
	}
}

func TestExploreBadOverridesFail(t *testing.T) {
	manifest := writeManifest(t, miniExploreManifest)
	for _, args := range [][]string{
		{"explore", "-nocache", "-trace", "", "-strategy", "anneal", manifest},
		{"explore", "-nocache", "-trace", "", "-budget", "lots", manifest},
	} {
		if code, _, _ := testApp(t, args...); code != 2 {
			t.Fatalf("%v: exit %d, want 2", args, code)
		}
	}
}

func TestExploreDeterministicOutput(t *testing.T) {
	manifest := writeManifest(t, miniExploreManifest)
	dir := t.TempDir()
	var outs [2]string
	var traces [2][]byte
	for i := range outs {
		trace := filepath.Join(dir, "trace", "run", "explore.json")
		code, out, errOut := testApp(t, "explore", "-nocache", "-jobs", "2", "-trace", trace, manifest)
		if code != 0 {
			t.Fatalf("exit %d, stderr:\n%s", code, errOut)
		}
		outs[i] = out
		data, err := os.ReadFile(trace)
		if err != nil {
			t.Fatal(err)
		}
		traces[i] = data
	}
	if outs[0] != outs[1] {
		t.Fatalf("same (manifest, seed, budget) printed different frontiers:\n%s\nvs\n%s", outs[0], outs[1])
	}
	if string(traces[0]) != string(traces[1]) {
		t.Fatalf("same (manifest, seed, budget) wrote different traces:\n%s\nvs\n%s", traces[0], traces[1])
	}
	var tr struct {
		Strategy string `json:"strategy"`
		Seed     int64  `json:"seed"`
		Summary  struct {
			Promoted int `json:"promoted"`
		} `json:"summary"`
	}
	if err := json.Unmarshal(traces[0], &tr); err != nil {
		t.Fatal(err)
	}
	if tr.Strategy != "random" || tr.Seed != 3 || tr.Summary.Promoted != 1 {
		t.Fatalf("trace header/summary off: %+v", tr)
	}
	if !strings.Contains(outs[0], "search frontier") {
		t.Fatalf("frontier table missing:\n%s", outs[0])
	}
}

func TestExploreSeedFlagOverridesManifest(t *testing.T) {
	manifest := writeManifest(t, miniExploreManifest)
	trace := filepath.Join(t.TempDir(), "explore.json")
	code, _, errOut := testApp(t, "explore", "-nocache", "-seed", "99", "-trace", trace, manifest)
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, errOut)
	}
	data, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	var tr struct {
		Seed int64 `json:"seed"`
	}
	if err := json.Unmarshal(data, &tr); err != nil {
		t.Fatal(err)
	}
	if tr.Seed != 99 {
		t.Fatalf("trace seed %d, want the -seed flag's 99", tr.Seed)
	}
}

func TestExploreCSVOutput(t *testing.T) {
	manifest := writeManifest(t, miniExploreManifest)
	csvPath := filepath.Join(t.TempDir(), "frontier.csv")
	code, _, errOut := testApp(t, "explore", "-nocache", "-trace", "", "-csv", csvPath, manifest)
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, errOut)
	}
	data, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "point") {
		t.Fatalf("CSV missing header:\n%s", data)
	}
}

func TestExploreFig4CacheAliasesGoldenSweep(t *testing.T) {
	// The acceptance path: a halving search over the fig4-derived
	// objective must find the known optimum while cold-simulating
	// fewer than half of the 35 points, and the cache it leaves behind
	// must serve the plain fig4 sweep rows byte-identical to the
	// committed golden rows for every touched point.
	if testing.Short() {
		t.Skip("simulates fig4 points; skipped in -short")
	}
	if raceEnabled {
		t.Skip("simulates fig4 points under -race for minutes without adding race coverage")
	}
	const manifest = "../../testdata/explore_fig4.json"
	cache := filepath.Join(t.TempDir(), "cache")
	trace := filepath.Join(t.TempDir(), "explore.json")
	code, out, errOut := testApp(t, "explore", "-cache", cache, "-jobs", "4", "-trace", trace, manifest)
	if code != 0 {
		t.Fatalf("explore exit %d:\n%s%s", code, out, errOut)
	}
	// Known optimum: the widest link with the 512B packet sweet spot.
	rank1 := ""
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "1 ") {
			rank1 = line
			break
		}
	}
	if !strings.Contains(rank1, "fig4-64-512") {
		t.Fatalf("frontier rank 1 is not the known optimum:\n%s", out)
	}
	data, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	var tr struct {
		SpaceSize int `json:"space_size"`
		Summary   struct {
			Screened   int `json:"screened"`
			ColdTiming int `json:"cold_timing"`
		} `json:"summary"`
	}
	if err := json.Unmarshal(data, &tr); err != nil {
		t.Fatal(err)
	}
	if tr.SpaceSize != 35 || tr.Summary.Screened != 35 {
		t.Fatalf("screen did not cover the space: %+v", tr)
	}
	if tr.Summary.ColdTiming == 0 || tr.Summary.ColdTiming*2 >= tr.SpaceSize {
		t.Fatalf("cold-simulated %d of %d points; the screen is not pruning", tr.Summary.ColdTiming, tr.SpaceSize)
	}

	// The explored points alias the plain sweep's cache entries: a
	// fig4 sweep over the same cache warm-hits every promotion and its
	// rows match the golden corpus byte-for-byte.
	code, rows, errOut := testApp(t, "sweep", "-cache", cache, "-v", "../../testdata/fig4.json")
	if code != 0 {
		t.Fatalf("sweep exit %d:\n%s", code, errOut)
	}
	if !strings.Contains(errOut, "9 hits, 26 misses") {
		t.Fatalf("explore cache entries did not alias the sweep's:\n%s", errOut)
	}
	golden, err := os.ReadFile("../../testdata/golden/fig4.txt")
	if err != nil {
		t.Fatal(err)
	}
	if got, want := stripNotes(rows), stripNotes(string(golden)); got != want {
		t.Fatalf("explore-warmed sweep rows differ from golden fig4 rows:\n--- got\n%s\n--- want\n%s", got, want)
	}
}
