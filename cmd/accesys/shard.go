package main

// The `accesys shard` subcommand tree: distributed sweeps. plan
// prints a deterministic partition of a manifest's expanded points as
// JSON for external schedulers; run executes one shard's slice into a
// self-contained cache directory; merge folds shard directories back
// into one canonical cache that `accesys sweep`/`equiv` warm-hit
// byte-identically to a single-process run.

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"accesys/internal/scenario"
	"accesys/internal/shard"
	"accesys/internal/sweep"
)

func (a *app) shardUsage() {
	fmt.Fprintf(a.stderr, "usage: accesys shard plan [-full] [-profile DIR] -shards N manifest.json\n")
	fmt.Fprintf(a.stderr, "       accesys shard run [-full] [-v] [-jobs N] [-plan FILE] -shard k/N -dir DIR manifest.json\n")
	fmt.Fprintf(a.stderr, "       accesys shard merge -out DIR sharddir ...\n")
}

// cmdShard dispatches the distributed-sweep subcommands.
func (a *app) cmdShard(args []string) int {
	if len(args) == 0 {
		a.shardUsage()
		return usageErr
	}
	switch args[0] {
	case "plan":
		return a.cmdShardPlan(args[1:])
	case "run":
		return a.cmdShardRun(args[1:])
	case "merge":
		return a.cmdShardMerge(args[1:])
	case "help", "-h", "-help", "--help":
		a.shardUsage()
		return exitOK
	}
	a.shardUsage()
	return a.errorf("unknown shard subcommand %q (want plan, run, or merge)", args[0])
}

// loadPlan expands the manifest and partitions it — the shared front
// half of plan and run. With no profile the partition hashes raw
// fingerprints, so the same manifest and shard count yield the same
// plan on every host and build; with a profile directory the partition
// additionally balances by that profile's measured walls (and then the
// plan must travel as a file — see `shard run -plan`).
func (a *app) loadPlan(path string, full bool, shards int, profileDir string) (*scenario.Scenario, []sweep.Point, *shard.Plan, error) {
	sc, err := scenario.Load(path)
	if err != nil {
		return nil, nil, nil, err
	}
	points, err := sc.PointsFor(full)
	if err != nil {
		return nil, nil, nil, err
	}
	var prof *sweep.Profile
	if profileDir != "" {
		if prof, err = sweep.LoadProfile(profileDir); err != nil {
			return nil, nil, nil, err
		}
	}
	plan, err := shard.PartitionWeighted(sc.Name, full, points, shards, prof)
	if err != nil {
		return nil, nil, nil, err
	}
	return sc, points, plan, nil
}

func (a *app) cmdShardPlan(args []string) int {
	fs := a.newFlagSet("shard plan")
	full := fs.Bool("full", false, "partition the paper-scale (-full) expansion")
	shards := fs.Int("shards", 0, "number of shards to partition into")
	profileDir := fs.String("profile", "", "balance by the wall-time profile in this cache directory")
	fs.Usage = func() {
		fmt.Fprintf(a.stderr, "usage: accesys shard plan [-full] [-profile DIR] -shards N manifest.json\n")
		fs.PrintDefaults()
	}
	if code := parse(fs, args); code >= 0 {
		return code
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return usageErr
	}
	if *shards < 1 {
		return a.errorf("shard plan needs -shards N with N >= 1")
	}
	_, _, plan, err := a.loadPlan(fs.Arg(0), *full, *shards, *profileDir)
	if err != nil {
		return a.errorf("%v", err)
	}
	data, err := plan.Marshal()
	if err != nil {
		return a.errorf("encoding plan: %v", err)
	}
	fmt.Fprintln(a.stdout, string(data))
	return exitOK
}

// parseShardSpec splits "k/N" into its halves, requiring 0 <= k < N.
func parseShardSpec(spec string) (k, n int, err error) {
	ks, ns, ok := strings.Cut(spec, "/")
	if ok {
		k, err = strconv.Atoi(ks)
		if err == nil {
			n, err = strconv.Atoi(ns)
		}
	}
	if !ok || err != nil || n < 1 || k < 0 || k >= n {
		return 0, 0, fmt.Errorf("-shard wants k/N with 0 <= k < N, have %q", spec)
	}
	return k, n, nil
}

func (a *app) cmdShardRun(args []string) int {
	fs := a.newFlagSet("shard run")
	full := fs.Bool("full", false, "run the paper-scale (-full) expansion")
	verbose := fs.Bool("v", false, "stream per-run progress with completion counts and ETA")
	jobs := fs.Int("jobs", 0, "parallel simulation workers (default: all CPUs)")
	spec := fs.String("shard", "", "slice to run, as k/N (0-based shard k of N)")
	dir := fs.String("dir", "", "self-contained shard cache directory (required)")
	planPath := fs.String("plan", "", "execute this serialized plan instead of recomputing the partition (required for weighted plans)")
	fs.Usage = func() {
		fmt.Fprintf(a.stderr, "usage: accesys shard run [-full] [-v] [-jobs N] [-plan FILE] -shard k/N -dir DIR manifest.json\n")
		fs.PrintDefaults()
	}
	if code := parse(fs, args); code >= 0 {
		return code
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return usageErr
	}
	if *dir == "" {
		return a.errorf("shard run needs -dir DIR (the shard's cache directory)")
	}
	k, n, err := parseShardSpec(*spec)
	if err != nil {
		return a.errorf("%v", err)
	}

	var sc *scenario.Scenario
	var points []sweep.Point
	var plan *shard.Plan
	if *planPath != "" {
		// A serialized plan (a weighted one depends on the profile of
		// the machine that computed it, so it can only travel by file).
		// Worker.Run still revalidates every fingerprint digest against
		// the actual expansion.
		if sc, err = scenario.Load(fs.Arg(0)); err != nil {
			return a.errorf("%v", err)
		}
		if points, err = sc.PointsFor(*full); err != nil {
			return a.errorf("%v", err)
		}
		data, err := os.ReadFile(*planPath)
		if err != nil {
			return a.errorf("%v", err)
		}
		if plan, err = shard.ParsePlan(data); err != nil {
			return a.errorf("%v", err)
		}
		switch {
		case plan.Scenario != sc.Name:
			return a.errorf("plan %s partitions scenario %q, manifest declares %q", *planPath, plan.Scenario, sc.Name)
		case plan.Full != *full:
			return a.errorf("plan %s was computed with full=%v; pass the matching -full flag", *planPath, plan.Full)
		case plan.Shards != n:
			return a.errorf("plan %s has %d shards, -shard says %d", *planPath, plan.Shards, n)
		}
	} else if sc, points, plan, err = a.loadPlan(fs.Arg(0), *full, n, ""); err != nil {
		return a.errorf("%v", err)
	}
	w := &shard.Worker{Dir: *dir, Jobs: *jobs}
	if *verbose {
		eng := &sweep.Engine{Jobs: *jobs}
		label := fmt.Sprintf("%s[%d/%d]", sc.Name, k, n)
		w.OnResult = sweep.NewProgress(a.stderr, label, plan.Counts[k], eng.Workers(plan.Counts[k])).Observe
	}
	start := time.Now()
	sum, err := w.Run(plan, k, points)
	if err != nil {
		return a.errorf("%v", err)
	}
	fmt.Fprintf(a.stdout, "shard %d/%d of %s: %d points (%d cold, %d warm) in %.1fs -> %s (salt %.12s…)\n",
		k, n, sum.Scenario, sum.Points, sum.Cold, sum.Warm, time.Since(start).Seconds(), w.Dir, sum.Salt)
	return exitOK
}

func (a *app) cmdShardMerge(args []string) int {
	fs := a.newFlagSet("shard merge")
	out := fs.String("out", "", "merged cache directory (required; created if needed)")
	fs.Usage = func() {
		fmt.Fprintf(a.stderr, "usage: accesys shard merge -out DIR sharddir ...\n")
		fs.PrintDefaults()
	}
	if code := parse(fs, args); code >= 0 {
		return code
	}
	if *out == "" {
		return a.errorf("shard merge needs -out DIR (the merged cache directory)")
	}
	if fs.NArg() == 0 {
		fs.Usage()
		return usageErr
	}
	st, err := shard.Merge(*out, fs.Args())
	if err != nil {
		return a.errorf("%v", err)
	}
	if own, err := sweep.BinaryFingerprint(); err == nil && own != st.Salt {
		fmt.Fprintf(a.stderr, "accesys: warning: merged entries were produced by a different simulator build (salt %.12s… vs this binary's %.12s…); this binary's sweeps will re-simulate them\n",
			st.Salt, own)
	}
	already := ""
	if st.AlreadyMerged > 0 {
		already = fmt.Sprintf(" (%d shards already merged, accounting unchanged)", st.AlreadyMerged)
	}
	fmt.Fprintf(a.stdout, "merged %d shards into %s: %d points, %d entries imported, %d duplicates, %d corrupt skipped; counters: %d hits, %d misses, %d errors; fleet wall %.1fs%s\n",
		st.Shards, *out, st.Points, st.Imported, st.Duplicates, st.Corrupt,
		st.Counters.Hits, st.Counters.Misses, st.Counters.Errors,
		time.Duration(st.WallNs).Seconds(), already)
	return exitOK
}
