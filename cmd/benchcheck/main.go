// Command benchcheck is the performance regression gate: it compares
// a fresh benchmark run (written into a scratch directory via the
// BENCH_DIR environment variable) against the committed BENCH_*.json
// trajectory baselines at the repository root, and exits nonzero when
// any baseline metric fell below the tolerance band. `make benchcheck`
// wires the fresh run and this comparison together; `make ci` runs it
// after every test pass.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"accesys/internal/bench"
)

func main() {
	baseDir := flag.String("baseline", ".", "directory holding committed BENCH_*.json baselines")
	freshDir := flag.String("fresh", "", "directory holding the fresh run's BENCH_*.json files")
	tol := flag.Float64("tol", 0.40, "allowed fractional slowdown before failing (0.40 = fresh may be up to 40% below baseline)")
	flag.Parse()
	if *freshDir == "" {
		fmt.Fprintln(os.Stderr, "benchcheck: -fresh directory required")
		os.Exit(2)
	}

	names, err := filepath.Glob(filepath.Join(*baseDir, "BENCH_*.json"))
	if err != nil || len(names) == 0 {
		fmt.Fprintf(os.Stderr, "benchcheck: no BENCH_*.json baselines in %s\n", *baseDir)
		os.Exit(2)
	}

	failed := false
	for _, name := range names {
		base, err := bench.ReadFile(name)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
			failed = true
			continue
		}
		freshPath := filepath.Join(*freshDir, filepath.Base(name))
		fresh, err := bench.ReadFile(freshPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchcheck: fresh run missing %s: %v\n", filepath.Base(name), err)
			failed = true
			continue
		}
		regs := bench.Compare(base, fresh, *tol)
		for _, r := range regs {
			fmt.Printf("FAIL %s: %s\n", filepath.Base(name), r)
			failed = true
		}
		if len(regs) == 0 {
			for _, b := range base {
				for _, f := range fresh {
					if f.Benchmark == b.Benchmark && f.Metric == b.Metric {
						fmt.Printf("ok   %s: %s/%s %.4g -> %.4g (%.2fx)\n",
							filepath.Base(name), b.Benchmark, b.Metric, b.Value, f.Value, f.Value/b.Value)
					}
				}
			}
		}
	}
	if failed {
		fmt.Println("benchcheck: performance regression detected")
		os.Exit(1)
	}
	fmt.Printf("benchcheck: all baselines within %.0f%% tolerance\n", *tol*100)
}
