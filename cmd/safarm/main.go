// Command safarm serves the cycle-level systolic-array model over
// stdin/stdout using the accel wire protocol — the analogue of the
// paper's Verilator-compiled RTL accelerator running as a child
// process. Connect it to a simulation with accel.NewRemoteBackend
// around the child's pipes.
//
// Usage:
//
//	safarm [-backend cycle|tile]
package main

import (
	"flag"
	"fmt"
	"os"

	"accesys/internal/accel"
)

func main() {
	backend := flag.String("backend", "cycle", "array model to serve: cycle or tile")
	flag.Parse()

	var b accel.Backend
	switch *backend {
	case "cycle":
		b = accel.CycleModel{}
	case "tile":
		b = accel.TileModel{}
	default:
		fmt.Fprintf(os.Stderr, "safarm: unknown backend %q\n", *backend)
		os.Exit(2)
	}
	if err := accel.Serve(os.Stdin, os.Stdout, b); err != nil {
		fmt.Fprintf(os.Stderr, "safarm: %v\n", err)
		os.Exit(1)
	}
}
