package scenario

// Point-enumeration contract tests: distributed shard plans reference
// points by expansion index and fingerprint, so the enumeration must
// be order-stable (repeated expansions agree position by position) and
// independent of anything but (scenario, full). These pin that for
// every built-in matrix in both modes.

import "testing"

func TestPointEnumerationOrderStable(t *testing.T) {
	for _, name := range BuiltinNames() {
		for _, full := range []bool{false, true} {
			sc := MustBuiltin(name)
			a, err := sc.PointsFor(full)
			if err != nil {
				t.Fatalf("%s full=%v: %v", name, full, err)
			}
			// A fresh scenario value, expanded again: same points, same
			// order, same fingerprints.
			b, err := MustBuiltin(name).PointsFor(full)
			if err != nil {
				t.Fatal(err)
			}
			if len(a) != len(b) {
				t.Fatalf("%s full=%v: %d vs %d points across expansions", name, full, len(a), len(b))
			}
			for i := range a {
				if a[i].Key != b[i].Key || a[i].Fingerprint != b[i].Fingerprint {
					t.Fatalf("%s full=%v: point %d differs across expansions: %q vs %q",
						name, full, i, a[i].Key, b[i].Key)
				}
				if a[i].Fingerprint == "" {
					t.Fatalf("%s full=%v: point %d (%s) has no fingerprint", name, full, i, a[i].Key)
				}
			}
		}
	}
}

func TestPointsForMatchesExpandPlusPoints(t *testing.T) {
	// PointsFor is the one-step form of Expand + Points; the two paths
	// must enumerate identically or a plan built through one would
	// misindex a worker running the other.
	sc := MustBuiltin("fig4")
	runs, err := sc.Expand(false)
	if err != nil {
		t.Fatal(err)
	}
	want := sc.Points(runs)
	got, err := sc.PointsFor(false)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("%d vs %d points", len(got), len(want))
	}
	for i := range got {
		if got[i].Key != want[i].Key || got[i].Fingerprint != want[i].Fingerprint {
			t.Fatalf("point %d differs: %q vs %q", i, got[i].Key, want[i].Key)
		}
	}
}
