package scenario

import (
	"fmt"
	"sort"
	"strings"

	"accesys/internal/core"
	"accesys/internal/dram"
	"accesys/internal/pcie"
	"accesys/internal/sim"
	"accesys/internal/workload"
)

// presets are the named starting systems (Section V.C plus the bare
// Table II defaults).
var presets = map[string]func() core.Config{
	"default":  func() core.Config { return core.Config{Name: "default"} },
	"pcie2gb":  core.PCIe2GB,
	"pcie8gb":  core.PCIe8GB,
	"pcie64gb": core.PCIe64GB,
	"devmem":   core.DevMemCfg,
}

func presetNames() string { return sortedKeys(presets) }

// Application phases: presets replace the whole config so they apply
// first; placement-aware axes (mem) need the final access mode so they
// apply last. Labels still follow declaration order.
const (
	phasePreset = 0
	phaseField  = 1
	phasePlaced = 2
	maxPhase    = phasePlaced
)

// axisDef is one entry of the axis registry: how to validate a value,
// apply it to a run, and format it as a key fragment (label) or table
// header.
type axisDef struct {
	name   string
	phase  int
	doc    string
	check  func(v Value) error
	apply  func(r *Run, v Value) error
	label  func(v Value) string
	header func(v Value) string
}

// axisRegistry maps axis names to their definitions. To add a new
// swept dimension, add an entry here — manifests and built-in
// scenarios pick it up by name.
var axisRegistry = map[string]*axisDef{}

func axisNames() string { return sortedKeys(axisRegistry) }

func sortedKeys[V any](m map[string]V) string {
	names := make([]string, 0, len(m))
	for k := range m {
		names = append(names, k)
	}
	sort.Strings(names)
	return strings.Join(names, " ")
}

func register(d *axisDef) {
	if d.header == nil {
		d.header = d.label
	}
	axisRegistry[d.name] = d
}

// Value accessors: axis values arrive canonicalized (JSON semantics),
// so numbers are float64, objects are map[string]any.

func num(v Value) (float64, error) {
	f, ok := v.(float64)
	if !ok {
		return 0, fmt.Errorf("want a number, got %T", v)
	}
	return f, nil
}

func str(v Value) (string, error) {
	s, ok := v.(string)
	if !ok {
		return "", fmt.Errorf("want a string, got %T", v)
	}
	return s, nil
}

func boolean(v Value) (bool, error) {
	b, ok := v.(bool)
	if !ok {
		return false, fmt.Errorf("want a bool, got %T", v)
	}
	return b, nil
}

// obj decodes an object value against a field set; required fields
// must be present, unknown fields are rejected.
func obj(v Value, required []string, optional ...string) (map[string]float64, error) {
	m, ok := v.(map[string]any)
	if !ok {
		return nil, fmt.Errorf("want an object, got %T", v)
	}
	known := map[string]bool{}
	for _, k := range required {
		known[k] = true
	}
	for _, k := range optional {
		known[k] = true
	}
	out := map[string]float64{}
	for k, fv := range m {
		if !known[k] {
			return nil, fmt.Errorf("unknown field %q (want %s)", k, strings.Join(append(required, optional...), " "))
		}
		f, ok := fv.(float64)
		if !ok {
			return nil, fmt.Errorf("field %q: want a number, got %T", k, fv)
		}
		out[k] = f
	}
	for _, k := range required {
		if _, ok := out[k]; !ok {
			return nil, fmt.Errorf("missing field %q", k)
		}
	}
	return out, nil
}

func numCheck(v Value) error    { _, err := num(v); return err }
func numLabel(v Value) string   { f, _ := num(v); return fmt.Sprintf("%g", f) }
func boolCheck(v Value) error   { _, err := boolean(v); return err }
func stringCheck(v Value) error { _, err := str(v); return err }

func init() {
	register(&axisDef{
		name:  "preset",
		phase: phasePreset,
		doc:   "replace the whole base system with a named preset",
		check: func(v Value) error {
			s, err := str(v)
			if err != nil {
				return err
			}
			if _, ok := presets[s]; !ok {
				return fmt.Errorf("unknown preset %q (want one of %s)", s, presetNames())
			}
			return nil
		},
		apply: func(r *Run, v Value) error {
			s, _ := str(v)
			r.Cfg = presets[s]()
			return nil
		},
		label: func(v Value) string { s, _ := str(v); return s },
		header: func(v Value) string {
			s, _ := str(v)
			return presets[s]().Name
		},
	})

	register(&axisDef{
		name:  "access",
		phase: phaseField,
		doc:   "accelerator data access method: DC, DM, or DevMem",
		check: func(v Value) error {
			_, err := accessByName(v)
			return err
		},
		apply: func(r *Run, v Value) error {
			a, err := accessByName(v)
			if err != nil {
				return err
			}
			r.Cfg.Access = a
			return nil
		},
		label: func(v Value) string { s, _ := str(v); return s },
	})

	register(&axisDef{
		name:  "link",
		phase: phaseField,
		doc:   "PCIe link by total raw bandwidth: {gbps, lanes}",
		check: func(v Value) error {
			_, err := obj(v, []string{"gbps", "lanes"})
			return err
		},
		apply: func(r *Run, v Value) error {
			m, err := obj(v, []string{"gbps", "lanes"})
			if err != nil {
				return err
			}
			r.Cfg.PCIe.Link = pcie.LinkForGBps(m["gbps"], int(m["lanes"]))
			return nil
		},
		label: func(v Value) string {
			m, _ := obj(v, []string{"gbps", "lanes"})
			return fmt.Sprintf("%g", m["gbps"])
		},
	})

	register(&axisDef{
		name:  "lanes",
		phase: phaseField,
		doc:   "PCIe lane count (keeps the per-lane rate)",
		check: numCheck,
		apply: func(r *Run, v Value) error {
			f, _ := num(v)
			r.Cfg.PCIe.Link.Lanes = int(f)
			return nil
		},
		label: numLabel,
	})

	register(&axisDef{
		name:  "lane_gbps",
		phase: phaseField,
		doc:   "per-lane signalling rate in Gbps",
		check: numCheck,
		apply: func(r *Run, v Value) error {
			f, _ := num(v)
			r.Cfg.PCIe.Link.LaneGbps = f
			return nil
		},
		label:  numLabel,
		header: func(v Value) string { f, _ := num(v); return fmt.Sprintf("%gGbps", f) },
	})

	register(&axisDef{
		name:  "packet_bytes",
		phase: phaseField,
		doc:   "host-path DMA burst (request packet) size in bytes",
		check: numCheck,
		apply: func(r *Run, v Value) error {
			f, _ := num(v)
			r.Cfg.Accel.HostDMA.BurstBytes = int(f)
			return nil
		},
		label:  numLabel,
		header: func(v Value) string { f, _ := num(v); return fmt.Sprintf("%gB", f) },
	})

	register(&axisDef{
		name:  "dev_packet_bytes",
		phase: phaseField,
		doc:   "device-path DMA burst size in bytes",
		check: numCheck,
		apply: func(r *Run, v Value) error {
			f, _ := num(v)
			r.Cfg.Accel.DevDMA.BurstBytes = int(f)
			return nil
		},
		label:  numLabel,
		header: func(v Value) string { f, _ := num(v); return fmt.Sprintf("%gB", f) },
	})

	register(&axisDef{
		name:  "compute_ns",
		phase: phaseField,
		doc:   "per-tile compute time override in nanoseconds (0 = model)",
		check: numCheck,
		apply: func(r *Run, v Value) error {
			f, _ := num(v)
			r.Cfg.Accel.ComputeOverride = sim.Tick(f) * sim.Nanosecond
			return nil
		},
		label: numLabel,
	})

	register(&axisDef{
		name:  "hostmem",
		phase: phaseField,
		doc:   "host DRAM technology by spec name",
		check: specCheck,
		apply: func(r *Run, v Value) error {
			spec, err := specByName(v)
			if err != nil {
				return err
			}
			r.Cfg.HostSpec = spec
			return nil
		},
		label: func(v Value) string { s, _ := str(v); return s },
	})

	register(&axisDef{
		name:  "devmem",
		phase: phaseField,
		doc:   "device-side DRAM technology by spec name",
		check: specCheck,
		apply: func(r *Run, v Value) error {
			spec, err := specByName(v)
			if err != nil {
				return err
			}
			r.Cfg.DevSpec = spec
			return nil
		},
		label: func(v Value) string { s, _ := str(v); return s },
	})

	register(&axisDef{
		name:  "mem",
		phase: phasePlaced,
		doc:   "DRAM technology applied to the side the accelerator streams from (device under DevMem access, host otherwise)",
		check: specCheck,
		apply: func(r *Run, v Value) error {
			spec, err := specByName(v)
			if err != nil {
				return err
			}
			if r.Cfg.Access == core.DevMem {
				r.Cfg.DevSpec = spec
			} else {
				r.Cfg.HostSpec = spec
			}
			return nil
		},
		label: func(v Value) string { s, _ := str(v); return s },
	})

	register(&axisDef{
		name:  "simplemem",
		phase: phaseField,
		doc:   "fixed-latency host memory: {latency_ns, bandwidth_gbps}",
		check: func(v Value) error {
			_, err := obj(v, []string{"latency_ns", "bandwidth_gbps"})
			return err
		},
		apply: func(r *Run, v Value) error {
			m, err := obj(v, []string{"latency_ns", "bandwidth_gbps"})
			if err != nil {
				return err
			}
			r.Cfg.HostSimple = &core.SimpleMemParams{
				Latency:       sim.TicksFromNanoseconds(m["latency_ns"]),
				BandwidthGBps: m["bandwidth_gbps"],
			}
			return nil
		},
		label: func(v Value) string {
			m, _ := obj(v, []string{"latency_ns", "bandwidth_gbps"})
			return fmt.Sprintf("%g-%g", m["latency_ns"], m["bandwidth_gbps"])
		},
	})

	register(&axisDef{
		name:  "smmu_bypass",
		phase: phaseField,
		doc:   "disable address translation (physical addressing)",
		check: boolCheck,
		apply: func(r *Run, v Value) error {
			b, _ := boolean(v)
			r.Cfg.SMMU.Bypass = b
			return nil
		},
		label: func(v Value) string {
			if b, _ := boolean(v); b {
				return "nommu"
			}
			return "mmu"
		},
	})

	register(&axisDef{
		name:  "smmu",
		phase: phaseField,
		doc:   "SMMU sizing: {utlb_entries, tlb_entries, tlb_assoc, pwc_entries, walkers} (all optional)",
		check: func(v Value) error {
			_, err := obj(v, nil, "utlb_entries", "tlb_entries", "tlb_assoc", "pwc_entries", "walkers")
			return err
		},
		apply: func(r *Run, v Value) error {
			m, err := obj(v, nil, "utlb_entries", "tlb_entries", "tlb_assoc", "pwc_entries", "walkers")
			if err != nil {
				return err
			}
			set := func(dst *int, key string) {
				if f, ok := m[key]; ok {
					*dst = int(f)
				}
			}
			set(&r.Cfg.SMMU.UTLBEntries, "utlb_entries")
			set(&r.Cfg.SMMU.TLBEntries, "tlb_entries")
			set(&r.Cfg.SMMU.TLBAssoc, "tlb_assoc")
			set(&r.Cfg.SMMU.PWCEntries, "pwc_entries")
			set(&r.Cfg.SMMU.Walkers, "walkers")
			return nil
		},
		label: func(v Value) string {
			m, _ := obj(v, nil, "utlb_entries", "tlb_entries", "tlb_assoc", "pwc_entries", "walkers")
			parts := []string{}
			for _, f := range []struct{ key, tag string }{
				{"utlb_entries", "utlb"}, {"tlb_entries", "tlb"}, {"tlb_assoc", "assoc"},
				{"pwc_entries", "pwc"}, {"walkers", "walkers"},
			} {
				if val, ok := m[f.key]; ok {
					parts = append(parts, fmt.Sprintf("%s%g", f.tag, val))
				}
			}
			return strings.Join(parts, "-")
		},
	})

	register(&axisDef{
		name:  "size",
		phase: phaseField,
		doc:   "square GEMM size, overriding the workload's n",
		check: numCheck,
		apply: func(r *Run, v Value) error {
			f, _ := num(v)
			r.N = int(f)
			return nil
		},
		label: numLabel,
	})

	register(&axisDef{
		name:  "model",
		phase: phaseField,
		doc:   "ViT model variant by name",
		check: func(v Value) error {
			_, err := modelByName(v)
			return err
		},
		apply: func(r *Run, v Value) error {
			m, err := modelByName(v)
			if err != nil {
				return err
			}
			r.Model = m
			return nil
		},
		label: func(v Value) string { s, _ := str(v); return s },
	})

	register(&axisDef{
		name:  "accelerators",
		phase: phaseField,
		doc:   "accelerator cluster size (endpoints sharing the switch)",
		check: numCheck,
		apply: func(r *Run, v Value) error {
			f, _ := num(v)
			r.Cfg.Accelerators = int(f)
			return nil
		},
		label: numLabel,
	})

	register(&axisDef{
		name:  "cluster",
		phase: phaseField,
		doc:   "heterogeneous cluster composition: [{kind, n}, ...] slots expanding to consecutive endpoints (overrides accelerators)",
		check: func(v Value) error {
			_, err := clusterOf(v)
			return err
		},
		apply: func(r *Run, v Value) error {
			slots, err := clusterOf(v)
			if err != nil {
				return err
			}
			r.Cfg.Cluster = slots
			return nil
		},
		label: func(v Value) string {
			slots, _ := clusterOf(v)
			parts := make([]string, len(slots))
			for i, s := range slots {
				parts[i] = fmt.Sprintf("%s%d", s.Kind, s.N)
			}
			return strings.Join(parts, "-")
		},
	})

	register(&axisDef{
		name:  "topology",
		phase: phaseField,
		doc:   `PCIe tree shape: "flat" (one switch) or {levels: 2, fanout} (leaf switches below a root)`,
		check: func(v Value) error {
			_, err := topologyOf(v)
			return err
		},
		apply: func(r *Run, v Value) error {
			t, err := topologyOf(v)
			if err != nil {
				return err
			}
			r.Cfg.PCIe.Topology = t
			return nil
		},
		label: func(v Value) string {
			t, _ := topologyOf(v)
			if t.Flat() {
				return "flat"
			}
			return fmt.Sprintf("t%dx%d", t.Levels, t.Fanout)
		},
	})
}

// clusterOf decodes a cluster axis value: a non-empty array of
// {kind, n} slot objects summing to at most maxClusterAccels members.
const maxClusterAccels = 8

func clusterOf(v Value) ([]core.ClusterSlot, error) {
	arr, ok := v.([]any)
	if !ok {
		return nil, fmt.Errorf("want an array of {kind, n} slots, got %T", v)
	}
	if len(arr) == 0 {
		return nil, fmt.Errorf("cluster composition needs at least one slot")
	}
	slots := make([]core.ClusterSlot, 0, len(arr))
	total := 0
	for i, e := range arr {
		m, ok := e.(map[string]any)
		if !ok {
			return nil, fmt.Errorf("slot %d: want an object, got %T", i, e)
		}
		var s core.ClusterSlot
		for k, fv := range m {
			switch k {
			case "kind":
				kind, ok := fv.(string)
				if !ok {
					return nil, fmt.Errorf("slot %d: kind: want a string, got %T", i, fv)
				}
				s.Kind = kind
			case "n":
				f, ok := fv.(float64)
				if !ok {
					return nil, fmt.Errorf("slot %d: n: want a number, got %T", i, fv)
				}
				s.N = int(f)
			default:
				return nil, fmt.Errorf("slot %d: unknown field %q (want kind n)", i, k)
			}
		}
		total += s.N
		slots = append(slots, s)
	}
	if err := core.ValidateCluster(slots); err != nil {
		return nil, err
	}
	if total > maxClusterAccels {
		return nil, fmt.Errorf("cluster totals %d accelerators (max %d)", total, maxClusterAccels)
	}
	return slots, nil
}

// topologyOf decodes a topology axis value: the string "flat" or a
// {levels, fanout} object.
func topologyOf(v Value) (pcie.Topology, error) {
	if s, ok := v.(string); ok {
		if s == "flat" {
			return pcie.Topology{}, nil
		}
		return pcie.Topology{}, fmt.Errorf("unknown topology %q (want \"flat\" or {levels, fanout})", s)
	}
	m, err := obj(v, []string{"levels", "fanout"})
	if err != nil {
		return pcie.Topology{}, err
	}
	t := pcie.Topology{Levels: int(m["levels"]), Fanout: int(m["fanout"])}
	if err := t.Validate(); err != nil {
		return pcie.Topology{}, err
	}
	return t, nil
}

func accessByName(v Value) (core.AccessMethod, error) {
	s, err := str(v)
	if err != nil {
		return 0, err
	}
	switch s {
	case "DC":
		return core.DC, nil
	case "DM":
		return core.DM, nil
	case "DevMem":
		return core.DevMem, nil
	}
	return 0, fmt.Errorf("unknown access method %q (want DC, DM, or DevMem)", s)
}

func specCheck(v Value) error {
	_, err := specByName(v)
	return err
}

func specByName(v Value) (dram.Spec, error) {
	s, err := str(v)
	if err != nil {
		return dram.Spec{}, err
	}
	spec, ok := dram.SpecByName(s)
	if !ok {
		return dram.Spec{}, fmt.Errorf("unknown DRAM spec %q", s)
	}
	return spec, nil
}

func modelByName(v Value) (workload.ViTVariant, error) {
	s, err := str(v)
	if err != nil {
		return workload.ViTVariant{}, err
	}
	for _, m := range workload.Variants() {
		if m.Name == s {
			return m, nil
		}
	}
	return workload.ViTVariant{}, fmt.Errorf("unknown ViT model %q", s)
}
