package scenario

// Farm workloads: every cluster member driven concurrently through its
// own kernel driver. "farm" co-runs one GEMM per member and measures
// the makespan; "tenants" co-runs per-tenant schedules and measures
// each tenant's contention slowdown against a solo run of the same
// schedule on an otherwise-idle but physically identical system.

import (
	"fmt"

	"accesys/internal/core"
	"accesys/internal/driver"
	"accesys/internal/mem"
	"accesys/internal/sim"
	"accesys/internal/sweep"
)

// TenantJob is one tenant's resolved schedule: Jobs back-to-back
// square GEMMs of size N on the tenant's own cluster member.
type TenantJob struct {
	N    int `json:"n"`
	Jobs int `json:"jobs"`
}

// resolveTenants picks each tenant's size for the mode and defaults
// the job count.
func resolveTenants(specs []TenantSpec, full bool) []TenantJob {
	out := make([]TenantJob, len(specs))
	for i, t := range specs {
		jobs := t.Jobs
		if jobs == 0 {
			jobs = 1
		}
		out[i] = TenantJob{N: t.N.Pick(full), Jobs: jobs}
	}
	return out
}

// arenaAlign keeps per-member host/device arena slices MiB-aligned so
// DMA bursts never straddle a partition boundary.
const arenaAlign = 1 << 20

// BuildFarm wires a system plus one kernel driver per cluster member:
// each driver owns its member's BAR and a disjoint slice of the host
// and device memory windows, so concurrent schedules never share
// buffers. The config must have SMMU bypass set (the members share one
// SMMU, and concurrent root tables would clobber each other) — RunAt
// stamps it for farm/tenants workloads before fingerprinting.
func BuildFarm(cfg core.Config) (*core.System, []*driver.Driver) {
	sys := core.Build(cfg)
	if !sys.Cfg.SMMU.Bypass {
		panic(fmt.Sprintf("scenario: farm under %s needs SMMU bypass (one translation stream per SMMU)", sys.Cfg.Name))
	}
	k := sys.Cfg.Accelerators
	hostSlice := (sys.Cfg.HostMemBytes / uint64(k)) &^ (arenaAlign - 1)
	devSlice := (sys.Cfg.DevMemBytes / uint64(k)) &^ (arenaAlign - 1)
	dcfg := driver.Config{
		DMMode:     sys.Cfg.Access == core.DM,
		DevMemMode: sys.Cfg.Access == core.DevMem,
		NoIOMMU:    true,
	}
	drvs := make([]*driver.Driver, k)
	for i := 0; i < k; i++ {
		drvs[i] = driver.New(fmt.Sprintf("%s.drv%d", sys.Cfg.Name, i), sys.EQ, sys.Stats, driver.Deps{
			EQ:        sys.EQ,
			MMIO:      sys.AttachHostPort(fmt.Sprintf("drv%d", i)),
			FuncHost:  sys.FuncHost(),
			FuncDev:   sys.FuncDev(),
			SMMU:      sys.SMMU,
			Accel:     sys.Accels[i],
			BARBase:   core.BARBase + uint64(i)*core.BARSize,
			HostRange: mem.Range(core.HostMemBase+uint64(i)*hostSlice, hostSlice),
			DevRange:  mem.Range(core.DevMemBase+uint64(i)*devSlice, devSlice),
			IOVABase:  core.IOVABase,
			Flush:     sys.FlushCaches,
		}, dcfg)
	}
	return sys, drvs
}

// SimFarm launches one timing-only n^3 GEMM on every cluster member at
// t=0 and returns the makespan plus each member's completion time.
func SimFarm(cfg core.Config, n int) (sim.Tick, []sim.Tick) {
	sys, drvs := BuildFarm(cfg)
	ends := make([]sim.Tick, len(drvs))
	done := make([]bool, len(drvs))
	for i, drv := range drvs {
		i := i
		drv.RunGEMM(driver.GEMMSpec{M: n, N: n, K: n}, func(driver.Result) {
			ends[i] = sys.Now()
			done[i] = true
		})
	}
	sys.Run()
	var makespan sim.Tick
	for i := range drvs {
		if !done[i] {
			panic(fmt.Sprintf("scenario: farm member %d under %s never completed", i, cfg.Name))
		}
		if ends[i] > makespan {
			makespan = ends[i]
		}
	}
	return makespan, ends
}

// runTenants simulates the tenants' schedules on a fresh system and
// returns each driven tenant's completion time. only >= 0 restricts
// the run to that single tenant (the solo baseline); -1 co-runs all.
func runTenants(cfg core.Config, tenants []TenantJob, only int) []sim.Tick {
	sys, drvs := BuildFarm(cfg)
	ends := make([]sim.Tick, len(tenants))
	done := make([]bool, len(tenants))
	for ti := range tenants {
		if only >= 0 && ti != only {
			done[ti] = true
			continue
		}
		ti := ti
		t := tenants[ti]
		drv := drvs[ti]
		remaining := t.Jobs
		var launch func()
		launch = func() {
			drv.RunGEMM(driver.GEMMSpec{M: t.N, N: t.N, K: t.N}, func(driver.Result) {
				remaining--
				if remaining > 0 {
					launch()
					return
				}
				ends[ti] = sys.Now()
				done[ti] = true
			})
		}
		launch()
	}
	sys.Run()
	for ti := range tenants {
		if !done[ti] {
			panic(fmt.Sprintf("scenario: tenant %d under %s never completed", ti, cfg.Name))
		}
	}
	return ends
}

// SimTenants co-runs every tenant's schedule (each on its own cluster
// member, sharing the interconnect), then re-runs each schedule alone
// on an identical fresh system, and returns the shared and solo
// completion times. Slowdown = shared/solo is the contention a tenant
// suffers from its neighbours.
func SimTenants(cfg core.Config, tenants []TenantJob) (shared, solo []sim.Tick) {
	shared = runTenants(cfg, tenants, -1)
	solo = make([]sim.Tick, len(tenants))
	for i := range tenants {
		solo[i] = runTenants(cfg, tenants, i)[i]
	}
	return shared, solo
}

// FarmPoint wraps one co-running farm GEMM under cfg as a sweep point.
// The leading "farm" identity element keeps farm fingerprints disjoint
// from every "gemm"/"vit" point over the same config.
func FarmPoint(cfg core.Config, n int) sweep.Point {
	return sweep.Point{
		Key:         cfg.Name,
		Fingerprint: sweep.Fingerprint(append([]any{"farm", n}, cfg.FingerprintParts()...)...),
		Run: func() sweep.Outcome {
			makespan, ends := SimFarm(cfg, n)
			vals := make(map[string]float64, len(ends))
			for i, e := range ends {
				vals[fmt.Sprintf("m%d_exec_ns", i)] = float64(e.Nanoseconds())
			}
			return sweep.Outcome{Dur: makespan, Values: vals}
		},
	}
}

// TenantsPoint wraps one multi-tenant contention run as a sweep point.
// The outcome carries per-tenant shared/solo times, slowdowns, and the
// fairness ratio (max slowdown / min slowdown; 1.0 = perfectly fair).
func TenantsPoint(cfg core.Config, tenants []TenantJob) sweep.Point {
	return sweep.Point{
		Key:         cfg.Name,
		Fingerprint: sweep.Fingerprint(append([]any{"tenants", tenants}, cfg.FingerprintParts()...)...),
		Run: func() sweep.Outcome {
			shared, solo := SimTenants(cfg, tenants)
			vals := make(map[string]float64, 3*len(tenants)+1)
			var makespan sim.Tick
			worst, best := 0.0, 0.0
			for i := range tenants {
				sd := float64(shared[i]) / float64(solo[i])
				vals[fmt.Sprintf("t%d_exec_ns", i)] = float64(shared[i].Nanoseconds())
				vals[fmt.Sprintf("t%d_solo_ns", i)] = float64(solo[i].Nanoseconds())
				vals[fmt.Sprintf("t%d_slowdown", i)] = sd
				if i == 0 || sd > worst {
					worst = sd
				}
				if i == 0 || sd < best {
					best = sd
				}
				if shared[i] > makespan {
					makespan = shared[i]
				}
			}
			vals["fairness"] = worst / best
			return sweep.Outcome{Dur: makespan, Values: vals}
		},
	}
}
