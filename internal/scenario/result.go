package scenario

// This file renders swept outcomes as tables. Result used to live in
// internal/exp; it moved here so manifest-driven sweeps and the
// built-in experiments share one table type and one renderer (the
// byte-identity guarantee between `accesys run fig4` and
// `accesys sweep testdata/fig4.json` rests on that sharing).

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strings"

	"accesys/internal/sim"
	"accesys/internal/sweep"
)

// Result is one rendered table/figure.
type Result struct {
	ID      string
	Title   string
	Headers []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a formatted row.
func (r *Result) AddRow(cells ...string) { r.Rows = append(r.Rows, cells) }

// Note appends a free-text note (shape checks, caveats).
func (r *Result) Note(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// Fprint renders the result as an aligned text table.
func (r *Result) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", r.ID, r.Title)
	widths := make([]int, len(r.Headers))
	for i, h := range r.Headers {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(r.Headers)
	for _, row := range r.Rows {
		line(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(w, "  # %s\n", n)
	}
	fmt.Fprintln(w)
}

// WriteCSV emits the headers and rows (notes are dropped) as CSV.
func (r *Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(r.Headers); err != nil {
		return err
	}
	for _, row := range r.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// cellFormats are the supported duration cell formats.
var cellFormats = map[string]func(sim.Tick) string{
	"ms3": func(d sim.Tick) string { return fmt.Sprintf("%.3fms", d.Seconds()*1e3) },
	"ms2": func(d sim.Tick) string { return fmt.Sprintf("%.2fms", d.Seconds()*1e3) },
	"s3":  func(d sim.Tick) string { return fmt.Sprintf("%.3fs", d.Seconds()) },
}

// Render turns outcomes into the scenario's declared table: a
// row-by-column pivot when Table names both axes, otherwise a flat
// one-row-per-point listing with extracted metrics as extra columns.
func (s *Scenario) Render(full bool, runs []Run, outs []sweep.Outcome) (*Result, error) {
	if len(runs) != len(outs) {
		return nil, fmt.Errorf("scenario %s: %d runs but %d outcomes", s.Name, len(runs), len(outs))
	}
	r := &Result{ID: s.Name, Title: s.TitleFor(full)}
	cell := cellFormats[s.cell()]

	if s.Table.Col == "" {
		return s.renderFlat(r, runs, outs, cell)
	}

	// Pivot: validation pinned exactly two axes. Work out which is
	// which so either declaration order renders.
	rowVals := s.axisValues(s.Table.Row, full)
	colVals := s.axisValues(s.Table.Col, full)
	rowDef, colDef := axisRegistry[s.Table.Row], axisRegistry[s.Table.Col]
	rowOuter := s.Axes[0].Name == s.Table.Row
	index := func(ri, ci int) int {
		if rowOuter {
			return ri*len(colVals) + ci
		}
		return ci*len(rowVals) + ri
	}

	r.Headers = []string{s.Table.RowHeader}
	if r.Headers[0] == "" {
		r.Headers[0] = s.Table.Row
	}
	for _, v := range colVals {
		r.Headers = append(r.Headers, colDef.header(v))
	}
	for ri, rv := range rowVals {
		row := []string{rowDef.label(rv)}
		for ci := range colVals {
			row = append(row, cell(outs[index(ri, ci)].Dur))
		}
		r.AddRow(row...)
	}
	return r, nil
}

// renderFlat lists one row per point: key, duration, then any
// extracted metrics in sorted column order.
func (s *Scenario) renderFlat(r *Result, runs []Run, outs []sweep.Outcome, cell func(sim.Tick) string) (*Result, error) {
	keys := map[string]bool{}
	for _, o := range outs {
		for k := range o.Values {
			keys[k] = true
		}
	}
	metrics := make([]string, 0, len(keys))
	for k := range keys {
		metrics = append(metrics, k)
	}
	sort.Strings(metrics)

	r.Headers = append([]string{"point", "exec"}, metrics...)
	for i, run := range runs {
		row := []string{run.Key, cell(outs[i].Dur)}
		for _, m := range metrics {
			row = append(row, fmt.Sprintf("%g", outs[i].Value(m)))
		}
		r.AddRow(row...)
	}
	return r, nil
}
