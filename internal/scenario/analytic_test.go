package scenario

import (
	"strings"
	"testing"

	"accesys/internal/core"
	"accesys/internal/workload"
)

func TestAnalyticMetricsGEMM(t *testing.T) {
	sc := MustBuiltin("fig4")
	runs, err := sc.Expand(false)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range runs {
		m, err := sc.AnalyticMetrics(r)
		if err != nil {
			t.Fatalf("%s: %v", r.Key, err)
		}
		if m["exec"] <= 0 {
			t.Fatalf("%s: non-positive exec prediction %v", r.Key, m["exec"])
		}
	}
}

func TestAnalyticMetricsViTSplit(t *testing.T) {
	sc := MustBuiltin("fig7")
	runs, err := sc.Expand(false)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range runs {
		m, err := sc.AnalyticMetrics(r)
		if err != nil {
			t.Fatalf("%s: %v", r.Key, err)
		}
		for _, k := range []string{"exec", "gemm", "nongemm"} {
			if m[k] <= 0 {
				t.Fatalf("%s: non-positive %s prediction", r.Key, k)
			}
		}
		if got, want := m["exec"], m["gemm"]+m["nongemm"]; got != want {
			t.Fatalf("%s: exec %v != gemm+nongemm %v", r.Key, got, want)
		}
	}
}

func TestAnalyticOrderingMatchesPaperClaims(t *testing.T) {
	// The analytic backend must reproduce the paper's qualitative
	// shapes on its own: more PCIe bandwidth -> faster GEMM, and the
	// DevMem Non-GEMM NUMA penalty of Fig. 8.
	sc := &Scenario{Name: "ord", Workload: Workload{Kind: "gemm", N: Size{Quick: 512, Full: 512}}}
	exec := func(cfg core.Config) float64 {
		m, err := sc.AnalyticMetrics(Run{Cfg: cfg, N: 512})
		if err != nil {
			t.Fatal(err)
		}
		return m["exec"]
	}
	if !(exec(core.PCIe2GB()) > exec(core.PCIe8GB()) && exec(core.PCIe8GB()) > exec(core.PCIe64GB())) {
		t.Fatal("analytic GEMM times do not improve with PCIe bandwidth")
	}

	vit := MustBuiltin("fig8")
	split := func(cfg core.Config) (gemm, nongemm float64) {
		m, err := vit.AnalyticMetrics(Run{Cfg: cfg, Model: vitModel(t, "ViT-Large")})
		if err != nil {
			t.Fatal(err)
		}
		return m["gemm"], m["nongemm"]
	}
	_, hostNG := split(core.PCIe8GB())
	_, devNG := split(core.DevMemCfg())
	if !(devNG > 1.5*hostNG) {
		t.Fatalf("analytic DevMem Non-GEMM penalty missing: dev %v vs host %v", devNG, hostNG)
	}
}

func vitModel(t *testing.T, name string) workload.ViTVariant {
	t.Helper()
	m, err := modelByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestAnalyticPacketSizeConvexity(t *testing.T) {
	// Fig. 4's claim, reproduced by the closed-form backend alone: 256 B
	// beats both 64 B (header/II overhead) and 4096 B (credit stalls).
	sc := &Scenario{Name: "pkt", Workload: Workload{Kind: "gemm", N: Size{Quick: 512, Full: 512}}}
	exec := func(burst int) float64 {
		cfg := core.PCIe8GB()
		cfg.Accel.HostDMA.BurstBytes = burst
		m, err := sc.AnalyticMetrics(Run{Cfg: cfg, N: 512})
		if err != nil {
			t.Fatal(err)
		}
		return m["exec"]
	}
	if !(exec(256) < exec(64) && exec(256) < exec(4096)) {
		t.Fatalf("convexity missing: 64B=%v 256B=%v 4096B=%v", exec(64), exec(256), exec(4096))
	}
}

func TestAnalyticMetricsRejectsBadSize(t *testing.T) {
	sc := &Scenario{Name: "bad", Workload: Workload{Kind: "gemm"}}
	if _, err := sc.AnalyticMetrics(Run{Cfg: core.PCIe8GB(), N: 100}); err == nil {
		t.Fatal("non-tile-multiple GEMM size must be rejected")
	}
}

func TestAnalyticSpecValidation(t *testing.T) {
	base := func() *Scenario {
		return &Scenario{
			Name:     "spec",
			Workload: Workload{Kind: "gemm", N: Size{Quick: 64, Full: 64}},
			Axes:     []Axis{{Name: "lanes", Values: vals(4)}},
		}
	}
	ok := base()
	ok.Analytic = &AnalyticSpec{Tol: 0.2, Warn: 0.1}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid analytic spec rejected: %v", err)
	}
	neg := base()
	neg.Analytic = &AnalyticSpec{Tol: -0.1}
	if err := neg.Validate(); err == nil || !strings.Contains(err.Error(), "non-negative") {
		t.Fatalf("negative tolerance accepted: %v", err)
	}
	inverted := base()
	inverted.Analytic = &AnalyticSpec{Tol: 0.1, Warn: 0.2}
	if err := inverted.Validate(); err == nil || !strings.Contains(err.Error(), "exceeds") {
		t.Fatalf("warn > tol accepted: %v", err)
	}
}

func TestAnalyticSpecRoundTripsThroughManifest(t *testing.T) {
	sc := MustBuiltin("fig6")
	if sc.Analytic == nil {
		t.Fatal("fig6 should declare a fidelity band")
	}
	data, err := Marshal(sc)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Analytic == nil || *back.Analytic != *sc.Analytic {
		t.Fatalf("analytic spec lost in round trip: %+v vs %+v", back.Analytic, sc.Analytic)
	}
}
