package scenario

// This file loads scenarios from JSON manifests — the batch front-end
// the ROADMAP asks for: a new scenario matrix runs from a file with
// zero new Go. See README.md ("Manifest-driven sweeps") for the
// schema and a worked example.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Parse decodes and validates one manifest. Unknown fields are
// rejected so typos fail loudly instead of silently shrinking the
// matrix.
func Parse(data []byte) (*Scenario, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Scenario
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("scenario: manifest: %v", err)
	}
	var trailing any
	if err := dec.Decode(&trailing); err != io.EOF {
		return nil, fmt.Errorf("scenario: manifest: trailing data after the scenario object")
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Marshal encodes a scenario as manifest JSON — the inverse of Parse,
// so tooling can generate manifests from Go values.
func Marshal(s *Scenario) ([]byte, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return json.MarshalIndent(s, "", "  ")
}

// Load reads and validates the manifest at path.
func Load(path string) (*Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: %v", err)
	}
	s, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("%v (manifest %s)", err, path)
	}
	return s, nil
}
