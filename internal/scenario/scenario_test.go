package scenario

import (
	"bytes"
	"reflect"
	"strings"
	"sync"
	"testing"

	"accesys/internal/core"
	"accesys/internal/sweep"
)

// TestBuiltinsExpand pins every registered scenario's matrix size in
// both modes — the paper's run counts.
func TestBuiltinsExpand(t *testing.T) {
	want := map[string][2]int{ // quick, full
		"fig2": {9, 9},
		"fig3": {24, 24},
		"fig4": {35, 35},
		"fig5": {12, 12},
		"fig6": {15, 15},
		"tab4": {10, 12},
		"fig7": {12, 12},
		"fig8": {12, 12},
		"fig9": {4, 4},
	}
	if len(want) != len(BuiltinNames()) {
		t.Fatalf("registry has %d scenarios, test expects %d", len(BuiltinNames()), len(want))
	}
	for name, counts := range want {
		sc := MustBuiltin(name)
		for i, full := range []bool{false, true} {
			runs, err := sc.Expand(full)
			if err != nil {
				t.Fatalf("%s (full=%v): %v", name, full, err)
			}
			if len(runs) != counts[i] {
				t.Errorf("%s (full=%v): %d runs, want %d", name, full, len(runs), counts[i])
			}
			// Keys may repeat only for interchangeable runs (fig6
			// deliberately revisits its 30 ns / 64 GB/s point in both
			// sub-sweeps; the cache serves the second visit).
			seen := map[string]Run{}
			for _, r := range runs {
				if prev, ok := seen[r.Key]; ok && !reflect.DeepEqual(prev, r) {
					t.Errorf("%s: key %q names two different runs", name, r.Key)
				}
				seen[r.Key] = r
			}
			for _, p := range sc.Points(runs) {
				if p.Fingerprint == "" {
					t.Errorf("%s: point %s has no fingerprint", name, p.Key)
				}
			}
		}
	}
}

// TestExpandOrder pins the cross-product nesting: the first axis
// varies slowest, and labels join into keys in declaration order.
func TestExpandOrder(t *testing.T) {
	sc := &Scenario{
		Name:     "order",
		Base:     "pcie8gb",
		Workload: Workload{Kind: "gemm", N: Size{Quick: 64, Full: 64}},
		Axes: []Axis{
			{Name: "lanes", Values: vals(2, 4)},
			{Name: "packet_bytes", Values: vals(128, 256)},
		},
	}
	runs, err := sc.Expand(false)
	if err != nil {
		t.Fatal(err)
	}
	wantKeys := []string{"order-2-128", "order-2-256", "order-4-128", "order-4-256"}
	for i, w := range wantKeys {
		if runs[i].Key != w {
			t.Fatalf("run %d key = %q, want %q", i, runs[i].Key, w)
		}
		if runs[i].Cfg.Name != w {
			t.Fatalf("run %d config name = %q, want %q", i, runs[i].Cfg.Name, w)
		}
	}
	if runs[3].Cfg.PCIe.Link.Lanes != 4 || runs[3].Cfg.Accel.HostDMA.BurstBytes != 256 {
		t.Fatalf("last run config not fully applied: %+v", runs[3].Cfg.PCIe.Link)
	}
	if got := runs[1].Label("packet_bytes"); got != "256" {
		t.Fatalf("Label(packet_bytes) = %q, want 256", got)
	}
}

// TestFig5PlacementAwareMem pins the phase ordering contract: the
// preset axis (declared second) applies before the mem axis resolves
// which memory side it configures.
func TestFig5PlacementAwareMem(t *testing.T) {
	runs, err := MustBuiltin("fig5").Expand(false)
	if err != nil {
		t.Fatal(err)
	}
	// First triple: DDR4-2400 under devmem, pcie2gb, pcie64gb.
	dev, h2 := runs[0], runs[1]
	if dev.Cfg.Access != core.DevMem {
		t.Fatalf("run 0 should be DevMem, got %v", dev.Cfg.Access)
	}
	if dev.Cfg.DevSpec.Name != "DDR4-2400" {
		t.Fatalf("DevMem run: DevSpec = %s, want DDR4-2400", dev.Cfg.DevSpec.Name)
	}
	if h2.Cfg.HostSpec.Name != "DDR4-2400" {
		t.Fatalf("host run: HostSpec = %s, want DDR4-2400", h2.Cfg.HostSpec.Name)
	}
	if h2.Cfg.DevSpec.Name == "DDR4-2400" {
		t.Fatal("host run should not have its device memory retyped")
	}
}

// TestDefaultsSurvivePresetAxis pins the phase-ordering contract for
// defaults: a field default outlives a preset axis replacing the whole
// config, while a swept axis still overrides a default of its own
// kind.
func TestDefaultsSurvivePresetAxis(t *testing.T) {
	sc := &Scenario{
		Name:     "defs",
		Workload: Workload{Kind: "gemm", N: Size{Quick: 64, Full: 64}},
		Defaults: []Setting{{Axis: "compute_ns", Value: 100}},
		Axes:     []Axis{{Name: "preset", Values: vals("pcie2gb", "pcie8gb")}},
	}
	runs, err := sc.Expand(false)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range runs {
		if r.Cfg.Accel.ComputeOverride == 0 {
			t.Fatalf("%s: compute_ns default lost to the preset axis", r.Key)
		}
	}

	// A swept axis of the same kind wins over the default.
	sc2 := &Scenario{
		Name:     "defs2",
		Base:     "pcie8gb",
		Workload: Workload{Kind: "gemm", N: Size{Quick: 64, Full: 64}},
		Defaults: []Setting{{Axis: "packet_bytes", Value: 64}},
		Axes:     []Axis{{Name: "packet_bytes", Values: vals(512)}},
	}
	runs2, err := sc2.Expand(false)
	if err != nil {
		t.Fatal(err)
	}
	if runs2[0].Cfg.Accel.HostDMA.BurstBytes != 512 {
		t.Fatalf("swept axis should override the default, got %d", runs2[0].Cfg.Accel.HostDMA.BurstBytes)
	}
}

// TestViTRunsShareIdentity pins the cross-figure sharing contract:
// fig7 and fig8 sweep physically identical systems, so their points
// carry equal fingerprints (one cache entry, one memo slot) and keep
// the preset's config name.
func TestViTRunsShareIdentity(t *testing.T) {
	runs7, err := MustBuiltin("fig7").Expand(false)
	if err != nil {
		t.Fatal(err)
	}
	runs8, err := MustBuiltin("fig8").Expand(false)
	if err != nil {
		t.Fatal(err)
	}
	p7, p8 := MustBuiltin("fig7").Points(runs7), MustBuiltin("fig8").Points(runs8)
	for i := range p7 {
		if p7[i].Fingerprint != p8[i].Fingerprint {
			t.Fatalf("point %d: fig7 and fig8 fingerprints differ", i)
		}
	}
	if runs7[0].Key != "PCIe-2GB/ViT-Base" {
		t.Fatalf("vit key = %q, want PCIe-2GB/ViT-Base", runs7[0].Key)
	}
	if runs7[0].Cfg.Name != "PCIe-2GB" {
		t.Fatalf("vit config name = %q, want PCIe-2GB", runs7[0].Cfg.Name)
	}
}

// TestGEMMPointFingerprintsDifferByBackend pins the aliasing rule the
// canonical FingerprintParts helper bakes in: configs whose
// interface-valued backends marshal alike must not share cache
// entries.
func TestGEMMPointFingerprintsDifferByBackend(t *testing.T) {
	a := core.PCIe8GB()
	b := core.PCIe8GB()
	pa := GEMMPoint(a, 64, nil)
	if pb := GEMMPoint(b, 64, nil); pa.Fingerprint != pb.Fingerprint {
		t.Fatal("identical configs should share a fingerprint")
	}
	c := core.PCIe8GB()
	c.Accel.ComputeOverride = 1
	if pc := GEMMPoint(c, 64, nil); pa.Fingerprint == pc.Fingerprint {
		t.Fatal("different configs must not share a fingerprint")
	}
}

// TestPivotRenderEndToEnd sweeps a small two-axis pivot for real and
// checks the rendered table shape — the index math between the
// expansion order and the row/column pivot.
func TestPivotRenderEndToEnd(t *testing.T) {
	sc := &Scenario{
		Name:     "pivot",
		Title:    "pivot demo, GEMM %d",
		Base:     "pcie8gb",
		Workload: Workload{Kind: "gemm", N: Size{Quick: 64, Full: 64}},
		Axes: []Axis{
			{Name: "link", Values: vals(lk(8, 8), lk(16, 16))},
			{Name: "packet_bytes", Values: vals(128, 256)},
		},
		Table: Table{Row: "link", RowHeader: "GB/s", Col: "packet_bytes", Cell: "ms3"},
	}
	res, err := sc.Run(Options{Jobs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := strings.Join(res.Headers, "|"), "GB/s|128B|256B"; got != want {
		t.Fatalf("headers = %q, want %q", got, want)
	}
	if len(res.Rows) != 2 || res.Rows[0][0] != "8" || res.Rows[1][0] != "16" {
		t.Fatalf("row labels wrong: %v", res.Rows)
	}
	if res.Title != "pivot demo, GEMM 64" {
		t.Fatalf("title = %q", res.Title)
	}
	for _, row := range res.Rows {
		for _, cell := range row[1:] {
			if !strings.HasSuffix(cell, "ms") {
				t.Fatalf("cell %q is not a ms3 duration", cell)
			}
		}
	}

	// The transposed declaration must pivot to the same table.
	flipped := &Scenario{
		Name:     "pivot",
		Title:    "pivot demo, GEMM %d",
		Base:     "pcie8gb",
		Workload: Workload{Kind: "gemm", N: Size{Quick: 64, Full: 64}},
		Axes: []Axis{
			{Name: "packet_bytes", Values: vals(128, 256)},
			{Name: "link", Values: vals(lk(8, 8), lk(16, 16))},
		},
		Table: Table{Row: "link", RowHeader: "GB/s", Col: "packet_bytes", Cell: "ms3"},
	}
	res2, err := flipped.Run(Options{Jobs: 2})
	if err != nil {
		t.Fatal(err)
	}
	var b1, b2 bytes.Buffer
	res.Fprint(&b1)
	res2.Fprint(&b2)
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatalf("transposed declaration renders differently:\n%s---\n%s", b1.String(), b2.String())
	}
}

// TestFlatRenderWithMetrics checks the listing renderer: one row per
// point with extracted metrics as sorted columns.
func TestFlatRenderWithMetrics(t *testing.T) {
	sc := &Scenario{
		Name:     "flat",
		Title:    "flat",
		Base:     "pcie8gb",
		Workload: Workload{Kind: "gemm", N: Size{Quick: 64, Full: 64}},
		Axes:     []Axis{{Name: "smmu_bypass", Values: vals(false, true)}},
		Metrics:  []string{"pages", "accel"},
	}
	res, err := sc.Run(Options{Jobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Headers[0] != "point" || res.Headers[1] != "exec" {
		t.Fatalf("headers = %v", res.Headers)
	}
	joined := strings.Join(res.Headers, "|")
	for _, m := range []string{"pages", "tiles", "bytes_in", "bytes_out"} {
		if !strings.Contains(joined, m) {
			t.Fatalf("headers missing metric %q: %v", m, res.Headers)
		}
	}
	if len(res.Rows) != 2 {
		t.Fatalf("want 2 rows, got %d", len(res.Rows))
	}
	if res.Rows[0][0] != "flat-mmu" || res.Rows[1][0] != "flat-nommu" {
		t.Fatalf("row keys wrong: %v vs %v", res.Rows[0][0], res.Rows[1][0])
	}
}

// TestOptionsObserverComposition pins the serve daemon's hooks: an
// OnResult observer sees every completed point alongside the verbose
// progress printer, and a shared Flight passes through to the engine.
func TestOptionsObserverComposition(t *testing.T) {
	sc := &Scenario{
		Name:     "observe",
		Title:    "observe",
		Base:     "pcie8gb",
		Workload: Workload{Kind: "gemm", N: Size{Quick: 64, Full: 64}},
		Axes:     []Axis{{Name: "packet_bytes", Values: vals(128, 256)}},
	}
	var mu sync.Mutex
	var seen []string
	var progress bytes.Buffer
	_, err := sc.Run(Options{
		Jobs:    2,
		Verbose: true,
		Out:     &progress,
		Flight:  &sweep.Flight{},
		OnResult: func(r sweep.Result) {
			mu.Lock()
			seen = append(seen, r.Key)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 2 {
		t.Fatalf("observer saw %d results, want 2: %v", len(seen), seen)
	}
	if got := strings.Count(progress.String(), "observe:"); got != 2 {
		t.Fatalf("progress printer wrote %d lines alongside the observer, want 2:\n%s", got, progress.String())
	}
}

// TestValidateErrors exercises the programmatic error paths.
func TestValidateErrors(t *testing.T) {
	gemm64 := Workload{Kind: "gemm", N: Size{Quick: 64, Full: 64}}
	cases := []struct {
		name string
		sc   Scenario
		want string
	}{
		{"unknown base", Scenario{Name: "x", Base: "warp", Workload: gemm64}, "unknown base"},
		{"unknown kind", Scenario{Name: "x", Workload: Workload{Kind: "fft"}}, "unknown workload kind"},
		{"no size", Scenario{Name: "x", Workload: Workload{Kind: "gemm"}}, "positive n or a size axis"},
		{"unknown axis", Scenario{Name: "x", Workload: gemm64,
			Axes: []Axis{{Name: "warp", Values: vals(1)}}}, "unknown axis"},
		{"empty axis", Scenario{Name: "x", Workload: gemm64,
			Axes: []Axis{{Name: "lanes", Values: nil}}}, "empty matrix"},
		{"duplicate axis", Scenario{Name: "x", Workload: gemm64,
			Axes: []Axis{{Name: "lanes", Values: vals(2)}, {Name: "lanes", Values: vals(4)}}}, "duplicate axis"},
		{"bad value type", Scenario{Name: "x", Workload: gemm64,
			Axes: []Axis{{Name: "lanes", Values: vals("wide")}}}, "want a number"},
		{"bad preset value", Scenario{Name: "x", Workload: gemm64,
			Axes: []Axis{{Name: "preset", Values: vals("warp")}}}, "unknown preset"},
		{"bad model", Scenario{Name: "x", Workload: Workload{Kind: "vit"},
			Axes: []Axis{{Name: "model", Values: vals("ViT-Giant")}}}, "unknown ViT model"},
		{"bad metric", Scenario{Name: "x", Workload: gemm64, Metrics: []string{"teraflops"}}, "unknown metric"},
		{"bad default", Scenario{Name: "x", Workload: gemm64,
			Defaults: []Setting{{Axis: "warp", Value: 1.0}}}, "unknown axis"},
		{"pivot col not an axis", Scenario{Name: "x", Workload: gemm64,
			Axes:  []Axis{{Name: "lanes", Values: vals(2)}, {Name: "packet_bytes", Values: vals(128)}},
			Table: Table{Row: "lanes", Col: "size"}}, "not a declared axis"},
		{"pivot row equals col", Scenario{Name: "x", Workload: gemm64,
			Axes:  []Axis{{Name: "lanes", Values: vals(2)}, {Name: "packet_bytes", Values: vals(128)}},
			Table: Table{Row: "lanes", Col: "lanes"}}, "different axes"},
		{"pivot needs two axes", Scenario{Name: "x", Workload: gemm64,
			Axes: []Axis{{Name: "lanes", Values: vals(2)}, {Name: "packet_bytes", Values: vals(128)},
				{Name: "compute_ns", Values: vals(0)}},
			Table: Table{Row: "lanes", Col: "packet_bytes"}}, "exactly two axes"},
		{"bad cell", Scenario{Name: "x", Workload: gemm64,
			Table: Table{Cell: "furlongs"}}, "unknown cell format"},
		{"bad link object", Scenario{Name: "x", Workload: gemm64,
			Axes: []Axis{{Name: "link", Values: vals(map[string]any{"gbps": 8.0})}}}, "missing field"},
		{"unknown link field", Scenario{Name: "x", Workload: gemm64,
			Axes: []Axis{{Name: "link", Values: vals(map[string]any{"gbps": 8.0, "lanes": 8.0, "color": 1.0})}}}, "unknown field"},
	}
	for _, tc := range cases {
		err := tc.sc.Validate()
		if err == nil {
			t.Errorf("%s: no error", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// TestSizeUnmarshal covers both manifest encodings.
func TestSizeUnmarshal(t *testing.T) {
	var s Size
	if err := s.UnmarshalJSON([]byte("512")); err != nil || s.Quick != 512 || s.Full != 512 {
		t.Fatalf("number form: %+v %v", s, err)
	}
	if err := s.UnmarshalJSON([]byte(`{"quick": 512, "full": 2048}`)); err != nil || s.Quick != 512 || s.Full != 2048 {
		t.Fatalf("object form: %+v %v", s, err)
	}
	if err := s.UnmarshalJSON([]byte(`{"quick": 1, "flul": 2}`)); err == nil {
		t.Fatal("typoed field should fail")
	}
}

// TestMetricsSkipSMMUWhenBypassed pins the extraction contract tab4's
// overhead comparison relies on.
func TestMetricsSkipSMMUWhenBypassed(t *testing.T) {
	sc := &Scenario{
		Name:     "skip",
		Base:     "pcie8gb",
		Workload: Workload{Kind: "gemm", N: Size{Quick: 64, Full: 64}},
		Axes:     []Axis{{Name: "smmu_bypass", Values: vals(false, true)}},
		Metrics:  []string{"pages", "smmu"},
	}
	runs, err := sc.Expand(false)
	if err != nil {
		t.Fatal(err)
	}
	outs := Options{Jobs: 1}.Sweep("skip", sc.Points(runs))
	if outs[0].Value("translations") == 0 {
		t.Fatal("translated run should record SMMU stats")
	}
	if _, ok := outs[1].Values["translations"]; ok {
		t.Fatal("bypassed run should not record SMMU stats")
	}
	// A bypassed SMMU maps nothing, but the metric itself is still
	// recorded (as zero) so manifest tables keep a rectangular shape.
	if _, ok := outs[1].Values["pages"]; !ok {
		t.Fatal("bypassed run should still record the pages metric")
	}
}

// TestResultWriteCSV covers the sweep subcommand's CSV emitter.
func TestResultWriteCSV(t *testing.T) {
	r := &Result{Headers: []string{"a", "b"}}
	r.AddRow("1", "with,comma")
	r.Note("notes are dropped")
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "a,b\n1,\"with,comma\"\n"
	if buf.String() != want {
		t.Fatalf("csv = %q, want %q", buf.String(), want)
	}
}
