package scenario

// This file is the analytic backend of the cross-backend equivalence
// harness: it maps a resolved Run onto the closed-form models of
// internal/analytic, deriving every model parameter from the same
// core.Config the timing simulation runs, so the two backends can be
// compared point by point with no fitted constants.

import (
	"errors"
	"fmt"
	"math"

	"accesys/internal/accel"
	"accesys/internal/analytic"
	"accesys/internal/core"
	"accesys/internal/smmu"
	"accesys/internal/workload"
)

// ErrNoModel marks runs the analytic backend has no closed-form
// counterpart for (multi-accelerator contention outside the farm
// bound, 2-level tree shapes, mixed-kind farms, tenant schedules).
// The equivalence harness classifies such points "nomodel" instead of
// misreporting them as divergence failures; other callers should
// errors.Is-test for it before treating a missing model as fatal.
var ErrNoModel = errors.New("no analytic model")

// noModelf wraps ErrNoModel with context.
func noModelf(format string, args ...any) error {
	return fmt.Errorf(format+": %w", append(args, ErrNoModel)...)
}

// AnalyticSpec configures the equivalence comparison for a scenario.
// Tolerances are relative divergence |timing-analytic|/timing; the
// zero value defers to the harness defaults.
type AnalyticSpec struct {
	// Tol is the fail threshold (0 = harness default).
	Tol float64 `json:"tol,omitempty"`
	// Warn is the warn threshold (0 = half the fail threshold).
	Warn float64 `json:"warn,omitempty"`
}

// memory describes the memory system one stream lands in.
type memory struct {
	gbps  float64
	latNs float64
}

// hostMemory resolves the host-side memory system of a config.
func hostMemory(cfg core.Config) memory {
	if cfg.HostSimple != nil {
		return memory{gbps: cfg.HostSimple.BandwidthGBps, latNs: cfg.HostSimple.Latency.Nanoseconds()}
	}
	return memory{gbps: cfg.HostSpec.InterleavedStreamGBps(), latNs: cfg.HostSpec.AccessLatencyNs()}
}

// devMemory resolves the device-side memory system of a config.
func devMemory(cfg core.Config) memory {
	return memory{gbps: cfg.DevSpec.InterleavedStreamGBps(), latNs: cfg.DevSpec.AccessLatencyNs()}
}

// fabricOf derives the analytic fabric constants from a resolved PCIe
// configuration.
func fabricOf(cfg core.Config) analytic.Fabric {
	p := cfg.PCIe
	return analytic.Fabric{
		EffGBps:        p.Link.EffectiveGBps(),
		HeaderBytes:    p.TLPHeaderBytes,
		PropNs:         p.Link.PropDelay.Nanoseconds(),
		RCNs:           p.RCLatency.Nanoseconds(),
		SwitchNs:       p.SwitchLatency.Nanoseconds(),
		EPNs:           p.EPLatency.Nanoseconds(),
		RCIINs:         p.RCProcII.Nanoseconds(),
		SwitchIINs:     p.SwitchProcII.Nanoseconds(),
		EPIINs:         p.EPProcII.Nanoseconds(),
		RCBufBytes:     p.RCBufBytes,
		SwitchBufBytes: p.SwitchBufBytes,
		EPBufBytes:     p.EPBufBytes,
	}
}

// streams holds the per-byte costs of the operand read path and the C
// write path for one configuration, plus the read fill latency.
type streams struct {
	readNsPerByte  float64
	writeNsPerByte float64
	readFillNs     float64
	startNs        float64
	mem            memory
	// Upstream TLP pipeline floor (zero on the DevMem path).
	upIINs     float64
	readBurst  int
	writeBurst int
}

// devStream models the DevMem data path: the DMA engine streams
// straight into device DRAM over the device bus, so only memory
// bandwidth, access latency, and the request window bound it.
func devStream(cfg core.Config, burst int, mem memory) float64 {
	interval := float64(burst) / mem.gbps
	window := cfg.Accel.DevDMA.WindowBytes / burst
	if window < 1 {
		window = 1
	}
	rtt := mem.latNs + 2*cfg.DevBusLat.Nanoseconds()
	if w := rtt / float64(window); w > interval {
		interval = w
	}
	return interval / float64(burst)
}

// streamsOf derives both data-path streams of a resolved config.
func streamsOf(cfg core.Config) streams {
	if cfg.Access == core.DevMem {
		mem := devMemory(cfg)
		burst := cfg.Accel.DevDMA.BurstBytes
		per := devStream(cfg, burst, mem)
		wburst := min(burst, accel.TileCBytes)
		return streams{
			readNsPerByte:  per,
			writeNsPerByte: devStream(cfg, wburst, mem),
			readFillNs:     mem.latNs + 2*cfg.DevBusLat.Nanoseconds(),
			startNs:        cfg.Accel.DevDMA.StartLatency.Nanoseconds(),
			mem:            mem,
			readBurst:      burst,
			writeBurst:     wburst,
		}
	}
	mem := hostMemory(cfg)
	fabric := fabricOf(cfg)
	bubble := translationBubbleNsPerByte(cfg)
	read := analytic.Stream{
		Fabric:       fabric,
		PayloadBytes: cfg.Accel.HostDMA.BurstBytes,
		Read:         true,
		MemGBps:      mem.gbps,
		MemLatNs:     mem.latNs,
		WindowBytes:  cfg.Accel.HostDMA.WindowBytes,
	}
	write := analytic.Stream{
		Fabric:       fabric,
		PayloadBytes: min(cfg.Accel.HostDMA.BurstBytes, accel.TileCBytes),
		MemGBps:      mem.gbps,
	}
	upII := fabric.RCIINs
	if fabric.SwitchIINs > upII {
		upII = fabric.SwitchIINs
	}
	if fabric.EPIINs > upII {
		upII = fabric.EPIINs
	}
	return streams{
		readNsPerByte:  read.NsPerByte() + bubble,
		writeNsPerByte: write.NsPerByte() + bubble,
		readFillNs:     read.RoundTripNs(),
		startNs:        cfg.Accel.HostDMA.StartLatency.Nanoseconds(),
		mem:            mem,
		upIINs:         upII,
		readBurst:      read.PayloadBytes,
		writeBurst:     write.PayloadBytes,
	}
}

// translationBubbleNsPerByte amortizes the SMMU's per-page pipeline
// stall over the page it covers: a streaming DMA touches each page
// once, misses the micro TLB, and stalls the request pipe for the main
// TLB lookup plus (page tables being far larger than the TLB reach for
// the evaluation workloads) a page-table walk whose leaf PTE read is
// served by the LLC. Bypassed SMMUs stream translation-free.
func translationBubbleNsPerByte(cfg core.Config) float64 {
	if cfg.SMMU.Bypass {
		return 0
	}
	s := cfg.SMMU.Resolved()
	leafReadNs := (2*cfg.BusLatency + core.LLCHitLatency).Nanoseconds()
	return (s.TLBLatency.Nanoseconds() + leafReadNs) / smmu.PageBytes
}

// perTileNs returns the systolic-array time per output tile at depth k.
func perTileNs(cfg core.Config, k int) float64 {
	if cfg.Accel.ComputeOverride > 0 {
		return cfg.Accel.ComputeOverride.Nanoseconds()
	}
	cycles := cfg.Accel.Backend.TileCycles(k)
	return float64(cycles) * 1000 / cfg.Accel.ClockMHz
}

// farmStreams derives a farm member's data-path streams: the solo
// streams floored by the member's 1/k timeshare of the segments every
// member serializes on. On host paths that is the shared RC<->switch
// link plus the RC and switch pipelines (each member's private
// switch-EP link is not the bottleneck) and host memory bandwidth; on
// the DevMem path the members contend only on device memory. This is
// the first-order shared-switch serialization bound — exact at k=1,
// a lower bound on contention beyond it.
func farmStreams(cfg core.Config, k int) streams {
	st := streamsOf(cfg)
	if k <= 1 {
		return st
	}
	kf := float64(k)
	if cfg.Access == core.DevMem {
		shared := 1 / st.mem.gbps
		st.readNsPerByte = math.Max(st.readNsPerByte, kf*shared)
		st.writeNsPerByte = math.Max(st.writeNsPerByte, kf*shared)
		return st
	}
	f := fabricOf(cfg)
	sharedSeg := func(payload int) float64 {
		per := f.SerNs(payload + f.HeaderBytes)
		if f.RCIINs > per {
			per = f.RCIINs
		}
		if f.SwitchIINs > per {
			per = f.SwitchIINs
		}
		if memNs := float64(payload) / st.mem.gbps; memNs > per {
			per = memNs
		}
		return per / float64(payload)
	}
	st.readNsPerByte = math.Max(st.readNsPerByte, kf*sharedSeg(st.readBurst))
	st.writeNsPerByte = math.Max(st.writeNsPerByte, kf*sharedSeg(st.writeBurst))
	return st
}

// gemmModel builds the phase model of one M x N x K GEMM under the
// resolved config.
func gemmModel(cfg core.Config, m, n, k int) analytic.GEMMModel {
	return gemmModelWith(cfg, streamsOf(cfg), m, n, k)
}

// gemmModelWith builds the phase model over explicit data-path
// streams (the farm bound swaps in contention-floored ones).
func gemmModelWith(cfg core.Config, st streams, m, n, k int) analytic.GEMMModel {
	tilesM, tilesN := m/accel.Dim, n/accel.Dim
	aPanel := accel.APanelBytes(k)
	avail := cfg.Accel.LocalBufBytes - accel.BPanelBytes(k) - accel.TileCBytes
	rbTiles := avail / aPanel
	if rbTiles > tilesM {
		rbTiles = tilesM
	}
	if rbTiles < 1 {
		rbTiles = 1
	}
	memGBps := st.mem.gbps
	return analytic.GEMMModel{
		TilesM:          tilesM,
		TilesN:          tilesN,
		RBTiles:         rbTiles,
		APanelBytes:     aPanel,
		BPanelBytes:     accel.BPanelBytes(k),
		TileCBytes:      accel.TileCBytes,
		PerTileNs:       perTileNs(cfg, k),
		ReadNsPerByte:   st.readNsPerByte,
		WriteNsPerByte:  st.writeNsPerByte,
		ReadFillNs:      st.readFillNs,
		StartNs:         st.startNs,
		MemGBps:         memGBps,
		UpIINs:          st.upIINs,
		ReadBurstBytes:  st.readBurst,
		WriteBurstBytes: st.writeBurst,
	}
}

// cpuStreamNsPerByte models the CPU's streaming costs per byte, read
// and write separately: reads are cacheline fills under the core's MLP
// window, from host DRAM (host placements) or across PCIe into device
// memory (the DevMem NUMA path of Fig. 8). Full-line streaming writes
// install directly in the L1 without a fetch and drain as overlapped
// writebacks, so they cost only bandwidth, never the fill latency.
func cpuStreamNsPerByte(cfg core.Config, devResident bool) (perRead, perWrite float64) {
	const lineBytes = 64
	mlp := float64(cfg.CPUMLP)
	var mem memory
	var lineLatNs float64
	if devResident {
		mem = devMemory(cfg)
		f := fabricOf(cfg)
		// Host-initiated line read: request TLP down, completion up,
		// plus the device bus and DRAM behind the endpoint.
		down := f.RCNs + f.SerNs(f.HeaderBytes) + f.PropNs + f.SwitchNs +
			f.SerNs(f.HeaderBytes) + f.PropNs + f.EPNs
		up := f.EPNs + f.SerNs(lineBytes+f.HeaderBytes) + f.PropNs + f.SwitchNs +
			f.SerNs(lineBytes+f.HeaderBytes) + f.PropNs + f.RCNs
		lineLatNs = down + mem.latNs + up + 2*cfg.DevBusLat.Nanoseconds()
	} else {
		mem = hostMemory(cfg)
		// L1 miss through the LLC into DRAM.
		lineLatNs = mem.latNs + 2*cfg.BusLatency.Nanoseconds() + core.LLCHitLatency.Nanoseconds()
	}
	// Both ways through the L1 and the memory bus.
	lineLatNs += 2 * (core.L1HitLatency + cfg.BusLatency).Nanoseconds()
	interval := lineBytes / mem.gbps
	if w := lineLatNs / mlp; w > interval {
		interval = w
	}
	return interval / lineBytes, 1 / mem.gbps
}

// devWritebackNsPerByte is the cost of draining CPU writebacks into
// device memory: dirty activation lines leave the L1 as posted 64 B
// MemWr TLPs crossing the fabric toward the endpoint, one per
// initiation interval at the bottleneck hop.
func devWritebackNsPerByte(cfg core.Config) float64 {
	const lineBytes = 64
	mem := devMemory(cfg)
	wb := analytic.Stream{
		Fabric:       fabricOf(cfg),
		PayloadBytes: lineBytes,
		// Writeback TLPs travel RC -> switch -> endpoint, the same
		// credit chain completions use; no request window applies.
		Read:    true,
		MemGBps: mem.gbps,
	}
	return wb.NsPerByte()
}

// AnalyticMetrics evaluates the analytic backend for one resolved run,
// returning predictions in nanoseconds keyed like the harness's
// normalized metrics: "exec" always, plus "gemm"/"nongemm" for ViT
// runs (mirroring the timing outcome's split values).
func (s *Scenario) AnalyticMetrics(r Run) (map[string]float64, error) {
	cfg := r.Cfg.Resolved()
	if !cfg.PCIe.Topology.Flat() {
		return nil, noModelf("scenario %s: analytic: 2-level tree topology", s.Name)
	}
	switch s.Workload.Kind {
	case "", "gemm":
		if cfg.Accelerators > 1 {
			return nil, noModelf("scenario %s: analytic: %d accelerators contend on the fabric", s.Name, cfg.Accelerators)
		}
		// A single-member cluster of any kind models exactly: substitute
		// the member's resolved accelerator config for the base one.
		cfg.Accel = cfg.MemberAccel(0)
		if r.N <= 0 || r.N%accel.Dim != 0 {
			return nil, fmt.Errorf("scenario %s: analytic: bad GEMM size %d", s.Name, r.N)
		}
		m := gemmModel(cfg, r.N, r.N, r.N)
		return map[string]float64{"exec": m.ExecNs()}, nil
	case "vit":
		if cfg.Accelerators > 1 {
			return nil, noModelf("scenario %s: analytic: %d accelerators contend on the fabric", s.Name, cfg.Accelerators)
		}
		cfg.Accel = cfg.MemberAccel(0)
		g := workload.ViT(r.Model)
		comp := vitComposition(cfg, g)
		return map[string]float64{
			"exec":    comp.GEMMNs + comp.NonGEMMs,
			"gemm":    comp.GEMMNs,
			"nongemm": comp.NonGEMMs,
		}, nil
	case "farm":
		// Homogeneous farms on a flat switch get the first-order
		// serialization bound; mixed-kind members finish at different
		// times and interleave in ways the bound does not capture.
		k := cfg.Accelerators
		kind := cfg.MemberKind(0)
		for i := 1; i < k; i++ {
			if cfg.MemberKind(i) != kind {
				return nil, noModelf("scenario %s: analytic: mixed-kind farm", s.Name)
			}
		}
		cfg.Accel = cfg.MemberAccel(0)
		if r.N <= 0 || r.N%accel.Dim != 0 {
			return nil, fmt.Errorf("scenario %s: analytic: bad GEMM size %d", s.Name, r.N)
		}
		m := gemmModelWith(cfg, farmStreams(cfg, k), r.N, r.N, r.N)
		return map[string]float64{"exec": m.ExecNs()}, nil
	case "tenants":
		return nil, noModelf("scenario %s: analytic: tenant schedules", s.Name)
	}
	return nil, fmt.Errorf("scenario %s: analytic: no model for workload %q", s.Name, s.Workload.Kind)
}

// vitComposition derives the analytic.Composition unit times of one
// (config, model) pair: the full-model GEMM portion via the GEMM phase
// model and the Non-GEMM portion via the CPU streaming model — the
// paper's Fig. 9 algebra computed from configuration alone.
//
// Under DevMem the CPU's activation writes are deferred work: they
// install in the L1 as full-line writes and drain across PCIe as
// posted writebacks while the NEXT item runs, so their cost surfaces
// in whichever span follows the op — exactly how the timing backend's
// GEMM/Non-GEMM split attributes them. The item walk below carries
// that pending drain forward instead of charging writes to the op that
// issued them.
func vitComposition(cfg core.Config, g workload.Graph) analytic.Config {
	devResident := cfg.Access == core.DevMem
	perRead, perWrite := cpuStreamNsPerByte(cfg, devResident)
	var drainPerByte float64
	if devResident {
		drainPerByte = devWritebackNsPerByte(cfg)
	}
	clkNs := 1000 / cfg.CPUClockMHz

	var gemmNs, cpuNs, pendingDrainNs float64
	for _, it := range g.Items {
		if j := it.GEMM; j != nil {
			m := gemmModel(cfg, j.M, j.N, j.K)
			gemmNs += m.ExecNs() + pendingDrainNs
			pendingDrainNs = 0
			continue
		}
		op := it.CPU
		compute := float64(op.ComputeCycles) * clkNs
		stream := float64(op.ReadBytes) * perRead
		if !devResident {
			// Host placements absorb writes in the cache hierarchy at
			// memory bandwidth, overlapped with the read stream.
			stream += float64(op.WriteBytes) * perWrite
		}
		if stream > compute {
			compute = stream
		}
		cpuNs += compute + pendingDrainNs
		pendingDrainNs = float64(op.WriteBytes) * drainPerByte
	}
	// A trailing drain belongs to the next layer's first op.
	cpuNs += pendingDrainNs

	layers := float64(g.Layers)
	return analytic.Config{
		Name:     cfg.Name,
		GEMMNs:   gemmNs * layers,
		NonGEMMs: cpuNs * layers,
	}
}
