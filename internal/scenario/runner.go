package scenario

// This file executes resolved runs: building systems, wrapping them
// as sweep points with canonical fingerprints, and extracting
// declared metrics into outcomes so they survive the result cache.

import (
	"fmt"
	"sync"

	"accesys/internal/core"
	"accesys/internal/cpu"
	"accesys/internal/driver"
	"accesys/internal/sim"
	"accesys/internal/sweep"
	"accesys/internal/workload"
)

// BuildSystem assembles a system together with its kernel driver, the
// standard front door for examples, experiments, and manifest sweeps.
func BuildSystem(cfg core.Config) (*core.System, *driver.Driver) {
	sys := core.Build(cfg)
	dcfg := driver.Config{
		DMMode:     sys.Cfg.Access == core.DM,
		DevMemMode: sys.Cfg.Access == core.DevMem,
		NoIOMMU:    sys.Cfg.SMMU.Bypass,
	}
	drv := driver.New(sys.Cfg.Name+".driver", sys.EQ, sys.Stats, driver.Deps{
		EQ:        sys.EQ,
		MMIO:      sys.AttachHostPort("driver"),
		FuncHost:  sys.FuncHost(),
		FuncDev:   sys.FuncDev(),
		SMMU:      sys.SMMU,
		Accel:     sys.Accel,
		BARBase:   core.BARBase,
		HostRange: sys.Cfg.HostRange(),
		DevRange:  sys.Cfg.DevRange(),
		IOVABase:  core.IOVABase,
		Flush:     sys.FlushCaches,
	}, dcfg)
	return sys, drv
}

// TimeGEMM builds the config, runs one timing-only n^3 GEMM, and
// returns the accelerator-visible duration plus the system for stats
// inspection.
func TimeGEMM(cfg core.Config, n int) (sim.Tick, *core.System, driver.Result) {
	sys, drv := BuildSystem(cfg)
	var res driver.Result
	drv.RunGEMM(driver.GEMMSpec{M: n, N: n, K: n}, func(r driver.Result) { res = r })
	sys.Run()
	if res.Completed == 0 {
		panic(fmt.Sprintf("scenario: GEMM under %s never completed", cfg.Name))
	}
	return res.Job.Duration(), sys, res
}

// GEMMPoint wraps one timing-only n^3 GEMM under cfg as a sweep
// point. extract, when non-nil, pulls named metrics out of the
// finished system into the outcome (so they survive the result cache).
func GEMMPoint(cfg core.Config, n int, extract func(*core.System, driver.Result) map[string]float64) sweep.Point {
	return sweep.Point{
		Key:         cfg.Name,
		Fingerprint: sweep.Fingerprint(append([]any{"gemm", n}, cfg.FingerprintParts()...)...),
		Run: func() sweep.Outcome {
			d, sys, res := TimeGEMM(cfg, n)
			out := sweep.Outcome{Dur: d}
			if extract != nil {
				out.Values = extract(sys, res)
			}
			return out
		},
	}
}

// ViTSplit is the measured GEMM/Non-GEMM runtime split for one
// (config, model) pair, scaled to the full model (simulated layer x
// layer count).
type ViTSplit struct {
	GEMM    sim.Tick
	NonGEMM sim.Tick
}

// Total is the end-to-end inference time.
func (v ViTSplit) Total() sim.Tick { return v.GEMM + v.NonGEMM }

// vitMemo caches in-process ViT runs across scenarios sweeping the
// same systems (the Fig. 7/8/9 trio); keys are full fingerprints so
// physically different systems can never alias. The mutex makes it
// safe under parallel sweep workers.
var (
	vitMu   sync.Mutex
	vitMemo = map[string]ViTSplit{}
)

func vitFingerprint(cfg core.Config, v workload.ViTVariant) string {
	return sweep.Fingerprint(append([]any{"vit", v}, cfg.FingerprintParts()...)...)
}

// RunViT simulates one encoder layer of the variant under cfg and
// scales by the layer count, memoized per physical (config, model).
func RunViT(cfg core.Config, v workload.ViTVariant) ViTSplit {
	key := vitFingerprint(cfg, v)
	vitMu.Lock()
	t, ok := vitMemo[key]
	vitMu.Unlock()
	if ok {
		return t
	}
	t = SimViT(cfg, v)
	vitMu.Lock()
	vitMemo[key] = t
	vitMu.Unlock()
	return t
}

// SimViT is the uncached simulation of one encoder layer.
func SimViT(cfg core.Config, v workload.ViTVariant) ViTSplit {
	g := workload.ViT(v)
	sys, drv := BuildSystem(cfg)
	devMode := sys.Cfg.Access == core.DevMem

	// Activation arena: where the CPU's Non-GEMM operators stream. In
	// the DevMem configuration activations live in device memory — the
	// NUMA penalty of Fig. 8.
	const arena = 64 << 20
	var actBase uint64
	if devMode {
		actBase = drv.AllocDev(arena)
	} else {
		actBase = drv.AllocHost(arena)
	}

	var gemmT, cpuT sim.Tick
	rot := uint64(0)
	idx := 0
	var step func()
	step = func() {
		if idx == len(g.Items) {
			return
		}
		it := g.Items[idx]
		idx++
		start := sys.Now()
		if it.GEMM != nil {
			j := it.GEMM
			drv.RunGEMM(driver.GEMMSpec{M: j.M, N: j.N, K: j.K}, func(driver.Result) {
				gemmT += sys.Now() - start
				step()
			})
			return
		}
		op := it.CPU
		span := uint64(op.ReadBytes + op.WriteBytes)
		if rot+span >= arena {
			rot = 0
		}
		sys.CPU.Run([]cpu.Op{{
			Name:          op.Name,
			ReadAddr:      actBase + rot,
			ReadBytes:     op.ReadBytes,
			WriteAddr:     actBase + rot + uint64(op.ReadBytes),
			WriteBytes:    op.WriteBytes,
			ComputeCycles: op.ComputeCycles,
		}}, func() {
			cpuT += sys.Now() - start
			step()
		})
		rot += span
	}
	step()
	sys.Run()
	if idx != len(g.Items) {
		panic(fmt.Sprintf("scenario: ViT run under %s stalled at item %d/%d", cfg.Name, idx, len(g.Items)))
	}

	return ViTSplit{
		GEMM:    gemmT * sim.Tick(g.Layers),
		NonGEMM: cpuT * sim.Tick(g.Layers),
	}
}

// ViTPoint wraps one (config, model) ViT run as a sweep point. The
// outcome carries the GEMM/Non-GEMM split so it survives the result
// cache.
func ViTPoint(cfg core.Config, v workload.ViTVariant) sweep.Point {
	return sweep.Point{
		Key:         cfg.Name + "/" + v.Name,
		Fingerprint: vitFingerprint(cfg, v),
		Run: func() sweep.Outcome {
			t := RunViT(cfg, v)
			return sweep.Outcome{
				Dur: t.Total(),
				Values: map[string]float64{
					"gemm":    float64(t.GEMM),
					"nongemm": float64(t.NonGEMM),
				},
			}
		},
	}
}

// Split reads a ViT outcome back into its runtime split.
func Split(o sweep.Outcome) ViTSplit {
	return ViTSplit{GEMM: o.Tick("gemm"), NonGEMM: o.Tick("nongemm")}
}

// smmuStats are the per-run SMMU statistics of Table IV, looked up
// under <config name>.smmu.<stat>.
var smmuStats = []string{
	"translations", "trans_ns", "ptws", "ptw_ns", "utlb_lookups", "utlb_misses",
}

// metricGroups name the extraction sets a scenario can request.
var metricGroups = map[string]string{
	"pages": "SMMU pages mapped for the job's buffers",
	"smmu":  "translation statistics (skipped when the SMMU is bypassed)",
	"accel": "accelerator-side totals: tiles, bytes in/out, compute-busy time",
}

func metricNames() string { return sortedKeys(metricGroups) }

// extractor builds the per-run metric extraction closure for the
// scenario's declared groups, or nil when none are declared.
func (s *Scenario) extractor(r Run) func(*core.System, driver.Result) map[string]float64 {
	if len(s.Metrics) == 0 {
		return nil
	}
	name := r.Cfg.Name
	bypass := r.Cfg.SMMU.Bypass
	groups := append([]string{}, s.Metrics...)
	return func(sys *core.System, res driver.Result) map[string]float64 {
		out := map[string]float64{}
		for _, g := range groups {
			switch g {
			case "pages":
				out["pages"] = float64(res.PagesMapped)
			case "smmu":
				if bypass {
					continue
				}
				pre := name + ".smmu."
				for _, stat := range smmuStats {
					out[stat] = sys.Stats.Lookup(pre + stat).Value()
				}
			case "accel":
				out["tiles"] = float64(res.Job.Tiles)
				out["bytes_in"] = float64(res.Job.BytesIn)
				out["bytes_out"] = float64(res.Job.BytesOut)
				out["compute_busy_ns"] = float64(res.Job.ComputeBusy.Nanoseconds())
			}
		}
		return out
	}
}

// pointFor wraps one resolved run as an engine-ready sweep point.
func (s *Scenario) pointFor(r Run) sweep.Point {
	var p sweep.Point
	switch s.Workload.Kind {
	case "vit":
		p = ViTPoint(r.Cfg, r.Model)
	case "farm":
		p = FarmPoint(r.Cfg, r.N)
	case "tenants":
		p = TenantsPoint(r.Cfg, r.Tenants)
	default:
		p = GEMMPoint(r.Cfg, r.N, s.extractor(r))
	}
	p.Key = r.Key
	return p
}

// Points converts resolved runs into engine-ready sweep points.
func (s *Scenario) Points(runs []Run) []sweep.Point {
	points := make([]sweep.Point, len(runs))
	for i, r := range runs {
		points[i] = s.pointFor(r)
	}
	return points
}
