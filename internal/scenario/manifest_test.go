package scenario

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// golden manifests that must stay equivalent to their built-in
// definitions.
var goldenManifests = []string{"fig4", "fig6", "fig7", "tab4"}

// TestGoldenManifestsMatchBuiltins is the manifest/built-in
// equivalence contract behind the byte-identity acceptance: a loaded
// manifest expands to runs deeply equal to the built-in scenario's —
// same configs, same keys, same workload parameters — and its points
// carry the same fingerprints. Identical points through the shared
// renderer mean `accesys sweep testdata/fig4.json` emits rows
// byte-identical to `accesys run fig4` without re-simulating here.
func TestGoldenManifestsMatchBuiltins(t *testing.T) {
	for _, name := range goldenManifests {
		loaded, err := Load(filepath.Join("testdata", name+".json"))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		builtin := MustBuiltin(name)
		for _, full := range []bool{false, true} {
			lruns, err := loaded.Expand(full)
			if err != nil {
				t.Fatalf("%s (full=%v): %v", name, full, err)
			}
			bruns, err := builtin.Expand(full)
			if err != nil {
				t.Fatalf("%s (full=%v): %v", name, full, err)
			}
			if !reflect.DeepEqual(lruns, bruns) {
				t.Fatalf("%s (full=%v): manifest runs differ from built-in", name, full)
			}
			lp, bp := loaded.Points(lruns), builtin.Points(bruns)
			for i := range lp {
				if lp[i].Fingerprint != bp[i].Fingerprint {
					t.Fatalf("%s point %d (%s): fingerprints differ", name, i, lp[i].Key)
				}
			}
			if loaded.TitleFor(full) != builtin.TitleFor(full) {
				t.Fatalf("%s: titles differ", name)
			}
			if loaded.Table != builtin.Table {
				t.Fatalf("%s: table specs differ", name)
			}
		}
	}
}

// TestRootManifestInSyncWithGolden keeps the CLI-facing copy at
// testdata/fig4.json (repo root) from drifting out of sync with the
// golden one the tests pin.
func TestRootManifestInSyncWithGolden(t *testing.T) {
	root, err := os.ReadFile(filepath.Join("..", "..", "testdata", "fig4.json"))
	if err != nil {
		t.Fatal(err)
	}
	golden, err := os.ReadFile(filepath.Join("testdata", "fig4.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(root, golden) {
		t.Fatal("testdata/fig4.json (repo root) differs from internal/scenario/testdata/fig4.json")
	}
}

// TestRootSmokeManifestLoads keeps the CI smoke manifest valid.
func TestRootSmokeManifestLoads(t *testing.T) {
	sc, err := Load(filepath.Join("..", "..", "testdata", "smoke.json"))
	if err != nil {
		t.Fatal(err)
	}
	runs, err := sc.Expand(false)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 4 {
		t.Fatalf("smoke manifest has %d runs, want 4", len(runs))
	}
}

// TestLoadErrors exercises the malformed-manifest paths.
func TestLoadErrors(t *testing.T) {
	cases := []struct {
		file, want string
	}{
		{"bad-unknown-axis.json", "unknown axis"},
		{"bad-empty-axis.json", "empty matrix"},
	}
	for _, tc := range cases {
		_, err := Load(filepath.Join("testdata", tc.file))
		if err == nil {
			t.Errorf("%s: no error", tc.file)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.file, err, tc.want)
		}
	}
	if _, err := Load(filepath.Join("testdata", "no-such-file.json")); err == nil {
		t.Error("missing file: no error")
	}
}

// TestParseErrors covers decode-level failures manifest files can't
// cleanly represent.
func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, data, want string
	}{
		{"syntax", `{"name": `, "manifest"},
		{"unknown field", `{"name": "x", "flavour": "grape"}`, "unknown field"},
		{"trailing data", `{"name": "x", "workload": {"kind": "gemm", "n": 64}} {"again": true}`, "trailing data"},
		{"trailing garbage", `{"name": "x", "workload": {"kind": "gemm", "n": 64}} }`, "trailing data"},
		{"bad size", `{"name": "x", "workload": {"kind": "gemm", "n": "big"}}`, "cannot unmarshal"},
	}
	for _, tc := range cases {
		_, err := Parse([]byte(tc.data))
		if err == nil {
			t.Errorf("%s: no error", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// TestManifestJSONRoundTrip re-encodes a loaded manifest and loads it
// again: the declarative model survives a marshal cycle, so tooling
// can generate manifests from Go values.
func TestManifestJSONRoundTrip(t *testing.T) {
	loaded, err := Load(filepath.Join("testdata", "fig4.json"))
	if err != nil {
		t.Fatal(err)
	}
	data, err := Marshal(loaded)
	if err != nil {
		t.Fatal(err)
	}
	again, err := Parse(data)
	if err != nil {
		t.Fatalf("re-parse: %v", err)
	}
	r1, err := loaded.Expand(true)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := again.Expand(true)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Fatal("round-tripped manifest expands differently")
	}
}
