package scenario

// Native fuzz target for the manifest parser: arbitrary bytes must
// never panic Parse, and any manifest it accepts must round-trip
// Parse -> Marshal -> Parse with byte-stable output — the property
// that lets tooling regenerate manifests from loaded scenarios. Seeded
// from every committed manifest (this package's testdata plus the
// repo-root testdata the CLI ships). Run `make fuzz` for a short
// exploration; plain `go test` replays the seed corpus.

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func FuzzManifestParse(f *testing.F) {
	for _, dir := range []string{"testdata", filepath.Join("..", "..", "testdata")} {
		entries, err := os.ReadDir(dir)
		if err != nil {
			continue
		}
		for _, de := range entries {
			if de.IsDir() || !strings.HasSuffix(de.Name(), ".json") {
				continue
			}
			data, err := os.ReadFile(filepath.Join(dir, de.Name()))
			if err == nil {
				f.Add(data)
			}
		}
	}
	f.Add([]byte(`{"name":"t","workload":{"kind":"gemm","n":64},"axes":[{"axis":"lanes","values":[1]}]}`))
	f.Add([]byte(`{"name":"v","workload":{"kind":"vit"},"axes":[{"axis":"model","values":["vit-base"]}]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Parse(data)
		if err != nil {
			return // invalid input rejected cleanly is the contract
		}
		m1, err := Marshal(s)
		if err != nil {
			t.Fatalf("accepted manifest fails to marshal: %v", err)
		}
		s2, err := Parse(m1)
		if err != nil {
			t.Fatalf("marshal output does not re-parse: %v\n%s", err, m1)
		}
		m2, err := Marshal(s2)
		if err != nil {
			t.Fatalf("re-parsed manifest fails to marshal: %v", err)
		}
		if !bytes.Equal(m1, m2) {
			t.Fatalf("round trip unstable:\n--- first\n%s\n--- second\n%s", m1, m2)
		}
	})
}
