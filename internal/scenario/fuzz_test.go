package scenario

// Native fuzz target for the manifest parser: arbitrary bytes must
// never panic Parse, and any manifest it accepts must round-trip
// Parse -> Marshal -> Parse with byte-stable output — the property
// that lets tooling regenerate manifests from loaded scenarios. Seeded
// from every committed manifest (this package's testdata plus the
// repo-root testdata the CLI ships). Run `make fuzz` for a short
// exploration; plain `go test` replays the seed corpus.

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func FuzzManifestParse(f *testing.F) {
	for _, dir := range []string{"testdata", filepath.Join("..", "..", "testdata")} {
		entries, err := os.ReadDir(dir)
		if err != nil {
			continue
		}
		for _, de := range entries {
			if de.IsDir() || !strings.HasSuffix(de.Name(), ".json") {
				continue
			}
			data, err := os.ReadFile(filepath.Join(dir, de.Name()))
			if err == nil {
				f.Add(data)
			}
		}
	}
	f.Add([]byte(`{"name":"t","workload":{"kind":"gemm","n":64},"axes":[{"axis":"lanes","values":[1]}]}`))
	f.Add([]byte(`{"name":"v","workload":{"kind":"vit"},"axes":[{"axis":"model","values":["vit-base"]}]}`))
	// Heterogeneous stanzas: cluster compositions, topology shapes (both
	// spellings), and tenant schedules — including edge shapes the
	// committed manifests don't cover.
	f.Add([]byte(`{"name":"f","workload":{"kind":"farm","n":64},"axes":[{"axis":"cluster","values":[[{"kind":"gemm","n":1}]]}]}`))
	f.Add([]byte(`{"name":"f2","workload":{"kind":"farm","n":64},"axes":[{"axis":"cluster","values":[[{"kind":"cycle","n":8}]]},{"axis":"topology","values":["flat",{"levels":2,"fanout":1}]}]}`))
	f.Add([]byte(`{"name":"f3","workload":{"kind":"farm","n":64},"axes":[{"axis":"topology","values":[{"levels":2,"fanout":9}]}],"defaults":[{"axis":"accelerators","value":3}]}`))
	f.Add([]byte(`{"name":"bad","workload":{"kind":"farm","n":64},"axes":[{"axis":"cluster","values":[[{"kind":"tpu","n":1}],[{"kind":"gemm","n":0}],[{"kind":"gemm","n":99}]]}]}`))
	f.Add([]byte(`{"name":"badtop","workload":{"kind":"gemm","n":64},"axes":[{"axis":"topology","values":[{"levels":3},{"levels":2},{"fanout":2},"ring"]}]}`))
	f.Add([]byte(`{"name":"ten","workload":{"kind":"tenants","tenants":[{"n":64,"jobs":2},{"n":{"quick":32,"full":128}}]},"defaults":[{"axis":"accelerators","value":2}]}`))
	f.Add([]byte(`{"name":"ten1","workload":{"kind":"tenants","tenants":[{"n":64}]}}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Parse(data)
		if err != nil {
			return // invalid input rejected cleanly is the contract
		}
		m1, err := Marshal(s)
		if err != nil {
			t.Fatalf("accepted manifest fails to marshal: %v", err)
		}
		s2, err := Parse(m1)
		if err != nil {
			t.Fatalf("marshal output does not re-parse: %v\n%s", err, m1)
		}
		m2, err := Marshal(s2)
		if err != nil {
			t.Fatalf("re-parsed manifest fails to marshal: %v", err)
		}
		if !bytes.Equal(m1, m2) {
			t.Fatalf("round trip unstable:\n--- first\n%s\n--- second\n%s", m1, m2)
		}
	})
}
