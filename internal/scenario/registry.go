package scenario

// The built-in registry: the run matrices of the paper's nine
// evaluation artifacts (Section V), declared as scenario values. The
// figure-specific row shaping and shape checks live in internal/exp;
// everything the sweep engine needs — systems, workload sizes, axes,
// metrics — is declared here, and any of these matrices can equally be
// expressed as a JSON manifest (internal/scenario/testdata holds
// golden copies).

import (
	"fmt"
	"sort"
)

// lk is a link axis value: total raw bandwidth over a lane count.
func lk(gbps, lanes float64) Value {
	return map[string]any{"gbps": gbps, "lanes": lanes}
}

// sm is a simplemem axis value: fixed-latency host memory.
func sm(latNs, bwGBps float64) Value {
	return map[string]any{"latency_ns": latNs, "bandwidth_gbps": bwGBps}
}

func vals(vs ...any) []Value { return vs }

var builtins = map[string]func() *Scenario{
	"fig2": func() *Scenario {
		return &Scenario{
			Name:     "fig2",
			Title:    "Roofline: GEMM %d, PCIe 8 GB/s, sweep per-tile compute time",
			Base:     "pcie8gb",
			Workload: Workload{Kind: "gemm", N: Size{Quick: 512, Full: 1024}},
			Axes: []Axis{
				{Name: "compute_ns", Values: vals(0, 100, 200, 400, 800, 1500, 3000, 6000, 12000)},
			},
		}
	},
	"fig3": func() *Scenario {
		return &Scenario{
			Name:     "fig3",
			Title:    "PCIe bandwidth sweep, GEMM %d (paper: 2048)",
			Base:     "pcie8gb",
			Workload: Workload{Kind: "gemm", N: Size{Quick: 512, Full: 2048}},
			Axes: []Axis{
				{Name: "lanes", Values: vals(2, 4, 8, 16)},
				{Name: "lane_gbps", Values: vals(2, 4, 8, 16, 32, 64)},
			},
			Table: Table{Row: "lanes", RowHeader: "lanes", Col: "lane_gbps", Cell: "ms3"},
		}
	},
	"fig4": func() *Scenario {
		return &Scenario{
			Name:     "fig4",
			Title:    "Packet size sweep, GEMM %d",
			Base:     "pcie8gb",
			Workload: Workload{Kind: "gemm", N: Size{Quick: 512, Full: 2048}},
			Axes: []Axis{
				// Paper lane counts per bandwidth: 4 GB/s = 4 lanes,
				// 8 = 8, 16 and up = 16.
				{Name: "link", Values: vals(lk(4, 4), lk(8, 8), lk(16, 16), lk(32, 16), lk(64, 16))},
				{Name: "packet_bytes", Values: vals(64, 128, 256, 512, 1024, 2048, 4096)},
			},
			Table: Table{Row: "link", RowHeader: "GB/s", Col: "packet_bytes", Cell: "ms3"},
		}
	},
	"fig5": func() *Scenario {
		return &Scenario{
			Name:     "fig5",
			Title:    "Memory type and location, GEMM %d (speedup vs DDR4 DevMem)",
			Base:     "pcie8gb",
			Workload: Workload{Kind: "gemm", N: Size{Quick: 512, Full: 1024}},
			Axes: []Axis{
				{Name: "mem", Values: vals("DDR4-2400", "HBM2-2000", "GDDR5-2000", "LPDDR5-6400")},
				{Name: "preset", Values: vals("devmem", "pcie2gb", "pcie64gb")},
			},
		}
	},
	"fig6": func() *Scenario {
		return &Scenario{
			Name:     "fig6",
			Title:    "Host memory bandwidth/latency sweeps, GEMM %d (SimpleMem)",
			Base:     "pcie64gb",
			Workload: Workload{Kind: "gemm", N: Size{Quick: 1024, Full: 2048}},
			// Keep the systolic array fast so memory (not compute) is
			// the studied bottleneck, as in the paper's HBM case study.
			Defaults: []Setting{{Axis: "compute_ns", Value: 100}},
			Axes: []Axis{
				{Name: "simplemem", Values: vals(
					// Bandwidth sweep at 30 ns fixed latency...
					sm(30, 8), sm(30, 16), sm(30, 32), sm(30, 50),
					sm(30, 64), sm(30, 100), sm(30, 128), sm(30, 256),
					// ...then latency sweep at 64 GB/s.
					sm(1, 64), sm(6, 64), sm(12, 64), sm(18, 64),
					sm(24, 64), sm(30, 64), sm(36, 64),
				)},
			},
			// The SimpleMem sweeps pin compute and push the memory
			// serialization rate right onto the RC initiation-interval
			// rate; where two equal-rate bottlenecks couple, the phase
			// model's max() algebra underpredicts queueing, so this
			// scenario carries a wider documented fidelity band.
			Analytic: &AnalyticSpec{Tol: 0.2, Warn: 0.075},
		}
	},
	"tab4": func() *Scenario {
		return &Scenario{
			Name:     "tab4",
			Title:    "Address translation statistics (SMMU), DC access method",
			Base:     "pcie8gb",
			Workload: Workload{Kind: "gemm"},
			Axes: []Axis{
				{Name: "size", Values: vals(64, 128, 256, 512, 1024), FullValues: vals(2048)},
				{Name: "smmu_bypass", Values: vals(false, true)},
			},
			Metrics: []string{"pages", "smmu"},
		}
	},
	"fig7": func() *Scenario {
		return &Scenario{
			Name:     "fig7",
			Title:    "Transformer inference across memory/interconnect configurations",
			Workload: Workload{Kind: "vit"},
			Axes:     vitAxes(vals("ViT-Base", "ViT-Large", "ViT-Huge")),
		}
	},
	"fig8": func() *Scenario {
		return &Scenario{
			Name:     "fig8",
			Title:    "GEMM vs Non-GEMM runtime split (ViT-Base/Large/Huge)",
			Workload: Workload{Kind: "vit"},
			Axes:     vitAxes(vals("ViT-Base", "ViT-Large", "ViT-Huge")),
		}
	},
	"fig9": func() *Scenario {
		return &Scenario{
			Name:     "fig9",
			Title:    "Composition model: time vs Non-GEMM fraction (ViT-Base units)",
			Workload: Workload{Kind: "vit"},
			Axes:     vitAxes(vals("ViT-Base")),
		}
	},
}

// vitAxes is the Section V.C system matrix crossed with the given
// model list.
func vitAxes(models []Value) []Axis {
	return []Axis{
		{Name: "preset", Values: vals("pcie2gb", "pcie8gb", "pcie64gb", "devmem")},
		{Name: "model", Values: models},
	}
}

// Builtin returns a fresh copy of the named built-in scenario.
func Builtin(name string) (*Scenario, bool) {
	f, ok := builtins[name]
	if !ok {
		return nil, false
	}
	return f(), true
}

// MustBuiltin is Builtin for names the caller knows exist.
func MustBuiltin(name string) *Scenario {
	s, ok := Builtin(name)
	if !ok {
		panic(fmt.Sprintf("scenario: no built-in %q", name))
	}
	return s
}

// BuiltinNames lists the registry alphabetically.
func BuiltinNames() []string {
	names := make([]string, 0, len(builtins))
	for k := range builtins {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}
