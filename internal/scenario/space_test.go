package scenario

// The lazy enumeration seam's contract: Space.RunAt(i) must resolve
// exactly Expand(full)[i] for every builtin, both modes — explore,
// shard plans, and the golden corpus all reference points by this
// shared (index, fingerprint) coordinate system.

import (
	"reflect"
	"strings"
	"testing"
)

func TestSpaceRunAtMatchesExpand(t *testing.T) {
	for _, name := range BuiltinNames() {
		for _, full := range []bool{false, true} {
			sc := MustBuiltin(name)
			runs, err := sc.Expand(full)
			if err != nil {
				t.Fatalf("%s full=%v: %v", name, full, err)
			}
			sp, err := sc.Space(full)
			if err != nil {
				t.Fatalf("%s full=%v: %v", name, full, err)
			}
			if sp.Size() != len(runs) {
				t.Fatalf("%s full=%v: Space.Size %d, Expand %d", name, full, sp.Size(), len(runs))
			}
			for i := range runs {
				got, err := sp.RunAt(i)
				if err != nil {
					t.Fatalf("%s full=%v RunAt(%d): %v", name, full, i, err)
				}
				if !reflect.DeepEqual(got, runs[i]) {
					t.Fatalf("%s full=%v: RunAt(%d) diverges from Expand:\n%+v\nvs\n%+v",
						name, full, i, got, runs[i])
				}
			}
			// Points built lazily must fingerprint identically to the
			// batch path.
			pts := sc.Points(runs)
			for i := range runs {
				_, p, err := sp.PointAt(i)
				if err != nil {
					t.Fatal(err)
				}
				if p.Key != pts[i].Key || p.Fingerprint != pts[i].Fingerprint {
					t.Fatalf("%s full=%v: PointAt(%d) = (%q, %.16s…), want (%q, %.16s…)",
						name, full, i, p.Key, p.Fingerprint, pts[i].Key, pts[i].Fingerprint)
				}
			}
		}
	}
}

func TestSpaceRunAtRangeChecks(t *testing.T) {
	sp, err := MustBuiltin("fig4").Space(false)
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{-1, sp.Size()} {
		if _, err := sp.RunAt(i); err == nil {
			t.Fatalf("RunAt(%d) accepted an out-of-range index", i)
		}
		if _, ok := sp.AxisValue(i, "link"); ok {
			t.Fatalf("AxisValue(%d) accepted an out-of-range index", i)
		}
	}
}

// TestSpaceAxisValue pins the cheap constraint probe: the value the
// axis reports at index i must equal the label-bearing value the
// resolved run was built from, without building the run.
func TestSpaceAxisValue(t *testing.T) {
	sc := MustBuiltin("fig4")
	sp, err := sc.Space(false)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < sp.Size(); i++ {
		r, err := sp.RunAt(i)
		if err != nil {
			t.Fatal(err)
		}
		v, ok := sp.AxisValue(i, "packet_bytes")
		if !ok {
			t.Fatalf("point %d has no packet_bytes value", i)
		}
		def := axisRegistry["packet_bytes"]
		if def.label(v) != r.Label("packet_bytes") {
			t.Fatalf("point %d: AxisValue label %q, run label %q", i, def.label(v), r.Label("packet_bytes"))
		}
		if obj, ok := sp.AxisValue(i, "link"); !ok {
			t.Fatalf("point %d has no link value", i)
		} else if _, isMap := obj.(map[string]any); !isMap {
			t.Fatalf("point %d: link value %T, want a canonical object", i, obj)
		}
	}
	if _, ok := sp.AxisValue(0, "nonexistent"); ok {
		t.Fatal("AxisValue invented a value for an undeclared axis")
	}
}

// TestExploreStanzaValidation covers the manifest-level checks.
func TestExploreStanzaValidation(t *testing.T) {
	base := func() *Scenario {
		sc := MustBuiltin("fig4")
		sc.Explore = &ExploreSpec{}
		return sc
	}
	if err := base().Validate(); err != nil {
		t.Fatalf("empty stanza (all defaults): %v", err)
	}

	cases := []struct {
		name   string
		mutate func(*ExploreSpec)
	}{
		{"vit metric on gemm", func(e *ExploreSpec) { e.Objective.Metric = "gemm" }},
		{"unknown metric", func(e *ExploreSpec) { e.Objective.Metric = "watts" }},
		{"bad goal", func(e *ExploreSpec) { e.Objective.Goal = "maximize" }},
		{"bad strategy", func(e *ExploreSpec) { e.Strategy = "anneal" }},
		{"bad budget", func(e *ExploreSpec) { e.Budget = "lots" }},
		{"zero budget", func(e *ExploreSpec) { e.Budget = "0" }},
		{"negative promote", func(e *ExploreSpec) { e.Promote = -0.5 }},
		{"promote above one", func(e *ExploreSpec) { e.Promote = 1.5 }},
		{"eta one", func(e *ExploreSpec) { e.Eta = 1 }},
		{"constraint both axis and metric", func(e *ExploreSpec) {
			min := 1.0
			e.Constraints = []Constraint{{Axis: "packet_bytes", Metric: "exec", Min: &min}}
		}},
		{"constraint neither", func(e *ExploreSpec) {
			min := 1.0
			e.Constraints = []Constraint{{Min: &min}}
		}},
		{"constraint undeclared axis", func(e *ExploreSpec) {
			min := 1.0
			e.Constraints = []Constraint{{Axis: "lanes", Min: &min}}
		}},
		{"constraint no bound", func(e *ExploreSpec) {
			e.Constraints = []Constraint{{Axis: "packet_bytes"}}
		}},
		{"constraint equals with max", func(e *ExploreSpec) {
			max := 2.0
			e.Constraints = []Constraint{{Axis: "packet_bytes", Equals: 512.0, Max: &max}}
		}},
		{"constraint min above max", func(e *ExploreSpec) {
			min, max := 3.0, 2.0
			e.Constraints = []Constraint{{Axis: "packet_bytes", Min: &min, Max: &max}}
		}},
		{"proxy one domain", func(e *ExploreSpec) { e.Proxy = &ProxySpec{Domains: 1} }},
	}
	for _, tc := range cases {
		sc := base()
		tc.mutate(sc.Explore)
		if err := sc.Validate(); err == nil {
			t.Errorf("%s: validated", tc.name)
		}
	}

	// Farm/tenants workloads have no analytic screening model; an
	// explore stanza over them must be rejected at parse time.
	for _, kind := range []string{"farm", "tenants"} {
		sc := base()
		sc.Workload = Workload{Kind: kind, N: Size{Quick: 64, Full: 64},
			Tenants: []TenantSpec{{N: Size{Quick: 64, Full: 64}}, {N: Size{Quick: 64, Full: 64}}}}
		if err := sc.Validate(); err == nil {
			t.Errorf("explore over %s workload validated", kind)
		} else if !strings.Contains(err.Error(), "no analytic screening model") {
			t.Errorf("explore over %s: wrong error: %v", kind, err)
		}
	}

	// A valid constrained stanza passes.
	sc := base()
	max := 512.0
	sc.Explore = &ExploreSpec{
		Objective:   Objective{Metric: "exec", Goal: "min"},
		Constraints: []Constraint{{Axis: "link", Field: "lanes", Max: &max}, {Metric: "exec", Max: &max}},
		Strategy:    "halving",
		Budget:      "90s",
	}
	if err := sc.Validate(); err != nil {
		t.Fatalf("valid stanza rejected: %v", err)
	}
}

// TestSpaceEvalAxisConstraint pins axis-constraint semantics on the
// fig4 matrix: numeric bounds, object-field bounds, and equals.
func TestSpaceEvalAxisConstraint(t *testing.T) {
	sp, err := MustBuiltin("fig4").Space(false)
	if err != nil {
		t.Fatal(err)
	}
	min, max := 256.0, 512.0
	lanes := 8.0
	feasible := func(c Constraint) int {
		n := 0
		for i := 0; i < sp.Size(); i++ {
			if sp.EvalAxisConstraint(c, i) {
				n++
			}
		}
		return n
	}
	// packet_bytes in [256, 512]: 2 of 7 sizes x 5 links.
	if got := feasible(Constraint{Axis: "packet_bytes", Min: &min, Max: &max}); got != 10 {
		t.Fatalf("range constraint admits %d points, want 10", got)
	}
	// link.lanes <= 8: the 4- and 8-lane links, 2 of 5 x 7 sizes.
	if got := feasible(Constraint{Axis: "link", Field: "lanes", Max: &lanes}); got != 14 {
		t.Fatalf("field constraint admits %d points, want 14", got)
	}
	// equals on a numeric axis: one column.
	if got := feasible(Constraint{Axis: "packet_bytes", Equals: 512.0}); got != 5 {
		t.Fatalf("equals constraint admits %d points, want 5", got)
	}
}
