package scenario

// The lazy enumeration seam: a Space indexes a scenario's cross
// product without materializing it. Expand is a loop over RunAt, so
// both paths resolve points identically — the explore optimizer walks
// the same (index, fingerprint) coordinates that shard plans and the
// golden corpus pin, it just never has to build all of them.

import (
	"fmt"

	"accesys/internal/sweep"
	"accesys/internal/workload"
)

// spaceAxis is one resolved dimension of the cross product: the
// registry definition, the mode-resolved canonical values, and the
// mixed-radix stride of the axis's position (first axis slowest).
type spaceAxis struct {
	def    *axisDef
	vals   []Value
	stride int
}

// Space is a validated, lazily indexable view of a scenario's run
// matrix. Index i corresponds one-to-one with Expand's i-th run — the
// stable enumeration contract PointsFor documents.
type Space struct {
	sc   *Scenario
	full bool
	axes []spaceAxis
	size int
}

// Space validates the scenario once and returns the indexable view of
// its cross product for the given mode.
func (s *Scenario) Space(full bool) (*Space, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	sp := &Space{sc: s, full: full, axes: make([]spaceAxis, len(s.Axes))}
	sp.size = 1
	for i, ax := range s.Axes {
		sp.axes[i].def = axisRegistry[ax.Name]
		sp.axes[i].vals = s.axisValues(ax.Name, full)
		sp.size *= len(sp.axes[i].vals)
	}
	// Mixed-radix strides, last axis fastest (stride 1).
	stride := 1
	for i := len(sp.axes) - 1; i >= 0; i-- {
		sp.axes[i].stride = stride
		stride *= len(sp.axes[i].vals)
	}
	return sp, nil
}

// Size is the number of points in the cross product.
func (sp *Space) Size() int { return sp.size }

// Full reports the mode the space was resolved for.
func (sp *Space) Full() bool { return sp.full }

// Scenario returns the scenario the space indexes.
func (sp *Space) Scenario() *Scenario { return sp.sc }

// coord decodes index i into per-axis value positions.
func (sp *Space) coord(i int, out []int) {
	for j := range sp.axes {
		out[j] = (i / sp.axes[j].stride) % len(sp.axes[j].vals)
	}
}

// AxisValue returns the canonical value the named axis takes at point
// i, without resolving the run — the cheap probe explore's axis
// constraints use to reject candidates before any config is built.
// ok is false when the axis is not part of the scenario or i is out
// of range.
func (sp *Space) AxisValue(i int, axis string) (Value, bool) {
	if i < 0 || i >= sp.size {
		return nil, false
	}
	for j := range sp.axes {
		if sp.axes[j].def.name == axis {
			pos := (i / sp.axes[j].stride) % len(sp.axes[j].vals)
			return sp.axes[j].vals[pos], true
		}
	}
	return nil, false
}

// RunAt resolves point i of the cross product — byte-identical to
// Expand's i-th run: defaults and axis values applied in phase order,
// labels recorded in declaration order, then named.
func (sp *Space) RunAt(i int) (Run, error) {
	s := sp.sc
	if i < 0 || i >= sp.size {
		return Run{}, fmt.Errorf("scenario %s: point index %d out of range [0,%d)", s.Name, i, sp.size)
	}
	coord := make([]int, len(sp.axes))
	sp.coord(i, coord)

	r := Run{
		Cfg:   presets[s.base()](),
		N:     s.SizeFor(sp.full),
		Model: workload.ViTBase,
	}
	// Apply defaults and the selected value of every axis in phase
	// order (presets replace the config wholesale, so they go first;
	// placement-aware axes like "mem" go last), but record labels in
	// declaration order. Within a phase, defaults precede axes so a
	// swept axis can override a default — and a field default (e.g.
	// compute_ns) survives a preset axis replacing the whole config in
	// the earlier phase.
	r.axisNames = make([]string, len(sp.axes))
	r.labels = make([]string, len(sp.axes))
	for phase := 0; phase <= maxPhase; phase++ {
		for _, d := range s.Defaults {
			def := axisRegistry[d.Axis]
			if def.phase != phase {
				continue
			}
			cv, _ := canon(d.Value)
			if err := def.apply(&r, cv); err != nil {
				return Run{}, fmt.Errorf("scenario %s: defaults %q: %v", s.Name, d.Axis, err)
			}
		}
		for j := range sp.axes {
			ax := &sp.axes[j]
			if ax.def.phase != phase {
				continue
			}
			v := ax.vals[coord[j]]
			if err := ax.def.apply(&r, v); err != nil {
				return Run{}, fmt.Errorf("scenario %s: axis %q: %v", s.Name, ax.def.name, err)
			}
			r.axisNames[j] = ax.def.name
			r.labels[j] = ax.def.label(v)
		}
	}
	if k := s.Workload.Kind; k == "farm" || k == "tenants" {
		// Farm workloads run one driver per cluster member. The members
		// share a single SMMU, and concurrent drivers installing their
		// own root tables would clobber each other's translation
		// streams, so these workloads run physically addressed. Stamped
		// here — before naming and fingerprinting — so the bypass is
		// part of every farm point's identity.
		r.Cfg.SMMU.Bypass = true
		if k == "tenants" {
			r.Tenants = resolveTenants(s.Workload.Tenants, sp.full)
			if na := r.Cfg.NumAccels(); na < len(r.Tenants) {
				return Run{}, fmt.Errorf("scenario %s: %d tenants need at least that many accelerators, cluster has %d", s.Name, len(r.Tenants), na)
			}
		}
	}
	s.nameRun(&r)
	switch s.Workload.Kind {
	case "gemm", "", "farm":
		if r.N <= 0 {
			return Run{}, fmt.Errorf("scenario %s: run %s has no GEMM size", s.Name, r.Key)
		}
	}
	return r, nil
}

// PointAt resolves point i and wraps it as an engine-ready sweep
// point, identical to PointsFor(full)[i].
func (sp *Space) PointAt(i int) (Run, sweep.Point, error) {
	r, err := sp.RunAt(i)
	if err != nil {
		return Run{}, sweep.Point{}, err
	}
	return r, sp.sc.pointFor(r), nil
}
