package scenario

// Farm/tenant workload contracts: the committed heterogeneous
// manifests stay valid, runs are deterministic, per-tenant metrics are
// sane, heterogeneous fingerprints never alias homogeneous cache
// entries, and the -domains clamp is deterministic and warned once.

import (
	"bytes"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"accesys/internal/core"
)

func loadHet(t *testing.T, name string) *Scenario {
	t.Helper()
	sc, err := Load(filepath.Join("..", "..", "testdata", name+".json"))
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

func TestHetManifestsLoadAndExpand(t *testing.T) {
	for _, name := range []string{"hetfarm", "tenants"} {
		sc := loadHet(t, name)
		for _, full := range []bool{false, true} {
			runs, err := sc.Expand(full)
			if err != nil {
				t.Fatalf("%s full=%v: %v", name, full, err)
			}
			if len(runs) == 0 {
				t.Fatalf("%s full=%v: empty matrix", name, full)
			}
			for i, p := range sc.Points(runs) {
				if p.Fingerprint == "" || p.Key == "" {
					t.Fatalf("%s point %d lacks identity: %+v", name, i, p)
				}
			}
			// Farm/tenants runs share one SMMU; RunAt must stamp bypass
			// before fingerprinting.
			for i, r := range runs {
				if !r.Cfg.SMMU.Bypass {
					t.Fatalf("%s run %d: SMMU bypass not stamped", name, i)
				}
			}
		}
	}
}

func TestFarmAndTenantRunsDeterministic(t *testing.T) {
	for _, name := range []string{"hetfarm", "tenants"} {
		sc := loadHet(t, name)
		runs, err := sc.Expand(false)
		if err != nil {
			t.Fatal(err)
		}
		// Re-simulating the same point must reproduce every value and
		// the duration exactly.
		p := sc.pointFor(runs[0])
		a, b := p.Run(), p.Run()
		if a.Dur != b.Dur || !reflect.DeepEqual(a.Values, b.Values) {
			t.Fatalf("%s point not deterministic:\n%+v\n%+v", name, a, b)
		}
	}
}

func TestTenantMetricsSane(t *testing.T) {
	sc := loadHet(t, "tenants")
	runs, err := sc.Expand(false)
	if err != nil {
		t.Fatal(err)
	}
	out := sc.pointFor(runs[0]).Run()
	for i := range runs[0].Tenants {
		shared := out.Values[tenantKey(i, "exec_ns")]
		solo := out.Values[tenantKey(i, "solo_ns")]
		sd := out.Values[tenantKey(i, "slowdown")]
		if shared <= 0 || solo <= 0 {
			t.Fatalf("tenant %d times missing: %+v", i, out.Values)
		}
		// Contention can only slow a tenant down.
		if sd < 1 {
			t.Fatalf("tenant %d sped up under contention: slowdown %v", i, sd)
		}
		if got := shared / solo; got < sd*0.999 || got > sd*1.001 {
			t.Fatalf("tenant %d slowdown inconsistent: %v vs %v/%v", i, sd, shared, solo)
		}
	}
	if f := out.Values["fairness"]; f < 1 {
		t.Fatalf("fairness = %v, must be >= 1 (max/min slowdown)", f)
	}
}

func tenantKey(i int, suffix string) string {
	return "t" + string(rune('0'+i)) + "_" + suffix
}

func TestHeterogeneousFingerprintsDisjoint(t *testing.T) {
	// Property: every heterogeneous point fingerprint is disjoint from
	// the whole homogeneous builtin corpus (both modes) and unique
	// among the heterogeneous points themselves. (Builtins may share
	// fingerprints with each other by design — the Fig. 7/8/9 trio
	// sweeps the same physical systems.)
	homog := map[string]string{}
	for _, name := range BuiltinNames() {
		for _, full := range []bool{false, true} {
			points, err := MustBuiltin(name).PointsFor(full)
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range points {
				homog[p.Fingerprint] = name + "/" + p.Key
			}
		}
	}
	het := map[string]string{}
	for _, name := range []string{"hetfarm", "tenants"} {
		for _, full := range []bool{false, true} {
			sc := loadHet(t, name)
			points, err := sc.PointsFor(full)
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range points {
				owner := name + "/" + p.Key
				if p.Fingerprint == "" {
					t.Fatalf("%s: empty fingerprint", owner)
				}
				if prev, hit := homog[p.Fingerprint]; hit {
					t.Fatalf("heterogeneous point %s aliases homogeneous cache entry %s", owner, prev)
				}
				// Same point across modes (quick == full) is legitimate;
				// distinct points sharing a fingerprint are collisions.
				if prev, dup := het[p.Fingerprint]; dup && prev != owner {
					t.Fatalf("fingerprint collision: %s aliases %s", owner, prev)
				}
				het[p.Fingerprint] = owner
			}
		}
	}

	// Same config, different workload kinds: the leading identity
	// element keeps them apart even at identical sizes.
	cfg := core.PCIe8GB()
	cfg.SMMU.Bypass = true
	cfg = cfg.Resolved()
	if GEMMPoint(cfg, 64, nil).Fingerprint == FarmPoint(cfg, 64).Fingerprint {
		t.Fatal("farm point aliases gemm point over the same config")
	}
	if FarmPoint(cfg, 64).Fingerprint == TenantsPoint(cfg, []TenantJob{{N: 64, Jobs: 1}}).Fingerprint {
		t.Fatal("tenants point aliases farm point")
	}

	// A cluster stanza must change the config fingerprint even when it
	// resolves to the same accelerator count.
	plain := core.PCIe8GB()
	plain.Accelerators = 2
	hetero := core.PCIe8GB()
	hetero.Cluster = []core.ClusterSlot{{Kind: "gemm", N: 1}, {Kind: "vit", N: 1}}
	if FarmPoint(bypassed(plain), 64).Fingerprint == FarmPoint(bypassed(hetero), 64).Fingerprint {
		t.Fatal("heterogeneous cluster aliases the homogeneous 2-accel config")
	}
}

func bypassed(cfg core.Config) core.Config {
	cfg.SMMU.Bypass = true
	return cfg.Resolved()
}

func TestOptionsApplyClampsDomainsOnce(t *testing.T) {
	sc := loadHet(t, "hetfarm")
	runs, err := sc.Expand(false)
	if err != nil {
		t.Fatal(err)
	}
	cap := runs[0].Cfg.DomainCap()

	var buf bytes.Buffer
	over := Options{Domains: cap + 1, Out: &buf}
	over.Apply(runs)
	for i := range runs {
		if runs[i].Cfg.Domains != min(cap+1, runs[i].Cfg.DomainCap()) {
			t.Fatalf("run %d: domains = %d, cap %d", i, runs[i].Cfg.Domains, runs[i].Cfg.DomainCap())
		}
	}
	warns := strings.Count(buf.String(), "clamping")
	if warns != 1 {
		t.Fatalf("clamp warned %d times, want exactly once:\n%s", warns, buf.String())
	}

	// At the cap: no warning, no clamp.
	runs, err = sc.Expand(false)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	at := Options{Domains: cap, Out: &buf}
	at.Apply(runs)
	if buf.Len() != 0 {
		t.Fatalf("in-cap request warned:\n%s", buf.String())
	}
	for i := range runs {
		if runs[i].Cfg.Domains != cap {
			t.Fatalf("run %d: domains = %d, want %d", i, runs[i].Cfg.Domains, cap)
		}
	}
}
