// Package scenario is the declarative layer over the sweep engine: a
// Scenario names a base system, a workload, and a set of axes whose
// cross product is the run matrix, plus the metrics to extract per
// point and an optional table shape for rendering. The nine built-in
// experiments of the paper's evaluation declare their matrices here
// (see registry.go), and Load reads the same model from a JSON
// manifest so an arbitrary matrix runs with zero new Go.
package scenario

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"accesys/internal/core"
	"accesys/internal/sim"
	"accesys/internal/sweep"
	"accesys/internal/workload"
)

// Size is a quick/full pair: experiments run reduced sizes by default
// to stay interactive and paper-scale sizes under -full. In JSON it
// decodes from either a plain number (both modes equal) or
// {"quick": q, "full": f}.
type Size struct {
	Quick int `json:"quick"`
	Full  int `json:"full"`
}

// Pick resolves the size for the given mode.
func (s Size) Pick(full bool) int {
	if full {
		return s.Full
	}
	return s.Quick
}

// UnmarshalJSON accepts 512 or {"quick": 512, "full": 2048}.
func (s *Size) UnmarshalJSON(data []byte) error {
	if len(data) > 0 && data[0] != '{' {
		var n int
		if err := json.Unmarshal(data, &n); err != nil {
			return err
		}
		s.Quick, s.Full = n, n
		return nil
	}
	type raw Size
	var r raw
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&r); err != nil {
		return err
	}
	*s = Size(r)
	return nil
}

// TenantSpec declares one tenant of a "tenants" workload: Jobs
// back-to-back square GEMMs of size N, driven through the tenant's own
// cluster member while the other tenants run concurrently on theirs.
type TenantSpec struct {
	// N is the tenant's square GEMM size.
	N Size `json:"n"`
	// Jobs is how many GEMMs the tenant runs back to back (default 1).
	Jobs int `json:"jobs,omitempty"`
}

// Workload selects what each run simulates: a timing-only square GEMM
// of size N, one ViT encoder layer scaled by the model's layer count
// (the model itself comes from a "model" axis), a "farm" (the point's
// GEMM co-running on every cluster member at once, measuring the
// makespan), or "tenants" (co-running per-tenant schedules sharing the
// interconnect, measuring contention and fairness against solo runs).
type Workload struct {
	// Kind is "gemm" (default), "vit", "farm", or "tenants".
	Kind string `json:"kind"`
	// N is the square GEMM size; a "size" axis overrides it per point.
	N Size `json:"n"`
	// Tenants declares the co-running schedules of a "tenants"
	// workload (at least two).
	Tenants []TenantSpec `json:"tenants,omitempty"`
}

// Value is one axis value as decoded from JSON: a number (float64), a
// string, a bool, or an object (map[string]any), depending on the
// axis. Built-in scenarios may use friendlier Go literals — values are
// canonicalized through JSON semantics before use.
type Value = any

// Axis is one swept dimension: a named kind from the axis registry
// (see axes.go) and its value list. Declaration order fixes the cross
// product nesting — the first axis varies slowest.
type Axis struct {
	Name   string  `json:"axis"`
	Values []Value `json:"values"`
	// FullValues are appended under -full (e.g. Table IV's 2048
	// column, too slow for interactive runs).
	FullValues []Value `json:"full_values,omitempty"`
}

// Setting is a fixed single-value axis application: scenario-wide
// configuration overrides that are not swept (e.g. Fig. 6 pins the
// per-tile compute time so memory stays the studied bottleneck).
type Setting struct {
	Axis  string `json:"axis"`
	Value Value  `json:"value"`
}

// Table declares how Render pivots the matrix into a Result: the axis
// whose values label rows, the axis whose values become columns, and
// the cell format. The zero value renders a flat one-row-per-point
// listing with any extracted metrics as extra columns.
type Table struct {
	Row       string `json:"row,omitempty"`
	RowHeader string `json:"row_header,omitempty"`
	Col       string `json:"col,omitempty"`
	// Cell is the duration format: "ms3" (%.3fms, default), "ms2",
	// or "s3".
	Cell string `json:"cell,omitempty"`
}

// Scenario is one declarative sweep.
type Scenario struct {
	// Name identifies the scenario; it prefixes run keys and is the
	// Result ID.
	Name string `json:"name"`
	// Title heads the rendered table. One optional %d verb is
	// substituted with the resolved GEMM size.
	Title string `json:"title,omitempty"`
	// Base names the starting system preset: "default", "pcie2gb",
	// "pcie8gb", "pcie64gb", or "devmem" (empty = "default", the
	// paper's Table II system). A "preset" axis replaces it per point.
	Base string `json:"base,omitempty"`
	// Workload selects the simulated job.
	Workload Workload `json:"workload"`
	// Defaults are fixed overrides applied to every point before the
	// axes.
	Defaults []Setting `json:"defaults,omitempty"`
	// Axes span the run matrix.
	Axes []Axis `json:"axes"`
	// Metrics names extraction groups recorded into each outcome:
	// "pages", "smmu", "accel" (see runner.go).
	Metrics []string `json:"metrics,omitempty"`
	// Table shapes Render output.
	Table Table `json:"table,omitempty"`
	// Analytic tunes the cross-backend equivalence comparison (see
	// analytic.go); nil uses the harness defaults.
	Analytic *AnalyticSpec `json:"analytic,omitempty"`
	// Explore declares the search objective and constraints for
	// `accesys explore` (see explore.go); nil scenarios can only be
	// swept exhaustively.
	Explore *ExploreSpec `json:"explore,omitempty"`
}

// Run is one resolved point of the matrix: the full system config plus
// workload parameters, with the per-axis labels that name it.
type Run struct {
	// Key labels the run in progress output and is unique within the
	// scenario.
	Key string
	// Cfg is the fully resolved system configuration.
	Cfg core.Config
	// N is the GEMM size (gemm and farm workloads).
	N int
	// Model is the ViT variant (vit workloads).
	Model workload.ViTVariant
	// Tenants are the resolved co-running schedules (tenants
	// workloads): sizes picked for the mode, job counts defaulted.
	Tenants []TenantJob

	axisNames []string
	labels    []string
}

// Label returns the run's key fragment for the named axis ("" when the
// axis is not part of the scenario).
func (r Run) Label(axis string) string {
	for i, n := range r.axisNames {
		if n == axis {
			return r.labels[i]
		}
	}
	return ""
}

// SizeFor resolves the workload's GEMM size for the given mode.
func (s *Scenario) SizeFor(full bool) int { return s.Workload.N.Pick(full) }

// TitleFor renders the title, substituting the resolved GEMM size for
// an optional %d verb.
func (s *Scenario) TitleFor(full bool) string {
	if strings.Contains(s.Title, "%d") {
		return fmt.Sprintf(s.Title, s.SizeFor(full))
	}
	return s.Title
}

// axisValues returns the named axis's canonicalized values for the
// given mode, or nil when absent.
func (s *Scenario) axisValues(name string, full bool) []Value {
	for _, ax := range s.Axes {
		if ax.Name == name {
			vals := append(append([]Value{}, ax.Values...), fullExtra(ax, full)...)
			out := make([]Value, len(vals))
			for i, v := range vals {
				out[i], _ = canon(v)
			}
			return out
		}
	}
	return nil
}

// AxisStrings formats the named axis's values (quick+full as
// requested) with the axis's header formatter — the labels figure code
// uses when walking the matrix.
func (s *Scenario) AxisStrings(name string, full bool) []string {
	def, ok := axisRegistry[name]
	if !ok {
		return nil
	}
	vals := s.axisValues(name, full)
	out := make([]string, len(vals))
	for i, v := range vals {
		out[i] = def.label(v)
	}
	return out
}

// AxisNumbers returns the named axis's values as numbers — what
// figure code walking the matrix uses for knee/stride math.
// Non-numeric values come back as 0.
func (s *Scenario) AxisNumbers(name string, full bool) []float64 {
	vals := s.axisValues(name, full)
	out := make([]float64, len(vals))
	for i, v := range vals {
		out[i], _ = v.(float64)
	}
	return out
}

// AxisObjects returns the named axis's object values with their
// numeric fields — how figure code reads composite axes (link,
// simplemem) without duplicating the value lists. Non-object values
// come back as empty maps.
func (s *Scenario) AxisObjects(name string, full bool) []map[string]float64 {
	vals := s.axisValues(name, full)
	out := make([]map[string]float64, len(vals))
	for i, v := range vals {
		out[i] = map[string]float64{}
		if m, ok := v.(map[string]any); ok {
			for k, f := range m {
				if fv, ok := f.(float64); ok {
					out[i][k] = fv
				}
			}
		}
	}
	return out
}

// AxisLen returns the named axis's value count for the given mode.
func (s *Scenario) AxisLen(name string, full bool) int {
	return len(s.axisValues(name, full))
}

func fullExtra(ax Axis, full bool) []Value {
	if full {
		return ax.FullValues
	}
	return nil
}

// canon round-trips a value through JSON so Go-declared scenarios and
// manifest-loaded ones see identical representations (ints become
// float64, structs become maps).
func canon(v Value) (Value, error) {
	switch v.(type) {
	case float64, string, bool, nil:
		return v, nil
	}
	b, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("unencodable axis value %T: %v", v, err)
	}
	var out any
	if err := json.Unmarshal(b, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Validate checks the scenario against the axis registry without
// expanding it.
func (s *Scenario) Validate() error {
	fail := func(format string, args ...any) error {
		return fmt.Errorf("scenario %s: %s", s.Name, fmt.Sprintf(format, args...))
	}
	if s.Name == "" {
		return fmt.Errorf("scenario: missing name")
	}
	if _, ok := presets[s.base()]; !ok {
		return fail("unknown base preset %q (want one of %s)", s.Base, presetNames())
	}
	switch s.Workload.Kind {
	case "", "gemm":
		if s.SizeFor(false) <= 0 && !s.hasAxis("size") {
			return fail("gemm workload needs a positive n or a size axis")
		}
	case "farm":
		if s.SizeFor(false) <= 0 && !s.hasAxis("size") {
			return fail("farm workload needs a positive n or a size axis")
		}
	case "tenants":
		if len(s.Workload.Tenants) < 2 {
			return fail("tenants workload needs at least two tenants")
		}
		for i, t := range s.Workload.Tenants {
			if t.N.Pick(false) <= 0 || t.N.Pick(true) <= 0 {
				return fail("tenant %d needs a positive n", i)
			}
			if t.Jobs < 0 {
				return fail("tenant %d: negative job count %d", i, t.Jobs)
			}
		}
	case "vit":
	default:
		return fail("unknown workload kind %q (want gemm, vit, farm, or tenants)", s.Workload.Kind)
	}
	seen := map[string]bool{}
	for _, ax := range s.Axes {
		def, ok := axisRegistry[ax.Name]
		if !ok {
			return fail("unknown axis %q (want one of %s)", ax.Name, axisNames())
		}
		if seen[ax.Name] {
			return fail("duplicate axis %q", ax.Name)
		}
		seen[ax.Name] = true
		if len(ax.Values) == 0 {
			return fail("axis %q: empty matrix (no values)", ax.Name)
		}
		for _, v := range append(append([]Value{}, ax.Values...), ax.FullValues...) {
			cv, err := canon(v)
			if err != nil {
				return fail("axis %q: %v", ax.Name, err)
			}
			if err := def.check(cv); err != nil {
				return fail("axis %q: %v", ax.Name, err)
			}
		}
	}
	for _, d := range s.Defaults {
		def, ok := axisRegistry[d.Axis]
		if !ok {
			return fail("defaults: unknown axis %q", d.Axis)
		}
		cv, err := canon(d.Value)
		if err != nil {
			return fail("defaults %q: %v", d.Axis, err)
		}
		if err := def.check(cv); err != nil {
			return fail("defaults %q: %v", d.Axis, err)
		}
	}
	for _, m := range s.Metrics {
		if _, ok := metricGroups[m]; !ok {
			return fail("unknown metric group %q (want one of %s)", m, metricNames())
		}
	}
	if s.Table.Col != "" && !seen[s.Table.Col] {
		return fail("table col %q is not a declared axis", s.Table.Col)
	}
	if s.Table.Row != "" && !seen[s.Table.Row] {
		return fail("table row %q is not a declared axis", s.Table.Row)
	}
	if s.Table.Col != "" {
		if s.Table.Row == "" {
			return fail("table col needs a row axis")
		}
		if s.Table.Row == s.Table.Col {
			return fail("table row and col must name different axes")
		}
		if len(s.Axes) != 2 {
			return fail("pivot table needs exactly two axes, have %d", len(s.Axes))
		}
	}
	if _, ok := cellFormats[s.cell()]; !ok {
		return fail("unknown cell format %q", s.Table.Cell)
	}
	if a := s.Analytic; a != nil {
		if a.Tol < 0 || a.Warn < 0 {
			return fail("analytic tolerances must be non-negative")
		}
		if a.Tol > 0 && a.Warn > a.Tol {
			return fail("analytic warn threshold %g exceeds fail threshold %g", a.Warn, a.Tol)
		}
	}
	if s.Explore != nil {
		if err := s.validateExplore(fail); err != nil {
			return err
		}
	}
	return nil
}

func (s *Scenario) base() string {
	if s.Base == "" {
		return "default"
	}
	return s.Base
}

func (s *Scenario) cell() string {
	if s.Table.Cell == "" {
		return "ms3"
	}
	return s.Table.Cell
}

func (s *Scenario) hasAxis(name string) bool {
	for _, ax := range s.Axes {
		if ax.Name == name {
			return true
		}
	}
	return false
}

// Expand validates the scenario and resolves its cross product into
// runs, first axis varying slowest. Every run carries a fully
// defaulted-and-overridden core.Config plus workload parameters; gemm
// runs are named <scenario>-<label>-..., while vit runs keep the
// physical config name (so identical systems share cache entries and
// the in-process memo across scenarios) and are keyed
// <config>/<model>.
func (s *Scenario) Expand(full bool) ([]Run, error) {
	sp, err := s.Space(full)
	if err != nil {
		return nil, err
	}
	runs := make([]Run, 0, sp.Size())
	for i := 0; i < sp.Size(); i++ {
		r, err := sp.RunAt(i)
		if err != nil {
			return nil, err
		}
		runs = append(runs, r)
	}
	return runs, nil
}

// nameRun fixes the run's config name and progress key. ViT runs are
// identified by their physical system (preset name) so the result
// cache and the in-process layer memo are shared across figures that
// sweep the same systems.
func (s *Scenario) nameRun(r *Run) {
	if s.Workload.Kind == "vit" {
		key := r.Cfg.Name + "/" + r.Model.Name
		for i, n := range r.axisNames {
			if n != "preset" && n != "model" {
				key += "-" + r.labels[i]
			}
		}
		r.Key = key
		return
	}
	name := s.Name
	for _, l := range r.labels {
		if l != "" {
			name += "-" + l
		}
	}
	r.Cfg.Name = name
	r.Key = name
}

// Options carries the execution knobs shared by built-in experiments
// and manifest sweeps.
type Options struct {
	// Full runs paper-scale sizes and full_values; otherwise reduced
	// sizes keep runtimes interactive.
	Full bool
	// Verbose streams k/n progress lines with an ETA to Out.
	Verbose bool
	// Out receives progress output (default: discard).
	Out io.Writer
	// Jobs bounds each sweep's worker pool; <= 0 runs one worker per
	// CPU. Results are ordering-deterministic regardless.
	Jobs int
	// Cache, when non-nil, memoises completed runs on disk so repeated
	// invocations skip untouched design points.
	Cache *sweep.Cache
	// Profile, when non-nil, records measured per-point wall times —
	// the weighted shard partitioner's scheduling input. Flush it after
	// the run to persist.
	Profile *sweep.Profile
	// Flight, when non-nil, coalesces concurrent executions of
	// identical points across every sweep sharing it — how the serve
	// daemon keeps overlapping jobs from racing the same cold
	// simulations.
	Flight *sweep.Flight
	// OnResult, when non-nil, observes every completed point (cold,
	// cached, or shared) in completion order — the serve daemon's
	// per-job progress counters. It composes with, and runs after, the
	// verbose progress printer.
	OnResult func(sweep.Result)
	// Domains partitions every built system into that many concurrently
	// ticking event-loop domains under conservative barrier sync
	// (core.Config.Domains); <= 1 keeps the sequential loop whose
	// results the golden corpus pins.
	Domains int
	// Quantum overrides the barrier window for Domains > 1 (0 = the
	// build's minimum cross-domain channel latency, the timing-exact
	// default).
	Quantum sim.Tick
}

// Apply stamps the options' simulation-engine knobs (domain count and
// quantum) onto every expanded run. The fields live in each run's
// core.Config, so partitioned points fingerprint differently from
// sequential ones and can never alias their cache entries.
//
// Requests past a run's topology-derived cap (core.Config.DomainCap)
// are clamped here, before fingerprinting: a `-domains 9` request on a
// 1-accelerator system stamps the same Domains=4 a `-domains 4`
// request does, so the two fingerprint (and cache) identically instead
// of simulating the same partition under distinct keys. The clamp is
// warned once per Apply (to Out regardless of Verbose — it changes
// what the cache key means, not just progress).
func (o Options) Apply(runs []Run) {
	if o.Domains <= 1 {
		return
	}
	warned := false
	for i := range runs {
		nd := o.Domains
		if max := runs[i].Cfg.DomainCap(); nd > max {
			if !warned && o.Out != nil {
				fmt.Fprintf(o.Out, "scenario: -domains %d exceeds the topology-derived cap %d (host+pcie+dev+%d accelerators); clamping\n",
					o.Domains, max, runs[i].Cfg.NumAccels())
			}
			warned = true
			nd = max
		}
		runs[i].Cfg.Domains = nd
		runs[i].Cfg.Quantum = o.Quantum
	}
}

// Logf writes a progress line when verbose output is enabled.
func (o Options) Logf(format string, args ...any) {
	if o.Verbose && o.Out != nil {
		fmt.Fprintf(o.Out, format, args...)
	}
}

// Sweep fans the points out over the engine, streaming progress (with
// completion counts and an ETA from measured per-point wall times)
// when the options ask for it, and returns outcomes in declaration
// order.
func (o Options) Sweep(label string, points []sweep.Point) []sweep.Outcome {
	eng := &sweep.Engine{Jobs: o.Jobs, Cache: o.Cache, Profile: o.Profile, Flight: o.Flight}
	var observers []func(sweep.Result)
	if o.Verbose && o.Out != nil {
		observers = append(observers, sweep.NewProgress(o.Out, label, len(points), eng.Workers(len(points))).Observe)
	}
	if o.OnResult != nil {
		observers = append(observers, o.OnResult)
	}
	switch len(observers) {
	case 1:
		eng.OnResult = observers[0]
	case 2:
		eng.OnResult = func(r sweep.Result) { observers[0](r); observers[1](r) }
	}
	return eng.Run(points)
}

// PointsFor expands the scenario and converts the runs into
// engine-ready sweep points in one step. The enumeration is
// order-stable and indexable: repeated expansions of one scenario
// yield the same points in the same positions, independent of
// execution options — the contract distributed shard plans are built
// on (a plan references points by expansion index and fingerprint).
func (s *Scenario) PointsFor(full bool) ([]sweep.Point, error) {
	runs, err := s.Expand(full)
	if err != nil {
		return nil, err
	}
	return s.Points(runs), nil
}

// Run is the manifest front door: expand the matrix, sweep it, and
// render the table.
func (s *Scenario) Run(o Options) (*Result, error) {
	runs, err := s.Expand(o.Full)
	if err != nil {
		return nil, err
	}
	o.Apply(runs)
	outs := o.Sweep(s.Name, s.Points(runs))
	return s.Render(o.Full, runs, outs)
}
