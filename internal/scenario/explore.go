package scenario

// The explore stanza: a manifest-declared objective and constraints
// over the axis space, consumed by internal/explore's search loop.
// The scenario layer owns the schema and validation so `accesys
// explore` rejects bad manifests before any simulation starts.

import "accesys/internal/sweep"

// Objective names the metric a search optimizes and the direction.
type Objective struct {
	// Metric is the outcome value to optimize: "exec" (default, the
	// end-to-end duration in ns) for any workload; "gemm"/"nongemm"
	// (the ViT runtime split, ns) for vit scenarios. The analytic
	// backend must model the metric — that is what makes the cheap
	// screening fidelity trustworthy.
	Metric string `json:"metric,omitempty"`
	// Goal is "min" (default) or "max".
	Goal string `json:"goal,omitempty"`
}

// Name returns the resolved metric name.
func (o Objective) Name() string {
	if o.Metric == "" {
		return "exec"
	}
	return o.Metric
}

// Maximize reports whether larger objective values rank better.
func (o Objective) Maximize() bool { return o.Goal == "max" }

// Constraint restricts the feasible region. Exactly one of Axis or
// Metric selects what is constrained: axis constraints prune
// candidates before anything is built or simulated; metric
// constraints filter the frontier after evaluation. At least one
// bound (Min, Max, Equals) must be set.
type Constraint struct {
	// Axis names a declared axis; the constraint applies to its value
	// at each candidate point.
	Axis string `json:"axis,omitempty"`
	// Field selects a numeric field of an object-valued axis (e.g.
	// axis "link", field "lanes"). Only meaningful with Axis.
	Field string `json:"field,omitempty"`
	// Metric names an outcome value ("exec", or any extracted metric
	// like "pages"); points whose outcome lacks it are infeasible.
	Metric string `json:"metric,omitempty"`
	// Min and Max bound the (numeric) value inclusively.
	Min *float64 `json:"min,omitempty"`
	Max *float64 `json:"max,omitempty"`
	// Equals pins the value exactly; compared through the axis's
	// canonical label, so it works for string and object axes too.
	Equals Value `json:"equals,omitempty"`
}

// ProxySpec declares the optional mid-fidelity rung between the
// analytic screen and exact timing: a partitioned run with a clamping
// barrier quantum — approximate timing, cached under its own
// fingerprints (Domains/Quantum are part of core.Config).
type ProxySpec struct {
	// Domains is the tick-domain count (>= 2).
	Domains int `json:"domains"`
	// QuantumNs widens the barrier window past the timing-exact
	// default; 0 keeps the default (then the rung is exact but
	// partitioned).
	QuantumNs int64 `json:"quantum_ns,omitempty"`
}

// ExploreSpec is the manifest's "explore" stanza.
type ExploreSpec struct {
	// Objective selects the optimized metric and direction.
	Objective Objective `json:"objective"`
	// Constraints restrict the feasible region.
	Constraints []Constraint `json:"constraints,omitempty"`
	// Strategy is "random" (default) or "halving".
	Strategy string `json:"strategy,omitempty"`
	// Seed fixes the search RNG; runs are deterministic per
	// (manifest, seed, budget).
	Seed int64 `json:"seed,omitempty"`
	// Budget is the stopping rule: a bare integer caps exact-timing
	// promotions by count, a Go duration ("2m") caps their
	// profile-predicted wall time. Default "32".
	Budget string `json:"budget,omitempty"`
	// Generation is the candidates sampled per generation (random
	// strategy; default 16).
	Generation int `json:"generation,omitempty"`
	// Promote is the top fraction of each screened generation
	// promoted to timing (random strategy; default 0.25).
	Promote float64 `json:"promote,omitempty"`
	// Eta is the halving factor: each rung keeps ceil(count/eta)
	// survivors (halving strategy; default 4).
	Eta int `json:"eta,omitempty"`
	// Frontier is how many ranked rows the final table keeps
	// (default 10).
	Frontier int `json:"frontier,omitempty"`
	// Proxy inserts the mid-fidelity partitioned-timing rung
	// (halving strategy).
	Proxy *ProxySpec `json:"proxy,omitempty"`
}

// validateExplore checks the stanza against the scenario. fail wraps
// errors with the scenario name.
func (s *Scenario) validateExplore(fail func(string, ...any) error) error {
	e := s.Explore
	// The optimizer's screening rung is the analytic backend, which has
	// no model for farm makespans or tenant schedules (scenario.ErrNoModel
	// territory) — reject at parse time rather than aborting mid-search.
	switch s.Workload.Kind {
	case "farm", "tenants":
		return fail("explore: workload kind %q has no analytic screening model; sweep it instead", s.Workload.Kind)
	}
	switch e.Objective.Metric {
	case "", "exec":
	case "gemm", "nongemm":
		if s.Workload.Kind != "vit" {
			return fail("explore: objective metric %q needs a vit workload", e.Objective.Metric)
		}
	default:
		return fail("explore: unknown objective metric %q (want exec, gemm, or nongemm)", e.Objective.Metric)
	}
	switch e.Objective.Goal {
	case "", "min", "max":
	default:
		return fail("explore: objective goal %q (want min or max)", e.Objective.Goal)
	}
	for i, c := range e.Constraints {
		switch {
		case c.Axis != "" && c.Metric != "":
			return fail("explore: constraint %d sets both axis and metric", i)
		case c.Axis == "" && c.Metric == "":
			return fail("explore: constraint %d sets neither axis nor metric", i)
		case c.Axis != "" && !s.hasAxis(c.Axis):
			return fail("explore: constraint %d: %q is not a declared axis", i, c.Axis)
		case c.Field != "" && c.Axis == "":
			return fail("explore: constraint %d: field needs an axis", i)
		}
		if c.Min == nil && c.Max == nil && c.Equals == nil {
			return fail("explore: constraint %d has no bound (want min, max, or equals)", i)
		}
		if c.Equals != nil && (c.Min != nil || c.Max != nil) {
			return fail("explore: constraint %d mixes equals with min/max", i)
		}
		if c.Min != nil && c.Max != nil && *c.Min > *c.Max {
			return fail("explore: constraint %d: min %g exceeds max %g", i, *c.Min, *c.Max)
		}
	}
	switch e.Strategy {
	case "", "random", "halving":
	default:
		return fail("explore: unknown strategy %q (want random or halving)", e.Strategy)
	}
	if e.Budget != "" {
		if _, err := sweep.ParseBudget(e.Budget); err != nil {
			return fail("explore: %v", err)
		}
	}
	if e.Generation < 0 {
		return fail("explore: generation must be positive")
	}
	if e.Promote < 0 || e.Promote > 1 {
		return fail("explore: promote fraction %g outside (0, 1]", e.Promote)
	}
	if e.Eta == 1 || e.Eta < 0 {
		return fail("explore: eta must be >= 2")
	}
	if e.Frontier < 0 {
		return fail("explore: frontier must be positive")
	}
	if p := e.Proxy; p != nil {
		if p.Domains < 2 {
			return fail("explore: proxy domains must be >= 2")
		}
		if p.QuantumNs < 0 {
			return fail("explore: proxy quantum must be non-negative")
		}
	}
	return nil
}

// EvalAxisConstraint checks one axis constraint against the value the
// axis takes at point i of the space. Points in scenarios that do not
// declare the axis never got here (validation rejects them).
func (sp *Space) EvalAxisConstraint(c Constraint, i int) bool {
	v, ok := sp.AxisValue(i, c.Axis)
	if !ok {
		return false
	}
	if c.Equals != nil {
		def := axisRegistry[c.Axis]
		cv, err := canon(c.Equals)
		if err != nil {
			return false
		}
		return def.label(cv) == def.label(v)
	}
	num, ok := constraintNumber(v, c.Field)
	if !ok {
		return false
	}
	if c.Min != nil && num < *c.Min {
		return false
	}
	if c.Max != nil && num > *c.Max {
		return false
	}
	return true
}

// constraintNumber extracts the numeric value a min/max bound
// compares: the value itself for numeric axes, the named field for
// object axes.
func constraintNumber(v Value, field string) (float64, bool) {
	if field != "" {
		m, ok := v.(map[string]any)
		if !ok {
			return 0, false
		}
		f, ok := m[field].(float64)
		return f, ok
	}
	f, ok := v.(float64)
	return f, ok
}
