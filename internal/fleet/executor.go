package fleet

// Executors: the pluggable "run shard k somewhere" primitive the
// scheduler drives. Three kinds ship: in-process (a shard.Worker in
// this process — the `-workers N` single-command path), subprocess
// (re-exec this binary's `shard run` — process isolation on one
// machine), and command (an arbitrary argv template with {shard}-style
// placeholders — the ssh/k8s escape hatch; the shard directory must
// land on storage the merging process can read).

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"sync"

	"accesys/internal/shard"
	"accesys/internal/sweep"
)

// Job names one shard execution: which slice of the plan to run and
// where its self-contained cache directory lives. The manifest and
// serialized plan travel as paths — every executor kind ultimately
// drives `shard run -plan`.
type Job struct {
	// Shard and Of locate the slice in the partition.
	Shard, Of int
	// Dir is the shard's cache directory. Reassigned attempts reuse it,
	// so work a dying worker completed is served warm to its successor.
	Dir string
	// Manifest and PlanPath are the scenario and serialized plan files.
	Manifest, PlanPath string
	// Full, Jobs, and Verbose forward the sweep execution knobs.
	Full    bool
	Jobs    int
	Verbose bool
}

// Executor runs one shard job somewhere. Run must not return until the
// shard's directory holds a complete cache + shard.json (success) or
// the attempt is abandoned (error); the scheduler serialises calls per
// executor but runs distinct executors concurrently.
type Executor interface {
	// Name labels the worker in fleet progress output.
	Name() string
	// Run executes the job; a context cancellation should abort it.
	Run(ctx context.Context, job Job) error
}

// InProcess executes shards with a shard.Worker inside this process —
// no exec, no environment assumptions, results under this binary's
// cache salt.
type InProcess struct {
	WorkerName string
	// Plan and Points are the already-expanded scenario the jobs slice.
	Plan   *shard.Plan
	Points []sweep.Point
	// Jobs overrides the job's simulation pool size (the fleet spec's
	// per-worker knob).
	Jobs int
	// Out receives per-point progress lines for verbose jobs.
	Out io.Writer
}

func (e *InProcess) Name() string { return e.WorkerName }

func (e *InProcess) Run(ctx context.Context, job Job) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	jobs := job.Jobs
	if e.Jobs > 0 {
		jobs = e.Jobs
	}
	w := &shard.Worker{Dir: job.Dir, Jobs: jobs}
	if job.Verbose && e.Out != nil {
		label := fmt.Sprintf("%s s%d/%d", e.WorkerName, job.Shard, job.Of)
		count := e.Plan.Counts[job.Shard]
		eng := &sweep.Engine{Jobs: jobs}
		w.OnResult = sweep.NewProgress(e.Out, label, count, eng.Workers(count)).Observe
	}
	// The simulation slice has no mid-point interruption, so run it in
	// a goroutine and abandon it on cancellation: an aborting fleet
	// reports promptly instead of waiting out the slice. The abandoned
	// worker only touches its own shard directory, and a cancelled
	// fleet never reads or merges that directory again.
	done := make(chan error, 1)
	go func() {
		_, err := w.Run(e.Plan, job.Shard, e.Points)
		done <- err
	}()
	select {
	case err := <-done:
		return err
	case <-ctx.Done():
		return ctx.Err()
	}
}

// shardRunArgs builds the `shard run` argument list for a job — the
// CLI contract subprocess and command workers execute.
func shardRunArgs(job Job) []string {
	args := []string{"shard", "run"}
	if job.Full {
		args = append(args, "-full")
	}
	if job.Verbose {
		args = append(args, "-v")
	}
	if job.Jobs > 0 {
		args = append(args, "-jobs", strconv.Itoa(job.Jobs))
	}
	return append(args,
		"-plan", job.PlanPath,
		"-shard", fmt.Sprintf("%d/%d", job.Shard, job.Of),
		"-dir", job.Dir,
		job.Manifest)
}

// Subprocess executes shards by re-running this binary's `shard run`
// in a child process. One failed or killed child loses only its
// current attempt.
type Subprocess struct {
	WorkerName string
	// Argv0 overrides the executable (default: the running binary).
	Argv0 string
	// Env entries are appended to the inherited environment.
	Env []string
	// Jobs overrides the job's simulation pool size (the fleet spec's
	// per-worker knob).
	Jobs int
	// Out receives the child's stdout and stderr.
	Out io.Writer
}

func (e *Subprocess) Name() string { return e.WorkerName }

func (e *Subprocess) Run(ctx context.Context, job Job) error {
	argv0 := e.Argv0
	if argv0 == "" {
		exe, err := os.Executable()
		if err != nil {
			return fmt.Errorf("fleet: locating own binary: %v", err)
		}
		argv0 = exe
	}
	if e.Jobs > 0 {
		job.Jobs = e.Jobs
	}
	return runCommand(ctx, argv0, shardRunArgs(job), e.Env, e.Out)
}

// Command executes shards through an argv template — typically an
// ssh/kubectl wrapper around `accesys shard run`. Each element has the
// placeholders {manifest} {plan} {shard} {of} {dir} {jobs} {args}
// substituted; {args} expands to the full space-separated `shard run`
// argument list for remote shells that take one command string.
type Command struct {
	WorkerName string
	Template   []string
	Env        []string
	Jobs       int
	Out        io.Writer
}

func (e *Command) Name() string { return e.WorkerName }

func (e *Command) Run(ctx context.Context, job Job) error {
	if len(e.Template) == 0 {
		return fmt.Errorf("fleet: worker %s: empty command template", e.WorkerName)
	}
	if e.Jobs > 0 {
		job.Jobs = e.Jobs
	}
	argv := make([]string, len(e.Template))
	r := strings.NewReplacer(
		"{manifest}", job.Manifest,
		"{plan}", job.PlanPath,
		"{shard}", strconv.Itoa(job.Shard),
		"{of}", strconv.Itoa(job.Of),
		"{dir}", job.Dir,
		"{jobs}", strconv.Itoa(job.Jobs),
		"{args}", strings.Join(shardRunArgs(job), " "),
	)
	for i, t := range e.Template {
		argv[i] = r.Replace(t)
	}
	return runCommand(ctx, argv[0], argv[1:], e.Env, e.Out)
}

// runCommand runs argv0 with args, streaming combined output to out.
// A flushable out (the scheduler's prefixed writers) is flushed when
// the child exits, so a killed worker's torn last line still surfaces.
func runCommand(ctx context.Context, argv0 string, args, env []string, out io.Writer) error {
	cmd := exec.CommandContext(ctx, argv0, args...)
	cmd.Env = append(os.Environ(), env...)
	if out == nil {
		out = io.Discard
	}
	if f, ok := out.(interface{ Flush() }); ok {
		defer f.Flush()
	}
	cmd.Stdout = out
	cmd.Stderr = out
	return cmd.Run()
}

// SyncWriter serialises Write calls onto one underlying writer. The
// launcher funnels every output producer — the scheduler's own
// progress lines and each worker's prefixed stream, all on different
// goroutines — through a single SyncWriter, so plain destinations
// (a bytes.Buffer in tests, a log file) need no locking of their own.
type SyncWriter struct {
	mu sync.Mutex
	w  io.Writer
}

// NewSyncWriter wraps w; a nil w discards.
func NewSyncWriter(w io.Writer) *SyncWriter {
	if w == nil {
		w = io.Discard
	}
	return &SyncWriter{w: w}
}

func (s *SyncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}

// prefixWriter prepends a label to every line it forwards — how one
// fleet stderr stream stays readable with several workers talking at
// once. Writes are serialised; partial lines are buffered until their
// newline arrives (Flush emits any remainder).
type prefixWriter struct {
	w      io.Writer
	prefix string

	mu  sync.Mutex
	buf []byte
}

func newPrefixWriter(w io.Writer, prefix string) *prefixWriter {
	return &prefixWriter{w: w, prefix: prefix}
}

func (p *prefixWriter) Write(b []byte) (int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.buf = append(p.buf, b...)
	for {
		i := bytes.IndexByte(p.buf, '\n')
		if i < 0 {
			break
		}
		line := p.buf[:i+1]
		if _, err := fmt.Fprintf(p.w, "%s%s", p.prefix, line); err != nil {
			return len(b), err
		}
		p.buf = p.buf[i+1:]
	}
	return len(b), nil
}

// Flush emits a buffered, newline-less remainder (a killed child's
// torn last line).
func (p *prefixWriter) Flush() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.buf) > 0 {
		fmt.Fprintf(p.w, "%s%s\n", p.prefix, p.buf)
		p.buf = nil
	}
}
