package fleet

// Launch is the reusable front door the `accesys fleet` subcommand and
// the serve daemon's queued jobs share: given expanded points and a
// fleet spec, it plans, provisions the work directory, and drives the
// scheduler, returning the run report alongside the plan it executed.

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"accesys/internal/shard"
	"accesys/internal/sweep"
)

// LaunchOptions parameterises one fleet launch.
type LaunchOptions struct {
	// Name is the scenario name the plan is computed for; Full selects
	// the expansion mode both the plan and the workers use.
	Name string
	Full bool
	// Points is the scenario's stable point enumeration (PointsFor).
	Points []sweep.Point
	// Manifest is the scenario manifest path workers load.
	Manifest string
	// Spec declares the workers.
	Spec *Spec
	// OutDir is the canonical cache the shards merge into (created if
	// needed); its wall profile, when present, weights the partition.
	OutDir string
	// WorkDir holds shard caches and the plan (default: <OutDir>/fleet).
	WorkDir string
	// Jobs, Verbose forward the sweep execution knobs to workers.
	Jobs    int
	Verbose bool
	// Out receives scheduler and worker output; nil discards. Workers
	// write from their own goroutines, so Launch wraps Out in one
	// shared SyncWriter.
	Out io.Writer
	// MaxAttempts bounds executions per shard (default 3).
	MaxAttempts int
	// OnPlan, when non-nil, observes the computed plan after it is
	// written but before any worker dispatches.
	OnPlan func(*shard.Plan)
	// Warnf, when non-nil, receives non-fatal diagnostics (e.g. an
	// unusable wall profile degrading the plan to unweighted).
	Warnf func(format string, args ...any)
}

func (o LaunchOptions) warnf(format string, args ...any) {
	if o.Warnf != nil {
		o.Warnf(format, args...)
	}
}

// Launch plans and runs one fleet sweep: partition the points over the
// spec's workers (wall-time-weighted when OutDir's profile knows them),
// write the plan into the work directory, execute every shard with
// retry and reassignment, and merge the shard caches into OutDir. The
// returned report and plan are non-nil exactly when err is nil.
func Launch(ctx context.Context, o LaunchOptions) (*Report, *shard.Plan, error) {
	if o.Spec == nil {
		return nil, nil, fmt.Errorf("fleet: launch needs a spec")
	}
	if err := os.MkdirAll(o.OutDir, 0o755); err != nil {
		return nil, nil, err
	}
	// The output cache's profile (fed by every prior cached sweep and
	// fleet run) drives the weighted partition; a cold profile degrades
	// to the rendezvous plan. Degrading silently on a *corrupt* profile
	// would disable the advertised balancing forever, so say so.
	var prof *sweep.Profile
	if p, err := sweep.LoadProfile(o.OutDir); err == nil {
		prof = p
	} else {
		o.warnf("wall profile unusable, planning unweighted: %v", err)
	}
	plan, err := shard.PartitionWeighted(o.Name, o.Full, o.Points, len(o.Spec.Workers), prof)
	if err != nil {
		return nil, nil, err
	}

	workDir := o.WorkDir
	if workDir == "" {
		workDir = filepath.Join(o.OutDir, "fleet")
	}
	if err := os.MkdirAll(workDir, 0o755); err != nil {
		return nil, nil, err
	}
	planData, err := plan.Marshal()
	if err != nil {
		return nil, nil, fmt.Errorf("fleet: encoding plan: %v", err)
	}
	planPath := filepath.Join(workDir, "plan.json")
	if err := os.WriteFile(planPath, append(planData, '\n'), 0o644); err != nil {
		return nil, nil, fmt.Errorf("fleet: writing plan: %v", err)
	}
	if o.OnPlan != nil {
		o.OnPlan(plan)
	}

	// One locked stream carries the scheduler's and every worker's
	// output: workers write from their own goroutines.
	var stream io.Writer
	if o.Out != nil {
		stream = NewSyncWriter(o.Out)
	}
	execs, err := o.Spec.Executors(ExecutorDeps{Plan: plan, Points: o.Points, Out: stream})
	if err != nil {
		return nil, nil, err
	}
	sched := &Scheduler{
		Plan:        plan,
		Manifest:    o.Manifest,
		PlanPath:    planPath,
		Workers:     execs,
		WorkDir:     workDir,
		OutDir:      o.OutDir,
		Full:        o.Full,
		Jobs:        o.Jobs,
		Verbose:     o.Verbose,
		Out:         stream,
		MaxAttempts: o.MaxAttempts,
	}
	rep, err := sched.Run(ctx)
	if err != nil {
		return nil, nil, err
	}
	return rep, plan, nil
}
