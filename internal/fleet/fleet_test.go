package fleet

// Scheduler tests over in-process executors and injected failures: the
// fleet must complete every shard, reassign work away from dying
// workers (serving a dead worker's partial progress warm to the
// successor), retire workers that keep failing, and fail loudly when
// no one can run a shard.

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"accesys/internal/shard"
	"accesys/internal/sim"
	"accesys/internal/sweep"
)

func fakePoints(n int) []sweep.Point {
	pts := make([]sweep.Point, n)
	for i := range pts {
		i := i
		pts[i] = sweep.Point{
			Key:         fmt.Sprintf("pt-%d", i),
			Fingerprint: sweep.Fingerprint("fleet-fake", i),
			Run:         func() sweep.Outcome { return sweep.Outcome{Dur: sim.Tick(i + 1)} },
		}
	}
	return pts
}

// newScheduler builds a scheduler over the given executors and a fresh
// partition of npoints fake points into nshards.
func newScheduler(t *testing.T, npoints, nshards int, mk func(plan *shard.Plan, pts []sweep.Point) []Executor) (*Scheduler, []sweep.Point) {
	t.Helper()
	pts := fakePoints(npoints)
	plan, err := shard.Partition("fleetfake", false, pts, nshards)
	if err != nil {
		t.Fatal(err)
	}
	root := t.TempDir()
	return &Scheduler{
		Plan:    plan,
		Workers: mk(plan, pts),
		WorkDir: filepath.Join(root, "work"),
		OutDir:  filepath.Join(root, "merged"),
	}, pts
}

func inProcessWorkers(n int) func(plan *shard.Plan, pts []sweep.Point) []Executor {
	return func(plan *shard.Plan, pts []sweep.Point) []Executor {
		ws := make([]Executor, n)
		for i := range ws {
			ws[i] = &InProcess{WorkerName: fmt.Sprintf("w%d", i), Plan: plan, Points: pts}
		}
		return ws
	}
}

// deadWorker fails every job — a machine that is simply gone.
type deadWorker struct{ name string }

func (d *deadWorker) Name() string                   { return d.name }
func (d *deadWorker) Run(context.Context, Job) error { return errors.New("injected death") }

// dyingWorker simulates a worker killed mid-run: it completes the
// first point of its slice (the cache entry lands on disk) and then
// dies, leaving a partial shard directory behind.
type dyingWorker struct {
	name   string
	plan   *shard.Plan
	points []sweep.Point
}

func (d *dyingWorker) Name() string { return d.name }

func (d *dyingWorker) Run(_ context.Context, job Job) error {
	sel := d.plan.Select(job.Shard)
	if len(sel) > 0 {
		cache, err := sweep.OpenSalted(job.Dir)
		if err != nil {
			return err
		}
		pt := d.points[sel[0]]
		cache.Put(pt.Fingerprint, pt.Run())
	}
	return errors.New("killed mid-run")
}

// flakyWorker fails its first attempt at every shard, then delegates —
// a transiently unhealthy machine.
type flakyWorker struct {
	inner  Executor
	mu     sync.Mutex
	failed map[int]bool
}

func (f *flakyWorker) Name() string { return f.inner.Name() }

func (f *flakyWorker) Run(ctx context.Context, job Job) error {
	f.mu.Lock()
	first := !f.failed[job.Shard]
	f.failed[job.Shard] = true
	f.mu.Unlock()
	if first {
		return errors.New("transient failure")
	}
	return f.inner.Run(ctx, job)
}

func TestSchedulerRunsAllShardsAndMerges(t *testing.T) {
	s, pts := newScheduler(t, 12, 3, inProcessWorkers(3))
	// Verbose workers and the scheduler share one locked stream — the
	// production wiring — so -race patrols the concurrent writes.
	var log strings.Builder
	stream := NewSyncWriter(&log)
	for _, e := range s.Workers {
		e.(*InProcess).Out = stream
	}
	s.Verbose = true
	s.Out = stream
	rep, err := s.Run(context.Background())
	if err != nil {
		t.Fatalf("fleet failed: %v\nlog:\n%s", err, log.String())
	}
	if rep.Reassigned != 0 || rep.Retired != 0 {
		t.Fatalf("healthy fleet reported reassignments: %+v", rep)
	}
	total := 0
	for k, sr := range rep.Shards {
		if sr.Worker == "" || sr.Attempts != 1 || sr.Points != s.Plan.Counts[k] {
			t.Fatalf("shard %d result %+v, want 1 attempt of %d points", k, sr, s.Plan.Counts[k])
		}
		total += sr.Points
	}
	if total != 12 {
		t.Fatalf("shards cover %d of 12 points", total)
	}
	if rep.Merge == nil || rep.Merge.Imported != 12 {
		t.Fatalf("merge stats = %+v, want 12 imported", rep.Merge)
	}
	// The merged cache warm-hits every point under this binary's salt.
	cache, err := sweep.OpenSalted(s.OutDir)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range pts {
		if out, ok := cache.Get(p.Fingerprint); !ok || out.Dur != sim.Tick(i+1) {
			t.Fatalf("merged Get(%s) = %v, %v", p.Key, out, ok)
		}
	}
}

func TestSchedulerReassignsAwayFromDeadWorker(t *testing.T) {
	// A dead worker next to a healthy one. How many shards reach the
	// dead worker before the healthy one drains the queue is a timing
	// race, so retire on the first failure to make retirement itself
	// deterministic: the dead worker always fails the first shard it is
	// handed.
	s, _ := newScheduler(t, 10, 4, func(plan *shard.Plan, pts []sweep.Point) []Executor {
		return []Executor{
			&deadWorker{name: "dead"},
			&InProcess{WorkerName: "ok0", Plan: plan, Points: pts},
		}
	})
	s.MaxAttempts = 5
	s.RetireAfter = 1
	var log strings.Builder
	s.Out = &log
	rep, err := s.Run(context.Background())
	if err != nil {
		t.Fatalf("fleet failed: %v\nlog:\n%s", err, log.String())
	}
	if rep.Reassigned < 1 {
		t.Fatalf("dead worker produced no reassignments: %+v\n%s", rep, log.String())
	}
	if rep.Retired != 1 {
		t.Fatalf("dead worker not retired: %+v\n%s", rep, log.String())
	}
	for _, sr := range rep.Shards {
		if sr.Worker == "dead" {
			t.Fatalf("shard %d credited to the dead worker", sr.Shard)
		}
	}
	if rep.Merge == nil || rep.Merge.Points != 10 {
		t.Fatalf("merge stats = %+v", rep.Merge)
	}
}

func TestSchedulerServesDyingWorkersProgressWarm(t *testing.T) {
	// The mid-run kill: the dying worker persisted one point before
	// dying, so the successor's summary must show at least one warm
	// point for a reassigned shard — the shard directory survives the
	// attempt.
	var dying *dyingWorker
	s, _ := newScheduler(t, 9, 3, func(plan *shard.Plan, pts []sweep.Point) []Executor {
		dying = &dyingWorker{name: "dying", plan: plan, points: pts}
		return []Executor{
			dying,
			&InProcess{WorkerName: "ok", Plan: plan, Points: pts},
		}
	})
	s.MaxAttempts = 5
	var log strings.Builder
	s.Out = &log
	rep, err := s.Run(context.Background())
	if err != nil {
		t.Fatalf("fleet failed: %v\nlog:\n%s", err, log.String())
	}
	warm := 0
	for _, sr := range rep.Shards {
		if sr.Attempts > 1 {
			warm += sr.Warm
		}
	}
	if warm == 0 {
		t.Fatalf("no reassigned shard was served warm:\n%+v\n%s", rep.Shards, log.String())
	}
	// All of the dying worker's progress still merged exactly once.
	if rep.Merge == nil || rep.Merge.Points != 9 {
		t.Fatalf("merge stats = %+v", rep.Merge)
	}
}

func TestSchedulerRetriesTransientFailureOnSoleWorker(t *testing.T) {
	// A one-worker fleet whose worker fails each shard once: exclusion
	// must relax when nobody else can take the shard, so the retry
	// lands on the same (live) worker and the fleet completes.
	s, _ := newScheduler(t, 6, 2, func(plan *shard.Plan, pts []sweep.Point) []Executor {
		return []Executor{&flakyWorker{
			inner:  &InProcess{WorkerName: "flaky", Plan: plan, Points: pts},
			failed: map[int]bool{},
		}}
	})
	s.RetireAfter = 3 // two consecutive transient failures must not retire the only worker
	var log strings.Builder
	s.Out = &log
	rep, err := s.Run(context.Background())
	if err != nil {
		t.Fatalf("transient failures killed the fleet: %v\nlog:\n%s", err, log.String())
	}
	for _, sr := range rep.Shards {
		if sr.Attempts != 2 || sr.Worker != "flaky" {
			t.Fatalf("shard %d result %+v, want 2 attempts on flaky", sr.Shard, sr)
		}
	}
	// A sole worker retrying its own shard is a retry, not a
	// reassignment.
	if rep.Reassigned != 0 {
		t.Fatalf("same-worker retries counted as reassignments: %+v", rep)
	}
	if rep.Merge == nil || rep.Merge.Points != 6 {
		t.Fatalf("merge stats = %+v", rep.Merge)
	}
}

func TestSchedulerFailsWhenNoWorkerCanRunAShard(t *testing.T) {
	s, _ := newScheduler(t, 6, 2, func(plan *shard.Plan, pts []sweep.Point) []Executor {
		return []Executor{&deadWorker{name: "dead"}}
	})
	s.MaxAttempts = 10
	_, err := s.Run(context.Background())
	if err == nil {
		t.Fatal("all-dead fleet reported success")
	}
}

func TestSchedulerFailsWhenAttemptsExhausted(t *testing.T) {
	s, _ := newScheduler(t, 6, 2, func(plan *shard.Plan, pts []sweep.Point) []Executor {
		return []Executor{
			&deadWorker{name: "d0"},
			&deadWorker{name: "d1"},
			&deadWorker{name: "d2"},
		}
	})
	s.MaxAttempts = 2
	s.RetireAfter = 100 // keep them in rotation so attempts, not eligibility, is the limit
	_, err := s.Run(context.Background())
	if err == nil || !strings.Contains(err.Error(), "failed 2 times") {
		t.Fatalf("exhausted attempts not reported: %v", err)
	}
}

func TestSchedulerRequiresWorkers(t *testing.T) {
	s, _ := newScheduler(t, 4, 2, func(*shard.Plan, []sweep.Point) []Executor { return nil })
	if _, err := s.Run(context.Background()); err == nil {
		t.Fatal("workerless fleet accepted")
	}
}

func TestSpecValidation(t *testing.T) {
	for name, data := range map[string]string{
		"no workers":        `{"workers": []}`,
		"unknown kind":      `{"workers": [{"kind": "teleport"}]}`,
		"command no argv":   `{"workers": [{"kind": "command"}]}`,
		"argv on inprocess": `{"workers": [{"kind": "inprocess", "command": ["x"]}]}`,
		"duplicate names":   `{"workers": [{"name": "a"}, {"name": "a"}]}`,
		"negative jobs":     `{"workers": [{"jobs": -1}]}`,
		"unknown field":     `{"workers": [{"kind": "inprocess"}], "bogus": 1}`,
		"trailing data":     `{"workers": [{}]} {}`,
	} {
		if _, err := ParseSpec([]byte(data)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	spec, err := ParseSpec([]byte(`{"workers": [
		{"name": "here", "kind": "inprocess"},
		{"kind": "subprocess", "env": ["X=1"], "jobs": 2},
		{"kind": "command", "command": ["ssh", "host", "{args}"]}
	]}`))
	if err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	if len(spec.Workers) != 3 {
		t.Fatalf("parsed %d workers", len(spec.Workers))
	}
}

func TestLocalSpec(t *testing.T) {
	spec := LocalSpec(3)
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	pts := fakePoints(4)
	plan, err := shard.Partition("x", false, pts, 3)
	if err != nil {
		t.Fatal(err)
	}
	execs, err := spec.Executors(ExecutorDeps{Plan: plan, Points: pts})
	if err != nil {
		t.Fatal(err)
	}
	if len(execs) != 3 {
		t.Fatalf("built %d executors", len(execs))
	}
	for i, e := range execs {
		if _, ok := e.(*InProcess); !ok {
			t.Fatalf("executor %d is %T, want InProcess", i, e)
		}
	}
}

func TestExecutorsRequireExpansionForInProcess(t *testing.T) {
	spec := LocalSpec(1)
	if _, err := spec.Executors(ExecutorDeps{}); err == nil {
		t.Fatal("in-process executor built without an expansion")
	}
}

func TestShardRunArgs(t *testing.T) {
	got := strings.Join(shardRunArgs(Job{
		Shard: 1, Of: 3, Dir: "/tmp/s1",
		Manifest: "m.json", PlanPath: "p.json",
		Full: true, Jobs: 4, Verbose: true,
	}), " ")
	want := "shard run -full -v -jobs 4 -plan p.json -shard 1/3 -dir /tmp/s1 m.json"
	if got != want {
		t.Fatalf("args = %q, want %q", got, want)
	}
}

func TestCommandExecutorSubstitutesTemplate(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "ran.txt")
	c := &Command{
		WorkerName: "tpl",
		Template:   []string{"sh", "-c", "echo shard={shard} of={of} dir={dir} > " + out},
	}
	if err := c.Run(context.Background(), Job{Shard: 2, Of: 5, Dir: "/work/s2"}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(string(data)); got != "shard=2 of=5 dir=/work/s2" {
		t.Fatalf("substituted command wrote %q", got)
	}
}

func TestCommandExecutorRejectsEmptyTemplate(t *testing.T) {
	c := &Command{WorkerName: "empty"}
	if err := c.Run(context.Background(), Job{}); err == nil {
		t.Fatal("empty template accepted")
	}
}

func TestPrefixWriterSplitsLines(t *testing.T) {
	var sb strings.Builder
	w := newPrefixWriter(&sb, "p: ")
	io.WriteString(w, "one\ntw")
	io.WriteString(w, "o\nthree")
	w.Flush()
	want := "p: one\np: two\np: three\n"
	if sb.String() != want {
		t.Fatalf("prefixed output:\n%q\nwant\n%q", sb.String(), want)
	}
}

// TestSchedulerWallsOnInjectedClock pins the per-shard wall times in
// the fleet report to an injected clock: with a fake advancing a fixed
// step per reading, every successful shard's wall is an exact multiple
// of the step and the host clock is never consulted. The clock is read
// concurrently from every worker goroutine, so -race patrols the
// required thread-safety too.
func TestSchedulerWallsOnInjectedClock(t *testing.T) {
	s, _ := newScheduler(t, 12, 3, inProcessWorkers(3))
	const step = 50 * time.Millisecond
	base := time.Unix(1_700_000_000, 0)
	var mu sync.Mutex
	calls := 0
	s.Clock = func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		calls++
		return base.Add(time.Duration(calls) * step)
	}
	rep, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// Two readings per dispatched shard.
	if want := 2 * len(rep.Shards); calls != want {
		t.Fatalf("clock read %d times, want %d (2 per shard)", calls, want)
	}
	for k, sr := range rep.Shards {
		if sr.WallNs <= 0 || sr.WallNs%step.Nanoseconds() != 0 {
			t.Fatalf("shard %d wall %dns is not a positive multiple of the fake step", k, sr.WallNs)
		}
	}
}
