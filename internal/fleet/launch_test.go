package fleet

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"accesys/internal/shard"
	"accesys/internal/sim"
	"accesys/internal/sweep"
)

func TestLaunchPlansRunsAndMerges(t *testing.T) {
	pts := fakePoints(8)
	root := t.TempDir()
	out := filepath.Join(root, "merged")
	var planned *shard.Plan
	var log strings.Builder
	rep, plan, err := Launch(context.Background(), LaunchOptions{
		Name:    "launchfake",
		Points:  pts,
		Spec:    LocalSpec(2),
		OutDir:  out,
		WorkDir: filepath.Join(root, "work"),
		Out:     &log,
		OnPlan:  func(p *shard.Plan) { planned = p },
	})
	if err != nil {
		t.Fatalf("launch failed: %v\nlog:\n%s", err, log.String())
	}
	if plan == nil || plan.Shards != 2 || planned != plan {
		t.Fatalf("plan = %+v (OnPlan saw %p)", plan, planned)
	}
	if rep.Merge == nil || rep.Merge.Imported != 8 {
		t.Fatalf("merge stats = %+v, want 8 imported", rep.Merge)
	}
	// The plan landed on disk where subprocess workers would load it.
	if _, err := os.Stat(filepath.Join(root, "work", "plan.json")); err != nil {
		t.Fatalf("plan.json missing: %v", err)
	}
	cache, err := sweep.OpenSalted(out)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range pts {
		if o, ok := cache.Get(p.Fingerprint); !ok || o.Dur != sim.Tick(i+1) {
			t.Fatalf("merged Get(%s) = %v, %v", p.Key, o, ok)
		}
	}
}

func TestLaunchDefaultsWorkDirAndRequiresSpec(t *testing.T) {
	if _, _, err := Launch(context.Background(), LaunchOptions{OutDir: t.TempDir()}); err == nil {
		t.Fatal("launch without a spec succeeded")
	}
	out := filepath.Join(t.TempDir(), "merged")
	_, _, err := Launch(context.Background(), LaunchOptions{
		Name:   "launchfake",
		Points: fakePoints(3),
		Spec:   LocalSpec(1),
		OutDir: out,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(out, "fleet", "plan.json")); err != nil {
		t.Fatalf("default work dir not provisioned under OutDir: %v", err)
	}
}
