// Package fleet is the launcher that turns a partitioned sweep into
// one command: it takes a (preferably wall-time-weighted) shard plan
// plus a fleet spec naming N workers, drives `shard run` on every
// worker concurrently, reassigns a failed worker's shard to a healthy
// one (the shard's cache directory survives attempts, so completed
// points are served warm to the successor), streams per-shard
// progress, and finishes with the idempotent merge into one canonical
// cache — the scale-out path for paper-scale (-full) sweeps that
// parti-gem5 motivates for gem5's timing mode.
package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"

	"accesys/internal/shard"
	"accesys/internal/sweep"
)

// WorkerSpec declares one fleet worker.
type WorkerSpec struct {
	// Name labels the worker in progress output (default: kind+index).
	Name string `json:"name,omitempty"`
	// Kind is "inprocess" (default), "subprocess", or "command".
	Kind string `json:"kind,omitempty"`
	// Command is the argv template for command workers; see Command.
	Command []string `json:"command,omitempty"`
	// Env entries are appended to the environment of subprocess and
	// command workers.
	Env []string `json:"env,omitempty"`
	// Jobs bounds the worker's simulation pool (0 = one per CPU).
	Jobs int `json:"jobs,omitempty"`
}

// Spec is a fleet description — what `accesys fleet -fleet fleet.json`
// loads.
type Spec struct {
	Workers []WorkerSpec `json:"workers"`
}

// ParseSpec decodes and validates one fleet spec. Unknown fields are
// rejected so typos fail loudly.
func ParseSpec(data []byte) (*Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("fleet: spec: %v", err)
	}
	var trailing any
	if err := dec.Decode(&trailing); err != io.EOF {
		return nil, fmt.Errorf("fleet: spec: trailing data after the spec object")
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// LoadSpec reads and validates the fleet spec at path.
func LoadSpec(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("fleet: %v", err)
	}
	s, err := ParseSpec(data)
	if err != nil {
		return nil, fmt.Errorf("%v (spec %s)", err, path)
	}
	return s, nil
}

// LocalSpec is the `-workers N` fleet: N in-process workers.
func LocalSpec(n int) *Spec {
	s := &Spec{Workers: make([]WorkerSpec, n)}
	for i := range s.Workers {
		s.Workers[i] = WorkerSpec{Name: fmt.Sprintf("local%d", i), Kind: "inprocess"}
	}
	return s
}

// Validate checks the spec without building executors.
func (s *Spec) Validate() error {
	if len(s.Workers) == 0 {
		return fmt.Errorf("fleet: spec declares no workers")
	}
	seen := map[string]bool{}
	for i, w := range s.Workers {
		switch w.Kind {
		case "", "inprocess", "subprocess":
			if len(w.Command) != 0 {
				return fmt.Errorf("fleet: worker %d (%s): command is only valid for kind \"command\"", i, w.name(i))
			}
		case "command":
			if len(w.Command) == 0 {
				return fmt.Errorf("fleet: worker %d (%s): command workers need a command template", i, w.name(i))
			}
		default:
			return fmt.Errorf("fleet: worker %d: unknown kind %q (want inprocess, subprocess, or command)", i, w.Kind)
		}
		if w.Jobs < 0 {
			return fmt.Errorf("fleet: worker %d (%s): negative jobs", i, w.name(i))
		}
		name := w.name(i)
		if seen[name] {
			return fmt.Errorf("fleet: duplicate worker name %q", name)
		}
		seen[name] = true
	}
	return nil
}

func (w WorkerSpec) name(i int) string {
	if w.Name != "" {
		return w.Name
	}
	kind := w.Kind
	if kind == "" {
		kind = "inprocess"
	}
	return fmt.Sprintf("%s%d", kind, i)
}

// ExecutorDeps carries what executors need beyond the spec: the
// expanded scenario for in-process workers and the stream worker
// output lands on.
type ExecutorDeps struct {
	Plan   *shard.Plan
	Points []sweep.Point
	// Out receives worker output and progress; nil discards. Workers
	// write from their own goroutines, so when the scheduler's Out is
	// the same destination, pass one shared SyncWriter to both.
	Out io.Writer
}

// Executors builds one executor per declared worker.
func (s *Spec) Executors(deps ExecutorDeps) ([]Executor, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	out := deps.Out
	if out == nil {
		out = io.Discard
	}
	execs := make([]Executor, len(s.Workers))
	for i, w := range s.Workers {
		name := w.name(i)
		prefixed := newPrefixWriter(out, "fleet "+name+": ")
		switch w.Kind {
		case "", "inprocess":
			if deps.Plan == nil || deps.Points == nil {
				return nil, fmt.Errorf("fleet: worker %s: in-process workers need the expanded scenario", name)
			}
			execs[i] = &InProcess{WorkerName: name, Plan: deps.Plan, Points: deps.Points, Jobs: w.Jobs, Out: prefixed}
		case "subprocess":
			execs[i] = &Subprocess{WorkerName: name, Env: w.Env, Jobs: w.Jobs, Out: prefixed}
		case "command":
			execs[i] = &Command{WorkerName: name, Template: w.Command, Env: w.Env, Jobs: w.Jobs, Out: prefixed}
		}
	}
	return execs, nil
}

// ShardResult records how one shard was eventually completed.
type ShardResult struct {
	// Shard is the slice index; Worker names the executor that finally
	// completed it.
	Shard  int    `json:"shard"`
	Worker string `json:"worker"`
	// Attempts counts executions including the successful one.
	Attempts int `json:"attempts"`
	// WallNs is the successful attempt's scheduler-side wall time.
	WallNs int64 `json:"wall_ns"`
	// Points, Cold, and Warm echo the shard summary's accounting.
	Points int `json:"points"`
	Cold   int `json:"cold"`
	Warm   int `json:"warm"`
}

// Report summarises one fleet run.
type Report struct {
	// Shards has one entry per shard, in shard order.
	Shards []ShardResult `json:"shards"`
	// Reassigned counts failed attempts that moved a shard to another
	// worker; Retired counts workers taken out of rotation.
	Reassigned int `json:"reassigned"`
	Retired    int `json:"retired"`
	// Merge is the final fold into the canonical cache.
	Merge *shard.MergeStats `json:"merge"`
	// Dirs are the shard cache directories, in shard order.
	Dirs []string `json:"dirs"`
}

// Scheduler drives one fleet run: every shard of Plan through the
// Workers, then the merge into OutDir.
type Scheduler struct {
	// Plan is the partition to execute; Manifest and PlanPath are the
	// files workers load it from.
	Plan     *shard.Plan
	Manifest string
	PlanPath string
	// Workers execute jobs; build them with Spec.Executors.
	Workers []Executor
	// WorkDir holds the per-shard cache directories (s0, s1, ...).
	WorkDir string
	// OutDir is the canonical cache the shards merge into.
	OutDir string
	// Full, Jobs, Verbose forward the sweep execution knobs to jobs.
	Full    bool
	Jobs    int
	Verbose bool
	// Out receives fleet progress lines; nil discards. Share one
	// SyncWriter with ExecutorDeps.Out when both target the same
	// destination — workers write concurrently from their own
	// goroutines.
	Out io.Writer
	// MaxAttempts bounds executions per shard (default 3).
	MaxAttempts int
	// RetireAfter takes a worker out of rotation after this many
	// consecutive failures (default 2).
	RetireAfter int
	// Clock supplies the wall-clock readings behind per-shard wall
	// reporting, so scheduling tests run on a fake clock. It is read
	// concurrently from every worker goroutine and must be safe for
	// that. Nil means time.Now.
	Clock func() time.Time
}

// now reads the scheduler's clock.
func (s *Scheduler) now() time.Time {
	if s.Clock != nil {
		return s.Clock()
	}
	return time.Now()
}

func (s *Scheduler) logf(format string, args ...any) {
	if s.Out != nil {
		fmt.Fprintf(s.Out, format+"\n", args...)
	}
}

// weight is the shard's predicted cost for dispatch ordering: profiled
// wall when the plan is weighted, point count otherwise.
func (s *Scheduler) weight(k int) int64 {
	if s.Plan.Weighted {
		return s.Plan.PredictedWallNs[k]
	}
	return int64(s.Plan.Counts[k])
}

// Dir returns shard k's cache directory.
func (s *Scheduler) Dir(k int) string {
	return filepath.Join(s.WorkDir, fmt.Sprintf("s%d", k))
}

type runResult struct {
	worker int
	shard  int
	err    error
	wall   time.Duration
}

// Run executes the fleet: dispatch (heaviest shard first to the first
// idle worker), retry with reassignment on failure, merge on success.
// It returns an error when a shard exhausts MaxAttempts, when no
// eligible worker remains for a pending shard, or when the final merge
// fails.
func (s *Scheduler) Run(ctx context.Context) (*Report, error) {
	n := s.Plan.Shards
	if len(s.Workers) == 0 {
		return nil, fmt.Errorf("fleet: no workers")
	}
	maxAttempts := s.MaxAttempts
	if maxAttempts <= 0 {
		maxAttempts = 3
	}
	retireAfter := s.RetireAfter
	if retireAfter <= 0 {
		retireAfter = 2
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	// Heaviest shards dispatch first so a long slice is never the last
	// thing started — the fleet-level half of LPT scheduling.
	pending := make([]int, n)
	for k := range pending {
		pending[k] = k
	}
	sort.SliceStable(pending, func(a, b int) bool {
		return s.weight(pending[a]) > s.weight(pending[b])
	})

	jobs := make([]chan Job, len(s.Workers))
	results := make(chan runResult, len(s.Workers))
	for w := range s.Workers {
		jobs[w] = make(chan Job, 1)
		go func(w int) {
			for job := range jobs[w] {
				start := s.now()
				err := s.Workers[w].Run(ctx, job)
				results <- runResult{worker: w, shard: job.Shard, err: err, wall: s.now().Sub(start)}
			}
		}(w)
	}
	defer func() {
		for _, ch := range jobs {
			close(ch)
		}
	}()

	excluded := make([]map[int]bool, n)
	lastFailedOn := make([]int, n)
	for k := range excluded {
		excluded[k] = map[int]bool{}
		lastFailedOn[k] = -1
	}
	attempts := make([]int, n)
	consecFails := make([]int, len(s.Workers))
	retired := make([]bool, len(s.Workers))
	idle := make([]int, 0, len(s.Workers))
	for w := range s.Workers {
		idle = append(idle, w)
	}

	rep := &Report{Shards: make([]ShardResult, n), Dirs: make([]string, n)}
	for k := 0; k < n; k++ {
		rep.Dirs[k] = s.Dir(k)
	}

	inflight := 0
	completed := 0
	fail := func(format string, args ...any) (*Report, error) {
		// Abort: cancel running jobs and drain them so no goroutine is
		// left sending on results.
		cancel()
		for inflight > 0 {
			<-results
			inflight--
		}
		return nil, fmt.Errorf(format, args...)
	}
	for completed < n {
		// Dispatch every idle worker that has an eligible pending shard.
		var stillIdle []int
		for _, w := range idle {
			picked := -1
			for pi, k := range pending {
				if !excluded[k][w] {
					picked = pi
					break
				}
			}
			if picked < 0 {
				stillIdle = append(stillIdle, w)
				continue
			}
			k := pending[picked]
			pending = append(pending[:picked], pending[picked+1:]...)
			attempts[k]++
			// A reassignment is a shard genuinely moving to a different
			// worker after a failure; a sole worker retrying its own
			// shard is not one.
			if lastFailedOn[k] >= 0 && lastFailedOn[k] != w {
				rep.Reassigned++
			}
			s.logf("fleet: shard %d/%d -> %s (attempt %d)", k, n, s.Workers[w].Name(), attempts[k])
			jobs[w] <- Job{
				Shard: k, Of: n, Dir: s.Dir(k),
				Manifest: s.Manifest, PlanPath: s.PlanPath,
				Full: s.Full, Jobs: s.Jobs, Verbose: s.Verbose,
			}
			inflight++
		}
		idle = stillIdle

		if inflight == 0 {
			// Nothing running and nothing dispatchable. Before giving
			// up, let pending shards retry on live workers that already
			// failed them — a small fleet has no one else, and the
			// shard's surviving cache directory makes the retry cheap.
			// MaxAttempts still bounds total executions and RetireAfter
			// still removes workers that keep dying.
			cleared := false
			for _, k := range pending {
				for w := range s.Workers {
					if excluded[k][w] && !retired[w] {
						delete(excluded[k], w)
						cleared = true
					}
				}
			}
			if cleared {
				continue
			}
			return fail("fleet: no eligible worker remains for shard %d (every live worker already failed it)", pending[0])
		}

		r := <-results
		inflight--
		w, k := r.worker, r.shard
		if r.err == nil {
			completed++
			consecFails[w] = 0
			sum, err := shard.ReadSummary(s.Dir(k))
			if err != nil {
				return fail("fleet: shard %d reported success but %v", k, err)
			}
			rep.Shards[k] = ShardResult{
				Shard: k, Worker: s.Workers[w].Name(), Attempts: attempts[k],
				WallNs: r.wall.Nanoseconds(),
				Points: sum.Points, Cold: sum.Cold, Warm: sum.Warm,
			}
			s.logf("fleet: shard %d/%d done on %s in %.1fs (%d cold, %d warm)",
				k, n, s.Workers[w].Name(), r.wall.Seconds(), sum.Cold, sum.Warm)
			if !retired[w] {
				idle = append(idle, w)
			}
			continue
		}

		// Failure: exclude this worker from the shard, re-queue it for
		// the others, and retire a worker that keeps dying.
		excluded[k][w] = true
		lastFailedOn[k] = w
		consecFails[w]++
		s.logf("fleet: shard %d/%d failed on %s: %v; reassigning", k, n, s.Workers[w].Name(), r.err)
		if attempts[k] >= maxAttempts {
			return fail("fleet: shard %d failed %d times (last worker %s): %v", k, attempts[k], s.Workers[w].Name(), r.err)
		}
		// Re-insert by weight so the retried shard keeps its priority.
		at := len(pending)
		for pi, pk := range pending {
			if s.weight(k) > s.weight(pk) {
				at = pi
				break
			}
		}
		pending = append(pending[:at], append([]int{k}, pending[at:]...)...)
		if consecFails[w] >= retireAfter {
			retired[w] = true
			rep.Retired++
			s.logf("fleet: worker %s retired after %d consecutive failures", s.Workers[w].Name(), consecFails[w])
		} else if !retired[w] {
			idle = append(idle, w)
		}
	}

	merge, err := shard.Merge(s.OutDir, rep.Dirs)
	if err != nil {
		return nil, fmt.Errorf("fleet: merging shards: %v", err)
	}
	rep.Merge = merge
	s.logf("fleet: merged %d shards into %s (%d entries imported, %d duplicates)",
		n, s.OutDir, merge.Imported, merge.Duplicates)
	return rep, nil
}
