package cache

import (
	"bytes"
	"testing"
	"testing/quick"

	"accesys/internal/mem"
	"accesys/internal/memtest"
	"accesys/internal/sim"
	"accesys/internal/stats"
)

// rig: requestor -> cache -> echo memory.
type rig struct {
	eq    *sim.EventQueue
	c     *Cache
	req   *memtest.Requestor
	mem   *memtest.EchoResponder
	reg   *stats.Registry
	under Config
}

func newRig(t *testing.T, cfg Config) *rig {
	t.Helper()
	eq := sim.NewEventQueue()
	reg := stats.NewRegistry()
	if cfg.SizeBytes == 0 {
		cfg.SizeBytes = 8 << 10 // 8 KiB
	}
	if cfg.Assoc == 0 {
		cfg.Assoc = 2
	}
	if cfg.HitLatency == 0 {
		cfg.HitLatency = 2 * sim.Nanosecond
	}
	c := New("l1", eq, reg, cfg)
	r := memtest.NewRequestor(eq)
	m := memtest.NewEchoResponder(eq, 0, 1<<20, 50*sim.Nanosecond)
	mem.Bind(r.Port, c.CPUPort())
	mem.Bind(c.MemPort(), m.Port)
	c.SetDownstreamFunctional(struct{ mem.Functional }{funcStore{m}})
	return &rig{eq: eq, c: c, req: r, mem: m, reg: reg, under: cfg}
}

// funcStore adapts EchoResponder's storage to mem.Functional.
type funcStore struct{ m *memtest.EchoResponder }

func (f funcStore) ReadFunctional(addr uint64, buf []byte)   { f.m.Store.Read(addr, buf) }
func (f funcStore) WriteFunctional(addr uint64, data []byte) { f.m.Store.Write(addr, data) }

func TestMissThenHit(t *testing.T) {
	rg := newRig(t, Config{})
	rg.mem.Store.Write(0x100, []byte{1, 2, 3, 4})

	first := mem.NewRead(0x100, 4)
	rg.req.Send(first)
	rg.eq.Run()
	if len(rg.req.Done) != 1 {
		t.Fatal("first read lost")
	}
	missLat := rg.req.DoneAt[0]
	if !bytes.Equal(first.Data, []byte{1, 2, 3, 4}) {
		t.Fatalf("miss data %v", first.Data)
	}

	second := mem.NewRead(0x100, 4)
	rg.req.Send(second)
	start := rg.eq.Now()
	rg.eq.Run()
	hitLat := rg.eq.Now() - start
	if !bytes.Equal(second.Data, []byte{1, 2, 3, 4}) {
		t.Fatalf("hit data %v", second.Data)
	}
	if hitLat >= missLat {
		t.Fatalf("hit latency %v should beat miss latency %v", hitLat, missLat)
	}
	if rg.reg.Lookup("l1.hits").Value() != 1 || rg.reg.Lookup("l1.misses").Value() != 1 {
		t.Fatalf("hit/miss counters wrong: %v/%v",
			rg.reg.Lookup("l1.hits").Value(), rg.reg.Lookup("l1.misses").Value())
	}
}

func TestWriteAllocateAndWriteback(t *testing.T) {
	rg := newRig(t, Config{SizeBytes: 256, Assoc: 1, LineBytes: 64}) // 4 sets
	// Dirty a line, then evict it by touching the conflicting address.
	rg.req.Send(mem.NewWrite(0x0, []byte{0xaa, 0xbb}))
	rg.eq.Run()
	// Partial write allocates via fill; line now dirty.
	rg.req.Send(mem.NewRead(0x100, 4)) // same set (4 sets * 64B = 256B period)
	rg.eq.Run()
	rg.req.Send(mem.NewRead(0x200, 4)) // evicts one of them eventually
	rg.req.Send(mem.NewRead(0x300, 4))
	rg.eq.Run()
	if rg.reg.Lookup("l1.writebacks").Value() < 1 {
		t.Fatal("dirty eviction should write back")
	}
	got := make([]byte, 2)
	rg.mem.Store.Read(0x0, got)
	if !bytes.Equal(got, []byte{0xaa, 0xbb}) {
		t.Fatalf("writeback did not reach memory: %v", got)
	}
}

func TestReadYourWrite(t *testing.T) {
	rg := newRig(t, Config{})
	rg.req.Send(mem.NewWrite(0x40, []byte{9, 9, 9, 9}))
	rd := mem.NewRead(0x40, 4)
	rg.req.SendAt(rd, 10*sim.Microsecond)
	rg.eq.Run()
	if !bytes.Equal(rd.Data, []byte{9, 9, 9, 9}) {
		t.Fatalf("read-your-write got %v", rd.Data)
	}
}

func TestFullLineWriteNoFetch(t *testing.T) {
	rg := newRig(t, Config{LineBytes: 64})
	data := make([]byte, 64)
	for i := range data {
		data[i] = byte(i)
	}
	rg.req.Send(mem.NewWrite(0x400, data))
	rg.eq.Run()
	// No downstream fill should have been issued.
	if len(rg.mem.Requests) != 0 {
		t.Fatalf("full-line write fetched %d packets from memory", len(rg.mem.Requests))
	}
	rd := mem.NewRead(0x400, 64)
	rg.req.Send(rd)
	rg.eq.Run()
	if !bytes.Equal(rd.Data, data) {
		t.Fatal("full-line write data lost")
	}
}

func TestMultiLineRequest(t *testing.T) {
	rg := newRig(t, Config{LineBytes: 64})
	payload := make([]byte, 256)
	for i := range payload {
		payload[i] = byte(i * 3)
	}
	rg.mem.Store.Write(0x1000, payload)
	rd := mem.NewRead(0x1000, 256)
	rg.req.Send(rd)
	rg.eq.Run()
	if !bytes.Equal(rd.Data, payload) {
		t.Fatal("multi-line read mismatch")
	}
	if rg.reg.Lookup("l1.misses").Value() != 4 {
		t.Fatalf("expected 4 line misses, got %v", rg.reg.Lookup("l1.misses").Value())
	}
}

func TestUnalignedCrossLine(t *testing.T) {
	rg := newRig(t, Config{LineBytes: 64})
	payload := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	rg.mem.Store.Write(60, payload) // crosses the 64B boundary
	rd := mem.NewRead(60, 8)
	rg.req.Send(rd)
	rg.eq.Run()
	if !bytes.Equal(rd.Data, payload) {
		t.Fatalf("cross-line read %v", rd.Data)
	}
}

func TestMSHRCoalescing(t *testing.T) {
	rg := newRig(t, Config{})
	// Two reads to the same line while the fill is outstanding must
	// produce a single downstream fill.
	rg.req.Send(mem.NewRead(0x80, 4))
	rg.req.Send(mem.NewRead(0x84, 4))
	rg.eq.Run()
	if len(rg.mem.Requests) != 1 {
		t.Fatalf("expected 1 coalesced fill, got %d", len(rg.mem.Requests))
	}
	if len(rg.req.Done) != 2 {
		t.Fatal("both requests must complete")
	}
}

func TestMSHRLimitBackpressure(t *testing.T) {
	rg := newRig(t, Config{MSHRs: 2})
	for i := 0; i < 8; i++ {
		rg.req.Send(mem.NewRead(uint64(i)*64, 4))
	}
	rg.eq.Run()
	if len(rg.req.Done) != 8 {
		t.Fatalf("completed %d of 8 under MSHR pressure", len(rg.req.Done))
	}
}

func TestUncacheableBypass(t *testing.T) {
	rg := newRig(t, Config{})
	p := mem.NewRead(0x500, 8)
	p.Uncacheable = true
	rg.req.Send(p)
	rg.eq.Run()
	if rg.reg.Lookup("l1.bypasses").Value() != 1 {
		t.Fatal("uncacheable packet should bypass")
	}
	// A second uncacheable access still goes downstream (no caching).
	p2 := mem.NewRead(0x500, 8)
	p2.Uncacheable = true
	rg.req.Send(p2)
	rg.eq.Run()
	if len(rg.mem.Requests) != 2 {
		t.Fatalf("bypass must not allocate: %d mem requests", len(rg.mem.Requests))
	}
}

func TestLRUReplacement(t *testing.T) {
	// Direct-mapped 4-set cache: lines at stride 256 collide.
	rg := newRig(t, Config{SizeBytes: 512, Assoc: 2, LineBytes: 64})
	// Fill both ways of set 0: addrs 0 and 256.
	rg.req.Send(mem.NewRead(0, 4))
	rg.eq.Run()
	rg.req.Send(mem.NewRead(256, 4))
	rg.eq.Run()
	// Touch 0 so 256 becomes LRU, then insert 512 -> evicts 256.
	rg.req.Send(mem.NewRead(0, 4))
	rg.eq.Run()
	rg.req.Send(mem.NewRead(512, 4))
	rg.eq.Run()
	hitsBefore := rg.reg.Lookup("l1.hits").Value()
	rg.req.Send(mem.NewRead(0, 4)) // must still hit
	rg.eq.Run()
	if rg.reg.Lookup("l1.hits").Value() != hitsBefore+1 {
		t.Fatal("LRU evicted the recently used line")
	}
}

func TestSnoopDowngradePullsDirtyData(t *testing.T) {
	// upper cache (l1) above llc: llc snoops l1.
	eq := sim.NewEventQueue()
	reg := stats.NewRegistry()
	l1 := New("l1x", eq, reg, Config{SizeBytes: 1 << 10, Assoc: 2, HitLatency: sim.Nanosecond})
	llc := New("llcx", eq, reg, Config{SizeBytes: 8 << 10, Assoc: 4, HitLatency: 5 * sim.Nanosecond})
	llc.RegisterSnooper(l1)

	cpu := memtest.NewRequestor(eq)
	dma := memtest.NewRequestor(eq)
	m := memtest.NewEchoResponder(eq, 0, 1<<20, 30*sim.Nanosecond)
	mem.Bind(cpu.Port, l1.CPUPort())
	mem.Bind(dma.Port, llc.CPUPort())
	mem.Bind(llc.MemPort(), m.Port)
	// l1 would normally sit above llc via a bus; for this test the l1
	// mem port hangs unbound: writes stay dirty in l1.

	// CPU dirties a line in l1 (write allocate fetches via llc... l1's
	// mem port is unbound, so pre-load the line with a full-line write
	// that needs no fetch).
	line := make([]byte, 64)
	for i := range line {
		line[i] = 0x77
	}
	cpu.Send(mem.NewWrite(0x200, line))
	eq.Run()

	// DMA reads the same line through the LLC: the snoop must pull the
	// dirty data out of l1.
	rd := mem.NewRead(0x200, 64)
	dma.Send(rd)
	eq.Run()
	if !bytes.Equal(rd.Data, line) {
		t.Fatalf("snoop read %v..., want 0x77s", rd.Data[:4])
	}
	if reg.Lookup("llcx.snoop_dirty").Value() != 1 {
		t.Fatal("snoop_dirty not counted")
	}
	// Downgrade leaves l1's copy valid and clean: a CPU re-read hits.
	hits := reg.Lookup("l1x.hits").Value()
	rd2 := mem.NewRead(0x200, 64)
	cpu.Send(rd2)
	eq.Run()
	if reg.Lookup("l1x.hits").Value() != hits+1 {
		t.Fatal("downgraded line should still hit in l1")
	}
}

func TestSnoopInvalidateOnWrite(t *testing.T) {
	eq := sim.NewEventQueue()
	reg := stats.NewRegistry()
	l1 := New("l1y", eq, reg, Config{SizeBytes: 1 << 10, Assoc: 2, HitLatency: sim.Nanosecond})
	llc := New("llcy", eq, reg, Config{SizeBytes: 8 << 10, Assoc: 4, HitLatency: 5 * sim.Nanosecond})
	llc.RegisterSnooper(l1)
	cpu := memtest.NewRequestor(eq)
	dma := memtest.NewRequestor(eq)
	m := memtest.NewEchoResponder(eq, 0, 1<<20, 30*sim.Nanosecond)
	mem.Bind(cpu.Port, l1.CPUPort())
	mem.Bind(dma.Port, llc.CPUPort())
	mem.Bind(llc.MemPort(), m.Port)

	line := make([]byte, 64)
	cpu.Send(mem.NewWrite(0x300, line))
	eq.Run()

	// DMA full-line write invalidates l1's copy.
	newData := make([]byte, 64)
	for i := range newData {
		newData[i] = 0x11
	}
	dma.Send(mem.NewWrite(0x300, newData))
	eq.Run()

	misses := reg.Lookup("l1y.misses").Value()
	_ = misses
	if got, _ := l1.SnoopDowngrade(0x300); got {
		t.Fatal("l1 line should have been invalidated, not dirty")
	}
	if l1.lookup(0x300) != nil {
		t.Fatal("l1 line should be gone after invalidation snoop")
	}
}

func TestFunctionalThroughCache(t *testing.T) {
	rg := newRig(t, Config{})
	// Timing write dirties the cache; functional read must see it.
	line := make([]byte, 64)
	line[0] = 0xfe
	rg.req.Send(mem.NewWrite(0x600, line))
	rg.eq.Run()
	got := make([]byte, 1)
	rg.c.ReadFunctional(0x600, got)
	if got[0] != 0xfe {
		t.Fatalf("functional read through cache got %#x", got[0])
	}
	// Functional write visible to timing read (hit path).
	rg.c.WriteFunctional(0x600, []byte{0x5c})
	rd := mem.NewRead(0x600, 1)
	rg.req.Send(rd)
	rg.eq.Run()
	if rd.Data[0] != 0x5c {
		t.Fatalf("timing read after functional write got %#x", rd.Data[0])
	}
}

func TestFlushAll(t *testing.T) {
	rg := newRig(t, Config{})
	line := make([]byte, 64)
	line[5] = 0xab
	rg.req.Send(mem.NewWrite(0x700, line))
	rg.eq.Run()
	rg.c.FlushAll()
	got := make([]byte, 64)
	rg.mem.Store.Read(0x700, got)
	if got[5] != 0xab {
		t.Fatal("flush did not push dirty data downstream")
	}
	// After flush the next access misses.
	misses := rg.reg.Lookup("l1.misses").Value()
	rg.req.Send(mem.NewRead(0x700, 4))
	rg.eq.Run()
	if rg.reg.Lookup("l1.misses").Value() != misses+1 {
		t.Fatal("flush should invalidate lines")
	}
}

func TestBadGeometryPanics(t *testing.T) {
	eq := sim.NewEventQueue()
	reg := stats.NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("non-power-of-two sets should panic")
		}
	}()
	New("bad", eq, reg, Config{SizeBytes: 3000, Assoc: 2, LineBytes: 64})
}

// Property: randomized mixed reads/writes through the cache always
// agree with a flat reference model.
func TestCacheVsReferenceProperty(t *testing.T) {
	f := func(ops []struct {
		Addr  uint16
		Write bool
		Val   byte
	}) bool {
		rg := newRig(t, Config{SizeBytes: 512, Assoc: 2, LineBytes: 64})
		ref := make([]byte, 1<<16+8)
		okAll := true
		for _, op := range ops {
			addr := uint64(op.Addr)
			if op.Write {
				rg.req.Send(mem.NewWrite(addr, []byte{op.Val, op.Val ^ 0xff}))
				ref[addr], ref[addr+1] = op.Val, op.Val^0xff
			} else {
				rd := mem.NewRead(addr, 2)
				want0, want1 := ref[addr], ref[addr+1]
				rd2 := rd
				rg.req.OnDone = func(p *mem.Packet) {
					if p == rd2 && (p.Data[0] != want0 || p.Data[1] != want1) {
						okAll = false
					}
				}
				rg.req.Send(rd)
			}
			rg.eq.Run()
			rg.req.OnDone = nil
		}
		return okAll
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: set indexing is uniform for stride-64 addresses.
func TestSetIndexCoverage(t *testing.T) {
	rg := newRig(t, Config{SizeBytes: 4 << 10, Assoc: 2, LineBytes: 64})
	counts := make(map[int]int)
	for a := uint64(0); a < 1<<16; a += 64 {
		counts[rg.c.setIndex(a)]++
	}
	if len(counts) != rg.c.numSets {
		t.Fatalf("covered %d sets of %d", len(counts), rg.c.numSets)
	}
	want := counts[0]
	for s, n := range counts {
		if n != want {
			t.Fatalf("set %d has %d accesses, want %d", s, n, want)
		}
	}
}
