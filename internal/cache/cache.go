// Package cache implements the configurable cache hierarchy of the
// framework: set-associative, write-back, write-allocate, non-blocking
// caches with MSHRs, used for the L1 data/instruction caches, the
// shared last-level cache (LLC), the IOCache on the PCIe path, and the
// device-side cache.
//
// Coherence between the CPU caches and the accelerator path (the
// paper's "cache coherency model between the accelerator's cache and
// the CPU cache") is a snooping MSI protocol resolved atomically at the
// LLC: upper-level caches register as Snoopers; every request accepted
// by the LLC invalidates (writes) or downgrades (reads) the line in all
// upper caches, pulling dirty data down with a configurable snoop
// latency. State transitions are ordered at the coherence point and
// take effect immediately while data movement is timed — the standard
// atomic-snoop simplification. Two documented relaxations: a write hit
// on a clean upper-level line does not broadcast an upgrade, and a
// snoop cannot intercept a fill already in flight to an upper cache;
// the workloads' phase-separated sharing (CPU writes, then DMA reads)
// never exercises either race, and the DM access method instead uses
// explicit driver-managed flushes as the paper prescribes.
package cache

import (
	"fmt"

	"accesys/internal/mem"
	"accesys/internal/sim"
	"accesys/internal/stats"
)

// Snooper is implemented by upper-level caches participating in
// coherence at a lower-level coherence point.
type Snooper interface {
	// SnoopInvalidate removes the line; it returns the dirty data if
	// the line was modified.
	SnoopInvalidate(lineAddr uint64) (wasDirty bool, data []byte)
	// SnoopDowngrade demotes Modified to Shared; it returns the dirty
	// data if the line was modified. Clean/absent lines are untouched.
	SnoopDowngrade(lineAddr uint64) (wasDirty bool, data []byte)
}

// Config parameterizes a Cache.
type Config struct {
	SizeBytes int
	Assoc     int
	LineBytes int // default 64
	// HitLatency is lookup-to-data for hits and lookup-to-fill-issue
	// for misses.
	HitLatency sim.Tick
	// ResponseLatency is added between fill arrival and response.
	ResponseLatency sim.Tick
	// SnoopLatency is added when a snoop returns dirty data.
	SnoopLatency sim.Tick
	// MSHRs bounds outstanding line fills (default 8).
	MSHRs int
	// MemQueueDepth bounds queued downstream packets (default 32).
	MemQueueDepth int
}

func (c *Config) setDefaults() {
	if c.LineBytes == 0 {
		c.LineBytes = 64
	}
	if c.MSHRs == 0 {
		c.MSHRs = 8
	}
	if c.MemQueueDepth == 0 {
		c.MemQueueDepth = 32
	}
	if c.HitLatency == 0 {
		c.HitLatency = 2 * sim.Nanosecond
	}
	if c.ResponseLatency == 0 {
		c.ResponseLatency = sim.Nanosecond
	}
	if c.SnoopLatency == 0 {
		c.SnoopLatency = 4 * sim.Nanosecond
	}
}

type line struct {
	valid   bool
	dirty   bool
	tag     uint64
	lastUse uint64
	data    []byte
}

// txn tracks one original packet that may span several lines.
type txn struct {
	pkt       *mem.Packet
	remaining int
	finish    sim.Tick
}

// target is one line-sized slice of a transaction waiting on a fill.
type target struct {
	t       *txn
	pktOff  int
	lineOff int
	n       int
	isWrite bool
}

type mshr struct {
	lineAddr uint64
	targets  []target
}

type wbState struct{}
type bypassState struct{}

// Cache is one cache level with a single upstream (cpu-side) response
// port and a single downstream (mem-side) request port.
type Cache struct {
	name string
	eq   *sim.EventQueue
	cfg  Config

	cpuPort *mem.ResponsePort
	memPort *mem.RequestPort
	memQ    *mem.PacketQueue // downstream requests
	respQ   *mem.PacketQueue // upstream responses

	sets       [][]line
	numSets    int
	useCounter uint64

	mshrs     map[uint64]*mshr
	needRetry bool

	// txnFree/mshrFree/bufFree recycle transaction records, miss
	// records, and line buffers so the steady-state request path does
	// not allocate. Line buffers come back from acknowledged
	// writebacks (cloneWrite copies, so nothing else aliases them).
	txnFree  []*txn
	mshrFree []*mshr
	bufFree  [][]byte

	snoopers []Snooper
	downFunc mem.Functional

	hits       *stats.Counter
	misses     *stats.Counter
	evictions  *stats.Counter
	writebacks *stats.Counter
	snoopDirty *stats.Counter
	bypasses   *stats.Counter
}

// New builds a cache and registers statistics under name.
func New(name string, eq *sim.EventQueue, reg *stats.Registry, cfg Config) *Cache {
	cfg.setDefaults()
	if cfg.SizeBytes <= 0 || cfg.Assoc <= 0 {
		panic(fmt.Sprintf("cache %s: size/assoc must be positive", name))
	}
	numSets := cfg.SizeBytes / (cfg.Assoc * cfg.LineBytes)
	if numSets == 0 || !mem.IsPow2(uint64(numSets)) {
		panic(fmt.Sprintf("cache %s: %d sets (size %d / assoc %d / line %d) must be a power of two",
			name, numSets, cfg.SizeBytes, cfg.Assoc, cfg.LineBytes))
	}
	c := &Cache{
		name:    name,
		eq:      eq,
		cfg:     cfg,
		numSets: numSets,
		mshrs:   make(map[uint64]*mshr),
	}
	c.sets = make([][]line, numSets)
	for i := range c.sets {
		c.sets[i] = make([]line, cfg.Assoc)
	}
	c.cpuPort = mem.NewResponsePort(name+".cpu", c)
	c.memPort = mem.NewRequestPort(name+".mem", c)
	c.memQ = mem.NewPacketQueue(name+".memq", eq, func(p *mem.Packet) bool {
		return c.memPort.SendTimingReq(p)
	})
	c.memQ.OnDrain = func() { c.retryAfterFree() }
	c.respQ = mem.NewPacketQueue(name+".respq", eq, func(p *mem.Packet) bool {
		return c.cpuPort.SendTimingResp(p)
	})

	g := reg.Group(name)
	c.hits = g.Counter("hits", "line accesses that hit")
	c.misses = g.Counter("misses", "line accesses that missed")
	c.evictions = g.Counter("evictions", "lines evicted")
	c.writebacks = g.Counter("writebacks", "dirty lines written back")
	c.snoopDirty = g.Counter("snoop_dirty", "snoops that returned dirty data")
	c.bypasses = g.Counter("bypasses", "uncacheable packets forwarded")
	g.Formula("hit_rate", "hit fraction", func() float64 {
		tot := c.hits.Value() + c.misses.Value()
		if tot == 0 {
			return 0
		}
		return c.hits.Value() / tot
	})
	return c
}

// CPUPort returns the upstream-facing response port.
func (c *Cache) CPUPort() *mem.ResponsePort { return c.cpuPort }

// MemPort returns the downstream-facing request port.
func (c *Cache) MemPort() *mem.RequestPort { return c.memPort }

// RegisterSnooper adds an upper-level cache to this cache's coherence
// domain (used on the LLC).
func (c *Cache) RegisterSnooper(s Snooper) { c.snoopers = append(c.snoopers, s) }

// SetDownstreamFunctional wires the functional backdoor target below
// this cache.
func (c *Cache) SetDownstreamFunctional(f mem.Functional) { c.downFunc = f }

func (c *Cache) lineBytes() uint64 { return uint64(c.cfg.LineBytes) }

func (c *Cache) setIndex(lineAddr uint64) int {
	return int((lineAddr / c.lineBytes()) % uint64(c.numSets))
}

func (c *Cache) lookup(lineAddr uint64) *line {
	set := c.sets[c.setIndex(lineAddr)]
	for i := range set {
		if set[i].valid && set[i].tag == lineAddr {
			return &set[i]
		}
	}
	return nil
}

// victim picks a line to replace in lineAddr's set, writing back dirty
// victims, and returns a reset line bound to lineAddr.
func (c *Cache) victim(lineAddr uint64) *line {
	set := c.sets[c.setIndex(lineAddr)]
	vi := 0
	for i := range set {
		if !set[i].valid {
			vi = i
			break
		}
		if set[i].lastUse < set[vi].lastUse {
			vi = i
		}
	}
	v := &set[vi]
	if v.valid {
		c.evictions.Inc()
		if v.dirty {
			c.writebacks.Inc()
			wb := mem.NewWrite(v.tag, v.data)
			wb.PushState(wbState{})
			c.memQ.Schedule(wb, c.eq.Now())
			v.data = nil // ownership moved to the writeback packet
		}
	}
	if v.data == nil || len(v.data) != c.cfg.LineBytes {
		if n := len(c.bufFree); n > 0 {
			v.data = c.bufFree[n-1]
			c.bufFree[n-1] = nil
			c.bufFree = c.bufFree[:n-1]
			clear(v.data)
		} else {
			v.data = make([]byte, c.cfg.LineBytes)
		}
	} else {
		for i := range v.data {
			v.data[i] = 0
		}
	}
	v.valid = true
	v.dirty = false
	v.tag = lineAddr
	c.useCounter++
	v.lastUse = c.useCounter
	return v
}

// apply copies data between a packet segment and a cache line.
func (c *Cache) apply(l *line, tg target) {
	pkt := tg.t.pkt
	if tg.isWrite {
		if pkt.Data != nil {
			copy(l.data[tg.lineOff:tg.lineOff+tg.n], pkt.Data[tg.pktOff:tg.pktOff+tg.n])
		}
		l.dirty = true
	} else {
		copy(pkt.AllocData()[tg.pktOff:tg.pktOff+tg.n], l.data[tg.lineOff:tg.lineOff+tg.n])
	}
	c.useCounter++
	l.lastUse = c.useCounter
}

func (c *Cache) lineDone(t *txn, at sim.Tick) {
	if at > t.finish {
		t.finish = at
	}
	t.remaining--
	if t.remaining == 0 {
		t.pkt.MakeResponse()
		c.respQ.Schedule(t.pkt, t.finish)
		c.putTxn(t)
	}
}

func (c *Cache) getTxn() *txn {
	if n := len(c.txnFree); n > 0 {
		t := c.txnFree[n-1]
		c.txnFree[n-1] = nil
		c.txnFree = c.txnFree[:n-1]
		return t
	}
	return &txn{}
}

func (c *Cache) putTxn(t *txn) {
	*t = txn{}
	c.txnFree = append(c.txnFree, t)
}

func (c *Cache) getMSHR() *mshr {
	if n := len(c.mshrFree); n > 0 {
		m := c.mshrFree[n-1]
		c.mshrFree[n-1] = nil
		c.mshrFree = c.mshrFree[:n-1]
		return m
	}
	return &mshr{}
}

func (c *Cache) putMSHR(m *mshr) {
	clear(m.targets)
	m.targets = m.targets[:0]
	m.lineAddr = 0
	c.mshrFree = append(c.mshrFree, m)
}

// snoopLine consults all registered snoopers for a line; returns dirty
// data if any upper cache owned it.
func (c *Cache) snoopLine(lineAddr uint64, isWrite bool) (bool, []byte) {
	var gotDirty bool
	var dirtyData []byte
	for _, sn := range c.snoopers {
		var d bool
		var data []byte
		if isWrite {
			d, data = sn.SnoopInvalidate(lineAddr)
		} else {
			d, data = sn.SnoopDowngrade(lineAddr)
		}
		if d {
			gotDirty = true
			dirtyData = data
			c.snoopDirty.Inc()
		}
	}
	return gotDirty, dirtyData
}

// RecvTimingReq implements mem.Responder.
func (c *Cache) RecvTimingReq(port *mem.ResponsePort, pkt *mem.Packet) bool {
	lb := c.lineBytes()
	now := c.eq.Now()

	if pkt.Uncacheable {
		if c.memQ.Len() >= c.cfg.MemQueueDepth {
			c.needRetry = true
			return false
		}
		c.bypasses.Inc()
		pkt.PushState(bypassState{})
		c.memQ.Schedule(pkt, now+c.cfg.HitLatency)
		return true
	}

	// Admission: worst case every covered line needs a new MSHR.
	first := mem.AlignDown(pkt.Addr, lb)
	last := mem.AlignDown(pkt.Addr+uint64(pkt.Size)-1, lb)
	linesCovered := int((last-first)/lb) + 1
	if len(c.mshrs)+linesCovered > c.cfg.MSHRs || c.memQ.Len() >= c.cfg.MemQueueDepth {
		c.needRetry = true
		return false
	}

	isWrite := pkt.Cmd.IsWrite()
	if pkt.Cmd.IsRead() {
		pkt.AllocData()
	}
	t := c.getTxn()
	t.pkt, t.remaining = pkt, linesCovered

	for la := first; la <= last; la += lb {
		ovStart := la
		if pkt.Addr > ovStart {
			ovStart = pkt.Addr
		}
		ovEnd := la + lb
		if pkt.Addr+uint64(pkt.Size) < ovEnd {
			ovEnd = pkt.Addr + uint64(pkt.Size)
		}
		tg := target{
			t:       t,
			pktOff:  int(ovStart - pkt.Addr),
			lineOff: int(ovStart - la),
			n:       int(ovEnd - ovStart),
			isWrite: isWrite,
		}

		extra := sim.Tick(0)
		if len(c.snoopers) > 0 {
			if dirty, data := c.snoopLine(la, isWrite); dirty {
				// Take ownership of the dirty line.
				l := c.lookup(la)
				if l == nil {
					l = c.victim(la)
				}
				copy(l.data, data)
				l.dirty = true
				extra = c.cfg.SnoopLatency
			}
		}

		if l := c.lookup(la); l != nil {
			c.hits.Inc()
			c.apply(l, tg)
			c.lineDone(t, now+c.cfg.HitLatency+extra)
			continue
		}

		// Full-line write: install without fetching.
		if isWrite && tg.n == int(lb) {
			c.hits.Inc()
			l := c.victim(la)
			c.apply(l, tg)
			c.lineDone(t, now+c.cfg.HitLatency+extra)
			continue
		}

		c.misses.Inc()
		if m, ok := c.mshrs[la]; ok {
			m.targets = append(m.targets, tg)
			continue
		}
		m := c.getMSHR()
		m.lineAddr = la
		m.targets = append(m.targets, tg)
		c.mshrs[la] = m
		fill := mem.NewRead(la, int(lb))
		fill.PushState(m)
		c.memQ.Schedule(fill, now+c.cfg.HitLatency+extra)
	}
	return true
}

// RecvTimingResp implements mem.Requestor: fills, writeback acks, and
// bypass responses come back from downstream.
func (c *Cache) RecvTimingResp(port *mem.RequestPort, pkt *mem.Packet) bool {
	now := c.eq.Now()
	switch st := pkt.PopState().(type) {
	case wbState:
		// Writeback acknowledged; resources may have freed. The cache
		// originated the writeback, so its lease ends here and the
		// line buffer it carried returns to the buffer freelist
		// (posted-write clones copy, so nothing else aliases it).
		if len(pkt.Data) == c.cfg.LineBytes {
			c.bufFree = append(c.bufFree, pkt.Data)
		}
		pkt.Release()
		c.retryAfterFree()
		return true
	case bypassState:
		c.respQ.Schedule(pkt, now+c.cfg.ResponseLatency)
		c.retryAfterFree()
		return true
	case *mshr:
		m := st
		l := c.victim(m.lineAddr)
		copy(l.data, pkt.Data)
		for _, tg := range m.targets {
			c.apply(l, tg)
			c.lineDone(tg.t, now+c.cfg.ResponseLatency)
		}
		delete(c.mshrs, m.lineAddr)
		c.putMSHR(m)
		pkt.Release() // fill read originated by this cache; consumed here
		c.retryAfterFree()
		return true
	default:
		panic(fmt.Sprintf("%s: unexpected response state %T", c.name, st))
	}
}

func (c *Cache) retryAfterFree() {
	if !c.needRetry {
		return
	}
	c.needRetry = false
	c.cpuPort.SendRetryReq()
}

// RecvRetryReq implements mem.Requestor: downstream is ready again.
func (c *Cache) RecvRetryReq(port *mem.RequestPort) { c.memQ.RetryReceived() }

// RecvRetryResp implements mem.Responder: upstream is ready again.
func (c *Cache) RecvRetryResp(port *mem.ResponsePort) { c.respQ.RetryReceived() }

// SnoopInvalidate implements Snooper.
func (c *Cache) SnoopInvalidate(lineAddr uint64) (bool, []byte) {
	l := c.lookup(lineAddr)
	if l == nil {
		return false, nil
	}
	dirty := l.dirty
	var data []byte
	if dirty {
		data = make([]byte, len(l.data))
		copy(data, l.data)
	}
	l.valid = false
	l.dirty = false
	return dirty, data
}

// SnoopDowngrade implements Snooper.
func (c *Cache) SnoopDowngrade(lineAddr uint64) (bool, []byte) {
	l := c.lookup(lineAddr)
	if l == nil || !l.dirty {
		return false, nil
	}
	data := make([]byte, len(l.data))
	copy(data, l.data)
	l.dirty = false
	return true, data
}

// ReadFunctional implements mem.Functional: cached lines win over
// downstream contents.
func (c *Cache) ReadFunctional(addr uint64, buf []byte) {
	if c.downFunc != nil {
		c.downFunc.ReadFunctional(addr, buf)
	}
	lb := c.lineBytes()
	first := mem.AlignDown(addr, lb)
	for la := first; la < addr+uint64(len(buf)); la += lb {
		if l := c.lookup(la); l != nil {
			ovStart, ovEnd := la, la+lb
			if addr > ovStart {
				ovStart = addr
			}
			if addr+uint64(len(buf)) < ovEnd {
				ovEnd = addr + uint64(len(buf))
			}
			copy(buf[ovStart-addr:ovEnd-addr], l.data[ovStart-la:ovEnd-la])
		}
	}
}

// WriteFunctional implements mem.Functional: write-through — cached
// lines are updated and the data always propagates downstream.
func (c *Cache) WriteFunctional(addr uint64, data []byte) {
	lb := c.lineBytes()
	first := mem.AlignDown(addr, lb)
	for la := first; la < addr+uint64(len(data)); la += lb {
		if l := c.lookup(la); l != nil {
			ovStart, ovEnd := la, la+lb
			if addr > ovStart {
				ovStart = addr
			}
			if addr+uint64(len(data)) < ovEnd {
				ovEnd = addr + uint64(len(data))
			}
			copy(l.data[ovStart-la:ovEnd-la], data[ovStart-addr:ovEnd-addr])
		}
	}
	if c.downFunc != nil {
		c.downFunc.WriteFunctional(addr, data)
	}
}

// OverlayFunctional copies the contents of any cached lines in
// [addr, addr+len(buf)) over buf, leaving uncached bytes untouched.
// System-level functional reads use it to let upper-level caches win
// over the lower-level view.
func (c *Cache) OverlayFunctional(addr uint64, buf []byte) {
	lb := c.lineBytes()
	first := mem.AlignDown(addr, lb)
	for la := first; la < addr+uint64(len(buf)); la += lb {
		if l := c.lookup(la); l != nil {
			ovStart, ovEnd := la, la+lb
			if addr > ovStart {
				ovStart = addr
			}
			if addr+uint64(len(buf)) < ovEnd {
				ovEnd = addr + uint64(len(buf))
			}
			copy(buf[ovStart-addr:ovEnd-addr], l.data[ovStart-la:ovEnd-la])
		}
	}
}

// UpdateFunctional writes data into any cached lines it covers without
// forwarding downstream; the caller handles the lower levels.
func (c *Cache) UpdateFunctional(addr uint64, data []byte) {
	lb := c.lineBytes()
	first := mem.AlignDown(addr, lb)
	for la := first; la < addr+uint64(len(data)); la += lb {
		if l := c.lookup(la); l != nil {
			ovStart, ovEnd := la, la+lb
			if addr > ovStart {
				ovStart = addr
			}
			if addr+uint64(len(data)) < ovEnd {
				ovEnd = addr + uint64(len(data))
			}
			copy(l.data[ovStart-la:ovEnd-la], data[ovStart-addr:ovEnd-addr])
		}
	}
}

// FlushAll writes every dirty line downstream functionally and
// invalidates the whole cache — the driver-managed flush used by the
// DM access method.
func (c *Cache) FlushAll() {
	for si := range c.sets {
		for wi := range c.sets[si] {
			l := &c.sets[si][wi]
			if l.valid && l.dirty && c.downFunc != nil {
				c.downFunc.WriteFunctional(l.tag, l.data)
			}
			l.valid = false
			l.dirty = false
		}
	}
}

var _ mem.Requestor = (*Cache)(nil)
var _ mem.Responder = (*Cache)(nil)
var _ mem.Functional = (*Cache)(nil)
var _ Snooper = (*Cache)(nil)
