//go:build race

package exp

// raceEnabled reports whether this test binary runs under the race
// detector (the golden conformance suite skips there: it re-runs every
// experiment for minutes while adding no concurrency coverage beyond
// the determinism tests).
const raceEnabled = true
