package exp

import (
	"strings"
	"testing"

	"accesys/internal/core"
	"accesys/internal/driver"
	"accesys/internal/scenario"
	"accesys/internal/sim"
	"accesys/internal/workload"
)

func TestIDsResolve(t *testing.T) {
	for _, id := range IDs() {
		if _, ok := ByID(id); !ok {
			t.Fatalf("experiment %q does not resolve", id)
		}
		if _, ok := scenario.Builtin(id); !ok {
			t.Fatalf("experiment %q has no built-in scenario", id)
		}
	}
	if _, ok := ByID("nope"); ok {
		t.Fatal("unknown id should not resolve")
	}
}

func TestResultFprint(t *testing.T) {
	r := &Result{
		ID:      "figX",
		Title:   "demo",
		Headers: []string{"a", "b"},
	}
	r.AddRow("1", "2")
	r.Note("a note %d", 7)
	var sb strings.Builder
	r.Fprint(&sb)
	out := sb.String()
	for _, want := range []string{"figX", "demo", "a  b", "1  2", "# a note 7"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestTimeGEMMAcrossConfigs(t *testing.T) {
	for _, cfg := range []core.Config{core.PCIe2GB(), core.PCIe8GB(), core.PCIe64GB(), core.DevMemCfg()} {
		d, sys, res := scenario.TimeGEMM(cfg, 64)
		if d == 0 {
			t.Fatalf("%s: zero duration", cfg.Name)
		}
		if res.Job.Tiles != 16 {
			t.Fatalf("%s: tiles = %d", cfg.Name, res.Job.Tiles)
		}
		_ = sys
	}
}

// miniViT is a scaled-down variant keeping the test fast while
// exercising the full chain of GEMM offloads and CPU operators.
var miniViT = workload.ViTVariant{Name: "ViT-Mini", Hidden: 128, Heads: 4, Layers: 2, MLP: 4}

func TestRunViTChainsAllItems(t *testing.T) {
	cfg := core.PCIe8GB()
	times := scenario.RunViT(cfg, miniViT)
	if times.GEMM == 0 || times.NonGEMM == 0 {
		t.Fatalf("split missing: gemm=%v nongemm=%v", times.GEMM, times.NonGEMM)
	}
	// Memoized: identical pointer-free result on repeat.
	again := scenario.RunViT(cfg, miniViT)
	if again != times {
		t.Fatal("memoization broken")
	}
}

func TestViTDevMemNonGEMMPenalty(t *testing.T) {
	host := scenario.RunViT(core.PCIe8GB(), miniViT)
	dev := scenario.RunViT(core.DevMemCfg(), miniViT)
	if !(dev.NonGEMM > host.NonGEMM) {
		t.Fatalf("DevMem Non-GEMM (%v) should exceed host (%v)", dev.NonGEMM, host.NonGEMM)
	}
	// The GEMM-side DevMem win needs real matrix sizes to amortize the
	// 64 B device bursts; it is asserted at scale in core's
	// TestDevMemBeatsLowBandwidthPCIe and visible in fig8.
	ratio := float64(dev.NonGEMM) / float64(host.NonGEMM)
	if ratio < 1.2 {
		t.Fatalf("NUMA penalty too small on mini ViT: %.2f", ratio)
	}
}

func TestBuildSystemDriverRoundtrip(t *testing.T) {
	cfg := core.PCIe8GB()
	cfg.Name = "roundtrip"
	cfg.Functional = true
	sys, drv := BuildSystem(cfg)
	a := make([]int32, 32*32)
	b := make([]int32, 32*32)
	for i := range a {
		a[i] = int32(i % 7)
		b[i] = int32(i % 5)
	}
	var done bool
	drv.RunGEMM(driver.GEMMSpec{M: 32, N: 32, K: 32, A: a, B: b}, func(r driver.Result) {
		done = r.C != nil
	})
	sys.Run()
	if !done {
		t.Fatal("functional GEMM through BuildSystem failed")
	}
}

func TestTab4SmallestColumn(t *testing.T) {
	// Run just the smallest matrix of Table IV end to end.
	cfg := core.PCIe8GB()
	cfg.Name = "tab4test"
	d, sys, res := scenario.TimeGEMM(cfg, 64)
	if res.PagesMapped != 12 {
		t.Fatalf("pages = %d, want 12 (paper Table IV)", res.PagesMapped)
	}
	if sys.Stats.Lookup("tab4test.smmu.translations").Value() == 0 {
		t.Fatal("no translations recorded")
	}
	if d < sim.Microsecond {
		t.Fatalf("implausibly fast: %v", d)
	}
}
