package exp

// The golden conformance suite: canonical output rows for all nine
// experiments live under testdata/golden/ at the repository root, and
// this runner diffs freshly generated rows against them. Refactors
// that claim byte-identical output (the scenario layer, the sweep
// engine, the renderer) are held to that claim on every test run
// instead of by one-off manual checks. Regenerate the files with
//
//	UPDATE_GOLDEN=1 go test ./internal/exp -run TestGolden
//
// after a change that intentionally alters rows, and review the diff
// like any other code change.

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// goldenDir is the repository-root golden corpus.
const goldenDir = "../../testdata/golden"

// renderGolden formats one result the way the golden files store it:
// the exact table the experiment renders, headers, rows and notes.
func renderGolden(res *Result) []byte {
	var buf bytes.Buffer
	res.Fprint(&buf)
	return buf.Bytes()
}

// diffRows returns a human-readable first-difference report between
// got and want, or "" when identical.
func diffRows(got, want []byte) string {
	if bytes.Equal(got, want) {
		return ""
	}
	gotLines := strings.Split(string(got), "\n")
	wantLines := strings.Split(string(want), "\n")
	n := len(gotLines)
	if len(wantLines) < n {
		n = len(wantLines)
	}
	for i := 0; i < n; i++ {
		if gotLines[i] != wantLines[i] {
			return fmt.Sprintf("line %d:\n  got:  %q\n  want: %q", i+1, gotLines[i], wantLines[i])
		}
	}
	return fmt.Sprintf("line counts differ: got %d, want %d", len(gotLines), len(wantLines))
}

func TestGoldenRows(t *testing.T) {
	if testing.Short() {
		t.Skip("golden suite re-runs every experiment; skipped in -short")
	}
	if raceEnabled {
		t.Skip("golden suite under -race re-simulates for minutes without adding race coverage")
	}
	update := os.Getenv("UPDATE_GOLDEN") != ""
	opt := Options{}
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			expf, ok := ByID(id)
			if !ok {
				t.Fatalf("no experiment %q", id)
			}
			got := renderGolden(expf(opt))
			path := filepath.Join(goldenDir, id+".txt")
			if update {
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run UPDATE_GOLDEN=1 go test ./internal/exp -run TestGolden): %v", err)
			}
			if d := diffRows(got, want); d != "" {
				t.Errorf("%s output drifted from golden rows; %s", id, d)
			}
		})
	}
}

// TestGoldenDiffCatchesPerturbation pins the failure mode the suite
// exists for: a single perturbed cell must be reported, so a passing
// suite genuinely certifies byte identity.
func TestGoldenDiffCatchesPerturbation(t *testing.T) {
	want := []byte("== fig4: demo ==\n  64B  128B\n  1.000ms  2.000ms\n")
	got := []byte("== fig4: demo ==\n  64B  128B\n  1.000ms  2.001ms\n")
	if d := diffRows(got, want); d == "" {
		t.Fatal("perturbed row not detected")
	}
	if d := diffRows(want, want); d != "" {
		t.Fatalf("identical rows reported as drift: %s", d)
	}
}
