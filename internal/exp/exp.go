// Package exp regenerates every table and figure of the paper's
// evaluation (Section V): each experiment builds full systems, runs
// the sweep, and emits the same rows/series the paper reports, plus a
// shape check verifying the qualitative claim (who wins, where the
// knees/crossovers fall).
package exp

import (
	"fmt"
	"io"
	"strings"

	"accesys/internal/core"
	"accesys/internal/driver"
	"accesys/internal/sim"
	"accesys/internal/sweep"
)

// Options tune experiment scale and execution.
type Options struct {
	// Full runs paper-scale matrix sizes (2048); otherwise reduced
	// sizes keep runtimes interactive.
	Full bool
	// Verbose streams per-run progress lines to Out.
	Verbose bool
	// Out receives progress output (default: discard).
	Out io.Writer
	// Jobs bounds each experiment's sweep worker pool; <= 0 runs one
	// worker per CPU. Results are ordering-deterministic regardless.
	Jobs int
	// Cache, when non-nil, memoises completed runs on disk so repeated
	// invocations skip untouched design points.
	Cache *sweep.Cache
}

func (o Options) size(quick, full int) int {
	if o.Full {
		return full
	}
	return quick
}

func (o Options) logf(format string, args ...any) {
	if o.Verbose && o.Out != nil {
		fmt.Fprintf(o.Out, format, args...)
	}
}

// Result is one regenerated table/figure.
type Result struct {
	ID      string
	Title   string
	Headers []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a formatted row.
func (r *Result) AddRow(cells ...string) { r.Rows = append(r.Rows, cells) }

// Note appends a free-text note (shape checks, caveats).
func (r *Result) Note(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// Fprint renders the result as an aligned text table.
func (r *Result) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", r.ID, r.Title)
	widths := make([]int, len(r.Headers))
	for i, h := range r.Headers {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(r.Headers)
	for _, row := range r.Rows {
		line(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(w, "  # %s\n", n)
	}
	fmt.Fprintln(w)
}

// BuildSystem assembles a system together with its kernel driver, the
// standard front door for examples and experiments.
func BuildSystem(cfg core.Config) (*core.System, *driver.Driver) {
	sys := core.Build(cfg)
	dcfg := driver.Config{
		DMMode:     sys.Cfg.Access == core.DM,
		DevMemMode: sys.Cfg.Access == core.DevMem,
		NoIOMMU:    sys.Cfg.SMMU.Bypass,
	}
	drv := driver.New(sys.Cfg.Name+".driver", sys.EQ, sys.Stats, driver.Deps{
		EQ:        sys.EQ,
		MMIO:      sys.AttachHostPort("driver"),
		FuncHost:  sys.FuncHost(),
		FuncDev:   sys.FuncDev(),
		SMMU:      sys.SMMU,
		Accel:     sys.Accel,
		BARBase:   core.BARBase,
		HostRange: sys.Cfg.HostRange(),
		DevRange:  sys.Cfg.DevRange(),
		IOVABase:  core.IOVABase,
		Flush:     sys.FlushCaches,
	}, dcfg)
	return sys, drv
}

// sweepAll fans the experiment's points out over the engine and
// returns their outcomes in declaration order, streaming per-run
// progress when the options ask for it.
func (o Options) sweepAll(id string, points []sweep.Point) []sweep.Outcome {
	eng := &sweep.Engine{Jobs: o.Jobs, Cache: o.Cache}
	if o.Verbose && o.Out != nil {
		eng.OnResult = func(r sweep.Result) {
			if r.Cached {
				o.logf("%s: %s -> %v (cached)\n", id, r.Key, r.Outcome.Dur)
				return
			}
			o.logf("%s: %s -> %v (%.1fs wall)\n", id, r.Key, r.Outcome.Dur, r.Wall.Seconds())
		}
	}
	return eng.Run(points)
}

// gemmPoint wraps one timing-only n^3 GEMM under cfg as a sweep
// point. extract, when non-nil, pulls named metrics out of the
// finished system into the outcome (so they survive the result cache).
func gemmPoint(cfg core.Config, n int, extract func(*core.System, driver.Result) map[string]float64) sweep.Point {
	return sweep.Point{
		Key: cfg.Name,
		// The backend type tag keeps configs with interface-valued
		// backends that marshal alike from aliasing in the cache.
		Fingerprint: sweep.Fingerprint("gemm", cfg, n, fmt.Sprintf("%T", cfg.Accel.Backend)),
		Run: func() sweep.Outcome {
			d, sys, res := timeGEMM(cfg, n)
			out := sweep.Outcome{Dur: d}
			if extract != nil {
				out.Values = extract(sys, res)
			}
			return out
		},
	}
}

// timeGEMM builds the config, runs one timing-only n^3 GEMM, and
// returns the accelerator-visible duration plus the system for stats
// inspection.
func timeGEMM(cfg core.Config, n int) (sim.Tick, *core.System, driver.Result) {
	sys, drv := BuildSystem(cfg)
	var res driver.Result
	drv.RunGEMM(driver.GEMMSpec{M: n, N: n, K: n}, func(r driver.Result) { res = r })
	sys.Run()
	if res.Completed == 0 {
		panic(fmt.Sprintf("exp: GEMM under %s never completed", cfg.Name))
	}
	return res.Job.Duration(), sys, res
}

// All runs every experiment in paper order.
func All(opt Options) []*Result {
	return []*Result{
		Fig2Roofline(opt),
		Fig3BandwidthSweep(opt),
		Fig4PacketSize(opt),
		Fig5MemoryLocation(opt),
		Fig6MemSweep(opt),
		Tab4Translation(opt),
		Fig7Transformer(opt),
		Fig8Split(opt),
		Fig9Model(opt),
	}
}

// ByID resolves an experiment by its identifier.
func ByID(id string) (func(Options) *Result, bool) {
	m := map[string]func(Options) *Result{
		"fig2": Fig2Roofline,
		"fig3": Fig3BandwidthSweep,
		"fig4": Fig4PacketSize,
		"fig5": Fig5MemoryLocation,
		"fig6": Fig6MemSweep,
		"tab4": Tab4Translation,
		"fig7": Fig7Transformer,
		"fig8": Fig8Split,
		"fig9": Fig9Model,
	}
	f, ok := m[id]
	return f, ok
}

// IDs lists the experiment identifiers in paper order.
func IDs() []string {
	return []string{"fig2", "fig3", "fig4", "fig5", "fig6", "tab4", "fig7", "fig8", "fig9"}
}
