// Package exp regenerates every table and figure of the paper's
// evaluation (Section V). Each experiment's run matrix is declared as
// a scenario value in internal/scenario's built-in registry; this
// package fans the matrix out over the sweep engine and adds the
// figure-specific row shaping plus a shape check verifying the
// qualitative claim (who wins, where the knees/crossovers fall).
package exp

import (
	"accesys/internal/core"
	"accesys/internal/driver"
	"accesys/internal/scenario"
	"accesys/internal/sweep"
)

// Options tune experiment scale and execution; see scenario.Options.
type Options = scenario.Options

// Result is one regenerated table/figure; see scenario.Result.
type Result = scenario.Result

// BuildSystem assembles a system together with its kernel driver, the
// standard front door for examples and experiments.
func BuildSystem(cfg core.Config) (*core.System, *driver.Driver) {
	return scenario.BuildSystem(cfg)
}

// sweep expands the named built-in scenario for the options' scale,
// sweeps it, and returns the resolved runs with their outcomes in
// declaration order.
func sweepScenario(opt Options, id string) (*scenario.Scenario, []scenario.Run, []sweep.Outcome) {
	sc := scenario.MustBuiltin(id)
	runs, err := sc.Expand(opt.Full)
	if err != nil {
		// Built-in scenarios are validated by tests; a failure here is
		// a programming error.
		panic(err)
	}
	opt.Apply(runs)
	return sc, runs, opt.Sweep(sc.Name, sc.Points(runs))
}

// All runs every experiment in paper order.
func All(opt Options) []*Result {
	return []*Result{
		Fig2Roofline(opt),
		Fig3BandwidthSweep(opt),
		Fig4PacketSize(opt),
		Fig5MemoryLocation(opt),
		Fig6MemSweep(opt),
		Tab4Translation(opt),
		Fig7Transformer(opt),
		Fig8Split(opt),
		Fig9Model(opt),
	}
}

// ByID resolves an experiment by its identifier.
func ByID(id string) (func(Options) *Result, bool) {
	m := map[string]func(Options) *Result{
		"fig2": Fig2Roofline,
		"fig3": Fig3BandwidthSweep,
		"fig4": Fig4PacketSize,
		"fig5": Fig5MemoryLocation,
		"fig6": Fig6MemSweep,
		"tab4": Tab4Translation,
		"fig7": Fig7Transformer,
		"fig8": Fig8Split,
		"fig9": Fig9Model,
	}
	f, ok := m[id]
	return f, ok
}

// IDs lists the experiment identifiers in paper order.
func IDs() []string {
	return []string{"fig2", "fig3", "fig4", "fig5", "fig6", "tab4", "fig7", "fig8", "fig9"}
}

// Matrix exposes the built-in run matrix behind an experiment id to
// external harnesses (the cross-backend equivalence audit runs every
// reproduced figure through it). The returned scenario is a fresh
// copy; mutating it cannot disturb the experiment.
func Matrix(id string) (*scenario.Scenario, bool) {
	if _, ok := ByID(id); !ok {
		return nil, false
	}
	return scenario.Builtin(id)
}
