package exp

// Intra-point parallelism contract tests over the real fig2/fig4
// matrices (size-capped so the suite stays fast enough to run under
// -race, which is where the barrier protocol earns its keep):
// partitioned runs must be reproducible run-to-run, -domains 1 must be
// literally the sequential event loop, and the partitioned timing must
// stay inside the pinned divergence band of the sequential results the
// golden corpus protects.

import (
	"bytes"
	"fmt"
	"math"
	"testing"

	"accesys/internal/core"
	"accesys/internal/scenario"
	"accesys/internal/sweep"
)

// parBand is the pinned divergence band for partitioned runs with the
// timing-exact default quantum: the only systematic difference from
// the sequential loop is the flight latency annotated on the domain
// cuts, which observed runs keep well under 5%.
const parBand = 0.05

// miniMatrix expands a built-in scenario at quick scale and caps the
// GEMM size and point count so a full sweep stays in test-suite
// budget.
func miniMatrix(t *testing.T, id string) (*scenario.Scenario, []scenario.Run) {
	t.Helper()
	sc := scenario.MustBuiltin(id)
	runs, err := sc.Expand(false)
	if err != nil {
		t.Fatal(err)
	}
	for i := range runs {
		if runs[i].N > 64 {
			runs[i].N = 64
		}
	}
	if len(runs) > 6 {
		runs = runs[:6]
	}
	return sc, runs
}

// sweepMini runs the capped matrix under the given domain count.
func sweepMini(t *testing.T, id string, domains int) ([]scenario.Run, []sweep.Outcome) {
	t.Helper()
	sc, runs := miniMatrix(t, id)
	opt := Options{Jobs: 4, Domains: domains}
	opt.Apply(runs)
	return runs, opt.Sweep(fmt.Sprintf("%s-d%d", id, domains), sc.Points(runs))
}

// TestPartitionedRunsAreReproducible: for a fixed (domains, quantum),
// two executions of the fig2/fig4 matrices are byte-identical — the
// determinism half of the conservative scheme's contract.
func TestPartitionedRunsAreReproducible(t *testing.T) {
	for _, id := range []string{"fig2", "fig4"} {
		_, a := sweepMini(t, id, 4)
		_, b := sweepMini(t, id, 4)
		if !bytes.Equal(render(a), render(b)) {
			t.Fatalf("%s: partitioned rows differ across identical runs:\n%s---\n%s",
				id, render(a), render(b))
		}
	}
}

// TestDomainsOneIsTheSequentialLoop: -domains 1 must not merely
// approximate the sequential simulator — it must be it. No coordinator
// is built and the timing is bit-identical, which is what keeps the
// golden corpus authoritative for default runs.
func TestDomainsOneIsTheSequentialLoop(t *testing.T) {
	base, bSys, _ := scenario.TimeGEMM(core.PCIe8GB(), 64)
	cfg := core.PCIe8GB()
	cfg.Domains = 1
	one, oSys, _ := scenario.TimeGEMM(cfg, 64)
	if bSys.Par != nil || oSys.Par != nil {
		t.Fatal("sequential build constructed a parallel coordinator")
	}
	if base != one {
		t.Fatalf("Domains=1 duration %v differs from default %v", one, base)
	}
	var bStats, oStats bytes.Buffer
	if err := bSys.Stats.Dump(&bStats); err != nil {
		t.Fatal(err)
	}
	if err := oSys.Stats.Dump(&oStats); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bStats.Bytes(), oStats.Bytes()) {
		t.Fatal("Domains=1 stats dump differs from the default build")
	}
}

// TestPartitionedDivergenceWithinBand: the audited divergence of
// partitioned timing against the sequential results stays inside the
// pinned band on the fig2/fig4 matrices.
func TestPartitionedDivergenceWithinBand(t *testing.T) {
	for _, id := range []string{"fig2", "fig4"} {
		runs, seq := sweepMini(t, id, 1)
		_, par := sweepMini(t, id, 4)
		for i := range seq {
			s, p := float64(seq[i].Dur), float64(par[i].Dur)
			if s == 0 {
				t.Fatalf("%s point %s: zero sequential duration", id, runs[i].Key)
			}
			if rel := math.Abs(p-s) / s; rel > parBand {
				t.Errorf("%s point %s: partitioned %v vs sequential %v diverges %.2f%% (band %.0f%%)",
					id, runs[i].Key, par[i].Dur, seq[i].Dur, 100*rel, 100*parBand)
			}
		}
	}
}
