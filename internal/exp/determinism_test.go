package exp

// Determinism is the contract the parallel sweep engine ships on: a
// simulation run is a pure function of its configuration, so jobs=N
// output always equals sequential output and cached outcomes are
// interchangeable with fresh ones. These tests pin that contract.

import (
	"bytes"
	"fmt"
	"testing"

	"accesys/internal/core"
	"accesys/internal/scenario"
	"accesys/internal/sweep"
)

// miniPoints is a small but heterogeneous run matrix: every preset
// config at GEMM 64, the scale used throughout the fast tests.
func miniPoints() []sweep.Point {
	var points []sweep.Point
	for _, cfg := range []core.Config{core.PCIe2GB(), core.PCIe8GB(), core.PCIe64GB(), core.DevMemCfg()} {
		points = append(points, scenario.GEMMPoint(cfg, 64, nil))
	}
	bypass := core.PCIe8GB()
	bypass.Name = "mini-bypass"
	bypass.SMMU.Bypass = true
	points = append(points, scenario.GEMMPoint(bypass, 64, nil))
	return points
}

// render formats outcomes the way experiments build rows, so the
// comparison covers the exact strings that reach the report.
func render(outs []sweep.Outcome) []byte {
	var buf bytes.Buffer
	for i, o := range outs {
		fmt.Fprintf(&buf, "%d %d %.3f\n", i, o.Dur, o.Dur.Seconds()*1e3)
	}
	return buf.Bytes()
}

func TestSameConfigTwiceIsByteIdentical(t *testing.T) {
	run := func() ([]byte, []byte) {
		d, sys, _ := scenario.TimeGEMM(core.PCIe8GB(), 64)
		var stats bytes.Buffer
		if err := sys.Stats.Dump(&stats); err != nil {
			t.Fatal(err)
		}
		return []byte(d.String()), stats.Bytes()
	}
	d1, s1 := run()
	d2, s2 := run()
	if !bytes.Equal(d1, d2) {
		t.Fatalf("durations differ across identical runs: %s vs %s", d1, d2)
	}
	if !bytes.Equal(s1, s2) {
		t.Fatal("stats dumps differ across identical runs")
	}
}

func TestParallelSweepMatchesSequential(t *testing.T) {
	seq := Options{Jobs: 1}.Sweep("det-seq", miniPoints())
	par := Options{Jobs: 8}.Sweep("det-par", miniPoints())
	if !bytes.Equal(render(seq), render(par)) {
		t.Fatalf("parallel rows differ from sequential:\n%s---\n%s", render(seq), render(par))
	}
}

func TestCachedSweepMatchesFresh(t *testing.T) {
	cache, err := sweep.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	fresh := Options{Jobs: 4, Cache: cache}.Sweep("det-cold", miniPoints())
	if hits, misses, _ := cache.Stats(); hits != 0 || misses != len(miniPoints()) {
		t.Fatalf("cold run: %d hits %d misses", hits, misses)
	}
	warm := Options{Jobs: 4, Cache: cache}.Sweep("det-warm", miniPoints())
	if hits, _, _ := cache.Stats(); hits != len(miniPoints()) {
		t.Fatalf("warm run hit %d of %d points", hits, len(miniPoints()))
	}
	if !bytes.Equal(render(fresh), render(warm)) {
		t.Fatalf("cached rows differ from fresh:\n%s---\n%s", render(fresh), render(warm))
	}
}

func TestViTSimulationDeterministic(t *testing.T) {
	a := scenario.SimViT(core.PCIe8GB(), miniViT)
	b := scenario.SimViT(core.PCIe8GB(), miniViT)
	if a != b {
		t.Fatalf("identical ViT runs differ: %+v vs %+v", a, b)
	}
}

func TestExperimentDeterministicUnderJobs(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment in -short mode")
	}
	// Tab4's smallest sizes exercise the stats-extraction path (Values
	// round-tripping) as well as plain durations.
	seqRes := tab4Mini(t, Options{Jobs: 1})
	parRes := tab4Mini(t, Options{Jobs: 8})
	var seqBuf, parBuf bytes.Buffer
	seqRes.Fprint(&seqBuf)
	parRes.Fprint(&parBuf)
	if !bytes.Equal(seqBuf.Bytes(), parBuf.Bytes()) {
		t.Fatalf("tab4 rows differ between jobs=1 and jobs=8:\n%s---\n%s", seqBuf.String(), parBuf.String())
	}
}

// tab4Mini runs the Table IV point pair at n=64 through a
// programmatically built scenario using the same extraction groups the
// real experiment declares.
func tab4Mini(t *testing.T, opt Options) *Result {
	t.Helper()
	sc := &scenario.Scenario{
		Name:     "tab4mini",
		Title:    "mini",
		Base:     "pcie8gb",
		Workload: scenario.Workload{Kind: "gemm"},
		Axes: []scenario.Axis{
			{Name: "size", Values: []scenario.Value{64}},
			{Name: "smmu_bypass", Values: []scenario.Value{false, true}},
		},
		Metrics: []string{"pages", "smmu"},
	}
	runs, err := sc.Expand(opt.Full)
	if err != nil {
		t.Fatal(err)
	}
	outs := opt.Sweep("tab4mini", sc.Points(runs))
	trans, bypass := outs[0], outs[1]
	r := &Result{ID: "tab4mini", Title: "mini", Headers: []string{"metric", "64"}}
	r.AddRow("pages", fmt.Sprintf("%d", int(trans.Value("pages"))))
	r.AddRow("translations", fmt.Sprintf("%.0f", trans.Value("translations")))
	r.AddRow("overhead", fmt.Sprintf("%.2f%%",
		100*(float64(trans.Dur)-float64(bypass.Dur))/float64(bypass.Dur)))
	return r
}
