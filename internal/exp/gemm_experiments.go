package exp

import (
	"fmt"

	"accesys/internal/analytic"
	"accesys/internal/sim"
)

// Fig2Roofline reproduces Fig. 2: fixed 8 GB/s PCIe, sweep the
// systolic array's per-tile computation time, report normalized
// execution time with the memory/compute-bound knee.
func Fig2Roofline(opt Options) *Result {
	sc, _, outs := sweepScenario(opt, "fig2")
	n := sc.SizeFor(opt.Full)
	r := &Result{
		ID:      sc.Name,
		Title:   sc.TitleFor(opt.Full),
		Headers: []string{"compute_ns/tile", "exec_ms", "normalized"},
	}

	overrides := sc.AxisNumbers("compute_ns", opt.Full)
	var minT sim.Tick = sim.MaxTick
	for _, o := range outs {
		if o.Dur < minT {
			minT = o.Dur
		}
	}
	for i, ov := range overrides {
		label := fmt.Sprintf("%g", ov)
		if ov == 0 {
			label = "model"
		}
		r.AddRow(label,
			fmt.Sprintf("%.3f", outs[i].Dur.Seconds()*1e3),
			fmt.Sprintf("%.3f", float64(outs[i].Dur)/float64(minT)))
	}

	// Shape check: plateau at small compute times, linear growth at
	// large ones; knee where tiles*override crosses the plateau.
	tiles := (n / 16) * (n / 16)
	plateau := outs[1].Dur
	knee := float64(plateau) / float64(tiles) / float64(sim.Nanosecond)
	r.Note("paper: plateau below ~1500 ns/tile, linear above (knee marks memory->compute bound transition)")
	r.Note("measured: transfer-bound plateau %.3f ms; knee at ~%.0f ns/tile; largest/smallest = %.1fx",
		plateau.Seconds()*1e3, knee, float64(outs[len(outs)-1].Dur)/float64(minT))
	model := analytic.Roofline{Tiles: tiles, TransferNs: plateau.Nanoseconds()}
	r.Note("analytic roofline knee: %.0f ns/tile", model.KneeNs())
	return r
}

// Fig3BandwidthSweep reproduces Fig. 3: execution time across lane
// counts {2,4,8,16} x per-lane rates {2..64 Gbps}. The whole table is
// the scenario's declared pivot; only the saturation check is code.
func Fig3BandwidthSweep(opt Options) *Result {
	sc, runs, outs := sweepScenario(opt, "fig3")
	r, err := sc.Render(opt.Full, runs, outs)
	if err != nil {
		panic(err)
	}

	var slowest, fastest sim.Tick
	for _, o := range outs {
		if slowest == 0 || o.Dur > slowest {
			slowest = o.Dur
		}
		if fastest == 0 || o.Dur < fastest {
			fastest = o.Dur
		}
	}
	r.Note("paper: highest bandwidth outperforms lowest by up to 1109.9%%; scaling saturates when compute-bound")
	r.Note("measured: slowest/fastest = %.1fx (%.0f%%)",
		float64(slowest)/float64(fastest), 100*(float64(slowest)/float64(fastest)-1))
	return r
}

// Fig4PacketSize reproduces Fig. 4: execution time vs DMA request
// packet size for several link bandwidths. The table is the scenario's
// declared pivot — `accesys sweep` on the fig4 manifest reaches the
// identical renderer, which is what makes its rows byte-identical.
func Fig4PacketSize(opt Options) *Result {
	sc, runs, outs := sweepScenario(opt, "fig4")
	r, err := sc.Render(opt.Full, runs, outs)
	if err != nil {
		panic(err)
	}

	sizes := sc.AxisNumbers("packet_bytes", opt.Full)
	bandwidths := sc.AxisLen("link", opt.Full)
	convexOK := true
	for bi := 0; bi < bandwidths; bi++ {
		var t64, t256, t4096 sim.Tick
		for si, sz := range sizes {
			d := outs[bi*len(sizes)+si].Dur
			switch sz {
			case 64:
				t64 = d
			case 256:
				t256 = d
			case 4096:
				t4096 = d
			}
		}
		if !(t256 < t64 && t256 < t4096) {
			convexOK = false
		}
	}
	r.Note("paper: convex curve, optimum ~256 B; 64 B costs +12%%, 4096 B +36%% vs optimum")
	r.Note("measured: convex (both extremes slower than 256 B) across all bandwidths = %v", convexOK)
	return r
}

// Fig5MemoryLocation reproduces Fig. 5: normalized speedup of DevMem
// vs host-side memory (2 and 64 GB/s PCIe) across memory technologies,
// normalized to DDR4 device-side.
func Fig5MemoryLocation(opt Options) *Result {
	sc, _, outs := sweepScenario(opt, "fig5")
	r := &Result{
		ID:      sc.Name,
		Title:   sc.TitleFor(opt.Full),
		Headers: []string{"memory", "DevMem", "host PCIe-2GB/s", "host PCIe-64GB/s"},
	}

	// Matrix order: memory technology outer, placement
	// (devmem/pcie2gb/pcie64gb) inner.
	techs := sc.AxisStrings("mem", opt.Full)
	devT := make(map[string]sim.Tick)
	host2T := make(map[string]sim.Tick)
	host64T := make(map[string]sim.Tick)
	for i, tech := range techs {
		devT[tech] = outs[3*i].Dur
		host2T[tech] = outs[3*i+1].Dur
		host64T[tech] = outs[3*i+2].Dur
	}

	base := float64(devT["DDR4-2400"])
	speedup := func(t sim.Tick) string { return fmt.Sprintf("%.2f", base/float64(t)) }
	for _, tech := range techs {
		r.AddRow(tech, speedup(devT[tech]), speedup(host2T[tech]), speedup(host64T[tech]))
	}

	okAll := true
	for _, tech := range techs {
		if !(devT[tech] <= host2T[tech]) {
			okAll = false
		}
	}
	frac := float64(devT["HBM2-2000"]) / float64(host64T["HBM2-2000"])
	r.Note("paper: DevMem always beats host-side; 64 GB/s PCIe reaches ~78%% of DevMem performance")
	r.Note("measured: DevMem >= host(2GB/s) for all techs = %v; host@64GB/s reaches %.0f%% of DevMem (HBM2)",
		okAll, 100*frac)
	return r
}

// Fig6MemSweep reproduces Fig. 6: host memory bandwidth sweep (a) and
// latency sweep (b) using the fixed-latency SimpleMem model behind a
// 64 GB/s link.
func Fig6MemSweep(opt Options) *Result {
	sc, _, outs := sweepScenario(opt, "fig6")
	r := &Result{
		ID:      sc.Name,
		Title:   sc.TitleFor(opt.Full),
		Headers: []string{"sweep", "value", "exec_ms", "normalized"},
	}

	// The scenario's simplemem axis lists the bandwidth sweep (at a
	// fixed latency) followed by the latency sweep; derive the value
	// lists and the split point from the axis itself so registry.go
	// stays the single source of truth.
	points := sc.AxisObjects("simplemem", opt.Full)
	split := len(points)
	for i, p := range points {
		if p["latency_ns"] != points[0]["latency_ns"] {
			split = i
			break
		}
	}
	bwOuts, latOuts := outs[:split], outs[split:]

	base := bwOuts[len(bwOuts)-1].Dur
	for i, p := range points[:split] {
		r.AddRow("bandwidth", fmt.Sprintf("%gGB/s", p["bandwidth_gbps"]),
			fmt.Sprintf("%.3f", bwOuts[i].Dur.Seconds()*1e3),
			fmt.Sprintf("%.3f", float64(bwOuts[i].Dur)/float64(base)))
	}
	latBase := latOuts[0].Dur
	for i, p := range points[split:] {
		r.AddRow("latency", fmt.Sprintf("%gns", p["latency_ns"]),
			fmt.Sprintf("%.3f", latOuts[i].Dur.Seconds()*1e3),
			fmt.Sprintf("%.3f", float64(latOuts[i].Dur)/float64(latBase)))
	}

	bwGain := 1 - float64(bwOuts[len(bwOuts)-1].Dur)/float64(bwOuts[0].Dur)
	latLoss := float64(latOuts[len(latOuts)-1].Dur)/float64(latOuts[0].Dur) - 1
	r.Note("paper: bandwidth improves performance ~60%% and saturates past ~100 GB/s; latency adds only ~4.9%%")
	r.Note("measured: bandwidth 8->256 GB/s improves %.0f%%; latency 1->36 ns costs %.1f%%",
		100*bwGain, 100*latLoss)
	return r
}

// Tab4Translation reproduces Table IV: SMMU statistics across matrix
// sizes. The scenario declares two runs per size — translated (with
// SMMU metrics extracted into the outcome) and the same job with the
// SMMU bypassed — so overhead is measured the honest way, comparing
// end-to-end times.
func Tab4Translation(opt Options) *Result {
	sc, _, outs := sweepScenario(opt, "tab4")
	sizes := sc.AxisNumbers("size", opt.Full)
	r := &Result{
		ID:      sc.Name,
		Title:   sc.TitleFor(opt.Full),
		Headers: []string{"metric"},
	}
	for _, n := range sizes {
		r.Headers = append(r.Headers, fmt.Sprintf("%g", n))
	}

	type row struct {
		pages     int
		trans     float64
		transMean float64
		ptws      float64
		ptwMean   float64
		utlbLook  float64
		utlbMiss  float64
		overhead  float64
	}
	var rows []row
	for i, n := range sizes {
		trans, bypass := outs[2*i], outs[2*i+1]
		rows = append(rows, row{
			pages:     int(trans.Value("pages")),
			trans:     trans.Value("translations"),
			transMean: trans.Value("trans_ns"),
			ptws:      trans.Value("ptws"),
			ptwMean:   trans.Value("ptw_ns"),
			utlbLook:  trans.Value("utlb_lookups"),
			utlbMiss:  trans.Value("utlb_misses"),
			overhead:  100 * (float64(trans.Dur) - float64(bypass.Dur)) / float64(bypass.Dur),
		})
		opt.Logf("tab4: n=%g pages=%d trans=%.0f overhead=%.2f%%\n",
			n, rows[len(rows)-1].pages, rows[len(rows)-1].trans, rows[len(rows)-1].overhead)
	}

	add := func(name string, f func(row) string) {
		cells := []string{name}
		for _, rw := range rows {
			cells = append(cells, f(rw))
		}
		r.AddRow(cells...)
	}
	add("Memory Footprint (Pages)", func(rw row) string { return fmt.Sprintf("%d", rw.pages) })
	add("Translation Times", func(rw row) string { return fmt.Sprintf("%.0f", rw.trans) })
	add("Trans Mean Time (cyc)", func(rw row) string { return fmt.Sprintf("%.2f", rw.transMean) })
	add("PTW Times", func(rw row) string { return fmt.Sprintf("%.0f", rw.ptws) })
	add("PTW Mean Time (cyc)", func(rw row) string { return fmt.Sprintf("%.2f", rw.ptwMean) })
	add("uTLB Lookup times", func(rw row) string { return fmt.Sprintf("%.0f", rw.utlbLook) })
	add("uTLB Misses times", func(rw row) string { return fmt.Sprintf("%.0f", rw.utlbMiss) })
	add("Trans Overhead", func(rw row) string { return fmt.Sprintf("%.2f%%", rw.overhead) })

	r.Note("paper (2048): 12288 pages, 68.4M translations, PTW mean 368 cyc, overhead U-shaped 6%% -> 1%% -> 6.5%%")
	r.Note("measured: footprint = 3 x N^2 x 4 B / 4 KiB pages exactly; translation counts scale with streamed bursts")
	return r
}
