package exp

import (
	"fmt"

	"accesys/internal/analytic"
	"accesys/internal/core"
	"accesys/internal/dram"
	"accesys/internal/driver"
	"accesys/internal/pcie"
	"accesys/internal/sim"
	"accesys/internal/sweep"
)

// Fig2Roofline reproduces Fig. 2: fixed 8 GB/s PCIe, sweep the
// systolic array's per-tile computation time, report normalized
// execution time with the memory/compute-bound knee.
func Fig2Roofline(opt Options) *Result {
	n := opt.size(512, 1024)
	r := &Result{
		ID:      "fig2",
		Title:   fmt.Sprintf("Roofline: GEMM %d, PCIe 8 GB/s, sweep per-tile compute time", n),
		Headers: []string{"compute_ns/tile", "exec_ms", "normalized"},
	}

	overrides := []sim.Tick{0, 100, 200, 400, 800, 1500, 3000, 6000, 12000}
	points := make([]sweep.Point, len(overrides))
	for i, ov := range overrides {
		cfg := core.PCIe8GB()
		cfg.Name = fmt.Sprintf("fig2-%d", ov)
		cfg.Accel.ComputeOverride = ov * sim.Nanosecond
		points[i] = gemmPoint(cfg, n, nil)
	}
	outs := opt.sweepAll("fig2", points)

	var minT sim.Tick = sim.MaxTick
	for _, o := range outs {
		if o.Dur < minT {
			minT = o.Dur
		}
	}
	for i, ov := range overrides {
		label := fmt.Sprintf("%d", ov)
		if ov == 0 {
			label = "model"
		}
		r.AddRow(label,
			fmt.Sprintf("%.3f", outs[i].Dur.Seconds()*1e3),
			fmt.Sprintf("%.3f", float64(outs[i].Dur)/float64(minT)))
	}

	// Shape check: plateau at small compute times, linear growth at
	// large ones; knee where tiles*override crosses the plateau.
	tiles := (n / 16) * (n / 16)
	plateau := outs[1].Dur
	knee := float64(plateau) / float64(tiles) / float64(sim.Nanosecond)
	r.Note("paper: plateau below ~1500 ns/tile, linear above (knee marks memory->compute bound transition)")
	r.Note("measured: transfer-bound plateau %.3f ms; knee at ~%.0f ns/tile; largest/smallest = %.1fx",
		plateau.Seconds()*1e3, knee, float64(outs[len(outs)-1].Dur)/float64(minT))
	model := analytic.Roofline{Tiles: tiles, TransferNs: plateau.Nanoseconds()}
	r.Note("analytic roofline knee: %.0f ns/tile", model.KneeNs())
	return r
}

// Fig3BandwidthSweep reproduces Fig. 3: execution time across lane
// counts {2,4,8,16} x per-lane rates {2..64 Gbps}.
func Fig3BandwidthSweep(opt Options) *Result {
	n := opt.size(512, 2048)
	r := &Result{
		ID:      "fig3",
		Title:   fmt.Sprintf("PCIe bandwidth sweep, GEMM %d (paper: 2048)", n),
		Headers: []string{"lanes", "2Gbps", "4Gbps", "8Gbps", "16Gbps", "32Gbps", "64Gbps"},
	}
	speeds := []float64{2, 4, 8, 16, 32, 64}
	lanes := []int{2, 4, 8, 16}

	var points []sweep.Point
	for _, l := range lanes {
		for _, s := range speeds {
			cfg := core.PCIe8GB()
			cfg.Name = fmt.Sprintf("fig3-%dx%g", l, s)
			cfg.PCIe = pcie.Config{Link: pcie.LinkConfig{Lanes: l, LaneGbps: s}}
			points = append(points, gemmPoint(cfg, n, nil))
		}
	}
	outs := opt.sweepAll("fig3", points)

	var slowest, fastest sim.Tick
	for li, l := range lanes {
		row := []string{fmt.Sprintf("%d", l)}
		for si := range speeds {
			d := outs[li*len(speeds)+si].Dur
			row = append(row, fmt.Sprintf("%.3fms", d.Seconds()*1e3))
			if slowest == 0 || d > slowest {
				slowest = d
			}
			if fastest == 0 || d < fastest {
				fastest = d
			}
		}
		r.Rows = append(r.Rows, row)
	}
	r.Note("paper: highest bandwidth outperforms lowest by up to 1109.9%%; scaling saturates when compute-bound")
	r.Note("measured: slowest/fastest = %.1fx (%.0f%%)",
		float64(slowest)/float64(fastest), 100*(float64(slowest)/float64(fastest)-1))
	return r
}

// Fig4PacketSize reproduces Fig. 4: execution time vs DMA request
// packet size for several link bandwidths.
func Fig4PacketSize(opt Options) *Result {
	n := opt.size(512, 2048)
	r := &Result{
		ID:      "fig4",
		Title:   fmt.Sprintf("Packet size sweep, GEMM %d", n),
		Headers: []string{"GB/s", "64B", "128B", "256B", "512B", "1024B", "2048B", "4096B"},
	}
	sizes := []int{64, 128, 256, 512, 1024, 2048, 4096}
	bandwidths := []float64{4, 8, 16, 32, 64}
	lanesFor := map[float64]int{4: 4, 8: 8, 16: 16, 32: 16, 64: 16}

	var points []sweep.Point
	for _, gbps := range bandwidths {
		for _, sz := range sizes {
			cfg := core.PCIe8GB()
			cfg.Name = fmt.Sprintf("fig4-%g-%d", gbps, sz)
			cfg.PCIe = pcie.Config{Link: pcie.LinkForGBps(gbps, lanesFor[gbps])}
			cfg.Accel.HostDMA.BurstBytes = sz
			points = append(points, gemmPoint(cfg, n, nil))
		}
	}
	outs := opt.sweepAll("fig4", points)

	convexOK := true
	for bi, gbps := range bandwidths {
		row := []string{fmt.Sprintf("%g", gbps)}
		var t64, t256, t4096 sim.Tick
		for si, sz := range sizes {
			d := outs[bi*len(sizes)+si].Dur
			row = append(row, fmt.Sprintf("%.3fms", d.Seconds()*1e3))
			switch sz {
			case 64:
				t64 = d
			case 256:
				t256 = d
			case 4096:
				t4096 = d
			}
		}
		if !(t256 < t64 && t256 < t4096) {
			convexOK = false
		}
		r.Rows = append(r.Rows, row)
	}
	r.Note("paper: convex curve, optimum ~256 B; 64 B costs +12%%, 4096 B +36%% vs optimum")
	r.Note("measured: convex (both extremes slower than 256 B) across all bandwidths = %v", convexOK)
	return r
}

// Fig5MemoryLocation reproduces Fig. 5: normalized speedup of DevMem
// vs host-side memory (2 and 64 GB/s PCIe) across memory technologies,
// normalized to DDR4 device-side.
func Fig5MemoryLocation(opt Options) *Result {
	n := opt.size(512, 1024)
	r := &Result{
		ID:      "fig5",
		Title:   fmt.Sprintf("Memory type and location, GEMM %d (speedup vs DDR4 DevMem)", n),
		Headers: []string{"memory", "DevMem", "host PCIe-2GB/s", "host PCIe-64GB/s"},
	}
	techs := []dram.Spec{dram.DDR4_2400, dram.HBM2_2000, dram.GDDR5_2000, dram.LPDDR5_6400}

	// Three placements per technology, declared dev/host2/host64.
	var points []sweep.Point
	for _, spec := range techs {
		devCfg := core.DevMemCfg()
		devCfg.Name = "fig5-dev-" + spec.Name
		devCfg.DevSpec = spec
		points = append(points, gemmPoint(devCfg, n, nil))

		h2 := core.PCIe2GB()
		h2.Name = "fig5-h2-" + spec.Name
		h2.HostSpec = spec
		points = append(points, gemmPoint(h2, n, nil))

		h64 := core.PCIe64GB()
		h64.Name = "fig5-h64-" + spec.Name
		h64.HostSpec = spec
		points = append(points, gemmPoint(h64, n, nil))
	}
	outs := opt.sweepAll("fig5", points)

	devT := make(map[string]sim.Tick)
	host2T := make(map[string]sim.Tick)
	host64T := make(map[string]sim.Tick)
	for i, spec := range techs {
		devT[spec.Name] = outs[3*i].Dur
		host2T[spec.Name] = outs[3*i+1].Dur
		host64T[spec.Name] = outs[3*i+2].Dur
	}

	base := float64(devT[dram.DDR4_2400.Name])
	speedup := func(t sim.Tick) string { return fmt.Sprintf("%.2f", base/float64(t)) }
	for _, spec := range techs {
		r.AddRow(spec.Name, speedup(devT[spec.Name]), speedup(host2T[spec.Name]), speedup(host64T[spec.Name]))
	}

	okAll := true
	for _, spec := range techs {
		if !(devT[spec.Name] <= host2T[spec.Name]) {
			okAll = false
		}
	}
	frac := float64(devT[dram.HBM2_2000.Name]) / float64(host64T[dram.HBM2_2000.Name])
	r.Note("paper: DevMem always beats host-side; 64 GB/s PCIe reaches ~78%% of DevMem performance")
	r.Note("measured: DevMem >= host(2GB/s) for all techs = %v; host@64GB/s reaches %.0f%% of DevMem (HBM2)",
		okAll, 100*frac)
	return r
}

// Fig6MemSweep reproduces Fig. 6: host memory bandwidth sweep (a) and
// latency sweep (b) using the fixed-latency SimpleMem model behind a
// 64 GB/s link.
func Fig6MemSweep(opt Options) *Result {
	n := opt.size(1024, 2048)
	r := &Result{
		ID:      "fig6",
		Title:   fmt.Sprintf("Host memory bandwidth/latency sweeps, GEMM %d (SimpleMem)", n),
		Headers: []string{"sweep", "value", "exec_ms", "normalized"},
	}

	point := func(latNs float64, bw float64) sweep.Point {
		cfg := core.PCIe64GB()
		cfg.Name = fmt.Sprintf("fig6-%g-%g", latNs, bw)
		cfg.HostSimple = &core.SimpleMemParams{
			Latency:       sim.TicksFromNanoseconds(latNs),
			BandwidthGBps: bw,
		}
		// Keep the systolic array fast so memory (not compute) is the
		// studied bottleneck, as in the paper's HBM case study.
		cfg.Accel.ComputeOverride = 100 * sim.Nanosecond
		return gemmPoint(cfg, n, nil)
	}

	bws := []float64{8, 16, 32, 50, 64, 100, 128, 256}
	lats := []float64{1, 6, 12, 18, 24, 30, 36}
	var points []sweep.Point
	for _, bw := range bws {
		points = append(points, point(30, bw))
	}
	for _, lat := range lats {
		points = append(points, point(lat, 64))
	}
	outs := opt.sweepAll("fig6", points)
	bwOuts, latOuts := outs[:len(bws)], outs[len(bws):]

	base := bwOuts[len(bwOuts)-1].Dur
	for i, bw := range bws {
		r.AddRow("bandwidth", fmt.Sprintf("%gGB/s", bw),
			fmt.Sprintf("%.3f", bwOuts[i].Dur.Seconds()*1e3),
			fmt.Sprintf("%.3f", float64(bwOuts[i].Dur)/float64(base)))
	}
	latBase := latOuts[0].Dur
	for i, lat := range lats {
		r.AddRow("latency", fmt.Sprintf("%gns", lat),
			fmt.Sprintf("%.3f", latOuts[i].Dur.Seconds()*1e3),
			fmt.Sprintf("%.3f", float64(latOuts[i].Dur)/float64(latBase)))
	}

	bwGain := 1 - float64(bwOuts[len(bwOuts)-1].Dur)/float64(bwOuts[0].Dur)
	latLoss := float64(latOuts[len(latOuts)-1].Dur)/float64(latOuts[0].Dur) - 1
	r.Note("paper: bandwidth improves performance ~60%% and saturates past ~100 GB/s; latency adds only ~4.9%%")
	r.Note("measured: bandwidth 8->256 GB/s improves %.0f%%; latency 1->36 ns costs %.1f%%",
		100*bwGain, 100*latLoss)
	return r
}

// tab4Points declares two points per matrix size: the translated run
// (with its SMMU stats extracted into the outcome) and the same job
// with the SMMU bypassed — overhead is measured the honest way,
// comparing end-to-end times.
func tab4Points(sizes []int) []sweep.Point {
	var points []sweep.Point
	for _, n := range sizes {
		cfg := core.PCIe8GB()
		cfg.Name = fmt.Sprintf("tab4-%d", n)
		pre := cfg.Name + ".smmu."
		points = append(points, gemmPoint(cfg, n,
			func(sys *core.System, res driver.Result) map[string]float64 {
				look := sys.Stats.Lookup
				return map[string]float64{
					"pages":        float64(res.PagesMapped),
					"translations": look(pre + "translations").Value(),
					"trans_ns":     look(pre + "trans_ns").Value(),
					"ptws":         look(pre + "ptws").Value(),
					"ptw_ns":       look(pre + "ptw_ns").Value(),
					"utlb_lookups": look(pre + "utlb_lookups").Value(),
					"utlb_misses":  look(pre + "utlb_misses").Value(),
				}
			}))

		bypass := core.PCIe8GB()
		bypass.Name = fmt.Sprintf("tab4b-%d", n)
		bypass.SMMU.Bypass = true
		points = append(points, gemmPoint(bypass, n, nil))
	}
	return points
}

// Tab4Translation reproduces Table IV: SMMU statistics across matrix
// sizes.
func Tab4Translation(opt Options) *Result {
	sizes := []int{64, 128, 256, 512, 1024}
	if opt.Full {
		sizes = append(sizes, 2048)
	}
	r := &Result{
		ID:      "tab4",
		Title:   "Address translation statistics (SMMU), DC access method",
		Headers: []string{"metric"},
	}
	for _, n := range sizes {
		r.Headers = append(r.Headers, fmt.Sprintf("%d", n))
	}

	outs := opt.sweepAll("tab4", tab4Points(sizes))

	type row struct {
		pages     int
		trans     float64
		transMean float64
		ptws      float64
		ptwMean   float64
		utlbLook  float64
		utlbMiss  float64
		overhead  float64
	}
	var rows []row
	for i, n := range sizes {
		trans, bypass := outs[2*i], outs[2*i+1]
		rows = append(rows, row{
			pages:     int(trans.Value("pages")),
			trans:     trans.Value("translations"),
			transMean: trans.Value("trans_ns"),
			ptws:      trans.Value("ptws"),
			ptwMean:   trans.Value("ptw_ns"),
			utlbLook:  trans.Value("utlb_lookups"),
			utlbMiss:  trans.Value("utlb_misses"),
			overhead:  100 * (float64(trans.Dur) - float64(bypass.Dur)) / float64(bypass.Dur),
		})
		opt.logf("tab4: n=%d pages=%d trans=%.0f overhead=%.2f%%\n",
			n, rows[len(rows)-1].pages, rows[len(rows)-1].trans, rows[len(rows)-1].overhead)
	}

	add := func(name string, f func(row) string) {
		cells := []string{name}
		for _, rw := range rows {
			cells = append(cells, f(rw))
		}
		r.AddRow(cells...)
	}
	add("Memory Footprint (Pages)", func(rw row) string { return fmt.Sprintf("%d", rw.pages) })
	add("Translation Times", func(rw row) string { return fmt.Sprintf("%.0f", rw.trans) })
	add("Trans Mean Time (cyc)", func(rw row) string { return fmt.Sprintf("%.2f", rw.transMean) })
	add("PTW Times", func(rw row) string { return fmt.Sprintf("%.0f", rw.ptws) })
	add("PTW Mean Time (cyc)", func(rw row) string { return fmt.Sprintf("%.2f", rw.ptwMean) })
	add("uTLB Lookup times", func(rw row) string { return fmt.Sprintf("%.0f", rw.utlbLook) })
	add("uTLB Misses times", func(rw row) string { return fmt.Sprintf("%.0f", rw.utlbMiss) })
	add("Trans Overhead", func(rw row) string { return fmt.Sprintf("%.2f%%", rw.overhead) })

	r.Note("paper (2048): 12288 pages, 68.4M translations, PTW mean 368 cyc, overhead U-shaped 6%% -> 1%% -> 6.5%%")
	r.Note("measured: footprint = 3 x N^2 x 4 B / 4 KiB pages exactly; translation counts scale with streamed bursts")
	return r
}
