package exp

import (
	"fmt"

	"accesys/internal/analytic"
	"accesys/internal/core"
	"accesys/internal/dram"
	"accesys/internal/pcie"
	"accesys/internal/sim"
)

// Fig2Roofline reproduces Fig. 2: fixed 8 GB/s PCIe, sweep the
// systolic array's per-tile computation time, report normalized
// execution time with the memory/compute-bound knee.
func Fig2Roofline(opt Options) *Result {
	n := opt.size(512, 1024)
	r := &Result{
		ID:      "fig2",
		Title:   fmt.Sprintf("Roofline: GEMM %d, PCIe 8 GB/s, sweep per-tile compute time", n),
		Headers: []string{"compute_ns/tile", "exec_ms", "normalized"},
	}

	overrides := []sim.Tick{0, 100, 200, 400, 800, 1500, 3000, 6000, 12000}
	var times []sim.Tick
	var minT sim.Tick = sim.MaxTick
	for _, ov := range overrides {
		cfg := core.PCIe8GB()
		cfg.Name = fmt.Sprintf("fig2-%d", ov)
		cfg.Accel.ComputeOverride = ov * sim.Nanosecond
		d, _, _ := timeGEMM(cfg, n)
		times = append(times, d)
		if d < minT {
			minT = d
		}
		opt.logf("fig2: override=%dns time=%v\n", ov, d)
	}
	for i, ov := range overrides {
		label := fmt.Sprintf("%d", ov)
		if ov == 0 {
			label = "model"
		}
		r.AddRow(label,
			fmt.Sprintf("%.3f", times[i].Seconds()*1e3),
			fmt.Sprintf("%.3f", float64(times[i])/float64(minT)))
	}

	// Shape check: plateau at small compute times, linear growth at
	// large ones; knee where tiles*override crosses the plateau.
	tiles := (n / 16) * (n / 16)
	plateau := times[1]
	knee := float64(plateau) / float64(tiles) / float64(sim.Nanosecond)
	r.Note("paper: plateau below ~1500 ns/tile, linear above (knee marks memory->compute bound transition)")
	r.Note("measured: transfer-bound plateau %.3f ms; knee at ~%.0f ns/tile; largest/smallest = %.1fx",
		plateau.Seconds()*1e3, knee, float64(times[len(times)-1])/float64(minT))
	model := analytic.Roofline{Tiles: tiles, TransferNs: plateau.Nanoseconds()}
	r.Note("analytic roofline knee: %.0f ns/tile", model.KneeNs())
	return r
}

// Fig3BandwidthSweep reproduces Fig. 3: execution time across lane
// counts {2,4,8,16} x per-lane rates {2..64 Gbps}.
func Fig3BandwidthSweep(opt Options) *Result {
	n := opt.size(512, 2048)
	r := &Result{
		ID:      "fig3",
		Title:   fmt.Sprintf("PCIe bandwidth sweep, GEMM %d (paper: 2048)", n),
		Headers: []string{"lanes", "2Gbps", "4Gbps", "8Gbps", "16Gbps", "32Gbps", "64Gbps"},
	}
	speeds := []float64{2, 4, 8, 16, 32, 64}
	lanes := []int{2, 4, 8, 16}

	var slowest, fastest sim.Tick
	for _, l := range lanes {
		row := []string{fmt.Sprintf("%d", l)}
		for _, s := range speeds {
			cfg := core.PCIe8GB()
			cfg.Name = fmt.Sprintf("fig3-%dx%g", l, s)
			cfg.PCIe = pcie.Config{Link: pcie.LinkConfig{Lanes: l, LaneGbps: s}}
			d, _, _ := timeGEMM(cfg, n)
			row = append(row, fmt.Sprintf("%.3fms", d.Seconds()*1e3))
			if slowest == 0 || d > slowest {
				slowest = d
			}
			if fastest == 0 || d < fastest {
				fastest = d
			}
			opt.logf("fig3: %dx%gGbps -> %v\n", l, s, d)
		}
		r.Rows = append(r.Rows, row)
	}
	r.Note("paper: highest bandwidth outperforms lowest by up to 1109.9%%; scaling saturates when compute-bound")
	r.Note("measured: slowest/fastest = %.1fx (%.0f%%)",
		float64(slowest)/float64(fastest), 100*(float64(slowest)/float64(fastest)-1))
	return r
}

// Fig4PacketSize reproduces Fig. 4: execution time vs DMA request
// packet size for several link bandwidths.
func Fig4PacketSize(opt Options) *Result {
	n := opt.size(512, 2048)
	r := &Result{
		ID:      "fig4",
		Title:   fmt.Sprintf("Packet size sweep, GEMM %d", n),
		Headers: []string{"GB/s", "64B", "128B", "256B", "512B", "1024B", "2048B", "4096B"},
	}
	sizes := []int{64, 128, 256, 512, 1024, 2048, 4096}
	lanesFor := map[float64]int{4: 4, 8: 8, 16: 16, 32: 16, 64: 16}

	convexOK := true
	for _, gbps := range []float64{4, 8, 16, 32, 64} {
		row := []string{fmt.Sprintf("%g", gbps)}
		var t64, t256, t4096 sim.Tick
		for _, sz := range sizes {
			cfg := core.PCIe8GB()
			cfg.Name = fmt.Sprintf("fig4-%g-%d", gbps, sz)
			cfg.PCIe = pcie.Config{Link: pcie.LinkForGBps(gbps, lanesFor[gbps])}
			cfg.Accel.HostDMA.BurstBytes = sz
			d, _, _ := timeGEMM(cfg, n)
			row = append(row, fmt.Sprintf("%.3fms", d.Seconds()*1e3))
			switch sz {
			case 64:
				t64 = d
			case 256:
				t256 = d
			case 4096:
				t4096 = d
			}
			opt.logf("fig4: %gGB/s %dB -> %v\n", gbps, sz, d)
		}
		if !(t256 < t64 && t256 < t4096) {
			convexOK = false
		}
		r.Rows = append(r.Rows, row)
	}
	r.Note("paper: convex curve, optimum ~256 B; 64 B costs +12%%, 4096 B +36%% vs optimum")
	r.Note("measured: convex (both extremes slower than 256 B) across all bandwidths = %v", convexOK)
	return r
}

// Fig5MemoryLocation reproduces Fig. 5: normalized speedup of DevMem
// vs host-side memory (2 and 64 GB/s PCIe) across memory technologies,
// normalized to DDR4 device-side.
func Fig5MemoryLocation(opt Options) *Result {
	n := opt.size(512, 1024)
	r := &Result{
		ID:      "fig5",
		Title:   fmt.Sprintf("Memory type and location, GEMM %d (speedup vs DDR4 DevMem)", n),
		Headers: []string{"memory", "DevMem", "host PCIe-2GB/s", "host PCIe-64GB/s"},
	}
	techs := []dram.Spec{dram.DDR4_2400, dram.HBM2_2000, dram.GDDR5_2000, dram.LPDDR5_6400}

	devT := make(map[string]sim.Tick)
	host2T := make(map[string]sim.Tick)
	host64T := make(map[string]sim.Tick)
	for _, spec := range techs {
		devCfg := core.DevMemCfg()
		devCfg.Name = "fig5-dev-" + spec.Name
		devCfg.DevSpec = spec
		d, _, _ := timeGEMM(devCfg, n)
		devT[spec.Name] = d

		h2 := core.PCIe2GB()
		h2.Name = "fig5-h2-" + spec.Name
		h2.HostSpec = spec
		d2, _, _ := timeGEMM(h2, n)
		host2T[spec.Name] = d2

		h64 := core.PCIe64GB()
		h64.Name = "fig5-h64-" + spec.Name
		h64.HostSpec = spec
		d64, _, _ := timeGEMM(h64, n)
		host64T[spec.Name] = d64
		opt.logf("fig5: %s dev=%v host2=%v host64=%v\n", spec.Name, d, d2, d64)
	}

	base := float64(devT[dram.DDR4_2400.Name])
	speedup := func(t sim.Tick) string { return fmt.Sprintf("%.2f", base/float64(t)) }
	for _, spec := range techs {
		r.AddRow(spec.Name, speedup(devT[spec.Name]), speedup(host2T[spec.Name]), speedup(host64T[spec.Name]))
	}

	okAll := true
	for _, spec := range techs {
		if !(devT[spec.Name] <= host2T[spec.Name]) {
			okAll = false
		}
	}
	frac := float64(devT[dram.HBM2_2000.Name]) / float64(host64T[dram.HBM2_2000.Name])
	r.Note("paper: DevMem always beats host-side; 64 GB/s PCIe reaches ~78%% of DevMem performance")
	r.Note("measured: DevMem >= host(2GB/s) for all techs = %v; host@64GB/s reaches %.0f%% of DevMem (HBM2)",
		okAll, 100*frac)
	return r
}

// Fig6MemSweep reproduces Fig. 6: host memory bandwidth sweep (a) and
// latency sweep (b) using the fixed-latency SimpleMem model behind a
// 64 GB/s link.
func Fig6MemSweep(opt Options) *Result {
	n := opt.size(1024, 2048)
	r := &Result{
		ID:      "fig6",
		Title:   fmt.Sprintf("Host memory bandwidth/latency sweeps, GEMM %d (SimpleMem)", n),
		Headers: []string{"sweep", "value", "exec_ms", "normalized"},
	}

	run := func(latNs float64, bw float64) sim.Tick {
		cfg := core.PCIe64GB()
		cfg.Name = fmt.Sprintf("fig6-%g-%g", latNs, bw)
		cfg.HostSimple = &core.SimpleMemParams{
			Latency:       sim.TicksFromNanoseconds(latNs),
			BandwidthGBps: bw,
		}
		// Keep the systolic array fast so memory (not compute) is the
		// studied bottleneck, as in the paper's HBM case study.
		cfg.Accel.ComputeOverride = 100 * sim.Nanosecond
		d, _, _ := timeGEMM(cfg, n)
		return d
	}

	bws := []float64{8, 16, 32, 50, 64, 100, 128, 256}
	var bwTimes []sim.Tick
	for _, bw := range bws {
		d := run(30, bw)
		bwTimes = append(bwTimes, d)
		opt.logf("fig6: bw=%g -> %v\n", bw, d)
	}
	base := bwTimes[len(bwTimes)-1]
	for i, bw := range bws {
		r.AddRow("bandwidth", fmt.Sprintf("%gGB/s", bw),
			fmt.Sprintf("%.3f", bwTimes[i].Seconds()*1e3),
			fmt.Sprintf("%.3f", float64(bwTimes[i])/float64(base)))
	}

	lats := []float64{1, 6, 12, 18, 24, 30, 36}
	var latTimes []sim.Tick
	for _, lat := range lats {
		d := run(lat, 64)
		latTimes = append(latTimes, d)
		opt.logf("fig6: lat=%g -> %v\n", lat, d)
	}
	latBase := latTimes[0]
	for i, lat := range lats {
		r.AddRow("latency", fmt.Sprintf("%gns", lat),
			fmt.Sprintf("%.3f", latTimes[i].Seconds()*1e3),
			fmt.Sprintf("%.3f", float64(latTimes[i])/float64(latBase)))
	}

	bwGain := 1 - float64(bwTimes[len(bwTimes)-1])/float64(bwTimes[0])
	latLoss := float64(latTimes[len(latTimes)-1])/float64(latTimes[0]) - 1
	r.Note("paper: bandwidth improves performance ~60%% and saturates past ~100 GB/s; latency adds only ~4.9%%")
	r.Note("measured: bandwidth 8->256 GB/s improves %.0f%%; latency 1->36 ns costs %.1f%%",
		100*bwGain, 100*latLoss)
	return r
}

// Tab4Translation reproduces Table IV: SMMU statistics across matrix
// sizes.
func Tab4Translation(opt Options) *Result {
	sizes := []int{64, 128, 256, 512, 1024}
	if opt.Full {
		sizes = append(sizes, 2048)
	}
	r := &Result{
		ID:      "tab4",
		Title:   "Address translation statistics (SMMU), DC access method",
		Headers: []string{"metric"},
	}
	for _, n := range sizes {
		r.Headers = append(r.Headers, fmt.Sprintf("%d", n))
	}

	type row struct {
		pages     int
		trans     float64
		transMean float64
		ptws      float64
		ptwMean   float64
		utlbLook  float64
		utlbMiss  float64
		overhead  float64
	}
	var rows []row
	for _, n := range sizes {
		cfg := core.PCIe8GB()
		cfg.Name = fmt.Sprintf("tab4-%d", n)
		d, sys, res := timeGEMM(cfg, n)

		// Overhead is measured the honest way: rerun the identical job
		// with the SMMU bypassed and compare end-to-end times.
		bypass := core.PCIe8GB()
		bypass.Name = fmt.Sprintf("tab4b-%d", n)
		bypass.SMMU.Bypass = true
		dBypass, _, _ := timeGEMM(bypass, n)

		look := sys.Stats.Lookup
		pre := cfg.Name + ".smmu."
		rows = append(rows, row{
			pages:     res.PagesMapped,
			trans:     look(pre + "translations").Value(),
			transMean: look(pre + "trans_ns").Value(),
			ptws:      look(pre + "ptws").Value(),
			ptwMean:   look(pre + "ptw_ns").Value(),
			utlbLook:  look(pre + "utlb_lookups").Value(),
			utlbMiss:  look(pre + "utlb_misses").Value(),
			overhead:  100 * (float64(d) - float64(dBypass)) / float64(dBypass),
		})
		opt.logf("tab4: n=%d pages=%d trans=%.0f overhead=%.2f%%\n",
			n, res.PagesMapped, rows[len(rows)-1].trans, rows[len(rows)-1].overhead)
	}

	add := func(name string, f func(row) string) {
		cells := []string{name}
		for _, rw := range rows {
			cells = append(cells, f(rw))
		}
		r.AddRow(cells...)
	}
	add("Memory Footprint (Pages)", func(rw row) string { return fmt.Sprintf("%d", rw.pages) })
	add("Translation Times", func(rw row) string { return fmt.Sprintf("%.0f", rw.trans) })
	add("Trans Mean Time (cyc)", func(rw row) string { return fmt.Sprintf("%.2f", rw.transMean) })
	add("PTW Times", func(rw row) string { return fmt.Sprintf("%.0f", rw.ptws) })
	add("PTW Mean Time (cyc)", func(rw row) string { return fmt.Sprintf("%.2f", rw.ptwMean) })
	add("uTLB Lookup times", func(rw row) string { return fmt.Sprintf("%.0f", rw.utlbLook) })
	add("uTLB Misses times", func(rw row) string { return fmt.Sprintf("%.0f", rw.utlbMiss) })
	add("Trans Overhead", func(rw row) string { return fmt.Sprintf("%.2f%%", rw.overhead) })

	r.Note("paper (2048): 12288 pages, 68.4M translations, PTW mean 368 cyc, overhead U-shaped 6%% -> 1%% -> 6.5%%")
	r.Note("measured: footprint = 3 x N^2 x 4 B / 4 KiB pages exactly; translation counts scale with streamed bursts")
	return r
}
