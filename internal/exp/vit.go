package exp

import (
	"fmt"
	"sync"

	"accesys/internal/analytic"
	"accesys/internal/core"
	"accesys/internal/cpu"
	"accesys/internal/driver"
	"accesys/internal/sim"
	"accesys/internal/sweep"
	"accesys/internal/workload"
)

// vitTimes holds the measured split for one (config, model) pair,
// scaled to the full model (simulated layer x layer count).
type vitTimes struct {
	config  string
	model   string
	gemm    sim.Tick
	nonGemm sim.Tick
}

func (v vitTimes) total() sim.Tick { return v.gemm + v.nonGemm }

// vitConfigs returns the four system configurations of Section V.C.
func vitConfigs() []core.Config {
	return []core.Config{core.PCIe2GB(), core.PCIe8GB(), core.PCIe64GB(), core.DevMemCfg()}
}

// vitMemo caches in-process ViT runs across the Fig. 7/8/9 trio; the
// mutex makes it safe under parallel sweep workers.
var (
	vitMu   sync.Mutex
	vitMemo = map[string]vitTimes{}
)

// runViT simulates one encoder layer of the variant under cfg and
// scales by the layer count. Results are memoized per (config, model).
func runViT(opt Options, cfg core.Config, v workload.ViTVariant) vitTimes {
	key := cfg.Name + "/" + v.Name
	vitMu.Lock()
	t, ok := vitMemo[key]
	vitMu.Unlock()
	if ok {
		return t
	}

	t = simViT(cfg, v)
	vitMu.Lock()
	vitMemo[key] = t
	vitMu.Unlock()
	opt.logf("vit: %s %s gemm=%v nongemm=%v\n", cfg.Name, v.Name, t.gemm, t.nonGemm)
	return t
}

// simViT is the uncached simulation of one encoder layer.
func simViT(cfg core.Config, v workload.ViTVariant) vitTimes {
	g := workload.ViT(v)
	sys, drv := BuildSystem(cfg)
	devMode := sys.Cfg.Access == core.DevMem

	// Activation arena: where the CPU's Non-GEMM operators stream. In
	// the DevMem configuration activations live in device memory — the
	// NUMA penalty of Fig. 8.
	const arena = 64 << 20
	var actBase uint64
	if devMode {
		actBase = drv.AllocDev(arena)
	} else {
		actBase = drv.AllocHost(arena)
	}

	var gemmT, cpuT sim.Tick
	rot := uint64(0)
	idx := 0
	var step func()
	step = func() {
		if idx == len(g.Items) {
			return
		}
		it := g.Items[idx]
		idx++
		start := sys.Now()
		if it.GEMM != nil {
			j := it.GEMM
			drv.RunGEMM(driver.GEMMSpec{M: j.M, N: j.N, K: j.K}, func(driver.Result) {
				gemmT += sys.Now() - start
				step()
			})
			return
		}
		op := it.CPU
		span := uint64(op.ReadBytes + op.WriteBytes)
		if rot+span >= arena {
			rot = 0
		}
		sys.CPU.Run([]cpu.Op{{
			Name:          op.Name,
			ReadAddr:      actBase + rot,
			ReadBytes:     op.ReadBytes,
			WriteAddr:     actBase + rot + uint64(op.ReadBytes),
			WriteBytes:    op.WriteBytes,
			ComputeCycles: op.ComputeCycles,
		}}, func() {
			cpuT += sys.Now() - start
			step()
		})
		rot += span
	}
	step()
	sys.Run()
	if idx != len(g.Items) {
		panic(fmt.Sprintf("exp: ViT run under %s stalled at item %d/%d", cfg.Name, idx, len(g.Items)))
	}

	return vitTimes{
		config:  cfg.Name,
		model:   v.Name,
		gemm:    gemmT * sim.Tick(g.Layers),
		nonGemm: cpuT * sim.Tick(g.Layers),
	}
}

// vitPoint wraps one (config, model) ViT run as a sweep point. The
// outcome carries the GEMM/Non-GEMM split so it survives the result
// cache.
func vitPoint(opt Options, cfg core.Config, v workload.ViTVariant) sweep.Point {
	return sweep.Point{
		Key:         cfg.Name + "/" + v.Name,
		Fingerprint: sweep.Fingerprint("vit", cfg, v, fmt.Sprintf("%T", cfg.Accel.Backend)),
		Run: func() sweep.Outcome {
			t := runViT(opt, cfg, v)
			return sweep.Outcome{
				Dur: t.total(),
				Values: map[string]float64{
					"gemm":    float64(t.gemm),
					"nongemm": float64(t.nonGemm),
				},
			}
		},
	}
}

// vitSweep runs the full (config x model) matrix through the engine
// and returns the splits keyed by config then model name.
func vitSweep(opt Options, id string, configs []core.Config, models []workload.ViTVariant) map[string]map[string]vitTimes {
	var points []sweep.Point
	for _, cfg := range configs {
		for _, v := range models {
			points = append(points, vitPoint(opt, cfg, v))
		}
	}
	outs := opt.sweepAll(id, points)

	times := map[string]map[string]vitTimes{}
	i := 0
	for _, cfg := range configs {
		times[cfg.Name] = map[string]vitTimes{}
		for _, v := range models {
			times[cfg.Name][v.Name] = vitTimes{
				config:  cfg.Name,
				model:   v.Name,
				gemm:    outs[i].Tick("gemm"),
				nonGemm: outs[i].Tick("nongemm"),
			}
			i++
		}
	}
	return times
}

// Fig7Transformer reproduces Fig. 7: end-to-end ViT inference time
// across the four system configurations, reported as speedup over
// PCIe-2GB.
func Fig7Transformer(opt Options) *Result {
	r := &Result{
		ID:      "fig7",
		Title:   "Transformer inference across memory/interconnect configurations",
		Headers: []string{"config", "ViT-Base", "ViT-Large", "ViT-Huge", "speedup(Base)"},
	}
	models := workload.Variants()
	times := vitSweep(opt, "fig7", vitConfigs(), models)

	base := times["PCIe-2GB"]
	for _, cfg := range vitConfigs() {
		row := []string{cfg.Name}
		for _, v := range models {
			row = append(row, fmt.Sprintf("%.2fms", times[cfg.Name][v.Name].total().Seconds()*1e3))
		}
		sp := float64(base[models[0].Name].total()) / float64(times[cfg.Name][models[0].Name].total())
		row = append(row, fmt.Sprintf("%.2fx", sp))
		r.Rows = append(r.Rows, row)
	}

	sp64 := float64(base["ViT-Base"].total()) / float64(times["PCIe-64GB"]["ViT-Base"].total())
	devVs64 := float64(times["DevMem"]["ViT-Base"].total()) / float64(times["PCIe-64GB"]["ViT-Base"].total())
	r.Note("paper: PCIe-64GB reaches 2.5-3.4x over PCIe-2GB; DevMem slightly worse than PCIe-64GB")
	r.Note("measured: PCIe-64GB speedup %.2fx (Base); DevMem/PCIe-64GB time ratio %.2f", sp64, devVs64)
	return r
}

// Fig8Split reproduces Fig. 8: the same runs split into GEMM and
// Non-GEMM components.
func Fig8Split(opt Options) *Result {
	r := &Result{
		ID:      "fig8",
		Title:   "GEMM vs Non-GEMM runtime split (ViT-Base/Large/Huge)",
		Headers: []string{"config", "model", "gemm_ms", "nongemm_ms", "nongemm_share"},
	}
	times := vitSweep(opt, "fig8", vitConfigs(), workload.Variants())
	for _, cfg := range vitConfigs() {
		for _, v := range workload.Variants() {
			t := times[cfg.Name][v.Name]
			r.AddRow(cfg.Name, v.Name,
				fmt.Sprintf("%.2f", t.gemm.Seconds()*1e3),
				fmt.Sprintf("%.2f", t.nonGemm.Seconds()*1e3),
				fmt.Sprintf("%.0f%%", 100*float64(t.nonGemm)/float64(t.total())))
		}
	}

	dev := times["DevMem"][workload.ViTLarge.Name]
	pcie := times["PCIe-8GB"][workload.ViTLarge.Name]
	gemmWin := float64(pcie.gemm) / float64(dev.gemm)
	nonPenalty := float64(dev.nonGemm) / float64(pcie.nonGemm)
	r.Note("paper: DevMem best at GEMM but up to 500%% Non-GEMM overhead vs PCIe systems (NUMA)")
	r.Note("measured (ViT-Large): DevMem GEMM %.2fx faster than PCIe-8GB; Non-GEMM %.1fx slower", gemmWin, nonPenalty)
	return r
}

// Fig9Model reproduces Fig. 9: the composition model swept over the
// Non-GEMM fraction, with DevMem-vs-PCIe crossovers.
func Fig9Model(opt Options) *Result {
	r := &Result{
		ID:      "fig9",
		Title:   "Composition model: time vs Non-GEMM fraction (ViT-Base units)",
		Headers: []string{"w_nongemm", "PCIe-2GB", "PCIe-8GB", "PCIe-64GB", "DevMem"},
	}
	m := analytic.Composition{}
	configs := vitConfigs()
	times := vitSweep(opt, "fig9", configs, []workload.ViTVariant{workload.ViTBase})
	units := map[string]analytic.Config{}
	for _, cfg := range configs {
		t := times[cfg.Name][workload.ViTBase.Name]
		units[cfg.Name] = analytic.Config{
			Name:     cfg.Name,
			GEMMNs:   t.gemm.Nanoseconds(),
			NonGEMMs: t.nonGemm.Nanoseconds(),
		}
	}

	for i := 0; i <= 10; i++ {
		w := float64(i) / 10
		row := []string{fmt.Sprintf("%.1f", w)}
		for _, cfg := range configs {
			row = append(row, fmt.Sprintf("%.2fms", m.TimeNs(units[cfg.Name], w)/1e6))
		}
		r.Rows = append(r.Rows, row)
	}

	r.Note("paper: DevMem preferable below a Non-GEMM-fraction threshold that shrinks with PCIe bandwidth (34.31%%, 10.16%%, 4.27%%)")
	var last float64 = 1
	monotonic := true
	for _, name := range []string{"PCIe-2GB", "PCIe-8GB", "PCIe-64GB"} {
		w, ok := m.Crossover(units["DevMem"], units[name])
		if !ok {
			r.Note("measured: no interior crossover vs %s (one config dominates)", name)
			continue
		}
		r.Note("measured: DevMem beats %s for Non-GEMM fraction < %.2f%%", name, 100*w)
		if w > last {
			monotonic = false
		}
		last = w
	}
	r.Note("crossovers shrink with PCIe bandwidth = %v", monotonic)
	return r
}
