package exp

import (
	"fmt"

	"accesys/internal/analytic"
	"accesys/internal/core"
	"accesys/internal/scenario"
	"accesys/internal/workload"
)

// vitConfigs returns the four system configurations of Section V.C in
// the row order the figures report (matching the fig7/8/9 scenarios'
// preset axis).
func vitConfigs() []core.Config {
	return []core.Config{core.PCIe2GB(), core.PCIe8GB(), core.PCIe64GB(), core.DevMemCfg()}
}

// vitSweep runs the named scenario's (config x model) matrix through
// the engine and returns the GEMM/Non-GEMM splits keyed by config then
// model name. ViT runs are identified by their physical system, so the
// Fig. 7/8/9 trio share cached outcomes and the in-process layer memo.
func vitSweep(opt Options, id string) map[string]map[string]scenario.ViTSplit {
	_, runs, outs := sweepScenario(opt, id)
	times := map[string]map[string]scenario.ViTSplit{}
	for i, r := range runs {
		if times[r.Cfg.Name] == nil {
			times[r.Cfg.Name] = map[string]scenario.ViTSplit{}
		}
		times[r.Cfg.Name][r.Model.Name] = scenario.Split(outs[i])
	}
	return times
}

// Fig7Transformer reproduces Fig. 7: end-to-end ViT inference time
// across the four system configurations, reported as speedup over
// PCIe-2GB.
func Fig7Transformer(opt Options) *Result {
	r := &Result{
		ID:      "fig7",
		Title:   scenario.MustBuiltin("fig7").TitleFor(opt.Full),
		Headers: []string{"config", "ViT-Base", "ViT-Large", "ViT-Huge", "speedup(Base)"},
	}
	models := workload.Variants()
	times := vitSweep(opt, "fig7")

	base := times["PCIe-2GB"]
	for _, cfg := range vitConfigs() {
		row := []string{cfg.Name}
		for _, v := range models {
			row = append(row, fmt.Sprintf("%.2fms", times[cfg.Name][v.Name].Total().Seconds()*1e3))
		}
		sp := float64(base[models[0].Name].Total()) / float64(times[cfg.Name][models[0].Name].Total())
		row = append(row, fmt.Sprintf("%.2fx", sp))
		r.Rows = append(r.Rows, row)
	}

	sp64 := float64(base["ViT-Base"].Total()) / float64(times["PCIe-64GB"]["ViT-Base"].Total())
	devVs64 := float64(times["DevMem"]["ViT-Base"].Total()) / float64(times["PCIe-64GB"]["ViT-Base"].Total())
	r.Note("paper: PCIe-64GB reaches 2.5-3.4x over PCIe-2GB; DevMem slightly worse than PCIe-64GB")
	r.Note("measured: PCIe-64GB speedup %.2fx (Base); DevMem/PCIe-64GB time ratio %.2f", sp64, devVs64)
	return r
}

// Fig8Split reproduces Fig. 8: the same runs split into GEMM and
// Non-GEMM components.
func Fig8Split(opt Options) *Result {
	r := &Result{
		ID:      "fig8",
		Title:   scenario.MustBuiltin("fig8").TitleFor(opt.Full),
		Headers: []string{"config", "model", "gemm_ms", "nongemm_ms", "nongemm_share"},
	}
	times := vitSweep(opt, "fig8")
	for _, cfg := range vitConfigs() {
		for _, v := range workload.Variants() {
			t := times[cfg.Name][v.Name]
			r.AddRow(cfg.Name, v.Name,
				fmt.Sprintf("%.2f", t.GEMM.Seconds()*1e3),
				fmt.Sprintf("%.2f", t.NonGEMM.Seconds()*1e3),
				fmt.Sprintf("%.0f%%", 100*float64(t.NonGEMM)/float64(t.Total())))
		}
	}

	dev := times["DevMem"][workload.ViTLarge.Name]
	pcie := times["PCIe-8GB"][workload.ViTLarge.Name]
	gemmWin := float64(pcie.GEMM) / float64(dev.GEMM)
	nonPenalty := float64(dev.NonGEMM) / float64(pcie.NonGEMM)
	r.Note("paper: DevMem best at GEMM but up to 500%% Non-GEMM overhead vs PCIe systems (NUMA)")
	r.Note("measured (ViT-Large): DevMem GEMM %.2fx faster than PCIe-8GB; Non-GEMM %.1fx slower", gemmWin, nonPenalty)
	return r
}

// Fig9Model reproduces Fig. 9: the composition model swept over the
// Non-GEMM fraction, with DevMem-vs-PCIe crossovers.
func Fig9Model(opt Options) *Result {
	r := &Result{
		ID:      "fig9",
		Title:   scenario.MustBuiltin("fig9").TitleFor(opt.Full),
		Headers: []string{"w_nongemm", "PCIe-2GB", "PCIe-8GB", "PCIe-64GB", "DevMem"},
	}
	m := analytic.Composition{}
	configs := vitConfigs()
	times := vitSweep(opt, "fig9")
	units := map[string]analytic.Config{}
	for _, cfg := range configs {
		t := times[cfg.Name][workload.ViTBase.Name]
		units[cfg.Name] = analytic.Config{
			Name:     cfg.Name,
			GEMMNs:   t.GEMM.Nanoseconds(),
			NonGEMMs: t.NonGEMM.Nanoseconds(),
		}
	}

	for i := 0; i <= 10; i++ {
		w := float64(i) / 10
		row := []string{fmt.Sprintf("%.1f", w)}
		for _, cfg := range configs {
			row = append(row, fmt.Sprintf("%.2fms", m.TimeNs(units[cfg.Name], w)/1e6))
		}
		r.Rows = append(r.Rows, row)
	}

	r.Note("paper: DevMem preferable below a Non-GEMM-fraction threshold that shrinks with PCIe bandwidth (34.31%%, 10.16%%, 4.27%%)")
	var last float64 = 1
	monotonic := true
	for _, name := range []string{"PCIe-2GB", "PCIe-8GB", "PCIe-64GB"} {
		w, ok := m.Crossover(units["DevMem"], units[name])
		if !ok {
			r.Note("measured: no interior crossover vs %s (one config dominates)", name)
			continue
		}
		r.Note("measured: DevMem beats %s for Non-GEMM fraction < %.2f%%", name, 100*w)
		if w > last {
			monotonic = false
		}
		last = w
	}
	r.Note("crossovers shrink with PCIe bandwidth = %v", monotonic)
	return r
}
