package smmu

import (
	"bytes"
	"testing"
	"testing/quick"

	"accesys/internal/mem"
	"accesys/internal/memtest"
	"accesys/internal/sim"
	"accesys/internal/stats"
)

// rig: device requestor -> SMMU -> echo memory. Page tables live in
// the same memory, built via the functional backdoor.
type rig struct {
	eq  *sim.EventQueue
	s   *SMMU
	dev *memtest.Requestor
	m   *memtest.EchoResponder
	tb  *TableBuilder
	reg *stats.Registry

	nextFrame uint64
}

const tableBase = 0x40_0000 // physical region for page tables

func newRig(t *testing.T, cfg Config) *rig {
	t.Helper()
	eq := sim.NewEventQueue()
	reg := stats.NewRegistry()
	s := New("smmu", eq, reg, cfg)
	dev := memtest.NewRequestor(eq)
	m := memtest.NewEchoResponder(eq, 0, 1<<23, 30*sim.Nanosecond)
	mem.Bind(dev.Port, s.DevPort())
	mem.Bind(s.MemPort(), m.Port)

	rg := &rig{eq: eq, s: s, dev: dev, m: m, reg: reg, nextFrame: tableBase}
	rg.tb = NewTableBuilder(funcStore{m}, rg.allocFrame)
	s.SetRootTable(rg.tb.Root())
	return rg
}

func (rg *rig) allocFrame() uint64 {
	f := rg.nextFrame
	rg.nextFrame += PageBytes
	return f
}

type funcStore struct{ m *memtest.EchoResponder }

func (f funcStore) ReadFunctional(addr uint64, buf []byte)   { f.m.Store.Read(addr, buf) }
func (f funcStore) WriteFunctional(addr uint64, data []byte) { f.m.Store.Write(addr, data) }

func (rg *rig) count(name string) float64 { return rg.reg.Lookup("smmu." + name).Value() }

func TestPTEEncoding(t *testing.T) {
	pte := MakePTE(0x1234_5000)
	if !PTEValid(pte) || PTEAddr(pte) != 0x1234_5000 {
		t.Fatalf("PTE roundtrip failed: %#x", pte)
	}
	if PTEValid(0) {
		t.Fatal("zero PTE must be invalid")
	}
}

func TestVAIndexCoversAllBits(t *testing.T) {
	va := uint64(0x0000_7fc3_0201_1000)
	idx0 := vaIndex(va, 0)
	idx3 := vaIndex(va, 3)
	if idx0 != (va>>39)&511 || idx3 != (va>>12)&511 {
		t.Fatalf("vaIndex wrong: %d %d", idx0, idx3)
	}
}

func TestTranslationThroughWalk(t *testing.T) {
	rg := newRig(t, Config{})
	const iova = 0x10_0000
	const phys = 0x20_0000
	rg.tb.Map(iova, phys)
	rg.m.Store.Write(phys+0x80, []byte{0xaa, 0xbb})

	rd := mem.NewRead(iova+0x80, 2)
	rg.dev.Send(rd)
	rg.eq.Run()
	if len(rg.dev.Done) != 1 {
		t.Fatal("translated read lost")
	}
	if !bytes.Equal(rd.Data, []byte{0xaa, 0xbb}) {
		t.Fatalf("read through SMMU got %v", rd.Data)
	}
	// Response address restored to the device-virtual address.
	if rd.Addr != iova+0x80 {
		t.Fatalf("response addr %#x, want IOVA", rd.Addr)
	}
	if rg.count("ptws") != 1 || rg.count("translations") != 1 {
		t.Fatalf("ptws=%v translations=%v", rg.count("ptws"), rg.count("translations"))
	}
	// 4 PTE reads + 1 data read reached memory.
	if len(rg.m.Requests) != 5 {
		t.Fatalf("memory saw %d requests, want 5", len(rg.m.Requests))
	}
}

func TestUTLBHitSecondAccess(t *testing.T) {
	rg := newRig(t, Config{})
	rg.tb.Map(0x10_0000, 0x20_0000)
	rg.dev.Send(mem.NewRead(0x10_0000, 4))
	rg.eq.Run()
	firstLat := rg.dev.DoneAt[0]
	rg.dev.Send(mem.NewRead(0x10_0040, 4))
	start := rg.eq.Now()
	rg.eq.Run()
	secondLat := rg.eq.Now() - start
	if rg.count("ptws") != 1 {
		t.Fatalf("second access should not walk: ptws=%v", rg.count("ptws"))
	}
	if rg.count("utlb_misses") != 1 {
		t.Fatalf("utlb_misses=%v", rg.count("utlb_misses"))
	}
	if secondLat >= firstLat {
		t.Fatalf("uTLB hit latency %v should beat walk latency %v", secondLat, firstLat)
	}
}

func TestPWCSkipsLevels(t *testing.T) {
	rg := newRig(t, Config{})
	// Two pages sharing the same leaf table.
	rg.tb.Map(0x10_0000, 0x20_0000)
	rg.tb.Map(0x10_1000, 0x20_1000)
	rg.dev.Send(mem.NewRead(0x10_0000, 4))
	rg.eq.Run()
	n1 := len(rg.m.Requests) // 4 PTE reads + 1 data
	rg.dev.Send(mem.NewRead(0x10_1000, 4))
	rg.eq.Run()
	n2 := len(rg.m.Requests) - n1
	// Second walk hits the PWC for levels 1-3: 1 PTE read + 1 data.
	if n2 != 2 {
		t.Fatalf("PWC walk issued %d memory requests, want 2", n2)
	}
}

func TestWalkCoalescing(t *testing.T) {
	rg := newRig(t, Config{})
	rg.tb.Map(0x10_0000, 0x20_0000)
	rg.dev.Send(mem.NewRead(0x10_0000, 4))
	rg.dev.Send(mem.NewRead(0x10_0100, 4))
	rg.eq.Run()
	if rg.count("ptws") != 1 {
		t.Fatalf("concurrent same-page requests should share one walk, got %v", rg.count("ptws"))
	}
	if len(rg.dev.Done) != 2 {
		t.Fatal("both coalesced requests must complete")
	}
}

func TestBypassMode(t *testing.T) {
	rg := newRig(t, Config{Bypass: true})
	rg.m.Store.Write(0x3000, []byte{5})
	rd := mem.NewRead(0x3000, 1)
	rg.dev.Send(rd)
	rg.eq.Run()
	if rd.Data[0] != 5 {
		t.Fatal("bypass read failed")
	}
	if rg.count("translations") != 0 {
		t.Fatal("bypass must not count translations")
	}
}

func TestTLBHoldsMoreThanUTLB(t *testing.T) {
	rg := newRig(t, Config{UTLBEntries: 4, TLBEntries: 256, TLBAssoc: 4})
	// Touch 8 pages: uTLB (4 entries) thrashes, TLB holds all.
	for i := uint64(0); i < 8; i++ {
		rg.tb.Map(0x10_0000+i*PageBytes, 0x20_0000+i*PageBytes)
	}
	for i := uint64(0); i < 8; i++ {
		rg.dev.Send(mem.NewRead(0x10_0000+i*PageBytes, 4))
	}
	rg.eq.Run()
	walks := rg.count("ptws")
	// Revisit the first page: uTLB long since evicted, TLB hit.
	rg.dev.Send(mem.NewRead(0x10_0000, 4))
	rg.eq.Run()
	if rg.count("ptws") != walks {
		t.Fatal("TLB hit should avoid a new walk")
	}
	if rg.count("utlb_misses") < 9 {
		t.Fatalf("expected uTLB thrash, misses=%v", rg.count("utlb_misses"))
	}
}

func TestInvalidateAllForcesRewalk(t *testing.T) {
	rg := newRig(t, Config{})
	rg.tb.Map(0x10_0000, 0x20_0000)
	rg.dev.Send(mem.NewRead(0x10_0000, 4))
	rg.eq.Run()
	rg.s.InvalidateAll()
	rg.dev.Send(mem.NewRead(0x10_0000, 4))
	rg.eq.Run()
	if rg.count("ptws") != 2 {
		t.Fatalf("after invalidate, expected rewalk: ptws=%v", rg.count("ptws"))
	}
}

func TestPageCrossingPanics(t *testing.T) {
	rg := newRig(t, Config{})
	rg.tb.Map(0x10_0000, 0x20_0000)
	defer func() {
		if recover() == nil {
			t.Fatal("page-crossing request must panic")
		}
	}()
	rg.dev.Send(mem.NewRead(0x10_0000+PageBytes-4, 8))
	rg.eq.Run()
}

func TestWriteTranslated(t *testing.T) {
	rg := newRig(t, Config{})
	rg.tb.Map(0x50_0000, 0x21_0000)
	rg.dev.Send(mem.NewWrite(0x50_0010, []byte{1, 2, 3}))
	rg.eq.Run()
	got := make([]byte, 3)
	rg.m.Store.Read(0x21_0010, got)
	if !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Fatalf("translated write landed wrong: %v", got)
	}
}

// Property: hardware walk result always equals the software Translate.
func TestWalkMatchesSoftwareTranslate(t *testing.T) {
	rg := newRig(t, Config{UTLBEntries: 2, TLBEntries: 16, TLBAssoc: 2, PWCEntries: 4})
	// Build a scattered mapping.
	mappings := map[uint64]uint64{}
	physNext := uint64(0x60_0000)
	for i := uint64(0); i < 32; i++ {
		iova := 0x7_0000_0000 + i*PageBytes*7 // spread across L3 tables
		iova &= (1 << 40) - 1
		iova = mem.AlignDown(iova, PageBytes)
		rg.tb.Map(iova, physNext)
		mappings[iova] = physNext
		physNext += PageBytes
	}
	f := func(pick uint8, off uint16) bool {
		keys := make([]uint64, 0, len(mappings))
		for k := range mappings {
			keys = append(keys, k)
		}
		// map iteration order: sort for determinism
		for i := 0; i < len(keys); i++ {
			for j := i + 1; j < len(keys); j++ {
				if keys[j] < keys[i] {
					keys[i], keys[j] = keys[j], keys[i]
				}
			}
		}
		iova := keys[int(pick)%len(keys)] + uint64(off)%PageBytes
		want, ok := rg.tb.Translate(iova)
		if !ok {
			return false
		}
		// Plant a marker at the expected physical address; a timing
		// read through the SMMU must observe it.
		marker := byte(want>>12) ^ byte(off) ^ 0x5a
		rg.m.Store.Write(want, []byte{marker})
		rd := mem.NewRead(iova, 1)
		rg.dev.Send(rd)
		rg.eq.Run()
		return rd.Data[0] == marker
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTableBuilderIdempotentMap(t *testing.T) {
	rg := newRig(t, Config{})
	rg.tb.Map(0x10_0000, 0x20_0000)
	framesBefore := rg.nextFrame
	rg.tb.Map(0x10_1000, 0x20_1000) // same leaf table: no new frames
	if rg.nextFrame != framesBefore {
		t.Fatal("mapping a sibling page should not allocate new tables")
	}
	if pa, ok := rg.tb.Translate(0x10_1000); !ok || pa != 0x20_1000 {
		t.Fatalf("Translate = %#x, %v", pa, ok)
	}
}

func TestTranslateUnmapped(t *testing.T) {
	rg := newRig(t, Config{})
	if _, ok := rg.tb.Translate(0x9999_0000); ok {
		t.Fatal("unmapped IOVA should not translate")
	}
}

func TestStatsShape(t *testing.T) {
	rg := newRig(t, Config{})
	rg.tb.MapRange(0x10_0000, 0x20_0000, 16*PageBytes)
	for i := 0; i < 64; i++ {
		rg.dev.Send(mem.NewRead(0x10_0000+uint64(i%16)*PageBytes+uint64(i), 1))
	}
	rg.eq.Run()
	if rg.count("translations") != 64 {
		t.Fatalf("translations = %v", rg.count("translations"))
	}
	if rg.count("utlb_lookups") != 64 {
		t.Fatalf("utlb_lookups = %v", rg.count("utlb_lookups"))
	}
	lat := rg.reg.Lookup("smmu.trans_ns").(*stats.Distribution)
	if lat.Count() != 64 || lat.Mean() <= 0 {
		t.Fatalf("trans_ns distribution wrong: count=%d mean=%v", lat.Count(), lat.Mean())
	}
}
