package smmu

import (
	"fmt"

	"accesys/internal/mem"
)

// TableBuilder constructs the 4-level page tables the SMMU walks. The
// kernel driver uses it to map DMA buffers; it writes table memory
// through the functional backdoor exactly where the walker will read it
// with timed accesses.
type TableBuilder struct {
	mem   mem.Functional
	alloc func() uint64 // returns the physical base of a fresh 4 KiB frame
	root  uint64
}

// NewTableBuilder allocates a root table. alloc must return 4
// KiB-aligned physical frames of zeroed memory.
func NewTableBuilder(f mem.Functional, alloc func() uint64) *TableBuilder {
	return &TableBuilder{mem: f, alloc: alloc, root: alloc()}
}

// Root returns the physical address of the root table for the SMMU's
// base register.
func (b *TableBuilder) Root() uint64 { return b.root }

func (b *TableBuilder) readPTE(addr uint64) uint64 {
	var buf [PTESize]byte
	b.mem.ReadFunctional(addr, buf[:])
	var v uint64
	for i := 0; i < PTESize; i++ {
		v |= uint64(buf[i]) << (8 * i)
	}
	return v
}

func (b *TableBuilder) writePTE(addr, v uint64) {
	var buf [PTESize]byte
	for i := 0; i < PTESize; i++ {
		buf[i] = byte(v >> (8 * i))
	}
	b.mem.WriteFunctional(addr, buf[:])
}

// Map installs a translation from one IOVA page to one physical page,
// creating intermediate tables on demand.
func (b *TableBuilder) Map(iova, phys uint64) {
	if iova%PageBytes != 0 || phys%PageBytes != 0 {
		panic(fmt.Sprintf("smmu: Map of unaligned addresses %#x -> %#x", iova, phys))
	}
	base := b.root
	for level := 0; level < WalkLevels-1; level++ {
		slot := base + vaIndex(iova, level)*PTESize
		pte := b.readPTE(slot)
		if !PTEValid(pte) {
			next := b.alloc()
			b.writePTE(slot, MakePTE(next))
			base = next
		} else {
			base = PTEAddr(pte)
		}
	}
	b.writePTE(base+vaIndex(iova, WalkLevels-1)*PTESize, MakePTE(phys))
}

// MapRange maps size bytes of contiguous IOVA onto contiguous physical
// memory, page by page.
func (b *TableBuilder) MapRange(iova, phys, size uint64) {
	for off := uint64(0); off < size; off += PageBytes {
		b.Map(iova+off, phys+off)
	}
}

// Translate performs a software walk, mirroring what the hardware
// walker does with timed reads. It reports false on any invalid entry.
func (b *TableBuilder) Translate(iova uint64) (uint64, bool) {
	base := b.root
	for level := 0; level < WalkLevels; level++ {
		pte := b.readPTE(base + vaIndex(iova, level)*PTESize)
		if !PTEValid(pte) {
			return 0, false
		}
		base = PTEAddr(pte)
	}
	return base + iova%PageBytes, true
}
