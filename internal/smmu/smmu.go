// Package smmu implements the System Memory Management Unit that
// Gem5-AcceSys places between the PCIe root complex and the memory bus:
// device-virtual addresses on upstream traffic are translated to
// physical addresses through a micro-TLB, a main TLB, a page-walk
// cache, and a hardware page-table walker that performs real, timed
// memory reads of the page tables the kernel driver built in host
// memory. Its statistics are the source of the paper's Table IV
// (translation counts and mean times, page-table-walk counts and mean
// times, uTLB lookups/misses).
package smmu

import (
	"fmt"

	"accesys/internal/mem"
	"accesys/internal/sim"
	"accesys/internal/stats"
)

// PTE layout: bit 0 = valid, bits [63:12] = physical frame of the next
// table level or of the final page.
const (
	pteValid    = uint64(1)
	pteAddrMask = ^uint64(0xfff)
	// PTESize is the size of one page table entry in bytes.
	PTESize = 8
	// EntriesPerTable is the fan-out of each table level.
	EntriesPerTable = 512
	// PageBytes is the translation granule.
	PageBytes = 4096
	// WalkLevels is the page-table depth (48-bit VA, 4 KiB pages).
	WalkLevels = 4
)

// MakePTE encodes a valid entry pointing at a physical address.
func MakePTE(phys uint64) uint64 { return (phys & pteAddrMask) | pteValid }

// PTEValid reports whether an entry is valid.
func PTEValid(pte uint64) bool { return pte&pteValid != 0 }

// PTEAddr extracts the physical address of an entry.
func PTEAddr(pte uint64) uint64 { return pte & pteAddrMask }

// vaIndex returns the table index of va at the given level
// (level 0 is the root).
func vaIndex(va uint64, level int) uint64 {
	shift := uint(12 + 9*(WalkLevels-1-level))
	return (va >> shift) & (EntriesPerTable - 1)
}

// Config parameterizes the SMMU.
type Config struct {
	// Bypass disables translation (physical addressing).
	Bypass bool
	// UTLBEntries sizes the fully-associative micro TLB (default 32).
	UTLBEntries int
	// TLBEntries/TLBAssoc size the main TLB (default 512, 4-way).
	TLBEntries int
	TLBAssoc   int
	// PWCEntries sizes the page-walk cache (default 64).
	PWCEntries int
	// Latencies.
	UTLBLatency sim.Tick // default 1 ns
	TLBLatency  sim.Tick // default 4 ns
	// Walkers bounds concurrent page-table walks (default 2).
	Walkers int
}

func (c *Config) setDefaults() {
	if c.UTLBEntries == 0 {
		c.UTLBEntries = 32
	}
	if c.TLBEntries == 0 {
		c.TLBEntries = 512
	}
	if c.TLBAssoc == 0 {
		c.TLBAssoc = 4
	}
	if c.PWCEntries == 0 {
		c.PWCEntries = 64
	}
	if c.UTLBLatency == 0 {
		c.UTLBLatency = sim.Nanosecond
	}
	if c.TLBLatency == 0 {
		c.TLBLatency = 4 * sim.Nanosecond
	}
	if c.Walkers == 0 {
		c.Walkers = 2
	}
}

// Resolved returns the configuration with every zero field replaced
// by its default — what an assembled SMMU actually runs with. The
// analytic backend derives its translation-stall term from this.
func (c Config) Resolved() Config {
	c.setDefaults()
	return c
}

type utlbEntry struct {
	vpn, ppn uint64
	lastUse  uint64
}

type tlbEntry struct {
	valid    bool
	vpn, ppn uint64
	lastUse  uint64
}

type pwcEntry struct {
	key     uint64 // level-tagged VA prefix
	base    uint64 // physical table base it resolves to
	level   int
	lastUse uint64
}

// walk tracks one in-flight page-table walk.
type walk struct {
	vpn     uint64
	level   int
	base    uint64
	started sim.Tick
	waiting []pendingPkt // packets stalled on this walk
}

// pendingPkt pairs a stalled packet with its arrival tick so the
// translation latency statistic covers exactly the stall.
type pendingPkt struct {
	pkt     *mem.Packet
	arrived sim.Tick
}

// SMMU bridges device traffic into the host memory system, translating
// request addresses. One upstream-facing response port receives device
// requests (from the PCIe RC); one downstream-facing request port
// issues translated requests and page-table walks.
type SMMU struct {
	name string
	eq   *sim.EventQueue
	cfg  Config

	devPort *mem.ResponsePort
	memPort *mem.RequestPort
	memQ    *mem.PacketQueue
	respQ   *mem.PacketQueue

	rootTable uint64
	haveRoot  bool

	utlb    []utlbEntry
	tlbSets [][]tlbEntry
	pwc     []pwcEntry
	useCtr  uint64

	walks       map[uint64]*walk // by vpn
	activeWalks int
	walkQueue   []*walk

	needRetry bool

	translations *stats.Counter
	utlbLookups  *stats.Counter
	utlbMisses   *stats.Counter
	tlbMisses    *stats.Counter
	ptws         *stats.Counter
	transLat     *stats.Distribution
	ptwLat       *stats.Distribution
	stallTime    *stats.Scalar
}

// passThrough is stacked on translated (or bypassed) requests; it is
// zero-size so boxing it into the packet state stack never allocates.
type passThrough struct{}

// New builds an SMMU.
func New(name string, eq *sim.EventQueue, reg *stats.Registry, cfg Config) *SMMU {
	cfg.setDefaults()
	numSets := cfg.TLBEntries / cfg.TLBAssoc
	if numSets == 0 || !mem.IsPow2(uint64(numSets)) {
		panic(fmt.Sprintf("smmu %s: TLB sets (%d) must be a power of two", name, numSets))
	}
	s := &SMMU{name: name, eq: eq, cfg: cfg, walks: make(map[uint64]*walk)}
	s.devPort = mem.NewResponsePort(name+".dev", s)
	s.memPort = mem.NewRequestPort(name+".mem", s)
	s.memQ = mem.NewPacketQueue(name+".memq", eq, func(p *mem.Packet) bool {
		return s.memPort.SendTimingReq(p)
	})
	s.respQ = mem.NewPacketQueue(name+".respq", eq, func(p *mem.Packet) bool {
		return s.devPort.SendTimingResp(p)
	})
	s.tlbSets = make([][]tlbEntry, numSets)
	for i := range s.tlbSets {
		s.tlbSets[i] = make([]tlbEntry, cfg.TLBAssoc)
	}

	g := reg.Group(name)
	s.translations = g.Counter("translations", "address translations performed")
	s.utlbLookups = g.Counter("utlb_lookups", "micro-TLB lookups")
	s.utlbMisses = g.Counter("utlb_misses", "micro-TLB misses")
	s.tlbMisses = g.Counter("tlb_misses", "main TLB misses")
	s.ptws = g.Counter("ptws", "page table walks")
	s.transLat = g.Distribution("trans_ns", "translation latency")
	s.ptwLat = g.Distribution("ptw_ns", "page table walk latency")
	s.stallTime = g.Scalar("stall_ns", "total translation stall time")
	return s
}

// DevPort faces the PCIe root complex (device traffic in).
func (s *SMMU) DevPort() *mem.ResponsePort { return s.devPort }

// MemPort faces the host memory system.
func (s *SMMU) MemPort() *mem.RequestPort { return s.memPort }

// SetRootTable programs the page-table base register (driver writes it
// through the control plane).
func (s *SMMU) SetRootTable(phys uint64) {
	s.rootTable = phys
	s.haveRoot = true
}

// InvalidateAll flushes the uTLB, TLB, and page-walk cache.
func (s *SMMU) InvalidateAll() {
	s.utlb = s.utlb[:0]
	for i := range s.tlbSets {
		for j := range s.tlbSets[i] {
			s.tlbSets[i][j] = tlbEntry{}
		}
	}
	s.pwc = s.pwc[:0]
}

func (s *SMMU) utlbLookup(vpn uint64) (uint64, bool) {
	s.utlbLookups.Inc()
	for i := range s.utlb {
		if s.utlb[i].vpn == vpn {
			s.useCtr++
			s.utlb[i].lastUse = s.useCtr
			return s.utlb[i].ppn, true
		}
	}
	s.utlbMisses.Inc()
	return 0, false
}

func (s *SMMU) utlbFill(vpn, ppn uint64) {
	s.useCtr++
	if len(s.utlb) < s.cfg.UTLBEntries {
		s.utlb = append(s.utlb, utlbEntry{vpn: vpn, ppn: ppn, lastUse: s.useCtr})
		return
	}
	lru := 0
	for i := range s.utlb {
		if s.utlb[i].lastUse < s.utlb[lru].lastUse {
			lru = i
		}
	}
	s.utlb[lru] = utlbEntry{vpn: vpn, ppn: ppn, lastUse: s.useCtr}
}

func (s *SMMU) tlbLookup(vpn uint64) (uint64, bool) {
	set := s.tlbSets[vpn%uint64(len(s.tlbSets))]
	for i := range set {
		if set[i].valid && set[i].vpn == vpn {
			s.useCtr++
			set[i].lastUse = s.useCtr
			return set[i].ppn, true
		}
	}
	return 0, false
}

func (s *SMMU) tlbFill(vpn, ppn uint64) {
	set := s.tlbSets[vpn%uint64(len(s.tlbSets))]
	vi := 0
	for i := range set {
		if !set[i].valid {
			vi = i
			break
		}
		if set[i].lastUse < set[vi].lastUse {
			vi = i
		}
	}
	s.useCtr++
	set[vi] = tlbEntry{valid: true, vpn: vpn, ppn: ppn, lastUse: s.useCtr}
}

// pwcKey tags a VA prefix with the level whose table base it resolves:
// the table consulted at level L is determined by the indices of
// levels 0..L-1, so the key drops the low 9*(WalkLevels-L) vpn bits.
func pwcKey(vpn uint64, level int) uint64 {
	prefix := vpn >> uint(9*(WalkLevels-level))
	return prefix<<3 | uint64(level)
}

func (s *SMMU) pwcLookup(vpn uint64) (level int, base uint64, ok bool) {
	// Prefer the deepest cached level.
	for lv := WalkLevels - 1; lv >= 1; lv-- {
		key := pwcKey(vpn, lv)
		for i := range s.pwc {
			if s.pwc[i].key == key {
				s.useCtr++
				s.pwc[i].lastUse = s.useCtr
				return lv, s.pwc[i].base, true
			}
		}
	}
	return 0, 0, false
}

func (s *SMMU) pwcFill(vpn uint64, level int, base uint64) {
	e := pwcEntry{key: pwcKey(vpn, level), base: base, level: level}
	s.useCtr++
	e.lastUse = s.useCtr
	for i := range s.pwc {
		if s.pwc[i].key == e.key {
			s.pwc[i] = e
			return
		}
	}
	if len(s.pwc) < s.cfg.PWCEntries {
		s.pwc = append(s.pwc, e)
		return
	}
	lru := 0
	for i := range s.pwc {
		if s.pwc[i].lastUse < s.pwc[lru].lastUse {
			lru = i
		}
	}
	s.pwc[lru] = e
}

// RecvTimingReq implements mem.Responder: device request in.
func (s *SMMU) RecvTimingReq(port *mem.ResponsePort, pkt *mem.Packet) bool {
	if s.memQ.Len() >= 64 {
		s.needRetry = true
		return false
	}
	now := s.eq.Now()

	if s.cfg.Bypass {
		pkt.PushState(passThrough{})
		s.memQ.Schedule(pkt, now)
		return true
	}
	if !s.haveRoot {
		panic(fmt.Sprintf("smmu %s: translation requested before SetRootTable", s.name))
	}
	if pkt.Addr%PageBytes+uint64(pkt.Size) > PageBytes {
		panic(fmt.Sprintf("smmu %s: %v crosses a page boundary; the DMA engine must split bursts at pages", s.name, pkt))
	}

	s.translations.Inc()
	vpn := pkt.Addr / PageBytes

	if ppn, ok := s.utlbLookup(vpn); ok {
		s.finishTranslation(pkt, vpn, ppn, now, s.cfg.UTLBLatency)
		return true
	}
	if ppn, ok := s.tlbLookup(vpn); ok {
		s.utlbFill(vpn, ppn)
		s.finishTranslation(pkt, vpn, ppn, now, s.cfg.UTLBLatency+s.cfg.TLBLatency)
		return true
	}
	s.tlbMisses.Inc()

	// Coalesce with an in-flight walk for the same page.
	if w, ok := s.walks[vpn]; ok {
		w.waiting = append(w.waiting, pendingPkt{pkt: pkt, arrived: now})
		return true
	}
	w := &walk{vpn: vpn, started: now, waiting: []pendingPkt{{pkt: pkt, arrived: now}}}
	if level, base, ok := s.pwcLookup(vpn); ok {
		w.level, w.base = level, base
	} else {
		w.level, w.base = 0, s.rootTable
	}
	s.walks[vpn] = w
	s.ptws.Inc()
	if s.activeWalks < s.cfg.Walkers {
		s.activeWalks++
		s.stepWalk(w)
	} else {
		s.walkQueue = append(s.walkQueue, w)
	}
	return true
}

// finishTranslation rewrites the packet address and forwards it.
func (s *SMMU) finishTranslation(pkt *mem.Packet, vpn, ppn uint64, now sim.Tick, lat sim.Tick) {
	pkt.Vaddr = pkt.Addr
	pkt.Addr = ppn*PageBytes + pkt.Addr%PageBytes
	pkt.PushState(passThrough{})
	s.transLat.Sample(float64(lat) / float64(sim.Nanosecond))
	s.stallTime.Add(float64(lat) / float64(sim.Nanosecond))
	s.memQ.Schedule(pkt, now+lat)
}

// stepWalk issues the next PTE read of a walk.
func (s *SMMU) stepWalk(w *walk) {
	ptAddr := w.base + vaIndex(w.vpn*PageBytes, w.level)*PTESize
	rd := mem.NewRead(ptAddr, PTESize)
	rd.PushState(w)
	s.memQ.Schedule(rd, s.eq.Now()+s.cfg.TLBLatency)
}

// RecvTimingResp implements mem.Requestor: translated-request
// responses and PTE reads come back.
func (s *SMMU) RecvTimingResp(port *mem.RequestPort, pkt *mem.Packet) bool {
	switch st := pkt.PopState().(type) {
	case passThrough:
		// Restore the device-visible address on the response.
		if pkt.Vaddr != 0 {
			pkt.Addr = pkt.Vaddr
		}
		s.respQ.Schedule(pkt, s.eq.Now())
		s.retryAfterFree()
		return true
	case *walk:
		s.walkStepDone(st, pkt)
		pkt.Release() // PTE read originated by the walker; consumed here
		return true
	default:
		panic(fmt.Sprintf("smmu %s: unexpected response state %T", s.name, st))
	}
}

func (s *SMMU) walkStepDone(w *walk, pte *mem.Packet) {
	var v uint64
	for i := 0; i < PTESize; i++ {
		v |= uint64(pte.Data[i]) << (8 * i)
	}
	if !PTEValid(v) {
		panic(fmt.Sprintf("smmu %s: fault: invalid PTE at level %d for vpn %#x", s.name, w.level, w.vpn))
	}
	next := PTEAddr(v)
	w.level++
	if w.level < WalkLevels {
		w.base = next
		s.pwcFill(w.vpn, w.level, next)
		s.stepWalk(w)
		return
	}

	// Leaf: translation complete.
	ppn := next / PageBytes
	now := s.eq.Now()
	walkTime := now - w.started
	s.ptwLat.Sample(float64(walkTime) / float64(sim.Nanosecond))
	s.tlbFill(w.vpn, ppn)
	s.utlbFill(w.vpn, ppn)
	for _, pp := range w.waiting {
		pkt := pp.pkt
		lat := now - pp.arrived + s.cfg.UTLBLatency
		s.transLat.Sample(float64(lat) / float64(sim.Nanosecond))
		s.stallTime.Add(float64(lat) / float64(sim.Nanosecond))
		pkt.Vaddr = pkt.Addr
		pkt.Addr = ppn*PageBytes + pkt.Addr%PageBytes
		pkt.PushState(passThrough{})
		s.memQ.Schedule(pkt, now+s.cfg.UTLBLatency)
	}
	delete(s.walks, w.vpn)

	if len(s.walkQueue) > 0 {
		nw := s.walkQueue[0]
		s.walkQueue = s.walkQueue[1:]
		s.stepWalk(nw)
	} else {
		s.activeWalks--
	}
	s.retryAfterFree()
}

func (s *SMMU) retryAfterFree() {
	if !s.needRetry {
		return
	}
	s.needRetry = false
	s.devPort.SendRetryReq()
}

// RecvRetryReq implements mem.Requestor.
func (s *SMMU) RecvRetryReq(port *mem.RequestPort) { s.memQ.RetryReceived() }

// RecvRetryResp implements mem.Responder.
func (s *SMMU) RecvRetryResp(port *mem.ResponsePort) { s.respQ.RetryReceived() }

var _ mem.Requestor = (*SMMU)(nil)
var _ mem.Responder = (*SMMU)(nil)
