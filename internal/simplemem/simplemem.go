// Package simplemem implements a fixed-latency, bandwidth-limited
// memory — the analogue of gem5's SimpleMemory. The paper uses this
// model ("gem5's default DRAM model") for the parametric bandwidth and
// latency sweeps of Fig. 6; it also serves as a lightweight backing
// target in unit tests.
package simplemem

import (
	"accesys/internal/mem"
	"accesys/internal/sim"
	"accesys/internal/stats"
)

// Config parameterizes a Memory.
type Config struct {
	// Range is the address window the memory serves.
	Range mem.AddrRange
	// Latency is the fixed access latency applied to every request.
	Latency sim.Tick
	// BandwidthGBps limits throughput; 0 means unlimited.
	BandwidthGBps float64
}

// Memory is a single-ported memory with fixed latency and a
// serialization-based bandwidth limit: requests occupy the device for
// size/bandwidth and are refused while it is busy, matching gem5's
// SimpleMemory admission model.
type Memory struct {
	name  string
	eq    *sim.EventQueue
	cfg   Config
	port  *mem.ResponsePort
	respQ *mem.PacketQueue
	store *mem.Storage

	busyUntil  sim.Tick
	needRetry  bool
	retryEvent *sim.Event

	reads      *stats.Counter
	writes     *stats.Counter
	bytesRead  *stats.Counter
	bytesWrite *stats.Counter
	latency    *stats.Distribution
}

// New builds a Memory and registers its statistics under name.
func New(name string, eq *sim.EventQueue, reg *stats.Registry, cfg Config) *Memory {
	m := &Memory{name: name, eq: eq, cfg: cfg}
	m.port = mem.NewResponsePort(name+".port", m)
	m.respQ = mem.NewPacketQueue(name+".resp", eq, func(p *mem.Packet) bool {
		return m.port.SendTimingResp(p)
	})
	m.store = mem.NewStorage(cfg.Range.Size())
	m.retryEvent = eq.NewEvent(name+".retry", m.sendRetry)

	g := reg.Group(name)
	m.reads = g.Counter("reads", "read requests served")
	m.writes = g.Counter("writes", "write requests served")
	m.bytesRead = g.Counter("bytes_read", "bytes read")
	m.bytesWrite = g.Counter("bytes_written", "bytes written")
	m.latency = g.Distribution("queue_latency_ns", "admission-to-response latency")
	return m
}

// Port returns the memory's response port for binding to a bus.
func (m *Memory) Port() *mem.ResponsePort { return m.port }

// Ranges returns the address ranges served, for bus routing.
func (m *Memory) Ranges() []mem.AddrRange { return []mem.AddrRange{m.cfg.Range} }

// serialization returns the bandwidth occupancy of a transfer.
func (m *Memory) serialization(bytes int) sim.Tick {
	if m.cfg.BandwidthGBps <= 0 {
		return 0
	}
	// GB/s == bytes/ns; ticks are ps.
	return sim.Tick(float64(bytes)*1000/m.cfg.BandwidthGBps + 0.5)
}

// RecvTimingReq implements mem.Responder.
func (m *Memory) RecvTimingReq(port *mem.ResponsePort, pkt *mem.Packet) bool {
	now := m.eq.Now()
	if m.busyUntil > now {
		m.needRetry = true
		if !m.retryEvent.Pending() {
			m.eq.ScheduleEvent(m.retryEvent, m.busyUntil, sim.PriorityDefault)
		}
		return false
	}

	ser := m.serialization(pkt.Size)
	m.busyUntil = now + ser

	offset := m.cfg.Range.Offset(pkt.Addr)
	m.store.Access(pkt, offset)
	if pkt.Cmd.IsRead() {
		m.reads.Inc()
		m.bytesRead.Add(uint64(pkt.Size))
	} else {
		m.writes.Inc()
		m.bytesWrite.Add(uint64(pkt.Size))
	}

	done := now + ser + m.cfg.Latency
	m.latency.Sample(float64(done-now) / float64(sim.Nanosecond))
	pkt.MakeResponse()
	m.respQ.Schedule(pkt, done)
	return true
}

func (m *Memory) sendRetry() {
	if m.needRetry {
		m.needRetry = false
		m.port.SendRetryReq()
	}
}

// RecvRetryResp implements mem.Responder.
func (m *Memory) RecvRetryResp(port *mem.ResponsePort) { m.respQ.RetryReceived() }

// ReadFunctional implements mem.Functional.
func (m *Memory) ReadFunctional(addr uint64, buf []byte) {
	m.store.Read(m.cfg.Range.Offset(addr), buf)
}

// WriteFunctional implements mem.Functional.
func (m *Memory) WriteFunctional(addr uint64, data []byte) {
	m.store.Write(m.cfg.Range.Offset(addr), data)
}

var _ mem.Responder = (*Memory)(nil)
var _ mem.Functional = (*Memory)(nil)
