package simplemem

import (
	"bytes"
	"testing"

	"accesys/internal/mem"
	"accesys/internal/memtest"
	"accesys/internal/sim"
	"accesys/internal/stats"
)

func newMem(t *testing.T, cfg Config) (*sim.EventQueue, *Memory, *memtest.Requestor) {
	t.Helper()
	eq := sim.NewEventQueue()
	reg := stats.NewRegistry()
	if cfg.Range.Size() == 0 {
		cfg.Range = mem.Range(0, 1<<20)
	}
	m := New("mem", eq, reg, cfg)
	r := memtest.NewRequestor(eq)
	mem.Bind(r.Port, m.Port())
	return eq, m, r
}

func TestReadLatency(t *testing.T) {
	eq, _, r := newMem(t, Config{Latency: 30 * sim.Nanosecond})
	r.Send(mem.NewRead(0x100, 64))
	eq.Run()
	if len(r.Done) != 1 {
		t.Fatalf("completed %d packets, want 1", len(r.Done))
	}
	if r.DoneAt[0] != 30*sim.Nanosecond {
		t.Fatalf("completed at %v, want 30ns", r.DoneAt[0])
	}
	if r.Done[0].Cmd != mem.ReadResp {
		t.Fatalf("cmd = %v", r.Done[0].Cmd)
	}
}

func TestWriteReadRoundtrip(t *testing.T) {
	eq, _, r := newMem(t, Config{Latency: 10 * sim.Nanosecond})
	data := []byte{0xde, 0xad, 0xbe, 0xef}
	r.Send(mem.NewWrite(0x200, data))
	rd := mem.NewRead(0x200, 4)
	r.SendAt(rd, 100*sim.Nanosecond)
	eq.Run()
	if len(r.Done) != 2 {
		t.Fatalf("completed %d packets", len(r.Done))
	}
	if !bytes.Equal(rd.Data, data) {
		t.Fatalf("read back %v, want %v", rd.Data, data)
	}
}

func TestBandwidthSerializes(t *testing.T) {
	// 1 GB/s = 1 byte/ns; a 1000-byte packet occupies 1000 ns.
	eq, _, r := newMem(t, Config{Latency: 0, BandwidthGBps: 1})
	r.Send(mem.NewRead(0, 1000))
	r.Send(mem.NewRead(1000, 1000))
	r.Send(mem.NewRead(2000, 1000))
	eq.Run()
	if len(r.Done) != 3 {
		t.Fatalf("completed %d packets", len(r.Done))
	}
	// First completes at 1000ns; the others serialize behind it.
	if r.DoneAt[0] != 1000*sim.Nanosecond {
		t.Fatalf("first at %v", r.DoneAt[0])
	}
	if r.DoneAt[2] < 3000*sim.Nanosecond {
		t.Fatalf("third at %v, want >= 3000ns (bandwidth limit)", r.DoneAt[2])
	}
}

func TestUnlimitedBandwidth(t *testing.T) {
	eq, _, r := newMem(t, Config{Latency: 5 * sim.Nanosecond})
	for i := 0; i < 4; i++ {
		r.Send(mem.NewRead(uint64(i)*64, 64))
	}
	eq.Run()
	for _, at := range r.DoneAt {
		if at != 5*sim.Nanosecond {
			t.Fatalf("with no bandwidth limit all complete at 5ns, got %v", at)
		}
	}
}

func TestFunctionalBackdoor(t *testing.T) {
	eq, m, r := newMem(t, Config{Latency: sim.Nanosecond, Range: mem.Range(0x4000, 0x1000)})
	m.WriteFunctional(0x4100, []byte{1, 2, 3})
	rd := mem.NewRead(0x4100, 3)
	r.Send(rd)
	eq.Run()
	if !bytes.Equal(rd.Data, []byte{1, 2, 3}) {
		t.Fatalf("timing read saw %v", rd.Data)
	}
	got := make([]byte, 3)
	m.ReadFunctional(0x4100, got)
	if !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Fatalf("functional read saw %v", got)
	}
}

func TestStatsCounted(t *testing.T) {
	eq := sim.NewEventQueue()
	reg := stats.NewRegistry()
	m := New("mem", eq, reg, Config{Latency: sim.Nanosecond, Range: mem.Range(0, 1<<16)})
	r := memtest.NewRequestor(eq)
	mem.Bind(r.Port, m.Port())
	r.Send(mem.NewRead(0, 64))
	r.Send(mem.NewWrite(64, make([]byte, 32)))
	eq.Run()
	if got := reg.Lookup("mem.reads").Value(); got != 1 {
		t.Fatalf("reads = %v", got)
	}
	if got := reg.Lookup("mem.bytes_written").Value(); got != 32 {
		t.Fatalf("bytes_written = %v", got)
	}
}

func TestBackpressuredResponse(t *testing.T) {
	eq, _, r := newMem(t, Config{Latency: sim.Nanosecond})
	r.RefuseResponses = true
	r.Send(mem.NewRead(0, 64))
	eq.Run()
	if len(r.Done) != 0 {
		t.Fatal("response should be stalled")
	}
	r.ReleaseResponses()
	eq.Run()
	if len(r.Done) != 1 {
		t.Fatal("response should complete after release")
	}
}
