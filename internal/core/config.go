// Package core assembles complete AcceSys systems: the CPU cluster
// with its cache hierarchy, the memory bus, host DRAM behind the
// shared LLC, the PCIe tree (root complex, switch, endpoint), the
// SMMU, the IOCache, and the MatrixFlow accelerator with local buffer
// and device-side memory — the architecture of the paper's Fig. 1.
package core

import (
	"fmt"

	"accesys/internal/accel"
	"accesys/internal/dma"
	"accesys/internal/dram"
	"accesys/internal/mem"
	"accesys/internal/pcie"
	"accesys/internal/sim"
	"accesys/internal/smmu"
)

// Fixed physical address map.
const (
	// HostMemBase anchors host DRAM.
	HostMemBase = uint64(0x0000_0000)
	// BARBase is the accelerator's CSR window on the PCIe fabric.
	BARBase = uint64(0x8000_0000)
	// BARSize is the CSR window size.
	BARSize = uint64(0x1_0000)
	// DevMemBase anchors device-side memory (accessible from the CPU
	// across PCIe — the NUMA window — and locally from the
	// accelerator).
	DevMemBase = uint64(0x1_0000_0000)
	// IOVABase is where the driver allocates device-virtual addresses.
	IOVABase = uint64(0x10_0000_0000)
)

// AccessMethod selects how accelerator traffic reaches data
// (Section III.C).
type AccessMethod int

// The three access methods of the paper.
const (
	// DC routes DMA through the coherent cache hierarchy (IOCache and
	// LLC).
	DC AccessMethod = iota
	// DM bypasses caches straight to the memory controller; software
	// manages coherence (driver flushes).
	DM
	// DevMem keeps operands in device-side memory, bypassing PCIe for
	// the accelerator's data path.
	DevMem
)

// String implements fmt.Stringer.
func (a AccessMethod) String() string {
	switch a {
	case DC:
		return "DC"
	case DM:
		return "DM"
	default:
		return "DevMem"
	}
}

// SimpleMemParams configures the fixed-latency host memory used for
// the Fig. 6 parametric sweeps instead of the banked DRAM model.
type SimpleMemParams struct {
	Latency       sim.Tick
	BandwidthGBps float64
}

// Config describes a whole system. Zero values take the paper's
// Table II defaults.
type Config struct {
	Name string

	// CPU cluster.
	CPUClockMHz float64 // default 1000 (1 GHz ARM)
	CPUMLP      int     // default 8
	L1DBytes    int     // default 64 KiB
	L1IBytes    int     // default 32 KiB
	LLCBytes    int     // default 2 MiB
	IOCacheB    int     // default 32 KiB

	// Host memory: banked DRAM by default, or SimpleMem for sweeps.
	HostSpec     dram.Spec // default DDR3_1600
	HostMemBytes uint64    // default 512 MiB simulated window
	HostSimple   *SimpleMemParams

	// Device-side memory.
	DevSpec     dram.Spec // default HBM2_2000
	DevMemBytes uint64    // default 256 MiB

	// Interconnects.
	PCIe       pcie.Config // default: Table II 4x4Gbps gen2
	BusLatency sim.Tick    // default 2 ns
	DevBusLat  sim.Tick    // default 2 ns

	// SMMU.
	SMMU smmu.Config

	// Accelerator.
	Accel accel.Config // BAR is filled in by Build

	// Access method for accelerator data.
	Access AccessMethod

	// Accelerators sizes the cluster: each accelerator gets its own
	// PCIe endpoint, BAR, and DMA engines; they share the switch, the
	// device bus, and device memory (default 1).
	Accelerators int

	// Cluster, when non-empty, makes the cluster heterogeneous: slots
	// expand in order into consecutive endpoints, each member built
	// from the kind's preset applied over the base Accel config. The
	// composition overrides Accelerators (which setDefaults rewrites
	// to the slot-count sum so downstream consumers agree on size).
	Cluster []ClusterSlot

	// Domains partitions the built system into that many concurrently
	// ticking event-loop domains under conservative barrier
	// synchronization (<= 1, the default, is the sequential event loop
	// whose results the golden corpus pins). Domains and Quantum are
	// ordinary config fields so they land in the fingerprint: a
	// partitioned run can never alias a sequential cache entry.
	Domains int

	// Quantum is the barrier window length for Domains > 1. Zero picks
	// the minimum cross-domain channel latency of the build, the
	// largest timing-exact window. Larger quanta run fewer barriers at
	// the cost of bounded extra cross-domain delivery delay (see README
	// "Parallel simulation").
	Quantum sim.Tick

	// Functional carries real data end to end (tests/examples); sweeps
	// run timing-only.
	Functional bool
}

func (c *Config) setDefaults() {
	if c.Name == "" {
		c.Name = "system"
	}
	if c.CPUClockMHz == 0 {
		c.CPUClockMHz = 1000
	}
	if c.CPUMLP == 0 {
		c.CPUMLP = 8
	}
	if c.L1DBytes == 0 {
		c.L1DBytes = 64 << 10
	}
	if c.L1IBytes == 0 {
		c.L1IBytes = 32 << 10
	}
	if c.LLCBytes == 0 {
		c.LLCBytes = 2 << 20
	}
	if c.IOCacheB == 0 {
		c.IOCacheB = 32 << 10
	}
	if c.HostSpec.Name == "" {
		c.HostSpec = dram.DDR3_1600
	}
	if c.HostMemBytes == 0 {
		c.HostMemBytes = 512 << 20
	}
	if c.DevSpec.Name == "" {
		c.DevSpec = dram.HBM2_2000
	}
	if c.DevMemBytes == 0 {
		c.DevMemBytes = 256 << 20
	}
	if c.PCIe.Link.Lanes == 0 {
		c.PCIe.Link = pcie.LinkConfig{Lanes: 4, LaneGbps: 4} // Table II
	}
	if c.BusLatency == 0 {
		c.BusLatency = 2 * sim.Nanosecond
	}
	if c.DevBusLat == 0 {
		c.DevBusLat = 2 * sim.Nanosecond
	}
	if len(c.Cluster) > 0 {
		c.Accelerators = c.NumAccels()
	}
	if c.Accelerators == 0 {
		c.Accelerators = 1
	}
	if c.Accel.HostDMA.BurstBytes == 0 {
		c.Accel.HostDMA.BurstBytes = 256
	}
	c.Accel.Functional = c.Functional
	if c.Access == DM {
		c.Accel.HostDMA.Uncacheable = true
	}
}

// Resolved returns the configuration with every zero field replaced
// by its Table II default — the values Build actually assembles. The
// analytic backend derives its model parameters from this so it can
// never drift from the timing simulation's defaulting.
func (c Config) Resolved() Config {
	c.setDefaults()
	c.Accel = c.Accel.Resolved()
	c.PCIe = c.PCIe.Resolved()
	return c
}

// FingerprintParts returns the canonical cache-key material for the
// config: the struct itself plus a type tag for every interface-valued
// field. JSON encodes interfaces by content only, so two Backend
// implementations that marshal alike (e.g. both to "{}") would
// otherwise alias in the sweep result cache; baking the %T tag in here
// gives every current and future caller the rule automatically.
// Append these parts to the workload identity, e.g.
//
//	sweep.Fingerprint(append([]any{"gemm", n}, cfg.FingerprintParts()...)...)
func (c Config) FingerprintParts() []any {
	return []any{c, fmt.Sprintf("%T", c.Accel.Backend)}
}

// HostRange returns the host DRAM window.
func (c Config) HostRange() mem.AddrRange {
	return mem.Range(HostMemBase, c.HostMemBytes)
}

// DevRange returns the device memory window.
func (c Config) DevRange() mem.AddrRange {
	return mem.Range(DevMemBase, c.DevMemBytes)
}

// BARRange returns accelerator 0's CSR window.
func (c Config) BARRange() mem.AddrRange { return c.BARRangeOf(0) }

// BARRangeOf returns cluster member i's CSR window.
func (c Config) BARRangeOf(i int) mem.AddrRange {
	return mem.Range(BARBase+uint64(i)*BARSize, BARSize)
}

// Named preset configurations of Section V.C. Packet sizes and memory
// technologies follow the paper: 256 B with DDR4 for PCIe-2GB/8GB,
// 256 B with HBM2 for PCIe-64GB, and 64 B bursts with HBM2 DevMem.
func PCIe2GB() Config {
	return Config{
		Name:     "PCIe-2GB",
		HostSpec: dram.DDR4_2400,
		PCIe:     pcie.Config{Link: pcie.LinkForGBps(2, 4)},
		Accel:    accel.Config{HostDMA: dma.Config{BurstBytes: 256}},
	}
}

// PCIe8GB is the moderate-bandwidth host-memory configuration.
func PCIe8GB() Config {
	return Config{
		Name:     "PCIe-8GB",
		HostSpec: dram.DDR4_2400,
		PCIe:     pcie.Config{Link: pcie.LinkForGBps(8, 8)},
		Accel:    accel.Config{HostDMA: dma.Config{BurstBytes: 256}},
	}
}

// PCIe64GB is the high-bandwidth host-memory configuration.
func PCIe64GB() Config {
	return Config{
		Name:     "PCIe-64GB",
		HostSpec: dram.HBM2_2000,
		PCIe:     pcie.Config{Link: pcie.LinkForGBps(64, 16)},
		Accel:    accel.Config{HostDMA: dma.Config{BurstBytes: 256}},
	}
}

// DevMemCfg is the device-side-memory configuration (HBM2, 64 B
// bursts, accelerator data path bypassing PCIe).
func DevMemCfg() Config {
	return Config{
		Name:    "DevMem",
		Access:  DevMem,
		DevSpec: dram.HBM2_2000,
		PCIe:    pcie.Config{Link: pcie.LinkForGBps(8, 8)},
		Accel:   accel.Config{DevDMA: dma.Config{BurstBytes: 64}, HostDMA: dma.Config{BurstBytes: 256}},
	}
}
