package core

import (
	"fmt"
	"math/rand"
	"testing"

	"accesys/internal/accel"
	"accesys/internal/cpu"
	"accesys/internal/driver"
	"accesys/internal/mem"
	"accesys/internal/sim"
)

func randMat(rng *rand.Rand, n int) []int32 {
	m := make([]int32, n)
	for i := range m {
		m[i] = int32(rng.Intn(13) - 6)
	}
	return m
}

// buildWithDriver assembles a system plus its kernel driver.
func buildWithDriver(t *testing.T, cfg Config) (*System, *driver.Driver) {
	t.Helper()
	sys := Build(cfg)
	dcfg := driver.Config{
		DMMode:     cfg.Access == DM,
		DevMemMode: cfg.Access == DevMem,
	}
	drv := driver.New(sys.Cfg.Name+".driver", sys.EQ, sys.Stats, driver.Deps{
		EQ:        sys.EQ,
		MMIO:      sys.AttachHostPort("driver"),
		FuncHost:  sys.FuncHost(),
		FuncDev:   sys.FuncDev(),
		SMMU:      sys.SMMU,
		Accel:     sys.Accel,
		BARBase:   BARBase,
		HostRange: sys.Cfg.HostRange(),
		DevRange:  sys.Cfg.DevRange(),
		IOVABase:  IOVABase,
		Flush:     sys.FlushCaches,
	}, dcfg)
	return sys, drv
}

// runGEMM launches one functional GEMM and returns the result.
func runGEMM(t *testing.T, cfg Config, n int) (driver.Result, *System) {
	t.Helper()
	cfg.Functional = true
	sys, drv := buildWithDriver(t, cfg)
	rng := rand.New(rand.NewSource(42))
	a := randMat(rng, n*n)
	b := randMat(rng, n*n)

	var res driver.Result
	got := false
	drv.RunGEMM(driver.GEMMSpec{M: n, N: n, K: n, A: a, B: b}, func(r driver.Result) {
		res = r
		got = true
	})
	sys.Run()
	if !got {
		t.Fatalf("%s: GEMM did not complete", cfg.Name)
	}

	want := accel.MatMulRef(a, b, n, n, n)
	for i := range want {
		if res.C[i] != want[i] {
			t.Fatalf("%s: C[%d] = %d, want %d", cfg.Name, i, res.C[i], want[i])
		}
	}
	return res, sys
}

func TestGEMMThroughFullSystemDC(t *testing.T) {
	res, sys := runGEMM(t, PCIe8GB(), 64)
	if res.Job.Tiles != 16 {
		t.Fatalf("tiles = %d, want 16", res.Job.Tiles)
	}
	// The DMA path must have used the SMMU: translations > 0.
	if sys.Stats.Lookup("PCIe-8GB.smmu.translations").Value() == 0 {
		t.Fatal("DC-mode DMA must translate through the SMMU")
	}
	// Footprint: 3 buffers of 64x64x4 = 16 KiB -> 4 pages each.
	if res.PagesMapped != 12 {
		t.Fatalf("pages mapped = %d, want 12", res.PagesMapped)
	}
	// The IOCache saw the traffic.
	if sys.Stats.Lookup("PCIe-8GB.iocache.hits").Value()+
		sys.Stats.Lookup("PCIe-8GB.iocache.misses").Value() == 0 {
		t.Fatal("DC mode must route DMA through the IOCache")
	}
}

func TestGEMMThroughFullSystemDM(t *testing.T) {
	cfg := PCIe8GB()
	cfg.Name = "dm"
	cfg.Access = DM
	res, sys := runGEMM(t, cfg, 64)
	if res.C == nil {
		t.Fatal("no result")
	}
	// DM traffic bypasses cache allocation.
	if sys.Stats.Lookup("dm.iocache.bypasses").Value() == 0 {
		t.Fatal("DM mode must bypass the IOCache")
	}
}

func TestGEMMThroughFullSystemDevMem(t *testing.T) {
	cfg := DevMemCfg()
	cfg.Functional = true
	res, sys := runGEMM(t, cfg, 64)
	if res.C == nil {
		t.Fatal("no result")
	}
	// DevMem mode: no SMMU translations for operand traffic (only the
	// MSI write goes upstream, untranslated pages... the MSI write does
	// translate; operand traffic must not dominate).
	tr := sys.Stats.Lookup("DevMem.smmu.translations").Value()
	if tr > 4 {
		t.Fatalf("DevMem mode should barely touch the SMMU, translations=%v", tr)
	}
	// Device DRAM served the operands.
	if sys.Stats.Lookup("DevMem.devmem.reads").Value() == 0 {
		t.Fatal("DevMem mode must read from device DRAM")
	}
}

func TestBandwidthOrderingAcrossConfigs(t *testing.T) {
	// Timing-only GEMM at the three PCIe tiers: higher bandwidth,
	// lower time (memory-bound region, paper Fig. 3 / Fig. 7).
	dur := func(cfg Config) sim.Tick {
		cfg.Functional = false
		sys, drv := buildWithDriver(t, cfg)
		var d sim.Tick
		drv.RunGEMM(driver.GEMMSpec{M: 256, N: 256, K: 256}, func(r driver.Result) {
			d = r.Job.Duration()
		})
		sys.Run()
		if d == 0 {
			t.Fatalf("%s: job did not run", cfg.Name)
		}
		return d
	}
	t2 := dur(PCIe2GB())
	t8 := dur(PCIe8GB())
	t64 := dur(PCIe64GB())
	if !(t64 < t8 && t8 < t2) {
		t.Fatalf("bandwidth ordering violated: 2GB=%v 8GB=%v 64GB=%v", t2, t8, t64)
	}
	if float64(t2)/float64(t8) < 1.5 {
		t.Fatalf("2GB/s vs 8GB/s speedup only %.2f", float64(t2)/float64(t8))
	}
}

func TestDevMemBeatsLowBandwidthPCIe(t *testing.T) {
	// Paper Fig. 5: device-side memory outperforms host memory behind
	// a slow link.
	dur := func(cfg Config) sim.Tick {
		sys, drv := buildWithDriver(t, cfg)
		var d sim.Tick
		drv.RunGEMM(driver.GEMMSpec{M: 256, N: 256, K: 256}, func(r driver.Result) {
			d = r.Job.Duration()
		})
		sys.Run()
		return d
	}
	slow := PCIe2GB()
	tPCIe := dur(slow)
	tDev := dur(DevMemCfg())
	if tDev >= tPCIe {
		t.Fatalf("DevMem (%v) should beat PCIe-2GB (%v)", tDev, tPCIe)
	}
}

func TestCPUNUMAPenaltyOnDevMem(t *testing.T) {
	// The paper's Fig. 8 mechanism: CPU operators touching device
	// memory across PCIe are far slower than on host DRAM.
	cfg := PCIe8GB()
	cfg.Name = "numa"
	sys, _ := buildWithDriver(t, cfg)

	hostBuf := uint64(0x100000)
	devBuf := DevMemBase + 0x10000

	var tHost, tDev sim.Tick
	start := sys.Now()
	sys.CPU.Run([]cpu.Op{{Name: "near", ReadAddr: hostBuf, ReadBytes: 64 << 10}}, func() {
		tHost = sys.Now() - start
		mid := sys.Now()
		sys.CPU.Run([]cpu.Op{{Name: "far", ReadAddr: devBuf, ReadBytes: 64 << 10}}, func() {
			tDev = sys.Now() - mid
		})
	})
	sys.Run()
	if tHost == 0 || tDev == 0 {
		t.Fatal("CPU ops did not run")
	}
	ratio := float64(tDev) / float64(tHost)
	if ratio < 3 {
		t.Fatalf("NUMA penalty ratio = %.1f, want >= 3 (host=%v dev=%v)", ratio, tHost, tDev)
	}
}

func TestSimpleHostMemSweepHook(t *testing.T) {
	// Fig. 6 substrate: host memory as fixed-latency/bandwidth model.
	cfg := PCIe8GB()
	cfg.Name = "simple"
	cfg.Functional = true
	cfg.HostSimple = &SimpleMemParams{Latency: 30 * sim.Nanosecond, BandwidthGBps: 50}
	res, sys := runGEMM(t, cfg, 64)
	if res.C == nil {
		t.Fatal("no result")
	}
	if sys.HostSimple == nil || sys.HostDRAM != nil {
		t.Fatal("HostSimple should replace the banked DRAM")
	}
}

func TestComputeOverrideKnob(t *testing.T) {
	// Fig. 2 substrate: the compute-time override must swing the job
	// into the compute-bound region.
	dur := func(override sim.Tick) sim.Tick {
		cfg := PCIe8GB()
		cfg.Name = "roofline"
		cfg.Accel.ComputeOverride = override
		sys, drv := buildWithDriver(t, cfg)
		var d sim.Tick
		drv.RunGEMM(driver.GEMMSpec{M: 128, N: 128, K: 128}, func(r driver.Result) {
			d = r.Job.Duration()
		})
		sys.Run()
		return d
	}
	fast := dur(10 * sim.Nanosecond)
	slow := dur(5 * sim.Microsecond)
	if float64(slow) < 2*float64(fast) {
		t.Fatalf("compute override has no effect: fast=%v slow=%v", fast, slow)
	}
}

func TestTableIIDefaults(t *testing.T) {
	cfg := Config{}
	cfg.setDefaults()
	if cfg.CPUClockMHz != 1000 {
		t.Fatal("CPU clock default should be 1 GHz")
	}
	if cfg.L1DBytes != 64<<10 || cfg.L1IBytes != 32<<10 || cfg.LLCBytes != 2<<20 || cfg.IOCacheB != 32<<10 {
		t.Fatal("cache sizes should match Table II")
	}
	if cfg.HostSpec.Name != "DDR3-1600" {
		t.Fatalf("host memory default = %s, want DDR3-1600", cfg.HostSpec.Name)
	}
	if cfg.PCIe.Link.Lanes != 4 || cfg.PCIe.Link.LaneGbps != 4 {
		t.Fatal("PCIe default should be 4 lanes x 4 Gbps")
	}
}

func TestSequentialJobsSameSystem(t *testing.T) {
	cfg := PCIe8GB()
	cfg.Name = "seq"
	cfg.Functional = true
	sys, drv := buildWithDriver(t, cfg)
	rng := rand.New(rand.NewSource(7))

	n := 32
	a1, b1 := randMat(rng, n*n), randMat(rng, n*n)
	a2, b2 := randMat(rng, n*n), randMat(rng, n*n)
	var r1, r2 driver.Result
	drv.RunGEMM(driver.GEMMSpec{M: n, N: n, K: n, A: a1, B: b1}, func(r driver.Result) {
		r1 = r
		drv.RunGEMM(driver.GEMMSpec{M: n, N: n, K: n, A: a2, B: b2}, func(r driver.Result) {
			r2 = r
		})
	})
	sys.Run()
	w1 := accel.MatMulRef(a1, b1, n, n, n)
	w2 := accel.MatMulRef(a2, b2, n, n, n)
	for i := range w1 {
		if r1.C[i] != w1[i] {
			t.Fatalf("job1 C[%d] wrong", i)
		}
		if r2.C[i] != w2[i] {
			t.Fatalf("job2 C[%d] wrong", i)
		}
	}
	if r2.Launched < r1.Completed {
		t.Fatal("jobs must serialize")
	}
}

// TestAcceleratorCluster exercises the paper's "accelerator cluster"
// box: two MatrixFlow instances behind the switch, each with its own
// endpoint, BAR, and driver, running concurrent functional GEMMs.
// (The shared SMMU models a single translation stream, so the cluster
// runs with physical addressing; per-stream SMMU contexts are future
// work.)
func TestAcceleratorCluster(t *testing.T) {
	cfg := PCIe8GB()
	cfg.Name = "cluster"
	cfg.Functional = true
	cfg.Accelerators = 2
	cfg.SMMU.Bypass = true
	sys := Build(cfg)

	newDrv := func(i int, hostLo, hostHi uint64) *driver.Driver {
		return driver.New(fmt.Sprintf("cluster.drv%d", i), sys.EQ, sys.Stats, driver.Deps{
			EQ:        sys.EQ,
			MMIO:      sys.AttachHostPort(fmt.Sprintf("drv%d", i)),
			FuncHost:  sys.FuncHost(),
			FuncDev:   sys.FuncDev(),
			SMMU:      sys.SMMU,
			Accel:     sys.Accels[i],
			BARBase:   BARBase + uint64(i)*BARSize,
			HostRange: mem.Range(hostLo, hostHi-hostLo),
			DevRange:  sys.Cfg.DevRange(),
			IOVABase:  IOVABase,
		}, driver.Config{NoIOMMU: true})
	}
	d0 := newDrv(0, 0, 128<<20)
	d1 := newDrv(1, 128<<20, 256<<20)

	rng := rand.New(rand.NewSource(11))
	n := 64
	a0, b0 := randMat(rng, n*n), randMat(rng, n*n)
	a1, b1 := randMat(rng, n*n), randMat(rng, n*n)

	var r0, r1 driver.Result
	d0.RunGEMM(driver.GEMMSpec{M: n, N: n, K: n, A: a0, B: b0}, func(r driver.Result) { r0 = r })
	d1.RunGEMM(driver.GEMMSpec{M: n, N: n, K: n, A: a1, B: b1}, func(r driver.Result) { r1 = r })
	sys.Run()

	if r0.C == nil || r1.C == nil {
		t.Fatal("cluster jobs did not complete")
	}
	w0 := accel.MatMulRef(a0, b0, n, n, n)
	w1 := accel.MatMulRef(a1, b1, n, n, n)
	for i := range w0 {
		if r0.C[i] != w0[i] {
			t.Fatalf("accel0 C[%d] wrong", i)
		}
		if r1.C[i] != w1[i] {
			t.Fatalf("accel1 C[%d] wrong", i)
		}
	}
	// True concurrency: the second job must not have waited for the
	// first (both launched at tick 0).
	if r1.Launched >= r0.Completed {
		t.Fatal("cluster jobs serialized")
	}
	// And both endpoints carried traffic.
	for i := 0; i < 2; i++ {
		up := sys.Stats.Lookup(fmt.Sprintf("cluster.pcie.ep%d.tlps_up", i)).Value()
		if up == 0 {
			t.Fatalf("endpoint %d saw no traffic", i)
		}
	}
}

// TestClusterContention verifies the shared link is a real resource:
// two concurrent jobs take longer than one, but less than two serial
// ones.
func TestClusterContention(t *testing.T) {
	single := func() sim.Tick {
		cfg := PCIe2GB()
		cfg.Name = "single"
		cfg.SMMU.Bypass = true
		sys := Build(cfg)
		drv := driver.New("single.drv", sys.EQ, sys.Stats, driver.Deps{
			EQ: sys.EQ, MMIO: sys.AttachHostPort("drv"),
			FuncHost: sys.FuncHost(), FuncDev: sys.FuncDev(),
			SMMU: sys.SMMU, Accel: sys.Accel, BARBase: BARBase,
			HostRange: sys.Cfg.HostRange(), DevRange: sys.Cfg.DevRange(),
			IOVABase: IOVABase,
		}, driver.Config{NoIOMMU: true})
		var d sim.Tick
		drv.RunGEMM(driver.GEMMSpec{M: 256, N: 256, K: 256}, func(r driver.Result) { d = r.Job.Duration() })
		sys.Run()
		return d
	}()

	cfg := PCIe2GB()
	cfg.Name = "contend"
	cfg.Accelerators = 2
	cfg.SMMU.Bypass = true
	sys := Build(cfg)
	mk := func(i int, lo, hi uint64) *driver.Driver {
		return driver.New(fmt.Sprintf("contend.drv%d", i), sys.EQ, sys.Stats, driver.Deps{
			EQ: sys.EQ, MMIO: sys.AttachHostPort(fmt.Sprintf("drv%d", i)),
			FuncHost: sys.FuncHost(), FuncDev: sys.FuncDev(),
			SMMU: sys.SMMU, Accel: sys.Accels[i],
			BARBase:   BARBase + uint64(i)*BARSize,
			HostRange: mem.Range(lo, hi-lo), DevRange: sys.Cfg.DevRange(),
			IOVABase: IOVABase,
		}, driver.Config{NoIOMMU: true})
	}
	d0 := mk(0, 0, 128<<20)
	d1 := mk(1, 128<<20, 256<<20)
	var t0, t1 sim.Tick
	d0.RunGEMM(driver.GEMMSpec{M: 256, N: 256, K: 256}, func(r driver.Result) { t0 = r.Job.Duration() })
	d1.RunGEMM(driver.GEMMSpec{M: 256, N: 256, K: 256}, func(r driver.Result) { t1 = r.Job.Duration() })
	sys.Run()

	worst := t0
	if t1 > worst {
		worst = t1
	}
	if worst <= single+single/10 {
		t.Fatalf("no contention visible: single=%v concurrent-worst=%v", single, worst)
	}
	if worst >= 2*single {
		t.Fatalf("cluster fully serialized: single=%v concurrent-worst=%v", single, worst)
	}
}
