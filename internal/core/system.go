package core

import (
	"fmt"

	"accesys/internal/accel"
	"accesys/internal/cache"
	"accesys/internal/cpu"
	"accesys/internal/dram"
	"accesys/internal/interconnect"
	"accesys/internal/mem"
	"accesys/internal/pcie"
	"accesys/internal/sim"
	"accesys/internal/simplemem"
	"accesys/internal/smmu"
	"accesys/internal/stats"
)

// Cache hierarchy latencies Build wires in (shared with the analytic
// backend, which models the coherent path from the same values).
const (
	// L1HitLatency is the L1 data/instruction lookup time.
	L1HitLatency = 2 * sim.Nanosecond
	// LLCHitLatency is the shared last-level cache lookup time.
	LLCHitLatency = 10 * sim.Nanosecond
	// IOCacheHitLatency is the DMA-path cache lookup time.
	IOCacheHitLatency = 4 * sim.Nanosecond
)

// System is a fully wired AcceSys platform.
type System struct {
	Cfg   Config
	EQ    *sim.EventQueue
	Stats *stats.Registry

	CPU     *cpu.CPU
	L1D     *cache.Cache
	L1I     *cache.Cache
	LLC     *cache.Cache
	IOCache *cache.Cache

	Bus    *interconnect.Bus
	DevBus *interconnect.Bus

	HostDRAM   *dram.DRAM        // nil when HostSimple is used
	HostSimple *simplemem.Memory // nil when banked DRAM is used
	DevDRAM    *dram.DRAM

	Tree *pcie.Tree
	SMMU *smmu.SMMU
	// Accel is cluster member 0; Accels lists the whole cluster.
	Accel  *accel.MatrixFlow
	Accels []*accel.MatrixFlow

	hostFunc mem.Functional
}

// Build wires a System from a Config.
func Build(cfg Config) *System {
	cfg.setDefaults()
	eq := sim.NewEventQueue()
	reg := stats.NewRegistry()
	n := cfg.Name

	s := &System{Cfg: cfg, EQ: eq, Stats: reg}

	// --- Host memory behind the LLC ---------------------------------
	var hostPort *mem.ResponsePort
	var hostFunc mem.Functional
	if cfg.HostSimple != nil {
		s.HostSimple = simplemem.New(n+".hostmem", eq, reg, simplemem.Config{
			Range:         cfg.HostRange(),
			Latency:       cfg.HostSimple.Latency,
			BandwidthGBps: cfg.HostSimple.BandwidthGBps,
		})
		hostPort = s.HostSimple.Port()
		hostFunc = s.HostSimple
	} else {
		s.HostDRAM = dram.New(n+".hostmem", eq, reg, dram.Config{
			Spec:  cfg.HostSpec,
			Range: cfg.HostRange(),
		})
		hostPort = s.HostDRAM.Port()
		hostFunc = s.HostDRAM
	}

	s.LLC = cache.New(n+".llc", eq, reg, cache.Config{
		SizeBytes:     cfg.LLCBytes,
		Assoc:         16,
		HitLatency:    LLCHitLatency,
		MSHRs:         64,
		MemQueueDepth: 64,
	})
	mem.Bind(s.LLC.MemPort(), hostPort)
	s.LLC.SetDownstreamFunctional(hostFunc)

	// --- Memory bus --------------------------------------------------
	s.Bus = interconnect.New(n+".membus", eq, reg, interconnect.Config{
		Latency:    cfg.BusLatency,
		QueueDepth: 64,
	})
	mem.Bind(s.Bus.AddResponderPort("llc", cfg.HostRange()), s.LLC.CPUPort())

	// --- CPU cluster -------------------------------------------------
	s.CPU = cpu.New(n+".cpu", eq, reg, cpu.Config{ClockMHz: cfg.CPUClockMHz, MLP: cfg.CPUMLP})
	s.L1D = cache.New(n+".l1d", eq, reg, cache.Config{
		SizeBytes:  cfg.L1DBytes,
		Assoc:      4,
		HitLatency: L1HitLatency,
		MSHRs:      16,
	})
	s.L1I = cache.New(n+".l1i", eq, reg, cache.Config{
		SizeBytes:  cfg.L1IBytes,
		Assoc:      4,
		HitLatency: L1HitLatency,
		MSHRs:      8,
	})
	mem.Bind(s.CPU.Port(), s.L1D.CPUPort())
	mem.Bind(s.L1D.MemPort(), s.Bus.AddRequestorPort("l1d"))
	mem.Bind(s.L1I.MemPort(), s.Bus.AddRequestorPort("l1i"))
	s.L1D.SetDownstreamFunctional(s.LLC)
	s.L1I.SetDownstreamFunctional(s.LLC)

	// --- PCIe fabric --------------------------------------------------
	// Each cluster member claims its BAR; endpoint 0 also claims the
	// device-memory window (members share DevMem through the device bus).
	var epRanges [][]mem.AddrRange
	for i := 0; i < cfg.Accelerators; i++ {
		ranges := []mem.AddrRange{cfg.BARRangeOf(i)}
		if i == 0 {
			ranges = append(ranges, cfg.DevRange())
		}
		epRanges = append(epRanges, ranges)
	}
	s.Tree = pcie.NewTree(n+".pcie", eq, reg, cfg.PCIe, epRanges...)

	// Host-initiated traffic to the device windows goes through the RC.
	rcPort := s.Bus.AddResponderPort("rc", cfg.BARRangeOf(0))
	for i := 1; i < cfg.Accelerators; i++ {
		s.Bus.AddRange(rcPort, cfg.BARRangeOf(i))
	}
	s.Bus.AddRange(rcPort, cfg.DevRange())
	mem.Bind(rcPort, s.Tree.RC.HostPort())

	// --- SMMU + IOCache on the upstream (DMA) path --------------------
	s.SMMU = smmu.New(n+".smmu", eq, reg, cfg.SMMU)
	mem.Bind(s.Tree.RC.UpstreamPort(), s.SMMU.DevPort())

	s.IOCache = cache.New(n+".iocache", eq, reg, cache.Config{
		SizeBytes:     cfg.IOCacheB,
		Assoc:         4,
		HitLatency:    IOCacheHitLatency,
		MSHRs:         128,
		MemQueueDepth: 128,
	})
	mem.Bind(s.SMMU.MemPort(), s.IOCache.CPUPort())
	mem.Bind(s.IOCache.MemPort(), s.Bus.AddRequestorPort("iocache"))
	s.IOCache.SetDownstreamFunctional(s.LLC)

	// Coherence: the LLC snoops every upper cache.
	s.LLC.RegisterSnooper(s.L1D)
	s.LLC.RegisterSnooper(s.L1I)
	s.LLC.RegisterSnooper(s.IOCache)

	// --- Device side ---------------------------------------------------
	s.DevDRAM = dram.New(n+".devmem", eq, reg, dram.Config{
		Spec:  cfg.DevSpec,
		Range: cfg.DevRange(),
	})

	s.DevBus = interconnect.New(n+".devbus", eq, reg, interconnect.Config{
		Latency:    cfg.DevBusLat,
		QueueDepth: 64,
	})
	mem.Bind(s.DevBus.AddResponderPort("devmem", cfg.DevRange()), s.DevDRAM.Port())

	for i := 0; i < cfg.Accelerators; i++ {
		acfg := cfg.Accel
		acfg.BAR = cfg.BARRangeOf(i)
		a := accel.New(fmt.Sprintf("%s.accel%d", n, i), eq, reg, acfg)
		s.Accels = append(s.Accels, a)

		mem.Bind(s.Tree.EP(i).BusPort(), s.DevBus.AddRequestorPort(fmt.Sprintf("ep%d", i)))
		mem.Bind(a.DevDMAPort(), s.DevBus.AddRequestorPort(fmt.Sprintf("devdma%d", i)))
		mem.Bind(s.DevBus.AddResponderPort(fmt.Sprintf("csr%d", i), cfg.BARRangeOf(i)), a.CSRPort())
		mem.Bind(a.HostDMAPort(), s.Tree.EP(i).DevPort())
	}
	s.Accel = s.Accels[0]

	s.hostFunc = hostFunc
	return s
}

// AttachHostPort adds a requestor port on the memory bus for a
// host-side agent (the kernel driver's MMIO path).
func (s *System) AttachHostPort(name string) *mem.ResponsePort {
	return s.Bus.AddRequestorPort(name)
}

// hostView is the coherent functional view of host memory: the LLC
// chain provides the base contents and every upper cache overlays its
// lines.
type hostView struct{ s *System }

// ReadFunctional implements mem.Functional.
func (h hostView) ReadFunctional(addr uint64, buf []byte) {
	h.s.LLC.ReadFunctional(addr, buf)
	h.s.L1D.OverlayFunctional(addr, buf)
	h.s.L1I.OverlayFunctional(addr, buf)
	h.s.IOCache.OverlayFunctional(addr, buf)
}

// WriteFunctional implements mem.Functional.
func (h hostView) WriteFunctional(addr uint64, data []byte) {
	h.s.L1D.UpdateFunctional(addr, data)
	h.s.L1I.UpdateFunctional(addr, data)
	h.s.IOCache.UpdateFunctional(addr, data)
	h.s.LLC.WriteFunctional(addr, data)
}

// FuncHost returns the coherent functional view of host memory used by
// the driver and by tests.
func (s *System) FuncHost() mem.Functional { return hostView{s} }

// FuncDev returns the functional view of device memory.
func (s *System) FuncDev() mem.Functional { return s.DevDRAM }

// FlushCaches writes back and invalidates the whole cache hierarchy —
// the driver-managed coherence step of the DM access method.
func (s *System) FlushCaches() {
	s.L1D.FlushAll()
	s.L1I.FlushAll()
	s.IOCache.FlushAll()
	s.LLC.FlushAll()
}

// Run drains the event queue.
func (s *System) Run() { s.EQ.Run() }

// Now returns the current simulation time.
func (s *System) Now() sim.Tick { return s.EQ.Now() }
