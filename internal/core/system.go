package core

import (
	"fmt"

	"accesys/internal/accel"
	"accesys/internal/cache"
	"accesys/internal/cpu"
	"accesys/internal/dram"
	"accesys/internal/interconnect"
	"accesys/internal/mem"
	"accesys/internal/pcie"
	"accesys/internal/sim"
	"accesys/internal/simplemem"
	"accesys/internal/smmu"
	"accesys/internal/stats"
)

// Cache hierarchy latencies Build wires in (shared with the analytic
// backend, which models the coherent path from the same values).
const (
	// L1HitLatency is the L1 data/instruction lookup time.
	L1HitLatency = 2 * sim.Nanosecond
	// LLCHitLatency is the shared last-level cache lookup time.
	LLCHitLatency = 10 * sim.Nanosecond
	// IOCacheHitLatency is the DMA-path cache lookup time.
	IOCacheHitLatency = 4 * sim.Nanosecond
)

// CrossDepth bounds each direction of a cross-domain channel in
// packets — the "bounded inbox" of the conservative scheme.
const CrossDepth = 32

// System is a fully wired AcceSys platform.
type System struct {
	Cfg   Config
	EQ    *sim.EventQueue
	Stats *stats.Registry

	// Par coordinates the tick-domains of a partitioned build
	// (Cfg.Domains > 1); nil for the sequential event loop. EQ is the
	// host complex's queue in both modes — the driver, CPU, and every
	// pre-run scheduling call target it exactly as before.
	Par *sim.Parallel

	CPU     *cpu.CPU
	L1D     *cache.Cache
	L1I     *cache.Cache
	LLC     *cache.Cache
	IOCache *cache.Cache

	Bus    *interconnect.Bus
	DevBus *interconnect.Bus

	HostDRAM   *dram.DRAM        // nil when HostSimple is used
	HostSimple *simplemem.Memory // nil when banked DRAM is used
	DevDRAM    *dram.DRAM

	Tree *pcie.Tree
	SMMU *smmu.SMMU
	// Accel is cluster member 0; Accels lists the whole cluster.
	Accel  *accel.MatrixFlow
	Accels []*accel.MatrixFlow

	hostFunc mem.Functional
	hostDom  *sim.Domain
}

// domainPlan assigns every partition of the system graph to a
// tick-domain along the natural latency boundaries: the host complex
// (CPU, caches, memory bus, host DRAM, SMMU, IOCache, driver), the
// PCIe tree below the root complex, the device complex (device bus and
// device DRAM), and the accelerator cluster. All fields are nil for a
// sequential build.
type domainPlan struct {
	par    *sim.Parallel
	host   *sim.Domain
	pcie   *sim.Domain
	dev    *sim.Domain
	accels []*sim.Domain // one entry per cluster member
}

// planDomains builds the domain ladder for cfg.Domains: 1 = the
// sequential loop, 2 splits the host from everything below the root
// complex, 3 separates the PCIe tree from the device complex, 4 gives
// the accelerator cluster its own domain, and beyond 4 the cluster
// members spread over the extra domains in blocks that follow the
// fabric shape (endpoints sharing a leaf switch stay in one domain).
// Requests past the topology-derived cap (Config.DomainCap) are
// clamped — the surplus domains would hold no components and only pay
// barrier cost. scenario.Options applies the same clamp before
// fingerprinting, so a clamped request can never alias a distinct
// cache entry; this one is the in-core backstop for direct Build
// callers.
//
// A zero cfg.Quantum defaults to the minimum cut latency the plan
// instantiates, the largest window that is still timing-exact: a
// message posted during window W can never be due before W+1 starts,
// so barrier delivery never clamps. Explicit larger quanta run fewer
// barriers at the cost of bounded extra cross-domain delivery delay
// (pinned by the `accesys pareq` divergence audit).
func planDomains(cfg Config, pcieLat, devLat sim.Tick) domainPlan {
	nd := cfg.Domains
	if max := cfg.DomainCap(); nd > max {
		nd = max
	}
	if nd <= 1 {
		return domainPlan{}
	}
	q := cfg.Quantum
	if q <= 0 {
		// The host|pcie|dev cuts all carry the PCIe flight latency;
		// ladders that isolate accelerators add device-bus-latency cuts.
		q = pcieLat
		if nd >= 4 && devLat < q {
			q = devLat
		}
	}
	n := cfg.Name
	p := domainPlan{par: sim.NewParallel(q)}
	p.host = p.par.AddDomain(n + ".host")
	p.accels = make([]*sim.Domain, cfg.Accelerators)
	switch {
	case nd == 2:
		below := p.par.AddDomain(n + ".dev")
		p.pcie, p.dev = below, below
		for i := range p.accels {
			p.accels[i] = below
		}
	case nd == 3:
		p.pcie = p.par.AddDomain(n + ".pcie")
		p.dev = p.par.AddDomain(n + ".dev")
		for i := range p.accels {
			p.accels[i] = p.dev
		}
	default:
		p.pcie = p.par.AddDomain(n + ".pcie")
		p.dev = p.par.AddDomain(n + ".dev")
		clusters := make([]*sim.Domain, nd-3)
		for j := range clusters {
			clusters[j] = p.par.AddDomain(fmt.Sprintf("%s.accel%d", n, j))
		}
		// Partitioning follows the tree: with fewer domains than leaf
		// switches, members that share a leaf share a domain (the leaf
		// is their synchronization point anyway); with at least one
		// domain per leaf, members split into contiguous index blocks,
		// which on a flat switch is simply per-endpoint.
		nAcc := cfg.Accelerators
		nLeaf := cfg.PCIe.Topology.LeafCount(nAcc)
		for i := range p.accels {
			var j int
			if len(clusters) >= nLeaf {
				j = i * len(clusters) / nAcc
			} else {
				j = cfg.PCIe.Topology.LeafOf(i) * len(clusters) / nLeaf
			}
			p.accels[i] = clusters[j]
		}
	}
	return p
}

// Build wires a System from a Config.
func Build(cfg Config) *System {
	if err := ValidateCluster(cfg.Cluster); err != nil {
		panic(err)
	}
	cfg.setDefaults()
	reg := stats.NewRegistry()
	n := cfg.Name

	// Cut latencies: crossings that model the PCIe boundary use the
	// link's flight latency, device-side crossings the device bus
	// latency.
	pcieLat := cfg.PCIe.Link.PropDelay
	if pcieLat == 0 {
		pcieLat = 5 * sim.Nanosecond
	}
	devLat := cfg.DevBusLat

	plan := planDomains(cfg, pcieLat, devLat)
	var seqEQ *sim.EventQueue
	if plan.par == nil {
		seqEQ = sim.NewEventQueue()
	}
	// eqFor resolves a component's event queue: its domain's queue in
	// a partitioned build, the single shared queue otherwise.
	eqFor := func(d *sim.Domain) *sim.EventQueue {
		if d == nil {
			return seqEQ
		}
		return d.EQ
	}
	// bind joins two ports directly when both sides tick in the same
	// domain, and through a latency-annotated bounded cross-domain
	// channel when they do not.
	bind := func(rq *mem.RequestPort, da *sim.Domain, rs *mem.ResponsePort, db *sim.Domain, lat sim.Tick) {
		if da == db {
			mem.Bind(rq, rs)
			return
		}
		mem.CrossBind(da, db, rq, rs, lat, CrossDepth)
	}
	hostEQ := eqFor(plan.host)
	s := &System{Cfg: cfg, EQ: hostEQ, Stats: reg, Par: plan.par, hostDom: plan.host}

	// --- Host memory behind the LLC ---------------------------------
	var hostPort *mem.ResponsePort
	var hostFunc mem.Functional
	if cfg.HostSimple != nil {
		s.HostSimple = simplemem.New(n+".hostmem", hostEQ, reg, simplemem.Config{
			Range:         cfg.HostRange(),
			Latency:       cfg.HostSimple.Latency,
			BandwidthGBps: cfg.HostSimple.BandwidthGBps,
		})
		hostPort = s.HostSimple.Port()
		hostFunc = s.HostSimple
	} else {
		s.HostDRAM = dram.New(n+".hostmem", hostEQ, reg, dram.Config{
			Spec:  cfg.HostSpec,
			Range: cfg.HostRange(),
		})
		hostPort = s.HostDRAM.Port()
		hostFunc = s.HostDRAM
	}

	s.LLC = cache.New(n+".llc", hostEQ, reg, cache.Config{
		SizeBytes:     cfg.LLCBytes,
		Assoc:         16,
		HitLatency:    LLCHitLatency,
		MSHRs:         64,
		MemQueueDepth: 64,
	})
	mem.Bind(s.LLC.MemPort(), hostPort)
	s.LLC.SetDownstreamFunctional(hostFunc)

	// --- Memory bus --------------------------------------------------
	s.Bus = interconnect.New(n+".membus", hostEQ, reg, interconnect.Config{
		Latency:    cfg.BusLatency,
		QueueDepth: 64,
	})
	mem.Bind(s.Bus.AddResponderPort("llc", cfg.HostRange()), s.LLC.CPUPort())

	// --- CPU cluster -------------------------------------------------
	s.CPU = cpu.New(n+".cpu", hostEQ, reg, cpu.Config{ClockMHz: cfg.CPUClockMHz, MLP: cfg.CPUMLP})
	s.L1D = cache.New(n+".l1d", hostEQ, reg, cache.Config{
		SizeBytes:  cfg.L1DBytes,
		Assoc:      4,
		HitLatency: L1HitLatency,
		MSHRs:      16,
	})
	s.L1I = cache.New(n+".l1i", hostEQ, reg, cache.Config{
		SizeBytes:  cfg.L1IBytes,
		Assoc:      4,
		HitLatency: L1HitLatency,
		MSHRs:      8,
	})
	mem.Bind(s.CPU.Port(), s.L1D.CPUPort())
	mem.Bind(s.L1D.MemPort(), s.Bus.AddRequestorPort("l1d"))
	mem.Bind(s.L1I.MemPort(), s.Bus.AddRequestorPort("l1i"))
	s.L1D.SetDownstreamFunctional(s.LLC)
	s.L1I.SetDownstreamFunctional(s.LLC)

	// --- PCIe fabric --------------------------------------------------
	// Each cluster member claims its BAR; endpoint 0 also claims the
	// device-memory window (members share DevMem through the device bus).
	var epRanges [][]mem.AddrRange
	for i := 0; i < cfg.Accelerators; i++ {
		ranges := []mem.AddrRange{cfg.BARRangeOf(i)}
		if i == 0 {
			ranges = append(ranges, cfg.DevRange())
		}
		epRanges = append(epRanges, ranges)
	}
	s.Tree = pcie.NewTree(n+".pcie", eqFor(plan.pcie), reg, cfg.PCIe, epRanges...)

	// Host-initiated traffic to the device windows goes through the RC.
	rcPort := s.Bus.AddResponderPort("rc", cfg.BARRangeOf(0))
	for i := 1; i < cfg.Accelerators; i++ {
		s.Bus.AddRange(rcPort, cfg.BARRangeOf(i))
	}
	s.Bus.AddRange(rcPort, cfg.DevRange())
	bind(rcPort, plan.host, s.Tree.RC.HostPort(), plan.pcie, pcieLat)

	// --- SMMU + IOCache on the upstream (DMA) path --------------------
	s.SMMU = smmu.New(n+".smmu", hostEQ, reg, cfg.SMMU)
	bind(s.Tree.RC.UpstreamPort(), plan.pcie, s.SMMU.DevPort(), plan.host, pcieLat)

	s.IOCache = cache.New(n+".iocache", hostEQ, reg, cache.Config{
		SizeBytes:     cfg.IOCacheB,
		Assoc:         4,
		HitLatency:    IOCacheHitLatency,
		MSHRs:         128,
		MemQueueDepth: 128,
	})
	mem.Bind(s.SMMU.MemPort(), s.IOCache.CPUPort())
	mem.Bind(s.IOCache.MemPort(), s.Bus.AddRequestorPort("iocache"))
	s.IOCache.SetDownstreamFunctional(s.LLC)

	// Coherence: the LLC snoops every upper cache.
	s.LLC.RegisterSnooper(s.L1D)
	s.LLC.RegisterSnooper(s.L1I)
	s.LLC.RegisterSnooper(s.IOCache)

	// --- Device side ---------------------------------------------------
	devEQ := eqFor(plan.dev)
	s.DevDRAM = dram.New(n+".devmem", devEQ, reg, dram.Config{
		Spec:  cfg.DevSpec,
		Range: cfg.DevRange(),
	})

	s.DevBus = interconnect.New(n+".devbus", devEQ, reg, interconnect.Config{
		Latency:    cfg.DevBusLat,
		QueueDepth: 64,
	})
	mem.Bind(s.DevBus.AddResponderPort("devmem", cfg.DevRange()), s.DevDRAM.Port())

	for i := 0; i < cfg.Accelerators; i++ {
		acfg := cfg.MemberAccel(i)
		acfg.BAR = cfg.BARRangeOf(i)
		var aDom *sim.Domain
		if plan.par != nil {
			aDom = plan.accels[i]
		}
		a := accel.New(fmt.Sprintf("%s.accel%d", n, i), eqFor(aDom), reg, acfg)
		s.Accels = append(s.Accels, a)

		bind(s.Tree.EP(i).BusPort(), plan.pcie, s.DevBus.AddRequestorPort(fmt.Sprintf("ep%d", i)), plan.dev, pcieLat)
		bind(a.DevDMAPort(), aDom, s.DevBus.AddRequestorPort(fmt.Sprintf("devdma%d", i)), plan.dev, devLat)
		bind(s.DevBus.AddResponderPort(fmt.Sprintf("csr%d", i), cfg.BARRangeOf(i)), plan.dev, a.CSRPort(), aDom, devLat)
		bind(a.HostDMAPort(), aDom, s.Tree.EP(i).DevPort(), plan.pcie, pcieLat)

		// The completion callback crosses from the accelerator's domain
		// into the driver's (host) domain like the MSI it models.
		if plan.par != nil {
			ad := aDom
			a.CrossPost = func(fn func()) {
				ad.Post(plan.host, ad.EQ.Now()+pcieLat, fn)
			}
		}
	}
	s.Accel = s.Accels[0]

	s.hostFunc = hostFunc
	return s
}

// AttachHostPort adds a requestor port on the memory bus for a
// host-side agent (the kernel driver's MMIO path).
func (s *System) AttachHostPort(name string) *mem.ResponsePort {
	return s.Bus.AddRequestorPort(name)
}

// hostView is the coherent functional view of host memory: the LLC
// chain provides the base contents and every upper cache overlays its
// lines.
type hostView struct{ s *System }

// ReadFunctional implements mem.Functional.
func (h hostView) ReadFunctional(addr uint64, buf []byte) {
	h.s.LLC.ReadFunctional(addr, buf)
	h.s.L1D.OverlayFunctional(addr, buf)
	h.s.L1I.OverlayFunctional(addr, buf)
	h.s.IOCache.OverlayFunctional(addr, buf)
}

// WriteFunctional implements mem.Functional.
func (h hostView) WriteFunctional(addr uint64, data []byte) {
	h.s.L1D.UpdateFunctional(addr, data)
	h.s.L1I.UpdateFunctional(addr, data)
	h.s.IOCache.UpdateFunctional(addr, data)
	h.s.LLC.WriteFunctional(addr, data)
}

// FuncHost returns the coherent functional view of host memory used by
// the driver and by tests.
func (s *System) FuncHost() mem.Functional { return hostView{s} }

// frozenFunc guards a functional view that lives outside the caller's
// tick-domain: each access runs under the coordinator's Freeze
// rendezvous, i.e. with every other domain parked at a window boundary.
// The caller is the host domain (the driver is the only cross-domain
// functional client).
type frozenFunc struct {
	par *sim.Parallel
	dom *sim.Domain
	f   mem.Functional
}

// ReadFunctional implements mem.Functional.
func (z frozenFunc) ReadFunctional(addr uint64, buf []byte) {
	z.par.Freeze(z.dom, func() { z.f.ReadFunctional(addr, buf) })
}

// WriteFunctional implements mem.Functional.
func (z frozenFunc) WriteFunctional(addr uint64, data []byte) {
	z.par.Freeze(z.dom, func() { z.f.WriteFunctional(addr, data) })
}

// FuncDev returns the functional view of device memory. In a
// partitioned build device DRAM ticks in another domain, so the view
// is wrapped in the Freeze rendezvous.
func (s *System) FuncDev() mem.Functional {
	if s.Par != nil {
		return frozenFunc{par: s.Par, dom: s.hostDom, f: s.DevDRAM}
	}
	return s.DevDRAM
}

// FlushCaches writes back and invalidates the whole cache hierarchy —
// the driver-managed coherence step of the DM access method.
func (s *System) FlushCaches() {
	s.L1D.FlushAll()
	s.L1I.FlushAll()
	s.IOCache.FlushAll()
	s.LLC.FlushAll()
}

// Run drains the event queue — all domain queues under the barrier
// coordinator for a partitioned build.
func (s *System) Run() {
	if s.Par != nil {
		s.Par.Run()
		return
	}
	s.EQ.Run()
}

// ExecutedEvents totals dispatched events across every domain.
func (s *System) ExecutedEvents() uint64 {
	if s.Par != nil {
		return s.Par.Executed()
	}
	return s.EQ.Executed
}

// Now returns the current simulation time.
func (s *System) Now() sim.Tick { return s.EQ.Now() }
