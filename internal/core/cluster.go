package core

import (
	"fmt"

	"accesys/internal/accel"
)

// ClusterSlot is one entry of a heterogeneous cluster composition: N
// accelerators of the named kind. Slots expand in declaration order
// into consecutive endpoint indexes, so `[{gemm,2},{vit,1}]` builds
// endpoints 0,1 as "gemm" members and endpoint 2 as a "vit" member.
type ClusterSlot struct {
	Kind string `json:"kind"`
	N    int    `json:"n"`
}

// Accelerator kind presets. Each derives a member's accel.Config from
// the scenario's base Accel config, so axis-driven knobs (DMA bursts,
// compute override, functional mode) still apply to every member and
// only the kind-specific microarchitecture differs.
//
//	gemm  - the paper's MatrixFlow as configured (the base itself)
//	vit   - a faster-clocked, smaller-buffer variant tuned for the
//	        attention/MLP mix (1.25 GHz, 512 KiB local buffer)
//	lite  - an area-optimized edge variant (500 MHz, 256 KiB)
//	hpc   - a datacenter variant (2 GHz, 4 MiB)
//	cycle - the base microarchitecture driven by the register-accurate
//	        CycleModel backend instead of the TileModel phase algebra
var accelKinds = map[string]func(accel.Config) accel.Config{
	"gemm": func(c accel.Config) accel.Config { return c },
	"vit": func(c accel.Config) accel.Config {
		c.ClockMHz = 1250
		c.LocalBufBytes = 512 << 10
		return c
	},
	"lite": func(c accel.Config) accel.Config {
		c.ClockMHz = 500
		c.LocalBufBytes = 256 << 10
		return c
	},
	"hpc": func(c accel.Config) accel.Config {
		c.ClockMHz = 2000
		c.LocalBufBytes = 4 << 20
		return c
	},
	"cycle": func(c accel.Config) accel.Config {
		c.Backend = accel.CycleModel{}
		return c
	},
}

// AccelKindNames lists the valid ClusterSlot kinds.
func AccelKindNames() []string {
	return []string{"cycle", "gemm", "hpc", "lite", "vit"}
}

// ValidAccelKind reports whether kind names a cluster member preset.
func ValidAccelKind(kind string) bool {
	_, ok := accelKinds[kind]
	return ok
}

// ValidateCluster checks a composition: every slot a known kind with a
// positive count. An empty composition is valid (homogeneous cluster
// sized by Accelerators).
func ValidateCluster(slots []ClusterSlot) error {
	for i, s := range slots {
		if !ValidAccelKind(s.Kind) {
			return fmt.Errorf("core: cluster slot %d: unknown accelerator kind %q (want one of %v)", i, s.Kind, AccelKindNames())
		}
		if s.N < 1 {
			return fmt.Errorf("core: cluster slot %d (%s): n %d (want >= 1)", i, s.Kind, s.N)
		}
	}
	return nil
}

// NumAccels returns the resolved cluster size: the slot-count sum of a
// heterogeneous composition, or Accelerators for a homogeneous one.
func (c Config) NumAccels() int {
	if len(c.Cluster) > 0 {
		n := 0
		for _, s := range c.Cluster {
			n += s.N
		}
		return n
	}
	if c.Accelerators > 0 {
		return c.Accelerators
	}
	return 1
}

// MemberKind returns the accelerator kind of cluster member i ("gemm"
// for every member of a homogeneous cluster).
func (c Config) MemberKind(i int) string {
	for _, s := range c.Cluster {
		if i < s.N {
			return s.Kind
		}
		i -= s.N
	}
	return "gemm"
}

// MemberAccel derives cluster member i's accelerator configuration
// from the base Accel config and the member's kind preset.
func (c Config) MemberAccel(i int) accel.Config {
	return accelKinds[c.MemberKind(i)](c.Accel)
}

// DomainCap is the largest useful -domains request for the config:
// host + PCIe fabric + device complex + one domain per cluster
// member. Requests beyond it are clamped (the surplus domains would
// hold no components and only pay barrier cost).
func (c Config) DomainCap() int { return 3 + c.NumAccels() }
