package core

// Heterogeneous clusters: slot validation, config resolution, mixed-kind
// functional correctness, and the topology-derived domain clamp.

import (
	"fmt"
	"math/rand"
	"testing"

	"accesys/internal/accel"
	"accesys/internal/driver"
	"accesys/internal/mem"
	"accesys/internal/sim"
)

func TestValidateCluster(t *testing.T) {
	for _, c := range []struct {
		slots []ClusterSlot
		ok    bool
	}{
		{nil, true},
		{[]ClusterSlot{{Kind: "gemm", N: 2}}, true},
		{[]ClusterSlot{{Kind: "gemm", N: 1}, {Kind: "vit", N: 1}, {Kind: "hpc", N: 3}}, true},
		{[]ClusterSlot{{Kind: "tpu", N: 1}}, false},
		{[]ClusterSlot{{Kind: "gemm", N: 0}}, false},
		{[]ClusterSlot{{Kind: "", N: 1}}, false},
	} {
		if err := ValidateCluster(c.slots); (err == nil) != c.ok {
			t.Errorf("ValidateCluster(%v) = %v, want ok=%v", c.slots, err, c.ok)
		}
	}
}

func TestClusterConfigResolution(t *testing.T) {
	cfg := PCIe8GB()
	cfg.Cluster = []ClusterSlot{{Kind: "gemm", N: 2}, {Kind: "hpc", N: 1}}
	cfg = cfg.Resolved()
	if cfg.Accelerators != 3 || cfg.NumAccels() != 3 {
		t.Fatalf("cluster did not resolve accelerator count: %d", cfg.Accelerators)
	}
	if cfg.DomainCap() != 6 {
		t.Fatalf("DomainCap = %d, want 3+3", cfg.DomainCap())
	}
	for i, want := range []string{"gemm", "gemm", "hpc"} {
		if got := cfg.MemberKind(i); got != want {
			t.Fatalf("MemberKind(%d) = %q, want %q", i, got, want)
		}
	}
	// Member configs inherit the base and apply the kind preset.
	base := cfg.MemberAccel(0)
	hpc := cfg.MemberAccel(2)
	if hpc.ClockMHz <= base.ClockMHz || hpc.LocalBufBytes <= base.LocalBufBytes {
		t.Fatalf("hpc preset not applied: base %+v hpc %+v", base, hpc)
	}
	// A homogeneous config stays a 1-member gemm cluster.
	plain := PCIe8GB().Resolved()
	if plain.NumAccels() != 1 || plain.MemberKind(0) != "gemm" {
		t.Fatalf("homogeneous resolution broken: %d %q", plain.NumAccels(), plain.MemberKind(0))
	}
}

func TestHeterogeneousClusterFunctional(t *testing.T) {
	// A mixed gemm+hpc farm computes correct results on both members,
	// and the hpc member's faster clock shows up as less compute-busy
	// time for identical work.
	cfg := PCIe8GB()
	cfg.Name = "hetero"
	cfg.Functional = true
	cfg.Cluster = []ClusterSlot{{Kind: "gemm", N: 1}, {Kind: "hpc", N: 1}}
	cfg.SMMU.Bypass = true
	sys := Build(cfg)
	if len(sys.Accels) != 2 {
		t.Fatalf("accels = %d, want 2", len(sys.Accels))
	}

	mk := func(i int, lo, hi uint64) *driver.Driver {
		return driver.New(fmt.Sprintf("hetero.drv%d", i), sys.EQ, sys.Stats, driver.Deps{
			EQ: sys.EQ, MMIO: sys.AttachHostPort(fmt.Sprintf("drv%d", i)),
			FuncHost: sys.FuncHost(), FuncDev: sys.FuncDev(),
			SMMU: sys.SMMU, Accel: sys.Accels[i],
			BARBase:   BARBase + uint64(i)*BARSize,
			HostRange: mem.Range(lo, hi-lo), DevRange: sys.Cfg.DevRange(),
			IOVABase: IOVABase,
		}, driver.Config{NoIOMMU: true})
	}
	d0 := mk(0, 0, 128<<20)
	d1 := mk(1, 128<<20, 256<<20)

	rng := rand.New(rand.NewSource(7))
	n := 64
	a0, b0 := randMat(rng, n*n), randMat(rng, n*n)
	a1, b1 := randMat(rng, n*n), randMat(rng, n*n)
	var r0, r1 driver.Result
	d0.RunGEMM(driver.GEMMSpec{M: n, N: n, K: n, A: a0, B: b0}, func(r driver.Result) { r0 = r })
	d1.RunGEMM(driver.GEMMSpec{M: n, N: n, K: n, A: a1, B: b1}, func(r driver.Result) { r1 = r })
	sys.Run()

	if r0.C == nil || r1.C == nil {
		t.Fatal("heterogeneous jobs did not complete")
	}
	w0 := accel.MatMulRef(a0, b0, n, n, n)
	w1 := accel.MatMulRef(a1, b1, n, n, n)
	for i := range w0 {
		if r0.C[i] != w0[i] || r1.C[i] != w1[i] {
			t.Fatalf("heterogeneous member result wrong at %d", i)
		}
	}
	if r1.Job.ComputeBusy >= r0.Job.ComputeBusy {
		t.Fatalf("hpc member (%v busy) not faster than gemm member (%v busy)",
			r1.Job.ComputeBusy, r0.Job.ComputeBusy)
	}
}

// domainSet counts the distinct domains a plan instantiated.
func domainSet(p domainPlan) map[*sim.Domain]bool {
	set := map[*sim.Domain]bool{}
	for _, d := range append([]*sim.Domain{p.host, p.pcie, p.dev}, p.accels...) {
		if d != nil {
			set[d] = true
		}
	}
	return set
}

func TestDomainClampAtTopologyCap(t *testing.T) {
	// Requests past DomainCap clamp deterministically onto the cap
	// plan: same domain count, same member assignment, same timing.
	cfg := PCIe8GB()
	cfg.Name = "clamp"
	cfg.Accelerators = 2
	cfg.SMMU.Bypass = true
	cap := cfg.Resolved().DomainCap()
	if cap != 5 {
		t.Fatalf("cap = %d, want 3+2", cap)
	}

	atCap := cfg.Resolved()
	atCap.Domains = cap
	over := cfg.Resolved()
	over.Domains = cap + 1
	pCap := planDomains(atCap, sim.Nanosecond, sim.Nanosecond)
	pOver := planDomains(over, sim.Nanosecond, sim.Nanosecond)
	if got, want := len(domainSet(pOver)), len(domainSet(pCap)); got != want {
		t.Fatalf("over-cap plan has %d domains, cap plan %d", got, want)
	}

	run := func(domains int) sim.Tick {
		c := cfg
		c.Domains = domains
		sys := Build(c)
		drv := driver.New("clamp.drv", sys.EQ, sys.Stats, driver.Deps{
			EQ: sys.EQ, MMIO: sys.AttachHostPort("drv"),
			FuncHost: sys.FuncHost(), FuncDev: sys.FuncDev(),
			SMMU: sys.SMMU, Accel: sys.Accel, BARBase: BARBase,
			HostRange: sys.Cfg.HostRange(), DevRange: sys.Cfg.DevRange(),
			IOVABase: IOVABase,
		}, driver.Config{NoIOMMU: true})
		var d sim.Tick
		drv.RunGEMM(driver.GEMMSpec{M: 128, N: 128, K: 128}, func(r driver.Result) { d = r.Job.Duration() })
		sys.Run()
		return d
	}
	if dCap, dOver := run(cap), run(cap+1); dCap != dOver {
		t.Fatalf("clamped run diverged: domains=%d -> %v, domains=%d -> %v", cap, dCap, cap+1, dOver)
	}
}

func TestDomainPlanFollowsLeaves(t *testing.T) {
	// With fewer cluster domains than leaf switches, members sharing a
	// leaf must share a domain (the leaf is their sync point anyway).
	cfg := PCIe8GB()
	cfg.Name = "leafdom"
	cfg.Accelerators = 4
	cfg.PCIe.Topology.Levels = 2
	cfg.PCIe.Topology.Fanout = 2
	cfg = cfg.Resolved()
	cfg.Domains = 5 // host, pcie, dev + 2 cluster domains for 2 leaves
	p := planDomains(cfg, sim.Nanosecond, sim.Nanosecond)
	if p.accels[0] != p.accels[1] || p.accels[2] != p.accels[3] {
		t.Fatalf("leaf-mates split across domains: %v", p.accels)
	}
	if p.accels[0] == p.accels[2] {
		t.Fatal("both leaves collapsed onto one domain despite two being available")
	}
}
