package analytic

// Closed-form steady-state model of burst streaming across the
// two-hop PCIe fabric (EP <-> Switch <-> RC). The timing simulation
// moves payload as TLPs with header overhead, per-hop
// store-and-forward latency and initiation intervals, and credit-gated
// receiver buffers; in steady state a long stream settles into a fixed
// per-burst interval set by whichever of those mechanisms is the
// bottleneck. This file computes that interval from the same
// configuration constants the simulator runs with, so the analytic
// backend tracks the timing backend without fitted parameters.

// Fabric carries the resolved PCIe constants the stream model needs
// (all latencies in nanoseconds, bandwidths in GB/s = bytes/ns).
type Fabric struct {
	// EffGBps is the post-encoding bandwidth of each link.
	EffGBps float64
	// HeaderBytes is the per-TLP wire overhead.
	HeaderBytes int
	// PropNs is the per-link flight latency.
	PropNs float64

	// Per-hop store-and-forward processing latencies.
	RCNs, SwitchNs, EPNs float64
	// Per-hop initiation intervals (one TLP per II per direction).
	RCIINs, SwitchIINs, EPIINs float64

	// Receiver buffer capacities gating credit flow control.
	RCBufBytes, SwitchBufBytes, EPBufBytes int
}

// SerNs returns the serialization time of n wire bytes on one link.
func (f Fabric) SerNs(n int) float64 { return float64(n) / f.EffGBps }

// hop is one credit-gated conn traversal: the sender's transmission
// holds `claim` bytes of the receiver's buffer (capacity cap) until the
// TLP has fully left the receiving hop again, which takes holdNs.
func creditIntervalNs(claim, cap int, holdNs float64) float64 {
	if claim > cap {
		claim = cap
	}
	window := cap / claim
	if window < 1 {
		window = 1
	}
	return holdNs / float64(window)
}

// Stream is one steady DMA payload stream: bursts of PayloadBytes
// flowing through the fabric, bounded additionally by the memory
// system behind the far end and by the DMA engine's request window.
type Stream struct {
	Fabric Fabric
	// PayloadBytes is the DMA burst (request packet) size.
	PayloadBytes int
	// Read selects direction: true models MemRd requests upstream with
	// payload-carrying completions flowing RC -> Switch -> EP; false
	// models posted MemWr TLPs flowing EP -> Switch -> RC.
	Read bool
	// MemGBps bounds the stream at the far memory system.
	MemGBps float64
	// MemLatNs is the far memory access latency (round-trip fill term).
	MemLatNs float64
	// WindowBytes bounds in-flight bytes per DMA channel (reads only;
	// posted writes are not window-limited by completions).
	WindowBytes int
}

// tlpBytes is the wire size of one payload-carrying TLP.
func (s Stream) tlpBytes() int { return s.PayloadBytes + s.Fabric.HeaderBytes }

// IntervalNs returns the steady-state time between consecutive bursts:
// the maximum over every rate-limiting mechanism on the path.
func (s Stream) IntervalNs() float64 {
	f := s.Fabric
	wire := s.tlpBytes()
	ser := f.SerNs(wire)

	// Each link serializes one TLP at a time.
	interval := ser

	// Hop initiation intervals.
	for _, ii := range []float64{f.RCIINs, f.SwitchIINs, f.EPIINs} {
		if ii > interval {
			interval = ii
		}
	}

	// Credit flow control. The first conn's claim is released once the
	// switch has fully retransmitted the TLP on the second conn
	// (store-and-forward), so one TLP holds first-conn credit for two
	// serializations plus the switch latency. The second conn's claim
	// is released after the receiving bridge's processing latency.
	var firstCap, secondCap int
	var secondHold float64
	if s.Read {
		// Completions: RC -> switch (switch buffer), switch -> EP.
		firstCap, secondCap = f.SwitchBufBytes, f.EPBufBytes
		secondHold = ser + f.PropNs + f.EPNs
	} else {
		// Posted writes: EP -> switch, switch -> RC.
		firstCap, secondCap = f.SwitchBufBytes, f.RCBufBytes
		secondHold = ser + f.PropNs + f.RCNs
	}
	firstHold := ser + f.PropNs + f.SwitchNs + ser
	if c := creditIntervalNs(wire, firstCap, firstHold); c > interval {
		interval = c
	}
	if c := creditIntervalNs(wire, secondCap, secondHold); c > interval {
		interval = c
	}

	// Far memory bandwidth.
	if s.MemGBps > 0 {
		if m := float64(s.PayloadBytes) / s.MemGBps; m > interval {
			interval = m
		}
	}

	// Request window: reads keep at most WindowBytes in flight per
	// channel, so throughput cannot exceed window / round-trip.
	if s.Read && s.WindowBytes > 0 {
		outstanding := s.WindowBytes / s.PayloadBytes
		if outstanding < 1 {
			outstanding = 1
		}
		if w := s.RoundTripNs() / float64(outstanding); w > interval {
			interval = w
		}
	}
	return interval
}

// NsPerByte is the steady-state cost of one payload byte.
func (s Stream) NsPerByte() float64 {
	return s.IntervalNs() / float64(s.PayloadBytes)
}

// RoundTripNs returns the unloaded request-to-completion latency of
// one read burst: header-only request up, memory access, full
// completion down, including every store-and-forward hop.
func (s Stream) RoundTripNs() float64 {
	f := s.Fabric
	hdr := f.SerNs(f.HeaderBytes)
	full := f.SerNs(s.tlpBytes())
	req := f.EPNs + hdr + f.PropNs + f.SwitchNs + hdr + f.PropNs + f.RCNs
	cpl := f.RCNs + full + f.PropNs + f.SwitchNs + full + f.PropNs + f.EPNs
	return req + s.MemLatNs + cpl
}
