package analytic

import (
	"math"
	"testing"
)

// fabric8 mirrors the resolved Table II fabric at 8 GB/s raw.
func fabric8() Fabric {
	return Fabric{
		EffGBps:     8 * 128.0 / 130.0,
		HeaderBytes: 24,
		PropNs:      5,
		RCNs:        150, SwitchNs: 50, EPNs: 20,
		RCIINs: 16, SwitchIINs: 10, EPIINs: 4,
		RCBufBytes: 8192, SwitchBufBytes: 2048, EPBufBytes: 16384,
	}
}

func TestStreamSerializationBound(t *testing.T) {
	// Large-payload read streams on a slow link are serialization
	// bound: interval == one TLP's wire time.
	f := fabric8()
	s := Stream{Fabric: f, PayloadBytes: 512, Read: true}
	want := f.SerNs(512 + 24)
	if got := s.IntervalNs(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("interval = %v, want ser %v", got, want)
	}
}

func TestStreamCreditCliff(t *testing.T) {
	// The paper's Fig. 4 jump: once one TLP claims more than half the
	// switch buffer, only one is in flight and the store-and-forward
	// hold time is paid serially. 1024 B packets must cost more than
	// 2x the per-byte rate of 512 B packets on the same link.
	f := fabric8()
	per512 := Stream{Fabric: f, PayloadBytes: 512, Read: true}.NsPerByte()
	per1024 := Stream{Fabric: f, PayloadBytes: 1024, Read: true}.NsPerByte()
	if per1024 < 1.5*per512 {
		t.Fatalf("credit cliff missing: 1024B %.4f ns/B vs 512B %.4f ns/B", per1024, per512)
	}
	// And the hold amortizes again at 4096 B: cost per byte improves
	// over 1024 B even though both are single-TLP-in-flight.
	per4096 := Stream{Fabric: f, PayloadBytes: 4096, Read: true}.NsPerByte()
	if per4096 > per1024 {
		t.Fatalf("oversize amortization missing: 4096B %.4f ns/B vs 1024B %.4f ns/B", per4096, per1024)
	}
}

func TestStreamSmallPacketsPayHeaderAndII(t *testing.T) {
	f := fabric8()
	per64 := Stream{Fabric: f, PayloadBytes: 64, Read: true}.NsPerByte()
	per256 := Stream{Fabric: f, PayloadBytes: 256, Read: true}.NsPerByte()
	if per64 <= per256 {
		t.Fatalf("64B packets should cost more per byte than 256B: %.4f vs %.4f", per64, per256)
	}
}

func TestStreamMemoryBound(t *testing.T) {
	f := fabric8()
	f.EffGBps = 64 // fast link
	s := Stream{Fabric: f, PayloadBytes: 256, Read: true, MemGBps: 2}
	if got, want := s.IntervalNs(), 128.0; math.Abs(got-want) > 1e-9 {
		t.Fatalf("memory-bound interval = %v, want %v", got, want)
	}
}

func TestStreamWindowBound(t *testing.T) {
	f := fabric8()
	s := Stream{Fabric: f, PayloadBytes: 4096, Read: true, WindowBytes: 4096, MemLatNs: 50}
	// One burst in flight: interval = full round trip.
	if got, want := s.IntervalNs(), s.RoundTripNs(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("window-bound interval = %v, want RTT %v", got, want)
	}
}

func TestRoundTripCoversBothDirections(t *testing.T) {
	f := fabric8()
	s := Stream{Fabric: f, PayloadBytes: 256, Read: true, MemLatNs: 40}
	rtt := s.RoundTripNs()
	min := f.RCNs + f.SwitchNs + f.EPNs // one direction's processing alone
	if rtt <= 2*min {
		t.Fatalf("RTT %v implausibly small (hops alone are %v per direction)", rtt, min)
	}
}

func TestGEMMModelComputeBound(t *testing.T) {
	g := GEMMModel{
		TilesM: 4, TilesN: 4, RBTiles: 4,
		APanelBytes: 4096, BPanelBytes: 4096, TileCBytes: 1024,
		PerTileNs:     1000,
		ReadNsPerByte: 0.001, WriteNsPerByte: 0.001,
	}
	// Compute dominates: 4 panels x 4 tiles x 1us ~ 16us plus loads.
	got := g.ExecNs()
	if got < 16000 {
		t.Fatalf("ExecNs = %v, below pure compute floor", got)
	}
	if got > 18000 {
		t.Fatalf("ExecNs = %v, too far above compute floor for fast streams", got)
	}
}

func TestGEMMModelTransferBound(t *testing.T) {
	fast := GEMMModel{
		TilesM: 4, TilesN: 4, RBTiles: 4,
		APanelBytes: 4096, BPanelBytes: 4096, TileCBytes: 1024,
		PerTileNs:     10,
		ReadNsPerByte: 0.5, WriteNsPerByte: 0.5,
	}
	slow := fast
	slow.ReadNsPerByte = 1.0
	if !(slow.ExecNs() > 1.5*fast.ExecNs()) {
		t.Fatalf("transfer-bound model not scaling with stream cost: %v vs %v",
			slow.ExecNs(), fast.ExecNs())
	}
}

func TestGEMMModelBlocks(t *testing.T) {
	g := GEMMModel{TilesM: 13, RBTiles: 4}
	if got := g.Blocks(); got != 4 {
		t.Fatalf("Blocks = %d, want 4", got)
	}
}

func TestGEMMModelUpstreamIIFloor(t *testing.T) {
	g := GEMMModel{
		TilesM: 1, TilesN: 2, RBTiles: 1,
		APanelBytes: 256, BPanelBytes: 4096, TileCBytes: 1024,
		PerTileNs:     1,
		ReadNsPerByte: 0.001, WriteNsPerByte: 0.001,
		UpIINs: 16, ReadBurstBytes: 256, WriteBurstBytes: 256,
	}
	// Per panel: 16 read requests + 4 write TLPs = 20 x 16 ns = 320 ns,
	// far above the compute and stream terms.
	without := g
	without.UpIINs = 0
	if !(g.ExecNs() > without.ExecNs()+300) {
		t.Fatalf("upstream II floor missing: %v vs %v", g.ExecNs(), without.ExecNs())
	}
}
