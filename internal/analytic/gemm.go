package analytic

// Closed-form execution model of the MatrixFlow GEMM pipeline: the
// accelerator loads an A block per row-block, then for each B panel
// overlaps tile computation with the prefetch of the next panel while
// C tiles drain concurrently on the write path. Phase algebra over
// those overlapped streams gives execution time without an event
// queue — the analytic backend the equivalence harness compares the
// timing simulation against.

// GEMMModel carries the resolved blocking geometry and per-stream
// costs of one GEMM job on one system configuration. Times are
// nanoseconds; streams are expressed as steady-state ns/byte plus a
// fill latency for the first burst.
type GEMMModel struct {
	// Blocking geometry (mirrors the accelerator's job setup).
	TilesM, TilesN int
	RBTiles        int // A-block height in tiles
	APanelBytes    int
	BPanelBytes    int
	TileCBytes     int

	// PerTileNs is the systolic array time per output tile.
	PerTileNs float64

	// Operand read stream (A blocks, B panels) and C write stream.
	ReadNsPerByte  float64
	WriteNsPerByte float64
	// ReadFillNs is the first-burst latency of a read stream (pipeline
	// fill before steady state).
	ReadFillNs float64
	// StartNs is the DMA descriptor start latency, paid once per
	// transfer.
	StartNs float64

	// MemGBps, when positive, bounds each panel step by the shared
	// memory system serving both the operand reads and the C writes.
	MemGBps float64

	// Upstream TLP pipeline: every operand-read request and every C
	// write crosses the same bridges toward the host, one TLP per
	// initiation interval. UpIINs is the largest per-hop II on that
	// direction; ReadBurstBytes/WriteBurstBytes give the TLP counts
	// (zero UpIINs disables the bound — the DevMem path has no fabric).
	UpIINs          float64
	ReadBurstBytes  int
	WriteBurstBytes int

	// FixedNs is the job-level overhead outside the streaming pipeline
	// (driver setup, doorbell, MSI and interrupt path).
	FixedNs float64
}

// Blocks returns the number of A row blocks.
func (g GEMMModel) Blocks() int {
	return (g.TilesM + g.RBTiles - 1) / g.RBTiles
}

// upstreamIINs returns the upstream-pipeline floor for moving
// readBytes of requests plus writeBytes of posted writes: one TLP per
// initiation interval.
func (g GEMMModel) upstreamIINs(readBytes, writeBytes int) float64 {
	if g.UpIINs == 0 {
		return 0
	}
	tlps := ceilDiv(readBytes, g.ReadBurstBytes) + ceilDiv(writeBytes, g.WriteBurstBytes)
	return float64(tlps) * g.UpIINs
}

func ceilDiv(a, b int) int {
	if b <= 0 {
		return 0
	}
	return (a + b - 1) / b
}

// ExecNs returns the modeled end-to-end execution time.
func (g GEMMModel) ExecNs() float64 {
	total := g.FixedNs
	for rb := 0; rb < g.TilesM; rb += g.RBTiles {
		rbCount := g.RBTiles
		if rb+rbCount > g.TilesM {
			rbCount = g.TilesM - rb
		}
		// Serial A-block load.
		aBytes := rbCount * g.APanelBytes
		aLoad := float64(aBytes) * g.ReadNsPerByte
		if ii := g.upstreamIINs(aBytes, 0); ii > aLoad {
			aLoad = ii
		}
		total += g.StartNs + g.ReadFillNs + aLoad
		// Serial first B panel.
		bLoad := float64(g.BPanelBytes) * g.ReadNsPerByte
		if ii := g.upstreamIINs(g.BPanelBytes, 0); ii > bLoad {
			bLoad = ii
		}
		tPanel := g.StartNs + g.ReadFillNs + bLoad
		total += tPanel
		// Each subsequent panel prefetches under the current panel's
		// compute; C tiles drain concurrently on the write path. The
		// per-panel step is whichever stream is slowest, including the
		// far memory system both streams share.
		tComp := float64(rbCount) * g.PerTileNs
		tWrite := float64(rbCount*g.TileCBytes) * g.WriteNsPerByte
		step := tComp
		if tWrite > step {
			step = tWrite
		}
		if g.MemGBps > 0 {
			tMem := float64(g.BPanelBytes+rbCount*g.TileCBytes) / g.MemGBps
			if tMem > step {
				step = tMem
			}
		}
		// Upstream pipeline: the next panel's read requests and this
		// panel's C writes share the toward-host TLP pipeline.
		if ii := g.upstreamIINs(g.BPanelBytes, rbCount*g.TileCBytes); ii > step {
			step = ii
		}
		stepOrPanel := step
		if tPanel > stepOrPanel {
			stepOrPanel = tPanel
		}
		if g.TilesN > 1 {
			total += float64(g.TilesN-1) * stepOrPanel
		}
		// The final panel computes with nothing left to prefetch.
		total += step
	}
	return total
}
