package analytic

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRooflineShape(t *testing.T) {
	r := Roofline{Tiles: 4096, TransferNs: 1.5e6, FixedNs: 1000}
	// Deep in the compute-bound region: time scales linearly.
	t1 := r.ExecTimeNs(1000)
	t2 := r.ExecTimeNs(2000)
	if math.Abs(t2-t1-4096*1000) > 1 {
		t.Fatalf("compute-bound region not linear: %v -> %v", t1, t2)
	}
	// Below the knee: plateau at the transfer floor.
	knee := r.KneeNs()
	if math.Abs(knee-1.5e6/4096) > 1e-9 {
		t.Fatalf("knee = %v", knee)
	}
	lo := r.ExecTimeNs(knee / 10)
	lo2 := r.ExecTimeNs(knee / 100)
	if lo != lo2 {
		t.Fatal("plateau should be flat below the knee")
	}
	if lo != 1.5e6+1000 {
		t.Fatalf("plateau = %v", lo)
	}
}

func TestCompositionEndpoints(t *testing.T) {
	m := Composition{TOtherNs: 100}
	c := Config{Name: "x", GEMMNs: 1000, NonGEMMs: 5000}
	if m.TimeNs(c, 0) != 1100 {
		t.Fatalf("w=0: %v", m.TimeNs(c, 0))
	}
	if m.TimeNs(c, 1) != 5100 {
		t.Fatalf("w=1: %v", m.TimeNs(c, 1))
	}
}

func TestCrossoverMatchesPaperAlgebra(t *testing.T) {
	// DevMem: faster GEMM, slower Non-GEMM. PCIe: the reverse.
	dev := Config{Name: "DevMem", GEMMNs: 800, NonGEMMs: 6000}
	pcie := Config{Name: "PCIe", GEMMNs: 2000, NonGEMMs: 1000}
	m := Composition{}
	w, ok := m.Crossover(dev, pcie)
	if !ok {
		t.Fatal("crossover should exist")
	}
	// At the crossover both configurations take the same time.
	if math.Abs(m.TimeNs(dev, w)-m.TimeNs(pcie, w)) > 1e-9 {
		t.Fatalf("times differ at crossover w=%v", w)
	}
	// Below the crossover DevMem (faster GEMM) wins.
	if m.TimeNs(dev, w/2) >= m.TimeNs(pcie, w/2) {
		t.Fatal("DevMem should win below the crossover")
	}
	if m.TimeNs(dev, (1+w)/2) <= m.TimeNs(pcie, (1+w)/2) {
		t.Fatal("PCIe should win above the crossover")
	}
}

// TestCrossoverDecreasesWithPCIeBandwidth reproduces the paper's
// Fig. 9 trend: as PCIe bandwidth grows (GEMM time shrinks), the
// Non-GEMM fraction below which DevMem wins gets smaller.
func TestCrossoverDecreasesWithPCIeBandwidth(t *testing.T) {
	m := Composition{}
	dev := Config{Name: "DevMem", GEMMNs: 800, NonGEMMs: 6000}
	var last float64 = 1
	for _, gemm := range []float64{4000, 2000, 1000} { // rising bandwidth
		pcie := Config{Name: "PCIe", GEMMNs: gemm, NonGEMMs: 1000}
		w, ok := m.Crossover(dev, pcie)
		if !ok {
			t.Fatalf("no crossover for pcie gemm=%v", gemm)
		}
		if w >= last {
			t.Fatalf("crossover should shrink with bandwidth: %v -> %v", last, w)
		}
		last = w
	}
}

func TestCrossoverDegenerate(t *testing.T) {
	m := Composition{}
	a := Config{GEMMNs: 1000, NonGEMMs: 1000}
	if _, ok := m.Crossover(a, a); ok {
		t.Fatal("identical configs have no interior crossover")
	}
	// Strictly dominant config: crossover outside (0,1).
	b := Config{GEMMNs: 2000, NonGEMMs: 2000}
	if _, ok := m.Crossover(a, b); ok {
		t.Fatal("dominated config should have no interior crossover")
	}
}

func TestSeries(t *testing.T) {
	m := Composition{}
	c := Config{GEMMNs: 1000, NonGEMMs: 2000}
	s := m.Series(c, 11)
	if len(s) != 11 || s[0] != 1000 || s[10] != 2000 {
		t.Fatalf("series endpoints wrong: %v", s)
	}
	for i := 1; i < len(s); i++ {
		if s[i] < s[i-1] {
			t.Fatal("series should be monotonic for NonGEMMs > GEMMNs")
		}
	}
}

// Property: the model is linear in w, so the crossover (when interior)
// is unique and consistent with a fine scan.
func TestCrossoverProperty(t *testing.T) {
	f := func(g1, n1, g2, n2 uint16) bool {
		a := Config{GEMMNs: float64(g1) + 1, NonGEMMs: float64(n1) + 1}
		b := Config{GEMMNs: float64(g2) + 1, NonGEMMs: float64(n2) + 1}
		m := Composition{}
		w, ok := m.Crossover(a, b)
		if !ok {
			return true
		}
		// Check sign flip around w.
		lo := m.TimeNs(a, math.Max(0, w-0.01)) - m.TimeNs(b, math.Max(0, w-0.01))
		hi := m.TimeNs(a, math.Min(1, w+0.01)) - m.TimeNs(b, math.Min(1, w+0.01))
		return lo*hi <= 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBadFractionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("w>1 should panic")
		}
	}()
	Composition{}.TimeNs(Config{}, 1.5)
}
