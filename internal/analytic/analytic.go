// Package analytic implements the paper's closed-form models: the
// roofline of Section V.A (Fig. 2) and the GEMM/Non-GEMM composition
// model of Section V.D.2 (Fig. 9) with its DevMem-vs-PCIe crossover.
package analytic

import "fmt"

// Roofline models the accelerator system of Fig. 2: execution time is
// the maximum of the compute ramp (tiles x per-tile time) and the
// data-transfer floor, plus a fixed offset.
type Roofline struct {
	// Tiles is the number of output tiles in the workload.
	Tiles int
	// TransferNs is the memory/PCIe-bound execution floor.
	TransferNs float64
	// FixedNs covers job launch and drain overheads.
	FixedNs float64
}

// ExecTimeNs returns the modeled execution time for a per-tile compute
// time.
func (r Roofline) ExecTimeNs(perTileNs float64) float64 {
	compute := float64(r.Tiles) * perTileNs
	if compute < r.TransferNs {
		compute = r.TransferNs
	}
	return compute + r.FixedNs
}

// KneeNs returns the per-tile compute time at which the system moves
// between the compute-bound ramp and the transfer-bound plateau.
func (r Roofline) KneeNs() float64 {
	if r.Tiles == 0 {
		return 0
	}
	return r.TransferNs / float64(r.Tiles)
}

// Config holds the measured unit times of one system configuration for
// the composition model: the time to execute the reference workload's
// GEMM portion and Non-GEMM portion in isolation.
type Config struct {
	Name     string
	GEMMNs   float64 // time for the all-GEMM workload
	NonGEMMs float64 // time for the all-Non-GEMM workload
}

// Composition is the paper's total-time model:
//
//	T(w) = TOther + (1-w) * GEMMNs + w * NonGEMMs
//
// where w is the Non-GEMM workload fraction (Fig. 9's x-axis).
type Composition struct {
	TOtherNs float64
}

// TimeNs evaluates the model for configuration c at Non-GEMM fraction
// w in [0,1].
func (m Composition) TimeNs(c Config, w float64) float64 {
	if w < 0 || w > 1 {
		panic(fmt.Sprintf("analytic: fraction %v outside [0,1]", w))
	}
	return m.TOtherNs + (1-w)*c.GEMMNs + w*c.NonGEMMs
}

// Crossover returns the Non-GEMM fraction at which configurations a
// and b have equal modeled time, and whether it lies inside (0,1).
// Below the crossover the configuration with the smaller GEMM time
// wins; above it the one with the smaller Non-GEMM time wins.
func (m Composition) Crossover(a, b Config) (float64, bool) {
	dg := b.GEMMNs - a.GEMMNs     // a's GEMM advantage
	dn := a.NonGEMMs - b.NonGEMMs // a's Non-GEMM penalty
	den := dg + dn
	if den == 0 {
		return 0, false
	}
	w := dg / den
	return w, w > 0 && w < 1
}

// Series samples the model for a configuration across npts fractions
// from 0 to 1 inclusive.
func (m Composition) Series(c Config, npts int) []float64 {
	if npts < 2 {
		panic("analytic: need at least 2 points")
	}
	out := make([]float64, npts)
	for i := range out {
		w := float64(i) / float64(npts-1)
		out[i] = m.TimeNs(c, w)
	}
	return out
}
