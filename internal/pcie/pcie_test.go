package pcie

import (
	"bytes"
	"math"
	"testing"

	"accesys/internal/mem"
	"accesys/internal/memtest"
	"accesys/internal/sim"
	"accesys/internal/stats"
)

func TestLinkConfigMath(t *testing.T) {
	gen2 := LinkConfig{Lanes: 4, LaneGbps: 4}
	if gen2.RawGBps() != 2 {
		t.Fatalf("4x4Gbps raw = %v GB/s, want 2", gen2.RawGBps())
	}
	if gen2.EncodingEfficiency() != 0.8 {
		t.Fatal("<=5 Gbps lanes should use 8b/10b")
	}
	gen4 := LinkConfig{Lanes: 16, LaneGbps: 32}
	if gen4.RawGBps() != 64 {
		t.Fatalf("16x32Gbps raw = %v, want 64", gen4.RawGBps())
	}
	if math.Abs(gen4.EncodingEfficiency()-128.0/130.0) > 1e-12 {
		t.Fatal(">5 Gbps lanes should use 128b/130b")
	}
	// Serialization: 1000 bytes at 1.6 GB/s effective = 625 ns.
	l := LinkConfig{Lanes: 4, LaneGbps: 4}
	ser := l.SerTime(1000)
	if ser != 625000 {
		t.Fatalf("SerTime = %v ps, want 625000 (625ns at 1.6 GB/s effective)", uint64(ser))
	}
}

func TestLinkForGBps(t *testing.T) {
	l := LinkForGBps(8, 8)
	if l.RawGBps() != 8 || l.Lanes != 8 || l.LaneGbps != 8 {
		t.Fatalf("LinkForGBps(8,8) = %+v", l)
	}
	if LinkForGBps(2, 4).LaneGbps != 4 {
		t.Fatal("2 GB/s over 4 lanes should be 4 Gbps lanes")
	}
}

// fabric: dma requestor on EP0's DevPort; host memory echo behind the
// RC upstream port; a CSR echo behind EP0's BusPort; host requestor on
// the RC host port.
type fabric struct {
	eq      *sim.EventQueue
	tree    *Tree
	dma     *memtest.Requestor
	host    *memtest.Requestor
	hostMem *memtest.EchoResponder
	csr     *memtest.EchoResponder
	reg     *stats.Registry
}

const (
	hostMemBase = 0x0
	hostMemSize = 1 << 21
	barBase     = 0x1000_0000
	barSize     = 1 << 20
)

func newFabric(t *testing.T, cfg Config) *fabric {
	t.Helper()
	eq := sim.NewEventQueue()
	reg := stats.NewRegistry()
	tree := NewTree("pcie", eq, reg, cfg, []mem.AddrRange{mem.Range(barBase, barSize)})

	f := &fabric{eq: eq, tree: tree, reg: reg}
	f.dma = memtest.NewRequestor(eq)
	mem.Bind(f.dma.Port, tree.EP(0).DevPort())

	f.hostMem = memtest.NewEchoResponder(eq, hostMemBase, hostMemSize, 50*sim.Nanosecond)
	mem.Bind(tree.RC.UpstreamPort(), f.hostMem.Port)

	f.csr = memtest.NewEchoResponder(eq, barBase, barSize, 10*sim.Nanosecond)
	mem.Bind(tree.EP(0).BusPort(), f.csr.Port)

	f.host = memtest.NewRequestor(eq)
	mem.Bind(f.host.Port, tree.RC.HostPort())
	return f
}

func defLink() Config {
	return Config{Link: LinkForGBps(8, 8)}
}

func TestDMAReadRoundtrip(t *testing.T) {
	f := newFabric(t, defLink())
	f.hostMem.Store.Write(0x4000, []byte{1, 2, 3, 4, 5, 6, 7, 8})
	rd := mem.NewRead(0x4000, 8)
	f.dma.Send(rd)
	f.eq.Run()
	if len(f.dma.Done) != 1 {
		t.Fatal("DMA read lost")
	}
	if !bytes.Equal(rd.Data, []byte{1, 2, 3, 4, 5, 6, 7, 8}) {
		t.Fatalf("DMA read data %v", rd.Data)
	}
	// Latency sanity: EP+switch+RC latencies (20+50+150)*up +
	// mem 50 + completion path (150..220) — between 300ns and 1.5us.
	if f.dma.DoneAt[0] < 300*sim.Nanosecond || f.dma.DoneAt[0] > 1500*sim.Nanosecond {
		t.Fatalf("DMA read latency %v out of window", f.dma.DoneAt[0])
	}
}

func TestDMAPostedWrite(t *testing.T) {
	f := newFabric(t, defLink())
	payload := []byte{0xca, 0xfe}
	wr := mem.NewWrite(0x8000, payload)
	f.dma.Send(wr)
	f.eq.Run()
	if len(f.dma.Done) != 1 || f.dma.Done[0].Cmd != mem.WriteResp {
		t.Fatal("posted write not acknowledged")
	}
	// Ack at the EP: far faster than a fabric roundtrip.
	if f.dma.DoneAt[0] > 100*sim.Nanosecond {
		t.Fatalf("posted write ack took %v", f.dma.DoneAt[0])
	}
	got := make([]byte, 2)
	f.hostMem.Store.Read(0x8000, got)
	if !bytes.Equal(got, payload) {
		t.Fatalf("posted write data did not land: %v", got)
	}
}

func TestHostMMIORead(t *testing.T) {
	f := newFabric(t, defLink())
	f.csr.Store.Write(0x10, []byte{0xab, 0xcd, 0, 0})
	rd := mem.NewRead(barBase+0x10, 4)
	f.host.Send(rd)
	f.eq.Run()
	if len(f.host.Done) != 1 {
		t.Fatal("MMIO read lost")
	}
	if !bytes.Equal(rd.Data, []byte{0xab, 0xcd, 0, 0}) {
		t.Fatalf("MMIO read data %v", rd.Data)
	}
}

func TestHostMMIOPostedWrite(t *testing.T) {
	f := newFabric(t, defLink())
	wr := mem.NewWrite(barBase+0x20, []byte{7, 7, 7, 7})
	f.host.Send(wr)
	f.eq.Run()
	if len(f.host.Done) != 1 || f.host.Done[0] != wr {
		t.Fatal("host write not acknowledged with original packet")
	}
	got := make([]byte, 4)
	f.csr.Store.Read(0x20, got)
	if !bytes.Equal(got, []byte{7, 7, 7, 7}) {
		t.Fatalf("device CSR did not receive write: %v", got)
	}
}

// streamTime measures the time to DMA-read total bytes in pktSize
// requests.
func streamTime(t *testing.T, cfg Config, pktSize, total int) sim.Tick {
	t.Helper()
	f := newFabric(t, cfg)
	n := total / pktSize
	for i := 0; i < n; i++ {
		f.dma.Send(mem.NewRead(uint64(i*pktSize)%hostMemSize, pktSize))
	}
	f.eq.Run()
	if len(f.dma.Done) != n {
		t.Fatalf("completed %d of %d", len(f.dma.Done), n)
	}
	return f.eq.Now()
}

func TestStreamingApproachesLinkBandwidth(t *testing.T) {
	cfg := defLink() // 8 GB/s raw, ~7.88 effective
	const total = 1 << 19
	elapsed := streamTime(t, cfg, 256, total)
	gbps := float64(total) / elapsed.Seconds() / 1e9
	if gbps < 0.5*cfg.Link.EffectiveGBps() {
		t.Fatalf("streaming achieved %.2f GB/s, below half of link %.2f", gbps, cfg.Link.EffectiveGBps())
	}
	if gbps > cfg.Link.EffectiveGBps()*1.01 {
		t.Fatalf("streaming %.2f GB/s exceeds the link %.2f", gbps, cfg.Link.EffectiveGBps())
	}
}

// TestPacketSizeConvexity reproduces the Fig. 4 shape: both very small
// and very large request sizes are slower than the mid-size optimum.
func TestPacketSizeConvexity(t *testing.T) {
	cfg := defLink()
	const total = 1 << 19
	t64 := streamTime(t, cfg, 64, total)
	t256 := streamTime(t, cfg, 256, total)
	t4096 := streamTime(t, cfg, 4096, total)
	if !(t256 < t64) {
		t.Fatalf("64B (%v) should be slower than 256B (%v)", t64, t256)
	}
	if !(t256 < t4096) {
		t.Fatalf("4096B (%v) should be slower than 256B (%v)", t4096, t256)
	}
}

func TestBandwidthScalesWithLanes(t *testing.T) {
	const total = 1 << 19
	t2 := streamTime(t, Config{Link: LinkForGBps(2, 4)}, 256, total)
	t8 := streamTime(t, Config{Link: LinkForGBps(8, 8)}, 256, total)
	t64 := streamTime(t, Config{Link: LinkForGBps(64, 16)}, 256, total)
	if !(t64 < t8 && t8 < t2) {
		t.Fatalf("bandwidth scaling violated: 2GB/s=%v 8GB/s=%v 64GB/s=%v", t2, t8, t64)
	}
	// 2 -> 8 GB/s quadruples bandwidth; in the memory-bound regime the
	// time ratio should be comfortably above 2x.
	if float64(t2)/float64(t8) < 2 {
		t.Fatalf("2GB/s vs 8GB/s speedup only %.2fx", float64(t2)/float64(t8))
	}
}

func TestCreditStallsOnLargePackets(t *testing.T) {
	f := newFabric(t, defLink())
	for i := 0; i < 32; i++ {
		f.dma.Send(mem.NewRead(uint64(i)*4096, 4096))
	}
	f.eq.Run()
	// Completions (4096+24 B) exceed the switch rx buffer (4096):
	// the RC->switch conn must have stalled on credit.
	if f.tree.RC.down.Stalls == 0 {
		t.Fatal("expected credit stalls for oversize completions")
	}
}

func TestMultiEndpointRouting(t *testing.T) {
	eq := sim.NewEventQueue()
	reg := stats.NewRegistry()
	bar0 := mem.Range(0x1000_0000, 1<<16)
	bar1 := mem.Range(0x2000_0000, 1<<16)
	tree := NewTree("pcie", eq, reg, defLink(), []mem.AddrRange{bar0}, []mem.AddrRange{bar1})

	dev0 := memtest.NewEchoResponder(eq, bar0.Start, bar0.Size(), 10*sim.Nanosecond)
	dev1 := memtest.NewEchoResponder(eq, bar1.Start, bar1.Size(), 10*sim.Nanosecond)
	mem.Bind(tree.EP(0).BusPort(), dev0.Port)
	mem.Bind(tree.EP(1).BusPort(), dev1.Port)

	hostMem := memtest.NewEchoResponder(eq, 0, 1<<20, 30*sim.Nanosecond)
	mem.Bind(tree.RC.UpstreamPort(), hostMem.Port)

	host := memtest.NewRequestor(eq)
	mem.Bind(host.Port, tree.RC.HostPort())

	host.Send(mem.NewWrite(bar0.Start+4, []byte{1}))
	host.Send(mem.NewWrite(bar1.Start+4, []byte{2}))
	eq.Run()
	b := make([]byte, 1)
	dev0.Store.Read(4, b)
	if b[0] != 1 {
		t.Fatalf("dev0 got %d", b[0])
	}
	dev1.Store.Read(4, b)
	if b[0] != 2 {
		t.Fatalf("dev1 got %d", b[0])
	}

	// Upstream DMA from both endpoints: completions route back to the
	// right EP.
	dma0 := memtest.NewRequestor(eq)
	dma1 := memtest.NewRequestor(eq)
	mem.Bind(dma0.Port, tree.EP(0).DevPort())
	mem.Bind(dma1.Port, tree.EP(1).DevPort())
	hostMem.Store.Write(0x100, []byte{0xe0})
	hostMem.Store.Write(0x200, []byte{0xe1})
	r0 := mem.NewRead(0x100, 1)
	r1 := mem.NewRead(0x200, 1)
	dma0.Send(r0)
	dma1.Send(r1)
	eq.Run()
	if len(dma0.Done) != 1 || r0.Data[0] != 0xe0 {
		t.Fatal("EP0 completion misrouted")
	}
	if len(dma1.Done) != 1 || r1.Data[0] != 0xe1 {
		t.Fatal("EP1 completion misrouted")
	}
}

func TestTLPAccounting(t *testing.T) {
	f := newFabric(t, defLink())
	f.dma.Send(mem.NewRead(0, 256))
	f.eq.Run()
	// One MemRd upstream (24B), one Cpl downstream (280B).
	up := f.reg.Lookup("pcie.ep0.bytes_up").Value()
	if up != 24 {
		t.Fatalf("upstream bytes = %v, want 24 (header-only read)", up)
	}
	down := f.reg.Lookup("pcie.rc.bytes_down").Value()
	if down != 280 {
		t.Fatalf("downstream bytes = %v, want 280", down)
	}
}

func TestSwitchCountsBothDirections(t *testing.T) {
	f := newFabric(t, defLink())
	f.dma.Send(mem.NewRead(0, 64))
	f.eq.Run()
	if f.reg.Lookup("pcie.switch.tlps").Value() != 2 {
		t.Fatalf("switch forwarded %v TLPs, want 2", f.reg.Lookup("pcie.switch.tlps").Value())
	}
}

func TestNoLanesPanics(t *testing.T) {
	eq := sim.NewEventQueue()
	reg := stats.NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("zero-lane link should panic")
		}
	}()
	NewTree("pcie", eq, reg, Config{}, []mem.AddrRange{mem.Range(0, 4096)})
}

func TestUnclaimedDownstreamPanics(t *testing.T) {
	f := newFabric(t, defLink())
	defer func() {
		if recover() == nil {
			t.Fatal("downstream request to unclaimed address should panic")
		}
	}()
	f.host.Send(mem.NewRead(0x9999_0000, 4))
	f.eq.Run()
}

func TestCutThroughReducesLatency(t *testing.T) {
	lat := func(cut bool) sim.Tick {
		cfg := defLink()
		cfg.CutThrough = cut
		f := newFabric(t, cfg)
		rd := mem.NewRead(0x1000, 4096)
		f.dma.Send(rd)
		f.eq.Run()
		return f.dma.DoneAt[0]
	}
	sf := lat(false)
	ct := lat(true)
	if ct >= sf {
		t.Fatalf("cut-through (%v) should beat store-and-forward (%v)", ct, sf)
	}
	// A 4 KiB completion serializes ~520ns per hop; cut-through should
	// save roughly one serialization per intermediate hop.
	if sf-ct < 200*sim.Nanosecond {
		t.Fatalf("cut-through saved only %v", sf-ct)
	}
}

func BenchmarkFabricStream(b *testing.B) {
	for i := 0; i < b.N; i++ {
		eq := sim.NewEventQueue()
		reg := stats.NewRegistry()
		tree := NewTree("pcie", eq, reg, defLink(), []mem.AddrRange{mem.Range(barBase, barSize)})
		dma := memtest.NewRequestor(eq)
		mem.Bind(dma.Port, tree.EP(0).DevPort())
		hostMem := memtest.NewEchoResponder(eq, hostMemBase, hostMemSize, 50*sim.Nanosecond)
		mem.Bind(tree.RC.UpstreamPort(), hostMem.Port)
		for a := uint64(0); a < 1<<18; a += 256 {
			dma.Send(mem.NewRead(a, 256))
		}
		eq.Run()
		b.ReportMetric(float64(eq.Executed), "events")
	}
}
