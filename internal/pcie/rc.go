package pcie

import (
	"fmt"

	"accesys/internal/mem"
	"accesys/internal/sim"
	"accesys/internal/stats"
)

// epOrigin is stacked on upstream request packets so the response can
// be steered back to the right endpoint as a completion.
type epOrigin struct{ ep int }

// postedClone marks a cloned write created for posted-write semantics;
// its response is dropped at the far bridge.
type postedClone struct{}

// RootComplex bridges the PCIe fabric to the host memory system. Two
// traffic directions cross it:
//
//   - Upstream (device DMA): TLPs arriving from the switch are
//     unwrapped after RCLatency and issued into the host memory system
//     through UpstreamPort; responses come back and leave as
//     completions.
//   - Downstream (host MMIO / DevMem over PCIe): requests received on
//     HostPort are wrapped into TLPs and sent toward the switch; their
//     completions are matched back and answered on HostPort.
//
// Memory writes are posted in both directions, as in real PCIe: the
// writer gets its acknowledgment at the bridge and a cloned write
// travels on.
type RootComplex struct {
	name string
	eq   *sim.EventQueue
	cfg  Config

	upPort   *mem.RequestPort  // toward IOCache / membus
	hostPort *mem.ResponsePort // from membus (host-initiated)

	memQ  *mem.PacketQueue // unwrapped upstream requests out upPort
	respQ *mem.PacketQueue // responses to host out hostPort

	down *conn // RC -> switch; set at tree construction
	pool *tlpPool

	upProcFree   sim.Tick
	downProcFree sim.Tick

	hostNeedRetry bool

	// epStates caches boxed epOrigin values so stacking one on an
	// upstream request does not allocate per packet.
	epStates []any

	tlpsUp    *stats.Counter
	tlpsDown  *stats.Counter
	bytesUp   *stats.Counter
	bytesDown *stats.Counter
}

func newRootComplex(name string, eq *sim.EventQueue, reg *stats.Registry, cfg Config, pool *tlpPool) *RootComplex {
	rc := &RootComplex{name: name, eq: eq, cfg: cfg, pool: pool}
	rc.upPort = mem.NewRequestPort(name+".up", rc)
	rc.hostPort = mem.NewResponsePort(name+".host", rc)
	rc.memQ = mem.NewPacketQueue(name+".memq", eq, func(p *mem.Packet) bool {
		return rc.upPort.SendTimingReq(p)
	})
	rc.respQ = mem.NewPacketQueue(name+".respq", eq, func(p *mem.Packet) bool {
		return rc.hostPort.SendTimingResp(p)
	})
	g := reg.Group(name)
	rc.tlpsUp = g.Counter("tlps_up", "TLPs received from devices")
	rc.tlpsDown = g.Counter("tlps_down", "TLPs sent toward devices")
	rc.bytesUp = g.Counter("bytes_up", "TLP bytes upstream")
	rc.bytesDown = g.Counter("bytes_down", "TLP bytes downstream")
	return rc
}

// UpstreamPort is the request port the RC drives into the host memory
// system (bind to the IOCache or memory bus).
func (rc *RootComplex) UpstreamPort() *mem.RequestPort { return rc.upPort }

// HostPort is the response port the host (membus) drives for
// CPU-initiated MMIO and DevMem-over-PCIe accesses.
func (rc *RootComplex) HostPort() *mem.ResponsePort { return rc.hostPort }

// procDelay runs t through the RC's directioned processing pipeline
// and returns the tick at which forwarding may happen.
func (rc *RootComplex) procDelay(upstream bool) sim.Tick {
	procFree := &rc.downProcFree
	if upstream {
		procFree = &rc.upProcFree
	}
	start := rc.eq.Now()
	if *procFree > start {
		start = *procFree
	}
	*procFree = start + rc.cfg.RCProcII
	return start + rc.cfg.RCLatency
}

// deliverTLP implements receiver: upstream traffic from the switch.
func (rc *RootComplex) deliverTLP(from *conn, t *TLP) {
	rc.tlpsUp.Inc()
	rc.bytesUp.Add(uint64(t.Bytes))
	at := rc.procDelay(true)
	t.stage = stageRCUnwrap
	t.dlvRC = rc
	rc.eq.ScheduleEvent(t.ev, at, sim.PriorityDefault)
}

// epState returns the cached boxed epOrigin for an endpoint index.
func (rc *RootComplex) epState(ep int) any {
	for len(rc.epStates) <= ep {
		rc.epStates = append(rc.epStates, epOrigin{ep: len(rc.epStates)})
	}
	return rc.epStates[ep]
}

// unwrap issues the TLP's payload into the host memory system once it
// has left the RC's processing pipeline, and retires the TLP.
func (rc *RootComplex) unwrap(t *TLP) {
	t.dlvFrom.release(t) // TLP has left the RC's rx buffer
	switch t.Kind {
	case MemRd, MemWr:
		t.Pkt.PushState(rc.epState(t.SrcEP))
		rc.memQ.Schedule(t.Pkt, rc.eq.Now())
	case Cpl:
		// Completion for a host-initiated request.
		rc.respQ.Schedule(t.Pkt, rc.eq.Now())
	}
	rc.pool.put(t)
}

// RecvTimingResp implements mem.Requestor: the host memory system
// answered a device DMA request; wrap it as a completion (reads) or
// drop it (posted writes).
func (rc *RootComplex) RecvTimingResp(port *mem.RequestPort, pkt *mem.Packet) bool {
	switch st := pkt.PopState().(type) {
	case postedClone:
		pkt.Release() // clone of a posted write; sinks here
		return true
	case epOrigin:
		if pkt.Cmd == mem.WriteResp {
			// Posted upstream write: already acknowledged at the EP.
			pkt.Release()
			return true
		}
		t := rc.pool.get(rc.eq)
		t.Kind, t.Pkt, t.Bytes, t.DstEP = Cpl, pkt, rc.cfg.TLPHeaderBytes+pkt.Size, st.ep
		at := rc.procDelay(false)
		rc.tlpsDown.Inc()
		rc.bytesDown.Add(uint64(t.Bytes))
		t.stage = stageSend
		t.sendConn = rc.down
		rc.eq.ScheduleEvent(t.ev, at, sim.PriorityDefault)
		return true
	default:
		panic(fmt.Sprintf("pcie: %s unexpected response state %T", rc.name, st))
	}
}

// RecvTimingReq implements mem.Responder: host-initiated access to
// device space.
func (rc *RootComplex) RecvTimingReq(port *mem.ResponsePort, pkt *mem.Packet) bool {
	if rc.down.queued() >= rc.cfg.TxQueueDepth {
		rc.hostNeedRetry = true
		return false
	}

	t := rc.pool.get(rc.eq)
	switch {
	case pkt.Cmd == mem.ReadReq:
		t.Kind, t.Pkt, t.Bytes = MemRd, pkt, rc.cfg.TLPHeaderBytes
	case pkt.Cmd == mem.WriteReq:
		clone := cloneWrite(pkt)
		clone.PushState(postedClone{})
		t.Kind, t.Pkt, t.Bytes = MemWr, clone, rc.cfg.TLPHeaderBytes+pkt.Size
		// Posted: acknowledge the writer at the bridge.
		pkt.MakeResponse()
		rc.respQ.Schedule(pkt, rc.eq.Now()+rc.cfg.RCLatency)
	default:
		panic(fmt.Sprintf("pcie: %s: unexpected host command %v", rc.name, pkt.Cmd))
	}

	at := rc.procDelay(false)
	rc.tlpsDown.Inc()
	rc.bytesDown.Add(uint64(t.Bytes))
	t.stage = stageSend
	t.sendConn = rc.down
	rc.eq.ScheduleEvent(t.ev, at, sim.PriorityDefault)
	return true
}

// RecvRetryReq implements mem.Requestor.
func (rc *RootComplex) RecvRetryReq(port *mem.RequestPort) { rc.memQ.RetryReceived() }

// RecvRetryResp implements mem.Responder.
func (rc *RootComplex) RecvRetryResp(port *mem.ResponsePort) { rc.respQ.RetryReceived() }

// wakeHost re-opens the host port after a TX-queue-full refusal.
func (rc *RootComplex) wakeHost() {
	if !rc.hostNeedRetry {
		return
	}
	rc.hostNeedRetry = false
	rc.hostPort.SendRetryReq()
}

// cloneWrite duplicates a write request for posted forwarding. The
// payload is copied, not aliased: the original is acknowledged (and
// its lease may end) at this bridge while the clone travels on, so
// the two must not share a buffer.
func cloneWrite(pkt *mem.Packet) *mem.Packet {
	c := mem.NewWriteSize(pkt.Addr, pkt.Size)
	if pkt.Data != nil {
		copy(c.AllocData(), pkt.Data)
	}
	c.Vaddr = pkt.Vaddr
	c.Uncacheable = pkt.Uncacheable
	c.Issued = pkt.Issued
	return c
}

var _ mem.Requestor = (*RootComplex)(nil)
var _ mem.Responder = (*RootComplex)(nil)
var _ receiver = (*RootComplex)(nil)
