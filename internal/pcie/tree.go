package pcie

import (
	"fmt"

	"accesys/internal/mem"
	"accesys/internal/sim"
	"accesys/internal/stats"
)

// Config parameterizes the whole PCIe subsystem. Defaults follow the
// paper's Table II (RC 150 ns, Switch 50 ns).
type Config struct {
	// Link applies to both the RC-switch and switch-EP links.
	Link LinkConfig

	// TLPHeaderBytes is the per-TLP wire overhead: framing + header +
	// LCRC (default 24).
	TLPHeaderBytes int

	// Processing latencies (store-and-forward, per hop).
	RCLatency     sim.Tick // default 150 ns
	SwitchLatency sim.Tick // default 50 ns
	EPLatency     sim.Tick // default 20 ns

	// Initiation intervals: one TLP per II per direction per hop.
	RCProcII     sim.Tick // default 16 ns
	SwitchProcII sim.Tick // default 10 ns
	EPProcII     sim.Tick // default 4 ns

	// Receiver buffer sizes gating the credit flow control.
	RCBufBytes     int // default 8192
	SwitchBufBytes int // default 4096
	EPBufBytes     int // default 16384

	// TxQueueDepth bounds TLPs queued at each bridge before admission
	// backpressure (default 32).
	TxQueueDepth int

	// CutThrough makes hops begin forwarding once a TLP's header has
	// arrived instead of store-and-forward (an ablation of the
	// paper's S&F pipeline; reduces per-hop latency for large TLPs).
	CutThrough bool
}

func (c *Config) setDefaults() {
	if c.TLPHeaderBytes == 0 {
		c.TLPHeaderBytes = 24
	}
	if c.RCLatency == 0 {
		c.RCLatency = 150 * sim.Nanosecond
	}
	if c.SwitchLatency == 0 {
		c.SwitchLatency = 50 * sim.Nanosecond
	}
	if c.EPLatency == 0 {
		c.EPLatency = 20 * sim.Nanosecond
	}
	if c.RCProcII == 0 {
		c.RCProcII = 16 * sim.Nanosecond
	}
	if c.SwitchProcII == 0 {
		c.SwitchProcII = 10 * sim.Nanosecond
	}
	if c.EPProcII == 0 {
		c.EPProcII = 4 * sim.Nanosecond
	}
	if c.RCBufBytes == 0 {
		c.RCBufBytes = 8192
	}
	if c.SwitchBufBytes == 0 {
		c.SwitchBufBytes = 2048
	}
	if c.EPBufBytes == 0 {
		c.EPBufBytes = 16384
	}
	if c.TxQueueDepth == 0 {
		c.TxQueueDepth = 32
	}
	if c.Link.PropDelay == 0 {
		c.Link.PropDelay = 5 * sim.Nanosecond
	}
}

// Resolved returns the configuration with every zero field replaced
// by its default — the values an assembled Tree actually runs with.
// Analytic models derive their constants from this so they can never
// drift from the timing simulation's defaults.
func (c Config) Resolved() Config {
	c.setDefaults()
	return c
}

// Tree is an assembled PCIe fabric: RC <-> Switch <-> EP[i].
type Tree struct {
	RC     *RootComplex
	Switch *Switch
	EPs    []*Endpoint
	cfg    Config
}

// NewTree builds the fabric with one endpoint per element of epRanges;
// each endpoint claims its address ranges for downstream routing.
func NewTree(name string, eq *sim.EventQueue, reg *stats.Registry, cfg Config, epRanges ...[]mem.AddrRange) *Tree {
	cfg.setDefaults()
	if cfg.Link.Lanes <= 0 || cfg.Link.LaneGbps <= 0 {
		panic(fmt.Sprintf("pcie: %s: link needs lanes and rate", name))
	}
	if len(epRanges) == 0 {
		panic(fmt.Sprintf("pcie: %s: at least one endpoint required", name))
	}

	t := &Tree{cfg: cfg}
	pool := &tlpPool{}
	t.RC = newRootComplex(name+".rc", eq, reg, cfg, pool)
	t.Switch = newSwitch(name+".switch", eq, reg, cfg)

	cut := 0
	if cfg.CutThrough {
		cut = cfg.TLPHeaderBytes
	}

	// RC -> switch and switch -> RC conns.
	t.RC.down = newConn(name+".rc2sw", eq, cfg.Link, t.Switch, cfg.SwitchBufBytes)
	t.RC.down.OnDrain = t.RC.wakeHost
	t.RC.down.cutThroughHdr = cut
	t.Switch.fromRC = t.RC.down
	t.Switch.up = newConn(name+".sw2rc", eq, cfg.Link, t.RC, cfg.RCBufBytes)
	t.Switch.up.cutThroughHdr = cut

	for i, ranges := range epRanges {
		ep := newEndpoint(fmt.Sprintf("%s.ep%d", name, i), i, eq, reg, cfg, pool, ranges)
		down := newConn(fmt.Sprintf("%s.sw2ep%d", name, i), eq, cfg.Link, ep, cfg.EPBufBytes)
		down.cutThroughHdr = cut
		ep.up = newConn(fmt.Sprintf("%s.ep%d2sw", name, i), eq, cfg.Link, t.Switch, cfg.SwitchBufBytes)
		ep.up.OnDrain = ep.wakeDev
		ep.up.cutThroughHdr = cut
		t.Switch.downs = append(t.Switch.downs, down)
		for _, r := range ranges {
			t.Switch.addrMap.Add(r, i)
		}
		t.EPs = append(t.EPs, ep)
	}
	return t
}

// EP returns endpoint i.
func (t *Tree) EP(i int) *Endpoint { return t.EPs[i] }

// Config returns the tree's resolved configuration.
func (t *Tree) Config() Config { return t.cfg }
