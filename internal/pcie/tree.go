package pcie

import (
	"fmt"

	"accesys/internal/mem"
	"accesys/internal/sim"
	"accesys/internal/stats"
)

// Topology describes the fabric shape between the root complex and
// the endpoints. The zero value is the paper's flat tree: a single
// switch with every endpoint attached directly. Levels == 2 inserts a
// rank of leaf switches below the root switch, with Fanout endpoints
// hanging off each leaf — traffic between the host and an endpoint
// then crosses three links (RC-root, root-leaf, leaf-EP) instead of
// two, and endpoints under different leaves contend only on the
// shared RC-root segment.
type Topology struct {
	// Levels is the switch depth: 0 or 1 = flat, 2 = root + leaves.
	Levels int
	// Fanout is the number of endpoints per leaf switch (Levels == 2
	// only; the last leaf may be partially filled).
	Fanout int
}

// Flat reports whether the topology is the single-switch shape.
func (t Topology) Flat() bool { return t.Levels <= 1 }

// Validate rejects shapes the tree builder cannot construct.
func (t Topology) Validate() error {
	switch {
	case t.Levels < 0 || t.Levels > 2:
		return fmt.Errorf("pcie: topology levels %d (want 0, 1, or 2)", t.Levels)
	case t.Levels == 2 && t.Fanout < 1:
		return fmt.Errorf("pcie: 2-level topology needs fanout >= 1")
	case t.Levels < 2 && t.Fanout != 0:
		return fmt.Errorf("pcie: fanout %d requires levels = 2", t.Fanout)
	}
	return nil
}

// LeafCount returns how many leaf-level attachment points serve n
// endpoints: the leaf switch count for a 2-level tree, or n itself
// for the flat shape (each endpoint attaches directly to the switch).
func (t Topology) LeafCount(n int) int {
	if t.Flat() {
		return n
	}
	return (n + t.Fanout - 1) / t.Fanout
}

// LeafOf returns the leaf-level attachment point of endpoint i.
func (t Topology) LeafOf(i int) int {
	if t.Flat() {
		return i
	}
	return i / t.Fanout
}

// Config parameterizes the whole PCIe subsystem. Defaults follow the
// paper's Table II (RC 150 ns, Switch 50 ns).
type Config struct {
	// Link applies to both the RC-switch and switch-EP links.
	Link LinkConfig

	// Topology selects the fabric shape (zero value = flat switch).
	Topology Topology

	// TLPHeaderBytes is the per-TLP wire overhead: framing + header +
	// LCRC (default 24).
	TLPHeaderBytes int

	// Processing latencies (store-and-forward, per hop).
	RCLatency     sim.Tick // default 150 ns
	SwitchLatency sim.Tick // default 50 ns
	EPLatency     sim.Tick // default 20 ns

	// Initiation intervals: one TLP per II per direction per hop.
	RCProcII     sim.Tick // default 16 ns
	SwitchProcII sim.Tick // default 10 ns
	EPProcII     sim.Tick // default 4 ns

	// Receiver buffer sizes gating the credit flow control.
	RCBufBytes     int // default 8192
	SwitchBufBytes int // default 4096
	EPBufBytes     int // default 16384

	// TxQueueDepth bounds TLPs queued at each bridge before admission
	// backpressure (default 32).
	TxQueueDepth int

	// CutThrough makes hops begin forwarding once a TLP's header has
	// arrived instead of store-and-forward (an ablation of the
	// paper's S&F pipeline; reduces per-hop latency for large TLPs).
	CutThrough bool
}

func (c *Config) setDefaults() {
	if c.TLPHeaderBytes == 0 {
		c.TLPHeaderBytes = 24
	}
	if c.RCLatency == 0 {
		c.RCLatency = 150 * sim.Nanosecond
	}
	if c.SwitchLatency == 0 {
		c.SwitchLatency = 50 * sim.Nanosecond
	}
	if c.EPLatency == 0 {
		c.EPLatency = 20 * sim.Nanosecond
	}
	if c.RCProcII == 0 {
		c.RCProcII = 16 * sim.Nanosecond
	}
	if c.SwitchProcII == 0 {
		c.SwitchProcII = 10 * sim.Nanosecond
	}
	if c.EPProcII == 0 {
		c.EPProcII = 4 * sim.Nanosecond
	}
	if c.RCBufBytes == 0 {
		c.RCBufBytes = 8192
	}
	if c.SwitchBufBytes == 0 {
		c.SwitchBufBytes = 2048
	}
	if c.EPBufBytes == 0 {
		c.EPBufBytes = 16384
	}
	if c.TxQueueDepth == 0 {
		c.TxQueueDepth = 32
	}
	if c.Link.PropDelay == 0 {
		c.Link.PropDelay = 5 * sim.Nanosecond
	}
}

// Resolved returns the configuration with every zero field replaced
// by its default — the values an assembled Tree actually runs with.
// Analytic models derive their constants from this so they can never
// drift from the timing simulation's defaults.
func (c Config) Resolved() Config {
	c.setDefaults()
	return c
}

// Tree is an assembled PCIe fabric: RC <-> Switch <-> EP[i] for the
// flat shape, or RC <-> Switch (root) <-> Leaves[j] <-> EP[i] for the
// 2-level shape.
type Tree struct {
	RC     *RootComplex
	Switch *Switch   // the root switch
	Leaves []*Switch // leaf switches (2-level topologies only)
	EPs    []*Endpoint
	cfg    Config
}

// NewTree builds the fabric with one endpoint per element of epRanges;
// each endpoint claims its address ranges for downstream routing.
func NewTree(name string, eq *sim.EventQueue, reg *stats.Registry, cfg Config, epRanges ...[]mem.AddrRange) *Tree {
	cfg.setDefaults()
	if cfg.Link.Lanes <= 0 || cfg.Link.LaneGbps <= 0 {
		panic(fmt.Sprintf("pcie: %s: link needs lanes and rate", name))
	}
	if len(epRanges) == 0 {
		panic(fmt.Sprintf("pcie: %s: at least one endpoint required", name))
	}
	if err := cfg.Topology.Validate(); err != nil {
		panic(fmt.Sprintf("pcie: %s: %v", name, err))
	}

	t := &Tree{cfg: cfg}
	pool := &tlpPool{}
	t.RC = newRootComplex(name+".rc", eq, reg, cfg, pool)
	t.Switch = newSwitch(name+".switch", eq, reg, cfg)
	t.Switch.epPort = make([]int, len(epRanges))

	cut := 0
	if cfg.CutThrough {
		cut = cfg.TLPHeaderBytes
	}

	// RC -> switch and switch -> RC conns.
	t.RC.down = newConn(name+".rc2sw", eq, cfg.Link, t.Switch, cfg.SwitchBufBytes)
	t.RC.down.OnDrain = t.RC.wakeHost
	t.RC.down.cutThroughHdr = cut
	t.Switch.fromRC = t.RC.down
	t.Switch.up = newConn(name+".sw2rc", eq, cfg.Link, t.RC, cfg.RCBufBytes)
	t.Switch.up.cutThroughHdr = cut

	if cfg.Topology.Flat() {
		for i, ranges := range epRanges {
			ep := newEndpoint(fmt.Sprintf("%s.ep%d", name, i), i, eq, reg, cfg, pool, ranges)
			down := newConn(fmt.Sprintf("%s.sw2ep%d", name, i), eq, cfg.Link, ep, cfg.EPBufBytes)
			down.cutThroughHdr = cut
			ep.up = newConn(fmt.Sprintf("%s.ep%d2sw", name, i), eq, cfg.Link, t.Switch, cfg.SwitchBufBytes)
			ep.up.OnDrain = ep.wakeDev
			ep.up.cutThroughHdr = cut
			t.Switch.downs = append(t.Switch.downs, down)
			t.Switch.epPort[i] = i
			for _, r := range ranges {
				t.Switch.addrMap.Add(r, i)
			}
			t.EPs = append(t.EPs, ep)
		}
		return t
	}

	// 2-level shape: a rank of leaf switches between the root switch
	// and the endpoints. The root's down ports address leaves; each
	// leaf's down ports address its local endpoints. Direction
	// detection is unchanged — a leaf's fromRC is its ingress conn
	// from the root, so root-originated traffic reads as downstream.
	nLeaf := cfg.Topology.LeafCount(len(epRanges))
	for j := 0; j < nLeaf; j++ {
		leaf := newSwitch(fmt.Sprintf("%s.leaf%d", name, j), eq, reg, cfg)
		leaf.epPort = make([]int, len(epRanges))
		down := newConn(fmt.Sprintf("%s.sw2l%d", name, j), eq, cfg.Link, leaf, cfg.SwitchBufBytes)
		down.cutThroughHdr = cut
		leaf.fromRC = down
		leaf.up = newConn(fmt.Sprintf("%s.l%d2sw", name, j), eq, cfg.Link, t.Switch, cfg.SwitchBufBytes)
		leaf.up.cutThroughHdr = cut
		t.Switch.downs = append(t.Switch.downs, down)
		t.Leaves = append(t.Leaves, leaf)
	}
	for i, ranges := range epRanges {
		j := cfg.Topology.LeafOf(i)
		leaf := t.Leaves[j]
		ep := newEndpoint(fmt.Sprintf("%s.ep%d", name, i), i, eq, reg, cfg, pool, ranges)
		down := newConn(fmt.Sprintf("%s.l%d2ep%d", name, j, i), eq, cfg.Link, ep, cfg.EPBufBytes)
		down.cutThroughHdr = cut
		ep.up = newConn(fmt.Sprintf("%s.ep%d2l%d", name, i, j), eq, cfg.Link, leaf, cfg.SwitchBufBytes)
		ep.up.OnDrain = ep.wakeDev
		ep.up.cutThroughHdr = cut
		leaf.downs = append(leaf.downs, down)
		port := len(leaf.downs) - 1
		leaf.epPort[i] = port
		t.Switch.epPort[i] = j
		for _, r := range ranges {
			leaf.addrMap.Add(r, port)
			t.Switch.addrMap.Add(r, j)
		}
		t.EPs = append(t.EPs, ep)
	}
	return t
}

// EP returns endpoint i.
func (t *Tree) EP(i int) *Endpoint { return t.EPs[i] }

// Config returns the tree's resolved configuration.
func (t *Tree) Config() Config { return t.cfg }
