package pcie

import (
	"fmt"

	"accesys/internal/mem"
	"accesys/internal/sim"
	"accesys/internal/stats"
)

// Endpoint is the device-side PCIe bridge inside the accelerator
// wrapper. The device (DMA engine, controller) drives DevPort with
// requests aimed at host memory; host-initiated TLPs (MMIO to CSRs,
// DevMem window accesses) leave through BusPort into the device's
// internal interconnect.
type Endpoint struct {
	name string
	idx  int
	eq   *sim.EventQueue
	cfg  Config

	devPort *mem.ResponsePort // from device internals (DMA)
	busPort *mem.RequestPort  // to device internals (CSRs, DevMem)

	devRespQ *mem.PacketQueue // completions back to the device
	busReqQ  *mem.PacketQueue // unwrapped host requests into the device

	up   *conn // EP -> switch; set at tree construction
	pool *tlpPool

	procFree     sim.Tick
	devNeedRetry bool

	ranges []mem.AddrRange

	tlpsUp   *stats.Counter
	tlpsDown *stats.Counter
	bytesUp  *stats.Counter
}

func newEndpoint(name string, idx int, eq *sim.EventQueue, reg *stats.Registry, cfg Config, pool *tlpPool, ranges []mem.AddrRange) *Endpoint {
	ep := &Endpoint{name: name, idx: idx, eq: eq, cfg: cfg, pool: pool, ranges: ranges}
	ep.devPort = mem.NewResponsePort(name+".dev", ep)
	ep.busPort = mem.NewRequestPort(name+".bus", ep)
	ep.devRespQ = mem.NewPacketQueue(name+".devrespq", eq, func(p *mem.Packet) bool {
		return ep.devPort.SendTimingResp(p)
	})
	ep.busReqQ = mem.NewPacketQueue(name+".busreqq", eq, func(p *mem.Packet) bool {
		return ep.busPort.SendTimingReq(p)
	})
	g := reg.Group(name)
	ep.tlpsUp = g.Counter("tlps_up", "TLPs sent upstream")
	ep.tlpsDown = g.Counter("tlps_down", "TLPs received downstream")
	ep.bytesUp = g.Counter("bytes_up", "TLP bytes sent upstream")
	return ep
}

// DevPort is driven by the device's DMA engine and controller for
// host-bound traffic.
func (ep *Endpoint) DevPort() *mem.ResponsePort { return ep.devPort }

// BusPort drives host-initiated requests into the device internals.
func (ep *Endpoint) BusPort() *mem.RequestPort { return ep.busPort }

// Ranges returns the address windows (BARs, DevMem aperture) this
// endpoint claims on the fabric.
func (ep *Endpoint) Ranges() []mem.AddrRange { return ep.ranges }

func (ep *Endpoint) procDelay() sim.Tick {
	start := ep.eq.Now()
	if ep.procFree > start {
		start = ep.procFree
	}
	ep.procFree = start + ep.cfg.EPProcII
	return start + ep.cfg.EPLatency
}

// RecvTimingReq implements mem.Responder: device-initiated (DMA)
// request toward host memory.
func (ep *Endpoint) RecvTimingReq(port *mem.ResponsePort, pkt *mem.Packet) bool {
	if ep.up.queued() >= ep.cfg.TxQueueDepth {
		ep.devNeedRetry = true
		return false
	}

	t := ep.pool.get(ep.eq)
	switch pkt.Cmd {
	case mem.ReadReq:
		t.Kind, t.Pkt, t.Bytes, t.SrcEP = MemRd, pkt, ep.cfg.TLPHeaderBytes, ep.idx
	case mem.WriteReq:
		clone := cloneWrite(pkt)
		clone.PushState(postedClone{})
		t.Kind, t.Pkt, t.Bytes, t.SrcEP = MemWr, clone, ep.cfg.TLPHeaderBytes+pkt.Size, ep.idx
		pkt.MakeResponse()
		ep.devRespQ.Schedule(pkt, ep.eq.Now()+ep.cfg.EPLatency)
	default:
		panic(fmt.Sprintf("pcie: %s unexpected device command %v", ep.name, pkt.Cmd))
	}

	at := ep.procDelay()
	ep.tlpsUp.Inc()
	ep.bytesUp.Add(uint64(t.Bytes))
	t.stage = stageSend
	t.sendConn = ep.up
	ep.eq.ScheduleEvent(t.ev, at, sim.PriorityDefault)
	return true
}

// deliverTLP implements receiver: downstream traffic from the switch.
func (ep *Endpoint) deliverTLP(from *conn, t *TLP) {
	ep.tlpsDown.Inc()
	at := ep.procDelay()
	t.stage = stageEPUnwrap
	t.dlvEP = ep
	ep.eq.ScheduleEvent(t.ev, at, sim.PriorityDefault)
}

// unwrap hands the TLP's payload to the device side once it has left
// the EP's processing pipeline, and retires the TLP.
func (ep *Endpoint) unwrap(t *TLP) {
	t.dlvFrom.release(t)
	switch t.Kind {
	case Cpl:
		// Completion of a device DMA read.
		ep.devRespQ.Schedule(t.Pkt, ep.eq.Now())
	case MemRd, MemWr:
		// Host-initiated access into the device.
		ep.busReqQ.Schedule(t.Pkt, ep.eq.Now())
	}
	ep.pool.put(t)
}

// RecvTimingResp implements mem.Requestor: the device internals
// answered a host-initiated request; send the completion upstream
// (posted-write responses are dropped).
func (ep *Endpoint) RecvTimingResp(port *mem.RequestPort, pkt *mem.Packet) bool {
	if pkt.Cmd == mem.WriteResp {
		// Writes travelling downstream are posted clones; their marker
		// is still stacked. Discard.
		pkt.PopState()
		pkt.Release()
		return true
	}
	t := ep.pool.get(ep.eq)
	t.Kind, t.Pkt, t.Bytes, t.SrcEP = Cpl, pkt, ep.cfg.TLPHeaderBytes+pkt.Size, ep.idx
	at := ep.procDelay()
	ep.tlpsUp.Inc()
	ep.bytesUp.Add(uint64(t.Bytes))
	t.stage = stageSend
	t.sendConn = ep.up
	ep.eq.ScheduleEvent(t.ev, at, sim.PriorityDefault)
	return true
}

// RecvRetryReq implements mem.Requestor.
func (ep *Endpoint) RecvRetryReq(port *mem.RequestPort) { ep.busReqQ.RetryReceived() }

// RecvRetryResp implements mem.Responder.
func (ep *Endpoint) RecvRetryResp(port *mem.ResponsePort) { ep.devRespQ.RetryReceived() }

func (ep *Endpoint) wakeDev() {
	if !ep.devNeedRetry {
		return
	}
	ep.devNeedRetry = false
	ep.devPort.SendRetryReq()
}

var _ mem.Requestor = (*Endpoint)(nil)
var _ mem.Responder = (*Endpoint)(nil)
var _ receiver = (*Endpoint)(nil)
