// Package pcie models the standard PCIe interconnect that
// Gem5-AcceSys adds to gem5: a Root Complex (RC), a Switch, and
// Endpoints (EPs) joined by links with configurable lane count and
// per-lane rate. Transactions travel as TLPs with header/framing
// overhead, store-and-forward per hop, per-hop processing latency and
// initiation interval, and credit-based receiver buffers — together
// these produce the paper's observed behaviours: bandwidth scaling
// with lanes x rate (Fig. 3) and the convex packet-size curve where
// small packets pay header/processing overhead and large packets stall
// the hop pipeline (Fig. 4).
package pcie

import (
	"fmt"

	"accesys/internal/mem"
	"accesys/internal/sim"
)

// LinkConfig describes one PCIe link (both directions symmetric).
type LinkConfig struct {
	Lanes    int
	LaneGbps float64
	// PropDelay is the flight latency of the wire (default 5 ns).
	PropDelay sim.Tick
}

// EncodingEfficiency returns the line-coding efficiency: 8b/10b for
// gen1/2 rates (<= 5 GT/s), 128b/130b above.
func (l LinkConfig) EncodingEfficiency() float64 {
	if l.LaneGbps <= 5 {
		return 0.8
	}
	return 128.0 / 130.0
}

// RawGBps returns lanes x rate in gigabytes per second before coding.
func (l LinkConfig) RawGBps() float64 {
	return float64(l.Lanes) * l.LaneGbps / 8
}

// EffectiveGBps returns the post-encoding data bandwidth.
func (l LinkConfig) EffectiveGBps() float64 {
	return l.RawGBps() * l.EncodingEfficiency()
}

// SerTime returns the time to serialize n bytes onto the link.
func (l LinkConfig) SerTime(n int) sim.Tick {
	gbps := l.EffectiveGBps()
	if gbps <= 0 {
		panic("pcie: link has zero bandwidth")
	}
	return sim.Tick(float64(n)*1000/gbps + 0.5)
}

// LinkForGBps builds a link totaling the given raw bandwidth out of a
// given lane count (paper configs: 2 GB/s = 4x4Gbps, 8 GB/s = 8x8Gbps,
// 64 GB/s = 16x32Gbps).
func LinkForGBps(gbps float64, lanes int) LinkConfig {
	return LinkConfig{Lanes: lanes, LaneGbps: gbps * 8 / float64(lanes), PropDelay: 5 * sim.Nanosecond}
}

// TLPKind enumerates transaction-layer packet kinds.
type TLPKind uint8

// TLP kinds: memory read request (header only), memory write request
// (posted, carries payload), completion with data.
const (
	MemRd TLPKind = iota
	MemWr
	Cpl
)

// String implements fmt.Stringer.
func (k TLPKind) String() string {
	switch k {
	case MemRd:
		return "MemRd"
	case MemWr:
		return "MemWr"
	default:
		return "Cpl"
	}
}

// TLP is a transaction-layer packet in flight on the fabric.
type TLP struct {
	Kind  TLPKind
	Pkt   *mem.Packet
	Bytes int // wire size: header + payload
	SrcEP int // originating endpoint (upstream traffic)
	DstEP int // destination endpoint (downstream completions)

	onTxDone func() // releases the previous hop's buffer credit
}

// receiver consumes TLPs delivered by a conn.
type receiver interface {
	deliverTLP(c *conn, t *TLP)
}

// conn is one simplex link channel with credit-gated, serialized
// transmission. The receiver's buffer credit is consumed when a TLP
// starts transmitting and must be released by the receiving hop once
// the TLP has fully left it (store-and-forward back-pressure).
type conn struct {
	name string
	eq   *sim.EventQueue
	link LinkConfig
	dst  receiver

	// cutThroughHdr, when nonzero, delivers the TLP to the receiver
	// once that many bytes have serialized (cut-through) instead of
	// after the full TLP (store-and-forward).
	cutThroughHdr int

	capacity int // receiver buffer size in bytes
	credit   int
	claims   map[*TLP]int // credit held per in-flight TLP on this conn

	q      []*TLP
	txBusy bool

	// OnDrain fires after each TLP begins transmission (queue slot
	// freed); admission layers use it to wake refused senders.
	OnDrain func()

	// Stalls counts credit stalls for statistics.
	Stalls uint64
}

func newConn(name string, eq *sim.EventQueue, link LinkConfig, dst receiver, bufBytes int) *conn {
	if link.PropDelay == 0 {
		link.PropDelay = 5 * sim.Nanosecond
	}
	return &conn{name: name, eq: eq, link: link, dst: dst,
		capacity: bufBytes, credit: bufBytes, claims: make(map[*TLP]int)}
}

// send enqueues a TLP for transmission.
func (c *conn) send(t *TLP) {
	c.q = append(c.q, t)
	c.kick()
}

// queued reports TLPs waiting to start transmission.
func (c *conn) queued() int { return len(c.q) }

func (c *conn) kick() {
	if c.txBusy || len(c.q) == 0 {
		return
	}
	t := c.q[0]
	// Oversize TLPs (bigger than the receiver buffer) claim the whole
	// buffer rather than deadlocking.
	need := t.Bytes
	if need > c.capacity {
		need = c.capacity
	}
	if c.credit < need {
		c.Stalls++
		return // resumed by release()
	}
	c.credit -= need
	c.claims[t] = need
	c.q = c.q[1:]
	c.txBusy = true

	ser := c.link.SerTime(t.Bytes)
	// Consume the callback now: with cut-through delivery the next hop
	// may install its own onTxDone before this transmission finishes.
	done := t.onTxDone
	t.onTxDone = nil
	c.eq.ScheduleAfter(func() {
		c.txBusy = false
		if done != nil {
			done()
		}
		if c.OnDrain != nil {
			c.OnDrain()
		}
		c.kick()
	}, ser)
	deliverAt := ser
	if c.cutThroughHdr > 0 && t.Bytes > c.cutThroughHdr {
		deliverAt = c.link.SerTime(c.cutThroughHdr)
	}
	c.eq.ScheduleAfter(func() { c.dst.deliverTLP(c, t) }, deliverAt+c.link.PropDelay)
}

// release returns buffer credit after a TLP fully leaves the receiving
// hop.
func (c *conn) release(t *TLP) {
	claimed, ok := c.claims[t]
	if !ok {
		panic(fmt.Sprintf("pcie: %s releasing unclaimed TLP", c.name))
	}
	delete(c.claims, t)
	c.credit += claimed
	if c.credit > c.capacity {
		panic(fmt.Sprintf("pcie: %s credit overflow (%d > %d)", c.name, c.credit, c.capacity))
	}
	c.kick()
}
