// Package pcie models the standard PCIe interconnect that
// Gem5-AcceSys adds to gem5: a Root Complex (RC), a Switch, and
// Endpoints (EPs) joined by links with configurable lane count and
// per-lane rate. Transactions travel as TLPs with header/framing
// overhead, store-and-forward per hop, per-hop processing latency and
// initiation interval, and credit-based receiver buffers — together
// these produce the paper's observed behaviours: bandwidth scaling
// with lanes x rate (Fig. 3) and the convex packet-size curve where
// small packets pay header/processing overhead and large packets stall
// the hop pipeline (Fig. 4).
package pcie

import (
	"fmt"

	"accesys/internal/mem"
	"accesys/internal/sim"
)

// LinkConfig describes one PCIe link (both directions symmetric).
type LinkConfig struct {
	Lanes    int
	LaneGbps float64
	// PropDelay is the flight latency of the wire (default 5 ns).
	PropDelay sim.Tick
}

// EncodingEfficiency returns the line-coding efficiency: 8b/10b for
// gen1/2 rates (<= 5 GT/s), 128b/130b above.
func (l LinkConfig) EncodingEfficiency() float64 {
	if l.LaneGbps <= 5 {
		return 0.8
	}
	return 128.0 / 130.0
}

// RawGBps returns lanes x rate in gigabytes per second before coding.
func (l LinkConfig) RawGBps() float64 {
	return float64(l.Lanes) * l.LaneGbps / 8
}

// EffectiveGBps returns the post-encoding data bandwidth.
func (l LinkConfig) EffectiveGBps() float64 {
	return l.RawGBps() * l.EncodingEfficiency()
}

// SerTime returns the time to serialize n bytes onto the link.
func (l LinkConfig) SerTime(n int) sim.Tick {
	gbps := l.EffectiveGBps()
	if gbps <= 0 {
		panic("pcie: link has zero bandwidth")
	}
	return sim.Tick(float64(n)*1000/gbps + 0.5)
}

// LinkForGBps builds a link totaling the given raw bandwidth out of a
// given lane count (paper configs: 2 GB/s = 4x4Gbps, 8 GB/s = 8x8Gbps,
// 64 GB/s = 16x32Gbps).
func LinkForGBps(gbps float64, lanes int) LinkConfig {
	return LinkConfig{Lanes: lanes, LaneGbps: gbps * 8 / float64(lanes), PropDelay: 5 * sim.Nanosecond}
}

// TLPKind enumerates transaction-layer packet kinds.
type TLPKind uint8

// TLP kinds: memory read request (header only), memory write request
// (posted, carries payload), completion with data.
const (
	MemRd TLPKind = iota
	MemWr
	Cpl
)

// String implements fmt.Stringer.
func (k TLPKind) String() string {
	switch k {
	case MemRd:
		return "MemRd"
	case MemWr:
		return "MemWr"
	default:
		return "Cpl"
	}
}

// TLP is a transaction-layer packet in flight on the fabric.
type TLP struct {
	Kind  TLPKind
	Pkt   *mem.Packet
	Bytes int // wire size: header + payload
	SrcEP int // originating endpoint (upstream traffic)
	DstEP int // destination endpoint (downstream completions)

	// ev is the TLP's reusable step event: it drives every scheduled
	// hop of the journey (send after bridge processing, forward at the
	// switch, delivery at the end of a link, unwrap at the far
	// bridge). The stages of one TLP never overlap in the event queue,
	// so a single event suffices — and because each stage is scheduled
	// by exactly one ScheduleEvent call where a closure Schedule used
	// to be, the (tick, priority, seq) dispatch order is unchanged.
	ev    *sim.Event
	stage tlpStage

	sendConn *conn        // stageSend: egress after bridge processing
	fwd      *Switch      // stageForward: forwarding switch
	fwdFrom  *conn        // ingress credit to release once egress tx completes
	fwdUp    bool         // stageForward direction
	dlvFrom  *conn        // conn that delivered (stageDeliver and unwrap)
	dlvEP    *Endpoint    // stageEPUnwrap target
	dlvRC    *RootComplex // stageRCUnwrap target

	// releaseConn is the pending previous-hop credit release, consumed
	// when the TLP starts transmitting on the next conn (replaces the
	// old per-TLP onTxDone closure).
	releaseConn *conn

	// Credit claims held on conns. A TLP traverses at most three links
	// per direction (RC-root, root-leaf, leaf-EP in a 2-level tree),
	// and under cut-through every hop of the journey can hold its claim
	// concurrently; four slots cover that worst case with headroom.
	claimConn [4]*conn
	claimN    [4]int

	// retired marks a TLP whose journey ended while a hop still held a
	// credit claim on it (possible under cut-through, where delivery
	// can precede the egress txDone); the final release recycles it.
	retired bool
	pool    *tlpPool
}

// tlpStage selects what the TLP's step event does when it fires.
type tlpStage uint8

const (
	stageIdle tlpStage = iota
	stageSend
	stageForward
	stageDeliver
	stageEPUnwrap
	stageRCUnwrap
)

// step dispatches the TLP's current pipeline stage.
func (t *TLP) step() {
	switch t.stage {
	case stageSend:
		c := t.sendConn
		t.sendConn = nil
		c.send(t)
	case stageForward:
		s := t.fwd
		out := s.route(t, t.fwdUp)
		t.releaseConn = t.fwdFrom
		t.fwd, t.fwdFrom = nil, nil
		out.send(t)
	case stageDeliver:
		c := t.dlvFrom
		c.dst.deliverTLP(c, t)
	case stageEPUnwrap:
		t.dlvEP.unwrap(t)
	case stageRCUnwrap:
		t.dlvRC.unwrap(t)
	default:
		panic("pcie: TLP stepped while idle")
	}
}

// claim records credit held on c.
func (t *TLP) claim(c *conn, n int) {
	for i := range t.claimConn {
		if t.claimConn[i] == nil {
			t.claimConn[i] = c
			t.claimN[i] = n
			return
		}
	}
	panic(fmt.Sprintf("pcie: TLP holds too many credit claims (%s)", c.name))
}

// unclaim removes and returns the credit held on c.
func (t *TLP) unclaim(c *conn) int {
	for i := range t.claimConn {
		if t.claimConn[i] == c {
			n := t.claimN[i]
			t.claimConn[i] = nil
			t.claimN[i] = 0
			return n
		}
	}
	panic(fmt.Sprintf("pcie: %s releasing unclaimed TLP", c.name))
}

// idle reports whether no hop holds a credit claim on t.
func (t *TLP) idle() bool {
	for i := range t.claimConn {
		if t.claimConn[i] != nil {
			return false
		}
	}
	return true
}

// tlpPool recycles TLPs (and their bound step events) within one
// fabric. It is single-threaded like the event queue it schedules on;
// pooling per tree keeps each TLP's event on its own queue.
type tlpPool struct{ free []*TLP }

// get leases a zeroed TLP whose step event is bound to eq.
func (p *tlpPool) get(eq *sim.EventQueue) *TLP {
	if n := len(p.free); n > 0 {
		t := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		return t
	}
	t := &TLP{pool: p}
	t.ev = eq.NewEvent("pcie.tlp", t.step)
	return t
}

// put recycles a TLP whose journey ended. If a hop still holds a
// credit claim (cut-through can deliver before the egress txDone),
// recycling is deferred to the last release.
func (p *tlpPool) put(t *TLP) {
	if !t.idle() {
		t.retired = true
		return
	}
	ev := t.ev
	*t = TLP{ev: ev, pool: p}
	p.free = append(p.free, t)
}

// receiver consumes TLPs delivered by a conn.
type receiver interface {
	deliverTLP(c *conn, t *TLP)
}

// conn is one simplex link channel with credit-gated, serialized
// transmission. The receiver's buffer credit is consumed when a TLP
// starts transmitting and must be released by the receiving hop once
// the TLP has fully left it (store-and-forward back-pressure).
type conn struct {
	name string
	eq   *sim.EventQueue
	link LinkConfig
	dst  receiver

	// cutThroughHdr, when nonzero, delivers the TLP to the receiver
	// once that many bytes have serialized (cut-through) instead of
	// after the full TLP (store-and-forward).
	cutThroughHdr int

	capacity int // receiver buffer size in bytes
	credit   int

	// q[qh:] is the transmission queue; popping advances qh so the
	// backing array's capacity is reused.
	q  []*TLP
	qh int

	txBusy bool
	// Transmission-completion state for the single in-flight tx: the
	// persistent txDone event fires once per transmission, releasing
	// the previous hop's claim (txRel) for the TLP that just left
	// (txTLP).
	txDoneEv *sim.Event
	txRel    *conn
	txTLP    *TLP

	// OnDrain fires after each TLP begins transmission (queue slot
	// freed); admission layers use it to wake refused senders.
	OnDrain func()

	// Stalls counts credit stalls for statistics.
	Stalls uint64
}

func newConn(name string, eq *sim.EventQueue, link LinkConfig, dst receiver, bufBytes int) *conn {
	if link.PropDelay == 0 {
		link.PropDelay = 5 * sim.Nanosecond
	}
	c := &conn{name: name, eq: eq, link: link, dst: dst,
		capacity: bufBytes, credit: bufBytes}
	c.txDoneEv = eq.NewEvent(name+".txdone", c.txDone)
	return c
}

// send enqueues a TLP for transmission.
func (c *conn) send(t *TLP) {
	c.q = append(c.q, t)
	c.kick()
}

// queued reports TLPs waiting to start transmission.
func (c *conn) queued() int { return len(c.q) - c.qh }

func (c *conn) kick() {
	if c.txBusy || c.qh == len(c.q) {
		return
	}
	t := c.q[c.qh]
	// Oversize TLPs (bigger than the receiver buffer) claim the whole
	// buffer rather than deadlocking.
	need := t.Bytes
	if need > c.capacity {
		need = c.capacity
	}
	if c.credit < need {
		c.Stalls++
		return // resumed by release()
	}
	c.credit -= need
	t.claim(c, need)
	c.q[c.qh] = nil
	c.qh++
	if c.qh == len(c.q) {
		c.q = c.q[:0]
		c.qh = 0
	} else if c.qh >= 32 && c.qh*2 >= len(c.q) {
		n := copy(c.q, c.q[c.qh:])
		clear(c.q[n:])
		c.q = c.q[:n]
		c.qh = 0
	}
	c.txBusy = true

	ser := c.link.SerTime(t.Bytes)
	// Consume the pending release now: with cut-through delivery the
	// next hop may install its own before this transmission finishes.
	c.txRel = t.releaseConn
	c.txTLP = t
	t.releaseConn = nil
	c.eq.ScheduleEvent(c.txDoneEv, c.eq.Now()+ser, sim.PriorityDefault)
	deliverAt := ser
	if c.cutThroughHdr > 0 && t.Bytes > c.cutThroughHdr {
		deliverAt = c.link.SerTime(c.cutThroughHdr)
	}
	t.stage = stageDeliver
	t.dlvFrom = c
	c.eq.ScheduleEvent(t.ev, c.eq.Now()+deliverAt+c.link.PropDelay, sim.PriorityDefault)
}

// txDone completes the in-flight transmission: the line is free for
// the next TLP and the previous hop's buffer credit can be returned.
func (c *conn) txDone() {
	c.txBusy = false
	rel, t := c.txRel, c.txTLP
	c.txRel, c.txTLP = nil, nil
	if rel != nil {
		rel.release(t)
	}
	if c.OnDrain != nil {
		c.OnDrain()
	}
	c.kick()
}

// release returns buffer credit after a TLP fully leaves the receiving
// hop.
func (c *conn) release(t *TLP) {
	c.credit += t.unclaim(c)
	if c.credit > c.capacity {
		panic(fmt.Sprintf("pcie: %s credit overflow (%d > %d)", c.name, c.credit, c.capacity))
	}
	if t.retired && t.idle() {
		t.pool.put(t)
	}
	c.kick()
}
