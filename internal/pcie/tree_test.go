package pcie

// Topology shapes: leaf math, 2-level routing in both directions, the
// latency cost of the extra hop, and construction-time validation.

import (
	"bytes"
	"testing"

	"accesys/internal/mem"
	"accesys/internal/memtest"
	"accesys/internal/sim"
	"accesys/internal/stats"
)

func TestTopologyValidate(t *testing.T) {
	for _, c := range []struct {
		top Topology
		ok  bool
	}{
		{Topology{}, true},
		{Topology{Levels: 1}, true},
		{Topology{Levels: 2, Fanout: 1}, true},
		{Topology{Levels: 2, Fanout: 4}, true},
		{Topology{Levels: 2}, false},
		{Topology{Levels: 3, Fanout: 2}, false},
		{Topology{Levels: -1}, false},
		{Topology{Fanout: 2}, false},
	} {
		if err := c.top.Validate(); (err == nil) != c.ok {
			t.Errorf("Validate(%+v) = %v, want ok=%v", c.top, err, c.ok)
		}
	}
}

func TestTopologyLeafMath(t *testing.T) {
	flat := Topology{}
	if flat.LeafCount(5) != 5 || flat.LeafOf(3) != 3 {
		t.Fatal("flat topology must map endpoints 1:1")
	}
	tree := Topology{Levels: 2, Fanout: 2}
	if got := tree.LeafCount(5); got != 3 {
		t.Fatalf("LeafCount(5) fanout 2 = %d, want 3", got)
	}
	for i, want := range []int{0, 0, 1, 1, 2} {
		if got := tree.LeafOf(i); got != want {
			t.Fatalf("LeafOf(%d) = %d, want %d", i, got, want)
		}
	}
}

// twoLevelFabric builds a 4-EP tree under fanout-2 leaves with echo
// devices behind every BAR and a host memory behind the RC.
func twoLevelFabric(t *testing.T) (*sim.EventQueue, *Tree, []*memtest.EchoResponder, *memtest.EchoResponder) {
	t.Helper()
	eq := sim.NewEventQueue()
	reg := stats.NewRegistry()
	cfg := defLink()
	cfg.Topology = Topology{Levels: 2, Fanout: 2}
	bars := make([][]mem.AddrRange, 4)
	for i := range bars {
		bars[i] = []mem.AddrRange{mem.Range(uint64(0x1000_0000*(i+1)), 1<<16)}
	}
	tree := NewTree("pcie", eq, reg, cfg, bars...)
	if len(tree.Leaves) != 2 {
		t.Fatalf("leaves = %d, want 2", len(tree.Leaves))
	}
	devs := make([]*memtest.EchoResponder, 4)
	for i := range devs {
		devs[i] = memtest.NewEchoResponder(eq, bars[i][0].Start, bars[i][0].Size(), 10*sim.Nanosecond)
		mem.Bind(tree.EP(i).BusPort(), devs[i].Port)
	}
	hostMem := memtest.NewEchoResponder(eq, 0, 1<<20, 30*sim.Nanosecond)
	mem.Bind(tree.RC.UpstreamPort(), hostMem.Port)
	return eq, tree, devs, hostMem
}

func TestTwoLevelTreeRoutesBothDirections(t *testing.T) {
	eq, tree, devs, hostMem := twoLevelFabric(t)
	host := memtest.NewRequestor(eq)
	mem.Bind(host.Port, tree.RC.HostPort())

	// Downstream: a write to each EP's BAR must land on that EP only.
	for i := range devs {
		host.Send(mem.NewWrite(uint64(0x1000_0000*(i+1))+4, []byte{byte(i + 1)}))
	}
	eq.Run()
	for i, dev := range devs {
		b := make([]byte, 1)
		dev.Store.Read(4, b)
		if b[0] != byte(i+1) {
			t.Fatalf("dev%d got %d, want %d", i, b[0], i+1)
		}
	}

	// Upstream: concurrent DMA reads from all four EPs; each completion
	// must route back through the right leaf to its issuer.
	dmas := make([]*memtest.Requestor, 4)
	reads := make([]*mem.Packet, 4)
	for i := range dmas {
		dmas[i] = memtest.NewRequestor(eq)
		mem.Bind(dmas[i].Port, tree.EP(i).DevPort())
		hostMem.Store.Write(uint64(0x100*(i+1)), []byte{0xe0 + byte(i)})
		reads[i] = mem.NewRead(uint64(0x100*(i+1)), 1)
		dmas[i].Send(reads[i])
	}
	eq.Run()
	for i := range dmas {
		if len(dmas[i].Done) != 1 {
			t.Fatalf("EP%d completion lost", i)
		}
		if !bytes.Equal(reads[i].Data, []byte{0xe0 + byte(i)}) {
			t.Fatalf("EP%d completion misrouted: %v", i, reads[i].Data)
		}
	}
}

func TestTwoLevelStreamingStaysCorrect(t *testing.T) {
	// A long DMA stream through leaf switches: every request completes
	// and throughput still approaches the (shared) root link.
	eq, tree, _, hostMem := twoLevelFabric(t)
	_ = hostMem
	dma := memtest.NewRequestor(eq)
	mem.Bind(dma.Port, tree.EP(3).DevPort())
	const n = 512
	for i := 0; i < n; i++ {
		dma.Send(mem.NewRead(uint64(i*256)%(1<<20), 256))
	}
	eq.Run()
	if len(dma.Done) != n {
		t.Fatalf("completed %d of %d through the leaf", len(dma.Done), n)
	}
}

func TestTwoLevelAddsHopLatency(t *testing.T) {
	lat := func(top Topology) sim.Tick {
		eq := sim.NewEventQueue()
		reg := stats.NewRegistry()
		cfg := defLink()
		cfg.Topology = top
		tree := NewTree("pcie", eq, reg, cfg, []mem.AddrRange{mem.Range(barBase, barSize)})
		dma := memtest.NewRequestor(eq)
		mem.Bind(dma.Port, tree.EP(0).DevPort())
		hostMem := memtest.NewEchoResponder(eq, hostMemBase, hostMemSize, 50*sim.Nanosecond)
		mem.Bind(tree.RC.UpstreamPort(), hostMem.Port)
		dma.Send(mem.NewRead(0x1000, 256))
		eq.Run()
		return dma.DoneAt[0]
	}
	flat := lat(Topology{})
	deep := lat(Topology{Levels: 2, Fanout: 1})
	if deep <= flat {
		t.Fatalf("leaf hop added no latency: flat %v, 2-level %v", flat, deep)
	}
}

func TestBadTopologyPanics(t *testing.T) {
	eq := sim.NewEventQueue()
	reg := stats.NewRegistry()
	cfg := defLink()
	cfg.Topology = Topology{Levels: 2} // fanout missing
	defer func() {
		if recover() == nil {
			t.Fatal("invalid topology should panic at construction")
		}
	}()
	NewTree("pcie", eq, reg, cfg, []mem.AddrRange{mem.Range(0, 4096)})
}
