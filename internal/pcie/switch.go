package pcie

import (
	"fmt"

	"accesys/internal/mem"
	"accesys/internal/sim"
	"accesys/internal/stats"
)

// Switch routes TLPs between the root complex and the endpoints. It is
// store-and-forward: a TLP is processed (fixed latency + initiation
// interval) only after full reception, and the ingress buffer credit is
// held until the TLP has completely left on the egress link.
type Switch struct {
	name string
	eq   *sim.EventQueue
	cfg  Config

	// Egress conns, set during tree construction.
	up    *conn   // switch -> RC
	downs []*conn // switch -> EP[i]
	// fromRC identifies the ingress conn carrying RC -> switch traffic
	// so direction can be told apart.
	fromRC *conn

	addrMap mem.AddrMap // downstream request routing by address
	// epPort maps a global endpoint index to the local down-port that
	// reaches it (identity on a flat switch; the leaf port on a 2-level
	// root; the attachment port on a leaf) — completion routing uses it
	// because completions carry endpoint indexes, not addresses.
	epPort []int

	upProcFree   sim.Tick
	downProcFree sim.Tick

	forwarded *stats.Counter
	bytes     *stats.Counter
}

func newSwitch(name string, eq *sim.EventQueue, reg *stats.Registry, cfg Config) *Switch {
	s := &Switch{name: name, eq: eq, cfg: cfg}
	g := reg.Group(name)
	s.forwarded = g.Counter("tlps", "TLPs forwarded")
	s.bytes = g.Counter("bytes", "TLP bytes forwarded")
	return s
}

// deliverTLP implements receiver: a fully received TLP enters the
// processing pipeline and is forwarded after SwitchLatency; the
// pipeline accepts one TLP per SwitchProcII per direction.
func (s *Switch) deliverTLP(from *conn, t *TLP) {
	now := s.eq.Now()
	upstream := from != s.fromRC

	procFree := &s.downProcFree
	if upstream {
		procFree = &s.upProcFree
	}
	start := now
	if *procFree > start {
		start = *procFree
	}
	*procFree = start + s.cfg.SwitchProcII

	s.forwarded.Inc()
	s.bytes.Add(uint64(t.Bytes))

	t.stage = stageForward
	t.fwd = s
	t.fwdFrom = from
	t.fwdUp = upstream
	s.eq.ScheduleEvent(t.ev, start+s.cfg.SwitchLatency, sim.PriorityDefault)
}

func (s *Switch) route(t *TLP, upstream bool) *conn {
	if upstream {
		return s.up
	}
	if t.Kind == Cpl {
		return s.downs[s.epPort[t.DstEP]]
	}
	target, ok := s.addrMap.Find(t.Pkt.Addr)
	if !ok {
		panic(fmt.Sprintf("pcie: %s: no endpoint claims %v", s.name, t.Pkt))
	}
	return s.downs[target]
}

var _ receiver = (*Switch)(nil)
