package explore

// The audit trail: every candidate a search touched, at which
// fidelity, with what objective, and whether it advanced — plus the
// ranked frontier rendered through the shared table type. The trace
// is what makes a search auditable (did the screen actually prune?)
// and resumable (a re-run against the same cache warm-hits every
// promotion the trace lists).

import (
	"encoding/json"
	"fmt"
	"strconv"

	"accesys/internal/scenario"
)

// Eval is one candidate evaluation inside a generation.
type Eval struct {
	// Index is the candidate's position in the scenario's stable
	// point enumeration (Space/PointsFor order).
	Index int `json:"index"`
	// Key is the resolved run key (encodes the axis labels).
	Key string `json:"key"`
	// Digest identifies the point's raw fingerprint — the same
	// identity shard plans and wall profiles use.
	Digest string `json:"digest"`
	// ObjectiveNs is the objective at this generation's fidelity.
	ObjectiveNs float64 `json:"objective_ns"`
	// Promoted reports whether the candidate advanced past this
	// fidelity (for timing rungs: whether it was admitted at all).
	Promoted bool `json:"promoted"`
	// Cold reports a real simulation (not a cache hit or a shared
	// in-flight result) — timing fidelities only.
	Cold bool `json:"cold,omitempty"`
}

// Generation is one rung of evaluations at a single fidelity, evals
// in ascending point-index order.
type Generation struct {
	Gen      int     `json:"gen"`
	Fidelity string  `json:"fidelity"`
	Evals    []*Eval `json:"evals"`
}

// BestPoint is the frontier's top entry.
type BestPoint struct {
	Index       int     `json:"index"`
	Key         string  `json:"key"`
	ObjectiveNs float64 `json:"objective_ns"`
}

// Summary aggregates the search for quick auditing.
type Summary struct {
	// Screened counts analytic evaluations (free).
	Screened int `json:"screened"`
	// Promoted counts timing evaluations (proxy and exact), warm or
	// cold; only the exact ones charge the budget.
	Promoted int `json:"promoted"`
	// ColdTiming / WarmTiming split promotions by cache state — the
	// pruning proof: cold is what the search actually paid.
	ColdTiming int `json:"cold_timing"`
	WarmTiming int `json:"warm_timing"`
	// AxisInfeasible counts points excluded by axis constraints
	// before any evaluation.
	AxisInfeasible int `json:"axis_infeasible"`
	// BudgetPoints / BudgetWallNs are the charges the budget
	// accepted (wall is predicted, so it varies with profile warmth).
	BudgetPoints int        `json:"budget_spent_points"`
	BudgetWallNs int64      `json:"budget_spent_predicted_wall_ns"`
	Best         *BestPoint `json:"best,omitempty"`
}

// Trace is the full machine-readable record of one search.
type Trace struct {
	Scenario    string        `json:"scenario"`
	Strategy    string        `json:"strategy"`
	Seed        int64         `json:"seed"`
	Budget      string        `json:"budget"`
	Objective   string        `json:"objective"`
	Full        bool          `json:"full"`
	SpaceSize   int           `json:"space_size"`
	Generations []*Generation `json:"generations"`
	Summary     Summary       `json:"summary"`
}

// Marshal renders the trace as indented JSON with a trailing newline,
// byte-deterministic for a given search state.
func (t *Trace) Marshal() ([]byte, error) {
	b, err := json.MarshalIndent(t, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// recordGen appends one generation to the trace. Timing-fidelity
// evals are by definition promoted (they were admitted past the
// budget) and carry their cache state.
func (s *Search) recordGen(fidelity string, cands []*cand) {
	g := &Generation{Gen: len(s.trace.Generations), Fidelity: fidelity}
	for _, c := range cands {
		e := &Eval{
			Index:       c.index,
			Key:         c.point.Key,
			Digest:      c.digest,
			ObjectiveNs: c.obj,
		}
		if fidelity != FidelityAnalytic {
			e.Promoted = true
			e.Cold = c.cold
		}
		c.eval = e
		g.Evals = append(g.Evals, e)
	}
	s.trace.Generations = append(s.trace.Generations, g)
}

// finish filters the exact-timing evaluations through the metric
// constraints, ranks the survivors, and assembles the frontier table
// plus the trace summary.
func (s *Search) finish() (*Report, error) {
	feasible := make([]*cand, 0, len(s.exact))
	for _, c := range s.exact {
		if s.metricFeasible(c.out) {
			feasible = append(feasible, c)
		}
	}
	ranked := s.Rank(feasible)
	if len(ranked) > s.frontier {
		ranked = ranked[:s.frontier]
	}

	sum := &s.trace.Summary
	for _, g := range s.trace.Generations {
		for _, e := range g.Evals {
			if g.Fidelity == FidelityAnalytic {
				sum.Screened++
				continue
			}
			sum.Promoted++
			if e.Cold {
				sum.ColdTiming++
			} else {
				sum.WarmTiming++
			}
		}
	}
	sum.AxisInfeasible = s.infeasible
	pts, wall := s.budget.Spent()
	sum.BudgetPoints = pts
	sum.BudgetWallNs = wall.Nanoseconds()
	if len(ranked) > 0 {
		b := ranked[0]
		sum.Best = &BestPoint{Index: b.index, Key: b.point.Key, ObjectiveNs: b.obj}
	}

	res := &scenario.Result{
		ID:      s.sc.Name + "-explore",
		Title:   fmt.Sprintf("search frontier (%s)", s.objectiveLabel()),
		Headers: []string{"#", "point", s.metric},
	}
	for rank, c := range ranked {
		res.AddRow(strconv.Itoa(rank+1), c.point.Key, formatNs(c.obj))
	}
	res.Note("strategy %s, seed %d, budget %s", s.trace.Strategy, s.spec.Seed, s.budget)
	res.Note("screened %d of %d points analytically; promoted %d to timing; %d excluded by constraints",
		sum.Screened, s.sp.Size(), sum.Promoted, sum.AxisInfeasible)
	return &Report{Frontier: res, Trace: s.trace}, nil
}

// formatNs renders an objective (nanoseconds) as milliseconds, the
// same precision the figure tables use.
func formatNs(ns float64) string {
	return fmt.Sprintf("%.3fms", ns/1e6)
}
