package explore

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"accesys/internal/scenario"
	"accesys/internal/sim"
	"accesys/internal/sweep"
)

// miniScenario is a six-point GEMM matrix (2 lane counts x 3 packet
// sizes at n=64) small enough to simulate in milliseconds, carrying an
// explore stanza the tests mutate per case.
func miniScenario() *scenario.Scenario {
	return &scenario.Scenario{
		Name:     "explore-mini",
		Base:     "pcie8gb",
		Workload: scenario.Workload{Kind: "gemm", N: scenario.Size{Quick: 64, Full: 64}},
		Axes: []scenario.Axis{
			{Name: "lanes", Values: []scenario.Value{4.0, 8.0}},
			{Name: "packet_bytes", Values: []scenario.Value{64.0, 128.0, 256.0}},
		},
		Explore: &scenario.ExploreSpec{
			Objective: scenario.Objective{Metric: "exec", Goal: "min"},
			Seed:      11,
			Budget:    "2",
		},
	}
}

func openCache(t *testing.T) *sweep.Cache {
	t.Helper()
	c, err := sweep.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// Satellite: the determinism contract. Two searches with the same
// (manifest, seed, budget) from identical cache states must produce
// byte-identical traces and identical frontiers.
func TestExploreDeterministicAcrossFreshCaches(t *testing.T) {
	var reps [2]*Report
	for i := range reps {
		rep, err := Run(miniScenario(), scenario.Options{Jobs: 2, Cache: openCache(t)}, Params{})
		if err != nil {
			t.Fatal(err)
		}
		reps[i] = rep
	}
	b0, err := reps[0].Trace.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	b1, err := reps[1].Trace.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b0, b1) {
		t.Fatalf("traces diverge across fresh caches:\n%s\nvs\n%s", b0, b1)
	}
	if !reflect.DeepEqual(reps[0].Frontier, reps[1].Frontier) {
		t.Fatalf("frontiers diverge:\n%+v\nvs\n%+v", reps[0].Frontier, reps[1].Frontier)
	}
}

// A different seed must actually change the search (otherwise the RNG
// is not threaded through sampling).
func TestExploreSeedChangesSampling(t *testing.T) {
	run := func(seed int64) *Report {
		sc := miniScenario()
		// Generations smaller than the space, so the sampled subset —
		// not just the rank order — decides what gets promoted.
		sc.Explore.Generation = 2
		rep, err := Run(sc, scenario.Options{Jobs: 2}, Params{Seed: &seed, Budget: "1"})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	keys := func(rep *Report) []string {
		var out []string
		for _, g := range rep.Trace.Generations {
			for _, e := range g.Evals {
				if e.Promoted {
					out = append(out, e.Key)
				}
			}
		}
		return out
	}
	base := keys(run(1))
	for seed := int64(2); seed < 32; seed++ {
		if !reflect.DeepEqual(keys(run(seed)), base) {
			return
		}
	}
	t.Fatal("30 different seeds promoted identical points; the RNG is not driving sampling")
}

// Satellite: a warm re-run over the first run's cache must promote the
// same points, cold-simulate none of them, and report an identical
// frontier — the budget charges admissions, not simulations.
func TestExploreWarmRerunZeroCold(t *testing.T) {
	cache := openCache(t)
	opt := scenario.Options{Jobs: 2, Cache: cache}
	first, err := Run(miniScenario(), opt, Params{})
	if err != nil {
		t.Fatal(err)
	}
	if first.Trace.Summary.ColdTiming == 0 {
		t.Fatal("fresh-cache run reported zero cold simulations")
	}
	second, err := Run(miniScenario(), opt, Params{})
	if err != nil {
		t.Fatal(err)
	}
	if got := second.Trace.Summary.ColdTiming; got != 0 {
		t.Fatalf("warm re-run cold-simulated %d points, want 0", got)
	}
	if second.Trace.Summary.WarmTiming != first.Trace.Summary.Promoted {
		t.Fatalf("warm re-run promoted %d warm, first run promoted %d",
			second.Trace.Summary.WarmTiming, first.Trace.Summary.Promoted)
	}
	if !reflect.DeepEqual(first.Frontier, second.Frontier) {
		t.Fatalf("warm frontier diverges:\n%+v\nvs\n%+v", first.Frontier, second.Frontier)
	}
}

func TestExplorePointBudgetRespected(t *testing.T) {
	rep, err := Run(miniScenario(), scenario.Options{Jobs: 2}, Params{Budget: "2"})
	if err != nil {
		t.Fatal(err)
	}
	sum := rep.Trace.Summary
	if sum.Promoted != 2 || sum.BudgetPoints != 2 {
		t.Fatalf("budget 2 spent %d points on %d promotions", sum.BudgetPoints, sum.Promoted)
	}
	if sum.Screened == 0 {
		t.Fatal("no analytic screening recorded")
	}
}

// An ample point budget on the random strategy drains the space: every
// point gets screened exactly once, then sampling returns empty.
func TestExploreRandomDrainsSpace(t *testing.T) {
	rep, err := Run(miniScenario(), scenario.Options{Jobs: 2}, Params{Strategy: "random", Budget: "100"})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Trace.Summary.Screened != rep.Trace.SpaceSize {
		t.Fatalf("screened %d of %d points before draining", rep.Trace.Summary.Screened, rep.Trace.SpaceSize)
	}
}

// Promoting every point (promote=1, budget=space) makes the frontier's
// rank 1 the true exhaustive argmin — pinned against a reference sweep.
func TestExploreFullPromotionFindsArgmin(t *testing.T) {
	sc := miniScenario()
	sc.Explore.Promote = 1.0
	opt := scenario.Options{Jobs: 2}

	points, err := sc.PointsFor(false)
	if err != nil {
		t.Fatal(err)
	}
	outs := opt.Sweep("ref", points)
	bestKey, bestDur := "", sim.Tick(0)
	for i, o := range outs {
		if bestKey == "" || o.Dur < bestDur {
			bestKey, bestDur = points[i].Key, o.Dur
		}
	}

	rep, err := Run(sc, opt, Params{Strategy: "random", Budget: "6"})
	if err != nil {
		t.Fatal(err)
	}
	best := rep.Trace.Summary.Best
	if best == nil || best.Key != bestKey {
		t.Fatalf("search best = %+v, exhaustive argmin = %s (%v)", best, bestKey, bestDur)
	}
	if bestDur.Nanoseconds() != best.ObjectiveNs {
		t.Fatalf("best objective %v ns, reference %v", best.ObjectiveNs, bestDur)
	}
}

func TestExploreHalvingLadder(t *testing.T) {
	rep, err := Run(miniScenario(), scenario.Options{Jobs: 2}, Params{Strategy: "halving", Budget: "2"})
	if err != nil {
		t.Fatal(err)
	}
	var fids []string
	for _, g := range rep.Trace.Generations {
		fids = append(fids, g.Fidelity)
	}
	if !reflect.DeepEqual(fids, []string{FidelityAnalytic, FidelityTiming}) {
		t.Fatalf("halving fidelity ladder = %v", fids)
	}
	if rep.Trace.Summary.Best == nil {
		t.Fatal("halving found no best point")
	}
}

// Axis constraints must exclude candidates before any evaluation: no
// excluded point may appear in the trace at any fidelity.
func TestExploreAxisConstraintExcludes(t *testing.T) {
	sc := miniScenario()
	max := 128.0
	sc.Explore.Constraints = []scenario.Constraint{{Axis: "packet_bytes", Max: &max}}
	rep, err := Run(sc, scenario.Options{Jobs: 2}, Params{Strategy: "random", Budget: "100"})
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Trace.Summary.AxisInfeasible; got != 2 {
		t.Fatalf("axis-infeasible count %d, want 2 (both lane counts at 256B)", got)
	}
	sp, err := sc.Space(false)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range rep.Trace.Generations {
		for _, e := range g.Evals {
			r, err := sp.RunAt(e.Index)
			if err != nil {
				t.Fatal(err)
			}
			if r.Label("packet_bytes") == "256" {
				t.Fatalf("constrained point %s evaluated at fidelity %s", e.Key, g.Fidelity)
			}
		}
	}
	if rep.Trace.Summary.Screened != 4 {
		t.Fatalf("screened %d points, want the 4 feasible ones", rep.Trace.Summary.Screened)
	}
}

// Metric constraints filter the frontier after exact timing: an
// unsatisfiable bound empties it without suppressing the search.
func TestExploreMetricConstraintFiltersFrontier(t *testing.T) {
	sc := miniScenario()
	max := 1.0 // 1ns: no simulation finishes that fast
	sc.Explore.Constraints = []scenario.Constraint{{Metric: "exec", Max: &max}}
	rep, err := Run(sc, scenario.Options{Jobs: 2}, Params{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Trace.Summary.Promoted == 0 {
		t.Fatal("metric constraint suppressed the search itself")
	}
	if len(rep.Frontier.Rows) != 0 || rep.Trace.Summary.Best != nil {
		t.Fatalf("unsatisfiable metric bound left %d frontier rows, best %+v",
			len(rep.Frontier.Rows), rep.Trace.Summary.Best)
	}
}

// The proxy rung runs partitioned short-quantum builds whose
// fingerprints differ from the exact rung's, so proxy results can
// never alias exact cache entries.
func TestExploreProxyRungDistinctDigests(t *testing.T) {
	sc := miniScenario()
	sc.Explore.Strategy = "halving"
	sc.Explore.Proxy = &scenario.ProxySpec{Domains: 2}
	rep, err := Run(sc, scenario.Options{Jobs: 2}, Params{Budget: "4"})
	if err != nil {
		t.Fatal(err)
	}
	proxy := map[int]string{}
	var sawProxy, sawTiming bool
	for _, g := range rep.Trace.Generations {
		switch g.Fidelity {
		case FidelityProxy:
			sawProxy = true
			for _, e := range g.Evals {
				proxy[e.Index] = e.Digest
			}
		case FidelityTiming:
			sawTiming = true
			for _, e := range g.Evals {
				if d, ok := proxy[e.Index]; ok && d == e.Digest {
					t.Fatalf("point %s: proxy and exact rungs share digest %s", e.Key, d)
				}
			}
		}
	}
	if !sawProxy || !sawTiming {
		t.Fatalf("ladder missing a rung: proxy=%v timing=%v", sawProxy, sawTiming)
	}
}

// Regression: the proxy rung must not spend the exact-timing budget.
// On any space larger than budget*eta the halving ladder's screened
// survivor set exceeds the point budget; charging the proxy rung used
// to exhaust the whole allowance there and admit nothing to the final
// rung — empty frontier, nil Best.
func TestExploreHalvingProxyLargeSpaceReachesExactRung(t *testing.T) {
	sc := miniScenario()
	sc.Axes = []scenario.Axis{
		{Name: "lanes", Values: []scenario.Value{2.0, 4.0, 8.0, 16.0}},
		{Name: "packet_bytes", Values: []scenario.Value{64.0, 128.0, 256.0}},
		{Name: "dev_packet_bytes", Values: []scenario.Value{64.0, 128.0}},
	}
	sc.Explore.Strategy = "halving"
	sc.Explore.Proxy = &scenario.ProxySpec{Domains: 2}
	rep, err := Run(sc, scenario.Options{Jobs: 2}, Params{Budget: "2"})
	if err != nil {
		t.Fatal(err)
	}
	var timing *Generation
	for _, g := range rep.Trace.Generations {
		if g.Fidelity == FidelityTiming {
			timing = g
		}
	}
	if timing == nil || len(timing.Evals) != 2 {
		t.Fatalf("exact rung admitted %v evals, want the full budget of 2 (generations: %+v)",
			timing, rep.Trace.Generations)
	}
	if got := rep.Trace.Summary.BudgetPoints; got != 2 {
		t.Fatalf("budget charged %d points, want 2 (the exact rung only)", got)
	}
	if rep.Trace.Summary.Best == nil || len(rep.Frontier.Rows) == 0 {
		t.Fatalf("empty frontier: best=%+v, %d rows", rep.Trace.Summary.Best, len(rep.Frontier.Rows))
	}
}

// Large spaces rejection-sample; when dense constraints (or a nearly
// drained remainder) defeat the bounded attempt budget, Sample must
// fall back to enumerating the unvisited feasible remainder instead of
// returning empty and ending the search early.
func TestExploreSampleLargeSpaceFallback(t *testing.T) {
	vals := func(n int) []scenario.Value {
		out := make([]scenario.Value, n)
		for i := range out {
			out[i] = float64(i + 1)
		}
		return out
	}
	sc := miniScenario()
	sc.Axes = []scenario.Axis{
		{Name: "lanes", Values: vals(64)},
		{Name: "packet_bytes", Values: vals(64)},
		{Name: "dev_packet_bytes", Values: vals(17)},
	}
	one := 1.0
	sc.Explore.Constraints = []scenario.Constraint{
		{Axis: "lanes", Max: &one},
		{Axis: "packet_bytes", Max: &one},
	}
	sp, err := sc.Space(false)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Size() <= smallSpace {
		t.Fatalf("space size %d does not exercise the rejection-sampling path", sp.Size())
	}
	s := &Search{
		sc:      sc,
		sp:      sp,
		spec:    *sc.Explore,
		rng:     rand.New(rand.NewSource(7)),
		visited: map[int]bool{},
	}
	// 17 feasible points in ~70k: rejection sampling cannot fill a
	// 16-point generation within its attempt budget.
	seen := map[int]bool{}
	got := s.Sample(16)
	if len(got) != 16 {
		t.Fatalf("Sample(16) returned %d points; fallback enumeration missing", len(got))
	}
	rest := s.Sample(16)
	if len(rest) != 1 {
		t.Fatalf("second Sample returned %d points, want the 1 remaining feasible point", len(rest))
	}
	for _, i := range append(got, rest...) {
		if seen[i] {
			t.Fatalf("point %d sampled twice", i)
		}
		seen[i] = true
		if !s.feasibleIdx(i) {
			t.Fatalf("sampled infeasible point %d", i)
		}
	}
	if extra := s.Sample(16); len(extra) != 0 {
		t.Fatalf("drained space still produced %d points", len(extra))
	}
}

func TestExploreRequiresStanza(t *testing.T) {
	sc := miniScenario()
	sc.Explore = nil
	if _, err := Run(sc, scenario.Options{}, Params{}); err == nil {
		t.Fatal("scenario without explore stanza accepted")
	}
}

func TestExploreRejectsInvalidOverrides(t *testing.T) {
	for _, p := range []Params{
		{Strategy: "anneal"},
		{Budget: "0"},
		{Budget: "lots"},
	} {
		if _, err := Run(miniScenario(), scenario.Options{}, p); err == nil {
			t.Fatalf("override %+v accepted", p)
		}
	}
}
