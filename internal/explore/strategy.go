package explore

// The two launch strategies behind one interface. Both consume the
// Search's Sample/Screen/EvalTiming primitives, so adding a smarter
// searcher (hill-climb, bandit, RL) is a new file, not a new engine.

import "fmt"

// Strategy drives one search to budget exhaustion (or space
// exhaustion, whichever lands first).
type Strategy interface {
	Name() string
	Run(s *Search) error
}

func strategyFor(name string) (Strategy, error) {
	switch name {
	case "", "random":
		return random{}, nil
	case "halving":
		return halving{}, nil
	}
	return nil, fmt.Errorf("explore: unknown strategy %q", name)
}

// random is seeded random search with analytic pre-screening: each
// generation samples Generation fresh feasible points, screens them
// analytically for free, and promotes only the top Promote fraction
// to exact timing. Simple, embarrassingly restartable (the cache
// makes re-runs warm), and a strong baseline on smooth objectives.
type random struct{}

func (random) Name() string { return "random" }

func (random) Run(s *Search) error {
	for !s.budget.Exhausted() {
		gen := s.Sample(s.genSize)
		if len(gen) == 0 {
			return nil // space drained
		}
		cands, err := s.Screen(gen)
		if err != nil {
			return err
		}
		ranked := s.Rank(cands)
		k := ceilFrac(len(ranked), s.promote)
		if _, err := s.EvalTiming(ranked[:k], FidelityTiming); err != nil {
			return err
		}
	}
	return nil
}

// halving is successive halving over the fidelity ladder: sample one
// large population sized so that keeping 1/eta per rung lands the
// exact-timing rung at the point budget, screen it analytically, then
// (optionally) run the survivors through the proxy rung — a
// partitioned short-quantum timing build, cheap but approximate —
// before spending exact simulation only on the final survivors. Only
// that last rung charges the budget: the analytic screen and the
// proxy rung are screening fidelities (EvalTiming enforces this), so
// the ladder can be budget*eta^rungs wide without starving the exact
// rung.
type halving struct{}

func (halving) Name() string { return "halving" }

func (halving) Run(s *Search) error {
	rungs := 2
	if s.spec.Proxy != nil {
		rungs = 3
	}
	base := s.budget.Points
	if base <= 0 {
		base = defaultGeneration // wall budgets have no natural count
	}
	pop := base
	for i := 0; i < rungs-1; i++ {
		pop *= s.eta
	}

	gen := s.Sample(pop)
	if len(gen) == 0 {
		return nil
	}
	cands, err := s.Screen(gen)
	if err != nil {
		return err
	}
	ranked := s.Rank(cands)
	keep := ceilDiv(len(ranked), s.eta)
	survivors := ranked[:keep]

	if s.spec.Proxy != nil {
		evaled, err := s.EvalTiming(survivors, FidelityProxy)
		if err != nil {
			return err
		}
		ranked = s.Rank(evaled)
		keep = ceilDiv(len(ranked), s.eta)
		if keep > len(ranked) {
			keep = len(ranked)
		}
		// Proxy candidates carry partitioned configs; remap the
		// survivors back to their exact-rung selves by index.
		byIndex := map[int]*cand{}
		for _, c := range cands {
			byIndex[c.index] = c
		}
		survivors = survivors[:0]
		for _, pc := range ranked[:keep] {
			if c, ok := byIndex[pc.index]; ok {
				c.obj = pc.obj   // rank downstream by proxy timing
				c.eval = pc.eval // exact admission marks the proxy record
				survivors = append(survivors, c)
			}
		}
	}
	_, err = s.EvalTiming(survivors, FidelityTiming)
	return err
}
