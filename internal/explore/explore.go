// Package explore is the search-driven front-end over a scenario's
// axis space: a suggest → simulate → observe loop that replaces the
// exhaustive cross product once spaces outgrow it. Candidates are
// enumerated lazily through the scenario.Space seam (the full matrix
// is never materialized), screened through the ~free analytic
// backend, and only the promising fraction is promoted to timing
// simulation through the existing sweep engine — so the warm cache,
// in-flight dedup, and wall-time profile all compose for free, and a
// re-explored manifest costs almost nothing.
//
// Searches are deterministic per (manifest, seed, budget): the RNG is
// seeded explicitly and threaded through every sampling decision,
// generation results fold in ascending point-index order, and ranking
// ties break by fingerprint digest. Two runs from the same starting
// cache state produce byte-identical frontiers and traces; a warm
// re-run promotes the same points and cold-simulates none of them.
package explore

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"accesys/internal/scenario"
	"accesys/internal/sim"
	"accesys/internal/sweep"
)

// Defaults for unset stanza fields.
const (
	defaultGeneration = 16
	defaultPromote    = 0.25
	defaultEta        = 4
	defaultFrontier   = 10
	defaultBudget     = "32"

	// defaultPredicted is the cold-profile prior for one timing
	// point's wall — only consulted by wall budgets before any
	// observation lands.
	defaultPredicted = 100 * time.Millisecond

	// smallSpace is the size up to which the feasible set is
	// enumerated exactly; larger spaces fall back to rejection
	// sampling.
	smallSpace = 1 << 16

	// rejectionFactor bounds rejection-sampling attempts per
	// requested candidate so dense constraints cannot spin forever.
	rejectionFactor = 64
)

// Fidelity names for trace records.
const (
	FidelityAnalytic = "analytic"
	FidelityProxy    = "proxy"
	FidelityTiming   = "timing"
)

// Params are the CLI-level overrides layered over the manifest's
// explore stanza.
type Params struct {
	// Strategy overrides the stanza's strategy when non-empty.
	Strategy string
	// Seed overrides the stanza's seed when non-nil.
	Seed *int64
	// Budget overrides the stanza's budget when non-empty.
	Budget string
}

// Report is one finished search: the ranked frontier (rendered
// through the shared table type, so text/CSV output is free) and the
// full audit trace.
type Report struct {
	Frontier *scenario.Result
	Trace    *Trace
}

// cand is one candidate moving through the fidelity ladder.
type cand struct {
	index  int
	run    scenario.Run
	point  sweep.Point
	digest string
	// obj is the objective at the candidate's latest evaluated
	// fidelity, in nanoseconds.
	obj float64
	// out is the exact-timing outcome (final rung only).
	out  sweep.Outcome
	cold bool
	// eval is the candidate's record in the last trace generation it
	// appeared in; advancing a rung marks it promoted.
	eval *Eval
}

// Search carries one run of the loop. Strategies drive it through
// Sample / Screen / EvalTiming.
type Search struct {
	sc   *scenario.Scenario
	sp   *scenario.Space
	spec scenario.ExploreSpec
	opts scenario.Options
	rng  *rand.Rand

	metric   string
	maximize bool
	genSize  int
	promote  float64
	eta      int
	frontier int
	budget   *sweep.Budget

	// pool is the unvisited feasible index set (small spaces only),
	// permuted in place by sampling.
	pool       []int
	poolBuilt  bool
	visited    map[int]bool
	infeasible int

	exact []*cand // every exact-timing evaluation, in eval order
	trace *Trace
}

// Run executes the manifest's declared search and returns the ranked
// frontier plus the trace. The scenario must carry an explore stanza.
func Run(sc *scenario.Scenario, opts scenario.Options, p Params) (*Report, error) {
	if sc.Explore == nil {
		return nil, fmt.Errorf("explore: scenario %s has no explore stanza", sc.Name)
	}
	spec := *sc.Explore
	if p.Strategy != "" {
		spec.Strategy = p.Strategy
	}
	if p.Seed != nil {
		spec.Seed = *p.Seed
	}
	if p.Budget != "" {
		spec.Budget = p.Budget
	}
	if spec.Budget == "" {
		spec.Budget = defaultBudget
	}
	// Re-validate: CLI overrides may have replaced stanza fields.
	check := *sc
	check.Explore = &spec
	if err := check.Validate(); err != nil {
		return nil, err
	}
	budget, err := sweep.ParseBudget(spec.Budget)
	if err != nil {
		return nil, fmt.Errorf("explore: %v", err)
	}
	sp, err := sc.Space(opts.Full)
	if err != nil {
		return nil, err
	}

	s := &Search{
		sc:       sc,
		sp:       sp,
		spec:     spec,
		opts:     opts,
		rng:      rand.New(rand.NewSource(spec.Seed)),
		metric:   spec.Objective.Name(),
		maximize: spec.Objective.Maximize(),
		genSize:  spec.Generation,
		promote:  spec.Promote,
		eta:      spec.Eta,
		frontier: spec.Frontier,
		budget:   &budget,
		visited:  map[int]bool{},
	}
	if s.genSize == 0 {
		s.genSize = defaultGeneration
	}
	if s.promote == 0 {
		s.promote = defaultPromote
	}
	if s.eta == 0 {
		s.eta = defaultEta
	}
	if s.frontier == 0 {
		s.frontier = defaultFrontier
	}

	strat, err := strategyFor(spec.Strategy)
	if err != nil {
		return nil, err
	}
	s.trace = &Trace{
		Scenario:  sc.Name,
		Strategy:  strat.Name(),
		Seed:      spec.Seed,
		Budget:    spec.Budget,
		Objective: s.objectiveLabel(),
		Full:      opts.Full,
		SpaceSize: sp.Size(),
	}
	opts.Logf("explore %s: %s over %d points (%s, seed %d, budget %s)\n",
		sc.Name, s.objectiveLabel(), sp.Size(), strat.Name(), spec.Seed, s.budget)

	if err := strat.Run(s); err != nil {
		return nil, err
	}
	return s.finish()
}

func (s *Search) objectiveLabel() string {
	goal := "min"
	if s.maximize {
		goal = "max"
	}
	return goal + " " + s.metric
}

// feasibleIdx applies every axis constraint to point i without
// resolving a run.
func (s *Search) feasibleIdx(i int) bool {
	for _, c := range s.spec.Constraints {
		if c.Axis == "" {
			continue
		}
		if !s.sp.EvalAxisConstraint(c, i) {
			return false
		}
	}
	return true
}

// Sample draws up to n unvisited feasible point indexes, returned in
// ascending order. Small spaces enumerate the feasible set once and
// draw by partial Fisher-Yates; large spaces rejection-sample with a
// bounded attempt count, and when that comes up short — the remainder
// is nearly drained, or constraints are dense — they fall back to one
// exact enumeration of the unvisited feasible remainder, so a search
// never ends while budget and feasible points remain. Either way the
// draw is a pure function of the seeded RNG state, so repeated
// searches visit identical points.
func (s *Search) Sample(n int) []int {
	if n < 1 {
		n = 1
	}
	var out []int
	if s.sp.Size() > smallSpace && !s.poolBuilt {
		for attempts := 0; len(out) < n && attempts < n*rejectionFactor; attempts++ {
			i := s.rng.Intn(s.sp.Size())
			if s.visited[i] {
				continue
			}
			s.visited[i] = true
			if !s.feasibleIdx(i) {
				s.infeasible++
				continue
			}
			out = append(out, i)
		}
		if len(out) == n {
			sort.Ints(out)
			return out
		}
		s.opts.Logf("explore %s: rejection sampling short (%d/%d); enumerating the unvisited remainder\n",
			s.sc.Name, len(out), n)
	}
	s.buildPool()
	out = append(out, s.drawPool(n-len(out))...)
	sort.Ints(out)
	return out
}

// buildPool enumerates the unvisited feasible remainder exactly.
// Small spaces build it on the first Sample; large spaces only when
// rejection sampling has come up short, so the O(size) scan happens
// at most once per search.
func (s *Search) buildPool() {
	if s.poolBuilt {
		return
	}
	s.poolBuilt = true
	for i := 0; i < s.sp.Size(); i++ {
		if s.visited[i] {
			continue
		}
		if s.feasibleIdx(i) {
			s.pool = append(s.pool, i)
		} else {
			s.infeasible++
		}
	}
}

// drawPool removes up to n pool entries by partial Fisher-Yates and
// marks them visited.
func (s *Search) drawPool(n int) []int {
	if n > len(s.pool) {
		n = len(s.pool)
	}
	if n <= 0 {
		return nil
	}
	for j := 0; j < n; j++ {
		k := j + s.rng.Intn(len(s.pool)-j)
		s.pool[j], s.pool[k] = s.pool[k], s.pool[j]
	}
	picked := append([]int{}, s.pool[:n]...)
	s.pool = s.pool[n:]
	for _, i := range picked {
		s.visited[i] = true
	}
	return picked
}

// Screen evaluates one generation through the analytic backend (no
// simulation, no cache traffic) and records it in the trace. The
// returned candidates carry analytic objectives; callers rank and
// promote a fraction of them.
func (s *Search) Screen(indexes []int) ([]*cand, error) {
	if len(indexes) == 0 {
		return nil, nil
	}
	cands := make([]*cand, 0, len(indexes))
	for _, i := range indexes {
		r, err := s.sp.RunAt(i)
		if err != nil {
			return nil, err
		}
		// Stamp the session's engine knobs (-domains/-quantum) before
		// fingerprinting so screening digests match the points the
		// timing rung will submit.
		runs := []scenario.Run{r}
		s.opts.Apply(runs)
		p := s.sc.Points(runs)[0]
		m, err := s.sc.AnalyticMetrics(runs[0])
		if err != nil {
			return nil, err
		}
		obj, ok := m[s.metric]
		if !ok {
			return nil, fmt.Errorf("explore: analytic backend has no %q metric for %s", s.metric, p.Key)
		}
		cands = append(cands, &cand{
			index:  i,
			run:    runs[0],
			point:  p,
			digest: sweep.Digest(p.Fingerprint),
			obj:    obj,
		})
	}
	s.recordGen(FidelityAnalytic, cands)
	return cands, nil
}

// Rank orders candidates by objective (direction per the goal), ties
// broken by fingerprint digest so equal-objective points order
// identically across runs.
func (s *Search) Rank(cands []*cand) []*cand {
	out := append([]*cand{}, cands...)
	sort.SliceStable(out, func(a, b int) bool {
		ca, cb := out[a], out[b]
		if ca.obj != cb.obj {
			if s.maximize {
				return ca.obj > cb.obj
			}
			return ca.obj < cb.obj
		}
		return ca.digest < cb.digest
	})
	return out
}

// EvalTiming promotes ranked candidates to a timing fidelity: at the
// exact rung the budget is charged per candidate in rank order
// (prediction from the wall profile) and only the admitted prefix
// runs; the admitted candidates are simulated through the sweep
// engine (cache, flight, and profile compose), and the generation
// lands in the trace. Returns the evaluated candidates with timing
// objectives.
//
// Only the exact rung spends the budget: ExploreSpec.Budget caps
// exact-timing promotions, and the proxy rung — a screening fidelity
// whose size the halving ladder already bounds to budget*eta — would
// otherwise exhaust the whole allowance on any space larger than
// budget*eta and admit nothing to the final rung. Every admitted
// exact promotion charges the budget whether or not the cache already
// holds its result — that is what keeps point-budgeted searches
// deterministic across cache states.
func (s *Search) EvalTiming(ranked []*cand, fidelity string) ([]*cand, error) {
	var admitted []*cand
	for _, c := range ranked {
		pc, err := s.proxyCand(c, fidelity)
		if err != nil {
			return nil, err
		}
		if fidelity == FidelityTiming &&
			!s.budget.Take(s.opts.Profile.Predict(pc.digest, defaultPredicted)) {
			break
		}
		if c.eval != nil {
			c.eval.Promoted = true
		}
		admitted = append(admitted, pc)
	}
	if len(admitted) == 0 {
		return nil, nil
	}
	// Fold results in ascending point-index order regardless of rank.
	sort.SliceStable(admitted, func(a, b int) bool { return admitted[a].index < admitted[b].index })

	points := make([]sweep.Point, len(admitted))
	for i, c := range admitted {
		points[i] = c.point
	}
	cold := make([]bool, len(points))
	run := s.opts
	prev := run.OnResult
	run.OnResult = func(r sweep.Result) {
		cold[r.Index] = !r.Cached && !r.Shared
		if prev != nil {
			prev(r)
		}
	}
	label := fmt.Sprintf("%s %s g%d", s.sc.Name, fidelity, len(s.trace.Generations))
	outs := run.Sweep(label, points)
	for i, c := range admitted {
		c.out = outs[i]
		c.cold = cold[i]
		c.obj = s.timingObjective(outs[i])
	}
	s.recordGen(fidelity, admitted)
	if fidelity == FidelityTiming {
		s.exact = append(s.exact, admitted...)
	}
	return admitted, nil
}

// proxyCand rebuilds a candidate for the proxy rung (partitioned
// build, optionally clamped quantum — a distinct fingerprint, so
// proxy results can never alias exact ones); exact-rung candidates
// pass through.
func (s *Search) proxyCand(c *cand, fidelity string) (*cand, error) {
	if fidelity != FidelityProxy {
		return c, nil
	}
	p := s.spec.Proxy
	if p == nil {
		return c, nil
	}
	r := c.run
	r.Cfg.Domains = p.Domains
	r.Cfg.Quantum = sim.Tick(p.QuantumNs) * sim.Nanosecond
	pt := s.sc.Points([]scenario.Run{r})[0]
	return &cand{
		index:  c.index,
		run:    r,
		point:  pt,
		digest: sweep.Digest(pt.Fingerprint),
		obj:    c.obj,
	}, nil
}

// timingObjective extracts the objective from a timing outcome in
// nanoseconds, matching the analytic screen's units: "exec" is the
// end-to-end duration; "gemm"/"nongemm" are the ViT split values
// (stored in ticks, converted like the equiv harness does).
func (s *Search) timingObjective(out sweep.Outcome) float64 {
	if s.metric == "exec" {
		return out.Dur.Nanoseconds()
	}
	return out.Value(s.metric) / float64(sim.Nanosecond)
}

// metricValue reads a named outcome value for metric constraints:
// "exec" in nanoseconds, anything else as extracted. ok is false when
// the outcome lacks the metric (the point is then infeasible).
func metricValue(out sweep.Outcome, name string) (float64, bool) {
	if name == "exec" {
		return out.Dur.Nanoseconds(), true
	}
	v, ok := out.Values[name]
	return v, ok
}

// metricFeasible applies the manifest's metric constraints to one
// exact-timing outcome.
func (s *Search) metricFeasible(out sweep.Outcome) bool {
	for _, c := range s.spec.Constraints {
		if c.Metric == "" {
			continue
		}
		v, ok := metricValue(out, c.Metric)
		if !ok {
			return false
		}
		if c.Equals != nil {
			ev, isNum := c.Equals.(float64)
			if !isNum || v != ev {
				return false
			}
			continue
		}
		if c.Min != nil && v < *c.Min {
			return false
		}
		if c.Max != nil && v > *c.Max {
			return false
		}
	}
	return true
}

// ceilFrac is ceil(n * frac), at least 1 for non-empty inputs.
func ceilFrac(n int, frac float64) int {
	k := int(math.Ceil(float64(n) * frac))
	if k < 1 && n > 0 {
		k = 1
	}
	if k > n {
		k = n
	}
	return k
}

// ceilDiv is ceil(n / d), at least 1 for non-empty inputs.
func ceilDiv(n, d int) int {
	k := (n + d - 1) / d
	if k < 1 && n > 0 {
		k = 1
	}
	return k
}
