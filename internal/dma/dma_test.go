package dma

import (
	"bytes"
	"testing"

	"accesys/internal/mem"
	"accesys/internal/memtest"
	"accesys/internal/sim"
	"accesys/internal/stats"
)

func newEngine(t *testing.T, cfg Config) (*sim.EventQueue, *Engine, *memtest.EchoResponder, *stats.Registry) {
	t.Helper()
	eq := sim.NewEventQueue()
	reg := stats.NewRegistry()
	e := New("dma", eq, reg, cfg)
	m := memtest.NewEchoResponder(eq, 0, 1<<22, 20*sim.Nanosecond)
	mem.Bind(e.Port(), m.Port)
	return eq, e, m, reg
}

func TestReadGather(t *testing.T) {
	eq, e, m, _ := newEngine(t, Config{BurstBytes: 64})
	want := make([]byte, 1000)
	for i := range want {
		want[i] = byte(i * 13)
	}
	m.Store.Write(0x1000, want)
	got := make([]byte, 1000)
	done := false
	e.Read(0, 0x1000, 1000, got, func() { done = true })
	eq.Run()
	if !done {
		t.Fatal("completion callback not fired")
	}
	if !bytes.Equal(got, want) {
		t.Fatal("gathered data mismatch")
	}
}

func TestWriteScatter(t *testing.T) {
	eq, e, m, _ := newEngine(t, Config{BurstBytes: 128})
	data := make([]byte, 1000)
	for i := range data {
		data[i] = byte(i ^ 0x3c)
	}
	done := false
	e.Write(0, 0x2000, 1000, data, func() { done = true })
	eq.Run()
	if !done {
		t.Fatal("write completion not fired")
	}
	got := make([]byte, 1000)
	m.Store.Read(0x2000, got)
	if !bytes.Equal(got, data) {
		t.Fatal("scattered data mismatch")
	}
}

func TestBurstSplitCount(t *testing.T) {
	eq, e, m, reg := newEngine(t, Config{BurstBytes: 256})
	e.Read(0, 0, 1024, nil, nil)
	eq.Run()
	if len(m.Requests) != 4 {
		t.Fatalf("1024B at 256B bursts should be 4 requests, got %d", len(m.Requests))
	}
	if reg.Lookup("dma.bursts").Value() != 4 {
		t.Fatalf("bursts stat = %v", reg.Lookup("dma.bursts").Value())
	}
}

func TestPageBoundarySplit(t *testing.T) {
	eq, e, m, _ := newEngine(t, Config{BurstBytes: 512, PageBytes: 4096})
	// Transfer straddles a page boundary mid-burst.
	e.Read(0, 4096-100, 512, nil, nil)
	eq.Run()
	if len(m.Requests) != 2 {
		t.Fatalf("page-crossing burst should split in 2, got %d", len(m.Requests))
	}
	if m.Requests[0].Size != 100 || m.Requests[1].Size != 412 {
		t.Fatalf("split sizes %d/%d, want 100/412", m.Requests[0].Size, m.Requests[1].Size)
	}
	for _, p := range m.Requests {
		if p.Addr%4096+uint64(p.Size) > 4096 {
			t.Fatal("burst crosses a page")
		}
	}
}

func TestWindowLimitsInflight(t *testing.T) {
	// Refusing memory: all issued bursts stay queued in the reqQ.
	eq := sim.NewEventQueue()
	reg := stats.NewRegistry()
	e := New("dma", eq, reg, Config{BurstBytes: 256, WindowBytes: 1024, Channels: 1})
	m := memtest.NewEchoResponder(eq, 0, 1<<22, 20*sim.Nanosecond)
	m.RefuseRequests = true
	mem.Bind(e.Port(), m.Port)

	e.Read(0, 0, 1<<16, nil, nil)
	eq.Run()
	// Window 1024 / burst 256 = 4 in flight maximum.
	if got := reg.Lookup("dma.bursts").Value(); got != 4 {
		t.Fatalf("in-flight bursts = %v, want window-limited 4", got)
	}
	m.ReleaseRequests()
	eq.Run()
	if got := reg.Lookup("dma.bursts").Value(); got != 256 {
		t.Fatalf("total bursts = %v, want 256", got)
	}
}

func TestChannelsProgressIndependently(t *testing.T) {
	eq, e, _, _ := newEngine(t, Config{BurstBytes: 256, Channels: 2})
	var order []int
	e.Read(0, 0, 64<<10, nil, func() { order = append(order, 0) })
	e.Read(1, 1<<20, 256, nil, func() { order = append(order, 1) })
	eq.Run()
	if len(order) != 2 {
		t.Fatal("both transfers must complete")
	}
	// The tiny transfer on channel 1 must not wait for channel 0's
	// large transfer.
	if order[0] != 1 {
		t.Fatal("channel 1's small transfer should finish first")
	}
}

func TestSameChannelFIFO(t *testing.T) {
	eq, e, _, _ := newEngine(t, Config{BurstBytes: 256, Channels: 1})
	var order []int
	e.Read(0, 0, 4096, nil, func() { order = append(order, 0) })
	e.Read(0, 8192, 256, nil, func() { order = append(order, 1) })
	eq.Run()
	if order[0] != 0 || order[1] != 1 {
		t.Fatalf("same-channel transfers must be FIFO: %v", order)
	}
}

func TestUncacheableFlag(t *testing.T) {
	eq, e, m, _ := newEngine(t, Config{Uncacheable: true})
	e.Read(0, 0, 256, nil, nil)
	eq.Run()
	for _, p := range m.Requests {
		if !p.Uncacheable {
			t.Fatal("packets must carry the uncacheable flag")
		}
	}
}

func TestOversizeBurstPanics(t *testing.T) {
	eq := sim.NewEventQueue()
	reg := stats.NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("burst > page must panic")
		}
	}()
	New("dma", eq, reg, Config{BurstBytes: 8192, PageBytes: 4096})
}

func TestStats(t *testing.T) {
	eq, e, _, reg := newEngine(t, Config{BurstBytes: 256})
	e.Read(0, 0, 1024, nil, nil)
	e.Write(1, 4096, 512, nil, nil)
	eq.Run()
	if reg.Lookup("dma.bytes_read").Value() != 1024 {
		t.Fatalf("bytes_read = %v", reg.Lookup("dma.bytes_read").Value())
	}
	if reg.Lookup("dma.bytes_written").Value() != 512 {
		t.Fatalf("bytes_written = %v", reg.Lookup("dma.bytes_written").Value())
	}
	if reg.Lookup("dma.descriptors").Value() != 2 {
		t.Fatalf("descriptors = %v", reg.Lookup("dma.descriptors").Value())
	}
}

func TestStartLatencyApplied(t *testing.T) {
	eq, e, _, _ := newEngine(t, Config{BurstBytes: 256, StartLatency: 100 * sim.Nanosecond})
	var doneAt sim.Tick
	e.Read(0, 0, 64, nil, func() { doneAt = eq.Now() })
	eq.Run()
	if doneAt < 120*sim.Nanosecond {
		t.Fatalf("completion at %v, want >= start latency + memory", doneAt)
	}
}
