// Package dma implements the multi-channel DMA engine inside the
// accelerator wrapper. Transfers are split into bursts of a
// configurable request size (the paper's packet-size knob, Fig. 4),
// never crossing page boundaries (the SMMU translates per page), and
// are windowed by a configurable number of in-flight bytes per channel.
package dma

import (
	"fmt"

	"accesys/internal/mem"
	"accesys/internal/sim"
	"accesys/internal/stats"
)

// Config parameterizes an Engine.
type Config struct {
	// Channels is the number of independent DMA channels (default 4).
	Channels int
	// BurstBytes is the request packet size (default 256).
	BurstBytes int
	// WindowBytes bounds in-flight bytes per channel (default 8192).
	WindowBytes int
	// PageBytes is the split boundary for translated paths
	// (default 4096; 0 disables page splitting).
	PageBytes uint64
	// StartLatency models descriptor fetch/decode per transfer
	// (default 40 ns).
	StartLatency sim.Tick
	// Uncacheable marks all traffic to bypass caches (DM access mode).
	Uncacheable bool
}

func (c *Config) setDefaults() {
	if c.Channels == 0 {
		c.Channels = 4
	}
	if c.BurstBytes == 0 {
		c.BurstBytes = 256
	}
	if c.WindowBytes == 0 {
		c.WindowBytes = 8192
	}
	if c.PageBytes == 0 {
		c.PageBytes = 4096
	}
	if c.StartLatency == 0 {
		c.StartLatency = 40 * sim.Nanosecond
	}
}

// Resolved returns the configuration with every zero field replaced
// by its default — what an Engine actually runs with. Analytic models
// derive burst and window constants from this.
func (c Config) Resolved() Config {
	c.setDefaults()
	return c
}

// transfer is one queued descriptor.
type transfer struct {
	isWrite bool
	addr    uint64
	n       int
	buf     []byte // destination (reads) or source (writes); may be nil
	onDone  func()

	offset    int // next byte to issue
	inflight  int
	completed int
	started   bool
	issuedAt  sim.Tick
}

type channel struct {
	e     *Engine
	idx   int
	queue []*transfer
	cur   *transfer
}

type burstState struct {
	ch  *channel
	t   *transfer
	off int
	n   int
}

// getBS leases a burst-state record from the engine's freelist so
// stacking one on a packet does not allocate per burst.
func (e *Engine) getBS() *burstState {
	if n := len(e.bsFree); n > 0 {
		st := e.bsFree[n-1]
		e.bsFree[n-1] = nil
		e.bsFree = e.bsFree[:n-1]
		return st
	}
	return &burstState{}
}

func (e *Engine) putBS(st *burstState) {
	*st = burstState{}
	e.bsFree = append(e.bsFree, st)
}

// Engine is a multi-channel DMA engine sharing one request port.
type Engine struct {
	name string
	eq   *sim.EventQueue
	cfg  Config

	port  *mem.RequestPort
	reqQ  *mem.PacketQueue
	chans []*channel

	bsFree []*burstState // recycled burst-state records

	descriptors *stats.Counter
	bursts      *stats.Counter
	bytesRead   *stats.Counter
	bytesWrit   *stats.Counter
	latency     *stats.Distribution
}

// New builds an Engine; bind Port() to the PCIe endpoint (host path)
// or to the device memory fabric (DevMem path).
func New(name string, eq *sim.EventQueue, reg *stats.Registry, cfg Config) *Engine {
	cfg.setDefaults()
	if cfg.BurstBytes > int(cfg.PageBytes) {
		panic(fmt.Sprintf("dma %s: burst %d exceeds page size %d", name, cfg.BurstBytes, cfg.PageBytes))
	}
	e := &Engine{name: name, eq: eq, cfg: cfg}
	e.port = mem.NewRequestPort(name+".port", e)
	e.reqQ = mem.NewPacketQueue(name+".reqq", eq, func(p *mem.Packet) bool {
		return e.port.SendTimingReq(p)
	})
	for i := 0; i < cfg.Channels; i++ {
		e.chans = append(e.chans, &channel{e: e, idx: i})
	}
	g := reg.Group(name)
	e.descriptors = g.Counter("descriptors", "transfers processed")
	e.bursts = g.Counter("bursts", "burst requests issued")
	e.bytesRead = g.Counter("bytes_read", "bytes read")
	e.bytesWrit = g.Counter("bytes_written", "bytes written")
	e.latency = g.Distribution("transfer_ns", "descriptor completion latency")
	return e
}

// Port returns the engine's request port.
func (e *Engine) Port() *mem.RequestPort { return e.port }

// Config returns the engine's resolved configuration.
func (e *Engine) Config() Config { return e.cfg }

// SetBurstBytes changes the request packet size for subsequently
// issued bursts (the accelerator's RegBurst CSR drives this).
func (e *Engine) SetBurstBytes(n int) {
	if n <= 0 || n > int(e.cfg.PageBytes) {
		panic(fmt.Sprintf("dma %s: invalid burst size %d", e.name, n))
	}
	e.cfg.BurstBytes = n
}

// Read schedules a gather of n bytes from addr into buf (which may be
// nil for timing-only traffic). onDone fires when the last burst
// lands. The transfer is assigned to channel ch mod Channels.
func (e *Engine) Read(ch int, addr uint64, n int, buf []byte, onDone func()) {
	e.submit(ch, &transfer{isWrite: false, addr: addr, n: n, buf: buf, onDone: onDone})
}

// Write schedules a scatter of n bytes to addr. data may be nil for
// timing-only traffic; otherwise n = len(data).
func (e *Engine) Write(ch int, addr uint64, n int, data []byte, onDone func()) {
	if data != nil && len(data) != n {
		panic(fmt.Sprintf("dma %s: write size %d != len(data) %d", e.name, n, len(data)))
	}
	e.submit(ch, &transfer{isWrite: true, addr: addr, n: n, buf: data, onDone: onDone})
}

func (e *Engine) submit(ch int, t *transfer) {
	if t.n <= 0 {
		panic(fmt.Sprintf("dma %s: empty transfer", e.name))
	}
	c := e.chans[ch%len(e.chans)]
	c.queue = append(c.queue, t)
	e.descriptors.Inc()
	if c.cur == nil {
		c.next()
	}
}

func (c *channel) next() {
	if len(c.queue) == 0 {
		c.cur = nil
		return
	}
	c.cur = c.queue[0]
	c.queue = c.queue[1:]
	c.cur.started = false
	c.e.eq.ScheduleAfter(func() {
		c.cur.started = true
		c.cur.issuedAt = c.e.eq.Now()
		c.pump()
	}, c.e.cfg.StartLatency)
}

// pump issues bursts while the window allows.
func (c *channel) pump() {
	t := c.cur
	if t == nil || !t.started {
		return
	}
	for t.offset < t.n && t.inflight < c.e.cfg.WindowBytes {
		n := c.e.cfg.BurstBytes
		if rem := t.n - t.offset; n > rem {
			n = rem
		}
		// Split at page boundaries for the SMMU.
		addr := t.addr + uint64(t.offset)
		if c.e.cfg.PageBytes > 0 {
			if room := int(c.e.cfg.PageBytes - addr%c.e.cfg.PageBytes); n > room {
				n = room
			}
		}

		var pkt *mem.Packet
		if t.isWrite {
			if t.buf != nil {
				pkt = mem.NewWrite(addr, t.buf[t.offset:t.offset+n])
			} else {
				pkt = mem.NewWriteSize(addr, n)
			}
			c.e.bytesWrit.Add(uint64(n))
		} else {
			pkt = mem.NewRead(addr, n)
			c.e.bytesRead.Add(uint64(n))
		}
		pkt.Uncacheable = c.e.cfg.Uncacheable
		pkt.Issued = c.e.eq.Now()
		st := c.e.getBS()
		st.ch, st.t, st.off, st.n = c, t, t.offset, n
		pkt.PushState(st)
		t.offset += n
		t.inflight += n
		c.e.bursts.Inc()
		c.e.reqQ.Schedule(pkt, c.e.eq.Now())
	}
}

// RecvTimingResp implements mem.Requestor.
func (e *Engine) RecvTimingResp(port *mem.RequestPort, pkt *mem.Packet) bool {
	st := pkt.PopState().(*burstState)
	c, t := st.ch, st.t
	if !t.isWrite && t.buf != nil && pkt.Data != nil {
		copy(t.buf[st.off:st.off+st.n], pkt.Data[:st.n])
	}
	t.inflight -= st.n
	t.completed += st.n
	e.putBS(st)
	pkt.Release() // the engine originated this burst; its round trip ends here
	if t.completed == t.n {
		e.latency.Sample(float64(e.eq.Now()-t.issuedAt) / float64(sim.Nanosecond))
		if t.onDone != nil {
			t.onDone()
		}
		c.next()
	} else {
		c.pump()
	}
	return true
}

// RecvRetryReq implements mem.Requestor.
func (e *Engine) RecvRetryReq(port *mem.RequestPort) { e.reqQ.RetryReceived() }

var _ mem.Requestor = (*Engine)(nil)
