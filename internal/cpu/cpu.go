// Package cpu implements the op-driven timing CPU that stands in for
// the paper's ARM core: it executes operator descriptors (the
// Non-GEMM portions of transformer workloads plus driver activity),
// overlapping a compute-cycle budget with real cacheline traffic
// issued through its cache port under a bounded memory-level
// parallelism window. The experiments never measure ISA effects — they
// measure where CPU memory traffic lands (host DRAM vs cross-PCIe
// device memory), which this model generates faithfully.
package cpu

import (
	"fmt"

	"accesys/internal/mem"
	"accesys/internal/sim"
	"accesys/internal/stats"
)

// Op is one operator descriptor: stream ReadBytes from ReadAddr,
// stream WriteBytes to WriteAddr, and burn ComputeCycles, with compute
// and memory overlapping.
type Op struct {
	Name          string
	ReadAddr      uint64
	ReadBytes     int
	WriteAddr     uint64
	WriteBytes    int
	ComputeCycles uint64
}

// Config parameterizes a CPU.
type Config struct {
	// ClockMHz is the core clock (default 1000, Table II's 1 GHz ARM).
	ClockMHz float64
	// MLP bounds outstanding cacheline requests (default 8).
	MLP int
	// LineBytes is the access granularity (default 64).
	LineBytes int
}

// CPU is a single in-order core executing Op streams.
type CPU struct {
	name  string
	eq    *sim.EventQueue
	cfg   Config
	clock sim.Clock

	port *mem.RequestPort

	ops    []Op
	opIdx  int
	onDone func()

	outstanding  int
	rdCursor     uint64
	rdLeft       int
	wrCursor     uint64
	wrLeft       int
	computeLeft  bool
	memLeft      bool
	opStart      sim.Tick
	portBlocked  bool
	pendingIssue *mem.Packet

	opsDone *stats.Counter
	busyNs  *stats.Scalar
	memB    *stats.Counter
	group   *stats.Group
}

// New builds a CPU; bind Port to the L1 data cache.
func New(name string, eq *sim.EventQueue, reg *stats.Registry, cfg Config) *CPU {
	if cfg.ClockMHz == 0 {
		cfg.ClockMHz = 1000
	}
	if cfg.MLP == 0 {
		cfg.MLP = 8
	}
	if cfg.LineBytes == 0 {
		cfg.LineBytes = 64
	}
	c := &CPU{name: name, eq: eq, cfg: cfg, clock: sim.NewClock(cfg.ClockMHz)}
	c.port = mem.NewRequestPort(name+".dport", c)
	c.group = reg.Group(name)
	c.opsDone = c.group.Counter("ops", "operators executed")
	c.busyNs = c.group.Scalar("busy_ns", "total operator time")
	c.memB = c.group.Counter("mem_bytes", "bytes streamed")
	return c
}

// Port returns the CPU's cache port.
func (c *CPU) Port() *mem.RequestPort { return c.port }

// Busy reports whether an op stream is in progress.
func (c *CPU) Busy() bool { return c.ops != nil }

// Run executes ops in order and calls onDone at completion. The CPU
// must be idle.
func (c *CPU) Run(ops []Op, onDone func()) {
	if c.ops != nil {
		panic(fmt.Sprintf("cpu %s: Run while busy", c.name))
	}
	if len(ops) == 0 {
		c.eq.ScheduleAfter(onDone, 0)
		return
	}
	c.ops = ops
	c.opIdx = 0
	c.onDone = onDone
	c.startOp()
}

func (c *CPU) startOp() {
	op := &c.ops[c.opIdx]
	c.opStart = c.eq.Now()
	c.rdCursor = op.ReadAddr
	c.rdLeft = op.ReadBytes
	c.wrCursor = op.WriteAddr
	c.wrLeft = op.WriteBytes
	c.memLeft = op.ReadBytes > 0 || op.WriteBytes > 0
	c.computeLeft = true

	cycles := op.ComputeCycles
	if cycles == 0 {
		cycles = 1
	}
	c.eq.ScheduleAfter(func() {
		c.computeLeft = false
		c.maybeOpDone()
	}, c.clock.Cycles(cycles))

	c.issue()
}

// issue keeps MLP lines in flight, reads before writes. Cursors only
// advance after the cache accepts, so a refusal retries the same line.
func (c *CPU) issue() {
	for c.outstanding < c.cfg.MLP && (c.rdLeft > 0 || c.wrLeft > 0) {
		lb := c.cfg.LineBytes
		var pkt *mem.Packet
		isRead := c.rdLeft > 0
		var n int
		if isRead {
			n = lb
			if c.rdLeft < n {
				n = c.rdLeft
			}
			pkt = mem.NewRead(c.rdCursor, n)
		} else {
			n = lb
			if c.wrLeft < n {
				n = c.wrLeft
			}
			pkt = mem.NewWriteSize(c.wrCursor, n)
		}
		pkt.Issued = c.eq.Now()
		if !c.port.SendTimingReq(pkt) {
			// The cursors did not advance: the retry rebuilds this
			// line, so the refused packet's lease ends here.
			pkt.Release()
			c.portBlocked = true
			return
		}
		if isRead {
			c.rdCursor += uint64(n)
			c.rdLeft -= n
		} else {
			c.wrCursor += uint64(n)
			c.wrLeft -= n
		}
		c.memB.Add(uint64(n))
		c.outstanding++
	}
}

// RecvTimingResp implements mem.Requestor.
func (c *CPU) RecvTimingResp(port *mem.RequestPort, pkt *mem.Packet) bool {
	pkt.Release() // the CPU originated this access; its round trip ends here
	c.outstanding--
	if c.rdLeft > 0 || c.wrLeft > 0 {
		c.issue()
	}
	if c.outstanding == 0 && c.rdLeft == 0 && c.wrLeft == 0 {
		c.memLeft = false
		c.maybeOpDone()
	}
	return true
}

// RecvRetryReq implements mem.Requestor.
func (c *CPU) RecvRetryReq(port *mem.RequestPort) {
	if !c.portBlocked {
		return
	}
	c.portBlocked = false
	c.issue()
}

func (c *CPU) maybeOpDone() {
	if c.computeLeft || c.memLeft || c.ops == nil {
		return
	}
	op := &c.ops[c.opIdx]
	dur := c.eq.Now() - c.opStart
	c.opsDone.Inc()
	c.busyNs.Add(dur.Nanoseconds())
	c.opTime(op.Name).Add(dur.Nanoseconds())

	c.opIdx++
	if c.opIdx < len(c.ops) {
		c.startOp()
		return
	}
	done := c.onDone
	c.ops = nil
	c.onDone = nil
	if done != nil {
		done()
	}
}

// opTime returns (creating on first use) the per-operator time scalar.
func (c *CPU) opTime(name string) *stats.Scalar {
	key := "op_" + name + "_ns"
	if s := c.group.Lookup(key); s != nil {
		return s.(*stats.Scalar)
	}
	return c.group.Scalar(key, "time in operator "+name)
}

var _ mem.Requestor = (*CPU)(nil)
