package cpu

import (
	"testing"

	"accesys/internal/mem"
	"accesys/internal/memtest"
	"accesys/internal/sim"
	"accesys/internal/stats"
)

func newCPU(t *testing.T, cfg Config, memLat sim.Tick) (*sim.EventQueue, *CPU, *memtest.EchoResponder, *stats.Registry) {
	t.Helper()
	eq := sim.NewEventQueue()
	reg := stats.NewRegistry()
	c := New("cpu", eq, reg, cfg)
	m := memtest.NewEchoResponder(eq, 0, 1<<22, memLat)
	mem.Bind(c.Port(), m.Port)
	return eq, c, m, reg
}

func TestComputeOnlyOpTiming(t *testing.T) {
	eq, c, _, _ := newCPU(t, Config{}, 10*sim.Nanosecond)
	var doneAt sim.Tick
	c.Run([]Op{{Name: "spin", ComputeCycles: 1000}}, func() { doneAt = eq.Now() })
	eq.Run()
	// 1000 cycles at 1 GHz = 1000 ns.
	if doneAt != 1000*sim.Nanosecond {
		t.Fatalf("compute-only op took %v, want 1000ns", doneAt)
	}
}

func TestMemoryBoundOp(t *testing.T) {
	eq, c, _, _ := newCPU(t, Config{MLP: 1}, 100*sim.Nanosecond)
	var doneAt sim.Tick
	// 16 lines, serial (MLP=1), 100ns each: >= 1600ns.
	c.Run([]Op{{Name: "stream", ReadBytes: 1024, ComputeCycles: 1}}, func() { doneAt = eq.Now() })
	eq.Run()
	if doneAt < 1600*sim.Nanosecond {
		t.Fatalf("memory-bound op took %v, want >= 1600ns", doneAt)
	}
}

func TestMLPOverlapsMisses(t *testing.T) {
	run := func(mlp int) sim.Tick {
		eq, c, _, _ := newCPU(t, Config{MLP: mlp}, 100*sim.Nanosecond)
		var doneAt sim.Tick
		c.Run([]Op{{Name: "stream", ReadBytes: 4096}}, func() { doneAt = eq.Now() })
		eq.Run()
		return doneAt
	}
	serial := run(1)
	parallel := run(8)
	if float64(serial)/float64(parallel) < 4 {
		t.Fatalf("MLP 8 should be >=4x faster: serial=%v parallel=%v", serial, parallel)
	}
}

func TestComputeMemoryOverlap(t *testing.T) {
	// Compute 10us, memory ~1.7us: total should be ~compute, not sum.
	eq, c, _, _ := newCPU(t, Config{MLP: 8}, 100*sim.Nanosecond)
	var doneAt sim.Tick
	c.Run([]Op{{Name: "both", ReadBytes: 1024, ComputeCycles: 10000}}, func() { doneAt = eq.Now() })
	eq.Run()
	if doneAt < 10*sim.Microsecond || doneAt > 11*sim.Microsecond {
		t.Fatalf("overlapped op took %v, want ~10us", doneAt)
	}
}

func TestOpsSequential(t *testing.T) {
	eq, c, _, reg := newCPU(t, Config{}, 10*sim.Nanosecond)
	var order []string
	ops := []Op{
		{Name: "a", ComputeCycles: 100},
		{Name: "b", ComputeCycles: 200},
		{Name: "c", WriteBytes: 128},
	}
	done := false
	c.Run(ops, func() {
		done = true
		order = append(order, "done")
	})
	eq.Run()
	if !done {
		t.Fatal("op stream did not finish")
	}
	if reg.Lookup("cpu.ops").Value() != 3 {
		t.Fatalf("ops = %v", reg.Lookup("cpu.ops").Value())
	}
	if reg.Lookup("cpu.op_a_ns").Value() != 100 {
		t.Fatalf("op_a_ns = %v", reg.Lookup("cpu.op_a_ns").Value())
	}
	if reg.Lookup("cpu.mem_bytes").Value() != 128 {
		t.Fatalf("mem_bytes = %v", reg.Lookup("cpu.mem_bytes").Value())
	}
}

func TestRunWhileBusyPanics(t *testing.T) {
	eq, c, _, _ := newCPU(t, Config{}, 10*sim.Nanosecond)
	c.Run([]Op{{Name: "x", ComputeCycles: 1000}}, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("Run while busy should panic")
		}
	}()
	c.Run([]Op{{Name: "y"}}, nil)
	eq.Run()
}

func TestEmptyOpList(t *testing.T) {
	eq, c, _, _ := newCPU(t, Config{}, 10*sim.Nanosecond)
	done := false
	c.Run(nil, func() { done = true })
	eq.Run()
	if !done {
		t.Fatal("empty op list should complete immediately")
	}
	if c.Busy() {
		t.Fatal("CPU should be idle")
	}
}

func TestBackpressuredPort(t *testing.T) {
	eq := sim.NewEventQueue()
	reg := stats.NewRegistry()
	c := New("cpu", eq, reg, Config{MLP: 4})
	m := memtest.NewEchoResponder(eq, 0, 1<<20, 20*sim.Nanosecond)
	m.RefuseRequests = true
	mem.Bind(c.Port(), m.Port)
	done := false
	c.Run([]Op{{Name: "blocked", ReadBytes: 512}}, func() { done = true })
	eq.Run()
	if done {
		t.Fatal("op should stall against a refusing memory")
	}
	m.ReleaseRequests()
	eq.Run()
	if !done {
		t.Fatal("op should finish after release")
	}
}

func TestFarMemorySlower(t *testing.T) {
	near := func() sim.Tick {
		eq, c, _, _ := newCPU(t, Config{MLP: 4}, 30*sim.Nanosecond)
		var at sim.Tick
		c.Run([]Op{{Name: "n", ReadBytes: 8192, WriteBytes: 8192}}, func() { at = eq.Now() })
		eq.Run()
		return at
	}()
	far := func() sim.Tick {
		eq, c, _, _ := newCPU(t, Config{MLP: 4}, 600*sim.Nanosecond) // NUMA-like
		var at sim.Tick
		c.Run([]Op{{Name: "f", ReadBytes: 8192, WriteBytes: 8192}}, func() { at = eq.Now() })
		eq.Run()
		return at
	}()
	if float64(far)/float64(near) < 5 {
		t.Fatalf("far memory should dominate: near=%v far=%v", near, far)
	}
}
