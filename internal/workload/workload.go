// Package workload defines the evaluation workloads: plain GEMM
// kernels (Figs. 2-6, Table IV) and Vision Transformer encoder graphs
// decomposed into GEMM and Non-GEMM operators (Figs. 7-9), following
// the paper's split where GEMMs are offloaded to the accelerator and
// everything else (layernorm, softmax, GELU, residuals, data
// marshalling) runs on the CPU.
package workload

import "fmt"

// Tokens is the ViT sequence length: 196 patches + class token,
// padded to the systolic array tile (16): 208.
const (
	RawTokens = 197
	Tokens    = 208
)

// GEMMJob is a matrix multiplication offloaded to the accelerator:
// C[M x N] = A[M x K] x B[K x N]. Dimensions are multiples of 16.
type GEMMJob struct {
	Name    string
	M, N, K int
}

// MACs returns the multiply-accumulate count.
func (g GEMMJob) MACs() uint64 { return uint64(g.M) * uint64(g.N) * uint64(g.K) }

// BytesA, BytesB, BytesC are the packed operand sizes (4 B elements).
func (g GEMMJob) BytesA() int { return g.M * g.K * 4 }

// BytesB returns the packed B size.
func (g GEMMJob) BytesB() int { return g.K * g.N * 4 }

// BytesC returns the packed C size.
func (g GEMMJob) BytesC() int { return g.M * g.N * 4 }

// NonGEMMOp is a CPU-resident operator with streaming memory traffic
// and a compute budget.
type NonGEMMOp struct {
	Name          string
	ReadBytes     int
	WriteBytes    int
	ComputeCycles uint64
}

// Item is one step of a workload graph: exactly one of GEMM / CPU is
// set.
type Item struct {
	GEMM *GEMMJob
	CPU  *NonGEMMOp
}

// Graph is an operator sequence plus a layer multiplier: transformer
// encoder layers are architecturally identical, so one layer is
// simulated and scaled (see DESIGN.md).
type Graph struct {
	Name   string
	Items  []Item
	Layers int
}

// GEMMs returns the GEMM items in order.
func (g Graph) GEMMs() []GEMMJob {
	var out []GEMMJob
	for _, it := range g.Items {
		if it.GEMM != nil {
			out = append(out, *it.GEMM)
		}
	}
	return out
}

// CPUOps returns the Non-GEMM items in order.
func (g Graph) CPUOps() []NonGEMMOp {
	var out []NonGEMMOp
	for _, it := range g.Items {
		if it.CPU != nil {
			out = append(out, *it.CPU)
		}
	}
	return out
}

// TotalMACs returns the GEMM work of the full model (all layers).
func (g Graph) TotalMACs() uint64 {
	var m uint64
	for _, j := range g.GEMMs() {
		m += j.MACs()
	}
	return m * uint64(g.Layers)
}

// Square returns an N x N x N GEMM workload.
func Square(n int) GEMMJob {
	return GEMMJob{Name: fmt.Sprintf("gemm%d", n), M: n, N: n, K: n}
}

// ViTVariant selects a Vision Transformer model size.
type ViTVariant struct {
	Name   string
	Hidden int // D
	Heads  int // H
	Layers int // L
	MLP    int // expansion factor
}

// The paper's three ViT models (Section IV.B): hidden 768/1024/1280,
// 12 or 16 heads.
var (
	ViTBase  = ViTVariant{Name: "ViT-Base", Hidden: 768, Heads: 12, Layers: 12, MLP: 4}
	ViTLarge = ViTVariant{Name: "ViT-Large", Hidden: 1024, Heads: 16, Layers: 24, MLP: 4}
	ViTHuge  = ViTVariant{Name: "ViT-Huge", Hidden: 1280, Heads: 16, Layers: 32, MLP: 4}
)

// Variants lists the evaluated models in paper order.
func Variants() []ViTVariant { return []ViTVariant{ViTBase, ViTLarge, ViTHuge} }

// Cycles-per-element costs for the CPU operators. Non-GEMM transformer
// operators are memory-bound on real hardware (NonGEMM Bench, the
// paper's ref. [20]): a SIMD core retires several elements per cycle,
// so the per-element budgets stay small and streaming traffic
// dominates — which is what exposes the DevMem NUMA penalty of Fig. 8.
const (
	cpeLayerNorm = 3
	cpeSoftmax   = 5
	cpeGELU      = 4
	cpeAdd       = 1
	cpeMarshal   = 1
)

func elemOp(name string, elems int, cpe int, passes int) Item {
	return Item{CPU: &NonGEMMOp{
		Name:          name,
		ReadBytes:     passes * elems * 4,
		WriteBytes:    elems * 4,
		ComputeCycles: uint64(elems) * uint64(cpe),
	}}
}

func gemm(name string, m, n, k int) Item {
	return Item{GEMM: &GEMMJob{Name: name, M: m, N: n, K: k}}
}

// ViT builds one encoder layer of the given variant as an Item graph
// with the layer count as multiplier. Attention head GEMMs are batched
// into one equivalent-work job, as MatrixFlow's driver does.
func ViT(v ViTVariant) Graph {
	t := Tokens
	d := v.Hidden
	dh := d / v.Heads
	var items []Item

	items = append(items,
		elemOp("ln1", t*d, cpeLayerNorm, 2),
		gemm("qkv", t, 3*d, d),
		elemOp("qkv_reshape", t*3*d, cpeMarshal, 1),
		gemm("attn_scores", t, v.Heads*t, dh),
		elemOp("softmax", v.Heads*t*t, cpeSoftmax, 2),
		gemm("attn_av", t, d, t),
		elemOp("attn_reshape", t*d, cpeMarshal, 1),
		gemm("attn_proj", t, d, d),
		elemOp("residual1", t*d, cpeAdd, 2),
		elemOp("ln2", t*d, cpeLayerNorm, 2),
		gemm("mlp1", t, v.MLP*d, d),
		elemOp("gelu", t*v.MLP*d, cpeGELU, 1),
		gemm("mlp2", t, d, v.MLP*d),
		elemOp("residual2", t*d, cpeAdd, 2),
	)
	return Graph{Name: v.Name, Items: items, Layers: v.Layers}
}

// GEMMFraction estimates the fraction of total MACs+element-ops that
// are GEMM work, useful as a sanity measure (the timed split comes
// from simulation).
func (g Graph) GEMMFraction() float64 {
	var gemmWork, cpuWork float64
	for _, it := range g.Items {
		if it.GEMM != nil {
			gemmWork += float64(it.GEMM.MACs())
		} else {
			cpuWork += float64(it.CPU.ComputeCycles)
		}
	}
	if gemmWork+cpuWork == 0 {
		return 0
	}
	return gemmWork / (gemmWork + cpuWork)
}
