package workload

import "testing"

func TestTokensPadded(t *testing.T) {
	if Tokens != 208 || Tokens%16 != 0 {
		t.Fatalf("Tokens = %d, want 208 (197 padded to 16)", Tokens)
	}
}

func TestVariantsMatchPaper(t *testing.T) {
	// Section IV.B: hidden 768/1024/1280, 12 or 16 heads.
	if ViTBase.Hidden != 768 || ViTBase.Heads != 12 || ViTBase.Layers != 12 {
		t.Fatalf("ViT-Base = %+v", ViTBase)
	}
	if ViTLarge.Hidden != 1024 || ViTLarge.Heads != 16 || ViTLarge.Layers != 24 {
		t.Fatalf("ViT-Large = %+v", ViTLarge)
	}
	if ViTHuge.Hidden != 1280 || ViTHuge.Heads != 16 || ViTHuge.Layers != 32 {
		t.Fatalf("ViT-Huge = %+v", ViTHuge)
	}
}

func TestViTGraphShape(t *testing.T) {
	g := ViT(ViTBase)
	gemms := g.GEMMs()
	if len(gemms) != 6 {
		t.Fatalf("expected 6 GEMMs per layer, got %d", len(gemms))
	}
	// All dimensions must be tileable by 16.
	for _, j := range gemms {
		if j.M%16 != 0 || j.N%16 != 0 || j.K%16 != 0 {
			t.Fatalf("GEMM %s has non-tileable dims %dx%dx%d", j.Name, j.M, j.N, j.K)
		}
	}
	// QKV projection: T x 3D x D.
	if gemms[0].Name != "qkv" || gemms[0].N != 3*768 || gemms[0].K != 768 {
		t.Fatalf("qkv = %+v", gemms[0])
	}
	if len(g.CPUOps()) != 8 {
		t.Fatalf("expected 8 Non-GEMM ops per layer, got %d", len(g.CPUOps()))
	}
}

func TestAttentionBatchingPreservesWork(t *testing.T) {
	// Batched attn_scores must equal H x (T x T x dh) MACs.
	g := ViT(ViTBase)
	var scores GEMMJob
	for _, j := range g.GEMMs() {
		if j.Name == "attn_scores" {
			scores = j
		}
	}
	dh := 768 / 12
	want := uint64(12) * uint64(Tokens) * uint64(Tokens) * uint64(dh)
	if scores.MACs() != want {
		t.Fatalf("attn_scores MACs = %d, want %d", scores.MACs(), want)
	}
}

func TestModelOrderingBySize(t *testing.T) {
	b, l, h := ViT(ViTBase), ViT(ViTLarge), ViT(ViTHuge)
	if !(b.TotalMACs() < l.TotalMACs() && l.TotalMACs() < h.TotalMACs()) {
		t.Fatalf("MAC ordering violated: %d %d %d", b.TotalMACs(), l.TotalMACs(), h.TotalMACs())
	}
}

func TestSquare(t *testing.T) {
	j := Square(1024)
	if j.M != 1024 || j.N != 1024 || j.K != 1024 {
		t.Fatalf("Square = %+v", j)
	}
	if j.MACs() != 1<<30 {
		t.Fatalf("MACs = %d", j.MACs())
	}
	if j.BytesA() != 4<<20 || j.BytesC() != 4<<20 {
		t.Fatal("operand byte sizes wrong")
	}
}

func TestGEMMFractionHigh(t *testing.T) {
	// Transformer layers are GEMM-dominated in raw work.
	f := ViT(ViTBase).GEMMFraction()
	if f < 0.8 || f >= 1 {
		t.Fatalf("GEMM work fraction = %.3f, want 0.8..1", f)
	}
}
