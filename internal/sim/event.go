package sim

import (
	"fmt"
)

// Priority orders events that fire on the same tick. Lower values run
// first. The bands follow gem5's convention: component state updates
// run before default-priority work, stat dumps run last.
type Priority int

// Priority bands for same-tick ordering.
const (
	PriorityUpdate  Priority = -100 // internal state updates
	PriorityDefault Priority = 0    // normal component events
	PriorityStats   Priority = 100  // statistics collection
)

// Event is a scheduled closure. Events are created by EventQueue and
// may be rescheduled or cancelled while pending. An Event value must
// not be shared across queues.
//
// Events returned by Schedule/ScheduleAfter are recycled into the
// queue's freelist once they fire (or are descheduled) and may be
// handed out again by a later Schedule call. Holding such a handle
// past its dispatch is safe only if nothing else schedules in
// between; components that keep and reschedule an event long-term
// must create it with NewEvent, which never recycles.
type Event struct {
	fn      func()
	when    Tick
	prio    Priority
	seq     uint64
	index   int // heap index, -1 when not queued
	freeIdx int // freelist index, -1 when not in the freelist
	recycle bool
	name    string
}

// When reports the tick the event is scheduled for. Meaningless if the
// event is not pending.
func (e *Event) When() Tick { return e.when }

// Pending reports whether the event currently sits in its queue.
func (e *Event) Pending() bool { return e.index >= 0 }

// Name returns the diagnostic label assigned at creation.
func (e *Event) Name() string { return e.name }

// EventQueue is the deterministic discrete-event scheduler. It is not
// safe for concurrent use; the whole simulation runs on one queue in
// one goroutine.
//
// The pending set is a 4-ary min-heap ordered by (tick, priority,
// sequence). Four-way branching halves the tree depth of a binary
// heap and keeps each node's children in one cache line, and the sift
// loops below work directly on []*Event — no heap.Interface dynamic
// dispatch, no any-boxing per push/pop.
type EventQueue struct {
	heap    []*Event
	free    []*Event // recycled one-shot events
	now     Tick
	seq     uint64
	stopped bool
	// Executed counts events dispatched since creation; useful for
	// progress reporting and performance measurement.
	Executed uint64
}

// NewEventQueue returns an empty queue positioned at tick 0.
func NewEventQueue() *EventQueue {
	return &EventQueue{}
}

// Now reports the current simulation tick.
func (q *EventQueue) Now() Tick { return q.now }

// Len reports the number of pending events.
func (q *EventQueue) Len() int { return len(q.heap) }

// PeekTick reports the tick of the earliest pending event. The second
// result is false when the queue is empty.
func (q *EventQueue) PeekTick() (Tick, bool) {
	if len(q.heap) == 0 {
		return 0, false
	}
	return q.heap[0].when, true
}

// NewEvent creates a named, unscheduled event bound to this queue.
// NewEvent events are owned by the caller and are never recycled.
func (q *EventQueue) NewEvent(name string, fn func()) *Event {
	return &Event{fn: fn, index: -1, freeIdx: -1, name: name}
}

// Schedule inserts fn to run at absolute tick when, with default
// priority, and returns the event handle. The event comes from the
// queue's freelist when one is available, so steady-state scheduling
// allocates nothing.
func (q *EventQueue) Schedule(fn func(), when Tick) *Event {
	var e *Event
	if n := len(q.free); n > 0 {
		e = q.free[n-1]
		q.free[n-1] = nil
		q.free = q.free[:n-1]
		e.freeIdx = -1
		e.fn = fn
		e.name = ""
	} else {
		e = &Event{fn: fn, index: -1, freeIdx: -1}
	}
	e.recycle = true
	q.ScheduleEvent(e, when, PriorityDefault)
	return e
}

// ScheduleAfter inserts fn to run delay ticks after the current time.
func (q *EventQueue) ScheduleAfter(fn func(), delay Tick) *Event {
	return q.Schedule(fn, q.now+delay)
}

// ScheduleEvent inserts a previously created (or previously fired)
// event at an absolute tick with an explicit priority. Scheduling an
// already-pending event or scheduling into the past panics: both
// indicate a component protocol bug that must not be masked.
func (q *EventQueue) ScheduleEvent(e *Event, when Tick, prio Priority) {
	if e.Pending() {
		panic(fmt.Sprintf("sim: event %q already scheduled", e.name))
	}
	if when < q.now {
		panic(fmt.Sprintf("sim: event %q scheduled at %v before now %v", e.name, when, q.now))
	}
	if e.freeIdx >= 0 {
		// A recycled one-shot handle is being scheduled again; pull it
		// back out of the freelist so Schedule cannot hand it out twice.
		q.unfree(e)
	}
	e.when = when
	e.prio = prio
	e.seq = q.seq
	q.seq++
	q.heap = append(q.heap, e)
	q.siftUp(len(q.heap)-1, e)
}

// Deschedule removes a pending event from the queue. Descheduling a
// non-pending event is a no-op. A cancelled one-shot event returns to
// the freelist like a fired one.
func (q *EventQueue) Deschedule(e *Event) {
	if !e.Pending() {
		return
	}
	q.remove(e)
	if e.recycle {
		q.toFree(e)
	}
}

// Reschedule moves a pending event to a new tick (or schedules it if it
// was idle), keeping its priority.
func (q *EventQueue) Reschedule(e *Event, when Tick) {
	prio := e.prio
	if e.Pending() {
		q.remove(e)
	}
	q.ScheduleEvent(e, when, prio)
}

// Step dispatches the single next event. It reports false when the
// queue is empty.
func (q *EventQueue) Step() bool {
	h := q.heap
	n := len(h) - 1
	if n < 0 {
		return false
	}
	e := h[0]
	last := h[n]
	h[n] = nil
	q.heap = h[:n]
	if n > 0 {
		q.siftDown(0, last)
	}
	e.index = -1
	q.now = e.when
	q.Executed++
	e.fn()
	if e.recycle && e.index < 0 && e.freeIdx < 0 {
		q.toFree(e)
	}
	return true
}

// Run dispatches events until the queue drains or Stop is called.
func (q *EventQueue) Run() {
	q.stopped = false
	for !q.stopped && q.Step() {
	}
}

// RunUntil dispatches events with tick <= limit. Events beyond the
// limit stay queued; the current time advances to the limit whether
// the queue outlived it or drained before it, so repeated RunUntil
// calls observe monotonic time.
func (q *EventQueue) RunUntil(limit Tick) {
	q.stopped = false
	for !q.stopped {
		if len(q.heap) == 0 {
			break
		}
		if q.heap[0].when > limit {
			break
		}
		q.Step()
	}
	if q.now < limit {
		q.now = limit
	}
}

// Stop makes a Run/RunUntil in progress return after the current event.
func (q *EventQueue) Stop() { q.stopped = true }

// less reports whether a dispatches strictly before b: earlier tick
// first, then lower priority band, then FIFO by sequence number.
func eventLess(a, b *Event) bool {
	if a.when != b.when {
		return a.when < b.when
	}
	if a.prio != b.prio {
		return a.prio < b.prio
	}
	return a.seq < b.seq
}

// siftUp moves e (logically at index i, slot not yet written) toward
// the root until its parent dispatches no later than it does.
func (q *EventQueue) siftUp(i int, e *Event) {
	h := q.heap
	for i > 0 {
		pi := (i - 1) >> 2
		p := h[pi]
		if !eventLess(e, p) {
			break
		}
		h[i] = p
		p.index = i
		i = pi
	}
	h[i] = e
	e.index = i
}

// siftDown places e at index i, pushing it toward the leaves while any
// child dispatches earlier.
func (q *EventQueue) siftDown(i int, e *Event) {
	h := q.heap
	n := len(h)
	for {
		ci := i<<2 + 1
		if ci >= n {
			break
		}
		end := ci + 4
		if end > n {
			end = n
		}
		min := ci
		c := h[ci]
		for j := ci + 1; j < end; j++ {
			if eventLess(h[j], c) {
				min = j
				c = h[j]
			}
		}
		if !eventLess(c, e) {
			break
		}
		h[i] = c
		c.index = i
		i = min
	}
	h[i] = e
	e.index = i
}

// remove deletes e from an arbitrary heap position.
func (q *EventQueue) remove(e *Event) {
	h := q.heap
	i := e.index
	n := len(h) - 1
	last := h[n]
	h[n] = nil
	q.heap = h[:n]
	e.index = -1
	if i == n {
		return
	}
	q.siftDown(i, last)
	if last.index == i {
		q.siftUp(i, last)
	}
}

// toFree pushes a dead one-shot event onto the freelist.
func (q *EventQueue) toFree(e *Event) {
	e.freeIdx = len(q.free)
	q.free = append(q.free, e)
}

// unfree removes e from the freelist (swap with the tail).
func (q *EventQueue) unfree(e *Event) {
	n := len(q.free) - 1
	moved := q.free[n]
	q.free[e.freeIdx] = moved
	moved.freeIdx = e.freeIdx
	q.free[n] = nil
	q.free = q.free[:n]
	e.freeIdx = -1
}
