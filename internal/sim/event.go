package sim

import (
	"container/heap"
	"fmt"
)

// Priority orders events that fire on the same tick. Lower values run
// first. The bands follow gem5's convention: component state updates
// run before default-priority work, stat dumps run last.
type Priority int

// Priority bands for same-tick ordering.
const (
	PriorityUpdate  Priority = -100 // internal state updates
	PriorityDefault Priority = 0    // normal component events
	PriorityStats   Priority = 100  // statistics collection
)

// Event is a scheduled closure. Events are created by EventQueue and
// may be rescheduled or cancelled while pending. An Event value must
// not be shared across queues.
type Event struct {
	fn    func()
	when  Tick
	prio  Priority
	seq   uint64
	index int // heap index, -1 when not queued
	name  string
}

// When reports the tick the event is scheduled for. Meaningless if the
// event is not pending.
func (e *Event) When() Tick { return e.when }

// Pending reports whether the event currently sits in its queue.
func (e *Event) Pending() bool { return e.index >= 0 }

// Name returns the diagnostic label assigned at creation.
func (e *Event) Name() string { return e.name }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	a, b := h[i], h[j]
	if a.when != b.when {
		return a.when < b.when
	}
	if a.prio != b.prio {
		return a.prio < b.prio
	}
	return a.seq < b.seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// EventQueue is the deterministic discrete-event scheduler. It is not
// safe for concurrent use; the whole simulation runs on one queue in
// one goroutine.
type EventQueue struct {
	heap    eventHeap
	now     Tick
	seq     uint64
	stopped bool
	// Executed counts events dispatched since creation; useful for
	// progress reporting and performance measurement.
	Executed uint64
}

// NewEventQueue returns an empty queue positioned at tick 0.
func NewEventQueue() *EventQueue {
	return &EventQueue{}
}

// Now reports the current simulation tick.
func (q *EventQueue) Now() Tick { return q.now }

// Len reports the number of pending events.
func (q *EventQueue) Len() int { return len(q.heap) }

// NewEvent creates a named, unscheduled event bound to this queue.
func (q *EventQueue) NewEvent(name string, fn func()) *Event {
	return &Event{fn: fn, index: -1, name: name}
}

// Schedule inserts fn to run at absolute tick when, with default
// priority, and returns the event handle.
func (q *EventQueue) Schedule(fn func(), when Tick) *Event {
	e := q.NewEvent("", fn)
	q.ScheduleEvent(e, when, PriorityDefault)
	return e
}

// ScheduleAfter inserts fn to run delay ticks after the current time.
func (q *EventQueue) ScheduleAfter(fn func(), delay Tick) *Event {
	return q.Schedule(fn, q.now+delay)
}

// ScheduleEvent inserts a previously created (or previously fired)
// event at an absolute tick with an explicit priority. Scheduling an
// already-pending event or scheduling into the past panics: both
// indicate a component protocol bug that must not be masked.
func (q *EventQueue) ScheduleEvent(e *Event, when Tick, prio Priority) {
	if e.Pending() {
		panic(fmt.Sprintf("sim: event %q already scheduled", e.name))
	}
	if when < q.now {
		panic(fmt.Sprintf("sim: event %q scheduled at %v before now %v", e.name, when, q.now))
	}
	e.when = when
	e.prio = prio
	e.seq = q.seq
	q.seq++
	heap.Push(&q.heap, e)
}

// Deschedule removes a pending event from the queue. Descheduling a
// non-pending event is a no-op.
func (q *EventQueue) Deschedule(e *Event) {
	if !e.Pending() {
		return
	}
	heap.Remove(&q.heap, e.index)
}

// Reschedule moves a pending event to a new tick (or schedules it if it
// was idle), keeping its priority.
func (q *EventQueue) Reschedule(e *Event, when Tick) {
	prio := e.prio
	q.Deschedule(e)
	q.ScheduleEvent(e, when, prio)
}

// Step dispatches the single next event. It reports false when the
// queue is empty.
func (q *EventQueue) Step() bool {
	if len(q.heap) == 0 {
		return false
	}
	e := heap.Pop(&q.heap).(*Event)
	q.now = e.when
	q.Executed++
	e.fn()
	return true
}

// Run dispatches events until the queue drains or Stop is called.
func (q *EventQueue) Run() {
	q.stopped = false
	for !q.stopped && q.Step() {
	}
}

// RunUntil dispatches events with tick <= limit. Events beyond the
// limit stay queued; the current time advances to the limit if the
// queue outlived it, so repeated RunUntil calls observe monotonic time.
func (q *EventQueue) RunUntil(limit Tick) {
	q.stopped = false
	for !q.stopped {
		if len(q.heap) == 0 {
			break
		}
		if q.heap[0].when > limit {
			break
		}
		q.Step()
	}
	if q.now < limit && len(q.heap) > 0 {
		q.now = limit
	}
}

// Stop makes a Run/RunUntil in progress return after the current event.
func (q *EventQueue) Stop() { q.stopped = true }
