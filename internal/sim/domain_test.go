package sim

// Property tests for the conservative tick-domain coordinator: window
// execution must preserve each domain's sequential dispatch order,
// cross-domain delivery must be exact when the quantum respects the
// channel latency and clamp predictably when it does not, repeated
// runs of one workload must be bit-for-bit identical, and the Freeze
// rendezvous must be exclusive. The suite runs under -race, which
// patrols the barrier protocol's happens-before edges.

import (
	"math/rand"
	"sync/atomic"
	"testing"
)

// TestCrossDomainExactWithinQuantum: with quantum <= channel latency,
// a cross-domain message arrives exactly at its requested tick — the
// conservative scheme's lookahead guarantee.
func TestCrossDomainExactWithinQuantum(t *testing.T) {
	const lat = 10
	p := NewParallel(lat) // quantum == latency: still exact
	a := p.AddDomain("a")
	b := p.AddDomain("b")

	var arrivals []Tick
	const hops = 20
	var ping func(from, to *Domain, n int)
	ping = func(from, to *Domain, n int) {
		if n == 0 {
			return
		}
		from.Post(to, from.EQ.Now()+lat, func() {
			arrivals = append(arrivals, to.EQ.Now())
			ping(to, from, n-1)
		})
	}
	a.EQ.Schedule(func() { ping(a, b, hops) }, 5)
	p.Run()

	if len(arrivals) != hops {
		t.Fatalf("%d hops arrived, want %d", len(arrivals), hops)
	}
	for i, at := range arrivals {
		if want := Tick(5 + (i+1)*lat); at != want {
			t.Fatalf("hop %d arrived at %v, want %v (exact delivery)", i, at, want)
		}
	}
	if p.Windows == 0 {
		t.Fatal("no barrier windows executed")
	}
}

// TestCrossDomainClampBeyondQuantum pins the audited divergence mode:
// with quantum > latency, a message due inside the current window is
// clamped to the first tick of the next one.
func TestCrossDomainClampBeyondQuantum(t *testing.T) {
	const quantum = 100
	p := NewParallel(quantum)
	a := p.AddDomain("a")
	b := p.AddDomain("b")

	var got Tick
	a.EQ.Schedule(func() {
		a.Post(b, a.EQ.Now()+10, func() { got = b.EQ.Now() })
	}, 5)
	p.Run()

	// Window starts at the earliest event (5), horizon = 5+100-1 = 104;
	// the message wanted tick 15 and is clamped to 105.
	if want := Tick(105); got != want {
		t.Fatalf("clamped delivery at %v, want %v", got, want)
	}
}

// TestPostSameDomainSchedulesDirectly: a Post to the posting domain is
// an ordinary schedule, not an outbox round-trip.
func TestPostSameDomainSchedulesDirectly(t *testing.T) {
	p := NewParallel(50)
	a := p.AddDomain("a")
	var at Tick
	a.EQ.Schedule(func() {
		a.Post(a, a.EQ.Now()+3, func() { at = a.EQ.Now() })
	}, 7)
	p.Run()
	if at != 10 {
		t.Fatalf("same-domain post fired at %v, want 10", at)
	}
}

// domainWorkload drives a seeded random multi-domain workload and
// returns one firing log per domain (tick plus a workload-assigned
// id). Cross-domain sends use latency lat.
func domainWorkload(seed int64, quantum, lat Tick) (*Parallel, [][][2]uint64) {
	p := NewParallel(quantum)
	doms := []*Domain{p.AddDomain("d0"), p.AddDomain("d1"), p.AddDomain("d2")}
	logs := make([][][2]uint64, len(doms))

	// Per-domain private RNGs so concurrent windows never share state;
	// their seeds come from the shared seed for reproducibility.
	rngs := make([]*rand.Rand, len(doms))
	for i := range rngs {
		rngs[i] = rand.New(rand.NewSource(seed + int64(i)*7919))
	}

	var id uint64
	var spawn func(d *Domain, at Tick, depth int)
	spawn = func(d *Domain, at Tick, depth int) {
		id++
		my := id
		di := d.id
		d.EQ.Schedule(func() {
			logs[di] = append(logs[di], [2]uint64{uint64(d.EQ.Now()), my})
			if depth == 0 {
				return
			}
			r := rngs[di]
			if r.Intn(3) == 0 {
				// Cross-domain hop. The callee re-enters spawn in the
				// destination's context at delivery time, so the global
				// id counter is only touched at barriers or in-window
				// same-domain — but ids assigned at delivery differ per
				// interleaving. Use the log position for identity
				// instead: tag with the destination's own counter.
				dst := doms[(di+1+r.Intn(2))%3]
				d.Post(dst, d.EQ.Now()+lat+Tick(r.Intn(20)), func() {
					logs[dst.id] = append(logs[dst.id], [2]uint64{uint64(dst.EQ.Now()), 0})
				})
			} else {
				spawnLocal(d, d.EQ.Now()+Tick(1+r.Intn(15)), depth-1, rngs, logs)
			}
		}, at)
	}
	// Seed each domain with initial events before Run (single-threaded
	// setup phase).
	for i, d := range doms {
		for j := 0; j < 12; j++ {
			spawn(d, Tick(1+(i*5+j*11)%40), 4)
		}
	}
	return p, logs
}

// spawnLocal schedules a same-domain follow-up chain without touching
// any cross-domain state.
func spawnLocal(d *Domain, at Tick, depth int, rngs []*rand.Rand, logs [][][2]uint64) {
	d.EQ.Schedule(func() {
		logs[d.id] = append(logs[d.id], [2]uint64{uint64(d.EQ.Now()), 0})
		if depth > 0 && rngs[d.id].Intn(2) == 0 {
			spawnLocal(d, d.EQ.Now()+Tick(1+rngs[d.id].Intn(15)), depth-1, rngs, logs)
		}
	}, at)
}

// TestParallelRunDeterministic: the same seeded workload executed by
// two independent coordinators produces bit-identical per-domain
// firing logs — the run-to-run determinism the partitioned simulator
// promises for a fixed (N, quantum).
func TestParallelRunDeterministic(t *testing.T) {
	for _, quantum := range []Tick{1, 8, 64, 1000} {
		p1, logs1 := domainWorkload(42, quantum, 16)
		p1.Run()
		p2, logs2 := domainWorkload(42, quantum, 16)
		p2.Run()
		for d := range logs1 {
			if len(logs1[d]) != len(logs2[d]) {
				t.Fatalf("quantum %d: domain %d fired %d vs %d events across runs",
					quantum, d, len(logs1[d]), len(logs2[d]))
			}
			for i := range logs1[d] {
				if logs1[d][i] != logs2[d][i] {
					t.Fatalf("quantum %d: domain %d dispatch %d = %v vs %v",
						quantum, d, i, logs1[d][i], logs2[d][i])
				}
			}
		}
		if p1.Windows != p2.Windows {
			t.Fatalf("quantum %d: window counts differ: %d vs %d", quantum, p1.Windows, p2.Windows)
		}
	}
}

// TestParallelMatchesExactQuantumAcrossQuanta: all quanta at or below
// the minimum cross latency are equivalent — delivery never clamps, so
// the logs must match the smallest-quantum run exactly.
func TestParallelMatchesExactQuantumAcrossQuanta(t *testing.T) {
	const lat = 16
	pRef, ref := domainWorkload(99, 1, lat)
	pRef.Run()
	for _, quantum := range []Tick{2, 5, lat} {
		p, logs := domainWorkload(99, quantum, lat)
		p.Run()
		for d := range ref {
			if len(ref[d]) != len(logs[d]) {
				t.Fatalf("quantum %d: domain %d fired %d events, reference %d",
					quantum, d, len(logs[d]), len(ref[d]))
			}
			for i := range ref[d] {
				if ref[d][i] != logs[d][i] {
					t.Fatalf("quantum %d: domain %d dispatch %d = %v, reference %v",
						quantum, d, i, logs[d][i], ref[d][i])
				}
			}
		}
		if p.Windows >= pRef.Windows {
			t.Fatalf("quantum %d ran %d windows, not fewer than quantum 1's %d",
				quantum, p.Windows, pRef.Windows)
		}
	}
}

// TestFreezeExclusive: a frozen function must never overlap another
// domain mid-event. Every event and every frozen access flips a shared
// flag; overlap trips the atomic check (and -race would flag the
// memory accesses themselves).
func TestFreezeExclusive(t *testing.T) {
	p := NewParallel(4)
	doms := []*Domain{p.AddDomain("a"), p.AddDomain("b"), p.AddDomain("c")}

	var inFreeze atomic.Int32
	shared := 0 // mutated only under Freeze; -race checks the claim
	for _, d := range doms {
		d := d
		for i := 0; i < 30; i++ {
			at := Tick(1 + i*3 + d.id)
			d.EQ.Schedule(func() {
				if i%4 == 0 {
					p.Freeze(d, func() {
						if !inFreeze.CompareAndSwap(0, 1) {
							t.Error("two frozen sections overlap")
						}
						shared++
						inFreeze.Store(0)
					})
				}
			}, at)
		}
	}
	p.Run()
	if shared == 0 {
		t.Fatal("no frozen accesses ran")
	}
}

// TestFreezeInlineOutsideRun: before (or after) Run, Freeze executes
// the function inline — the single-threaded setup phase needs no
// rendezvous.
func TestFreezeInlineOutsideRun(t *testing.T) {
	p := NewParallel(4)
	d := p.AddDomain("a")
	ran := false
	p.Freeze(d, func() { ran = true })
	if !ran {
		t.Fatal("Freeze outside Run did not execute inline")
	}
}

// TestParallelRunResumable: a second Run picks up events scheduled
// after the first completed.
func TestParallelRunResumable(t *testing.T) {
	p := NewParallel(8)
	a := p.AddDomain("a")
	b := p.AddDomain("b")
	var first, second Tick
	a.EQ.Schedule(func() { first = a.EQ.Now() }, 3)
	p.Run()
	b.EQ.Schedule(func() { second = b.EQ.Now() }, b.EQ.Now()+5)
	p.Run()
	if first != 3 || second == 0 {
		t.Fatalf("resumed run: first=%v second=%v", first, second)
	}
}
