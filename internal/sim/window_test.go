package sim

// Freelist-accounting regression tests for windowed execution: when
// RunUntil returns with events still scheduled (the normal state of a
// tick-domain between barriers), pending pooled events must neither
// leak out of the accounting nor be recycled while still queued. The
// invariant checks below walk both the heap and the freelist by
// identity, so a double-recycle (one handle at two freelist slots, or
// queued and free at once) fails loudly instead of corrupting a later
// window.

import (
	"math/rand"
	"testing"
)

// checkAccounting verifies the heap/freelist bookkeeping invariants:
// every heap entry knows its index and is not simultaneously free,
// every freelist entry knows its slot and is not simultaneously
// queued, and no handle appears twice anywhere.
func checkAccounting(t *testing.T, q *EventQueue) {
	t.Helper()
	seen := make(map[*Event]string, len(q.heap)+len(q.free))
	for i, e := range q.heap {
		if e.index != i {
			t.Fatalf("heap[%d] has index %d", i, e.index)
		}
		if e.freeIdx >= 0 {
			t.Fatalf("heap[%d] also sits in the freelist at %d", i, e.freeIdx)
		}
		if where, dup := seen[e]; dup {
			t.Fatalf("event in heap[%d] already seen at %s", i, where)
		}
		seen[e] = "heap"
	}
	for i, e := range q.free {
		if e.freeIdx != i {
			t.Fatalf("free[%d] has freeIdx %d", i, e.freeIdx)
		}
		if e.index >= 0 {
			t.Fatalf("free[%d] is also pending at heap index %d", i, e.index)
		}
		if where, dup := seen[e]; dup {
			t.Fatalf("event in free[%d] already seen at %s", i, where)
		}
		seen[e] = "free"
	}
}

// TestRunUntilPendingEventsStayAccounted drives a random windowed
// workload — every window ends with events still pending — and checks
// the accounting after each window, after a drain to completion, and
// across a reuse cycle.
func TestRunUntilPendingEventsStayAccounted(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	q := NewEventQueue()
	fired := 0
	var schedule func(depth int)
	schedule = func(depth int) {
		q.Schedule(func() {
			fired++
			if depth > 0 && rng.Intn(2) == 0 {
				schedule(depth - 1)
			}
		}, q.Now()+Tick(1+rng.Intn(40)))
	}
	for i := 0; i < 64; i++ {
		schedule(3)
	}
	for limit := Tick(10); q.Len() > 0; limit += 10 {
		q.RunUntil(limit)
		checkAccounting(t, q)
		if q.Now() != limit {
			t.Fatalf("RunUntil(%d) left now at %d", limit, q.Now())
		}
	}
	if fired == 0 {
		t.Fatal("workload never fired")
	}
	// Everything recycled exactly once: schedule again from the
	// freelist and drain; the free count must return to its high-water
	// mark, not grow (leak) or shrink (lost handle).
	high := len(q.free)
	for i := 0; i < high; i++ {
		q.Schedule(func() {}, q.Now()+1)
	}
	checkAccounting(t, q)
	if len(q.free) != 0 {
		t.Fatalf("freelist holds %d after draining it via Schedule", len(q.free))
	}
	q.Run()
	checkAccounting(t, q)
	if len(q.free) != high {
		t.Fatalf("freelist holds %d after redispatch, want %d", len(q.free), high)
	}
}

// TestDescheduleAcrossWindows pins the interaction satellite-audited
// in this PR: descheduling and rescheduling pooled events around a
// RunUntil boundary must keep the accounting exact (a cancelled
// one-shot returns to the freelist; pulling it back out un-frees it).
func TestDescheduleAcrossWindows(t *testing.T) {
	q := NewEventQueue()
	a := q.Schedule(func() {}, 100)
	b := q.Schedule(func() {}, 200)
	q.RunUntil(50) // nothing fires; both still pending
	checkAccounting(t, q)

	q.Deschedule(a) // cancelled one-shot returns to the freelist
	checkAccounting(t, q)
	if got := q.Schedule(func() {}, 60); got != a {
		t.Fatalf("Schedule did not reuse the cancelled handle")
	}
	checkAccounting(t, q)

	q.Reschedule(b, 70)
	checkAccounting(t, q)
	q.Run()
	checkAccounting(t, q)
	if len(q.free) != 2 {
		t.Fatalf("freelist holds %d, want both handles back", len(q.free))
	}
}

// TestWindowedDispatchAllocFree extends the zero-alloc gate to
// windowed execution: repeated RunUntil windows with events pending
// across every boundary must not allocate.
func TestWindowedDispatchAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	q := NewEventQueue()
	fn := func() {}
	for i := 0; i < 64; i++ {
		q.Schedule(fn, q.Now()+Tick(i))
	}
	q.Run()

	allocs := testing.AllocsPerRun(100, func() {
		base := q.Now()
		for i := 0; i < 64; i++ {
			q.Schedule(fn, base+Tick(1+i))
		}
		// Four windows, each leaving later events pending.
		for w := Tick(16); w <= 64; w += 16 {
			q.RunUntil(base + w)
		}
	})
	if allocs != 0 {
		t.Fatalf("windowed dispatch allocated %.2f per run, want 0", allocs)
	}
}

// TestWindowedDispatchOrderMatchesRun pins that chopping a schedule
// into RunUntil windows cannot change the dispatch order: the same
// seeded workload replayed on a fresh queue under Run() fires
// identically.
func TestWindowedDispatchOrderMatchesRun(t *testing.T) {
	build := func() (*EventQueue, *[]Tick) {
		rng := rand.New(rand.NewSource(11))
		q := NewEventQueue()
		log := &[]Tick{}
		var schedule func(depth int)
		schedule = func(depth int) {
			q.Schedule(func() {
				*log = append(*log, q.Now())
				if depth > 0 && rng.Intn(2) == 0 {
					schedule(depth - 1)
				}
			}, q.Now()+Tick(1+rng.Intn(30)))
		}
		for i := 0; i < 48; i++ {
			schedule(4)
		}
		return q, log
	}

	qa, la := build()
	for qa.Len() > 0 {
		qa.RunUntil(qa.Now() + 7)
	}
	qb, lb := build()
	qb.Run()

	if len(*la) != len(*lb) {
		t.Fatalf("windowed run fired %d events, sequential %d", len(*la), len(*lb))
	}
	for i := range *la {
		if (*la)[i] != (*lb)[i] {
			t.Fatalf("dispatch %d at tick %v windowed vs %v sequential", i, (*la)[i], (*lb)[i])
		}
	}
}
