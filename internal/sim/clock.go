package sim

import "fmt"

// Clock describes a clock domain by its period in ticks. Components
// embed a Clock to convert between cycles and ticks and to align events
// to clock edges, as gem5's ClockedObject does.
type Clock struct {
	period Tick
}

// NewClock builds a clock domain from a frequency in MHz.
func NewClock(freqMHz float64) Clock {
	if freqMHz <= 0 {
		panic(fmt.Sprintf("sim: invalid clock frequency %vMHz", freqMHz))
	}
	return Clock{period: Tick(1e6/freqMHz + 0.5)}
}

// ClockFromPeriod builds a clock domain from an explicit period.
func ClockFromPeriod(period Tick) Clock {
	if period == 0 {
		panic("sim: zero clock period")
	}
	return Clock{period: period}
}

// Period returns the tick count of one cycle.
func (c Clock) Period() Tick { return c.period }

// FrequencyMHz returns the clock rate in MHz.
func (c Clock) FrequencyMHz() float64 { return 1e6 / float64(c.period) }

// Cycles converts a cycle count to ticks.
func (c Clock) Cycles(n uint64) Tick { return Tick(n) * c.period }

// ToCycles converts a duration in ticks to whole elapsed cycles.
func (c Clock) ToCycles(t Tick) uint64 { return uint64(t / c.period) }

// NextEdge returns the first clock edge at or after t.
func (c Clock) NextEdge(t Tick) Tick {
	rem := t % c.period
	if rem == 0 {
		return t
	}
	return t + c.period - rem
}

// EdgeAfter returns the clock edge n cycles after the first edge at or
// after t.
func (c Clock) EdgeAfter(t Tick, n uint64) Tick {
	return c.NextEdge(t) + Tick(n)*c.period
}
