package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEventQueueOrdersByTick(t *testing.T) {
	q := NewEventQueue()
	var got []int
	q.Schedule(func() { got = append(got, 3) }, 30)
	q.Schedule(func() { got = append(got, 1) }, 10)
	q.Schedule(func() { got = append(got, 2) }, 20)
	q.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if q.Now() != 30 {
		t.Fatalf("Now() = %v, want 30", q.Now())
	}
}

func TestEventQueueSameTickFIFO(t *testing.T) {
	q := NewEventQueue()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		q.Schedule(func() { got = append(got, i) }, 5)
	}
	q.Run()
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("same-tick order = %v, want insertion order", got)
		}
	}
}

func TestEventQueuePriority(t *testing.T) {
	q := NewEventQueue()
	var got []string
	e1 := q.NewEvent("stats", func() { got = append(got, "stats") })
	e2 := q.NewEvent("update", func() { got = append(got, "update") })
	e3 := q.NewEvent("default", func() { got = append(got, "default") })
	q.ScheduleEvent(e1, 7, PriorityStats)
	q.ScheduleEvent(e3, 7, PriorityDefault)
	q.ScheduleEvent(e2, 7, PriorityUpdate)
	q.Run()
	if got[0] != "update" || got[1] != "default" || got[2] != "stats" {
		t.Fatalf("priority order = %v", got)
	}
}

func TestScheduleDuringDispatch(t *testing.T) {
	q := NewEventQueue()
	var fired []Tick
	q.Schedule(func() {
		fired = append(fired, q.Now())
		q.ScheduleAfter(func() { fired = append(fired, q.Now()) }, 15)
	}, 10)
	q.Run()
	if len(fired) != 2 || fired[0] != 10 || fired[1] != 25 {
		t.Fatalf("fired = %v, want [10 25]", fired)
	}
}

func TestDeschedule(t *testing.T) {
	q := NewEventQueue()
	ran := false
	e := q.Schedule(func() { ran = true }, 10)
	if !e.Pending() {
		t.Fatal("event should be pending after Schedule")
	}
	q.Deschedule(e)
	if e.Pending() {
		t.Fatal("event should not be pending after Deschedule")
	}
	q.Run()
	if ran {
		t.Fatal("descheduled event ran")
	}
	// Descheduling again is a harmless no-op.
	q.Deschedule(e)
}

func TestReschedule(t *testing.T) {
	q := NewEventQueue()
	var at Tick
	e := q.Schedule(func() { at = q.Now() }, 10)
	q.Reschedule(e, 40)
	q.Run()
	if at != 40 {
		t.Fatalf("fired at %v, want 40", at)
	}
	// Rescheduling a fired (idle) event schedules it fresh.
	q.Reschedule(e, 50)
	q.Run()
	if at != 50 {
		t.Fatalf("refired at %v, want 50", at)
	}
}

func TestRunUntil(t *testing.T) {
	q := NewEventQueue()
	var got []Tick
	for _, tk := range []Tick{5, 10, 15, 20} {
		tk := tk
		q.Schedule(func() { got = append(got, tk) }, tk)
	}
	q.RunUntil(12)
	if len(got) != 2 {
		t.Fatalf("RunUntil(12) ran %d events, want 2", len(got))
	}
	if q.Now() != 12 {
		t.Fatalf("Now() = %v after RunUntil(12)", q.Now())
	}
	q.RunUntil(100)
	if len(got) != 4 {
		t.Fatalf("second RunUntil ran %d total, want 4", len(got))
	}
}

// RunUntil must advance time to the limit even when the queue drains
// before reaching it — repeated RunUntil calls observe monotonic time
// regardless of whether events remain.
func TestRunUntilDrainedAdvancesToLimit(t *testing.T) {
	q := NewEventQueue()
	fired := false
	q.Schedule(func() { fired = true }, 5)
	q.RunUntil(20)
	if !fired {
		t.Fatal("event at 5 did not fire")
	}
	if q.Now() != 20 {
		t.Fatalf("Now() = %v after RunUntil(20) drained the queue, want 20", q.Now())
	}
	// An empty queue must advance too.
	q.RunUntil(30)
	if q.Now() != 30 {
		t.Fatalf("Now() = %v after RunUntil(30) on an empty queue, want 30", q.Now())
	}
	// Scheduling at the post-drain time must not panic as "in the past".
	q.Schedule(func() {}, 30)
	q.Run()
}

func TestStopDuringRun(t *testing.T) {
	q := NewEventQueue()
	n := 0
	for i := 1; i <= 10; i++ {
		q.Schedule(func() {
			n++
			if n == 3 {
				q.Stop()
			}
		}, Tick(i))
	}
	q.Run()
	if n != 3 {
		t.Fatalf("ran %d events before stop, want 3", n)
	}
	q.Run() // resumes
	if n != 10 {
		t.Fatalf("ran %d events total, want 10", n)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	q := NewEventQueue()
	q.Schedule(func() {}, 100)
	q.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling into the past did not panic")
		}
	}()
	q.Schedule(func() {}, 50)
}

func TestDoubleSchedulePanics(t *testing.T) {
	q := NewEventQueue()
	e := q.Schedule(func() {}, 10)
	defer func() {
		if recover() == nil {
			t.Fatal("double-scheduling did not panic")
		}
	}()
	q.ScheduleEvent(e, 20, PriorityDefault)
}

// Property: dispatch order equals the stable sort of (tick, seq) no
// matter the insertion order.
func TestEventOrderProperty(t *testing.T) {
	f := func(seed int64, raw []uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		_ = rng
		q := NewEventQueue()
		type rec struct {
			tick Tick
			seq  int
		}
		var want []rec
		var got []rec
		for i, r := range raw {
			tick := Tick(r % 512)
			i := i
			want = append(want, rec{tick, i})
			q.Schedule(func() { got = append(got, rec{tick, i}) }, tick)
		}
		sort.SliceStable(want, func(a, b int) bool { return want[a].tick < want[b].tick })
		q.Run()
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTickString(t *testing.T) {
	cases := []struct {
		t    Tick
		want string
	}{
		{500, "500ps"},
		{1500, "1.500ns"},
		{2 * Microsecond, "2.000us"},
		{3 * Millisecond, "3.000ms"},
		{Second, "1.000s"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("Tick(%d).String() = %q, want %q", uint64(c.t), got, c.want)
		}
	}
}

func TestTickConversions(t *testing.T) {
	if TicksFromNanoseconds(1.5) != 1500 {
		t.Fatalf("TicksFromNanoseconds(1.5) = %v", TicksFromNanoseconds(1.5))
	}
	if TicksFromNanoseconds(-1) != 0 {
		t.Fatal("negative duration should clamp to zero")
	}
	if TicksFromSeconds(1e-9) != Nanosecond {
		t.Fatalf("TicksFromSeconds(1ns) = %v", TicksFromSeconds(1e-9))
	}
	if got := (2 * Nanosecond).Nanoseconds(); got != 2 {
		t.Fatalf("Nanoseconds() = %v", got)
	}
	if got := (3 * Second).Seconds(); got != 3 {
		t.Fatalf("Seconds() = %v", got)
	}
}

func TestClock(t *testing.T) {
	c := NewClock(1000) // 1 GHz -> 1ns period
	if c.Period() != Nanosecond {
		t.Fatalf("period = %v, want 1ns", c.Period())
	}
	if c.Cycles(5) != 5*Nanosecond {
		t.Fatalf("Cycles(5) = %v", c.Cycles(5))
	}
	if c.ToCycles(5500) != 5 {
		t.Fatalf("ToCycles(5.5ns) = %v, want 5", c.ToCycles(5500))
	}
	if c.NextEdge(1000) != 1000 {
		t.Fatal("NextEdge on an edge should be identity")
	}
	if c.NextEdge(1001) != 2000 {
		t.Fatalf("NextEdge(1001) = %v, want 2000", c.NextEdge(1001))
	}
	if c.EdgeAfter(1001, 2) != 4000 {
		t.Fatalf("EdgeAfter(1001, 2) = %v, want 4000", c.EdgeAfter(1001, 2))
	}
	if got := c.FrequencyMHz(); got != 1000 {
		t.Fatalf("FrequencyMHz = %v", got)
	}
}

func TestClockFromPeriod(t *testing.T) {
	c := ClockFromPeriod(250) // 4 GHz
	if c.FrequencyMHz() != 4000 {
		t.Fatalf("FrequencyMHz = %v, want 4000", c.FrequencyMHz())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("zero period should panic")
		}
	}()
	ClockFromPeriod(0)
}

func TestExecutedCounter(t *testing.T) {
	q := NewEventQueue()
	for i := 0; i < 7; i++ {
		q.Schedule(func() {}, Tick(i))
	}
	q.Run()
	if q.Executed != 7 {
		t.Fatalf("Executed = %d, want 7", q.Executed)
	}
}

func BenchmarkEventQueueThroughput(b *testing.B) {
	q := NewEventQueue()
	var fire func()
	n := 0
	fire = func() {
		n++
		if n < b.N {
			q.ScheduleAfter(fire, 100)
		}
	}
	q.ScheduleAfter(fire, 100)
	b.ResetTimer()
	q.Run()
}

func BenchmarkEventQueueDeepHeap(b *testing.B) {
	q := NewEventQueue()
	// 4096 pending events at all times, popping and pushing.
	for i := 0; i < 4096; i++ {
		var fn func()
		fn = func() { q.ScheduleAfter(fn, Tick(1000+i%97)) }
		q.ScheduleAfter(fn, Tick(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Step()
	}
}
