//go:build race

package sim

// The race detector instruments the allocator and sync.Pool fast
// paths, so allocation counts are not meaningful under -race.
const raceEnabled = true
