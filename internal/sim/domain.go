package sim

// Conservative parallel discrete-event simulation (the parti-gem5
// scheme): the system graph is partitioned into tick-domains, each
// owning a private EventQueue (with its own 4-ary heap and event
// freelist), and the domains execute concurrently in quantum-sized
// windows separated by barriers. Within a window a domain dispatches
// only its own events; anything that must reach another domain is
// appended to the sender's outbox and delivered by the coordinator at
// the barrier, clamped to the next window. The scheme is conservative
// because a window never runs past the earliest tick at which another
// domain could influence it: with the quantum at or below the minimum
// cross-domain channel latency, a message posted during window W can
// never be due before window W+1 starts, so clamping changes nothing
// and cross-domain timing is exact. Larger quanta trade that exactness
// for fewer barriers; the added delivery delay is bounded by
// quantum-latency per crossing and is pinned by the divergence audit.
//
// Determinism: for a fixed partition and quantum, runs are bit-for-bit
// repeatable. Each domain's queue dispatches in (tick, priority, FIFO)
// order as always, and the coordinator drains outboxes in fixed domain
// order at every barrier, so cross-domain messages obtain their
// destination sequence numbers deterministically.

import "sort"

// crossMsg is one cross-domain message: fn runs on the destination
// domain's queue at tick at (clamped to the start of the next window
// when at falls inside the current one).
type crossMsg struct {
	dst *Domain
	at  Tick
	fn  func()
}

// Domain is one tick-domain of a partitioned simulation: a private
// event queue plus the outbox of cross-domain messages produced during
// the current window. Components built into a domain must schedule
// exclusively on its queue; traffic for other domains goes through
// Post.
type Domain struct {
	id   int
	name string
	par  *Parallel
	// EQ is the domain's private event queue.
	EQ *EventQueue

	outbox []crossMsg
	cmd    chan Tick
}

// ID reports the domain's index in coordinator order (the outbox drain
// order at barriers).
func (d *Domain) ID() int { return d.id }

// Name reports the domain's diagnostic label.
func (d *Domain) Name() string { return d.name }

// Post sends fn to run in domain dst at absolute tick at. A message to
// the domain itself schedules directly; a cross-domain message is
// buffered in the outbox and delivered at the next barrier, no earlier
// than the first tick of the next window. Post must be called from d's
// own execution context (its window goroutine, or the single threaded
// setup phase before Run).
func (d *Domain) Post(dst *Domain, at Tick, fn func()) {
	if dst == d {
		if at < d.EQ.Now() {
			at = d.EQ.Now()
		}
		d.EQ.Schedule(fn, at)
		return
	}
	d.outbox = append(d.outbox, crossMsg{dst: dst, at: at, fn: fn})
}

// Parallel coordinates N tick-domains through the conservative
// window/barrier loop.
type Parallel struct {
	domains []*Domain
	quantum Tick

	doneCh   chan struct{}
	freezeCh chan *freezeReq
	active   bool

	// Windows counts barrier rounds executed across all Run calls —
	// the synchronization-overhead diagnostic.
	Windows uint64
}

// NewParallel creates an empty coordinator. The quantum is the window
// length in ticks; it should not exceed the minimum cross-domain
// channel latency if exact conservative delivery is wanted (larger
// values are legal and faster, with audited divergence). A quantum
// below 1 is raised to 1.
func NewParallel(quantum Tick) *Parallel {
	if quantum < 1 {
		quantum = 1
	}
	return &Parallel{
		quantum:  quantum,
		freezeCh: make(chan *freezeReq),
	}
}

// Quantum reports the window length in ticks.
func (p *Parallel) Quantum() Tick { return p.quantum }

// AddDomain creates the next tick-domain. All domains must be added
// before the first Run.
func (p *Parallel) AddDomain(name string) *Domain {
	d := &Domain{
		id:   len(p.domains),
		name: name,
		par:  p,
		EQ:   NewEventQueue(),
		cmd:  make(chan Tick, 1),
	}
	p.domains = append(p.domains, d)
	return d
}

// Domains lists the tick-domains in coordinator order.
func (p *Parallel) Domains() []*Domain { return p.domains }

// Executed sums dispatched events across every domain.
func (p *Parallel) Executed() uint64 {
	var n uint64
	for _, d := range p.domains {
		n += d.EQ.Executed
	}
	return n
}

// Now reports the furthest tick any domain has reached.
func (p *Parallel) Now() Tick {
	var t Tick
	for _, d := range p.domains {
		if n := d.EQ.Now(); n > t {
			t = n
		}
	}
	return t
}

// window runs one domain's event loop for the coordinator: execute the
// window handed over cmd, signal completion, repeat until cmd closes.
func (d *Domain) window() {
	for horizon := range d.cmd {
		d.EQ.RunUntil(horizon)
		d.par.doneCh <- struct{}{}
	}
}

// Run executes barrier windows until every domain's queue drains. It
// spawns one goroutine per domain for the duration of the call and
// blocks until the simulation completes, so the caller's goroutine is
// the only one touching the domains before and after. Run may be
// called repeatedly (later Runs pick up events scheduled since).
func (p *Parallel) Run() {
	p.doneCh = make(chan struct{}, len(p.domains))
	for _, d := range p.domains {
		d.cmd = make(chan Tick, 1)
		go d.window()
	}
	defer func() {
		for _, d := range p.domains {
			close(d.cmd)
		}
		p.active = false
	}()
	p.active = true

	for {
		earliest := MaxTick
		for _, d := range p.domains {
			if t, ok := d.EQ.PeekTick(); ok && t < earliest {
				earliest = t
			}
		}
		if earliest == MaxTick {
			return
		}
		horizon := earliest + p.quantum - 1
		if horizon < earliest { // tick overflow near MaxTick
			horizon = MaxTick
		}
		p.Windows++
		for _, d := range p.domains {
			d.cmd <- horizon
		}
		p.await()
		p.drain(horizon)
	}
}

// await blocks until every domain finished its window, serving Freeze
// rendezvous along the way: when every still-running domain is blocked
// in Freeze, the system is quiescent and exactly one request — the
// earliest by (requester tick, domain id) — runs exclusively. The
// granted domain then resumes its window, so the loop re-establishes
// quiescence before serving the next request; a domain mid-event can
// never overlap a frozen access.
func (p *Parallel) await() {
	waiting := len(p.domains)
	var pending []*freezeReq
	for waiting > 0 {
		if len(pending) == waiting {
			sort.Slice(pending, func(i, j int) bool {
				if pending[i].at != pending[j].at {
					return pending[i].at < pending[j].at
				}
				return pending[i].domain < pending[j].domain
			})
			r := pending[0]
			pending = pending[1:]
			r.grant <- struct{}{}
			<-r.done
			continue
		}
		select {
		case <-p.doneCh:
			waiting--
		case r := <-p.freezeCh:
			pending = append(pending, r)
		}
	}
}

// drain delivers every outbox message accumulated during the window,
// in domain order, clamped to the first tick after the horizon. Only
// the coordinator runs here; all domain goroutines are parked.
func (p *Parallel) drain(horizon Tick) {
	next := horizon + 1
	if next < horizon {
		next = MaxTick
	}
	for _, d := range p.domains {
		for i, m := range d.outbox {
			at := m.at
			if at < next {
				at = next
			}
			m.dst.EQ.Schedule(m.fn, at)
			d.outbox[i] = crossMsg{}
		}
		d.outbox = d.outbox[:0]
	}
}

// freezeReq is one Freeze rendezvous: the requesting domain blocks
// until the coordinator grants it exclusive access at a quiescent
// point.
type freezeReq struct {
	domain int
	at     Tick
	grant  chan struct{}
	done   chan struct{}
}

// Freeze runs fn with every other domain quiescent — parked at the
// window barrier or itself blocked in Freeze. It is the rendezvous for
// the rare cross-domain functional accesses (the driver staging
// device-memory buffers): fn may touch any domain's components because
// no domain is mid-event elsewhere. Called outside Run, fn simply runs
// inline (the setup phase is single-threaded). d must be the calling
// domain.
func (p *Parallel) Freeze(d *Domain, fn func()) {
	if !p.active {
		fn()
		return
	}
	r := &freezeReq{
		domain: d.id,
		at:     d.EQ.Now(),
		grant:  make(chan struct{}),
		done:   make(chan struct{}),
	}
	p.freezeCh <- r
	<-r.grant
	fn()
	r.done <- struct{}{}
}
