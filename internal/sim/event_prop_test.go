package sim

// Property tests for the event queue's ordering contract: events fire
// in nondecreasing tick order, same-tick events fire in priority
// order, and same-(tick, priority) events fire in insertion (FIFO)
// order. This is the invariant the parallel sweep engine's
// reproducibility guarantee rests on — two identical schedules must
// replay identically.

import (
	"math/rand"
	"testing"
)

// firing records one dispatched event for invariant checking.
type firing struct {
	tick Tick
	prio Priority
	seq  int // insertion order among all scheduled events
}

// randomSchedule drives a queue with a seeded random workload: a batch
// of initial events, each of which may schedule more events at or
// after the current tick, mixed with random deschedules and
// reschedules. It returns the firing order.
func randomSchedule(seed int64, initial, cap int) []firing {
	rng := rand.New(rand.NewSource(seed))
	q := NewEventQueue()
	prios := []Priority{PriorityUpdate, PriorityDefault, PriorityStats}

	var fired []firing
	seq := 0
	var pending []*Event
	scheduled := 0

	var schedule func(when Tick)
	schedule = func(when Tick) {
		mySeq := seq
		seq++
		scheduled++
		var e *Event
		e = q.NewEvent("prop", func() {
			fired = append(fired, firing{tick: q.Now(), prio: e.prio, seq: mySeq})
			// Fan out: sometimes schedule follow-up work strictly in
			// the future. (Same-tick insertion during dispatch would
			// legally fire out of priority order — an already-fired
			// event cannot be revisited — so the strict band invariant
			// below only covers events pending when their tick starts.)
			if scheduled < cap && rng.Intn(3) == 0 {
				schedule(q.Now() + Tick(1+rng.Intn(50)))
			}
		})
		q.ScheduleEvent(e, when, prios[rng.Intn(len(prios))])
		pending = append(pending, e)
	}

	for i := 0; i < initial; i++ {
		schedule(Tick(rng.Intn(100)))
	}
	// Random deschedules and reschedules before running.
	for i := 0; i < initial/4; i++ {
		e := pending[rng.Intn(len(pending))]
		if !e.Pending() {
			continue
		}
		if rng.Intn(2) == 0 {
			q.Deschedule(e)
		} else {
			q.Reschedule(e, e.When()+Tick(rng.Intn(20)))
		}
	}
	q.Run()
	return fired
}

func TestEventOrderingProperties(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		fired := randomSchedule(seed, 64, 256)
		if len(fired) == 0 {
			t.Fatalf("seed %d: nothing fired", seed)
		}
		for i := 1; i < len(fired); i++ {
			a, b := fired[i-1], fired[i]
			if b.tick < a.tick {
				t.Fatalf("seed %d: tick went backwards at %d: %v after %v", seed, i, b, a)
			}
			if b.tick == a.tick && b.prio < a.prio {
				t.Fatalf("seed %d: priority inversion at %d: %v after %v", seed, i, b, a)
			}
		}
	}
}

func TestSameTickFIFOStability(t *testing.T) {
	// All events on one tick, same priority: must fire in insertion
	// order no matter how the heap rebalances.
	for seed := int64(1); seed <= 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		q := NewEventQueue()
		n := 50 + rng.Intn(100)
		var got []int
		for i := 0; i < n; i++ {
			i := i
			q.Schedule(func() { got = append(got, i) }, 10)
		}
		q.Run()
		for i, v := range got {
			if v != i {
				t.Fatalf("seed %d: FIFO violated at %d: got %d", seed, i, v)
			}
		}
	}
}

func TestIdenticalSchedulesReplayIdentically(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		a := randomSchedule(seed, 48, 192)
		b := randomSchedule(seed, 48, 192)
		if len(a) != len(b) {
			t.Fatalf("seed %d: firing counts differ: %d vs %d", seed, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("seed %d: firing %d differs: %v vs %v", seed, i, a[i], b[i])
			}
		}
	}
}

func TestPriorityBandsWithinOneTick(t *testing.T) {
	q := NewEventQueue()
	var got []string
	add := func(label string, prio Priority) {
		e := q.NewEvent(label, func() { got = append(got, label) })
		q.ScheduleEvent(e, 5, prio)
	}
	// Insert in scrambled order; bands must still sort.
	add("stats1", PriorityStats)
	add("default1", PriorityDefault)
	add("update1", PriorityUpdate)
	add("stats2", PriorityStats)
	add("default2", PriorityDefault)
	add("update2", PriorityUpdate)
	q.Run()
	want := []string{"update1", "update2", "default1", "default2", "stats1", "stats2"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("band order wrong: got %v want %v", got, want)
		}
	}
}
