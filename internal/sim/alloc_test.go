package sim

import "testing"

// Steady-state scheduling must be allocation-free: one-shot events
// come from the queue's freelist and return to it after dispatch, and
// the heap slice reaches a stable capacity. This is the regression
// gate for the zero-alloc event loop.
func TestScheduleDispatchAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	q := NewEventQueue()
	fn := func() {}
	// Warm the freelist and the heap slice.
	for i := 0; i < 64; i++ {
		q.Schedule(fn, q.Now()+1)
	}
	q.Run()

	const inner = 128
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < inner; i++ {
			q.Schedule(fn, q.Now()+1)
		}
		q.Run()
	})
	if allocs != 0 {
		t.Fatalf("schedule->dispatch cycle allocated %.2f per run, want 0", allocs)
	}
}

// A persistent NewEvent handle that reschedules itself must also run
// allocation-free: ScheduleEvent and Reschedule touch only the heap.
func TestRescheduleCycleAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	q := NewEventQueue()
	n := 0
	var e *Event
	e = q.NewEvent("tick", func() {
		n++
		if n%2 == 0 {
			q.ScheduleEvent(e, q.Now()+3, PriorityUpdate)
		}
	})
	q.ScheduleEvent(e, 1, PriorityDefault)
	q.Run()

	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 64; i++ {
			q.ScheduleEvent(e, q.Now()+1, PriorityDefault)
			q.Reschedule(e, q.Now()+2)
			q.Run()
		}
	})
	if allocs != 0 {
		t.Fatalf("schedule->reschedule->dispatch cycle allocated %.2f per run, want 0", allocs)
	}
}

// A recycled one-shot handle that is rescheduled after firing must be
// pulled back out of the freelist, never handed out twice.
func TestRecycledHandleReschedule(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	q := NewEventQueue()
	n := 0
	e := q.Schedule(func() { n++ }, 5)
	q.Run()
	if n != 1 {
		t.Fatalf("fired %d times, want 1", n)
	}
	// e now sits in the freelist; rescheduling it must reclaim it.
	q.Reschedule(e, 10)
	e2 := q.Schedule(func() {}, 11)
	if e2 == e {
		t.Fatal("freelist handed out an event that was rescheduled")
	}
	q.Run()
	if n != 2 {
		t.Fatalf("fired %d times after reschedule, want 2", n)
	}
}

// Descheduling a one-shot event recycles it; the handle must then be
// reusable by the next Schedule call.
func TestDescheduleRecycles(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	q := NewEventQueue()
	e := q.Schedule(func() { t.Fatal("cancelled event fired") }, 5)
	q.Deschedule(e)
	e2 := q.Schedule(func() {}, 6)
	if e2 != e {
		t.Fatal("descheduled one-shot was not recycled")
	}
	q.Run()
}
