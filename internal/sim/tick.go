// Package sim provides the discrete-event simulation kernel that every
// AcceSys component runs on: a picosecond tick domain, a deterministic
// event queue, and clock-domain helpers.
//
// The kernel mirrors gem5's core abstractions. All simulated components
// are single-threaded state machines that schedule closures on one
// EventQueue; determinism comes from ordering events by
// (tick, priority, insertion sequence). No goroutines take part in the
// simulated timing path.
package sim

import "fmt"

// Tick is the simulation time unit: one picosecond, as in gem5.
type Tick uint64

// Common durations expressed in ticks.
const (
	Picosecond  Tick = 1
	Nanosecond  Tick = 1000 * Picosecond
	Microsecond Tick = 1000 * Nanosecond
	Millisecond Tick = 1000 * Microsecond
	Second      Tick = 1000 * Millisecond
)

// MaxTick is the largest representable simulation time.
const MaxTick = Tick(^uint64(0))

// String renders a tick count using the largest unit that keeps three
// significant integer digits, e.g. "1.500us".
func (t Tick) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", float64(t)/float64(Second))
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fus", float64(t)/float64(Microsecond))
	case t >= Nanosecond:
		return fmt.Sprintf("%.3fns", float64(t)/float64(Nanosecond))
	default:
		return fmt.Sprintf("%dps", uint64(t))
	}
}

// Nanoseconds converts the tick count to a float64 nanosecond value.
func (t Tick) Nanoseconds() float64 { return float64(t) / float64(Nanosecond) }

// Seconds converts the tick count to a float64 second value.
func (t Tick) Seconds() float64 { return float64(t) / float64(Second) }

// TicksFromNanoseconds converts a floating nanosecond duration to ticks,
// rounding to the nearest picosecond.
func TicksFromNanoseconds(ns float64) Tick {
	if ns <= 0 {
		return 0
	}
	return Tick(ns*float64(Nanosecond) + 0.5)
}

// TicksFromSeconds converts a floating second duration to ticks.
func TicksFromSeconds(s float64) Tick {
	if s <= 0 {
		return 0
	}
	return Tick(s*float64(Second) + 0.5)
}
