package mem

import "fmt"

// Requestor is implemented by components that own RequestPorts (CPU
// side of a connection). The port that received the interaction is
// passed explicitly so one component can own many ports.
type Requestor interface {
	// RecvTimingResp delivers a response. Returning false tells the
	// responder the requester is busy; the requester must later call
	// RequestPort.SendRetryResp to re-open the channel.
	RecvTimingResp(port *RequestPort, pkt *Packet) bool
	// RecvRetryReq signals that a previously refused request may be
	// resent now.
	RecvRetryReq(port *RequestPort)
}

// Responder is implemented by components that own ResponsePorts
// (memory side of a connection).
type Responder interface {
	// RecvTimingReq delivers a request. Returning false tells the
	// requester the responder is busy; the responder must later call
	// ResponsePort.SendRetryReq to re-open the channel.
	RecvTimingReq(port *ResponsePort, pkt *Packet) bool
	// RecvRetryResp signals that a previously refused response may be
	// resent now.
	RecvRetryResp(port *ResponsePort)
}

// RequestPort is the initiating end of a connection.
type RequestPort struct {
	name  string
	owner Requestor
	peer  *ResponsePort
}

// ResponsePort is the serving end of a connection.
type ResponsePort struct {
	name  string
	owner Responder
	peer  *RequestPort
}

// NewRequestPort creates an unbound request port.
func NewRequestPort(name string, owner Requestor) *RequestPort {
	return &RequestPort{name: name, owner: owner}
}

// NewResponsePort creates an unbound response port.
func NewResponsePort(name string, owner Responder) *ResponsePort {
	return &ResponsePort{name: name, owner: owner}
}

// Bind connects a request port to a response port. Both must be
// unbound.
func Bind(rq *RequestPort, rs *ResponsePort) {
	if rq.peer != nil || rs.peer != nil {
		panic(fmt.Sprintf("mem: rebinding port %q<->%q", rq.name, rs.name))
	}
	rq.peer = rs
	rs.peer = rq
}

// Name returns the port's diagnostic name.
func (p *RequestPort) Name() string { return p.name }

// Peer returns the bound response port, or nil.
func (p *RequestPort) Peer() *ResponsePort { return p.peer }

// Owner returns the owning component.
func (p *RequestPort) Owner() Requestor { return p.owner }

// SendTimingReq offers a request to the peer responder. A false return
// means "busy": the owner must hold the packet and wait for
// RecvRetryReq before trying again (it may not send other requests on
// this port in between, matching gem5 semantics).
func (p *RequestPort) SendTimingReq(pkt *Packet) bool {
	if p.peer == nil {
		panic(fmt.Sprintf("mem: SendTimingReq on unbound port %q", p.name))
	}
	return p.peer.owner.RecvTimingReq(p.peer, pkt)
}

// SendRetryResp tells the peer responder that the requester can accept
// a response again after refusing one.
func (p *RequestPort) SendRetryResp() {
	if p.peer == nil {
		panic(fmt.Sprintf("mem: SendRetryResp on unbound port %q", p.name))
	}
	p.peer.owner.RecvRetryResp(p.peer)
}

// Name returns the port's diagnostic name.
func (p *ResponsePort) Name() string { return p.name }

// Peer returns the bound request port, or nil.
func (p *ResponsePort) Peer() *RequestPort { return p.peer }

// Owner returns the owning component.
func (p *ResponsePort) Owner() Responder { return p.owner }

// SendTimingResp offers a response to the peer requester. A false
// return means the requester is busy; the owner must hold the packet
// and wait for RecvRetryResp.
func (p *ResponsePort) SendTimingResp(pkt *Packet) bool {
	if p.peer == nil {
		panic(fmt.Sprintf("mem: SendTimingResp on unbound port %q", p.name))
	}
	return p.peer.owner.RecvTimingResp(p.peer, pkt)
}

// SendRetryReq tells the peer requester that the responder can accept
// a request again after refusing one.
func (p *ResponsePort) SendRetryReq() {
	if p.peer == nil {
		panic(fmt.Sprintf("mem: SendRetryReq on unbound port %q", p.name))
	}
	p.peer.owner.RecvRetryReq(p.peer)
}

// Functional is the debug/driver backdoor implemented by memories and
// memory-like components: contents are read or written instantly with
// no timing effects. The kernel driver uses it to build page tables and
// to stage DMA buffers, and tests use it to verify end-to-end data.
type Functional interface {
	ReadFunctional(addr uint64, buf []byte)
	WriteFunctional(addr uint64, data []byte)
}
