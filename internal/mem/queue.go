package mem

import (
	"accesys/internal/sim"
)

// PacketQueue drives packets out of a port in tick order while honoring
// the retry protocol, like gem5's PacketQueue/QueuedPort. The owner
// schedules packets with a readiness tick (folding its internal
// latency into the queue); the queue sends them in order, blocks when
// the peer refuses, and resumes when the owner forwards the retry
// signal via RetryReceived.
type PacketQueue struct {
	eq   *sim.EventQueue
	send func(*Packet) bool
	// entries[head:] is the live queue. Popping advances head instead
	// of re-slicing the front away, so the backing array's capacity is
	// reused forever — the queue allocates nothing in steady state.
	entries []queuedPacket
	head    int
	event   *sim.Event
	blocked bool

	// OnDrain, when non-nil, runs after each successful send. Owners
	// use it to wake requestors that were refused for lack of space.
	OnDrain func()
}

type queuedPacket struct {
	pkt   *Packet
	ready sim.Tick
}

// NewPacketQueue builds a queue that emits packets through send, which
// is typically port.SendTimingReq or port.SendTimingResp.
func NewPacketQueue(name string, eq *sim.EventQueue, send func(*Packet) bool) *PacketQueue {
	q := &PacketQueue{eq: eq, send: send}
	q.event = eq.NewEvent(name+".send", q.trySend)
	return q
}

// Len reports the number of packets waiting to be sent.
func (q *PacketQueue) Len() int { return len(q.entries) - q.head }

// Empty reports whether nothing is queued.
func (q *PacketQueue) Empty() bool { return q.head == len(q.entries) }

// NextReady returns the readiness tick of the head packet, or MaxTick
// when empty.
func (q *PacketQueue) NextReady() sim.Tick {
	if q.Empty() {
		return sim.MaxTick
	}
	return q.entries[q.head].ready
}

// Schedule enqueues pkt to be sent no earlier than when. Packets keep
// FIFO order among equal readiness ticks; a packet scheduled earlier
// than queued predecessors is inserted in tick order (ordered
// insertion, matching gem5's insert-sorted packet queue).
func (q *PacketQueue) Schedule(pkt *Packet, when sim.Tick) {
	if when < q.eq.Now() {
		when = q.eq.Now()
	}
	i := len(q.entries)
	for i > q.head && q.entries[i-1].ready > when {
		i--
	}
	q.entries = append(q.entries, queuedPacket{})
	copy(q.entries[i+1:], q.entries[i:])
	q.entries[i] = queuedPacket{pkt: pkt, ready: when}
	q.arm()
}

// pop removes the head entry, reclaiming the consumed front of the
// backing array once it dominates the slice.
func (q *PacketQueue) pop() {
	q.entries[q.head] = queuedPacket{}
	q.head++
	if q.head == len(q.entries) {
		q.entries = q.entries[:0]
		q.head = 0
	} else if q.head >= 32 && q.head*2 >= len(q.entries) {
		n := copy(q.entries, q.entries[q.head:])
		clear(q.entries[n:])
		q.entries = q.entries[:n]
		q.head = 0
	}
}

func (q *PacketQueue) arm() {
	if q.blocked || q.Empty() {
		return
	}
	ready := q.entries[q.head].ready
	// arm can run reentrantly (a send chain scheduling back into this
	// queue) while the head still awaits its pop; never arm in the past.
	if now := q.eq.Now(); ready < now {
		ready = now
	}
	if q.event.Pending() {
		if q.event.When() <= ready {
			return
		}
		q.eq.Deschedule(q.event)
	}
	q.eq.ScheduleEvent(q.event, ready, sim.PriorityDefault)
}

func (q *PacketQueue) trySend() {
	for !q.Empty() && !q.blocked {
		head := q.entries[q.head]
		if head.ready > q.eq.Now() {
			q.arm()
			return
		}
		if !q.send(head.pkt) {
			q.blocked = true
			return
		}
		q.pop()
		if q.OnDrain != nil {
			q.OnDrain()
		}
	}
}

// RetryReceived must be called by the owner when the peer signals a
// retry (RecvRetryReq / RecvRetryResp for this queue's port).
func (q *PacketQueue) RetryReceived() {
	if !q.blocked {
		return
	}
	q.blocked = false
	if !q.Empty() {
		q.eq.Reschedule(q.event, q.eq.Now())
	}
}

// Blocked reports whether the queue is stalled waiting for a retry.
func (q *PacketQueue) Blocked() bool { return q.blocked }
