package mem

// CrossBind protocol tests: the cross-domain channel must preserve
// FIFO order in both directions, bound in-flight transactions by its
// credit depth, and interoperate with the retry protocol on both
// sides (a refusing responder stalls the channel without losing
// packets; a refusing requestor stalls the response path the same
// way). The harnesses run under a real Parallel coordinator so every
// crossing takes the production outbox/barrier path.

import (
	"testing"

	"accesys/internal/sim"
)

// xbSender drives n requests through a RequestPort under the retry
// protocol and records responses in arrival order.
type xbSender struct {
	port    *RequestPort
	todo    []*Packet
	stalled bool
	got     []uint64 // response packet IDs in arrival order

	// refuseFirst makes the sender refuse the first response delivery
	// to exercise the channel's response-retry path.
	refuseFirst bool
	refused     bool
	eq          *sim.EventQueue
}

func (s *xbSender) RecvTimingResp(_ *RequestPort, pkt *Packet) bool {
	if s.refuseFirst && !s.refused {
		s.refused = true
		// Re-open the response channel a few ticks later.
		s.eq.ScheduleAfter(func() { s.port.SendRetryResp() }, 3)
		return false
	}
	s.got = append(s.got, pkt.ID)
	return true
}

func (s *xbSender) RecvRetryReq(_ *RequestPort) {
	s.stalled = false
	s.push()
}

func (s *xbSender) push() {
	for !s.stalled && len(s.todo) > 0 {
		if !s.port.SendTimingReq(s.todo[0]) {
			s.stalled = true
			return
		}
		s.todo = s.todo[1:]
	}
}

// xbResponder accepts requests (optionally refusing every refuseNth
// first offer) and returns each response delay ticks later, itself
// honoring response-side retries.
type xbResponder struct {
	port    *ResponsePort
	eq      *sim.EventQueue
	delay   sim.Tick
	seen    []uint64 // request packet IDs in arrival order
	pending []*Packet
	stalled bool

	refuseNth int
	offers    int

	// deaf makes the responder refuse everything and never retry —
	// the credit-exhaustion harness.
	deaf bool
}

func (r *xbResponder) RecvTimingReq(_ *ResponsePort, pkt *Packet) bool {
	if r.deaf {
		return false
	}
	r.offers++
	if r.refuseNth > 0 && r.offers%r.refuseNth == 0 {
		r.eq.ScheduleAfter(func() { r.port.SendRetryReq() }, 2)
		return false
	}
	r.seen = append(r.seen, pkt.ID)
	r.eq.ScheduleAfter(func() {
		pkt.MakeResponse()
		r.pending = append(r.pending, pkt)
		r.pushResps()
	}, r.delay)
	return true
}

func (r *xbResponder) RecvRetryResp(_ *ResponsePort) {
	r.stalled = false
	r.pushResps()
}

func (r *xbResponder) pushResps() {
	for !r.stalled && len(r.pending) > 0 {
		if !r.port.SendTimingResp(r.pending[0]) {
			r.stalled = true
			return
		}
		r.pending = r.pending[1:]
	}
}

// crossRig wires a sender in one domain to a responder in another
// through CrossBind and returns everything the tests poke at.
func crossRig(lat sim.Tick, depth, npkts int) (*sim.Parallel, *xbSender, *xbResponder, []uint64) {
	p := sim.NewParallel(lat)
	src := p.AddDomain("src")
	dst := p.AddDomain("dst")

	snd := &xbSender{eq: src.EQ}
	snd.port = NewRequestPort("t.rq", snd)
	rsp := &xbResponder{eq: dst.EQ, delay: 4}
	rsp.port = NewResponsePort("t.rs", rsp)
	CrossBind(src, dst, snd.port, rsp.port, lat, depth)

	ids := make([]uint64, npkts)
	for i := range ids {
		pkt := NewRead(uint64(i)*64, 64)
		ids[i] = pkt.ID
		snd.todo = append(snd.todo, pkt)
	}
	src.EQ.Schedule(func() { snd.push() }, 1)
	return p, snd, rsp, ids
}

// TestCrossBindDeliversAllInFIFOOrder: every request crosses, every
// response returns, both in issue order, with more packets than the
// channel has credits.
func TestCrossBindDeliversAllInFIFOOrder(t *testing.T) {
	const depth, n = 4, 32
	p, snd, rsp, ids := crossRig(10, depth, n)
	p.Run()

	if len(rsp.seen) != n || len(snd.got) != n {
		t.Fatalf("responder saw %d, sender got %d, want %d each", len(rsp.seen), len(snd.got), n)
	}
	for i := range ids {
		if rsp.seen[i] != ids[i] {
			t.Fatalf("request %d arrived as id %d, want %d (FIFO)", i, rsp.seen[i], ids[i])
		}
		if snd.got[i] != ids[i] {
			t.Fatalf("response %d arrived as id %d, want %d (FIFO)", i, snd.got[i], ids[i])
		}
	}
}

// TestCrossBindBoundsInFlightByDepth: a responder that refuses forever
// strands at most depth requests in the channel; the sender stalls
// with the rest unsent, and nothing is lost or duplicated.
func TestCrossBindBoundsInFlightByDepth(t *testing.T) {
	const depth, n = 4, 20
	p, snd, rsp, _ := crossRig(10, depth, n)
	rsp.deaf = true
	p.Run()

	if sent := n - len(snd.todo); sent != depth {
		t.Fatalf("sender pushed %d packets into a depth-%d channel", sent, depth)
	}
	if !snd.stalled {
		t.Fatal("sender is not stalled waiting for a credit retry")
	}
	if len(rsp.seen) != 0 {
		t.Fatalf("deaf responder accepted %d requests", len(rsp.seen))
	}
}

// TestCrossBindSurvivesResponderRetries: a responder that refuses
// every 3rd offer (with a later retry) still receives everything in
// order.
func TestCrossBindSurvivesResponderRetries(t *testing.T) {
	const depth, n = 4, 24
	p, snd, rsp, ids := crossRig(10, depth, n)
	rsp.refuseNth = 3
	p.Run()

	if len(rsp.seen) != n || len(snd.got) != n {
		t.Fatalf("responder saw %d, sender got %d, want %d each", len(rsp.seen), len(snd.got), n)
	}
	for i := range ids {
		if rsp.seen[i] != ids[i] || snd.got[i] != ids[i] {
			t.Fatalf("order broken at %d under responder retries", i)
		}
	}
}

// TestCrossBindSurvivesRequestorRefusingResponse: the requestor
// refusing a response delivery stalls the return path until its
// SendRetryResp, losing nothing.
func TestCrossBindSurvivesRequestorRefusingResponse(t *testing.T) {
	const depth, n = 4, 12
	p, snd, _, ids := crossRig(10, depth, n)
	snd.refuseFirst = true
	p.Run()

	if len(snd.got) != n {
		t.Fatalf("sender got %d responses, want %d", len(snd.got), n)
	}
	for i := range ids {
		if snd.got[i] != ids[i] {
			t.Fatalf("response order broken at %d after a refused delivery", i)
		}
	}
	if !snd.refused {
		t.Fatal("harness never exercised the refusal")
	}
}

var _ Requestor = (*xbSender)(nil)
var _ Responder = (*xbResponder)(nil)
