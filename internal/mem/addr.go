package mem

import (
	"fmt"
	"sort"
)

// AddrRange is a half-open physical address interval [Start, End).
type AddrRange struct {
	Start uint64
	End   uint64
}

// Range builds an AddrRange from a base and size.
func Range(start, size uint64) AddrRange {
	return AddrRange{Start: start, End: start + size}
}

// Size returns the byte length of the range.
func (r AddrRange) Size() uint64 { return r.End - r.Start }

// Contains reports whether addr falls inside the range.
func (r AddrRange) Contains(addr uint64) bool {
	return addr >= r.Start && addr < r.End
}

// ContainsRange reports whether the entire other range lies inside r.
func (r AddrRange) ContainsRange(o AddrRange) bool {
	return o.Start >= r.Start && o.End <= r.End
}

// Overlaps reports whether the two ranges share any address.
func (r AddrRange) Overlaps(o AddrRange) bool {
	return r.Start < o.End && o.Start < r.End
}

// Offset returns addr relative to the range base. It panics when addr
// is outside the range: a routing bug that must not be masked.
func (r AddrRange) Offset(addr uint64) uint64 {
	if !r.Contains(addr) {
		panic(fmt.Sprintf("mem: address %#x outside range %v", addr, r))
	}
	return addr - r.Start
}

// String implements fmt.Stringer.
func (r AddrRange) String() string {
	return fmt.Sprintf("[%#x,%#x)", r.Start, r.End)
}

// AddrMap routes addresses to integer targets (port indices). Entries
// must not overlap; lookups use binary search.
type AddrMap struct {
	entries []mapEntry
	sorted  bool
}

type mapEntry struct {
	r      AddrRange
	target int
}

// Add registers a range with its target. It panics if the new range
// overlaps an existing entry.
func (m *AddrMap) Add(r AddrRange, target int) {
	if r.Size() == 0 {
		panic(fmt.Sprintf("mem: empty range %v in address map", r))
	}
	for _, e := range m.entries {
		if e.r.Overlaps(r) {
			panic(fmt.Sprintf("mem: range %v overlaps %v", r, e.r))
		}
	}
	m.entries = append(m.entries, mapEntry{r: r, target: target})
	m.sorted = false
}

func (m *AddrMap) sort() {
	if m.sorted {
		return
	}
	sort.Slice(m.entries, func(i, j int) bool {
		return m.entries[i].r.Start < m.entries[j].r.Start
	})
	m.sorted = true
}

// Find returns the target whose range contains addr. The boolean is
// false when no range matches.
func (m *AddrMap) Find(addr uint64) (int, bool) {
	m.sort()
	i := sort.Search(len(m.entries), func(i int) bool {
		return m.entries[i].r.End > addr
	})
	if i < len(m.entries) && m.entries[i].r.Contains(addr) {
		return m.entries[i].target, true
	}
	return 0, false
}

// FindRange returns the full entry containing addr.
func (m *AddrMap) FindRange(addr uint64) (AddrRange, int, bool) {
	m.sort()
	i := sort.Search(len(m.entries), func(i int) bool {
		return m.entries[i].r.End > addr
	})
	if i < len(m.entries) && m.entries[i].r.Contains(addr) {
		return m.entries[i].r, m.entries[i].target, true
	}
	return AddrRange{}, 0, false
}

// Ranges returns all registered ranges in ascending order.
func (m *AddrMap) Ranges() []AddrRange {
	m.sort()
	out := make([]AddrRange, len(m.entries))
	for i, e := range m.entries {
		out[i] = e.r
	}
	return out
}

// AlignDown rounds addr down to a multiple of align (a power of two).
func AlignDown(addr uint64, align uint64) uint64 { return addr &^ (align - 1) }

// AlignUp rounds addr up to a multiple of align (a power of two).
func AlignUp(addr uint64, align uint64) uint64 {
	return (addr + align - 1) &^ (align - 1)
}

// IsPow2 reports whether v is a positive power of two.
func IsPow2(v uint64) bool { return v != 0 && v&(v-1) == 0 }

// Log2 returns floor(log2(v)) for v > 0.
func Log2(v uint64) uint {
	var n uint
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}
