package mem

import (
	"bytes"
	"testing"
	"testing/quick"

	"accesys/internal/sim"
)

func TestStorageReadWrite(t *testing.T) {
	s := NewStorage(1 << 20)
	data := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	s.Write(0x1000, data)
	got := make([]byte, 8)
	s.Read(0x1000, got)
	if !bytes.Equal(got, data) {
		t.Fatalf("got %v, want %v", got, data)
	}
}

func TestStorageZeroFill(t *testing.T) {
	s := NewStorage(1 << 20)
	got := make([]byte, 16)
	for i := range got {
		got[i] = 0xff
	}
	s.Read(0x8000, got)
	for _, b := range got {
		if b != 0 {
			t.Fatal("untouched storage should read as zero")
		}
	}
	if s.FramesTouched() != 0 {
		t.Fatal("read should not allocate frames")
	}
}

func TestStorageCrossFrame(t *testing.T) {
	s := NewStorage(1 << 20)
	data := make([]byte, 10000) // spans 3 frames
	for i := range data {
		data[i] = byte(i * 7)
	}
	s.Write(frameSize-100, data)
	got := make([]byte, len(data))
	s.Read(frameSize-100, got)
	if !bytes.Equal(got, data) {
		t.Fatal("cross-frame roundtrip failed")
	}
	if s.FramesTouched() != 4 {
		t.Fatalf("FramesTouched = %d, want 4", s.FramesTouched())
	}
}

func TestStorageBoundsPanic(t *testing.T) {
	s := NewStorage(4096)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-bounds write should panic")
		}
	}()
	s.Write(4090, make([]byte, 16))
}

func TestStorageAccessPacket(t *testing.T) {
	s := NewStorage(1 << 16)
	w := NewWrite(0, []byte{9, 8, 7, 6})
	s.Access(w, 0x100)
	r := NewRead(0, 4)
	s.Access(r, 0x100)
	if !bytes.Equal(r.Data, []byte{9, 8, 7, 6}) {
		t.Fatalf("packet access roundtrip got %v", r.Data)
	}
	// Timing-only write leaves contents untouched.
	tw := NewWriteSize(0, 4)
	s.Access(tw, 0x100)
	r2 := NewRead(0, 4)
	s.Access(r2, 0x100)
	if !bytes.Equal(r2.Data, []byte{9, 8, 7, 6}) {
		t.Fatal("timing-only write must not clobber data")
	}
}

// Property: write-then-read roundtrips at arbitrary offsets/lengths.
func TestStorageRoundtripProperty(t *testing.T) {
	s := NewStorage(1 << 20)
	f := func(off uint32, data []byte) bool {
		if len(data) == 0 {
			return true
		}
		addr := uint64(off) % (1<<20 - uint64(len(data)))
		s.Write(addr, data)
		got := make([]byte, len(data))
		s.Read(addr, got)
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPacketQueueInOrder(t *testing.T) {
	eq := sim.NewEventQueue()
	var sent []uint64
	q := NewPacketQueue("q", eq, func(p *Packet) bool {
		sent = append(sent, p.ID)
		return true
	})
	p1, p2, p3 := NewRead(0, 8), NewRead(8, 8), NewRead(16, 8)
	q.Schedule(p1, 30)
	q.Schedule(p2, 10)
	q.Schedule(p3, 20)
	eq.Run()
	if len(sent) != 3 || sent[0] != p2.ID || sent[1] != p3.ID || sent[2] != p1.ID {
		t.Fatalf("send order %v, want ready-tick order", sent)
	}
	if !q.Empty() {
		t.Fatal("queue should drain")
	}
}

func TestPacketQueueBackpressure(t *testing.T) {
	eq := sim.NewEventQueue()
	accept := false
	var sent int
	q := NewPacketQueue("q", eq, func(p *Packet) bool {
		if !accept {
			return false
		}
		sent++
		return true
	})
	q.Schedule(NewRead(0, 8), 5)
	q.Schedule(NewRead(8, 8), 5)
	eq.Run()
	if sent != 0 || !q.Blocked() {
		t.Fatal("queue should be blocked after refusal")
	}
	accept = true
	q.RetryReceived()
	eq.Run()
	if sent != 2 || q.Blocked() || !q.Empty() {
		t.Fatalf("after retry: sent=%d blocked=%v", sent, q.Blocked())
	}
	// Spurious retry while unblocked is harmless.
	q.RetryReceived()
}

func TestPacketQueueNextReady(t *testing.T) {
	eq := sim.NewEventQueue()
	q := NewPacketQueue("q", eq, func(p *Packet) bool { return true })
	if q.NextReady() != sim.MaxTick {
		t.Fatal("empty queue NextReady should be MaxTick")
	}
	q.Schedule(NewRead(0, 8), 42)
	if q.NextReady() != 42 {
		t.Fatalf("NextReady = %v", q.NextReady())
	}
	eq.Run()
}

func TestPacketQueuePastTickClamps(t *testing.T) {
	eq := sim.NewEventQueue()
	var sentAt sim.Tick
	q := NewPacketQueue("q", eq, func(p *Packet) bool {
		sentAt = eq.Now()
		return true
	})
	eq.Schedule(func() {
		q.Schedule(NewRead(0, 8), 0) // in the past relative to now=50
	}, 50)
	eq.Run()
	if sentAt != 50 {
		t.Fatalf("sent at %v, want clamped to 50", sentAt)
	}
}
