// Package mem defines the transaction-level protocol that AcceSys
// components speak: memory packets, gem5-style timing ports with the
// retry/backpressure protocol, and address ranges/maps for routing.
package mem

import (
	"fmt"
	"sync"
	"sync/atomic"

	"accesys/internal/sim"
)

// Cmd enumerates packet commands.
type Cmd uint8

// Packet commands. Requests and their responses are paired.
const (
	CmdInvalid Cmd = iota
	ReadReq
	ReadResp
	WriteReq
	WriteResp
)

// String implements fmt.Stringer.
func (c Cmd) String() string {
	switch c {
	case ReadReq:
		return "ReadReq"
	case ReadResp:
		return "ReadResp"
	case WriteReq:
		return "WriteReq"
	case WriteResp:
		return "WriteResp"
	default:
		return "Invalid"
	}
}

// IsRead reports whether the command moves data toward the requester.
func (c Cmd) IsRead() bool { return c == ReadReq || c == ReadResp }

// IsWrite reports whether the command moves data toward memory.
func (c Cmd) IsWrite() bool { return c == WriteReq || c == WriteResp }

// IsRequest reports whether the command is a request.
func (c Cmd) IsRequest() bool { return c == ReadReq || c == WriteReq }

// IsResponse reports whether the command is a response.
func (c Cmd) IsResponse() bool { return c == ReadResp || c == WriteResp }

// ResponseFor returns the response command matching a request.
func (c Cmd) ResponseFor() Cmd {
	switch c {
	case ReadReq:
		return ReadResp
	case WriteReq:
		return WriteResp
	default:
		panic(fmt.Sprintf("mem: no response for %v", c))
	}
}

var nextPacketID atomic.Uint64

// NextPacketID hands out process-unique packet identifiers. Each
// simulation is single-threaded, but the sweep engine runs many
// systems in parallel, so the counter is atomic. IDs are diagnostic
// labels only — they never influence timing or routing, so sharing
// one counter across concurrent systems keeps results deterministic.
func NextPacketID() uint64 {
	return nextPacketID.Add(1)
}

// Packet is one memory transaction travelling through the system. A
// request packet is turned into its own response in place (MakeResponse)
// and routed back along the port stack that intermediate components
// pushed on the way in, exactly as gem5 crossbars do.
type Packet struct {
	ID   uint64
	Cmd  Cmd
	Addr uint64 // address in the requester's current address space
	Size int    // bytes

	// Data carries the payload for functional correctness. It may be
	// nil for timing-only traffic. For reads the responder fills it.
	Data []byte

	// Vaddr preserves the device-virtual address when an SMMU has
	// rewritten Addr to a physical address.
	Vaddr uint64

	// Issued is the tick the original requester sent the packet; used
	// for end-to-end latency statistics.
	Issued sim.Tick

	// Uncacheable requests bypass cache allocation (DM access method).
	Uncacheable bool

	route  []*ResponsePort
	states []any

	// scratch is the packet-owned payload buffer AllocData hands out;
	// it survives Release so steady-state reads recycle one array.
	scratch  []byte
	ownsData bool
	released bool
}

// packetPool recycles Packet values, including their route/state stack
// and scratch-buffer capacity. Each simulation is single-threaded but
// the sweep engine runs many systems per process, hence a sync.Pool.
var packetPool = sync.Pool{New: func() any { return new(Packet) }}

// getPacket leases a zeroed packet from the pool with a fresh ID.
func getPacket() *Packet {
	p := packetPool.Get().(*Packet)
	p.released = false
	p.ID = NextPacketID()
	return p
}

// NewRead builds a read request of the given size. The data buffer is
// allocated lazily by the responder (see AllocData).
func NewRead(addr uint64, size int) *Packet {
	p := getPacket()
	p.Cmd = ReadReq
	p.Addr = addr
	p.Size = size
	return p
}

// NewWrite builds a write request carrying data. Size is len(data).
// The packet aliases data; it stays owned by the caller and is never
// recycled by Release.
func NewWrite(addr uint64, data []byte) *Packet {
	p := getPacket()
	p.Cmd = WriteReq
	p.Addr = addr
	p.Size = len(data)
	p.Data = data
	return p
}

// NewWriteSize builds a timing-only write request with no payload.
func NewWriteSize(addr uint64, size int) *Packet {
	p := getPacket()
	p.Cmd = WriteReq
	p.Addr = addr
	p.Size = size
	return p
}

// AllocData returns p.Data sized to p.Size, reusing the packet's own
// scratch buffer when it is large enough. Responders call it to
// materialize read payloads. The buffer is zeroed, packet-owned, and
// recycled on Release — safe because read payloads are never aliased
// by clones (only posted writes are cloned, and those carry
// caller-owned data).
func (p *Packet) AllocData() []byte {
	if p.Data != nil {
		return p.Data
	}
	if cap(p.scratch) >= p.Size {
		p.Data = p.scratch[:p.Size]
		clear(p.Data)
	} else {
		p.Data = make([]byte, p.Size)
	}
	p.ownsData = true
	return p.Data
}

// Release returns the packet to the pool. Lease discipline: the
// component that terminally consumes a packet releases it — the
// original requester receiving its response, or the sink of a posted
// write's acknowledged clone; everything in between only forwards.
// Data is dropped unless AllocData produced it: write payloads alias
// caller-owned buffers and must never be recycled. Releasing twice
// panics. Packets that intentionally escape (held by tests for
// assertions) may simply never be released.
func (p *Packet) Release() {
	if p.released {
		panic(fmt.Sprintf("mem: packet %d released twice", p.ID))
	}
	for i := range p.route {
		p.route[i] = nil
	}
	for i := range p.states {
		p.states[i] = nil
	}
	scratch := p.scratch
	if p.ownsData {
		scratch = p.Data
	}
	*p = Packet{
		route:    p.route[:0],
		states:   p.states[:0],
		scratch:  scratch[:0],
		released: true,
	}
	packetPool.Put(p)
}

// MakeResponse converts the request into its response in place. The
// route and sender-state stacks are preserved so the response retraces
// the request path.
func (p *Packet) MakeResponse() {
	if !p.Cmd.IsRequest() {
		panic(fmt.Sprintf("mem: MakeResponse on %v packet", p.Cmd))
	}
	p.Cmd = p.Cmd.ResponseFor()
}

// IsRequest reports whether the packet currently holds a request.
func (p *Packet) IsRequest() bool { return p.Cmd.IsRequest() }

// IsResponse reports whether the packet currently holds a response.
func (p *Packet) IsResponse() bool { return p.Cmd.IsResponse() }

// PushRoute records the response port a request arrived on so the
// eventual response can be steered back out of it.
func (p *Packet) PushRoute(port *ResponsePort) { p.route = append(p.route, port) }

// PopRoute removes and returns the most recently pushed response port.
func (p *Packet) PopRoute() *ResponsePort {
	n := len(p.route)
	if n == 0 {
		panic(fmt.Sprintf("mem: packet %d has an empty route stack", p.ID))
	}
	port := p.route[n-1]
	p.route = p.route[:n-1]
	return port
}

// RouteDepth reports how many hops are stacked on the packet.
func (p *Packet) RouteDepth() int { return len(p.route) }

// PushState attaches requester-private context to the packet
// (gem5's senderState chain).
func (p *Packet) PushState(s any) { p.states = append(p.states, s) }

// PopState removes and returns the most recently attached context.
func (p *Packet) PopState() any {
	n := len(p.states)
	if n == 0 {
		panic(fmt.Sprintf("mem: packet %d has an empty state stack", p.ID))
	}
	s := p.states[n-1]
	p.states = p.states[:n-1]
	return s
}

// String renders a compact diagnostic form.
func (p *Packet) String() string {
	return fmt.Sprintf("[pkt %d %v addr=%#x size=%d]", p.ID, p.Cmd, p.Addr, p.Size)
}
