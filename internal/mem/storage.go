package mem

import "fmt"

// frameSize is the allocation granule of sparse Storage. 4 KiB matches
// the page size used throughout the system.
const frameSize = 4096

// Storage is a sparse byte store backing simulated memories. Frames
// are allocated on first touch so multi-gigabyte address spaces cost
// only what the workload writes. Reads of untouched bytes return zero,
// like freshly scrubbed DRAM.
type Storage struct {
	size   uint64
	frames map[uint64][]byte
}

// NewStorage creates a store covering [0, size).
func NewStorage(size uint64) *Storage {
	return &Storage{size: size, frames: make(map[uint64][]byte)}
}

// Size returns the store's capacity in bytes.
func (s *Storage) Size() uint64 { return s.size }

func (s *Storage) check(addr uint64, n int) {
	if addr+uint64(n) > s.size {
		panic(fmt.Sprintf("mem: storage access [%#x,%#x) beyond size %#x", addr, addr+uint64(n), s.size))
	}
}

// Read copies len(buf) bytes starting at addr into buf.
func (s *Storage) Read(addr uint64, buf []byte) {
	s.check(addr, len(buf))
	for len(buf) > 0 {
		frame := addr / frameSize
		off := addr % frameSize
		n := frameSize - off
		if n > uint64(len(buf)) {
			n = uint64(len(buf))
		}
		if f, ok := s.frames[frame]; ok {
			copy(buf[:n], f[off:off+n])
		} else {
			for i := uint64(0); i < n; i++ {
				buf[i] = 0
			}
		}
		buf = buf[n:]
		addr += n
	}
}

// Write copies data into the store starting at addr.
func (s *Storage) Write(addr uint64, data []byte) {
	s.check(addr, len(data))
	for len(data) > 0 {
		frame := addr / frameSize
		off := addr % frameSize
		n := frameSize - off
		if n > uint64(len(data)) {
			n = uint64(len(data))
		}
		f, ok := s.frames[frame]
		if !ok {
			f = make([]byte, frameSize)
			s.frames[frame] = f
		}
		copy(f[off:off+n], data[:n])
		data = data[n:]
		addr += n
	}
}

// FramesTouched reports how many 4 KiB frames have been allocated.
func (s *Storage) FramesTouched() int { return len(s.frames) }

// Access applies a packet functionally: reads fill pkt.Data (allocating
// it if nil), writes store pkt.Data when present. Timing-only writes
// (nil data) leave contents untouched.
func (s *Storage) Access(pkt *Packet, offset uint64) {
	switch {
	case pkt.Cmd.IsRead():
		s.Read(offset, pkt.AllocData()[:pkt.Size])
	case pkt.Cmd.IsWrite():
		if pkt.Data != nil {
			s.Write(offset, pkt.Data[:pkt.Size])
		}
	}
}
