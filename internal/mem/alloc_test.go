package mem

import (
	"testing"

	"accesys/internal/sim"
)

// allocEcho answers every request with an immediate response through
// its own packet queue, mirroring how real responders are built.
type allocEcho struct {
	port  *ResponsePort
	respQ *PacketQueue
}

func (e *allocEcho) RecvTimingReq(port *ResponsePort, pkt *Packet) bool {
	if pkt.Cmd.IsRead() {
		pkt.AllocData()
	}
	pkt.MakeResponse()
	e.respQ.Schedule(pkt, 0)
	return true
}

func (e *allocEcho) RecvRetryResp(port *ResponsePort) { e.respQ.RetryReceived() }

// allocRequestor issues reads through a packet queue and releases each
// response, the standard lease discipline.
type allocRequestor struct {
	port *RequestPort
	reqQ *PacketQueue
	done int
}

func (r *allocRequestor) RecvTimingResp(port *RequestPort, pkt *Packet) bool {
	pkt.Release()
	r.done++
	return true
}

func (r *allocRequestor) RecvRetryReq(port *RequestPort) { r.reqQ.RetryReceived() }

// TestPacketRoundTripAllocFree pins the zero-allocation steady state of
// the packet hot path: lease a read from the pool, schedule it through
// a PacketQueue, echo it back as a response, and release it — all
// without allocating. A tiny epsilon tolerates the rare sync.Pool
// shard eviction at a GC boundary.
func TestPacketRoundTripAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	eq := sim.NewEventQueue()
	req := &allocRequestor{}
	req.port = NewRequestPort("t.req", req)
	req.reqQ = NewPacketQueue("t.reqq", eq, req.port.SendTimingReq)
	echo := &allocEcho{}
	echo.port = NewResponsePort("t.resp", echo)
	echo.respQ = NewPacketQueue("t.respq", eq, echo.port.SendTimingResp)
	Bind(req.port, echo.port)

	const batch = 64
	roundTrip := func() {
		for i := 0; i < batch; i++ {
			pkt := NewRead(uint64(i)*64, 64)
			req.reqQ.Schedule(pkt, eq.Now())
		}
		eq.Run()
	}

	// Warm the pools and the queue backing arrays.
	for i := 0; i < 4; i++ {
		roundTrip()
	}

	avg := testing.AllocsPerRun(50, roundTrip)
	if perPkt := avg / batch; perPkt > 0.02 {
		t.Fatalf("packet round trip allocates %.3f allocs/packet, want ~0", perPkt)
	}
	if req.done == 0 {
		t.Fatal("no responses observed")
	}
}
