package mem

import (
	"testing"
	"testing/quick"
)

func TestCmdProperties(t *testing.T) {
	cases := []struct {
		cmd                            Cmd
		read, write, request, response bool
	}{
		{ReadReq, true, false, true, false},
		{ReadResp, true, false, false, true},
		{WriteReq, false, true, true, false},
		{WriteResp, false, true, false, true},
	}
	for _, c := range cases {
		if c.cmd.IsRead() != c.read || c.cmd.IsWrite() != c.write ||
			c.cmd.IsRequest() != c.request || c.cmd.IsResponse() != c.response {
			t.Errorf("%v: property mismatch", c.cmd)
		}
	}
	if ReadReq.ResponseFor() != ReadResp || WriteReq.ResponseFor() != WriteResp {
		t.Fatal("ResponseFor mismatch")
	}
}

func TestPacketLifecycle(t *testing.T) {
	p := NewRead(0x1000, 64)
	if !p.IsRequest() || p.Cmd != ReadReq || p.Size != 64 {
		t.Fatalf("unexpected read packet: %v", p)
	}
	p.MakeResponse()
	if !p.IsResponse() || p.Cmd != ReadResp {
		t.Fatalf("MakeResponse produced %v", p.Cmd)
	}

	w := NewWrite(0x2000, make([]byte, 32))
	if w.Size != 32 || w.Cmd != WriteReq {
		t.Fatalf("unexpected write packet: %v", w)
	}
	if w.ID == p.ID {
		t.Fatal("packet IDs must be unique")
	}
}

func TestMakeResponseTwicePanics(t *testing.T) {
	p := NewRead(0, 8)
	p.MakeResponse()
	defer func() {
		if recover() == nil {
			t.Fatal("MakeResponse on a response should panic")
		}
	}()
	p.MakeResponse()
}

type stubResponder struct {
	port    *ResponsePort
	accept  bool
	got     []*Packet
	retries int
}

func (s *stubResponder) RecvTimingReq(port *ResponsePort, pkt *Packet) bool {
	if !s.accept {
		return false
	}
	s.got = append(s.got, pkt)
	return true
}
func (s *stubResponder) RecvRetryResp(port *ResponsePort) { s.retries++ }

type stubRequestor struct {
	port    *RequestPort
	accept  bool
	got     []*Packet
	retries int
}

func (s *stubRequestor) RecvTimingResp(port *RequestPort, pkt *Packet) bool {
	if !s.accept {
		return false
	}
	s.got = append(s.got, pkt)
	return true
}
func (s *stubRequestor) RecvRetryReq(port *RequestPort) { s.retries++ }

func TestPortProtocol(t *testing.T) {
	rq := &stubRequestor{accept: true}
	rs := &stubResponder{accept: true}
	rq.port = NewRequestPort("cpu.dcache", rq)
	rs.port = NewResponsePort("membus.cpu", rs)
	Bind(rq.port, rs.port)

	if rq.port.Peer() != rs.port || rs.port.Peer() != rq.port {
		t.Fatal("Bind did not link the ports")
	}

	pkt := NewRead(0x40, 64)
	if !rq.port.SendTimingReq(pkt) {
		t.Fatal("accepting responder refused request")
	}
	if len(rs.got) != 1 || rs.got[0] != pkt {
		t.Fatal("responder did not receive the packet")
	}

	pkt.MakeResponse()
	if !rs.port.SendTimingResp(pkt) {
		t.Fatal("accepting requester refused response")
	}
	if len(rq.got) != 1 {
		t.Fatal("requester did not receive the response")
	}
}

func TestPortBackpressureAndRetry(t *testing.T) {
	rq := &stubRequestor{accept: false}
	rs := &stubResponder{accept: false}
	rq.port = NewRequestPort("a", rq)
	rs.port = NewResponsePort("b", rs)
	Bind(rq.port, rs.port)

	pkt := NewRead(0, 64)
	if rq.port.SendTimingReq(pkt) {
		t.Fatal("busy responder accepted request")
	}
	rs.port.SendRetryReq()
	if rq.retries != 1 {
		t.Fatal("requester did not observe retry-req")
	}

	pkt.MakeResponse()
	if rs.port.SendTimingResp(pkt) {
		t.Fatal("busy requester accepted response")
	}
	rq.port.SendRetryResp()
	if rs.retries != 1 {
		t.Fatal("responder did not observe retry-resp")
	}
}

func TestRebindPanics(t *testing.T) {
	rq := &stubRequestor{}
	rs := &stubResponder{}
	p1 := NewRequestPort("p1", rq)
	p2 := NewResponsePort("p2", rs)
	Bind(p1, p2)
	p3 := NewResponsePort("p3", rs)
	defer func() {
		if recover() == nil {
			t.Fatal("rebinding should panic")
		}
	}()
	Bind(p1, p3)
}

func TestUnboundSendPanics(t *testing.T) {
	rq := &stubRequestor{}
	p := NewRequestPort("orphan", rq)
	defer func() {
		if recover() == nil {
			t.Fatal("send on unbound port should panic")
		}
	}()
	p.SendTimingReq(NewRead(0, 8))
}

func TestRouteStack(t *testing.T) {
	rs := &stubResponder{}
	a := NewResponsePort("a", rs)
	b := NewResponsePort("b", rs)
	p := NewRead(0, 64)
	p.PushRoute(a)
	p.PushRoute(b)
	if p.RouteDepth() != 2 {
		t.Fatalf("RouteDepth = %d", p.RouteDepth())
	}
	if p.PopRoute() != b || p.PopRoute() != a {
		t.Fatal("route stack is not LIFO")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("PopRoute on empty stack should panic")
		}
	}()
	p.PopRoute()
}

func TestStateStack(t *testing.T) {
	p := NewRead(0, 64)
	type myState struct{ tag int }
	p.PushState(&myState{tag: 1})
	p.PushState(&myState{tag: 2})
	if s := p.PopState().(*myState); s.tag != 2 {
		t.Fatalf("PopState tag = %d, want 2", s.tag)
	}
	if s := p.PopState().(*myState); s.tag != 1 {
		t.Fatalf("PopState tag = %d, want 1", s.tag)
	}
}

func TestAddrRange(t *testing.T) {
	r := Range(0x1000, 0x1000)
	if r.Size() != 0x1000 {
		t.Fatalf("Size = %#x", r.Size())
	}
	if !r.Contains(0x1000) || !r.Contains(0x1fff) || r.Contains(0x2000) || r.Contains(0xfff) {
		t.Fatal("Contains boundary behaviour wrong")
	}
	if r.Offset(0x1800) != 0x800 {
		t.Fatalf("Offset = %#x", r.Offset(0x1800))
	}
	if !r.Overlaps(Range(0x1fff, 2)) || r.Overlaps(Range(0x2000, 16)) {
		t.Fatal("Overlaps boundary behaviour wrong")
	}
	if !r.ContainsRange(Range(0x1800, 0x100)) || r.ContainsRange(Range(0x1800, 0x1000)) {
		t.Fatal("ContainsRange wrong")
	}
}

func TestAddrMap(t *testing.T) {
	var m AddrMap
	m.Add(Range(0x0000, 0x1000), 0)
	m.Add(Range(0x4000, 0x1000), 2)
	m.Add(Range(0x1000, 0x1000), 1)

	cases := []struct {
		addr   uint64
		target int
		ok     bool
	}{
		{0x0, 0, true},
		{0xfff, 0, true},
		{0x1000, 1, true},
		{0x4fff, 2, true},
		{0x2000, 0, false},
		{0x5000, 0, false},
	}
	for _, c := range cases {
		got, ok := m.Find(c.addr)
		if ok != c.ok || (ok && got != c.target) {
			t.Errorf("Find(%#x) = (%d,%v), want (%d,%v)", c.addr, got, ok, c.target, c.ok)
		}
	}

	r, target, ok := m.FindRange(0x4123)
	if !ok || target != 2 || r.Start != 0x4000 {
		t.Fatalf("FindRange = %v,%d,%v", r, target, ok)
	}

	ranges := m.Ranges()
	if len(ranges) != 3 || ranges[0].Start != 0 || ranges[2].Start != 0x4000 {
		t.Fatalf("Ranges = %v", ranges)
	}
}

func TestAddrMapOverlapPanics(t *testing.T) {
	var m AddrMap
	m.Add(Range(0, 0x1000), 0)
	defer func() {
		if recover() == nil {
			t.Fatal("overlapping Add should panic")
		}
	}()
	m.Add(Range(0x800, 0x1000), 1)
}

// Property: for any partition of an address space into equal chunks,
// every address maps back to its chunk.
func TestAddrMapPartitionProperty(t *testing.T) {
	f := func(chunkExp uint8, probe uint32) bool {
		chunk := uint64(1) << (8 + chunkExp%8) // 256B..32KB
		var m AddrMap
		n := uint64(16)
		for i := uint64(0); i < n; i++ {
			m.Add(Range(i*chunk, chunk), int(i))
		}
		addr := uint64(probe) % (n * chunk)
		got, ok := m.Find(addr)
		return ok && uint64(got) == addr/chunk
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAlignHelpers(t *testing.T) {
	if AlignDown(0x1234, 0x100) != 0x1200 {
		t.Fatal("AlignDown wrong")
	}
	if AlignUp(0x1234, 0x100) != 0x1300 {
		t.Fatal("AlignUp wrong")
	}
	if AlignUp(0x1200, 0x100) != 0x1200 {
		t.Fatal("AlignUp should be identity on aligned values")
	}
	if !IsPow2(64) || IsPow2(0) || IsPow2(36) {
		t.Fatal("IsPow2 wrong")
	}
	if Log2(1) != 0 || Log2(64) != 6 || Log2(65) != 6 {
		t.Fatal("Log2 wrong")
	}
}
