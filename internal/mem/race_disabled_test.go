//go:build !race

package mem

const raceEnabled = false
