package mem

import (
	"accesys/internal/sim"
)

// Cross is a latency-annotated, credit-bounded channel joining a
// request port in one tick-domain to a response port in another — the
// cut a partitioned build inserts where a plain Bind would join two
// components that now tick concurrently. Each direction is a bounded
// inbox: the sender consumes a credit when a packet departs and gets
// it back (one channel latency later) when the far side accepts the
// packet, so at most depth transactions are in flight per direction
// and backpressure crosses the cut exactly like the retry protocol
// does inside a domain.
//
// The halves never touch each other's state directly: everything that
// crosses the boundary — packets, credit returns — travels through
// Domain.Post and is delivered at a window barrier, which is what
// makes the cut safe under concurrent domain execution and
// deterministic for a fixed partition and quantum.
type Cross struct {
	src *sim.Domain // requestor side
	dst *sim.Domain // responder side
	lat sim.Tick
	cap int

	// Requestor half (src domain): faces the original RequestPort.
	ars        *ResponsePort
	reqCredits int
	reqWaiting bool // rq refused for lack of credit; owes SendRetryReq
	respQ      []*Packet
	respStall  bool // rq's owner refused a response; awaiting RecvRetryResp

	// Responder half (dst domain): faces the original ResponsePort.
	brq         *RequestPort
	reqQ        []*Packet
	reqStall    bool // rs's owner refused a request; awaiting RecvRetryReq
	respCredits int
	respWaiting bool // rs refused for lack of credit; owes SendRetryResp

	// Prebound credit-return thunks so steady-state crossings do not
	// allocate them per packet.
	reqCreditFn  func()
	respCreditFn func()
}

// xSrc is the Cross's requestor-side persona: the Responder the
// original requestor's port is bound to.
type xSrc struct{ c *Cross }

// xDst is the Cross's responder-side persona: the Requestor the
// original responder's port is bound to.
type xDst struct{ c *Cross }

// CrossBind connects rq (owned by a component in domain src) to rs
// (owned by a component in domain dst) through a cross-domain channel
// with the given one-way latency and per-direction in-flight bound.
// Both ports must be unbound, exactly as with Bind. A depth below 1
// defaults to 16.
func CrossBind(src, dst *sim.Domain, rq *RequestPort, rs *ResponsePort, lat sim.Tick, depth int) *Cross {
	if depth < 1 {
		depth = 16
	}
	c := &Cross{
		src: src, dst: dst, lat: lat, cap: depth,
		reqCredits:  depth,
		respCredits: depth,
	}
	c.ars = NewResponsePort(rs.Name()+".x", xSrc{c})
	c.brq = NewRequestPort(rq.Name()+".x", xDst{c})
	c.reqCreditFn = c.reqCredit
	c.respCreditFn = c.respCredit
	Bind(rq, c.ars)
	Bind(c.brq, rs)
	return c
}

// --- requestor half (runs in the src domain) ------------------------

// RecvTimingReq implements Responder for the requestor half: a request
// departs toward the responder domain, or is refused when the channel
// is full.
func (x xSrc) RecvTimingReq(port *ResponsePort, pkt *Packet) bool {
	c := x.c
	if c.reqCredits == 0 {
		c.reqWaiting = true
		return false
	}
	c.reqCredits--
	c.src.Post(c.dst, c.src.EQ.Now()+c.lat, func() { c.arriveReq(pkt) })
	return true
}

// RecvRetryResp implements Responder for the requestor half: the
// requestor can accept responses again.
func (x xSrc) RecvRetryResp(port *ResponsePort) {
	x.c.respStall = false
	x.c.pushResps()
}

// reqCredit runs in the src domain when the responder half accepted a
// request: the channel slot is free again.
func (c *Cross) reqCredit() {
	c.reqCredits++
	if c.reqWaiting {
		c.reqWaiting = false
		c.ars.SendRetryReq()
	}
}

// arriveResp runs in the src domain when a response crosses back.
func (c *Cross) arriveResp(pkt *Packet) {
	c.respQ = append(c.respQ, pkt)
	c.pushResps()
}

// pushResps delivers queued responses to the original requestor in
// FIFO order, returning a response credit per acceptance.
func (c *Cross) pushResps() {
	for !c.respStall && len(c.respQ) > 0 {
		pkt := c.respQ[0]
		if !c.ars.SendTimingResp(pkt) {
			c.respStall = true
			return
		}
		c.respQ = append(c.respQ[:0], c.respQ[1:]...)
		c.src.Post(c.dst, c.src.EQ.Now()+c.lat, c.respCreditFn)
	}
}

// --- responder half (runs in the dst domain) ------------------------

// arriveReq runs in the dst domain when a request crosses over.
func (c *Cross) arriveReq(pkt *Packet) {
	c.reqQ = append(c.reqQ, pkt)
	c.pushReqs()
}

// pushReqs delivers queued requests to the original responder in FIFO
// order, returning a request credit per acceptance.
func (c *Cross) pushReqs() {
	for !c.reqStall && len(c.reqQ) > 0 {
		pkt := c.reqQ[0]
		if !c.brq.SendTimingReq(pkt) {
			c.reqStall = true
			return
		}
		c.reqQ = append(c.reqQ[:0], c.reqQ[1:]...)
		c.dst.Post(c.src, c.dst.EQ.Now()+c.lat, c.reqCreditFn)
	}
}

// RecvTimingResp implements Requestor for the responder half: a
// response departs toward the requestor domain, or is refused when the
// return channel is full.
func (x xDst) RecvTimingResp(port *RequestPort, pkt *Packet) bool {
	c := x.c
	if c.respCredits == 0 {
		c.respWaiting = true
		return false
	}
	c.respCredits--
	c.dst.Post(c.src, c.dst.EQ.Now()+c.lat, func() { c.arriveResp(pkt) })
	return true
}

// RecvRetryReq implements Requestor for the responder half: the
// responder can accept requests again.
func (x xDst) RecvRetryReq(port *RequestPort) {
	x.c.reqStall = false
	x.c.pushReqs()
}

// respCredit runs in the dst domain when the requestor half accepted a
// response.
func (c *Cross) respCredit() {
	c.respCredits++
	if c.respWaiting {
		c.respWaiting = false
		c.brq.SendRetryResp()
	}
}

var _ Responder = xSrc{}
var _ Requestor = xDst{}
