package bench

import (
	"path/filepath"
	"testing"
)

func recs(v float64) []Record {
	return []Record{
		{Benchmark: "SimulatorThroughput", Metric: "events_per_sec", Value: v, Unit: "events/s"},
		{Benchmark: "ShardMerge", Metric: "points_per_sec", Value: 5000, Unit: "points/s"},
	}
}

func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_x.json")
	want := recs(2.5e6)
	want[0].Context = map[string]float64{"events": 100712}
	if err := WriteFile(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) || got[0].Value != want[0].Value || got[0].Context["events"] != 100712 {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

// TestCompareFlagsSyntheticSlowdown is the gate's own gate: a fresh
// run slowed below the tolerance band must be reported.
func TestCompareFlagsSyntheticSlowdown(t *testing.T) {
	base := recs(2.0e6)
	if r := Compare(base, recs(2.0e6), 0.25); len(r) != 0 {
		t.Fatalf("identical run flagged: %v", r)
	}
	if r := Compare(base, recs(1.6e6), 0.25); len(r) != 0 {
		t.Fatalf("within-band run flagged: %v", r)
	}
	slow := Compare(base, recs(1.0e6), 0.25)
	if len(slow) != 1 || slow[0].Benchmark != "SimulatorThroughput" || slow[0].Missing {
		t.Fatalf("2x slowdown not flagged: %v", slow)
	}
}

func TestCompareMissingFreshRecord(t *testing.T) {
	base := recs(2.0e6)
	r := Compare(base, base[:1], 0.25)
	if len(r) != 1 || !r[0].Missing || r[0].Benchmark != "ShardMerge" {
		t.Fatalf("missing record not flagged: %v", r)
	}
	// New fresh-only benchmarks pass.
	extra := append(recs(2.0e6), Record{Benchmark: "New", Metric: "m", Value: 1})
	if r := Compare(base, extra, 0.25); len(r) != 0 {
		t.Fatalf("fresh-only record flagged: %v", r)
	}
}

func TestDirEnvOverride(t *testing.T) {
	t.Setenv("BENCH_DIR", "/tmp/somewhere")
	if d := Dir("."); d != "/tmp/somewhere" {
		t.Fatalf("Dir = %q", d)
	}
	t.Setenv("BENCH_DIR", "")
	if d := Dir("."); d != "." {
		t.Fatalf("Dir = %q", d)
	}
}

// TestComparePerRecordTolerance pins that a record's own Tol widens
// (or narrows) the band independently of the global tolerance.
func TestComparePerRecordTolerance(t *testing.T) {
	base := []Record{{Benchmark: "IO", Metric: "points_per_sec", Value: 100, Tol: 0.70}}
	if r := Compare(base, []Record{{Benchmark: "IO", Metric: "points_per_sec", Value: 40}}, 0.25); len(r) != 0 {
		t.Fatalf("within per-record band but flagged: %v", r)
	}
	if r := Compare(base, []Record{{Benchmark: "IO", Metric: "points_per_sec", Value: 20}}, 0.25); len(r) != 1 {
		t.Fatalf("below per-record band not flagged: %v", r)
	}
}
