// Package bench defines the unified bench-record schema shared by the
// BENCH_*.json trajectory files at the repository root, and the
// comparison logic behind the `make benchcheck` regression gate: a
// fresh benchmark run is compared record-by-record against the
// committed baselines and fails CI when throughput falls outside the
// tolerance band.
package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// Record is one benchmark measurement. Value is always oriented so
// that higher is better (throughputs, rates); Context carries the
// fixed parameters that make the measurement comparable across
// commits (workload size, shard count, point count).
type Record struct {
	Benchmark string             `json:"benchmark"`
	Metric    string             `json:"metric"`
	Value     float64            `json:"value"`
	Unit      string             `json:"unit,omitempty"`
	Context   map[string]float64 `json:"context,omitempty"`

	// Tol, when nonzero, overrides the gate's global tolerance for
	// this record — I/O-bound benchmarks (shard merge) carry more
	// run-to-run noise than the CPU-bound simulator loop and need a
	// wider band.
	Tol float64 `json:"tol,omitempty"`
}

// Dir returns the directory trajectory files are written to: the
// BENCH_DIR environment variable when set (benchcheck points it at a
// scratch directory for the fresh run), otherwise def.
func Dir(def string) string {
	if d := os.Getenv("BENCH_DIR"); d != "" {
		return d
	}
	return def
}

// WriteFile stores records as an indented JSON array with a trailing
// newline, the canonical committed form.
func WriteFile(path string, recs []Record) error {
	data, err := json.MarshalIndent(recs, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadFile loads a trajectory file written by WriteFile.
func ReadFile(path string) ([]Record, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var recs []Record
	if err := json.Unmarshal(data, &recs); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return recs, nil
}

// Regression is one comparison failure: a baseline record whose fresh
// counterpart is missing or below the tolerance band.
type Regression struct {
	Benchmark string
	Metric    string
	Baseline  float64
	Fresh     float64 // 0 when the fresh record is missing
	Missing   bool
}

// String formats the regression for gate output.
func (r Regression) String() string {
	if r.Missing {
		return fmt.Sprintf("%s/%s: baseline %.4g has no fresh measurement", r.Benchmark, r.Metric, r.Baseline)
	}
	return fmt.Sprintf("%s/%s: %.4g -> %.4g (%.2fx)", r.Benchmark, r.Metric, r.Baseline, r.Fresh, r.Fresh/r.Baseline)
}

// Compare checks fresh against baseline: every baseline record must
// have a fresh record with Value >= baseline*(1-tol), where a
// baseline record's own Tol (when set) overrides the global tol.
// Records present only in fresh are new benchmarks and pass. The
// result is sorted by (benchmark, metric) for stable gate output;
// empty means no regression.
func Compare(baseline, fresh []Record, tol float64) []Regression {
	have := make(map[string]float64, len(fresh))
	for _, r := range fresh {
		have[r.Benchmark+"\x00"+r.Metric] = r.Value
	}
	var regs []Regression
	for _, b := range baseline {
		band := tol
		if b.Tol > 0 {
			band = b.Tol
		}
		got, ok := have[b.Benchmark+"\x00"+b.Metric]
		switch {
		case !ok:
			regs = append(regs, Regression{Benchmark: b.Benchmark, Metric: b.Metric, Baseline: b.Value, Missing: true})
		case got < b.Value*(1-band):
			regs = append(regs, Regression{Benchmark: b.Benchmark, Metric: b.Metric, Baseline: b.Value, Fresh: got})
		}
	}
	sort.Slice(regs, func(i, j int) bool {
		if regs[i].Benchmark != regs[j].Benchmark {
			return regs[i].Benchmark < regs[j].Benchmark
		}
		return regs[i].Metric < regs[j].Metric
	})
	return regs
}
