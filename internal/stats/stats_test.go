package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestScalar(t *testing.T) {
	g := NewGroup("g")
	s := g.Scalar("x", "a scalar")
	s.Set(3)
	s.Add(2)
	if s.Value() != 5 {
		t.Fatalf("Value = %v, want 5", s.Value())
	}
	s.Reset()
	if s.Value() != 0 {
		t.Fatal("Reset did not zero the scalar")
	}
}

func TestCounter(t *testing.T) {
	g := NewGroup("g")
	c := g.Counter("n", "a counter")
	c.Inc()
	c.Add(4)
	if c.Count() != 5 || c.Value() != 5 {
		t.Fatalf("Count = %d, want 5", c.Count())
	}
	c.Reset()
	if c.Count() != 0 {
		t.Fatal("Reset did not zero the counter")
	}
}

func TestDistribution(t *testing.T) {
	g := NewGroup("g")
	d := g.Distribution("d", "a distribution")
	for _, v := range []float64{1, 2, 3, 4} {
		d.Sample(v)
	}
	if d.Count() != 4 {
		t.Fatalf("Count = %d", d.Count())
	}
	if d.Mean() != 2.5 {
		t.Fatalf("Mean = %v", d.Mean())
	}
	if d.Min() != 1 || d.Max() != 4 {
		t.Fatalf("Min/Max = %v/%v", d.Min(), d.Max())
	}
	if d.Sum() != 10 {
		t.Fatalf("Sum = %v", d.Sum())
	}
	wantSD := math.Sqrt(1.25)
	if math.Abs(d.StdDev()-wantSD) > 1e-12 {
		t.Fatalf("StdDev = %v, want %v", d.StdDev(), wantSD)
	}
}

func TestDistributionEmpty(t *testing.T) {
	g := NewGroup("g")
	d := g.Distribution("d", "")
	if d.Mean() != 0 || d.StdDev() != 0 {
		t.Fatal("empty distribution should report zero mean/stddev")
	}
}

func TestFormula(t *testing.T) {
	g := NewGroup("g")
	a := g.Counter("a", "")
	b := g.Counter("b", "")
	f := g.Formula("ratio", "a/b", func() float64 {
		if b.Count() == 0 {
			return 0
		}
		return a.Value() / b.Value()
	})
	a.Add(6)
	b.Add(3)
	if f.Value() != 2 {
		t.Fatalf("formula = %v, want 2", f.Value())
	}
}

func TestDuplicateStatPanics(t *testing.T) {
	g := NewGroup("g")
	g.Counter("x", "")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate stat name did not panic")
		}
	}()
	g.Scalar("x", "")
}

func TestRegistryLookupAndDump(t *testing.T) {
	r := NewRegistry()
	g := r.Group("system.pcie.rc")
	c := g.Counter("packets", "forwarded packets")
	c.Add(42)
	d := g.Distribution("latency", "per packet latency")
	d.Sample(10)

	if got := r.Lookup("system.pcie.rc.packets"); got == nil || got.Value() != 42 {
		t.Fatalf("Lookup failed: %v", got)
	}
	if r.Lookup("nope") != nil || r.Lookup("system.pcie.rc.zzz") != nil {
		t.Fatal("Lookup of missing stat should be nil")
	}
	// Same group returned on repeat access.
	if r.Group("system.pcie.rc") != g {
		t.Fatal("Group should be idempotent")
	}

	var sb strings.Builder
	if err := r.Dump(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"system.pcie.rc.packets 42.000000",
		"system.pcie.rc.latency::count 1",
		"system.pcie.rc.latency::mean 10.000000",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("dump missing %q in:\n%s", want, out)
		}
	}

	r.Reset()
	if c.Count() != 0 || d.Count() != 0 {
		t.Fatal("registry Reset did not clear stats")
	}
}

func TestGroupsSorted(t *testing.T) {
	r := NewRegistry()
	r.Group("b")
	r.Group("a")
	r.Group("c")
	gs := r.Groups()
	if gs[0].Name() != "a" || gs[1].Name() != "b" || gs[2].Name() != "c" {
		t.Fatalf("groups not sorted: %v %v %v", gs[0].Name(), gs[1].Name(), gs[2].Name())
	}
}

// Property: the distribution mean always lies within [min, max], and
// count equals the number of samples.
func TestDistributionProperty(t *testing.T) {
	f := func(vals []float64) bool {
		g := NewGroup("g")
		d := g.Distribution("d", "")
		n := 0
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			// Keep magnitudes sane to avoid float saturation noise.
			if math.Abs(v) > 1e12 {
				continue
			}
			d.Sample(v)
			n++
		}
		if d.Count() != uint64(n) {
			return false
		}
		if n == 0 {
			return true
		}
		m := d.Mean()
		return m >= d.Min()-1e-6 && m <= d.Max()+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
