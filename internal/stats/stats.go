// Package stats implements the statistics framework used by every
// AcceSys component: named scalars, counters, distributions and derived
// formulas collected in per-component groups and dumped as text, in the
// spirit of gem5's stats system.
package stats

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Stat is the interface implemented by every statistic kind.
type Stat interface {
	// Name returns the statistic's leaf name within its group.
	Name() string
	// Desc returns the one-line description.
	Desc() string
	// Value returns the primary scalar value for dumps and formulas.
	Value() float64
	// Reset clears the statistic to its zero state.
	Reset()
}

// Scalar is a settable floating-point statistic.
type Scalar struct {
	name, desc string
	v          float64
}

// Name implements Stat.
func (s *Scalar) Name() string { return s.name }

// Desc implements Stat.
func (s *Scalar) Desc() string { return s.desc }

// Value implements Stat.
func (s *Scalar) Value() float64 { return s.v }

// Reset implements Stat.
func (s *Scalar) Reset() { s.v = 0 }

// Set stores v.
func (s *Scalar) Set(v float64) { s.v = v }

// Add accumulates v.
func (s *Scalar) Add(v float64) { s.v += v }

// Counter is a monotonically increasing integer statistic.
type Counter struct {
	name, desc string
	n          uint64
}

// Name implements Stat.
func (c *Counter) Name() string { return c.name }

// Desc implements Stat.
func (c *Counter) Desc() string { return c.desc }

// Value implements Stat.
func (c *Counter) Value() float64 { return float64(c.n) }

// Reset implements Stat.
func (c *Counter) Reset() { c.n = 0 }

// Inc adds one.
func (c *Counter) Inc() { c.n++ }

// Add accumulates n.
func (c *Counter) Add(n uint64) { c.n += n }

// Count returns the raw count.
func (c *Counter) Count() uint64 { return c.n }

// Distribution tracks count, sum, min, max and sum of squares of a
// sampled quantity, enough to report mean and standard deviation.
type Distribution struct {
	name, desc string
	n          uint64
	sum        float64
	sumSq      float64
	min, max   float64
}

// Name implements Stat.
func (d *Distribution) Name() string { return d.name }

// Desc implements Stat.
func (d *Distribution) Desc() string { return d.desc }

// Value implements Stat; it reports the mean.
func (d *Distribution) Value() float64 { return d.Mean() }

// Reset implements Stat.
func (d *Distribution) Reset() {
	d.n, d.sum, d.sumSq = 0, 0, 0
	d.min, d.max = 0, 0
}

// Sample records one observation.
func (d *Distribution) Sample(v float64) {
	if d.n == 0 || v < d.min {
		d.min = v
	}
	if d.n == 0 || v > d.max {
		d.max = v
	}
	d.n++
	d.sum += v
	d.sumSq += v * v
}

// Count returns the number of observations.
func (d *Distribution) Count() uint64 { return d.n }

// Sum returns the total of all observations.
func (d *Distribution) Sum() float64 { return d.sum }

// Mean returns the average observation, or 0 with no samples.
func (d *Distribution) Mean() float64 {
	if d.n == 0 {
		return 0
	}
	return d.sum / float64(d.n)
}

// Min returns the smallest observation.
func (d *Distribution) Min() float64 { return d.min }

// Max returns the largest observation.
func (d *Distribution) Max() float64 { return d.max }

// StdDev returns the population standard deviation.
func (d *Distribution) StdDev() float64 {
	if d.n == 0 {
		return 0
	}
	m := d.Mean()
	v := d.sumSq/float64(d.n) - m*m
	if v < 0 {
		v = 0
	}
	return math.Sqrt(v)
}

// Formula is a derived statistic computed from other stats on demand.
type Formula struct {
	name, desc string
	fn         func() float64
}

// Name implements Stat.
func (f *Formula) Name() string { return f.name }

// Desc implements Stat.
func (f *Formula) Desc() string { return f.desc }

// Value implements Stat.
func (f *Formula) Value() float64 {
	if f.fn == nil {
		return 0
	}
	return f.fn()
}

// Reset implements Stat; formulas hold no state.
func (f *Formula) Reset() {}

// Group is a named collection of statistics belonging to one component.
type Group struct {
	name  string
	stats []Stat
	byKey map[string]Stat
}

// NewGroup creates an empty group. The name becomes the dump prefix,
// e.g. "system.pcie.rc".
func NewGroup(name string) *Group {
	return &Group{name: name, byKey: make(map[string]Stat)}
}

// Name returns the group's dump prefix.
func (g *Group) Name() string { return g.name }

func (g *Group) register(s Stat) {
	if _, dup := g.byKey[s.Name()]; dup {
		panic(fmt.Sprintf("stats: duplicate stat %q in group %q", s.Name(), g.name))
	}
	g.byKey[s.Name()] = s
	g.stats = append(g.stats, s)
}

// Scalar registers and returns a new scalar statistic.
func (g *Group) Scalar(name, desc string) *Scalar {
	s := &Scalar{name: name, desc: desc}
	g.register(s)
	return s
}

// Counter registers and returns a new counter statistic.
func (g *Group) Counter(name, desc string) *Counter {
	c := &Counter{name: name, desc: desc}
	g.register(c)
	return c
}

// Distribution registers and returns a new distribution statistic.
func (g *Group) Distribution(name, desc string) *Distribution {
	d := &Distribution{name: name, desc: desc}
	g.register(d)
	return d
}

// Formula registers and returns a derived statistic.
func (g *Group) Formula(name, desc string, fn func() float64) *Formula {
	f := &Formula{name: name, desc: desc, fn: fn}
	g.register(f)
	return f
}

// Lookup returns the stat with the given leaf name, or nil.
func (g *Group) Lookup(name string) Stat { return g.byKey[name] }

// Reset clears every statistic in the group.
func (g *Group) Reset() {
	for _, s := range g.stats {
		s.Reset()
	}
}

// Registry aggregates the groups of a whole simulated system.
type Registry struct {
	groups []*Group
	byName map[string]*Group
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*Group)}
}

// Group returns the group with the given name, creating it on first
// use.
func (r *Registry) Group(name string) *Group {
	if g, ok := r.byName[name]; ok {
		return g
	}
	g := NewGroup(name)
	r.byName[name] = g
	r.groups = append(r.groups, g)
	return g
}

// Groups returns all groups sorted by name.
func (r *Registry) Groups() []*Group {
	out := make([]*Group, len(r.groups))
	copy(out, r.groups)
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// Lookup returns the stat at "group.stat" dotted path, or nil. The
// group name may itself contain dots; the final component is the stat.
func (r *Registry) Lookup(path string) Stat {
	i := strings.LastIndex(path, ".")
	if i < 0 {
		return nil
	}
	g, ok := r.byName[path[:i]]
	if !ok {
		return nil
	}
	return g.Lookup(path[i+1:])
}

// Reset clears every statistic in every group.
func (r *Registry) Reset() {
	for _, g := range r.groups {
		g.Reset()
	}
}

// Dump writes all statistics in gem5-like "name value # desc" lines.
func (r *Registry) Dump(w io.Writer) error {
	for _, g := range r.Groups() {
		for _, s := range g.stats {
			var err error
			switch st := s.(type) {
			case *Distribution:
				_, err = fmt.Fprintf(w, "%s.%s::count %d # %s\n", g.name, st.Name(), st.Count(), st.Desc())
				if err == nil {
					_, err = fmt.Fprintf(w, "%s.%s::mean %.6f # %s\n", g.name, st.Name(), st.Mean(), st.Desc())
				}
				if err == nil {
					_, err = fmt.Fprintf(w, "%s.%s::max %.6f # %s\n", g.name, st.Name(), st.Max(), st.Desc())
				}
			default:
				_, err = fmt.Fprintf(w, "%s.%s %.6f # %s\n", g.name, s.Name(), s.Value(), s.Desc())
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}
