// Package trace provides a lightweight transaction tracer: components
// (or test harnesses) record packet milestones into a bounded ring and
// dump them as a chronological, grep-friendly log — the debugging aid
// gem5 users know as DPRINTF/--debug-flags, scoped to the memory
// system.
package trace

import (
	"fmt"
	"io"

	"accesys/internal/mem"
	"accesys/internal/sim"
)

// Event is one recorded milestone of a packet's journey.
type Event struct {
	Tick  sim.Tick
	Where string // component name
	What  string // milestone, e.g. "recv", "fwd", "resp"
	Pkt   string // rendered packet (captured, not referenced)
	ID    uint64
}

// Tracer records events into a bounded ring buffer. A nil *Tracer is
// valid and records nothing, so components can carry an optional
// tracer without nil checks at every call site.
type Tracer struct {
	eq    *sim.EventQueue
	ring  []Event
	next  int
	count uint64
	// Filter, when non-nil, drops events it returns false for.
	Filter func(where, what string) bool
}

// New builds a tracer with capacity entries (default 4096 when <= 0).
func New(eq *sim.EventQueue, capacity int) *Tracer {
	if capacity <= 0 {
		capacity = 4096
	}
	return &Tracer{eq: eq, ring: make([]Event, 0, capacity)}
}

// Record captures a packet milestone.
func (t *Tracer) Record(where, what string, pkt *mem.Packet) {
	if t == nil {
		return
	}
	if t.Filter != nil && !t.Filter(where, what) {
		return
	}
	ev := Event{Tick: t.eq.Now(), Where: where, What: what}
	if pkt != nil {
		ev.Pkt = pkt.String()
		ev.ID = pkt.ID
	}
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, ev)
	} else {
		t.ring[t.next] = ev
	}
	t.next = (t.next + 1) % cap(t.ring)
	t.count++
}

// Len reports the number of retained events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	return len(t.ring)
}

// Total reports all events ever recorded (including evicted ones).
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	return t.count
}

// Events returns the retained events in chronological order.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	out := make([]Event, 0, len(t.ring))
	if len(t.ring) == cap(t.ring) {
		out = append(out, t.ring[t.next:]...)
	}
	out = append(out, t.ring[:t.next]...)
	if len(t.ring) < cap(t.ring) {
		// Ring not yet wrapped: entries are already in order.
		out = out[:0]
		out = append(out, t.ring...)
	}
	return out
}

// Dump writes the retained trace as one line per event.
func (t *Tracer) Dump(w io.Writer) error {
	for _, ev := range t.Events() {
		if _, err := fmt.Fprintf(w, "%12d %-24s %-8s %s\n",
			uint64(ev.Tick), ev.Where, ev.What, ev.Pkt); err != nil {
			return err
		}
	}
	return nil
}

// PacketHistory returns the retained milestones of one packet ID.
func (t *Tracer) PacketHistory(id uint64) []Event {
	var out []Event
	for _, ev := range t.Events() {
		if ev.ID == id {
			out = append(out, ev)
		}
	}
	return out
}
