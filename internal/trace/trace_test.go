package trace

import (
	"strings"
	"testing"

	"accesys/internal/mem"
	"accesys/internal/sim"
)

func TestRecordAndDump(t *testing.T) {
	eq := sim.NewEventQueue()
	tr := New(eq, 16)
	pkt := mem.NewRead(0x1000, 64)
	eq.Schedule(func() { tr.Record("bus", "recv", pkt) }, 100)
	eq.Schedule(func() { tr.Record("dram", "resp", pkt) }, 200)
	eq.Run()

	if tr.Len() != 2 || tr.Total() != 2 {
		t.Fatalf("Len=%d Total=%d", tr.Len(), tr.Total())
	}
	evs := tr.Events()
	if evs[0].Tick != 100 || evs[1].Tick != 200 {
		t.Fatalf("order wrong: %+v", evs)
	}

	var sb strings.Builder
	if err := tr.Dump(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "bus") || !strings.Contains(sb.String(), "ReadReq") {
		t.Fatalf("dump missing fields:\n%s", sb.String())
	}
}

func TestRingEviction(t *testing.T) {
	eq := sim.NewEventQueue()
	tr := New(eq, 4)
	for i := 0; i < 10; i++ {
		tr.Record("c", "e", nil)
	}
	if tr.Len() != 4 {
		t.Fatalf("ring should cap at 4, got %d", tr.Len())
	}
	if tr.Total() != 10 {
		t.Fatalf("Total = %d, want 10", tr.Total())
	}
}

func TestRingOrderAfterWrap(t *testing.T) {
	eq := sim.NewEventQueue()
	tr := New(eq, 4)
	for i := 0; i < 7; i++ {
		i := i
		eq.Schedule(func() { tr.Record("c", "e", mem.NewRead(uint64(i), 8)) }, sim.Tick(i+1))
	}
	eq.Run()
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Tick < evs[i-1].Tick {
			t.Fatalf("events out of order after wrap: %+v", evs)
		}
	}
	if evs[0].Tick != 4 {
		t.Fatalf("oldest retained should be tick 4, got %v", evs[0].Tick)
	}
}

func TestNilTracerSafe(t *testing.T) {
	var tr *Tracer
	tr.Record("x", "y", nil) // must not panic
	if tr.Len() != 0 || tr.Total() != 0 || tr.Events() != nil {
		t.Fatal("nil tracer should be inert")
	}
}

func TestFilter(t *testing.T) {
	eq := sim.NewEventQueue()
	tr := New(eq, 8)
	tr.Filter = func(where, what string) bool { return where == "keep" }
	tr.Record("keep", "a", nil)
	tr.Record("drop", "b", nil)
	if tr.Len() != 1 {
		t.Fatalf("filter failed: %d events", tr.Len())
	}
}

func TestPacketHistory(t *testing.T) {
	eq := sim.NewEventQueue()
	tr := New(eq, 16)
	p1 := mem.NewRead(0, 8)
	p2 := mem.NewRead(8, 8)
	tr.Record("a", "recv", p1)
	tr.Record("a", "recv", p2)
	tr.Record("b", "resp", p1)
	h := tr.PacketHistory(p1.ID)
	if len(h) != 2 || h[0].What != "recv" || h[1].What != "resp" {
		t.Fatalf("history wrong: %+v", h)
	}
}

func TestDefaultCapacity(t *testing.T) {
	eq := sim.NewEventQueue()
	tr := New(eq, 0)
	for i := 0; i < 5000; i++ {
		tr.Record("c", "e", nil)
	}
	if tr.Len() != 4096 {
		t.Fatalf("default capacity should be 4096, got %d", tr.Len())
	}
}
