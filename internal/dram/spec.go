// Package dram implements a bank-level DRAM timing model in the spirit
// of Ramulator2/DRAMsim3, which the paper uses as external memory
// simulators. Channels, ranks are folded into bank groups/banks; each
// bank runs a row-buffer state machine constrained by the JEDEC core
// timing parameters, and each channel schedules requests FR-FCFS with
// write draining.
//
// Per-technology presets reproduce Table III of the paper (channels,
// data width, data rate, peak bandwidth) with representative core
// timings for each standard.
package dram

import (
	"fmt"

	"accesys/internal/sim"
)

// Spec describes one DRAM technology configuration. Timing fields are
// in memory-clock cycles; the memory clock runs at DataRateMTs/2 MHz
// (double data rate).
type Spec struct {
	Name string

	// Geometry.
	Channels      int
	ChannelBits   int    // data bus width per channel in bits
	Ranks         int    // modeled as extra bank parallelism
	BankGroups    int    // per rank
	BanksPerGroup int    // per group
	RowBytes      uint64 // row buffer size per bank
	BurstLength   int    // transfers per burst (BL)

	// Data rate in mega-transfers per second per pin.
	DataRateMTs int

	// Core timings, in memory-clock cycles.
	CL   int // read column to data
	CWL  int // write column to data
	RCD  int // activate to column
	RP   int // precharge to activate
	RAS  int // activate to precharge
	RC   int // activate to activate, same bank
	WR   int // write recovery (data end to precharge)
	RTP  int // read to precharge
	CCD  int // column to column (burst gap)
	RRD  int // activate to activate, different banks
	FAW  int // four-activate window
	WTR  int // write-to-read turnaround
	RTW  int // read-to-write turnaround
	REFI int // refresh interval
	RFC  int // refresh cycle time

	// CapacityPerChannel in bytes.
	CapacityPerChannel uint64
}

// TCK returns the memory clock period.
func (s Spec) TCK() sim.Tick {
	// DataRate MT/s => clock = rate/2 MHz => period ps = 2e6/rate.
	return sim.Tick(2e6/float64(s.DataRateMTs) + 0.5)
}

// BurstBytes returns the bytes moved by one burst on one channel.
func (s Spec) BurstBytes() int { return s.BurstLength * s.ChannelBits / 8 }

// BurstTicks returns the data-bus occupancy of one burst.
func (s Spec) BurstTicks() sim.Tick {
	return sim.Tick(s.BurstLength/2) * s.TCK()
}

// BanksPerChannel returns the total independent banks in one channel.
func (s Spec) BanksPerChannel() int { return s.Ranks * s.BankGroups * s.BanksPerGroup }

// PeakBandwidthGBps returns the aggregate theoretical bandwidth.
func (s Spec) PeakBandwidthGBps() float64 {
	return float64(s.DataRateMTs) * float64(s.ChannelBits/8) * float64(s.Channels) / 1000
}

// Cycles converts a cycle count to ticks for this spec.
func (s Spec) Cycles(n int) sim.Tick { return sim.Tick(n) * s.TCK() }

// AccessLatencyNs returns a representative random-access latency in
// nanoseconds — activate, column access, and one data burst — the
// closed-bank service time analytic models use as the memory fill
// term.
func (s Spec) AccessLatencyNs() float64 {
	return (s.Cycles(s.RCD + s.CL).Nanoseconds()) + s.BurstTicks().Nanoseconds()
}

// StreamBandwidthGBps returns the sustainable row-hit streaming
// bandwidth: consecutive column bursts are spaced by the larger of the
// data-bus occupancy and the column-to-column constraint tCCD, so
// specs whose tCCD exceeds the burst time (e.g. LPDDR5) sustain less
// than their pin-rate peak.
func (s Spec) StreamBandwidthGBps() float64 {
	gap := s.BurstTicks()
	if ccd := s.Cycles(s.CCD); ccd > gap {
		gap = ccd
	}
	return float64(s.Channels) * float64(s.BurstBytes()) / gap.Nanoseconds()
}

// InterleavedStreamGBps returns the sustainable bandwidth when
// several sequential streams interleave on the channel (a multi-channel
// DMA plus CPU traffic): each row's worth of data additionally pays one
// precharge + activate, because the interleaving breaks pure row-hit
// locality at row granularity.
func (s Spec) InterleavedStreamGBps() float64 {
	rowNs := float64(s.RowBytes) / s.StreamBandwidthGBps() * float64(s.Channels)
	actNs := s.Cycles(s.RP + s.RCD).Nanoseconds()
	return float64(s.Channels) * float64(s.RowBytes) / (rowNs + actNs)
}

// Validate reports configuration errors.
func (s Spec) Validate() error {
	switch {
	case s.Channels <= 0 || s.ChannelBits <= 0 || s.DataRateMTs <= 0:
		return fmt.Errorf("dram: %s: geometry/rate must be positive", s.Name)
	case s.BurstLength < 2 || s.BurstLength%2 != 0:
		return fmt.Errorf("dram: %s: burst length must be even and >= 2", s.Name)
	case s.BanksPerChannel() <= 0:
		return fmt.Errorf("dram: %s: needs at least one bank", s.Name)
	case s.RowBytes == 0 || s.RowBytes%uint64(s.BurstBytes()) != 0:
		return fmt.Errorf("dram: %s: row bytes must be a burst multiple", s.Name)
	case s.CL <= 0 || s.RCD <= 0 || s.RP <= 0 || s.RAS <= 0 || s.RC <= 0:
		return fmt.Errorf("dram: %s: core timings must be positive", s.Name)
	case s.RC < s.RAS+s.RP:
		return fmt.Errorf("dram: %s: tRC must cover tRAS+tRP", s.Name)
	case s.CapacityPerChannel == 0:
		return fmt.Errorf("dram: %s: zero capacity", s.Name)
	}
	return nil
}

// Presets reproducing the paper's Table III configurations. Peak
// bandwidths: DDR3 12.8, DDR4 19.2, DDR5 25.6, HBM2 64, GDDR6 32 GB/s;
// LPDDR5 (used in Fig. 5) and GDDR5 are added alongside.
var (
	// DDR3_1600: 1 channel x 64-bit, 1600 MT/s = 12.8 GB/s.
	DDR3_1600 = Spec{
		Name: "DDR3-1600", Channels: 1, ChannelBits: 64, Ranks: 2,
		BankGroups: 1, BanksPerGroup: 8, RowBytes: 2048, BurstLength: 8,
		DataRateMTs: 1600,
		CL:          11, CWL: 8, RCD: 11, RP: 11, RAS: 28, RC: 39, WR: 12,
		RTP: 6, CCD: 4, RRD: 5, FAW: 32, WTR: 6, RTW: 8,
		REFI: 6240, RFC: 208, // 7.8us / 260ns at 1.25ns tCK
		CapacityPerChannel: 4 << 30,
	}

	// DDR4_2400: 1 channel x 64-bit, 2400 MT/s = 19.2 GB/s.
	DDR4_2400 = Spec{
		Name: "DDR4-2400", Channels: 1, ChannelBits: 64, Ranks: 2,
		BankGroups: 4, BanksPerGroup: 4, RowBytes: 1024, BurstLength: 8,
		DataRateMTs: 2400,
		CL:          17, CWL: 12, RCD: 17, RP: 17, RAS: 39, RC: 56, WR: 18,
		RTP: 9, CCD: 4, RRD: 6, FAW: 26, WTR: 9, RTW: 10,
		REFI: 9360, RFC: 420, // 7.8us / 350ns at 0.833ns tCK
		CapacityPerChannel: 8 << 30,
	}

	// DDR5_3200: 2 channels x 32-bit, 3200 MT/s = 25.6 GB/s.
	DDR5_3200 = Spec{
		Name: "DDR5-3200", Channels: 2, ChannelBits: 32, Ranks: 2,
		BankGroups: 8, BanksPerGroup: 4, RowBytes: 1024, BurstLength: 16,
		DataRateMTs: 3200,
		CL:          26, CWL: 24, RCD: 26, RP: 26, RAS: 52, RC: 78, WR: 48,
		RTP: 12, CCD: 8, RRD: 8, FAW: 32, WTR: 12, RTW: 14,
		REFI: 12480, RFC: 472,
		CapacityPerChannel: 8 << 30,
	}

	// LPDDR5_6400: 1 channel x 32-bit, 6400 MT/s = 25.6 GB/s, slower
	// core timings typical of low-power parts.
	LPDDR5_6400 = Spec{
		Name: "LPDDR5-6400", Channels: 1, ChannelBits: 32, Ranks: 1,
		BankGroups: 4, BanksPerGroup: 4, RowBytes: 2048, BurstLength: 16,
		DataRateMTs: 6400,
		CL:          40, CWL: 22, RCD: 29, RP: 34, RAS: 67, RC: 101, WR: 55,
		RTP: 24, CCD: 16, RRD: 16, FAW: 64, WTR: 22, RTW: 24,
		REFI: 12480, RFC: 672,
		CapacityPerChannel: 4 << 30,
	}

	// GDDR5_2000: 2 channels x 64-bit, 2000 MT/s = 32 GB/s.
	GDDR5_2000 = Spec{
		Name: "GDDR5-2000", Channels: 2, ChannelBits: 64, Ranks: 1,
		BankGroups: 4, BanksPerGroup: 4, RowBytes: 2048, BurstLength: 8,
		DataRateMTs: 2000,
		CL:          14, CWL: 10, RCD: 14, RP: 14, RAS: 32, RC: 46, WR: 16,
		RTP: 8, CCD: 4, RRD: 6, FAW: 24, WTR: 8, RTW: 10,
		REFI: 7800, RFC: 260,
		CapacityPerChannel: 2 << 30,
	}

	// GDDR6_2000: Table III row — 2 channels x 64-bit, 2000 MT/s = 32 GB/s.
	GDDR6_2000 = Spec{
		Name: "GDDR6-2000", Channels: 2, ChannelBits: 64, Ranks: 1,
		BankGroups: 4, BanksPerGroup: 4, RowBytes: 2048, BurstLength: 16,
		DataRateMTs: 2000,
		CL:          12, CWL: 8, RCD: 12, RP: 12, RAS: 28, RC: 40, WR: 14,
		RTP: 6, CCD: 8, RRD: 6, FAW: 20, WTR: 7, RTW: 9,
		REFI: 7800, RFC: 260,
		CapacityPerChannel: 2 << 30,
	}

	// HBM2_2000: Table III row — 2 channels x 128-bit, 2000 MT/s = 64 GB/s.
	HBM2_2000 = Spec{
		Name: "HBM2-2000", Channels: 2, ChannelBits: 128, Ranks: 1,
		BankGroups: 4, BanksPerGroup: 4, RowBytes: 1024, BurstLength: 4,
		DataRateMTs: 2000,
		CL:          14, CWL: 4, RCD: 14, RP: 14, RAS: 33, RC: 47, WR: 16,
		RTP: 6, CCD: 2, RRD: 4, FAW: 16, WTR: 8, RTW: 9,
		REFI: 3900, RFC: 260,
		CapacityPerChannel: 4 << 30,
	}
)

// SpecByName returns a preset by its Name field.
func SpecByName(name string) (Spec, bool) {
	for _, s := range []Spec{DDR3_1600, DDR4_2400, DDR5_3200, LPDDR5_6400, GDDR5_2000, GDDR6_2000, HBM2_2000} {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}
