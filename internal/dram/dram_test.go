package dram

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"

	"accesys/internal/mem"
	"accesys/internal/memtest"
	"accesys/internal/sim"
	"accesys/internal/stats"
)

func allSpecs() []Spec {
	return []Spec{DDR3_1600, DDR4_2400, DDR5_3200, LPDDR5_6400, GDDR5_2000, GDDR6_2000, HBM2_2000}
}

func TestSpecsValidate(t *testing.T) {
	for _, s := range allSpecs() {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
	}
}

// TestTableIIIBandwidths pins the presets to the paper's Table III.
func TestTableIIIBandwidths(t *testing.T) {
	cases := []struct {
		spec Spec
		want float64
	}{
		{DDR3_1600, 12.8},
		{DDR4_2400, 19.2},
		{DDR5_3200, 25.6},
		{HBM2_2000, 64},
		{GDDR6_2000, 32},
		{GDDR5_2000, 32},
		{LPDDR5_6400, 25.6},
	}
	for _, c := range cases {
		if got := c.spec.PeakBandwidthGBps(); got != c.want {
			t.Errorf("%s peak = %v GB/s, want %v", c.spec.Name, got, c.want)
		}
	}
}

func TestSpecDerived(t *testing.T) {
	s := DDR4_2400
	if s.TCK() != 833 {
		t.Fatalf("DDR4-2400 tCK = %v ps, want 833", uint64(s.TCK()))
	}
	if s.BurstBytes() != 64 {
		t.Fatalf("burst bytes = %d, want 64", s.BurstBytes())
	}
	if s.BurstTicks() != 4*833 {
		t.Fatalf("burst ticks = %v", s.BurstTicks())
	}
	if s.BanksPerChannel() != 32 {
		t.Fatalf("banks/channel = %d, want 32", s.BanksPerChannel())
	}
}

func TestSpecByName(t *testing.T) {
	s, ok := SpecByName("HBM2-2000")
	if !ok || s.Channels != 2 || s.ChannelBits != 128 {
		t.Fatalf("SpecByName(HBM2-2000) = %+v, %v", s, ok)
	}
	if _, ok := SpecByName("nope"); ok {
		t.Fatal("unknown spec should not resolve")
	}
}

func TestSpecValidationErrors(t *testing.T) {
	bad := DDR4_2400
	bad.RC = 10 // < RAS+RP
	if bad.Validate() == nil {
		t.Fatal("tRC < tRAS+tRP should fail validation")
	}
	bad2 := DDR4_2400
	bad2.RowBytes = 100 // not burst multiple
	if bad2.Validate() == nil {
		t.Fatal("row not burst-multiple should fail validation")
	}
}

func newDRAM(t *testing.T, spec Spec) (*sim.EventQueue, *DRAM, *memtest.Requestor, *stats.Registry) {
	t.Helper()
	eq := sim.NewEventQueue()
	reg := stats.NewRegistry()
	d := New("dram", eq, reg, Config{Spec: spec, Range: mem.Range(0, 64<<20)})
	r := memtest.NewRequestor(eq)
	mem.Bind(r.Port, d.Port())
	return eq, d, r, reg
}

func TestReadCompletes(t *testing.T) {
	eq, _, r, _ := newDRAM(t, DDR4_2400)
	r.Send(mem.NewRead(0, 64))
	eq.Run()
	if len(r.Done) != 1 || r.Done[0].Cmd != mem.ReadResp {
		t.Fatalf("read did not complete: %v", r.Done)
	}
	// Closed-row access: frontend(10ns) + tRCD(17c) + CL(17c) +
	// burst(4c) + backend(2ns) at 0.833ns/c ~ 43.7ns.
	lat := r.DoneAt[0]
	if lat < 30*sim.Nanosecond || lat > 80*sim.Nanosecond {
		t.Fatalf("first-read latency %v outside sane window", lat)
	}
}

func TestRowHitFasterThanConflict(t *testing.T) {
	// Same row back-to-back vs same bank different row.
	eq1, _, r1, _ := newDRAM(t, DDR4_2400)
	a := mem.NewRead(0, 64)
	b := mem.NewRead(64, 64) // same row (1 KiB rows)
	r1.Send(a)
	r1.Send(b)
	eq1.Run()
	hitGap := r1.DoneAt[1] - r1.DoneAt[0]

	eq2, d2, r2, _ := newDRAM(t, DDR4_2400)
	// Same bank, different row: rows rotate across 32 banks with 256B
	// channel interleave... compute a conflicting address directly:
	// channel-local row id k and k+nbanks map to the same bank.
	nb := uint64(d2.Spec().BanksPerChannel())
	rowBytes := d2.Spec().RowBytes
	chans := uint64(d2.Spec().Channels)
	il := uint64(256)
	// Device offset that lands channel 0, local addr rowBytes*nb:
	local := rowBytes * nb
	dev := (local/il)*il*chans + local%il
	c := mem.NewRead(0, 64)
	e := mem.NewRead(dev, 64)
	r2.Send(c)
	r2.Send(e)
	eq2.Run()
	confGap := r2.DoneAt[1] - r2.DoneAt[0]

	if hitGap >= confGap {
		t.Fatalf("row hit gap %v should beat conflict gap %v", hitGap, confGap)
	}
}

func TestStreamingBandwidth(t *testing.T) {
	for _, spec := range []Spec{DDR4_2400, HBM2_2000} {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			eq, _, r, _ := newDRAM(t, spec)
			const total = 1 << 20 // 1 MiB
			const pkt = 256
			for a := uint64(0); a < total; a += pkt {
				r.Send(mem.NewRead(a, pkt))
			}
			eq.Run()
			if len(r.Done) != total/pkt {
				t.Fatalf("completed %d of %d", len(r.Done), total/pkt)
			}
			elapsed := eq.Now().Seconds()
			gbps := float64(total) / elapsed / 1e9
			peak := spec.PeakBandwidthGBps()
			if gbps < 0.4*peak {
				t.Fatalf("achieved %.1f GB/s, below 40%% of peak %.1f", gbps, peak)
			}
			if gbps > peak*1.01 {
				t.Fatalf("achieved %.1f GB/s exceeds peak %.1f", gbps, peak)
			}
		})
	}
}

// TestTechnologyOrdering checks the relative streaming performance the
// paper's Fig. 5 depends on: HBM2 > GDDR5 > DDR4 > DDR3.
func TestTechnologyOrdering(t *testing.T) {
	elapsed := func(spec Spec) sim.Tick {
		eq, _, r, _ := newDRAM(t, spec)
		const total = 1 << 19
		for a := uint64(0); a < total; a += 256 {
			r.Send(mem.NewRead(a, 256))
		}
		eq.Run()
		return eq.Now()
	}
	tHBM := elapsed(HBM2_2000)
	tGDDR := elapsed(GDDR5_2000)
	tDDR4 := elapsed(DDR4_2400)
	tDDR3 := elapsed(DDR3_1600)
	if !(tHBM < tGDDR && tGDDR < tDDR4 && tDDR4 < tDDR3) {
		t.Fatalf("ordering violated: HBM=%v GDDR5=%v DDR4=%v DDR3=%v", tHBM, tGDDR, tDDR4, tDDR3)
	}
}

func TestWriteReadIntegrity(t *testing.T) {
	eq, _, r, _ := newDRAM(t, DDR3_1600)
	payload := make([]byte, 256)
	for i := range payload {
		payload[i] = byte(i ^ 0x5a)
	}
	r.Send(mem.NewWrite(0x1000, payload))
	rd := mem.NewRead(0x1000, 256)
	r.SendAt(rd, 10*sim.Microsecond)
	eq.Run()
	if !bytes.Equal(rd.Data, payload) {
		t.Fatal("write-read roundtrip mismatch")
	}
}

func TestRefreshHappens(t *testing.T) {
	eq, _, r, reg := newDRAM(t, DDR4_2400)
	// Spread sparse reads across 3 refresh intervals (~7.8us each).
	for i := 0; i < 30; i++ {
		r.SendAt(mem.NewRead(uint64(i)*64, 64), sim.Tick(i)*sim.Microsecond)
	}
	eq.Run()
	if reg.Lookup("dram.refreshes").Value() < 2 {
		t.Fatalf("refreshes = %v, want >= 2 over 30us", reg.Lookup("dram.refreshes").Value())
	}
}

func TestRowHitRateSequential(t *testing.T) {
	eq, _, r, reg := newDRAM(t, DDR4_2400)
	for a := uint64(0); a < 1<<16; a += 64 {
		r.Send(mem.NewRead(a, 64))
	}
	eq.Run()
	rate := reg.Lookup("dram.row_hit_rate").Value()
	if rate < 0.5 {
		t.Fatalf("sequential stream row hit rate %.2f, want >= 0.5", rate)
	}
}

func TestChannelMappingBijective(t *testing.T) {
	eq := sim.NewEventQueue()
	reg := stats.NewRegistry()
	d := New("dram", eq, reg, Config{Spec: HBM2_2000, Range: mem.Range(0, 32<<20)})
	f := func(off uint32) bool {
		offset := uint64(off) % (32 << 20)
		ch, local := d.channelOf(offset)
		if ch < 0 || ch >= d.cfg.Spec.Channels {
			return false
		}
		// Reconstruct: the mapping must be invertible.
		il := d.cfg.InterleaveBytes
		blk := local / il
		within := local % il
		back := (blk*uint64(d.cfg.Spec.Channels)+uint64(ch))*il + within
		return back == offset
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestChannelsBalanceSequential(t *testing.T) {
	eq := sim.NewEventQueue()
	reg := stats.NewRegistry()
	d := New("dram", eq, reg, Config{Spec: HBM2_2000, Range: mem.Range(0, 32<<20)})
	counts := make([]int, d.cfg.Spec.Channels)
	for a := uint64(0); a < 1<<16; a += 256 {
		ch, _ := d.channelOf(a)
		counts[ch]++
	}
	if counts[0] != counts[1] {
		t.Fatalf("sequential blocks unbalanced: %v", counts)
	}
}

func TestBackpressureRecovers(t *testing.T) {
	eq, _, r, _ := newDRAM(t, DDR3_1600)
	const n = 500 // far beyond queue depth
	for i := 0; i < n; i++ {
		r.Send(mem.NewRead(uint64(i)*64, 64))
	}
	eq.Run()
	if len(r.Done) != n {
		t.Fatalf("completed %d of %d under backpressure", len(r.Done), n)
	}
}

// Protocol checker: bank timing legality. Replays the channel model
// and asserts ACT-to-ACT >= tRC and data bus never overlaps.
func TestBankProtocolInvariants(t *testing.T) {
	spec := DDR4_2400
	ch := newChannel(spec)
	var lastDataEnd sim.Tick
	now := sim.Tick(0)
	f := func(addrs []uint16) bool {
		for _, a := range addrs {
			local := uint64(a) * 64
			co := ch.decompose(local)
			end := ch.access(now, co, false, 1)
			if end < lastDataEnd+spec.BurstTicks() {
				// New burst must start at or after previous end:
				// end - burst >= lastDataEnd.
				if end-spec.BurstTicks() < lastDataEnd {
					return false
				}
			}
			lastDataEnd = end
			now = end
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPostedWriteLatencyShort(t *testing.T) {
	eq, _, r, _ := newDRAM(t, DDR4_2400)
	r.Send(mem.NewWrite(0, make([]byte, 64)))
	eq.Run()
	if len(r.Done) != 1 {
		t.Fatal("write response missing")
	}
	if r.DoneAt[0] > 15*sim.Nanosecond {
		t.Fatalf("posted write took %v, want ~frontend latency", r.DoneAt[0])
	}
}

func ExampleSpec_PeakBandwidthGBps() {
	fmt.Printf("%s: %.1f GB/s\n", HBM2_2000.Name, HBM2_2000.PeakBandwidthGBps())
	// Output: HBM2-2000: 64.0 GB/s
}

func BenchmarkStreamingRead(b *testing.B) {
	for _, spec := range []Spec{DDR4_2400, HBM2_2000} {
		b.Run(spec.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				eq := sim.NewEventQueue()
				reg := stats.NewRegistry()
				d := New("dram", eq, reg, Config{Spec: spec, Range: mem.Range(0, 64<<20)})
				r := memtest.NewRequestor(eq)
				mem.Bind(r.Port, d.Port())
				for a := uint64(0); a < 1<<20; a += 256 {
					r.Send(mem.NewRead(a, 256))
				}
				eq.Run()
				gbps := float64(1<<20) / eq.Now().Seconds() / 1e9
				b.ReportMetric(gbps, "sim_GB/s")
			}
		})
	}
}
