package dram

import (
	"accesys/internal/sim"
)

// bank tracks one bank's row-buffer state machine via next-allowed
// ticks for each command class, the standard request-level DRAM
// modeling technique (gem5's MemCtrl, DRAMsim's bank states).
type bank struct {
	rowOpen bool
	row     uint64

	actReady sim.Tick // earliest next ACT
	colReady sim.Tick // earliest next column command
	preReady sim.Tick // earliest next PRE
}

// channel models one DRAM channel: banks, the shared data bus, the
// activation window, and FR-FCFS scheduling state.
type channel struct {
	spec Spec

	banks []bank

	busFree    sim.Tick
	lastIsWr   bool
	actWindow  []sim.Tick // recent ACT times for tFAW (ring of 4)
	lastAct    sim.Tick   // for tRRD
	nextRefill sim.Tick   // next refresh due

	// Stats accumulated by the owning controller.
	rowHits   uint64
	rowMisses uint64
	refreshes uint64
}

func newChannel(spec Spec) *channel {
	return &channel{
		spec:       spec,
		banks:      make([]bank, spec.BanksPerChannel()),
		actWindow:  make([]sim.Tick, 0, 4),
		nextRefill: spec.Cycles(spec.REFI),
	}
}

// coord is the decomposed location of an access within a channel.
type coord struct {
	bank int
	row  uint64
}

// decompose maps a channel-local byte address to bank/row coordinates.
// Mapping: row : bank : row-offset — consecutive rows rotate across
// banks so streaming accesses exploit bank parallelism.
func (c *channel) decompose(addr uint64) coord {
	rowID := addr / c.spec.RowBytes
	nb := uint64(len(c.banks))
	return coord{
		bank: int(rowID % nb),
		row:  rowID / nb,
	}
}

// applyRefresh folds due refreshes into bank availability. Refresh
// closes every row and blocks all banks for tRFC.
func (c *channel) applyRefresh(now sim.Tick) {
	for now >= c.nextRefill {
		end := c.nextRefill + c.spec.Cycles(c.spec.RFC)
		for i := range c.banks {
			b := &c.banks[i]
			b.rowOpen = false
			if b.actReady < end {
				b.actReady = end
			}
		}
		c.refreshes++
		c.nextRefill += c.spec.Cycles(c.spec.REFI)
	}
}

// rowHit reports whether the access would hit the open row.
func (c *channel) rowHit(co coord) bool {
	b := &c.banks[co.bank]
	return b.rowOpen && b.row == co.row
}

// maxTick returns the latest of its arguments.
func maxTick(ts ...sim.Tick) sim.Tick {
	var m sim.Tick
	for _, t := range ts {
		if t > m {
			m = t
		}
	}
	return m
}

// fawConstraint returns the earliest tick a new ACT may issue under the
// four-activate window.
func (c *channel) fawConstraint() sim.Tick {
	if len(c.actWindow) < 4 {
		return 0
	}
	return c.actWindow[len(c.actWindow)-4] + c.spec.Cycles(c.spec.FAW)
}

func (c *channel) recordAct(t sim.Tick) {
	c.actWindow = append(c.actWindow, t)
	if len(c.actWindow) > 8 {
		c.actWindow = c.actWindow[len(c.actWindow)-4:]
	}
	c.lastAct = t
}

// access issues one request (read or write of nBursts bursts) at the
// earliest legal time at or after now, updates all state, and returns
// the tick at which its data transfer completes.
func (c *channel) access(now sim.Tick, co coord, isWrite bool, nBursts int) sim.Tick {
	c.applyRefresh(now)
	s := c.spec
	b := &c.banks[co.bank]

	var col sim.Tick // column command issue time
	switch {
	case c.rowHit(co):
		c.rowHits++
		col = maxTick(now, b.colReady)
	case b.rowOpen: // conflict: PRE + ACT + column
		c.rowMisses++
		pre := maxTick(now, b.preReady)
		act := maxTick(pre+s.Cycles(s.RP), b.actReady, c.fawConstraint(), c.lastAct+s.Cycles(s.RRD))
		c.recordAct(act)
		b.actReady = act + s.Cycles(s.RC)
		b.preReady = act + s.Cycles(s.RAS)
		col = act + s.Cycles(s.RCD)
	default: // closed: ACT + column
		c.rowMisses++
		act := maxTick(now, b.actReady, c.fawConstraint(), c.lastAct+s.Cycles(s.RRD))
		c.recordAct(act)
		b.actReady = act + s.Cycles(s.RC)
		b.preReady = act + s.Cycles(s.RAS)
		col = act + s.Cycles(s.RCD)
	}
	b.rowOpen = true
	b.row = co.row

	// Column-to-data latency and the shared data bus. A read/write
	// turnaround penalty applies when direction flips.
	lat := s.Cycles(s.CL)
	if isWrite {
		lat = s.Cycles(s.CWL)
	}
	busAvail := c.busFree
	if c.lastIsWr != isWrite && c.busFree > 0 {
		if isWrite {
			busAvail += s.Cycles(s.RTW)
		} else {
			busAvail += s.Cycles(s.WTR)
		}
	}
	dataStart := maxTick(col+lat, busAvail)
	// Back-shift the column command so data aligns with the bus slot.
	col = dataStart - lat

	burst := s.BurstTicks()
	dataEnd := dataStart + sim.Tick(nBursts)*burst

	b.colReady = col + s.Cycles(s.CCD)*sim.Tick(nBursts)
	if isWrite {
		wrRecov := dataEnd + s.Cycles(s.WR)
		if wrRecov > b.preReady {
			b.preReady = wrRecov
		}
	} else {
		rtp := col + s.Cycles(s.RTP)
		if rtp > b.preReady {
			b.preReady = rtp
		}
	}
	c.busFree = dataEnd
	c.lastIsWr = isWrite
	return dataEnd
}
