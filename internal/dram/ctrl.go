package dram

import (
	"fmt"

	"accesys/internal/mem"
	"accesys/internal/sim"
	"accesys/internal/stats"
)

// Config parameterizes a DRAM device.
type Config struct {
	Spec  Spec
	Range mem.AddrRange
	// FrontendLatency covers controller decode/queueing; applied per
	// request before scheduling (default 10 ns).
	FrontendLatency sim.Tick
	// BackendLatency covers data return to the bus (default 2 ns).
	BackendLatency sim.Tick
	// ReadQDepth / WriteQDepth cap per-channel queues (defaults 32/64).
	ReadQDepth  int
	WriteQDepth int
	// InterleaveBytes sets channel interleaving granularity
	// (default 256).
	InterleaveBytes uint64
	// StarvationLimit bounds consecutive row-hit bypasses in FR-FCFS
	// (default 16).
	StarvationLimit int
}

func (c *Config) setDefaults() {
	if c.FrontendLatency == 0 {
		c.FrontendLatency = 10 * sim.Nanosecond
	}
	if c.BackendLatency == 0 {
		c.BackendLatency = 2 * sim.Nanosecond
	}
	if c.ReadQDepth == 0 {
		c.ReadQDepth = 32
	}
	if c.WriteQDepth == 0 {
		c.WriteQDepth = 64
	}
	if c.InterleaveBytes == 0 {
		c.InterleaveBytes = 256
	}
	if c.StarvationLimit == 0 {
		c.StarvationLimit = 16
	}
}

type dramReq struct {
	pkt     *mem.Packet
	co      coord
	nBursts int
	arrived sim.Tick
	isWrite bool
}

// chanCtrl is the per-channel front-end: FR-FCFS read queue, write
// queue with watermark draining, and a kick event that issues requests
// against the channel timing model.
type chanCtrl struct {
	d      *DRAM
	idx    int
	ch     *channel
	readQ  []*dramReq
	writeQ []*dramReq
	hitRun int
	drain  bool
	kick   *sim.Event
}

// DRAM is a multi-channel memory device with one response port.
type DRAM struct {
	name string
	eq   *sim.EventQueue
	cfg  Config

	port  *mem.ResponsePort
	respQ *mem.PacketQueue
	store *mem.Storage

	chans     []*chanCtrl
	reqFree   []*dramReq // recycled queue entries
	needRetry bool

	reads     *stats.Counter
	writes    *stats.Counter
	bytes     *stats.Counter
	rowHits   *stats.Counter
	rowMisses *stats.Counter
	refreshes *stats.Counter
	latency   *stats.Distribution
}

// New builds a DRAM device. The range size must not exceed the spec's
// total capacity.
func New(name string, eq *sim.EventQueue, reg *stats.Registry, cfg Config) *DRAM {
	cfg.setDefaults()
	if err := cfg.Spec.Validate(); err != nil {
		panic(err)
	}
	total := cfg.Spec.CapacityPerChannel * uint64(cfg.Spec.Channels)
	if cfg.Range.Size() > total {
		panic(fmt.Sprintf("dram: range %v exceeds %s capacity %d", cfg.Range, cfg.Spec.Name, total))
	}
	d := &DRAM{name: name, eq: eq, cfg: cfg}
	d.port = mem.NewResponsePort(name+".port", d)
	d.respQ = mem.NewPacketQueue(name+".resp", eq, func(p *mem.Packet) bool {
		return d.port.SendTimingResp(p)
	})
	d.store = mem.NewStorage(cfg.Range.Size())

	for i := 0; i < cfg.Spec.Channels; i++ {
		cc := &chanCtrl{d: d, idx: i, ch: newChannel(cfg.Spec)}
		cc.kick = eq.NewEvent(fmt.Sprintf("%s.ch%d.kick", name, i), cc.issue)
		d.chans = append(d.chans, cc)
	}

	g := reg.Group(name)
	d.reads = g.Counter("reads", "read requests")
	d.writes = g.Counter("writes", "write requests")
	d.bytes = g.Counter("bytes", "bytes transferred")
	d.rowHits = g.Counter("row_hits", "row buffer hits")
	d.rowMisses = g.Counter("row_misses", "row buffer misses")
	d.refreshes = g.Counter("refreshes", "all-bank refreshes")
	d.latency = g.Distribution("latency_ns", "request latency")
	g.Formula("row_hit_rate", "row buffer hit fraction", func() float64 {
		total := d.rowHits.Value() + d.rowMisses.Value()
		if total == 0 {
			return 0
		}
		return d.rowHits.Value() / total
	})
	return d
}

// Port returns the device's response port.
func (d *DRAM) Port() *mem.ResponsePort { return d.port }

// Ranges returns the served address ranges.
func (d *DRAM) Ranges() []mem.AddrRange { return []mem.AddrRange{d.cfg.Range} }

// Spec returns the configured technology.
func (d *DRAM) Spec() Spec { return d.cfg.Spec }

// channelOf decomposes a device offset into (channel, channel-local
// address) using block interleaving.
func (d *DRAM) channelOf(offset uint64) (int, uint64) {
	n := uint64(len(d.chans))
	blk := offset / d.cfg.InterleaveBytes
	within := offset % d.cfg.InterleaveBytes
	ch := blk % n
	local := (blk/n)*d.cfg.InterleaveBytes + within
	return int(ch), local
}

// RecvTimingReq implements mem.Responder.
func (d *DRAM) RecvTimingReq(port *mem.ResponsePort, pkt *mem.Packet) bool {
	offset := d.cfg.Range.Offset(pkt.Addr)
	chIdx, local := d.channelOf(offset)
	cc := d.chans[chIdx]

	isWrite := pkt.Cmd.IsWrite()
	if isWrite && len(cc.writeQ) >= d.cfg.WriteQDepth ||
		!isWrite && len(cc.readQ) >= d.cfg.ReadQDepth {
		d.needRetry = true
		return false
	}

	// Functional access happens at acceptance: reads observe current
	// contents, writes commit (write-queue forwarding is thus implicit).
	d.store.Access(pkt, offset)

	bb := d.cfg.Spec.BurstBytes()
	req := d.getReq()
	req.co = cc.ch.decompose(local)
	req.nBursts = (pkt.Size + bb - 1) / bb
	req.arrived = d.eq.Now()
	req.isWrite = isWrite
	if req.nBursts == 0 {
		req.nBursts = 1
	}
	if isWrite {
		d.writes.Inc()
		cc.writeQ = append(cc.writeQ, req)
		// Writes complete at the controller (posted) after the
		// frontend latency; the drain happens in the background. The
		// requester may release the packet on the ack, so the queued
		// request must not keep a reference (req.pkt stays nil).
		pkt.MakeResponse()
		d.respQ.Schedule(pkt, d.eq.Now()+d.cfg.FrontendLatency)
	} else {
		d.reads.Inc()
		req.pkt = pkt
		cc.readQ = append(cc.readQ, req)
	}
	d.bytes.Add(uint64(pkt.Size))
	cc.schedule(d.eq.Now() + d.cfg.FrontendLatency)
	return true
}

func (cc *chanCtrl) schedule(at sim.Tick) {
	if at < cc.d.eq.Now() {
		at = cc.d.eq.Now()
	}
	if cc.kick.Pending() {
		if cc.kick.When() <= at {
			return
		}
		cc.d.eq.Deschedule(cc.kick)
	}
	cc.d.eq.ScheduleEvent(cc.kick, at, sim.PriorityDefault)
}

// pick selects the next request FR-FCFS: the oldest row-hit unless the
// starvation bound is hit, else the oldest request.
func (cc *chanCtrl) pick(q []*dramReq) int {
	if cc.hitRun < cc.d.cfg.StarvationLimit {
		for i, r := range q {
			if cc.ch.rowHit(r.co) {
				if i != 0 {
					cc.hitRun++
				}
				return i
			}
		}
	}
	cc.hitRun = 0
	return 0
}

// issue runs scheduling rounds on the channel. Column commands pipeline
// under the in-flight data transfer, so the controller keeps issuing
// until the data bus is filled one column-latency ahead of now, then
// re-kicks just in time to extend the bus schedule seamlessly.
func (cc *chanCtrl) issue() {
	d := cc.d
	s := d.cfg.Spec
	lookahead := s.Cycles(s.CL)

	for {
		now := d.eq.Now()
		if cc.ch.busFree > now+lookahead {
			cc.schedule(cc.ch.busFree - lookahead)
			return
		}

		// Enter/leave write drain mode with hysteresis.
		if len(cc.writeQ) >= d.cfg.WriteQDepth*3/4 {
			cc.drain = true
		}
		if len(cc.writeQ) == 0 || (cc.drain && len(cc.writeQ) <= d.cfg.WriteQDepth/4) {
			cc.drain = false
		}

		var q *[]*dramReq
		switch {
		case len(cc.readQ) > 0 && !cc.drain:
			q = &cc.readQ
		case len(cc.writeQ) > 0:
			q = &cc.writeQ
		case len(cc.readQ) > 0:
			q = &cc.readQ
		default:
			return
		}

		i := cc.pick(*q)
		req := (*q)[i]
		*q = append((*q)[:i], (*q)[i+1:]...)

		hitsBefore, missesBefore := cc.ch.rowHits, cc.ch.rowMisses
		refBefore := cc.ch.refreshes
		dataEnd := cc.ch.access(now, req.co, req.isWrite, req.nBursts)
		d.rowHits.Add(cc.ch.rowHits - hitsBefore)
		d.rowMisses.Add(cc.ch.rowMisses - missesBefore)
		d.refreshes.Add(cc.ch.refreshes - refBefore)

		if !req.isWrite {
			done := dataEnd + d.cfg.BackendLatency
			d.latency.Sample(float64(done-req.arrived) / float64(sim.Nanosecond))
			req.pkt.MakeResponse()
			d.respQ.Schedule(req.pkt, done)
		}
		d.putReq(req)
		d.maybeRetry()
	}
}

// getReq leases a zeroed queue entry from the controller's freelist.
func (d *DRAM) getReq() *dramReq {
	if n := len(d.reqFree); n > 0 {
		req := d.reqFree[n-1]
		d.reqFree[n-1] = nil
		d.reqFree = d.reqFree[:n-1]
		return req
	}
	return new(dramReq)
}

// putReq recycles an issued queue entry.
func (d *DRAM) putReq(req *dramReq) {
	*req = dramReq{}
	d.reqFree = append(d.reqFree, req)
}

func (d *DRAM) maybeRetry() {
	if !d.needRetry {
		return
	}
	d.needRetry = false
	d.port.SendRetryReq()
}

// RecvRetryResp implements mem.Responder.
func (d *DRAM) RecvRetryResp(port *mem.ResponsePort) { d.respQ.RetryReceived() }

// ReadFunctional implements mem.Functional.
func (d *DRAM) ReadFunctional(addr uint64, buf []byte) {
	d.store.Read(d.cfg.Range.Offset(addr), buf)
}

// WriteFunctional implements mem.Functional.
func (d *DRAM) WriteFunctional(addr uint64, data []byte) {
	d.store.Write(d.cfg.Range.Offset(addr), data)
}

var _ mem.Responder = (*DRAM)(nil)
var _ mem.Functional = (*DRAM)(nil)
