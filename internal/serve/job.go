package serve

// Job bookkeeping: states, per-point counters, and the signal-latch
// event fan-out the streaming progress endpoint subscribes to.

import (
	"sync"
	"time"

	"accesys/internal/scenario"
	"accesys/internal/sweep"
)

// Job states. A job is unfinished in stateQueued and stateRunning and
// terminal in stateDone and stateFailed.
const (
	stateQueued  = "queued"
	stateRunning = "running"
	stateDone    = "done"
	stateFailed  = "failed"
)

// job is one submitted sweep.
type job struct {
	id       string
	client   string
	scenario *scenario.Scenario
	manifest []byte
	full     bool

	mu        sync.Mutex
	state     string
	err       string
	total     int
	completed int
	cold      int // simulated here (flight leaders included)
	warm      int // served from the shared cache
	shared    int // adopted from a concurrent job's in-flight execution
	result    *scenario.Result
	submitted time.Time
	started   time.Time
	finished  time.Time
	subs      map[chan struct{}]bool
}

// observe is the job's sweep OnResult hook.
func (j *job) observe(r sweep.Result) {
	j.mu.Lock()
	j.completed++
	switch {
	case r.Cached:
		j.warm++
	case r.Shared:
		j.shared++
	default:
		j.cold++
	}
	j.mu.Unlock()
	j.publish()
}

// subscribe registers a progress listener: a capacity-1 signal latch.
// Every publish after (and one immediately, so the subscriber renders
// the current state) guarantees a pending signal; coalesced updates are
// fine because listeners re-snapshot on each signal.
func (j *job) subscribe() chan struct{} {
	ch := make(chan struct{}, 1)
	ch <- struct{}{}
	j.mu.Lock()
	if j.subs == nil {
		j.subs = map[chan struct{}]bool{}
	}
	j.subs[ch] = true
	j.mu.Unlock()
	return ch
}

func (j *job) unsubscribe(ch chan struct{}) {
	j.mu.Lock()
	delete(j.subs, ch)
	j.mu.Unlock()
}

// publish latches a signal into every subscriber without blocking.
func (j *job) publish() {
	j.mu.Lock()
	for ch := range j.subs {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
	j.mu.Unlock()
}

// terminalState reports whether the job has reached done or failed.
func (j *job) terminalState() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state == stateDone || j.state == stateFailed
}

// JobStatus is the wire form of a job's state — what poll, list, and
// the event stream serve.
type JobStatus struct {
	ID       string `json:"id"`
	Scenario string `json:"scenario"`
	Client   string `json:"client"`
	State    string `json:"state"`
	Error    string `json:"error,omitempty"`
	// Total is the point count of the expanded matrix; Completed counts
	// finished points, partitioned into Cold (simulated by this job,
	// in-flight leaders included), Warm (shared cache hits), and Shared
	// (adopted from another job's concurrent execution).
	Total     int `json:"total"`
	Completed int `json:"completed"`
	Cold      int `json:"cold"`
	Warm      int `json:"warm"`
	Shared    int `json:"shared"`
	// Timestamps are RFC 3339; started/finished are empty until reached.
	SubmittedAt string `json:"submitted_at"`
	StartedAt   string `json:"started_at,omitempty"`
	FinishedAt  string `json:"finished_at,omitempty"`
}

// terminal reports whether the status is final.
func (st JobStatus) terminal() bool {
	return st.State == stateDone || st.State == stateFailed
}

func stamp(t time.Time) string {
	if t.IsZero() {
		return ""
	}
	return t.UTC().Format(time.RFC3339Nano)
}

// status snapshots the job for the wire.
func (j *job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return JobStatus{
		ID:          j.id,
		Scenario:    j.scenario.Name,
		Client:      j.client,
		State:       j.state,
		Error:       j.err,
		Total:       j.total,
		Completed:   j.completed,
		Cold:        j.cold,
		Warm:        j.warm,
		Shared:      j.shared,
		SubmittedAt: stamp(j.submitted),
		StartedAt:   stamp(j.started),
		FinishedAt:  stamp(j.finished),
	}
}

// rows returns the rendered result once the job is done ("" state
// means not found is impossible here; ok is false while unfinished or
// failed).
func (j *job) rows() (*scenario.Result, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result, j.state == stateDone && j.result != nil
}
