// Package serve is the sweep-as-a-service daemon behind
// `accesys serve`: a long-lived HTTP/JSON front end that accepts
// scenario manifests, queues them onto a bounded job queue, executes
// them against one shared warm cache, and serves rendered rows back.
// Concurrent jobs submitting overlapping manifests share cold
// simulations through one in-flight dedup Flight instead of racing;
// a full queue pushes back with Retry-After instead of accepting
// unbounded work; per-client quotas keep one client from monopolising
// the queue; a retention cap on finished jobs keeps the job table
// bounded over the daemon's lifetime.
package serve

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"accesys/internal/fleet"
	"accesys/internal/scenario"
	"accesys/internal/sweep"
)

// Config parameterises a Server.
type Config struct {
	// Cache is the shared warm result cache every job reads and writes.
	// Required.
	Cache *sweep.Cache
	// Profile, when non-nil, records per-point wall times across jobs
	// and is flushed after every job, so the daemon keeps improving the
	// fleet partitioner's schedule while it serves.
	Profile *sweep.Profile
	// Jobs bounds each running job's sweep worker pool (0 = one per
	// CPU).
	Jobs int
	// Concurrency is how many jobs run at once (default 2). Queued jobs
	// beyond it wait in submission order.
	Concurrency int
	// QueueLimit bounds jobs accepted but not yet running (default 16);
	// submissions beyond it are rejected with 503 + Retry-After.
	QueueLimit int
	// ClientQuota bounds one client's unfinished (queued or running)
	// jobs (default 4); submissions beyond it are rejected with 429.
	ClientQuota int
	// JobRetention bounds how many terminal (done or failed) jobs stay
	// pollable (default 256); beyond it the oldest are evicted, results
	// and all, so a long-lived daemon's job table doesn't grow without
	// bound. Unfinished jobs are never evicted.
	JobRetention int
	// FleetSpec, when non-nil, runs each job through the fleet
	// scheduler (fleet.Launch) instead of the in-process executor; the
	// shard caches merge into Cache's directory, so later jobs still
	// warm-hit earlier fleet work.
	FleetSpec *fleet.Spec
	// WorkDir holds per-job fleet work directories and spooled
	// manifests (default: <cache dir>/serve).
	WorkDir string
	// GCInterval, when positive, runs Cache.GC(GCMaxAge, GCMaxEntries)
	// periodically while the server is open.
	GCInterval   time.Duration
	GCMaxAge     time.Duration
	GCMaxEntries int
	// Clock supplies job timestamps and Retry-After math, injectable
	// for deterministic tests. Nil means time.Now.
	Clock func() time.Time
	// Logf, when non-nil, receives server diagnostics.
	Logf func(format string, args ...any)
}

func (c Config) concurrency() int {
	if c.Concurrency > 0 {
		return c.Concurrency
	}
	return 2
}

func (c Config) queueLimit() int {
	if c.QueueLimit > 0 {
		return c.QueueLimit
	}
	return 16
}

func (c Config) clientQuota() int {
	if c.ClientQuota > 0 {
		return c.ClientQuota
	}
	return 4
}

func (c Config) jobRetention() int {
	if c.JobRetention > 0 {
		return c.JobRetention
	}
	return 256
}

// Server is one running sweep service. Build with New, mount Handler
// on an http.Server, and Close on shutdown.
type Server struct {
	cfg    Config
	flight sweep.Flight

	mu       sync.Mutex
	jobs     map[string]*job
	order    []string       // job ids in submission order
	byClient map[string]int // client -> unfinished job count
	nextID   int
	closed   bool

	queue   chan *job
	done    chan struct{} // closed by Close: stops GC, fails queued jobs
	runners sync.WaitGroup
}

// testHookRunning, when non-nil, is invoked as each job enters the
// running state — white-box tests park the runner here to make queue
// and quota states deterministic.
var testHookRunning func(*job)

// New validates the config and starts the runner pool (and the GC
// ticker when configured). The server accepts submissions until Close.
func New(cfg Config) (*Server, error) {
	if cfg.Cache == nil {
		return nil, fmt.Errorf("serve: config needs a cache")
	}
	if cfg.WorkDir == "" {
		cfg.WorkDir = filepath.Join(cfg.Cache.Dir(), "serve")
	}
	if err := os.MkdirAll(cfg.WorkDir, 0o755); err != nil {
		return nil, err
	}
	s := &Server{
		cfg:      cfg,
		jobs:     map[string]*job{},
		byClient: map[string]int{},
		queue:    make(chan *job, cfg.queueLimit()),
		done:     make(chan struct{}),
	}
	for i := 0; i < cfg.concurrency(); i++ {
		s.runners.Add(1)
		go s.runLoop()
	}
	if cfg.GCInterval > 0 {
		s.runners.Add(1)
		go s.gcLoop()
	}
	return s, nil
}

func (s *Server) now() time.Time {
	if s.cfg.Clock != nil {
		return s.cfg.Clock()
	}
	return time.Now()
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// Close stops accepting submissions, fails jobs still waiting in the
// queue, waits for running jobs to finish, and flushes the cache
// counters and profile a final time.
//
// Closing s.queue is safe only because every send holds s.mu and
// re-checks closed first: once closed flips under the lock, no sender
// can reach the channel again, so the close below cannot race a send.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	close(s.done)
	close(s.queue)
	s.runners.Wait()
	return s.flushState()
}

// flushState persists the shared cache's counters and the wall
// profile; the first error wins but both are attempted.
func (s *Server) flushState() error {
	err := s.cfg.Cache.FlushCounters()
	if s.cfg.Profile != nil {
		if ferr := s.cfg.Profile.Flush(); err == nil {
			err = ferr
		}
	}
	return err
}

// submit registers and enqueues a parsed job. It returns a submitError
// carrying the HTTP status the handler should answer with when the
// server is closed, the client is over quota, or the queue is full.
//
// The non-blocking enqueue happens while still holding s.mu, for two
// reasons. First, closed is checked under the same lock Close sets it,
// and Close only closes s.queue after flipping closed — so no send can
// race the close (a send on a closed channel panics). Second, a job is
// registered in jobs/order/byClient only after its enqueue succeeds,
// so a queue-full rejection has nothing to roll back — no window where
// a concurrent submit's registration could be clobbered.
func (s *Server) submit(client string, sc *scenario.Scenario, manifest []byte, full bool, total int) (*job, *submitError) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, errServerClosed
	}
	if s.byClient[client] >= s.cfg.clientQuota() {
		return nil, errQuotaExceeded
	}
	s.nextID++
	j := &job{
		id:        fmt.Sprintf("j%d", s.nextID),
		client:    client,
		scenario:  sc,
		manifest:  manifest,
		full:      full,
		state:     stateQueued,
		total:     total,
		submitted: s.now(),
	}
	select {
	case s.queue <- j:
	default:
		s.nextID--
		return nil, errQueueFull
	}
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.byClient[client]++
	return j, nil
}

// finish moves a job to a terminal state, releases its quota slot, and
// enforces the terminal-job retention cap.
func (s *Server) finish(j *job, err error) {
	j.mu.Lock()
	j.finished = s.now()
	if err != nil {
		j.state = stateFailed
		j.err = err.Error()
	} else {
		j.state = stateDone
	}
	j.mu.Unlock()
	j.publish()

	s.mu.Lock()
	s.byClient[j.client]--
	if s.byClient[j.client] <= 0 {
		delete(s.byClient, j.client)
	}
	s.evictLocked()
	s.mu.Unlock()

	if err := s.flushState(); err != nil {
		s.logf("serve: flushing state after %s: %v", j.id, err)
	}
}

// evictLocked enforces JobRetention: when terminal jobs exceed the
// cap, the oldest are dropped from jobs/order — and their manifests
// and rendered results with them — so a long-lived daemon's job table
// stays bounded. Unfinished jobs are never evicted. The caller holds
// s.mu; taking j.mu inside it is safe because no path acquires s.mu
// while holding a job's lock.
func (s *Server) evictLocked() {
	over := -s.cfg.jobRetention()
	for _, id := range s.order {
		if s.jobs[id].terminalState() {
			over++
		}
	}
	if over <= 0 {
		return
	}
	kept := make([]string, 0, len(s.order)-over)
	for _, id := range s.order {
		if over > 0 && s.jobs[id].terminalState() {
			delete(s.jobs, id)
			over--
			continue
		}
		kept = append(kept, id)
	}
	s.order = kept
}

// runLoop is one runner: it drains the queue until Close. Jobs still
// queued at shutdown fail instead of running, so Close never waits on
// a deep queue.
func (s *Server) runLoop() {
	defer s.runners.Done()
	for j := range s.queue {
		select {
		case <-s.done:
			s.finish(j, fmt.Errorf("server shut down before the job ran"))
			continue
		default:
		}
		s.runJob(j)
	}
}

// runJob executes one job against the shared cache.
func (s *Server) runJob(j *job) {
	j.mu.Lock()
	j.state = stateRunning
	j.started = s.now()
	j.mu.Unlock()
	j.publish()
	if testHookRunning != nil {
		testHookRunning(j)
	}

	// A panicking simulation (the sweep engine re-raises worker panics
	// wrapped with the point key) must fail this job, never take the
	// daemon down with it.
	res, err := func() (res *scenario.Result, err error) {
		defer func() {
			if r := recover(); r != nil {
				res, err = nil, fmt.Errorf("job panicked: %v", r)
			}
		}()
		if s.cfg.FleetSpec != nil {
			return s.runFleet(j)
		}
		return s.runInProcess(j)
	}()
	if err == nil {
		j.mu.Lock()
		j.result = res
		j.mu.Unlock()
	}
	s.finish(j, err)
}

// runInProcess is the default executor: the job sweeps directly on the
// shared cache, coalescing with every other running job through the
// server's Flight.
func (s *Server) runInProcess(j *job) (*scenario.Result, error) {
	return j.scenario.Run(scenario.Options{
		Full:     j.full,
		Jobs:     s.cfg.Jobs,
		Cache:    s.cfg.Cache,
		Profile:  s.cfg.Profile,
		Flight:   &s.flight,
		OnResult: j.observe,
	})
}

// runFleet executes the job through the fleet scheduler: the manifest
// spools to the job's work directory (subprocess and command workers
// load it from disk), the shard caches merge into the shared cache,
// and a warm collection sweep renders the rows. Progress is
// shard-grained: counters land when the fleet report does.
func (s *Server) runFleet(j *job) (*scenario.Result, error) {
	dir := filepath.Join(s.cfg.WorkDir, j.id)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	manifestPath := filepath.Join(dir, "manifest.json")
	if err := os.WriteFile(manifestPath, j.manifest, 0o644); err != nil {
		return nil, err
	}
	points, err := j.scenario.PointsFor(j.full)
	if err != nil {
		return nil, err
	}
	rep, _, err := fleet.Launch(context.Background(), fleet.LaunchOptions{
		Name:     j.scenario.Name,
		Full:     j.full,
		Points:   points,
		Manifest: manifestPath,
		Spec:     s.cfg.FleetSpec,
		OutDir:   s.cfg.Cache.Dir(),
		WorkDir:  dir,
		Jobs:     s.cfg.Jobs,
		Warnf:    func(format string, args ...any) { s.logf("serve: %s: "+format, append([]any{j.id}, args...)...) },
	})
	if err != nil {
		return nil, err
	}
	j.mu.Lock()
	for _, sr := range rep.Shards {
		j.cold += sr.Cold
		j.warm += sr.Warm
	}
	j.mu.Unlock()
	j.publish()
	// Collection pass: every point is now merged into the shared cache,
	// so this sweep serves warm and renders byte-identically to a
	// single-process run. It counts toward completed, not cold/warm —
	// the fleet report already accounted for the simulations.
	runs, err := j.scenario.Expand(j.full)
	if err != nil {
		return nil, err
	}
	opts := scenario.Options{
		Full:  j.full,
		Jobs:  s.cfg.Jobs,
		Cache: s.cfg.Cache,
		OnResult: func(r sweep.Result) {
			j.mu.Lock()
			j.completed++
			j.mu.Unlock()
			j.publish()
		},
	}
	outs := opts.Sweep(j.scenario.Name, j.scenario.Points(runs))
	return j.scenario.Render(j.full, runs, outs)
}

// gcLoop ages the shared cache periodically until Close.
func (s *Server) gcLoop() {
	defer s.runners.Done()
	t := time.NewTicker(s.cfg.GCInterval)
	defer t.Stop()
	for {
		select {
		case <-s.done:
			return
		case <-t.C:
			res, err := s.cfg.Cache.GC(s.cfg.GCMaxAge, s.cfg.GCMaxEntries)
			if err != nil {
				s.logf("serve: gc: %v", err)
				continue
			}
			if res.Evicted > 0 || res.Temps > 0 {
				s.logf("serve: gc evicted %d entries (%d bytes), %d stale temps", res.Evicted, res.EvictedBytes, res.Temps)
			}
		}
	}
}

// job looks up a job by id.
func (s *Server) job(id string) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// snapshotAll returns every job's status in submission order.
func (s *Server) snapshotAll() []JobStatus {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	jobs := make([]*job, len(ids))
	for i, id := range ids {
		jobs[i] = s.jobs[id]
	}
	s.mu.Unlock()
	out := make([]JobStatus, len(jobs))
	for i, j := range jobs {
		out[i] = j.status()
	}
	return out
}
