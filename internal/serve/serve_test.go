package serve

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"accesys/internal/fleet"
	"accesys/internal/scenario"
	"accesys/internal/sweep"
)

// miniManifest is a two-point GEMM matrix that simulates in
// milliseconds.
const miniManifest = `{
  "name": "mini",
  "title": "mini sweep",
  "base": "pcie8gb",
  "workload": {"kind": "gemm", "n": 64},
  "axes": [{"axis": "lanes", "values": [4, 8]}]
}`

// overlapManifest shares both of miniManifest's points (same scenario
// name, same axes prefix) and adds a third.
const overlapManifest = `{
  "name": "mini",
  "title": "mini sweep",
  "base": "pcie8gb",
  "workload": {"kind": "gemm", "n": 64},
  "axes": [{"axis": "lanes", "values": [4, 8, 16]}]
}`

func newTestServer(t *testing.T, mutate func(*Config)) (*Server, *httptest.Server) {
	t.Helper()
	cache, err := sweep.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Cache: cache, Jobs: 2}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		if err := s.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	})
	return s, ts
}

func submitManifest(t *testing.T, ts *httptest.Server, manifest, client string) (int, map[string]any, http.Header) {
	t.Helper()
	req, err := http.NewRequest("POST", ts.URL+"/sweeps", strings.NewReader(manifest))
	if err != nil {
		t.Fatal(err)
	}
	if client != "" {
		req.Header.Set("X-Accesys-Client", client)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp.StatusCode, body, resp.Header
}

func getJSON(t *testing.T, url string, v any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("decoding %s: %v", url, err)
	}
	return resp.StatusCode
}

func waitDone(t *testing.T, ts *httptest.Server, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		var st JobStatus
		if code := getJSON(t, ts.URL+"/sweeps/"+id, &st); code != http.StatusOK {
			t.Fatalf("poll %s: status %d", id, code)
		}
		if st.terminal() {
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never finished", id)
	return JobStatus{}
}

func TestSubmitPollRowsLifecycle(t *testing.T) {
	_, ts := newTestServer(t, nil)
	code, body, _ := submitManifest(t, ts, miniManifest, "alice")
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d: %v", code, body)
	}
	id := body["id"].(string)
	if body["total"].(float64) != 2 {
		t.Fatalf("total = %v, want 2", body["total"])
	}

	st := waitDone(t, ts, id)
	if st.State != stateDone || st.Completed != 2 || st.Cold != 2 {
		t.Fatalf("final status %+v, want done with 2 cold points", st)
	}
	if st.Client != "alice" || st.Scenario != "mini" {
		t.Fatalf("identity fields wrong: %+v", st)
	}
	if st.SubmittedAt == "" || st.StartedAt == "" || st.FinishedAt == "" {
		t.Fatalf("missing timestamps: %+v", st)
	}

	var rows rowsPayload
	if code := getJSON(t, ts.URL+"/sweeps/"+id+"/rows", &rows); code != http.StatusOK {
		t.Fatalf("rows status %d", code)
	}
	if rows.ID != "mini" || len(rows.Rows) != 2 {
		t.Fatalf("rows payload %+v", rows)
	}

	// CSV and text renderings of the same result.
	for format, want := range map[string]string{"csv": "point,exec", "text": "== mini: mini sweep =="} {
		resp, err := http.Get(ts.URL + "/sweeps/" + id + "/rows?format=" + format)
		if err != nil {
			t.Fatal(err)
		}
		data := make([]byte, 4096)
		n, _ := resp.Body.Read(data)
		resp.Body.Close()
		if !strings.Contains(string(data[:n]), want) {
			t.Fatalf("%s format missing %q:\n%s", format, want, data[:n])
		}
	}

	// A second identical submission serves entirely warm.
	_, body2, _ := submitManifest(t, ts, miniManifest, "alice")
	st2 := waitDone(t, ts, body2["id"].(string))
	if st2.Warm != 2 || st2.Cold != 0 {
		t.Fatalf("repeat submission not warm: %+v", st2)
	}

	var listing struct {
		Jobs []JobStatus `json:"jobs"`
	}
	if code := getJSON(t, ts.URL+"/sweeps", &listing); code != http.StatusOK || len(listing.Jobs) != 2 {
		t.Fatalf("listing = %d jobs (status %d), want 2", len(listing.Jobs), code)
	}
	if listing.Jobs[0].ID != id {
		t.Fatalf("listing not in submission order: %+v", listing.Jobs)
	}
}

func TestSubmitRejectsBadManifests(t *testing.T) {
	_, ts := newTestServer(t, nil)
	for name, manifest := range map[string]string{
		"not json":     "{nope",
		"unknown axis": `{"name": "x", "workload": {"kind": "gemm", "n": 64}, "axes": [{"axis": "nope", "values": [1]}]}`,
	} {
		if code, body, _ := submitManifest(t, ts, manifest, ""); code != http.StatusBadRequest {
			t.Fatalf("%s: status %d, body %v", name, code, body)
		}
	}
	var errBody map[string]string
	if code := getJSON(t, ts.URL+"/sweeps/nosuch", &errBody); code != http.StatusNotFound {
		t.Fatalf("unknown job poll status %d", code)
	}
}

// TestSubmitRejectsExploreStanza pins the explore-manifest fix: the
// daemon used to silently strip the stanza and sweep the full matrix —
// the wrong computation, reported as success. It must refuse up front,
// naming the stanza and pointing at `accesys explore`.
func TestSubmitRejectsExploreStanza(t *testing.T) {
	_, ts := newTestServer(t, nil)
	manifest := `{
	  "name": "mini-explore",
	  "base": "pcie8gb",
	  "workload": {"kind": "gemm", "n": 64},
	  "axes": [{"axis": "lanes", "values": [4, 8]}],
	  "explore": {"strategy": "random", "budget": "4"}
	}`
	code, body, _ := submitManifest(t, ts, manifest, "")
	if code != http.StatusUnprocessableEntity {
		t.Fatalf("explore manifest: status %d, body %v", code, body)
	}
	msg, _ := body["error"].(string)
	if !strings.Contains(msg, "explore") || !strings.Contains(msg, "accesys explore") {
		t.Fatalf("rejection must name the stanza and the right command: %q", msg)
	}
	// The rejected job must not have entered the registry.
	var listing struct {
		Jobs []JobStatus `json:"jobs"`
	}
	if code := getJSON(t, ts.URL+"/sweeps", &listing); code != http.StatusOK || len(listing.Jobs) != 0 {
		t.Fatalf("rejected submission registered a job: %d %+v", code, listing.Jobs)
	}
}

func TestBackpressureAndQuota(t *testing.T) {
	release := make(chan struct{})
	releaseAll := sync.OnceFunc(func() { close(release) })
	running := make(chan string, 8)
	testHookRunning = func(j *job) {
		running <- j.id
		<-release
	}
	defer func() { testHookRunning = nil }()

	_, ts := newTestServer(t, func(c *Config) {
		c.Concurrency = 1
		c.QueueLimit = 1
		c.ClientQuota = 1
	})
	// Unpark every held job before the server's Close cleanup waits on
	// the runners — keeps an assertion failure from deadlocking the run.
	t.Cleanup(releaseAll)

	// Job 1 occupies the sole runner; job 2 fills the queue.
	code, b1, _ := submitManifest(t, ts, miniManifest, "alice")
	if code != http.StatusAccepted {
		t.Fatalf("first submit: %d %v", code, b1)
	}
	<-running
	code, b2, _ := submitManifest(t, ts, miniManifest, "bob")
	if code != http.StatusAccepted {
		t.Fatalf("second submit: %d %v", code, b2)
	}

	// Alice has one unfinished job and quota 1: rejected before the
	// queue is even consulted.
	code, _, hdr := submitManifest(t, ts, miniManifest, "alice")
	if code != http.StatusTooManyRequests {
		t.Fatalf("over-quota submit: status %d, want 429", code)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("429 missing Retry-After")
	}

	// A fresh client is under quota but the queue is full: back-pressure.
	code, _, hdr = submitManifest(t, ts, miniManifest, "carol")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("queue-full submit: status %d, want 503", code)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("503 missing Retry-After")
	}

	// Release job 1: alice's quota frees and job 2 starts, draining the
	// queue, so alice can queue a new job.
	release <- struct{}{}
	<-running // job 2 now running and parked
	code, b3, _ := submitManifest(t, ts, miniManifest, "alice")
	if code != http.StatusAccepted {
		t.Fatalf("alice second job: %d %v", code, b3)
	}

	// Stats reflect the live queue: job 3 waiting behind the parked job 2.
	var stats struct {
		Queue map[string]int `json:"queue"`
	}
	if code := getJSON(t, ts.URL+"/stats", &stats); code != http.StatusOK {
		t.Fatalf("stats status %d", code)
	}
	if stats.Queue["limit"] != 1 || stats.Queue["depth"] != 1 {
		t.Fatalf("queue stats %v, want depth 1 of limit 1", stats.Queue)
	}

	// Unpark everything; every accepted job completes.
	releaseAll()
	for _, b := range []map[string]any{b1, b2, b3} {
		if st := waitDone(t, ts, b["id"].(string)); st.State != stateDone {
			t.Fatalf("job %v finished %s: %s", b["id"], st.State, st.Error)
		}
	}
}

// TestConcurrentOverlapDedup submits two overlapping manifests that
// run concurrently and asserts the overlap is simulated exactly once:
// cold counts across both jobs sum to the number of unique points.
func TestConcurrentOverlapDedup(t *testing.T) {
	start := make(chan struct{})
	arrived := make(chan struct{}, 2)
	testHookRunning = func(j *job) {
		// Park both jobs at the starting line so their sweeps overlap.
		arrived <- struct{}{}
		<-start
	}
	defer func() { testHookRunning = nil }()

	_, ts := newTestServer(t, func(c *Config) { c.Concurrency = 2; c.Jobs = 2 })
	_, b1, _ := submitManifest(t, ts, miniManifest, "alice")
	_, b2, _ := submitManifest(t, ts, overlapManifest, "bob")
	<-arrived
	<-arrived
	close(start)

	st1 := waitDone(t, ts, b1["id"].(string))
	st2 := waitDone(t, ts, b2["id"].(string))
	if st1.State != stateDone || st2.State != stateDone {
		t.Fatalf("jobs failed: %+v / %+v", st1, st2)
	}
	const unique = 3 // lanes 4 and 8 shared, 16 only in the superset
	cold := st1.Cold + st2.Cold
	if cold != unique {
		t.Fatalf("cold simulations = %d (%d+%d), want %d: overlap was not deduplicated",
			cold, st1.Cold, st2.Cold, unique)
	}
	if st1.Completed != 2 || st2.Completed != 3 {
		t.Fatalf("completion counts %d/%d, want 2/3", st1.Completed, st2.Completed)
	}
	// Every completion is accounted cold, warm, or shared.
	for _, st := range []JobStatus{st1, st2} {
		if st.Cold+st.Warm+st.Shared != st.Completed {
			t.Fatalf("counter partition broken: %+v", st)
		}
	}
}

func TestEventsStreamEndsAtTerminal(t *testing.T) {
	_, ts := newTestServer(t, nil)
	_, body, _ := submitManifest(t, ts, miniManifest, "")
	id := body["id"].(string)

	resp, err := http.Get(ts.URL + "/sweeps/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	var last JobStatus
	lines := 0
	scanner := bufio.NewScanner(resp.Body)
	for scanner.Scan() {
		lines++
		if err := json.Unmarshal(scanner.Bytes(), &last); err != nil {
			t.Fatalf("line %d not JSON: %v", lines, err)
		}
	}
	if lines == 0 {
		t.Fatal("event stream produced no snapshots")
	}
	if !last.terminal() || last.Completed != 2 {
		t.Fatalf("stream ended before the terminal snapshot: %+v", last)
	}
}

func TestCloseFailsQueuedJobsAndRejectsSubmissions(t *testing.T) {
	release := make(chan struct{})
	releaseAll := sync.OnceFunc(func() { close(release) })
	t.Cleanup(releaseAll)
	var parked sync.WaitGroup
	parked.Add(1)
	testHookRunning = func(j *job) { parked.Done(); <-release }
	defer func() { testHookRunning = nil }()

	cache, err := sweep.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Cache: cache, Concurrency: 1, QueueLimit: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	_, running, _ := submitManifest(t, ts, miniManifest, "")
	parked.Wait()
	_, queued, _ := submitManifest(t, ts, miniManifest, "")

	closed := make(chan error, 1)
	go func() { closed <- s.Close() }()
	// Close waits on the running job; let it finish.
	time.Sleep(20 * time.Millisecond)
	releaseAll()
	if err := <-closed; err != nil {
		t.Fatalf("close: %v", err)
	}

	if st := waitDone(t, ts, running["id"].(string)); st.State != stateDone {
		t.Fatalf("running job at close finished %s: %s", st.State, st.Error)
	}
	st := waitDone(t, ts, queued["id"].(string))
	if st.State != stateFailed || !strings.Contains(st.Error, "shut down") {
		t.Fatalf("queued job at close: %+v, want failed with shutdown error", st)
	}

	if code, body, _ := submitManifest(t, ts, miniManifest, ""); code != http.StatusServiceUnavailable {
		t.Fatalf("post-close submit: %d %v", code, body)
	}
}

// TestConcurrentQueueFullRejectionsKeepRegistryConsistent hammers a
// full queue with concurrent submissions — some accepted, most
// rejected — and asserts the job registry stays coherent: the listing
// serves exactly the accepted jobs and never panics on a dangling id.
// Regression: the queue-full path used to roll back its registration
// by truncating the tail of the order slice, which under this load
// could drop a concurrent submission's id and leave its own dangling.
func TestConcurrentQueueFullRejectionsKeepRegistryConsistent(t *testing.T) {
	release := make(chan struct{})
	releaseAll := sync.OnceFunc(func() { close(release) })
	t.Cleanup(releaseAll)
	var parked sync.WaitGroup
	parked.Add(1)
	once := sync.Once{}
	testHookRunning = func(j *job) { once.Do(parked.Done); <-release }
	defer func() { testHookRunning = nil }()

	_, ts := newTestServer(t, func(c *Config) {
		c.Concurrency = 1
		c.QueueLimit = 2
		c.ClientQuota = 1
	})

	// Job 1 parks on the sole runner; the queue (capacity 2) is empty.
	code, _, _ := submitManifest(t, ts, miniManifest, "seed")
	if code != http.StatusAccepted {
		t.Fatalf("seed submit: %d", code)
	}
	parked.Wait()

	// 16 clients race for the 2 queue slots.
	type outcome struct {
		code int
		id   string
		err  error
	}
	results := make(chan outcome, 16)
	for g := 0; g < 16; g++ {
		go func(g int) {
			req, err := http.NewRequest("POST", ts.URL+"/sweeps", strings.NewReader(miniManifest))
			if err != nil {
				results <- outcome{err: err}
				return
			}
			req.Header.Set("X-Accesys-Client", fmt.Sprintf("c%d", g))
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				results <- outcome{err: err}
				return
			}
			defer resp.Body.Close()
			var body map[string]any
			if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
				results <- outcome{err: err}
				return
			}
			id, _ := body["id"].(string)
			results <- outcome{code: resp.StatusCode, id: id}
		}(g)
	}
	accepted := map[string]bool{}
	rejected := 0
	for i := 0; i < 16; i++ {
		o := <-results
		if o.err != nil {
			t.Fatalf("concurrent submit: %v", o.err)
		}
		switch o.code {
		case http.StatusAccepted:
			accepted[o.id] = true
		case http.StatusServiceUnavailable:
			rejected++
		default:
			t.Fatalf("concurrent submit: status %d", o.code)
		}
	}
	if len(accepted) != 2 || rejected != 14 {
		t.Fatalf("accepted %d rejected %d, want 2/14", len(accepted), rejected)
	}

	// The listing must be exactly seed + the accepted jobs, in order —
	// a corrupted registry either 500s, drops an accepted id, or keeps
	// a rejected one.
	var listing struct {
		Jobs []JobStatus `json:"jobs"`
	}
	if code := getJSON(t, ts.URL+"/sweeps", &listing); code != http.StatusOK {
		t.Fatalf("listing status %d", code)
	}
	if len(listing.Jobs) != 3 {
		t.Fatalf("listing has %d jobs, want 3: %+v", len(listing.Jobs), listing.Jobs)
	}
	for _, j := range listing.Jobs[1:] {
		if !accepted[j.ID] {
			t.Fatalf("listing holds unaccepted job %s", j.ID)
		}
	}

	releaseAll()
	for id := range accepted {
		if st := waitDone(t, ts, id); st.State != stateDone {
			t.Fatalf("accepted job %s finished %s: %s", id, st.State, st.Error)
		}
	}
}

// TestSubmitQueueFullRegistryInvariant hammers submit from many
// goroutines against a tiny queue that the runner is actively
// draining, so accepted and queue-full submissions interleave at the
// capacity boundary, then checks the registry invariant: every id in
// the order slice resolves to a registered job and vice versa.
// Regression: the old queue-full rollback truncated the tail of the
// order slice instead of removing its own id, so a rejection racing an
// accepted registration dropped the wrong id and left its own
// dangling, making the listing panic on a nil job.
func TestSubmitQueueFullRegistryInvariant(t *testing.T) {
	cache, err := sweep.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	sc, err := scenario.Parse([]byte(miniManifest))
	if err != nil {
		t.Fatal(err)
	}
	runs, err := sc.Expand(false)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Cache: cache, Concurrency: 1, QueueLimit: 1, Jobs: 1})
	if err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(500 * time.Millisecond)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for k := 0; time.Now().Before(deadline); k++ {
				// Fresh client per attempt keeps quota out of the way:
				// every submission reaches the queue send.
				s.submit(fmt.Sprintf("g%d-%d", g, k), sc, []byte(miniManifest), false, len(runs))
			}
		}(g)
	}
	wg.Wait()

	s.mu.Lock()
	for _, id := range s.order {
		if s.jobs[id] == nil {
			s.mu.Unlock()
			t.Fatalf("order holds id %s with no registered job", id)
		}
	}
	ordered := len(s.order)
	registered := len(s.jobs)
	s.mu.Unlock()
	if ordered != registered {
		t.Fatalf("order has %d ids but jobs has %d entries", ordered, registered)
	}
	// The listing exercises the same invariant end to end.
	_ = s.snapshotAll()
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}

// TestSubmitCloseRace drives submissions concurrently with Close.
// Regression: submit used to send on the queue after releasing the
// server lock, so a submission in flight while Close closed the
// channel panicked the daemon; the send now happens under the same
// lock that serialises the closed flag.
func TestSubmitCloseRace(t *testing.T) {
	cache, err := sweep.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	sc, err := scenario.Parse([]byte(miniManifest))
	if err != nil {
		t.Fatal(err)
	}
	runs, err := sc.Expand(false)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 20; round++ {
		s, err := New(Config{Cache: cache, Concurrency: 1, QueueLimit: 4})
		if err != nil {
			t.Fatal(err)
		}
		start := make(chan struct{})
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				<-start
				for k := 0; ; k++ {
					// Fresh client every attempt so quota never rejects
					// before the send path is reached.
					_, serr := s.submit(fmt.Sprintf("c%d-%d", g, k), sc, []byte(miniManifest), false, len(runs))
					if serr == errServerClosed {
						return
					}
				}
			}(g)
		}
		close(start)
		if err := s.Close(); err != nil {
			t.Fatalf("round %d close: %v", round, err)
		}
		wg.Wait()
	}
}

// TestJobRetentionEvictsOldestTerminal pins the retention policy: with
// JobRetention 2, four finished jobs leave only the newest two
// pollable, and the per-client quota table drops emptied entries.
func TestJobRetentionEvictsOldestTerminal(t *testing.T) {
	s, ts := newTestServer(t, func(c *Config) { c.JobRetention = 2 })
	var ids []string
	for i := 0; i < 4; i++ {
		code, body, _ := submitManifest(t, ts, miniManifest, "alice")
		if code != http.StatusAccepted {
			t.Fatalf("submit %d: status %d", i, code)
		}
		id := body["id"].(string)
		waitDone(t, ts, id)
		ids = append(ids, id)
	}

	// Eviction runs just after the terminal state becomes pollable, so
	// give the last finish a moment to complete its bookkeeping.
	deadline := time.Now().Add(5 * time.Second)
	for {
		var listing struct {
			Jobs []JobStatus `json:"jobs"`
		}
		if code := getJSON(t, ts.URL+"/sweeps", &listing); code != http.StatusOK {
			t.Fatalf("listing status %d", code)
		}
		if len(listing.Jobs) == 2 {
			if listing.Jobs[0].ID != ids[2] || listing.Jobs[1].ID != ids[3] {
				t.Fatalf("retained jobs %+v, want %v then %v", listing.Jobs, ids[2], ids[3])
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("listing never shrank to 2 jobs: %d", len(listing.Jobs))
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Evicted jobs are gone from poll and rows alike.
	for _, url := range []string{ts.URL + "/sweeps/" + ids[0], ts.URL + "/sweeps/" + ids[0] + "/rows"} {
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("GET %s after eviction: %d, want 404", url, resp.StatusCode)
		}
	}

	// All of alice's jobs finished, so her quota entry is deleted, not
	// left at zero.
	s.mu.Lock()
	clients := len(s.byClient)
	s.mu.Unlock()
	if clients != 0 {
		t.Fatalf("byClient has %d entries after all jobs finished, want 0", clients)
	}
}

func TestPanickingJobFailsWithoutKillingServer(t *testing.T) {
	// A packet size past the DMA page size panics inside the simulator.
	// The manifest expands fine, so the submission is accepted; the
	// runner must contain the panic as a failed job and keep serving.
	const panicManifest = `{
  "name": "boom",
  "title": "panic sweep",
  "base": "pcie8gb",
  "workload": {"kind": "gemm", "n": 64},
  "axes": [{"axis": "packet_bytes", "values": [8192]}]
}`
	_, ts := newTestServer(t, nil)
	code, body, _ := submitManifest(t, ts, panicManifest, "")
	if code != http.StatusAccepted {
		t.Fatalf("panic submit: %d %v", code, body)
	}
	st := waitDone(t, ts, body["id"].(string))
	if st.State != stateFailed || !strings.Contains(st.Error, "panicked") {
		t.Fatalf("panicking job = %+v, want failed with a panic error", st)
	}
	// The daemon survived: a healthy job still runs to completion.
	code, body, _ = submitManifest(t, ts, miniManifest, "")
	if code != http.StatusAccepted {
		t.Fatalf("follow-up submit: %d %v", code, body)
	}
	if st := waitDone(t, ts, body["id"].(string)); st.State != stateDone {
		t.Fatalf("follow-up job after a panic = %+v, want done", st)
	}
}

func TestStatsCountCacheAndDedup(t *testing.T) {
	s, ts := newTestServer(t, nil)
	_, body, _ := submitManifest(t, ts, miniManifest, "")
	waitDone(t, ts, body["id"].(string))
	var stats struct {
		Cache map[string]int `json:"cache"`
		Dedup map[string]int `json:"dedup"`
		Jobs  map[string]int `json:"jobs"`
	}
	if code := getJSON(t, ts.URL+"/stats", &stats); code != http.StatusOK {
		t.Fatalf("stats status %d", code)
	}
	if stats.Cache["misses"] != 2 {
		t.Fatalf("cache stats %v, want 2 misses", stats.Cache)
	}
	if stats.Dedup["inflight"] != 0 {
		t.Fatalf("dedup inflight %d after idle", stats.Dedup["inflight"])
	}
	if stats.Jobs[stateDone] != 1 {
		t.Fatalf("job counts %v", stats.Jobs)
	}
	_ = s
	var health map[string]string
	if code := getJSON(t, ts.URL+"/healthz", &health); code != http.StatusOK || health["status"] != "ok" {
		t.Fatalf("healthz = %d %v", code, health)
	}
}

func TestRowsBeforeDoneConflicts(t *testing.T) {
	release := make(chan struct{})
	releaseAll := sync.OnceFunc(func() { close(release) })
	var parked sync.WaitGroup
	parked.Add(1)
	testHookRunning = func(j *job) { parked.Done(); <-release }
	defer func() { testHookRunning = nil }()

	_, ts := newTestServer(t, func(c *Config) { c.Concurrency = 1 })
	t.Cleanup(releaseAll)
	_, body, _ := submitManifest(t, ts, miniManifest, "")
	parked.Wait()
	id := body["id"].(string)

	resp, err := http.Get(ts.URL + "/sweeps/" + id + "/rows")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("rows while running: %d, want 409", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("unfinished rows response missing Retry-After")
	}
	releaseAll()
	waitDone(t, ts, id)
}

func TestServeFleetExecutor(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet-backed serve is not short")
	}
	_, ts := newTestServer(t, func(c *Config) {
		c.FleetSpec = fleet.LocalSpec(2)
	})
	_, body, _ := submitManifest(t, ts, miniManifest, "")
	st := waitDone(t, ts, body["id"].(string))
	if st.State != stateDone {
		t.Fatalf("fleet job failed: %s", st.Error)
	}
	if st.Cold != 2 {
		t.Fatalf("fleet job cold = %d, want 2", st.Cold)
	}
	var rows rowsPayload
	if code := getJSON(t, ts.URL+"/sweeps/"+st.ID+"/rows", &rows); code != http.StatusOK {
		t.Fatalf("rows status %d", code)
	}
	if len(rows.Rows) != 2 {
		t.Fatalf("fleet rows %+v", rows)
	}
}

// TestConcurrentOverlapLeaderPanicFailsBothJobs races the in-flight
// dedup against a panicking simulation: two jobs submit the same
// panicking point concurrently, so one job's sweep leads the shared
// flight call and blows up mid-simulation. The follower must observe
// that failure — its job fails with the panic error too — rather than
// hanging on the flight's done channel or adopting a zero Result as a
// completed point. The daemon itself must survive both.
func TestConcurrentOverlapLeaderPanicFailsBothJobs(t *testing.T) {
	const panicManifest = `{
  "name": "boom",
  "title": "panic overlap",
  "base": "pcie8gb",
  "workload": {"kind": "gemm", "n": 64},
  "axes": [{"axis": "packet_bytes", "values": [8192]}]
}`
	start := make(chan struct{})
	arrived := make(chan struct{}, 2)
	testHookRunning = func(j *job) {
		// Park both jobs at the starting line so their sweeps overlap
		// on the panicking point.
		arrived <- struct{}{}
		<-start
	}
	defer func() { testHookRunning = nil }()

	_, ts := newTestServer(t, func(c *Config) { c.Concurrency = 2; c.Jobs = 2 })
	_, b1, _ := submitManifest(t, ts, panicManifest, "alice")
	_, b2, _ := submitManifest(t, ts, panicManifest, "bob")
	<-arrived
	<-arrived
	close(start)

	st1 := waitDone(t, ts, b1["id"].(string))
	st2 := waitDone(t, ts, b2["id"].(string))
	for i, st := range []JobStatus{st1, st2} {
		if st.State != stateFailed {
			t.Fatalf("job %d = %+v, want failed (follower adopted a zero result?)", i+1, st)
		}
		if !strings.Contains(st.Error, "panicked") {
			t.Fatalf("job %d error %q, want the propagated panic", i+1, st.Error)
		}
	}

	// The daemon is still healthy: a clean job completes.
	code, body, _ := submitManifest(t, ts, miniManifest, "")
	if code != http.StatusAccepted {
		t.Fatalf("follow-up submit: %d %v", code, body)
	}
	if st := waitDone(t, ts, body["id"].(string)); st.State != stateDone {
		t.Fatalf("follow-up job after the shared panic = %+v, want done", st)
	}
}
