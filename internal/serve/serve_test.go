package serve

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"accesys/internal/fleet"
	"accesys/internal/sweep"
)

// miniManifest is a two-point GEMM matrix that simulates in
// milliseconds.
const miniManifest = `{
  "name": "mini",
  "title": "mini sweep",
  "base": "pcie8gb",
  "workload": {"kind": "gemm", "n": 64},
  "axes": [{"axis": "lanes", "values": [4, 8]}]
}`

// overlapManifest shares both of miniManifest's points (same scenario
// name, same axes prefix) and adds a third.
const overlapManifest = `{
  "name": "mini",
  "title": "mini sweep",
  "base": "pcie8gb",
  "workload": {"kind": "gemm", "n": 64},
  "axes": [{"axis": "lanes", "values": [4, 8, 16]}]
}`

func newTestServer(t *testing.T, mutate func(*Config)) (*Server, *httptest.Server) {
	t.Helper()
	cache, err := sweep.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Cache: cache, Jobs: 2}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		if err := s.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	})
	return s, ts
}

func submitManifest(t *testing.T, ts *httptest.Server, manifest, client string) (int, map[string]any, http.Header) {
	t.Helper()
	req, err := http.NewRequest("POST", ts.URL+"/sweeps", strings.NewReader(manifest))
	if err != nil {
		t.Fatal(err)
	}
	if client != "" {
		req.Header.Set("X-Accesys-Client", client)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp.StatusCode, body, resp.Header
}

func getJSON(t *testing.T, url string, v any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("decoding %s: %v", url, err)
	}
	return resp.StatusCode
}

func waitDone(t *testing.T, ts *httptest.Server, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		var st JobStatus
		if code := getJSON(t, ts.URL+"/sweeps/"+id, &st); code != http.StatusOK {
			t.Fatalf("poll %s: status %d", id, code)
		}
		if st.terminal() {
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never finished", id)
	return JobStatus{}
}

func TestSubmitPollRowsLifecycle(t *testing.T) {
	_, ts := newTestServer(t, nil)
	code, body, _ := submitManifest(t, ts, miniManifest, "alice")
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d: %v", code, body)
	}
	id := body["id"].(string)
	if body["total"].(float64) != 2 {
		t.Fatalf("total = %v, want 2", body["total"])
	}

	st := waitDone(t, ts, id)
	if st.State != stateDone || st.Completed != 2 || st.Cold != 2 {
		t.Fatalf("final status %+v, want done with 2 cold points", st)
	}
	if st.Client != "alice" || st.Scenario != "mini" {
		t.Fatalf("identity fields wrong: %+v", st)
	}
	if st.SubmittedAt == "" || st.StartedAt == "" || st.FinishedAt == "" {
		t.Fatalf("missing timestamps: %+v", st)
	}

	var rows rowsPayload
	if code := getJSON(t, ts.URL+"/sweeps/"+id+"/rows", &rows); code != http.StatusOK {
		t.Fatalf("rows status %d", code)
	}
	if rows.ID != "mini" || len(rows.Rows) != 2 {
		t.Fatalf("rows payload %+v", rows)
	}

	// CSV and text renderings of the same result.
	for format, want := range map[string]string{"csv": "point,exec", "text": "== mini: mini sweep =="} {
		resp, err := http.Get(ts.URL + "/sweeps/" + id + "/rows?format=" + format)
		if err != nil {
			t.Fatal(err)
		}
		data := make([]byte, 4096)
		n, _ := resp.Body.Read(data)
		resp.Body.Close()
		if !strings.Contains(string(data[:n]), want) {
			t.Fatalf("%s format missing %q:\n%s", format, want, data[:n])
		}
	}

	// A second identical submission serves entirely warm.
	_, body2, _ := submitManifest(t, ts, miniManifest, "alice")
	st2 := waitDone(t, ts, body2["id"].(string))
	if st2.Warm != 2 || st2.Cold != 0 {
		t.Fatalf("repeat submission not warm: %+v", st2)
	}

	var listing struct {
		Jobs []JobStatus `json:"jobs"`
	}
	if code := getJSON(t, ts.URL+"/sweeps", &listing); code != http.StatusOK || len(listing.Jobs) != 2 {
		t.Fatalf("listing = %d jobs (status %d), want 2", len(listing.Jobs), code)
	}
	if listing.Jobs[0].ID != id {
		t.Fatalf("listing not in submission order: %+v", listing.Jobs)
	}
}

func TestSubmitRejectsBadManifests(t *testing.T) {
	_, ts := newTestServer(t, nil)
	for name, manifest := range map[string]string{
		"not json":     "{nope",
		"unknown axis": `{"name": "x", "workload": {"kind": "gemm", "n": 64}, "axes": [{"axis": "nope", "values": [1]}]}`,
	} {
		if code, body, _ := submitManifest(t, ts, manifest, ""); code != http.StatusBadRequest {
			t.Fatalf("%s: status %d, body %v", name, code, body)
		}
	}
	var errBody map[string]string
	if code := getJSON(t, ts.URL+"/sweeps/nosuch", &errBody); code != http.StatusNotFound {
		t.Fatalf("unknown job poll status %d", code)
	}
}

func TestBackpressureAndQuota(t *testing.T) {
	release := make(chan struct{})
	releaseAll := sync.OnceFunc(func() { close(release) })
	running := make(chan string, 8)
	testHookRunning = func(j *job) {
		running <- j.id
		<-release
	}
	defer func() { testHookRunning = nil }()

	_, ts := newTestServer(t, func(c *Config) {
		c.Concurrency = 1
		c.QueueLimit = 1
		c.ClientQuota = 1
	})
	// Unpark every held job before the server's Close cleanup waits on
	// the runners — keeps an assertion failure from deadlocking the run.
	t.Cleanup(releaseAll)

	// Job 1 occupies the sole runner; job 2 fills the queue.
	code, b1, _ := submitManifest(t, ts, miniManifest, "alice")
	if code != http.StatusAccepted {
		t.Fatalf("first submit: %d %v", code, b1)
	}
	<-running
	code, b2, _ := submitManifest(t, ts, miniManifest, "bob")
	if code != http.StatusAccepted {
		t.Fatalf("second submit: %d %v", code, b2)
	}

	// Alice has one unfinished job and quota 1: rejected before the
	// queue is even consulted.
	code, _, hdr := submitManifest(t, ts, miniManifest, "alice")
	if code != http.StatusTooManyRequests {
		t.Fatalf("over-quota submit: status %d, want 429", code)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("429 missing Retry-After")
	}

	// A fresh client is under quota but the queue is full: back-pressure.
	code, _, hdr = submitManifest(t, ts, miniManifest, "carol")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("queue-full submit: status %d, want 503", code)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("503 missing Retry-After")
	}

	// Release job 1: alice's quota frees and job 2 starts, draining the
	// queue, so alice can queue a new job.
	release <- struct{}{}
	<-running // job 2 now running and parked
	code, b3, _ := submitManifest(t, ts, miniManifest, "alice")
	if code != http.StatusAccepted {
		t.Fatalf("alice second job: %d %v", code, b3)
	}

	// Stats reflect the live queue: job 3 waiting behind the parked job 2.
	var stats struct {
		Queue map[string]int `json:"queue"`
	}
	if code := getJSON(t, ts.URL+"/stats", &stats); code != http.StatusOK {
		t.Fatalf("stats status %d", code)
	}
	if stats.Queue["limit"] != 1 || stats.Queue["depth"] != 1 {
		t.Fatalf("queue stats %v, want depth 1 of limit 1", stats.Queue)
	}

	// Unpark everything; every accepted job completes.
	releaseAll()
	for _, b := range []map[string]any{b1, b2, b3} {
		if st := waitDone(t, ts, b["id"].(string)); st.State != stateDone {
			t.Fatalf("job %v finished %s: %s", b["id"], st.State, st.Error)
		}
	}
}

// TestConcurrentOverlapDedup submits two overlapping manifests that
// run concurrently and asserts the overlap is simulated exactly once:
// cold counts across both jobs sum to the number of unique points.
func TestConcurrentOverlapDedup(t *testing.T) {
	start := make(chan struct{})
	arrived := make(chan struct{}, 2)
	testHookRunning = func(j *job) {
		// Park both jobs at the starting line so their sweeps overlap.
		arrived <- struct{}{}
		<-start
	}
	defer func() { testHookRunning = nil }()

	_, ts := newTestServer(t, func(c *Config) { c.Concurrency = 2; c.Jobs = 2 })
	_, b1, _ := submitManifest(t, ts, miniManifest, "alice")
	_, b2, _ := submitManifest(t, ts, overlapManifest, "bob")
	<-arrived
	<-arrived
	close(start)

	st1 := waitDone(t, ts, b1["id"].(string))
	st2 := waitDone(t, ts, b2["id"].(string))
	if st1.State != stateDone || st2.State != stateDone {
		t.Fatalf("jobs failed: %+v / %+v", st1, st2)
	}
	const unique = 3 // lanes 4 and 8 shared, 16 only in the superset
	cold := st1.Cold + st2.Cold
	if cold != unique {
		t.Fatalf("cold simulations = %d (%d+%d), want %d: overlap was not deduplicated",
			cold, st1.Cold, st2.Cold, unique)
	}
	if st1.Completed != 2 || st2.Completed != 3 {
		t.Fatalf("completion counts %d/%d, want 2/3", st1.Completed, st2.Completed)
	}
	// Every completion is accounted cold, warm, or shared.
	for _, st := range []JobStatus{st1, st2} {
		if st.Cold+st.Warm+st.Shared != st.Completed {
			t.Fatalf("counter partition broken: %+v", st)
		}
	}
}

func TestEventsStreamEndsAtTerminal(t *testing.T) {
	_, ts := newTestServer(t, nil)
	_, body, _ := submitManifest(t, ts, miniManifest, "")
	id := body["id"].(string)

	resp, err := http.Get(ts.URL + "/sweeps/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	var last JobStatus
	lines := 0
	scanner := bufio.NewScanner(resp.Body)
	for scanner.Scan() {
		lines++
		if err := json.Unmarshal(scanner.Bytes(), &last); err != nil {
			t.Fatalf("line %d not JSON: %v", lines, err)
		}
	}
	if lines == 0 {
		t.Fatal("event stream produced no snapshots")
	}
	if !last.terminal() || last.Completed != 2 {
		t.Fatalf("stream ended before the terminal snapshot: %+v", last)
	}
}

func TestCloseFailsQueuedJobsAndRejectsSubmissions(t *testing.T) {
	release := make(chan struct{})
	releaseAll := sync.OnceFunc(func() { close(release) })
	t.Cleanup(releaseAll)
	var parked sync.WaitGroup
	parked.Add(1)
	testHookRunning = func(j *job) { parked.Done(); <-release }
	defer func() { testHookRunning = nil }()

	cache, err := sweep.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Cache: cache, Concurrency: 1, QueueLimit: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	_, running, _ := submitManifest(t, ts, miniManifest, "")
	parked.Wait()
	_, queued, _ := submitManifest(t, ts, miniManifest, "")

	closed := make(chan error, 1)
	go func() { closed <- s.Close() }()
	// Close waits on the running job; let it finish.
	time.Sleep(20 * time.Millisecond)
	releaseAll()
	if err := <-closed; err != nil {
		t.Fatalf("close: %v", err)
	}

	if st := waitDone(t, ts, running["id"].(string)); st.State != stateDone {
		t.Fatalf("running job at close finished %s: %s", st.State, st.Error)
	}
	st := waitDone(t, ts, queued["id"].(string))
	if st.State != stateFailed || !strings.Contains(st.Error, "shut down") {
		t.Fatalf("queued job at close: %+v, want failed with shutdown error", st)
	}

	if code, body, _ := submitManifest(t, ts, miniManifest, ""); code != http.StatusServiceUnavailable {
		t.Fatalf("post-close submit: %d %v", code, body)
	}
}

func TestPanickingJobFailsWithoutKillingServer(t *testing.T) {
	// A packet size past the DMA page size panics inside the simulator.
	// The manifest expands fine, so the submission is accepted; the
	// runner must contain the panic as a failed job and keep serving.
	const panicManifest = `{
  "name": "boom",
  "title": "panic sweep",
  "base": "pcie8gb",
  "workload": {"kind": "gemm", "n": 64},
  "axes": [{"axis": "packet_bytes", "values": [8192]}]
}`
	_, ts := newTestServer(t, nil)
	code, body, _ := submitManifest(t, ts, panicManifest, "")
	if code != http.StatusAccepted {
		t.Fatalf("panic submit: %d %v", code, body)
	}
	st := waitDone(t, ts, body["id"].(string))
	if st.State != stateFailed || !strings.Contains(st.Error, "panicked") {
		t.Fatalf("panicking job = %+v, want failed with a panic error", st)
	}
	// The daemon survived: a healthy job still runs to completion.
	code, body, _ = submitManifest(t, ts, miniManifest, "")
	if code != http.StatusAccepted {
		t.Fatalf("follow-up submit: %d %v", code, body)
	}
	if st := waitDone(t, ts, body["id"].(string)); st.State != stateDone {
		t.Fatalf("follow-up job after a panic = %+v, want done", st)
	}
}

func TestStatsCountCacheAndDedup(t *testing.T) {
	s, ts := newTestServer(t, nil)
	_, body, _ := submitManifest(t, ts, miniManifest, "")
	waitDone(t, ts, body["id"].(string))
	var stats struct {
		Cache map[string]int `json:"cache"`
		Dedup map[string]int `json:"dedup"`
		Jobs  map[string]int `json:"jobs"`
	}
	if code := getJSON(t, ts.URL+"/stats", &stats); code != http.StatusOK {
		t.Fatalf("stats status %d", code)
	}
	if stats.Cache["misses"] != 2 {
		t.Fatalf("cache stats %v, want 2 misses", stats.Cache)
	}
	if stats.Dedup["inflight"] != 0 {
		t.Fatalf("dedup inflight %d after idle", stats.Dedup["inflight"])
	}
	if stats.Jobs[stateDone] != 1 {
		t.Fatalf("job counts %v", stats.Jobs)
	}
	_ = s
	var health map[string]string
	if code := getJSON(t, ts.URL+"/healthz", &health); code != http.StatusOK || health["status"] != "ok" {
		t.Fatalf("healthz = %d %v", code, health)
	}
}

func TestRowsBeforeDoneConflicts(t *testing.T) {
	release := make(chan struct{})
	releaseAll := sync.OnceFunc(func() { close(release) })
	var parked sync.WaitGroup
	parked.Add(1)
	testHookRunning = func(j *job) { parked.Done(); <-release }
	defer func() { testHookRunning = nil }()

	_, ts := newTestServer(t, func(c *Config) { c.Concurrency = 1 })
	t.Cleanup(releaseAll)
	_, body, _ := submitManifest(t, ts, miniManifest, "")
	parked.Wait()
	id := body["id"].(string)

	resp, err := http.Get(ts.URL + "/sweeps/" + id + "/rows")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("rows while running: %d, want 409", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("unfinished rows response missing Retry-After")
	}
	releaseAll()
	waitDone(t, ts, id)
}

func TestServeFleetExecutor(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet-backed serve is not short")
	}
	_, ts := newTestServer(t, func(c *Config) {
		c.FleetSpec = fleet.LocalSpec(2)
	})
	_, body, _ := submitManifest(t, ts, miniManifest, "")
	st := waitDone(t, ts, body["id"].(string))
	if st.State != stateDone {
		t.Fatalf("fleet job failed: %s", st.Error)
	}
	if st.Cold != 2 {
		t.Fatalf("fleet job cold = %d, want 2", st.Cold)
	}
	var rows rowsPayload
	if code := getJSON(t, ts.URL+"/sweeps/"+st.ID+"/rows", &rows); code != http.StatusOK {
		t.Fatalf("rows status %d", code)
	}
	if len(rows.Rows) != 2 {
		t.Fatalf("fleet rows %+v", rows)
	}
}
