package serve

// The HTTP surface. All responses are JSON except the rows endpoint's
// csv/text formats and the ndjson event stream.
//
//	POST /sweeps            submit a manifest (body), ?full=1 for
//	                        paper-scale; 202 + job id, 400 bad
//	                        manifest, 429 over quota, 503 queue full
//	                        (both with Retry-After)
//	GET  /sweeps            list every job's status
//	GET  /sweeps/{id}       poll one job
//	GET  /sweeps/{id}/rows  rendered result; ?format=json (default),
//	                        csv, or text; 409 until the job is done
//	GET  /sweeps/{id}/events  ndjson status stream until terminal
//	GET  /stats             cache counters, in-flight dedup, queue depth
//	GET  /healthz           liveness
//
// Clients identify themselves with the X-Accesys-Client header; absent
// that, the remote address's host stands in.

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"

	"accesys/internal/scenario"
)

// maxManifestBytes bounds a submission body; a scenario manifest is a
// few KB, so anything near the cap is not one.
const maxManifestBytes = 1 << 20

// submitError maps a rejected submission to its HTTP answer.
type submitError struct {
	status     int
	msg        string
	retryAfter int // seconds; 0 omits the header
}

var (
	errServerClosed  = &submitError{status: http.StatusServiceUnavailable, msg: "server is shutting down"}
	errQueueFull     = &submitError{status: http.StatusServiceUnavailable, msg: "job queue is full", retryAfter: 5}
	errQuotaExceeded = &submitError{status: http.StatusTooManyRequests, msg: "client has too many unfinished jobs", retryAfter: 10}
)

// Handler returns the server's HTTP surface.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /sweeps", s.handleSubmit)
	mux.HandleFunc("GET /sweeps", s.handleList)
	mux.HandleFunc("GET /sweeps/{id}", s.handlePoll)
	mux.HandleFunc("GET /sweeps/{id}/rows", s.handleRows)
	mux.HandleFunc("GET /sweeps/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// clientID names the submitting client for quota accounting.
func clientID(r *http.Request) string {
	if c := r.Header.Get("X-Accesys-Client"); c != "" {
		return c
	}
	if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
		return host
	}
	return r.RemoteAddr
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxManifestBytes))
	if err != nil {
		writeError(w, http.StatusRequestEntityTooLarge, "manifest too large (limit %d bytes)", maxManifestBytes)
		return
	}
	sc, err := scenario.Parse(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// The daemon only sweeps matrices; silently expanding a manifest
	// that asks for a search would run the wrong computation and throw
	// the stanza away.
	if sc.Explore != nil {
		writeError(w, http.StatusUnprocessableEntity,
			"manifest %q carries an \"explore\" stanza; this server only sweeps — run it with `accesys explore`", sc.Name)
		return
	}
	full := r.URL.Query().Get("full") == "1" || r.URL.Query().Get("full") == "true"
	// Expanding up front both validates the matrix fully and fixes the
	// job's total before anything runs.
	runs, err := sc.Expand(full)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	j, serr := s.submit(clientID(r), sc, body, full, len(runs))
	if serr != nil {
		if serr.retryAfter > 0 {
			w.Header().Set("Retry-After", strconv.Itoa(serr.retryAfter))
		}
		writeError(w, serr.status, "%s", serr.msg)
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]any{
		"id":     j.id,
		"status": "/sweeps/" + j.id,
		"rows":   "/sweeps/" + j.id + "/rows",
		"events": "/sweeps/" + j.id + "/events",
		"total":  len(runs),
	})
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"jobs": s.snapshotAll()})
}

func (s *Server) handlePoll(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, j.status())
}

// rowsPayload is the JSON form of a rendered result.
type rowsPayload struct {
	ID      string     `json:"id"`
	Title   string     `json:"title"`
	Headers []string   `json:"headers"`
	Rows    [][]string `json:"rows"`
	Notes   []string   `json:"notes,omitempty"`
}

func (s *Server) handleRows(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	res, ok := j.rows()
	if !ok {
		st := j.status()
		if st.State == stateFailed {
			writeError(w, http.StatusConflict, "job %s failed: %s", st.ID, st.Error)
			return
		}
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusConflict, "job %s is %s (%d/%d points)", st.ID, st.State, st.Completed, st.Total)
		return
	}
	switch format := r.URL.Query().Get("format"); format {
	case "", "json":
		writeJSON(w, http.StatusOK, rowsPayload{
			ID: res.ID, Title: res.Title, Headers: res.Headers, Rows: res.Rows, Notes: res.Notes,
		})
	case "csv":
		w.Header().Set("Content-Type", "text/csv")
		res.WriteCSV(w)
	case "text":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		res.Fprint(w)
	default:
		writeError(w, http.StatusBadRequest, "unknown format %q (want json, csv, or text)", format)
	}
}

// handleEvents streams the job's status as ndjson: one snapshot per
// state change (coalesced), ending after the terminal snapshot.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	flusher, _ := w.(http.Flusher)
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)

	ch := j.subscribe()
	defer j.unsubscribe(ch)
	enc := json.NewEncoder(w)
	for {
		select {
		case <-r.Context().Done():
			return
		case <-ch:
			st := j.status()
			if err := enc.Encode(st); err != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
			if st.terminal() {
				return
			}
		}
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	// Every job finish flushes the in-memory counters into the persisted
	// totals, so the lifetime numbers are the sum of both.
	hits, misses, errors := s.cfg.Cache.Stats()
	if t, err := s.cfg.Cache.Counters(); err == nil {
		hits += t.Hits
		misses += t.Misses
		errors += t.Errors
	}
	s.mu.Lock()
	counts := map[string]int{}
	for _, j := range s.jobs {
		j.mu.Lock()
		counts[j.state]++
		j.mu.Unlock()
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"cache": map[string]int{"hits": hits, "misses": misses, "errors": errors},
		"dedup": map[string]int{"inflight": s.flight.Inflight()},
		"queue": map[string]int{"depth": len(s.queue), "limit": s.cfg.queueLimit()},
		"jobs":  counts,
	})
}
