// Package interconnect implements the memory bus (MemBus) that joins
// the CPU cluster, memory controllers, and the PCIe root complex: a
// coherent-point crossbar with a fixed crossing latency, a shared
// bandwidth layer per direction, range-based routing, and per-egress
// queues with retry-protocol backpressure.
package interconnect

import (
	"fmt"

	"accesys/internal/mem"
	"accesys/internal/sim"
	"accesys/internal/stats"
)

// Config parameterizes a Bus.
type Config struct {
	// Latency is the fixed crossing latency per packet.
	Latency sim.Tick
	// BandwidthGBps limits each direction's aggregate throughput;
	// 0 means unlimited.
	BandwidthGBps float64
	// QueueDepth caps each egress queue in packets (default 16).
	QueueDepth int
}

// Bus is a crossbar between N upstream (requestor-facing) ports and M
// downstream (responder-facing) ports. Requests route by address range;
// responses retrace the route stack the bus pushed.
type Bus struct {
	name string
	eq   *sim.EventQueue
	cfg  Config

	upPorts   []*mem.ResponsePort
	upIndex   map[*mem.ResponsePort]int
	downPorts []*mem.RequestPort
	downIndex map[*mem.RequestPort]int

	reqQueues  []*mem.PacketQueue // one per downstream port
	respQueues []*mem.PacketQueue // one per upstream port

	// reqWaiters[i] lists upstream ports refused because reqQueues[i]
	// was full; respWaiters[i] lists downstream ports refused because
	// respQueues[i] was full.
	reqWaiters  [][]*mem.ResponsePort
	respWaiters [][]*mem.RequestPort

	addrMap      mem.AddrMap
	reqLayerFree sim.Tick
	rspLayerFree sim.Tick

	pktCount *stats.Counter
	pktBytes *stats.Counter
	retries  *stats.Counter
}

// New creates an empty bus; add ports before wiring the system.
func New(name string, eq *sim.EventQueue, reg *stats.Registry, cfg Config) *Bus {
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 16
	}
	b := &Bus{
		name:      name,
		eq:        eq,
		cfg:       cfg,
		upIndex:   make(map[*mem.ResponsePort]int),
		downIndex: make(map[*mem.RequestPort]int),
	}
	g := reg.Group(name)
	b.pktCount = g.Counter("packets", "packets crossed")
	b.pktBytes = g.Counter("bytes", "bytes crossed")
	b.retries = g.Counter("retries", "requests refused for backpressure")
	return b
}

// AddRequestorPort creates an upstream-facing port for one requestor
// (CPU cache, PCIe root complex, ...).
func (b *Bus) AddRequestorPort(name string) *mem.ResponsePort {
	p := mem.NewResponsePort(fmt.Sprintf("%s.up[%s]", b.name, name), b)
	i := len(b.upPorts)
	b.upPorts = append(b.upPorts, p)
	b.upIndex[p] = i

	q := mem.NewPacketQueue(fmt.Sprintf("%s.respq[%d]", b.name, i), b.eq, func(pkt *mem.Packet) bool {
		return p.SendTimingResp(pkt)
	})
	idx := i
	q.OnDrain = func() { b.wakeRespWaiters(idx) }
	b.respQueues = append(b.respQueues, q)
	b.respWaiters = append(b.respWaiters, nil)
	return p
}

// AddResponderPort creates a downstream-facing port routed to for the
// given address ranges.
func (b *Bus) AddResponderPort(name string, ranges ...mem.AddrRange) *mem.RequestPort {
	p := mem.NewRequestPort(fmt.Sprintf("%s.down[%s]", b.name, name), b)
	i := len(b.downPorts)
	b.downPorts = append(b.downPorts, p)
	b.downIndex[p] = i
	for _, r := range ranges {
		b.addrMap.Add(r, i)
	}

	q := mem.NewPacketQueue(fmt.Sprintf("%s.reqq[%d]", b.name, i), b.eq, func(pkt *mem.Packet) bool {
		return p.SendTimingReq(pkt)
	})
	idx := i
	q.OnDrain = func() { b.wakeReqWaiters(idx) }
	b.reqQueues = append(b.reqQueues, q)
	b.reqWaiters = append(b.reqWaiters, nil)
	return p
}

// AddRange routes additional ranges to an existing downstream port.
func (b *Bus) AddRange(p *mem.RequestPort, r mem.AddrRange) {
	i, ok := b.downIndex[p]
	if !ok {
		panic("interconnect: AddRange on foreign port")
	}
	b.addrMap.Add(r, i)
}

func (b *Bus) serialization(bytes int) sim.Tick {
	if b.cfg.BandwidthGBps <= 0 {
		return 0
	}
	return sim.Tick(float64(bytes)*1000/b.cfg.BandwidthGBps + 0.5)
}

// RecvTimingReq implements mem.Responder: a request arrives from an
// upstream port and is routed downstream.
func (b *Bus) RecvTimingReq(port *mem.ResponsePort, pkt *mem.Packet) bool {
	target, ok := b.addrMap.Find(pkt.Addr)
	if !ok {
		panic(fmt.Sprintf("%s: no route for %v", b.name, pkt))
	}
	q := b.reqQueues[target]
	if q.Len() >= b.cfg.QueueDepth {
		b.retries.Inc()
		b.reqWaiters[target] = append(b.reqWaiters[target], port)
		return false
	}

	now := b.eq.Now()
	ser := b.serialization(pkt.Size)
	start := now
	if b.reqLayerFree > start {
		start = b.reqLayerFree
	}
	b.reqLayerFree = start + ser

	b.pktCount.Inc()
	b.pktBytes.Add(uint64(pkt.Size))
	pkt.PushRoute(port)
	q.Schedule(pkt, start+ser+b.cfg.Latency)
	return true
}

// RecvTimingResp implements mem.Requestor: a response arrives from a
// downstream port and retraces the route stack upstream.
func (b *Bus) RecvTimingResp(port *mem.RequestPort, pkt *mem.Packet) bool {
	up := pkt.PopRoute()
	i, ok := b.upIndex[up]
	if !ok {
		panic(fmt.Sprintf("%s: response routed to foreign port", b.name))
	}
	q := b.respQueues[i]
	if q.Len() >= b.cfg.QueueDepth {
		pkt.PushRoute(up) // undo; the sender will retry
		di := b.downIndex[port]
		b.respWaiters[i] = append(b.respWaiters[i], b.downPorts[di])
		return false
	}

	now := b.eq.Now()
	ser := b.serialization(pkt.Size)
	start := now
	if b.rspLayerFree > start {
		start = b.rspLayerFree
	}
	b.rspLayerFree = start + ser

	q.Schedule(pkt, start+ser+b.cfg.Latency)
	return true
}

// RecvRetryReq implements mem.Requestor: a downstream responder is
// ready again; unblock that egress queue.
func (b *Bus) RecvRetryReq(port *mem.RequestPort) {
	b.reqQueues[b.downIndex[port]].RetryReceived()
}

// RecvRetryResp implements mem.Responder: an upstream requestor is
// ready again; unblock that egress queue.
func (b *Bus) RecvRetryResp(port *mem.ResponsePort) {
	b.respQueues[b.upIndex[port]].RetryReceived()
}

func (b *Bus) wakeReqWaiters(target int) {
	if b.reqQueues[target].Len() >= b.cfg.QueueDepth {
		return
	}
	waiters := b.reqWaiters[target]
	if len(waiters) == 0 {
		return
	}
	w := waiters[0]
	b.reqWaiters[target] = waiters[1:]
	w.SendRetryReq()
}

func (b *Bus) wakeRespWaiters(i int) {
	if b.respQueues[i].Len() >= b.cfg.QueueDepth {
		return
	}
	waiters := b.respWaiters[i]
	if len(waiters) == 0 {
		return
	}
	w := waiters[0]
	b.respWaiters[i] = waiters[1:]
	w.SendRetryResp()
}

var _ mem.Requestor = (*Bus)(nil)
var _ mem.Responder = (*Bus)(nil)
