package interconnect

import (
	"bytes"
	"testing"

	"accesys/internal/mem"
	"accesys/internal/memtest"
	"accesys/internal/sim"
	"accesys/internal/stats"
)

// rig wires two requestors and two echo responders around one bus.
type rig struct {
	eq       *sim.EventQueue
	bus      *Bus
	req0     *memtest.Requestor
	req1     *memtest.Requestor
	mem0     *memtest.EchoResponder
	mem1     *memtest.EchoResponder
	registry *stats.Registry
}

func newRig(t *testing.T, cfg Config) *rig {
	t.Helper()
	eq := sim.NewEventQueue()
	reg := stats.NewRegistry()
	b := New("membus", eq, reg, cfg)

	r0 := memtest.NewRequestor(eq)
	r1 := memtest.NewRequestor(eq)
	mem.Bind(r0.Port, b.AddRequestorPort("cpu"))
	mem.Bind(r1.Port, b.AddRequestorPort("io"))

	m0 := memtest.NewEchoResponder(eq, 0, 1<<16, 10*sim.Nanosecond)
	m1 := memtest.NewEchoResponder(eq, 1<<16, 1<<16, 10*sim.Nanosecond)
	mem.Bind(b.AddResponderPort("mem0", mem.Range(0, 1<<16)), m0.Port)
	mem.Bind(b.AddResponderPort("mem1", mem.Range(1<<16, 1<<16)), m1.Port)

	return &rig{eq: eq, bus: b, req0: r0, req1: r1, mem0: m0, mem1: m1, registry: reg}
}

func TestBusRoutesByAddress(t *testing.T) {
	rg := newRig(t, Config{Latency: 2 * sim.Nanosecond})
	rg.req0.Send(mem.NewRead(0x100, 64))   // -> mem0
	rg.req0.Send(mem.NewRead(0x10100, 64)) // -> mem1
	rg.eq.Run()
	if len(rg.mem0.Requests) != 1 || len(rg.mem1.Requests) != 1 {
		t.Fatalf("routing wrong: mem0=%d mem1=%d", len(rg.mem0.Requests), len(rg.mem1.Requests))
	}
	if len(rg.req0.Done) != 2 {
		t.Fatalf("responses lost: %d", len(rg.req0.Done))
	}
}

func TestBusLatency(t *testing.T) {
	rg := newRig(t, Config{Latency: 2 * sim.Nanosecond})
	rg.req0.Send(mem.NewRead(0x0, 64))
	rg.eq.Run()
	// 2ns bus in + 10ns memory + 2ns bus out = 14ns.
	if rg.req0.DoneAt[0] != 14*sim.Nanosecond {
		t.Fatalf("end-to-end latency %v, want 14ns", rg.req0.DoneAt[0])
	}
}

func TestBusResponseToCorrectRequestor(t *testing.T) {
	rg := newRig(t, Config{Latency: sim.Nanosecond})
	a := mem.NewRead(0x0, 64)
	b := mem.NewRead(0x40, 64)
	rg.req0.Send(a)
	rg.req1.Send(b)
	rg.eq.Run()
	if len(rg.req0.Done) != 1 || rg.req0.Done[0] != a {
		t.Fatal("req0 should get exactly its own response")
	}
	if len(rg.req1.Done) != 1 || rg.req1.Done[0] != b {
		t.Fatal("req1 should get exactly its own response")
	}
	if a.RouteDepth() != 0 || b.RouteDepth() != 0 {
		t.Fatal("route stacks must be fully unwound")
	}
}

func TestBusDataIntegrity(t *testing.T) {
	rg := newRig(t, Config{Latency: sim.Nanosecond})
	payload := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	rg.req0.Send(mem.NewWrite(0x80, payload))
	rd := mem.NewRead(0x80, 8)
	rg.req0.SendAt(rd, 100*sim.Nanosecond)
	rg.eq.Run()
	if !bytes.Equal(rd.Data, payload) {
		t.Fatalf("read back %v", rd.Data)
	}
}

func TestBusBandwidthSharing(t *testing.T) {
	// 1 GB/s layer: two 1000B packets serialize in the request layer.
	rg := newRig(t, Config{Latency: 0, BandwidthGBps: 1})
	rg.req0.Send(mem.NewRead(0, 1000))
	rg.req1.Send(mem.NewRead(0x400, 1000))
	rg.eq.Run()
	// Second request's bus crossing starts after the first's 1000ns
	// serialization: completions at >= 1000+10 and >= 2000+10 ns
	// (response layer adds its own serialization).
	last := rg.req1.DoneAt[len(rg.req1.DoneAt)-1]
	if last < 3000*sim.Nanosecond {
		t.Fatalf("bandwidth sharing too fast: %v", last)
	}
}

func TestBusBackpressureRetries(t *testing.T) {
	rg := newRig(t, Config{Latency: sim.Nanosecond, QueueDepth: 1})
	rg.mem0.RefuseRequests = true
	for i := 0; i < 4; i++ {
		rg.req0.Send(mem.NewRead(uint64(i)*64, 64))
	}
	rg.eq.Run()
	if len(rg.req0.Done) != 0 {
		t.Fatal("nothing should complete while memory refuses")
	}
	rg.mem0.ReleaseRequests()
	rg.eq.Run()
	if len(rg.req0.Done) != 4 {
		t.Fatalf("completed %d after release, want 4", len(rg.req0.Done))
	}
	if rg.registry.Lookup("membus.retries").Value() == 0 {
		t.Fatal("bus should have recorded retries")
	}
}

func TestBusManyOutstanding(t *testing.T) {
	rg := newRig(t, Config{Latency: sim.Nanosecond})
	const n = 200
	for i := 0; i < n; i++ {
		rg.req0.Send(mem.NewRead(uint64(i%512)*64, 64))
		rg.req1.Send(mem.NewRead(1<<16+uint64(i%512)*64, 64))
	}
	rg.eq.Run()
	if len(rg.req0.Done) != n || len(rg.req1.Done) != n {
		t.Fatalf("lost packets: %d/%d", len(rg.req0.Done), len(rg.req1.Done))
	}
}

func TestBusUnroutedPanics(t *testing.T) {
	rg := newRig(t, Config{Latency: sim.Nanosecond})
	defer func() {
		if recover() == nil {
			t.Fatal("unrouted address should panic")
		}
	}()
	rg.req0.Send(mem.NewRead(1<<40, 64))
	rg.eq.Run()
}

func TestBusAddRange(t *testing.T) {
	rg := newRig(t, Config{Latency: sim.Nanosecond})
	// Map an extra window onto mem0's port.
	p := rg.bus.downPorts[0]
	rg.bus.AddRange(p, mem.Range(1<<20, 0x1000))
	// EchoResponder serves addr-Base; base 0 with 64KB store, so probe
	// within store bounds is required — use a write (no data echo).
	rg.req0.Send(mem.NewWriteSize(1<<20, 0)) // size 0: routing only
	defer func() { recover() }()
	rg.eq.Run()
}
