// Package driver models the accelerator's kernel driver — the feature
// the paper lists as "Kernel Driver Support". It allocates host and
// device buffers, builds the SMMU page tables that back device-virtual
// addressing, stages packed operands, programs the accelerator's CSRs
// with timed MMIO writes across the memory bus and PCIe fabric, rings
// the doorbell, and delivers completion (MSI write plus interrupt
// latency) back to the caller.
package driver

import (
	"encoding/binary"
	"fmt"

	"accesys/internal/accel"
	"accesys/internal/mem"
	"accesys/internal/sim"
	"accesys/internal/smmu"
	"accesys/internal/stats"
)

// Deps are the system handles the driver operates on.
type Deps struct {
	EQ       *sim.EventQueue
	MMIO     *mem.ResponsePort // memory-bus port for the driver's MMIO
	FuncHost mem.Functional
	FuncDev  mem.Functional
	SMMU     *smmu.SMMU
	Accel    *accel.MatrixFlow

	BARBase   uint64
	HostRange mem.AddrRange
	DevRange  mem.AddrRange
	IOVABase  uint64

	// Flush writes back and invalidates the host cache hierarchy (DM
	// access method); may be nil.
	Flush func()
}

// Config tunes driver behaviour.
type Config struct {
	// IRQLatency models interrupt delivery and handler entry
	// (default 1 us).
	IRQLatency sim.Tick
	// DMMode makes the driver flush caches around each job.
	DMMode bool
	// DevMemMode places operands in device memory and runs the
	// accelerator's device path.
	DevMemMode bool
	// NoIOMMU programs physical addresses directly (SMMU bypassed).
	NoIOMMU bool
	// BurstBytes programs the accelerator's RegBurst when nonzero.
	BurstBytes int
}

// GEMMSpec describes one offloaded multiplication.
type GEMMSpec struct {
	M, N, K int
	// A, B hold row-major operands when running functionally; nil for
	// timing-only jobs.
	A, B []int32
}

// Result is handed to the completion callback.
type Result struct {
	Job accel.JobResult
	// C holds the row-major product for functional jobs.
	C []int32
	// PagesMapped counts the SMMU pages backing the job's buffers.
	PagesMapped int
	// Launched/Completed bracket the driver-visible job time
	// (doorbell MMIO to interrupt handler).
	Launched, Completed sim.Tick
}

// Driver is the host-side agent.
type Driver struct {
	name string
	eq   *sim.EventQueue
	deps Deps
	cfg  Config

	mmio *mem.RequestPort
	reqQ *mem.PacketQueue

	hostBrk uint64
	devBrk  uint64
	iovaBrk uint64
	msiAddr uint64 // host physical MSI page
	msiDev  uint64 // device-visible (IOVA) MSI address

	tb    *smmu.TableBuilder
	pages int

	jobActive bool
	launched  sim.Tick
	spec      GEMMSpec
	bufs      stagedBuffers
	onDone    func(Result)

	jobsStat  *stats.Counter
	pagesStat *stats.Counter
	mmioStat  *stats.Counter
}

type stagedBuffers struct {
	aDev, bDev, cDev uint64 // device-visible addresses programmed in CSRs
	cHost            uint64 // where to read C back functionally
	pages            int
}

// New builds and initializes a driver: it reserves the MSI page and
// the page-table arena and programs the SMMU root pointer.
func New(name string, eq *sim.EventQueue, reg *stats.Registry, deps Deps, cfg Config) *Driver {
	if cfg.IRQLatency == 0 {
		cfg.IRQLatency = sim.Microsecond
	}
	d := &Driver{
		name:    name,
		eq:      eq,
		deps:    deps,
		cfg:     cfg,
		hostBrk: deps.HostRange.Start,
		devBrk:  deps.DevRange.Start,
		iovaBrk: deps.IOVABase,
	}
	if d.hostBrk == 0 {
		// NULL guard page: address 0 is never handed out (and the
		// accelerator treats MSI address 0 as "disabled").
		d.hostBrk = smmu.PageBytes
	}
	d.reqQ = mem.NewPacketQueue(name+".reqq", eq, func(p *mem.Packet) bool {
		return d.port().SendTimingReq(p)
	})
	port := mem.NewRequestPort(name+".mmio", d)
	mem.Bind(port, deps.MMIO)
	d.mmio = port

	g := reg.Group(name)
	d.jobsStat = g.Counter("jobs", "GEMM jobs launched")
	d.pagesStat = g.Counter("pages_mapped", "SMMU pages mapped")
	d.mmioStat = g.Counter("mmio_writes", "MMIO register writes")

	// MSI landing page.
	d.msiAddr = d.AllocHost(smmu.PageBytes)
	// Page tables live in host memory; the walker reads them with
	// timed accesses.
	d.tb = smmu.NewTableBuilder(deps.FuncHost, func() uint64 {
		return d.AllocHost(smmu.PageBytes)
	})
	deps.SMMU.SetRootTable(d.tb.Root())
	// The accelerator's completion write crosses the SMMU like any
	// other upstream traffic: give the MSI page a device-visible
	// address (IOMMUs remap MSI doorbells the same way).
	if cfg.NoIOMMU {
		d.msiDev = d.msiAddr
	} else {
		d.msiDev = d.MapForDevice(d.msiAddr, smmu.PageBytes)
	}

	deps.Accel.OnDone = d.accelDone
	return d
}

func (d *Driver) port() *mem.RequestPort { return d.mmio }

// AllocHost carves a page-aligned host physical buffer.
func (d *Driver) AllocHost(size uint64) uint64 {
	addr := d.hostBrk
	d.hostBrk = mem.AlignUp(d.hostBrk+size, smmu.PageBytes)
	if d.hostBrk > d.deps.HostRange.End {
		panic(fmt.Sprintf("driver %s: host memory exhausted", d.name))
	}
	return addr
}

// AllocDev carves a page-aligned device-memory buffer.
func (d *Driver) AllocDev(size uint64) uint64 {
	addr := d.devBrk
	d.devBrk = mem.AlignUp(d.devBrk+size, smmu.PageBytes)
	if d.devBrk > d.deps.DevRange.End {
		panic(fmt.Sprintf("driver %s: device memory exhausted", d.name))
	}
	return addr
}

// MapForDevice maps a host physical buffer into the device's IOVA
// space and returns the IOVA.
func (d *Driver) MapForDevice(phys, size uint64) uint64 {
	iova := d.iovaBrk
	npages := int(mem.AlignUp(size, smmu.PageBytes) / smmu.PageBytes)
	d.tb.MapRange(iova, phys, uint64(npages)*smmu.PageBytes)
	d.iovaBrk += uint64(npages) * smmu.PageBytes
	d.pages += npages
	d.pagesStat.Add(uint64(npages))
	return iova
}

// PagesMapped reports the total SMMU pages mapped so far (Table IV's
// memory footprint).
func (d *Driver) PagesMapped() int { return d.pages }

// MSIAddr returns the host address the accelerator's completion write
// targets.
func (d *Driver) MSIAddr() uint64 { return d.msiAddr }

// writeReg issues one timed 64-bit MMIO write (posted through the RC).
func (d *Driver) writeReg(off uint64, v uint64) {
	buf := make([]byte, 8)
	binary.LittleEndian.PutUint64(buf, v)
	pkt := mem.NewWrite(d.deps.BARBase+off, buf)
	pkt.Issued = d.eq.Now()
	d.mmioStat.Inc()
	d.reqQ.Schedule(pkt, d.eq.Now())
}

// RunGEMM stages, maps, programs and launches one GEMM; onDone fires
// after the completion interrupt.
func (d *Driver) RunGEMM(spec GEMMSpec, onDone func(Result)) {
	if d.jobActive {
		panic(fmt.Sprintf("driver %s: RunGEMM while a job is active", d.name))
	}
	if spec.M%accel.Dim != 0 || spec.N%accel.Dim != 0 || spec.K%accel.Dim != 0 {
		panic(fmt.Sprintf("driver %s: dimensions %dx%dx%d must be multiples of %d",
			d.name, spec.M, spec.N, spec.K, accel.Dim))
	}
	d.jobActive = true
	d.spec = spec
	d.onDone = onDone
	d.launched = d.eq.Now()
	d.jobsStat.Inc()

	aBytes := uint64(accel.PackedASize(spec.M, spec.K))
	bBytes := uint64(accel.PackedBSize(spec.K, spec.N))
	cBytes := uint64(accel.PackedCSize(spec.M, spec.N))

	var b stagedBuffers
	pagesBefore := d.pages
	if d.cfg.DevMemMode {
		b.aDev = d.AllocDev(aBytes)
		b.bDev = d.AllocDev(bBytes)
		b.cDev = d.AllocDev(cBytes)
		b.cHost = b.cDev
		if spec.A != nil {
			d.deps.FuncDev.WriteFunctional(b.aDev, accel.PackA(spec.A, spec.M, spec.K))
			d.deps.FuncDev.WriteFunctional(b.bDev, accel.PackB(spec.B, spec.K, spec.N))
		}
	} else {
		aPhys := d.AllocHost(aBytes)
		bPhys := d.AllocHost(bBytes)
		cPhys := d.AllocHost(cBytes)
		if d.cfg.NoIOMMU {
			b.aDev, b.bDev, b.cDev = aPhys, bPhys, cPhys
		} else {
			b.aDev = d.MapForDevice(aPhys, aBytes)
			b.bDev = d.MapForDevice(bPhys, bBytes)
			b.cDev = d.MapForDevice(cPhys, cBytes)
		}
		b.cHost = cPhys
		if spec.A != nil {
			d.deps.FuncHost.WriteFunctional(aPhys, accel.PackA(spec.A, spec.M, spec.K))
			d.deps.FuncHost.WriteFunctional(bPhys, accel.PackB(spec.B, spec.K, spec.N))
		}
		if d.cfg.DMMode && d.deps.Flush != nil {
			d.deps.Flush()
		}
	}
	b.pages = d.pages - pagesBefore
	d.bufs = b

	mode := uint64(accel.ModeHost)
	if d.cfg.DevMemMode {
		mode = accel.ModeDevMem
	}
	d.writeReg(accel.RegAAddr, b.aDev)
	d.writeReg(accel.RegBAddr, b.bDev)
	d.writeReg(accel.RegCAddr, b.cDev)
	d.writeReg(accel.RegM, uint64(spec.M))
	d.writeReg(accel.RegN, uint64(spec.N))
	d.writeReg(accel.RegK, uint64(spec.K))
	if d.cfg.BurstBytes > 0 {
		d.writeReg(accel.RegBurst, uint64(d.cfg.BurstBytes))
	}
	d.writeReg(accel.RegMSIAddr, d.msiDev)
	d.writeReg(accel.RegMode, mode)
	d.writeReg(accel.RegCtrl, 1)
}

// accelDone is wired as the accelerator's completion hook: it fires
// when the MSI write has landed; the handler runs after IRQLatency.
func (d *Driver) accelDone(job accel.JobResult) {
	d.eq.ScheduleAfter(func() { d.irqHandler(job) }, d.cfg.IRQLatency)
}

func (d *Driver) irqHandler(job accel.JobResult) {
	spec, b, onDone := d.spec, d.bufs, d.onDone
	res := Result{
		Job:         job,
		PagesMapped: b.pages,
		Launched:    d.launched,
		Completed:   d.eq.Now(),
	}
	if spec.A != nil {
		cBuf := make([]byte, accel.PackedCSize(spec.M, spec.N))
		if d.cfg.DevMemMode {
			d.deps.FuncDev.ReadFunctional(b.cHost, cBuf)
		} else {
			d.deps.FuncHost.ReadFunctional(b.cHost, cBuf)
		}
		res.C = accel.UnpackC(cBuf, spec.M, spec.N)
	}
	if d.cfg.DMMode && d.deps.Flush != nil {
		d.deps.Flush()
	}
	d.jobActive = false
	d.onDone = nil
	if onDone != nil {
		onDone(res)
	}
}

// RecvTimingResp implements mem.Requestor: MMIO write acks and reads.
func (d *Driver) RecvTimingResp(port *mem.RequestPort, pkt *mem.Packet) bool {
	pkt.Release() // MMIO register-write ack; the round trip ends here
	return true
}

// RecvRetryReq implements mem.Requestor.
func (d *Driver) RecvRetryReq(port *mem.RequestPort) { d.reqQ.RetryReceived() }

var _ mem.Requestor = (*Driver)(nil)
