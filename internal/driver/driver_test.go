package driver

import (
	"encoding/binary"
	"testing"

	"accesys/internal/accel"
	"accesys/internal/dma"
	"accesys/internal/mem"
	"accesys/internal/memtest"
	"accesys/internal/sim"
	"accesys/internal/smmu"
	"accesys/internal/stats"
)

// rig builds a minimal host for the driver: MMIO echo through a bus-
// less direct binding, a real SMMU (unused unless walked), and a
// MatrixFlow against flat memories. It exercises the driver's own
// logic without the full core system (covered in core's tests).
type rig struct {
	eq      *sim.EventQueue
	drv     *Driver
	mf      *accel.MatrixFlow
	hostMem *memtest.EchoResponder
	devMem  *memtest.EchoResponder
	reg     *stats.Registry
}

const (
	barBase  = 0x8000_0000
	hostSize = 64 << 20
	devBase  = 0x1_0000_0000
	devSize  = 32 << 20
	iovaBase = 0x10_0000_0000
)

type funcStore struct{ m *memtest.EchoResponder }

func (f funcStore) ReadFunctional(addr uint64, buf []byte) { f.m.Store.Read(addr-f.m.Base, buf) }
func (f funcStore) WriteFunctional(addr uint64, data []byte) {
	f.m.Store.Write(addr-f.m.Base, data)
}

func newRig(t *testing.T, dcfg Config) *rig {
	t.Helper()
	eq := sim.NewEventQueue()
	reg := stats.NewRegistry()

	hostMem := memtest.NewEchoResponder(eq, 0, hostSize, 30*sim.Nanosecond)
	devMem := memtest.NewEchoResponder(eq, devBase, devSize, 15*sim.Nanosecond)

	mf := accel.New("mf", eq, reg, accel.Config{
		BAR:        mem.Range(barBase, 1<<16),
		Functional: true,
		HostDMA:    dma.Config{BurstBytes: 256},
	})
	mem.Bind(mf.HostDMAPort(), hostMem.Port)
	mem.Bind(mf.DevDMAPort(), devMem.Port)

	// The driver's MMIO lands directly on the CSR port.
	s := smmu.New("smmu", eq, reg, smmu.Config{})

	drv := New("drv", eq, reg, Deps{
		EQ:        eq,
		MMIO:      mf.CSRPort(),
		FuncHost:  funcStore{hostMem},
		FuncDev:   funcStore{devMem},
		SMMU:      s,
		Accel:     mf,
		BARBase:   barBase,
		HostRange: mem.Range(0, hostSize),
		DevRange:  mem.Range(devBase, devSize),
		IOVABase:  iovaBase,
	}, dcfg)
	return &rig{eq: eq, drv: drv, mf: mf, hostMem: hostMem, devMem: devMem, reg: reg}
}

func TestAllocatorsPageAligned(t *testing.T) {
	rg := newRig(t, Config{NoIOMMU: true})
	a := rg.drv.AllocHost(100)
	b := rg.drv.AllocHost(100)
	if a%smmu.PageBytes != 0 || b%smmu.PageBytes != 0 {
		t.Fatal("allocations must be page aligned")
	}
	if b-a != smmu.PageBytes {
		t.Fatalf("100B alloc should consume one page, got %d", b-a)
	}
	d1 := rg.drv.AllocDev(smmu.PageBytes + 1)
	d2 := rg.drv.AllocDev(8)
	if d2-d1 != 2*smmu.PageBytes {
		t.Fatal("device allocator should round to pages")
	}
	if d1 < devBase {
		t.Fatal("device allocations must come from the device range")
	}
}

func TestMapForDeviceCountsPages(t *testing.T) {
	rg := newRig(t, Config{})
	phys := rg.drv.AllocHost(3 * smmu.PageBytes)
	before := rg.drv.PagesMapped()
	iova := rg.drv.MapForDevice(phys, 3*smmu.PageBytes)
	if rg.drv.PagesMapped()-before != 3 {
		t.Fatalf("mapped %d pages, want 3", rg.drv.PagesMapped()-before)
	}
	if iova < iovaBase {
		t.Fatal("IOVAs must come from the IOVA space")
	}
	if rg.reg.Lookup("drv.pages_mapped").Value() < 3 {
		t.Fatal("pages_mapped stat missing")
	}
}

func TestNoIOMMUGEMM(t *testing.T) {
	rg := newRig(t, Config{NoIOMMU: true})
	a := []int32{1, 2, 3, 4}
	aM := make([]int32, 16*16)
	bM := make([]int32, 16*16)
	copy(aM, a)
	for i := range bM {
		bM[i] = 1
	}
	var res Result
	rg.drv.RunGEMM(GEMMSpec{M: 16, N: 16, K: 16, A: aM, B: bM}, func(r Result) { res = r })
	rg.eq.Run()
	if res.C == nil {
		t.Fatal("no result")
	}
	want := accel.MatMulRef(aM, bM, 16, 16, 16)
	for i := range want {
		if res.C[i] != want[i] {
			t.Fatalf("C[%d] = %d, want %d", i, res.C[i], want[i])
		}
	}
	if res.PagesMapped != 0 {
		t.Fatal("NoIOMMU jobs must not map pages")
	}
}

func TestIRQLatencyApplied(t *testing.T) {
	run := func(lat sim.Tick) sim.Tick {
		rg := newRig(t, Config{NoIOMMU: true, IRQLatency: lat})
		var res Result
		rg.drv.RunGEMM(GEMMSpec{M: 16, N: 16, K: 16}, func(r Result) { res = r })
		rg.eq.Run()
		return res.Completed
	}
	fast := run(sim.Microsecond)
	slow := run(100 * sim.Microsecond)
	if slow-fast < 90*sim.Microsecond {
		t.Fatalf("IRQ latency not applied: fast=%v slow=%v", fast, slow)
	}
}

func TestMMIOWritesCounted(t *testing.T) {
	rg := newRig(t, Config{NoIOMMU: true, BurstBytes: 512})
	var done bool
	rg.drv.RunGEMM(GEMMSpec{M: 16, N: 16, K: 16}, func(Result) { done = true })
	rg.eq.Run()
	if !done {
		t.Fatal("job incomplete")
	}
	// 9 registers + burst register + doorbell = 10 writes with burst.
	if got := rg.reg.Lookup("drv.mmio_writes").Value(); got != 10 {
		t.Fatalf("mmio_writes = %v, want 10", got)
	}
	// The burst register actually landed in the CSR file.
	if rg.mf.Status() != accel.StatusDone {
		t.Fatal("accelerator should be done")
	}
}

func TestRunWhileActivePanics(t *testing.T) {
	rg := newRig(t, Config{NoIOMMU: true})
	rg.drv.RunGEMM(GEMMSpec{M: 16, N: 16, K: 16}, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("second RunGEMM should panic while active")
		}
	}()
	rg.drv.RunGEMM(GEMMSpec{M: 16, N: 16, K: 16}, nil)
}

func TestBadDimsPanics(t *testing.T) {
	rg := newRig(t, Config{NoIOMMU: true})
	defer func() {
		if recover() == nil {
			t.Fatal("non-multiple-of-16 dims should panic")
		}
	}()
	rg.drv.RunGEMM(GEMMSpec{M: 17, N: 16, K: 16}, nil)
}

func TestDevMemStagingRoundtrip(t *testing.T) {
	// NoIOMMU: this minimal rig wires the host DMA path without an
	// SMMU, so the MSI address must stay physical.
	rg := newRig(t, Config{DevMemMode: true, NoIOMMU: true})
	aM := make([]int32, 16*16)
	bM := make([]int32, 16*16)
	for i := range aM {
		aM[i] = int32(i % 3)
		bM[i] = int32(i % 2)
	}
	var res Result
	rg.drv.RunGEMM(GEMMSpec{M: 16, N: 16, K: 16, A: aM, B: bM}, func(r Result) { res = r })
	rg.eq.Run()
	want := accel.MatMulRef(aM, bM, 16, 16, 16)
	for i := range want {
		if res.C[i] != want[i] {
			t.Fatalf("devmem C[%d] = %d, want %d", i, res.C[i], want[i])
		}
	}
}

func TestMSILandsAtDriverAddress(t *testing.T) {
	rg := newRig(t, Config{NoIOMMU: true})
	var done bool
	rg.drv.RunGEMM(GEMMSpec{M: 16, N: 16, K: 16}, func(Result) { done = true })
	rg.eq.Run()
	if !done {
		t.Fatal("job incomplete")
	}
	msi := make([]byte, 8)
	rg.hostMem.Store.Read(rg.drv.MSIAddr(), msi)
	if binary.LittleEndian.Uint64(msi) != 1 {
		t.Fatal("MSI write did not land at the driver's address")
	}
}
