package shard

// The merge step: fold N shard cache directories into one canonical
// cache. Entries are copied verbatim (they are already keyed under
// the workers' binary salt), counters are summed, and two classes of
// inconsistency abort the merge before it can poison the destination:
// shards produced by different simulator builds (salt mismatch) and
// fingerprint collisions with differing payloads (divergent outcomes
// for one configuration — the determinism contract broken somewhere).

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"accesys/internal/sweep"
)

// MergeStats summarises one merge.
type MergeStats struct {
	// Shards is the number of source directories folded.
	Shards int `json:"shards"`
	// AlreadyMerged counts sources whose exact shard state was folded
	// into this destination by an earlier merge; their entries still
	// dedupe but their accounting (points, walls, counters) is not
	// double-counted, so re-running a merge is idempotent.
	AlreadyMerged int `json:"already_merged"`
	// Points sums the source summaries' slice sizes.
	Points int `json:"points"`
	// Imported counts entries copied into the destination, Duplicates
	// byte-identical entries already present, Corrupt unreadable
	// source entries skipped.
	Imported   int `json:"imported"`
	Duplicates int `json:"duplicates"`
	Corrupt    int `json:"corrupt"`
	// Salt is the (single) binary salt all sources agreed on.
	Salt string `json:"salt"`
	// Counters are the summed source counters folded into the
	// destination's persisted totals.
	Counters sweep.Counters `json:"counters"`
	// WallNs sums the source workers' wall times — the fleet's total
	// compute, as opposed to its makespan.
	WallNs int64 `json:"wall_ns"`
}

// ledgerName records, inside the destination cache, which shard
// states earlier merges already folded (as digests of their shard.json
// bytes). Its name deliberately fails the cache's entry-name check, so
// GC, Usage, and import all ignore it.
const ledgerName = "merged.json"

// ledger is the on-disk merge history of a destination cache.
type ledger struct {
	Merged []string `json:"merged"`
}

func readLedger(dst string) (map[string]bool, error) {
	seen := map[string]bool{}
	data, err := os.ReadFile(filepath.Join(dst, ledgerName))
	if os.IsNotExist(err) {
		return seen, nil
	}
	if err != nil {
		return nil, err
	}
	var l ledger
	if err := json.Unmarshal(data, &l); err != nil {
		return nil, fmt.Errorf("shard: %s: malformed %s: %v", dst, ledgerName, err)
	}
	for _, d := range l.Merged {
		seen[d] = true
	}
	return seen, nil
}

func writeLedger(dst string, seen map[string]bool) error {
	var l ledger
	for d := range seen {
		l.Merged = append(l.Merged, d)
	}
	// Deterministic file content for stable diffs.
	sort.Strings(l.Merged)
	data, err := json.MarshalIndent(l, "", "  ")
	if err != nil {
		return err
	}
	return sweep.WriteFileAtomic(dst, "merged-*.tmp", ledgerName, append(data, '\n'))
}

// Merge folds the shard directories into one canonical cache at dst
// (created if needed; an existing cache is added to). Every source
// must hold a shard.json summary and all sources must share one
// binary salt — entries from different simulator builds can never
// warm-hit together, so merging them is a configuration error, not a
// cache state. Salts are verified before anything is copied.
//
// Merge is idempotent: a destination remembers (in merged.json) which
// exact shard states it has folded, so re-merging the same directories
// — a retried workflow, say — dedupes their entries without
// double-counting their points, walls, or counters. A shard re-run
// after new work rewrites its shard.json and is folded again.
func Merge(dst string, srcs []string) (*MergeStats, error) {
	if len(srcs) == 0 {
		return nil, fmt.Errorf("shard: merge needs at least one shard directory")
	}
	sums := make([]*Summary, len(srcs))
	digests := make([]string, len(srcs))
	for i, dir := range srcs {
		sum, err := ReadSummary(dir)
		if err != nil {
			return nil, err
		}
		sums[i] = sum
		data, err := os.ReadFile(filepath.Join(dir, SummaryName))
		if err != nil {
			return nil, fmt.Errorf("shard: %s: %v", dir, err)
		}
		digests[i] = Digest(string(data))
	}
	for i, sum := range sums[1:] {
		if sum.Salt != sums[0].Salt {
			return nil, fmt.Errorf(
				"shard: binary salt mismatch: %s was produced by build %.12s…, %s by %.12s…; merge only shards produced by one simulator build",
				srcs[0], sums[0].Salt, srcs[i+1], sum.Salt)
		}
	}

	dc, err := sweep.Open(dst)
	if err != nil {
		return nil, err
	}
	seen, err := readLedger(dst)
	if err != nil {
		return nil, err
	}
	st := &MergeStats{Shards: len(srcs), Salt: sums[0].Salt}
	var totals sweep.Counters
	// The destination's wall-time profile folds in each shard's
	// estimates so it can seed the next weighted plan. Like the
	// counters, the fold is gated on the ledger: retrying a merge that
	// *completed* must not re-apply the EWMA (which would skew
	// estimates toward the source on every retry). Retrying a merge
	// that failed partway may refold — the advisory accounting
	// (profile, counters) is only exactly-once across successful
	// merges; entry deduplication alone is unconditional. A malformed
	// destination profile just disables folding — profiles are
	// advisory scheduling hints, never correctness.
	dp, dperr := sweep.LoadProfile(dst)
	for i, dir := range srcs {
		src, err := sweep.Open(dir)
		if err != nil {
			return nil, err
		}
		is, err := dc.ImportFrom(src)
		st.Imported += is.Imported
		st.Duplicates += is.Duplicates
		st.Corrupt += is.Corrupt
		if err != nil {
			return nil, fmt.Errorf("shard: merging %s: %v", dir, err)
		}
		if seen[digests[i]] {
			st.AlreadyMerged++
			continue
		}
		seen[digests[i]] = true
		c, err := src.Counters()
		if err != nil {
			return nil, fmt.Errorf("shard: merging %s: %v", dir, err)
		}
		totals.Hits += c.Hits
		totals.Misses += c.Misses
		totals.Errors += c.Errors
		st.Points += sums[i].Points
		st.WallNs += sums[i].WallNs
		if dperr == nil {
			if sp, err := sweep.LoadProfile(dir); err == nil {
				dp.Fold(sp)
			}
		}
	}
	// The profile flushes before the counters fold: a failure here
	// aborts the merge while the destination is untouched beyond
	// entries, and AddCounters stays immediately adjacent to the
	// ledger write — the only remaining window in which a crash makes
	// a retried merge double-count counters (and refold the profile).
	if dperr == nil {
		if err := dp.Flush(); err != nil {
			return nil, fmt.Errorf("shard: folding wall profiles: %v", err)
		}
	}
	if err := dc.AddCounters(totals); err != nil {
		return nil, fmt.Errorf("shard: folding counters: %v", err)
	}
	if err := writeLedger(dst, seen); err != nil {
		return nil, fmt.Errorf("shard: recording merge history: %v", err)
	}
	st.Counters = totals
	return st, nil
}
