package shard

// Worker and merge tests over fake points: Run closures return
// synthetic outcomes, so these exercise the partition/worker/merge
// machinery — slice selection, shard.json accounting, salt
// verification, collision detection, counter folding — without
// touching the simulator.

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"accesys/internal/sim"
	"accesys/internal/sweep"
)

// fakePoints builds n points whose Run records which indexes executed.
func fakePoints(n int, ran *sync.Map) []sweep.Point {
	pts := make([]sweep.Point, n)
	for i := range pts {
		i := i
		pts[i] = sweep.Point{
			Key:         "pt-" + string(rune('a'+i)),
			Fingerprint: sweep.Fingerprint("fake", i),
			Run: func() sweep.Outcome {
				if ran != nil {
					ran.Store(i, true)
				}
				return sweep.Outcome{Dur: sim.Tick(i + 1)}
			},
		}
	}
	return pts
}

func mustPartition(t *testing.T, pts []sweep.Point, n int) *Plan {
	t.Helper()
	plan, err := Partition("fake", false, pts, n)
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

func TestWorkerRunsExactlyItsSlice(t *testing.T) {
	var ran sync.Map
	pts := fakePoints(12, &ran)
	plan := mustPartition(t, pts, 3)
	for k := 0; k < 3; k++ {
		k := k
		dir := t.TempDir()
		w := &Worker{Dir: dir, Jobs: 2}
		sum, err := w.Run(plan, k, pts)
		if err != nil {
			t.Fatal(err)
		}
		if sum.Points != plan.Counts[k] || sum.Cold != plan.Counts[k] || sum.Warm != 0 {
			t.Fatalf("shard %d summary = %+v, want %d cold points", k, sum, plan.Counts[k])
		}
		if sum.Shard != k || sum.Of != 3 || sum.Scenario != "fake" {
			t.Fatalf("shard %d summary mislabeled: %+v", k, sum)
		}
		if sum.Salt == "" {
			t.Fatalf("shard %d summary has no binary salt", k)
		}
		// The written shard.json round-trips.
		got, err := ReadSummary(dir)
		if err != nil {
			t.Fatal(err)
		}
		if *got != *sum {
			t.Fatalf("ReadSummary = %+v, want %+v", got, sum)
		}
	}
	// Every point ran exactly once across the three workers (disjoint
	// cover, executed): count the recorded indexes.
	total := 0
	ran.Range(func(_, _ any) bool { total++; return true })
	if total != 12 {
		t.Fatalf("%d of 12 points executed across the fleet", total)
	}
}

func TestWorkerRerunIsWarm(t *testing.T) {
	pts := fakePoints(6, nil)
	plan := mustPartition(t, pts, 2)
	dir := t.TempDir()
	w := &Worker{Dir: dir}
	if _, err := w.Run(plan, 0, pts); err != nil {
		t.Fatal(err)
	}
	sum, err := w.Run(plan, 0, pts)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Cold != 0 || sum.Warm != plan.Counts[0] {
		t.Fatalf("re-run summary = %+v, want all warm", sum)
	}
}

func TestWorkerRejectsStalePlan(t *testing.T) {
	pts := fakePoints(4, nil)
	plan := mustPartition(t, pts, 2)
	w := &Worker{Dir: t.TempDir()}
	if _, err := w.Run(plan, 2, pts); err == nil {
		t.Fatal("out-of-range shard accepted")
	}
	if _, err := w.Run(plan, 0, pts[:3]); err == nil {
		t.Fatal("short expansion accepted")
	}
	other := fakePoints(4, nil)
	other[2].Fingerprint = sweep.Fingerprint("drifted", 2)
	if _, err := w.Run(plan, 0, other); err == nil || !strings.Contains(err.Error(), "does not match the plan") {
		t.Fatalf("drifted expansion accepted: %v", err)
	}
}

// runShards executes every shard of the plan into fresh dirs and
// returns the dirs.
func runShards(t *testing.T, plan *Plan, pts []sweep.Point) []string {
	t.Helper()
	dirs := make([]string, plan.Shards)
	for k := range dirs {
		dirs[k] = filepath.Join(t.TempDir(), "shard")
		w := &Worker{Dir: dirs[k]}
		if _, err := w.Run(plan, k, pts); err != nil {
			t.Fatal(err)
		}
	}
	return dirs
}

func TestMergeFoldsShardsIntoWarmCache(t *testing.T) {
	pts := fakePoints(12, nil)
	plan := mustPartition(t, pts, 3)
	dirs := runShards(t, plan, pts)

	dst := filepath.Join(t.TempDir(), "merged")
	st, err := Merge(dst, dirs)
	if err != nil {
		t.Fatal(err)
	}
	if st.Shards != 3 || st.Points != 12 || st.Imported != 12 || st.Duplicates != 0 {
		t.Fatalf("merge stats = %+v", st)
	}
	// Every shard ran cold, so the folded counters are 12 misses.
	if st.Counters.Misses != 12 || st.Counters.Hits != 0 {
		t.Fatalf("folded counters = %+v, want 12 misses", st.Counters)
	}

	// The merged cache warm-hits every fingerprint under this binary's
	// salt — exactly what a subsequent `accesys sweep -cache` sees.
	cache, err := sweep.OpenSalted(dst)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range pts {
		out, ok := cache.Get(p.Fingerprint)
		if !ok || out.Dur != sim.Tick(i+1) {
			t.Fatalf("merged Get(%s) = %v, %v", p.Key, out, ok)
		}
	}
	// And the persisted counters carried over.
	c, err := cache.Counters()
	if err != nil {
		t.Fatal(err)
	}
	if c.Misses != 12 {
		t.Fatalf("merged persisted counters = %+v", c)
	}
}

func TestMergeIsIdempotent(t *testing.T) {
	// A retried merge of the same shard state must not re-import
	// entries NOR re-fold accounting: the destination's persisted
	// counters stay at one fleet's worth of work.
	pts := fakePoints(6, nil)
	plan := mustPartition(t, pts, 2)
	dirs := runShards(t, plan, pts)
	dst := filepath.Join(t.TempDir(), "merged")
	if _, err := Merge(dst, dirs); err != nil {
		t.Fatal(err)
	}
	st, err := Merge(dst, dirs)
	if err != nil {
		t.Fatal(err)
	}
	if st.Imported != 0 || st.Duplicates != 6 || st.AlreadyMerged != 2 {
		t.Fatalf("re-merge stats = %+v, want all duplicates + 2 already merged", st)
	}
	if st.Points != 0 || st.Counters != (sweep.Counters{}) {
		t.Fatalf("re-merge re-folded accounting: %+v", st)
	}
	cache, err := sweep.Open(dst)
	if err != nil {
		t.Fatal(err)
	}
	c, err := cache.Counters()
	if err != nil {
		t.Fatal(err)
	}
	if c.Misses != 6 {
		t.Fatalf("persisted counters after re-merge = %+v, want 6 misses (double-folded?)", c)
	}

	// A shard genuinely re-run (fresh shard.json) is folded again.
	w := &Worker{Dir: dirs[0]}
	if _, err := w.Run(plan, 0, pts); err != nil {
		t.Fatal(err)
	}
	st, err = Merge(dst, dirs[:1])
	if err != nil {
		t.Fatal(err)
	}
	if st.AlreadyMerged != 0 || st.Points != plan.Counts[0] {
		t.Fatalf("re-run shard not re-folded: %+v", st)
	}
}

func TestMergeFoldsProfilesOnceUnderRetry(t *testing.T) {
	// Shard workers profile their points; the merge folds those
	// profiles into the destination — but, like the counters, only once
	// per shard state: a retried merge must not keep EWMA-ing a
	// destination estimate toward the source.
	pts := fakePoints(6, nil)
	plan := mustPartition(t, pts, 2)
	dirs := runShards(t, plan, pts)
	dst := filepath.Join(t.TempDir(), "merged")

	// Pin a known estimate for one of shard 0's points in the source,
	// and a deliberately different one in the destination (fake points
	// run in ~zero wall, so the workers' own measurements may or may
	// not have registered).
	target := pts[plan.Select(0)[0]].Fingerprint
	sp, err := sweep.LoadProfile(dirs[0])
	if err != nil {
		t.Fatal(err)
	}
	sp.Observe(target, 2*time.Second)
	if err := sp.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(dst, 0o755); err != nil {
		t.Fatal(err)
	}
	dp, err := sweep.LoadProfile(dst)
	if err != nil {
		t.Fatal(err)
	}
	dp.Observe(target, 8*time.Second)
	if err := dp.Flush(); err != nil {
		t.Fatal(err)
	}

	if _, err := Merge(dst, dirs); err != nil {
		t.Fatal(err)
	}
	merged, err := sweep.LoadProfile(dst)
	if err != nil {
		t.Fatal(err)
	}
	after1, ok := merged.Wall(target)
	if !ok {
		t.Fatal("seeded estimate vanished")
	}
	if after1 == 8*time.Second {
		t.Fatal("merge did not fold the source estimate at all")
	}

	// Retried merge: the ledger marks both shard states folded, so the
	// profile must not move again.
	if _, err := Merge(dst, dirs); err != nil {
		t.Fatal(err)
	}
	merged, err = sweep.LoadProfile(dst)
	if err != nil {
		t.Fatal(err)
	}
	after2, _ := merged.Wall(target)
	if after2 != after1 {
		t.Fatalf("retried merge re-folded the profile: %v -> %v", after1, after2)
	}
}

func TestMergeRejectsSaltMismatch(t *testing.T) {
	pts := fakePoints(4, nil)
	plan := mustPartition(t, pts, 2)
	dirs := runShards(t, plan, pts)
	// Doctor one summary to claim a different build.
	sum, err := ReadSummary(dirs[1])
	if err != nil {
		t.Fatal(err)
	}
	sum.Salt = "0000deadbeef"
	data, _ := json.Marshal(sum)
	if err := os.WriteFile(filepath.Join(dirs[1], SummaryName), data, 0o644); err != nil {
		t.Fatal(err)
	}

	_, err = Merge(filepath.Join(t.TempDir(), "merged"), dirs)
	if err == nil || !strings.Contains(err.Error(), "salt mismatch") {
		t.Fatalf("mismatched salts merged: %v", err)
	}
}

func TestMergeRequiresShardSummaries(t *testing.T) {
	if _, err := Merge(t.TempDir(), nil); err == nil {
		t.Fatal("empty source list accepted")
	}
	plain := t.TempDir() // a directory with no shard.json
	_, err := Merge(filepath.Join(t.TempDir(), "merged"), []string{plain})
	if err == nil || !strings.Contains(err.Error(), "not a shard directory") {
		t.Fatalf("summary-less directory accepted: %v", err)
	}
}

func TestMergeDetectsDivergentOutcomes(t *testing.T) {
	// Two shard dirs holding the same fingerprint with different
	// payloads: a broken determinism contract the merge must refuse to
	// paper over.
	mk := func(dur sim.Tick) string {
		dir := filepath.Join(t.TempDir(), "shard")
		c, err := sweep.OpenSalted(dir)
		if err != nil {
			t.Fatal(err)
		}
		c.Put("shared-fp", sweep.Outcome{Dur: dur})
		if err := writeSummary(dir, &Summary{Scenario: "div", Of: 2, Salt: c.Salt, Points: 1}); err != nil {
			t.Fatal(err)
		}
		return dir
	}
	dirs := []string{mk(1), mk(2)}
	_, err := Merge(filepath.Join(t.TempDir(), "merged"), dirs)
	if err == nil || !strings.Contains(err.Error(), "collision") {
		t.Fatalf("divergent payloads merged: %v", err)
	}
}

// TestWorkerRunsOnInjectedClock pins the worker's wall accounting —
// the shard.json WallNs and the per-point walls feeding the weighted
// partitioner's profile — to an injected clock: every reading comes
// from the fake, each cold point observes exactly one clock step in
// the profile, and no wall ever touches the host clock.
func TestWorkerRunsOnInjectedClock(t *testing.T) {
	pts := fakePoints(6, nil)
	plan := mustPartition(t, pts, 2)
	dir := t.TempDir()

	const step = 100 * time.Millisecond
	base := time.Unix(1_700_000_000, 0)
	var mu sync.Mutex
	calls := 0
	clock := func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		calls++
		return base.Add(time.Duration(calls) * step)
	}

	w := &Worker{Dir: dir, Jobs: 1, Clock: clock}
	sum, err := w.Run(plan, 0, pts)
	if err != nil {
		t.Fatal(err)
	}
	// The worker reads the clock twice itself; every other reading is
	// the engine timing cold points (two per point under Jobs=1).
	wantCalls := 2 + 2*sum.Cold
	if calls != wantCalls {
		t.Fatalf("clock read %d times, want %d (2 worker + 2 per cold point)", calls, wantCalls)
	}
	if want := time.Duration(wantCalls-1) * step; sum.WallNs != want.Nanoseconds() {
		t.Fatalf("WallNs = %d, want %d (fake-clock span)", sum.WallNs, want.Nanoseconds())
	}
	// The flushed profile learned exactly one clock step per point —
	// the engine measured on the same fake.
	prof, err := sweep.LoadProfile(dir)
	if err != nil {
		t.Fatal(err)
	}
	if prof.Len() != sum.Cold {
		t.Fatalf("profile has %d entries, want %d", prof.Len(), sum.Cold)
	}
	for _, idx := range plan.Select(0) {
		wall, ok := prof.Wall(pts[idx].Fingerprint)
		if !ok || wall != step {
			t.Fatalf("profile wall for %s = %v, %v; want %v", pts[idx].Key, wall, ok, step)
		}
	}
}
