package shard

// Native fuzz target for the plan parser: whatever bytes arrive from a
// scheduler or a corrupted work directory, ParsePlan must never panic,
// and any plan it accepts must round-trip Parse -> Marshal -> Parse
// with byte-stable output — the contract the fleet launcher and
// `shard run -plan` rely on. Seeded from real `shard plan` output
// (rendezvous and weighted). Run `make fuzz` for a short exploration;
// plain `go test` replays the seed corpus.

import (
	"bytes"
	"testing"
	"time"

	"accesys/internal/sweep"
)

func FuzzPlanParse(f *testing.F) {
	pts := fakePoints(7, nil)
	if plan, err := Partition("seed", false, pts, 3); err == nil {
		if data, err := plan.Marshal(); err == nil {
			f.Add(data)
		}
	}
	prof, err := sweep.LoadProfile(f.TempDir())
	if err == nil {
		for i := range pts {
			prof.Observe(pts[i].Fingerprint, time.Duration(i+1)*100*time.Millisecond)
		}
		if plan, err := PartitionWeighted("seed-weighted", true, pts, 2, prof); err == nil {
			if data, err := plan.Marshal(); err == nil {
				f.Add(data)
			}
		}
	}
	f.Add([]byte(`{"scenario":"tiny","full":false,"shards":1,"counts":[0],"points":[]}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`[]`))

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := ParsePlan(data)
		if err != nil {
			return // invalid input rejected cleanly is the contract
		}
		m1, err := p.Marshal()
		if err != nil {
			t.Fatalf("accepted plan fails to marshal: %v", err)
		}
		p2, err := ParsePlan(m1)
		if err != nil {
			t.Fatalf("marshal output does not re-parse: %v\n%s", err, m1)
		}
		m2, err := p2.Marshal()
		if err != nil {
			t.Fatalf("re-parsed plan fails to marshal: %v", err)
		}
		if !bytes.Equal(m1, m2) {
			t.Fatalf("round trip unstable:\n--- first\n%s\n--- second\n%s", m1, m2)
		}
	})
}
