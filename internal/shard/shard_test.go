package shard

// Property tests for the partition: for randomly generated manifests
// and every shard count in 1..8, the partition must be an exact
// disjoint cover of the expanded points, identical across repeated
// expansions (order stability — the plan references points by index),
// and independent of execution knobs. The rendezvous property pins
// resize behaviour: growing N -> N+1 shards only moves points to the
// new shard, and only a bounded number of them.

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"accesys/internal/scenario"
	"accesys/internal/sweep"
)

// randomManifest builds a valid random scenario manifest: a random
// base preset and 1-2 random axes drawn from kinds whose values are
// plain numbers or bools, so expansion never needs a simulation.
func randomManifest(rng *rand.Rand, i int) []byte {
	type axis struct {
		Axis   string `json:"axis"`
		Values []any  `json:"values"`
	}
	pool := map[string][]any{
		"lanes":        {1.0, 2.0, 4.0, 8.0, 16.0},
		"packet_bytes": {64.0, 128.0, 256.0, 512.0, 1024.0, 2048.0, 4096.0},
		"compute_ns":   {0.0, 100.0, 400.0, 1500.0, 6000.0},
		"lane_gbps":    {1.0, 2.0, 4.0},
		"smmu_bypass":  {true, false},
	}
	names := []string{"lanes", "packet_bytes", "compute_ns", "lane_gbps", "smmu_bypass"}
	bases := []string{"default", "pcie2gb", "pcie8gb", "pcie64gb", "devmem"}

	naxes := 1 + rng.Intn(2)
	rng.Shuffle(len(names), func(a, b int) { names[a], names[b] = names[b], names[a] })
	var axes []axis
	for _, name := range names[:naxes] {
		vals := append([]any{}, pool[name]...)
		rng.Shuffle(len(vals), func(a, b int) { vals[a], vals[b] = vals[b], vals[a] })
		n := 1 + rng.Intn(len(vals))
		axes = append(axes, axis{Axis: name, Values: vals[:n]})
	}
	m := map[string]any{
		"name":     fmt.Sprintf("prop%d", i),
		"base":     bases[rng.Intn(len(bases))],
		"workload": map[string]any{"kind": "gemm", "n": 64},
		"axes":     axes,
	}
	data, err := json.Marshal(m)
	if err != nil {
		panic(err)
	}
	return data
}

// expand parses the manifest and enumerates its points.
func expand(t *testing.T, manifest []byte) (*scenario.Scenario, []sweep.Point) {
	t.Helper()
	sc, err := scenario.Parse(manifest)
	if err != nil {
		t.Fatalf("random manifest invalid: %v\n%s", err, manifest)
	}
	points, err := sc.PointsFor(false)
	if err != nil {
		t.Fatal(err)
	}
	return sc, points
}

func TestPartitionIsDisjointCover(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 25; i++ {
		manifest := randomManifest(rng, i)
		sc, points := expand(t, manifest)
		for n := 1; n <= 8; n++ {
			plan, err := Partition(sc.Name, false, points, n)
			if err != nil {
				t.Fatal(err)
			}
			if len(plan.Points) != len(points) {
				t.Fatalf("%s N=%d: plan covers %d of %d points", sc.Name, n, len(plan.Points), len(points))
			}
			// Select(0..n-1) must cover every expansion index exactly once.
			seen := make([]int, len(points))
			total := 0
			for k := 0; k < n; k++ {
				sel := plan.Select(k)
				if len(sel) != plan.Counts[k] {
					t.Fatalf("%s N=%d: Select(%d) has %d indexes, Counts says %d", sc.Name, n, k, len(sel), plan.Counts[k])
				}
				for _, idx := range sel {
					seen[idx]++
				}
				total += len(sel)
			}
			if total != len(points) {
				t.Fatalf("%s N=%d: shards cover %d of %d points", sc.Name, n, total, len(points))
			}
			for idx, c := range seen {
				if c != 1 {
					t.Fatalf("%s N=%d: point %d assigned %d times", sc.Name, n, idx, c)
				}
			}
			// Points sharing a fingerprint must share a shard.
			byFP := map[string]int{}
			for _, a := range plan.Points {
				if prev, ok := byFP[a.Fingerprint]; ok && prev != a.Shard {
					t.Fatalf("%s N=%d: fingerprint %s split across shards %d and %d", sc.Name, n, a.Fingerprint, prev, a.Shard)
				}
				byFP[a.Fingerprint] = a.Shard
			}
		}
	}
}

func TestPartitionStableAcrossExpansions(t *testing.T) {
	// A plan must be reproducible from scratch: re-parsing the same
	// manifest and re-expanding yields the identical partition. The
	// enumeration takes no execution options at all, which is the
	// strong form of "independent of -jobs" — nothing the engine is
	// configured with can reach the plan.
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 10; i++ {
		manifest := randomManifest(rng, i)
		sc1, pts1 := expand(t, manifest)
		sc2, pts2 := expand(t, manifest)
		for n := 1; n <= 8; n++ {
			p1, err := Partition(sc1.Name, false, pts1, n)
			if err != nil {
				t.Fatal(err)
			}
			p2, err := Partition(sc2.Name, false, pts2, n)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(p1, p2) {
				t.Fatalf("%s N=%d: partition not stable across expansions", sc1.Name, n)
			}
		}
	}
}

func TestRendezvousResizeMovesOnlyToNewShard(t *testing.T) {
	// Growing the partition N -> N+1 may only move points TO the new
	// shard: existing shards' rendezvous scores are unchanged, so a
	// point moves iff the new shard outbids them all. This is the
	// exact structural half of the minimum-disruption property and
	// must hold for every manifest and every transition.
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 25; i++ {
		manifest := randomManifest(rng, i)
		sc, points := expand(t, manifest)
		for n := 1; n <= 7; n++ {
			before, err := Partition(sc.Name, false, points, n)
			if err != nil {
				t.Fatal(err)
			}
			after, err := Partition(sc.Name, false, points, n+1)
			if err != nil {
				t.Fatal(err)
			}
			for j := range before.Points {
				if before.Points[j].Shard != after.Points[j].Shard && after.Points[j].Shard != n {
					t.Fatalf("%s N=%d->%d: point %d moved to shard %d, not the new shard",
						sc.Name, n, n+1, j, after.Points[j].Shard)
				}
			}
		}
	}
}

func TestRendezvousResizeMovesBoundedMinimum(t *testing.T) {
	// The quantitative half: going N -> N+1 moves at most
	// ceil(points/N) fingerprints. For a random hash this bound holds
	// with high probability but not certainty (the expected move count
	// is points/(N+1), only (N+1)/N below the bound), so it is pinned
	// on a fixed fingerprint fixture rather than on random manifests —
	// the fixture is stable against every code change except the
	// rendezvous scheme itself. If partitionVersion is ever bumped,
	// re-pick the fixture label so the bound holds again.
	const points = 60
	fps := make([]string, points)
	for i := range fps {
		fps[i] = fmt.Sprintf("resize-set-1/point-%d", i)
	}
	for n := 1; n <= 7; n++ {
		moved := 0
		for _, fp := range fps {
			if Assign(fp, n) != Assign(fp, n+1) {
				moved++
			}
		}
		bound := (points + n - 1) / n // ceil(points/N)
		if moved > bound {
			t.Errorf("N=%d->%d: %d of %d fingerprints moved, bound %d", n, n+1, moved, points, bound)
		}
		if n > 1 && moved == 0 {
			t.Errorf("N=%d->%d: nothing moved; the new shard won no points", n, n+1)
		}
	}
}

func TestAssignSingleShard(t *testing.T) {
	for _, fp := range []string{"", "a", "anything at all"} {
		if got := Assign(fp, 1); got != 0 {
			t.Fatalf("Assign(%q, 1) = %d", fp, got)
		}
	}
}

func TestPartitionRejectsBadInput(t *testing.T) {
	pts := []sweep.Point{{Key: "p", Fingerprint: "fp"}}
	if _, err := Partition("s", false, pts, 0); err == nil {
		t.Fatal("zero shards accepted")
	}
	if _, err := Partition("s", false, []sweep.Point{{Key: "p"}}, 2); err == nil {
		t.Fatal("fingerprint-less point accepted")
	}
}
