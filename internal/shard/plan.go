package shard

// Plan serialization: the wire format between `shard plan`, the fleet
// launcher, and `shard run -plan`. A weighted plan depends on the
// profile state of the machine that computed it, so unlike the pure
// rendezvous partition it cannot be recomputed identically elsewhere —
// workers must run the serialized plan, and ParsePlan must therefore
// reject anything structurally inconsistent before a worker trusts it.

import (
	"bytes"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
)

// ParsePlan decodes and validates one serialized plan. Unknown fields
// and trailing data are rejected, like scenario manifests.
func ParsePlan(data []byte) (*Plan, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var p Plan
	if err := dec.Decode(&p); err != nil {
		return nil, fmt.Errorf("shard: plan: %v", err)
	}
	var trailing any
	if err := dec.Decode(&trailing); err != io.EOF {
		return nil, fmt.Errorf("shard: plan: trailing data after the plan object")
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// Marshal encodes the plan as JSON — the inverse of ParsePlan.
func (p *Plan) Marshal() ([]byte, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return json.MarshalIndent(p, "", "  ")
}

// isDigest reports whether s looks like a Digest value (hex SHA-256).
func isDigest(s string) bool {
	if len(s) != 64 {
		return false
	}
	_, err := hex.DecodeString(s)
	return err == nil
}

// Validate checks the plan's structural invariants: a disjoint cover
// of an indexable expansion with consistent per-shard accounting. It
// cannot re-verify the assignments against the scenario (plans carry
// digests, not raw fingerprints) — Worker.Run does that against the
// actual expansion.
func (p *Plan) Validate() error {
	fail := func(format string, args ...any) error {
		return fmt.Errorf("shard: plan %s: %s", p.Scenario, fmt.Sprintf(format, args...))
	}
	if p.Scenario == "" {
		return fmt.Errorf("shard: plan: missing scenario name")
	}
	if p.Shards < 1 {
		return fail("need at least one shard, have %d", p.Shards)
	}
	if len(p.Counts) != p.Shards {
		return fail("counts cover %d of %d shards", len(p.Counts), p.Shards)
	}
	counts := make([]int, p.Shards)
	byFP := map[string]int{}
	for i, a := range p.Points {
		if a.Index != i {
			return fail("point %d carries index %d; plans must list points in expansion order", i, a.Index)
		}
		if a.Shard < 0 || a.Shard >= p.Shards {
			return fail("point %d assigned to shard %d, outside [0, %d)", i, a.Shard, p.Shards)
		}
		if !isDigest(a.Fingerprint) {
			return fail("point %d fingerprint %q is not a digest", i, a.Fingerprint)
		}
		if prev, ok := byFP[a.Fingerprint]; ok && prev != a.Shard {
			return fail("fingerprint %.12s… split across shards %d and %d", a.Fingerprint, prev, a.Shard)
		}
		byFP[a.Fingerprint] = a.Shard
		counts[a.Shard]++
	}
	for k, c := range counts {
		if p.Counts[k] != c {
			return fail("shard %d holds %d points but counts says %d", k, c, p.Counts[k])
		}
	}
	if p.Weighted {
		if p.Profiled < 1 || p.Profiled > len(p.Points) {
			return fail("weighted plan profiled %d of %d points", p.Profiled, len(p.Points))
		}
		if len(p.PredictedWallNs) != p.Shards {
			return fail("weighted plan predicts %d of %d shard walls", len(p.PredictedWallNs), p.Shards)
		}
		for k, ns := range p.PredictedWallNs {
			if ns < 0 {
				return fail("shard %d predicted wall %d is negative", k, ns)
			}
		}
	} else {
		if p.Profiled != 0 || len(p.PredictedWallNs) != 0 {
			return fail("unweighted plan carries profile-derived fields")
		}
	}
	return nil
}
