package shard

// Property tests for the weighted partitioner: whatever the profile
// says, the plan must stay a disjoint cover; with a full profile the
// greedy LPT placement obeys the classic list-scheduling bound (max
// shard load <= mean load + heaviest point, which implies the LPT
// 4/3·OPT + heaviest bound since OPT >= mean); and with no profile at
// all the plan degrades to exactly the PR 4 rendezvous partition.

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"accesys/internal/sweep"
)

// profileFor builds an in-memory profile assigning the given walls (in
// milliseconds) to the corresponding points.
func profileFor(t *testing.T, pts []sweep.Point, wallsMs map[int]int64) *sweep.Profile {
	t.Helper()
	prof, err := sweep.LoadProfile(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for i, ms := range wallsMs {
		prof.Observe(pts[i].Fingerprint, time.Duration(ms)*time.Millisecond)
	}
	return prof
}

// checkCover asserts the plan covers every point exactly once with
// consistent counts, and that equal fingerprints share a shard.
func checkCover(t *testing.T, plan *Plan, npoints, n int) {
	t.Helper()
	if len(plan.Points) != npoints {
		t.Fatalf("plan covers %d of %d points", len(plan.Points), npoints)
	}
	seen := make([]int, npoints)
	total := 0
	for k := 0; k < n; k++ {
		sel := plan.Select(k)
		if len(sel) != plan.Counts[k] {
			t.Fatalf("Select(%d) has %d indexes, Counts says %d", k, len(sel), plan.Counts[k])
		}
		for _, idx := range sel {
			seen[idx]++
		}
		total += len(sel)
	}
	if total != npoints {
		t.Fatalf("shards cover %d of %d points", total, npoints)
	}
	for idx, c := range seen {
		if c != 1 {
			t.Fatalf("point %d assigned %d times", idx, c)
		}
	}
	byFP := map[string]int{}
	for _, a := range plan.Points {
		if prev, ok := byFP[a.Fingerprint]; ok && prev != a.Shard {
			t.Fatalf("fingerprint %.12s… split across shards %d and %d", a.Fingerprint, prev, a.Shard)
		}
		byFP[a.Fingerprint] = a.Shard
	}
}

func TestWeightedPartitionIsDisjointCover(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 25; trial++ {
		npoints := 1 + rng.Intn(40)
		pts := fakePoints(npoints, nil)
		// Profile a random subset with random walls.
		walls := map[int]int64{}
		for i := 0; i < npoints; i++ {
			if rng.Intn(3) > 0 {
				walls[i] = 1 + rng.Int63n(10000)
			}
		}
		prof := profileFor(t, pts, walls)
		for n := 1; n <= 6; n++ {
			plan, err := PartitionWeighted("fake", false, pts, n, prof)
			if err != nil {
				t.Fatal(err)
			}
			checkCover(t, plan, npoints, n)
			if len(walls) > 0 {
				if !plan.Weighted || plan.Profiled != len(walls) {
					t.Fatalf("trial %d N=%d: weighted=%v profiled=%d, want %d profiled",
						trial, n, plan.Weighted, plan.Profiled, len(walls))
				}
				if len(plan.PredictedWallNs) != n {
					t.Fatalf("predicted walls cover %d of %d shards", len(plan.PredictedWallNs), n)
				}
			}
			// Serialization invariants hold for every generated plan.
			if err := plan.Validate(); err != nil {
				t.Fatalf("generated plan invalid: %v", err)
			}
		}
	}
}

func TestWeightedPartitionObeysGreedyBound(t *testing.T) {
	// With every point profiled, greedy least-loaded placement bounds
	// the makespan: max shard load <= total/n + heaviest. Since
	// OPT >= total/n, this implies the LPT guarantee of
	// 4/3·OPT + heaviest the issue asks to pin.
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 40; trial++ {
		npoints := 1 + rng.Intn(60)
		pts := fakePoints(npoints, nil)
		walls := map[int]int64{}
		var total, heaviest int64
		for i := 0; i < npoints; i++ {
			w := 1 + rng.Int63n(20000)
			walls[i] = w
			total += w * int64(time.Millisecond)
			if w*int64(time.Millisecond) > heaviest {
				heaviest = w * int64(time.Millisecond)
			}
		}
		prof := profileFor(t, pts, walls)
		for n := 1; n <= 8; n++ {
			plan, err := PartitionWeighted("fake", false, pts, n, prof)
			if err != nil {
				t.Fatal(err)
			}
			var max int64
			for _, l := range plan.PredictedWallNs {
				if l > max {
					max = l
				}
			}
			bound := total/int64(n) + heaviest
			if max > bound {
				t.Fatalf("trial %d N=%d: max shard load %d exceeds greedy bound %d (total %d, heaviest %d)",
					trial, n, max, bound, total, heaviest)
			}
		}
	}
}

func TestWeightedPartitionEmptyProfileDegradesToRendezvous(t *testing.T) {
	pts := fakePoints(20, nil)
	empty, err := sweep.LoadProfile(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// A foreign profile (no overlap with these points) must degrade the
	// same way as an empty or nil one.
	foreign, _ := sweep.LoadProfile(t.TempDir())
	foreign.Observe("unrelated-fingerprint", time.Second)
	for n := 1; n <= 6; n++ {
		want, err := Partition("fake", false, pts, n)
		if err != nil {
			t.Fatal(err)
		}
		for name, prof := range map[string]*sweep.Profile{"nil": nil, "empty": empty, "foreign": foreign} {
			got, err := PartitionWeighted("fake", false, pts, n, prof)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("N=%d %s profile: weighted plan differs from the rendezvous partition:\ngot  %+v\nwant %+v", n, name, got, want)
			}
		}
	}
}

func TestWeightedPartitionDeterministic(t *testing.T) {
	pts := fakePoints(30, nil)
	walls := map[int]int64{}
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 30; i += 2 {
		walls[i] = 1 + rng.Int63n(5000)
	}
	prof := profileFor(t, pts, walls)
	for n := 2; n <= 5; n++ {
		p1, err := PartitionWeighted("fake", false, pts, n, prof)
		if err != nil {
			t.Fatal(err)
		}
		p2, err := PartitionWeighted("fake", false, pts, n, prof)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(p1, p2) {
			t.Fatalf("N=%d: weighted partition not deterministic", n)
		}
	}
}

func TestWeightedPartitionKeepsDuplicateFingerprintsTogether(t *testing.T) {
	// Points sharing a fingerprint (ViT runs keyed by physical config)
	// must land on one shard and cost one wall, not many.
	pts := make([]sweep.Point, 8)
	for i := range pts {
		pts[i] = sweep.Point{
			Key:         fmt.Sprintf("dup-%d", i),
			Fingerprint: sweep.Fingerprint("dup", i%2), // two distinct configs
		}
	}
	prof, _ := sweep.LoadProfile(t.TempDir())
	prof.Observe(pts[0].Fingerprint, 10*time.Second)
	prof.Observe(pts[1].Fingerprint, 10*time.Second)
	plan, err := PartitionWeighted("dup", false, pts, 2, prof)
	if err != nil {
		t.Fatal(err)
	}
	checkCover(t, plan, 8, 2)
	// Two equal-cost groups over two shards: LPT must split them one
	// per shard, each predicted at one wall.
	for k, ns := range plan.PredictedWallNs {
		if ns != (10 * time.Second).Nanoseconds() {
			t.Fatalf("shard %d predicted %d ns, want one 10s wall per shard (duplicates double-charged?)", k, ns)
		}
	}
}

func TestWeightedPlanNoWorseThanUnweighted(t *testing.T) {
	// The acceptance property: with a warm profile, the weighted plan's
	// predicted makespan is no worse than the rendezvous plan's
	// (evaluated under the same profile). Pinned over several seeded
	// profiles on a fig4-sized point set.
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(100 + seed))
		const npoints = 35
		pts := fakePoints(npoints, nil)
		walls := map[int]int64{}
		for i := 0; i < npoints; i++ {
			// Packet-size-sweep-like spread: most points cheap, a few 10x.
			w := 100 + rng.Int63n(900)
			if rng.Intn(5) == 0 {
				w *= 10
			}
			walls[i] = w
		}
		prof := profileFor(t, pts, walls)
		for n := 2; n <= 6; n++ {
			weighted, err := PartitionWeighted("fig4like", false, pts, n, prof)
			if err != nil {
				t.Fatal(err)
			}
			unweighted, err := Partition("fig4like", false, pts, n)
			if err != nil {
				t.Fatal(err)
			}
			maxW := predictedMax(weighted.PredictedWallNs)
			maxU := predictedMax(predictLoads(unweighted, pts, prof, n))
			if maxW > maxU {
				t.Fatalf("seed %d N=%d: weighted makespan %d exceeds unweighted %d", seed, n, maxW, maxU)
			}
		}
	}
}

// predictLoads evaluates an unweighted plan's per-shard load under the
// profile — the comparison baseline for the weighted plan.
func predictLoads(p *Plan, pts []sweep.Point, prof *sweep.Profile, n int) []int64 {
	loads := make([]int64, n)
	seen := map[string]bool{}
	for i, a := range p.Points {
		if seen[a.Fingerprint] {
			continue // duplicate fingerprints cost one wall
		}
		seen[a.Fingerprint] = true
		if w, ok := prof.Wall(pts[i].Fingerprint); ok {
			loads[a.Shard] += w.Nanoseconds()
		}
	}
	return loads
}

func predictedMax(loads []int64) int64 {
	var max int64
	for _, l := range loads {
		if l > max {
			max = l
		}
	}
	return max
}

// TestWeightedPartitionEqualLoadTieGoesToLowestShard pins the greedy
// LPT tie-break: when several shards carry equal load, the next group
// must land on the lowest shard index. Four equal-wall groups over
// two shards therefore alternate 0,1,0,1 — any other winner means the
// scan's comparison regressed to <= (or worse, map iteration).
func TestWeightedPartitionEqualLoadTieGoesToLowestShard(t *testing.T) {
	pts := fakePoints(4, nil)
	walls := map[int]int64{0: 50, 1: 50, 2: 50, 3: 50}
	plan, err := PartitionWeighted("tie", false, pts, 2, profileFor(t, pts, walls))
	if err != nil {
		t.Fatal(err)
	}
	// LPT order among equal walls is expansion order, so the shard
	// sequence is fully determined: 0 (tie 0==0), 1 (0 loaded), 0
	// (tie 50==50), 1.
	want := []int{0, 1, 0, 1}
	for i, a := range plan.Points {
		if a.Shard != want[i] {
			t.Fatalf("point %d on shard %d, want %d (plan %v)", i, a.Shard, want[i],
				[]int{plan.Points[0].Shard, plan.Points[1].Shard, plan.Points[2].Shard, plan.Points[3].Shard})
		}
	}
}

// TestWeightedPlanByteStable is the property test behind the
// determinism claim: for random point sets and profiles, repeated
// PartitionWeighted calls marshal to byte-identical plans.
func TestWeightedPlanByteStable(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 20; trial++ {
		npoints := 1 + rng.Intn(30)
		n := 1 + rng.Intn(5)
		pts := fakePoints(npoints, nil)
		walls := map[int]int64{}
		for i := 0; i < npoints; i++ {
			switch rng.Intn(3) {
			case 0: // unprofiled
			case 1: // a deliberate wall collision class
				walls[i] = 40
			default:
				walls[i] = 1 + int64(rng.Intn(100))
			}
		}
		prof := profileFor(t, pts, walls)
		base, err := PartitionWeighted("stable", false, pts, n, prof)
		if err != nil {
			t.Fatal(err)
		}
		want, err := base.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		for rep := 0; rep < 5; rep++ {
			plan, err := PartitionWeighted("stable", false, pts, n, prof)
			if err != nil {
				t.Fatal(err)
			}
			got, err := plan.Marshal()
			if err != nil {
				t.Fatal(err)
			}
			if string(got) != string(want) {
				t.Fatalf("trial %d rep %d: weighted plan not byte-stable:\n%s\nvs\n%s", trial, rep, want, got)
			}
		}
	}
}
