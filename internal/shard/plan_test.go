package shard

import (
	"strings"
	"testing"
	"time"

	"accesys/internal/sweep"
)

func TestPlanMarshalParseRoundTrip(t *testing.T) {
	pts := fakePoints(9, nil)
	prof, _ := sweep.LoadProfile(t.TempDir())
	for i := 0; i < 9; i += 2 {
		prof.Observe(pts[i].Fingerprint, time.Duration(i+1)*time.Second)
	}
	for name, mk := range map[string]func() (*Plan, error){
		"rendezvous": func() (*Plan, error) { return Partition("rt", false, pts, 3) },
		"weighted":   func() (*Plan, error) { return PartitionWeighted("rt", true, pts, 3, prof) },
	} {
		plan, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		data, err := plan.Marshal()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got, err := ParsePlan(data)
		if err != nil {
			t.Fatalf("%s: marshal output does not parse: %v", name, err)
		}
		again, err := got.Marshal()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if string(data) != string(again) {
			t.Fatalf("%s: round trip unstable:\n--- first\n%s\n--- second\n%s", name, data, again)
		}
	}
}

func TestParsePlanRejectsInvalid(t *testing.T) {
	pts := fakePoints(4, nil)
	valid, err := Partition("v", false, pts, 2)
	if err != nil {
		t.Fatal(err)
	}
	base, err := valid.Marshal()
	if err != nil {
		t.Fatal(err)
	}

	cases := map[string]func(p *Plan){
		"zero shards":          func(p *Plan) { p.Shards = 0 },
		"counts length":        func(p *Plan) { p.Counts = p.Counts[:1] },
		"counts mismatch":      func(p *Plan) { p.Counts[0]++ },
		"index out of order":   func(p *Plan) { p.Points[0].Index = 3 },
		"shard out of range":   func(p *Plan) { p.Points[0].Shard = 9 },
		"non-digest":           func(p *Plan) { p.Points[0].Fingerprint = "zz" },
		"missing name":         func(p *Plan) { p.Scenario = "" },
		"split fingerprint":    func(p *Plan) { p.Points[1].Fingerprint = p.Points[0].Fingerprint },
		"unweighted wall data": func(p *Plan) { p.PredictedWallNs = []int64{1, 2} },
		"weighted no walls":    func(p *Plan) { p.Weighted = true; p.Profiled = 1 },
	}
	for name, mut := range cases {
		p, err := ParsePlan(base)
		if err != nil {
			t.Fatal(err)
		}
		mut(p)
		// "split fingerprint" mutation may coincide with equal shards;
		// force a disagreement.
		if name == "split fingerprint" {
			p.Points[1].Shard = 1 - p.Points[0].Shard
			p.Counts = nil
			p.Counts = []int{0, 0}
			for _, a := range p.Points {
				p.Counts[a.Shard]++
			}
		}
		if err := p.Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}

	for name, data := range map[string]string{
		"unknown field": `{"scenario":"x","shards":1,"counts":[0],"points":[],"bogus":1}`,
		"trailing data": `{"scenario":"x","shards":1,"counts":[0],"points":[]} {}`,
		"not json":      `]`,
	} {
		if _, err := ParsePlan([]byte(data)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestParsePlanAcceptsPlanOutput(t *testing.T) {
	// The exact bytes `accesys shard plan` prints (Marshal) round-trip
	// through ParsePlan with Select still working.
	pts := fakePoints(6, nil)
	plan, err := Partition("cli", false, pts, 2)
	if err != nil {
		t.Fatal(err)
	}
	data, err := plan.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParsePlan(data)
	if err != nil {
		t.Fatal(err)
	}
	total := len(got.Select(0)) + len(got.Select(1))
	if total != 6 {
		t.Fatalf("parsed plan selects %d of 6 points", total)
	}
	if !strings.Contains(string(data), `"scenario": "cli"`) {
		t.Fatalf("marshaled plan missing scenario:\n%s", data)
	}
}
