// Package shard distributes a sweep across worker processes: it
// partitions a scenario's expanded points into K disjoint shards by
// rendezvous-hashing their configuration fingerprints, runs one
// shard's slice through the sweep engine into a self-contained cache
// directory, and merges N such directories back into one canonical
// cache. Because outcomes are keyed by content hash, a merged cache
// warm-hits exactly like a single-process run — the partition only
// decides *where* each point simulates, never *what* it produces.
//
// Rendezvous hashing (highest-random-weight) makes the partition
// stable under resizing: going from N to N+1 shards moves only the
// points the new shard wins, everything else stays put. The hash is
// over the raw (unsalted) fingerprint, so a plan is independent of the
// simulator build and of execution knobs like the worker-pool size.
package shard

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"io"
	"strconv"

	"accesys/internal/sweep"
)

// partitionVersion salts every rendezvous score; bump it to reshuffle
// all partitions when the scheme changes incompatibly.
const partitionVersion = "shard/v1"

// score is shard k's rendezvous weight for the fingerprint.
func score(k int, fingerprint string) [sha256.Size]byte {
	h := sha256.New()
	io.WriteString(h, partitionVersion)
	h.Write([]byte{0})
	io.WriteString(h, strconv.Itoa(k))
	h.Write([]byte{0})
	io.WriteString(h, fingerprint)
	var s [sha256.Size]byte
	h.Sum(s[:0])
	return s
}

// Assign returns the rendezvous shard (0-based) for the fingerprint
// among n shards: the shard with the highest score wins. Equal
// fingerprints always land on the same shard, and the winner among the
// first n shards is unaffected by shards ≥ n — the stability property
// the partition tests pin.
func Assign(fingerprint string, n int) int {
	best, bestScore := 0, score(0, fingerprint)
	for k := 1; k < n; k++ {
		if s := score(k, fingerprint); bytes.Compare(s[:], bestScore[:]) > 0 {
			best, bestScore = k, s
		}
	}
	return best
}

// Digest is the hex SHA-256 of a raw fingerprint — how plans and
// summaries reference points without embedding the full (long)
// fingerprint material. It is the same identity wall-time profiles
// key on (sweep.Digest), so a plan's fingerprints look up profiled
// walls directly.
func Digest(fingerprint string) string { return sweep.Digest(fingerprint) }

// Assignment places one expanded point in the partition.
type Assignment struct {
	// Index is the point's position in the scenario's expansion order.
	Index int `json:"index"`
	// Key is the point's sweep label.
	Key string `json:"key"`
	// Fingerprint is the Digest of the point's raw fingerprint.
	Fingerprint string `json:"fingerprint"`
	// Shard is the assigned shard, in [0, Shards).
	Shard int `json:"shard"`
}

// Plan is the deterministic partition of one expanded scenario into
// disjoint shards — what `accesys shard plan` prints for external
// schedulers, and what workers revalidate their slice against.
type Plan struct {
	// Scenario names the partitioned scenario.
	Scenario string `json:"scenario"`
	// Full records whether the expansion used paper-scale sizes.
	Full bool `json:"full"`
	// Shards is the partition width K.
	Shards int `json:"shards"`
	// Counts is the per-shard point count (len == Shards).
	Counts []int `json:"counts"`
	// Weighted reports whether measured wall times drove the partition
	// (greedy LPT over a profile); false means pure rendezvous hashing.
	Weighted bool `json:"weighted,omitempty"`
	// Profiled counts the points whose fingerprints had profiled walls
	// (weighted plans only).
	Profiled int `json:"profiled,omitempty"`
	// PredictedWallNs is the per-shard predicted wall time in
	// nanoseconds (len == Shards; weighted plans only). Unprofiled
	// points contribute the mean profiled wall.
	PredictedWallNs []int64 `json:"predicted_wall_ns,omitempty"`
	// Points assigns every expanded point, in expansion order.
	Points []Assignment `json:"points"`
}

// Partition assigns every point to one of n shards by
// rendezvous-hashing its fingerprint. Points sharing a fingerprint
// (e.g. ViT scenarios keyed by physical config) land on the same
// shard, so no result is simulated twice across the fleet. Points
// must all carry fingerprints — an uncacheable point has no location
// to merge from.
func Partition(scenarioName string, full bool, points []sweep.Point, n int) (*Plan, error) {
	if n < 1 {
		return nil, fmt.Errorf("shard: need at least one shard, have %d", n)
	}
	p := &Plan{
		Scenario: scenarioName,
		Full:     full,
		Shards:   n,
		Counts:   make([]int, n),
		Points:   make([]Assignment, len(points)),
	}
	for i, pt := range points {
		if pt.Fingerprint == "" {
			return nil, fmt.Errorf("shard: point %q has no fingerprint; uncacheable points cannot be sharded", pt.Key)
		}
		k := Assign(pt.Fingerprint, n)
		p.Points[i] = Assignment{Index: i, Key: pt.Key, Fingerprint: Digest(pt.Fingerprint), Shard: k}
		p.Counts[k]++
	}
	return p, nil
}

// Select returns the expansion indexes assigned to shard k, in
// expansion order.
func (p *Plan) Select(k int) []int {
	var idx []int
	for _, a := range p.Points {
		if a.Shard == k {
			idx = append(idx, a.Index)
		}
	}
	return idx
}
