package shard

// The weighted partitioner: when a wall-time profile knows how long
// points actually take, balancing by point count wastes fleet time —
// one shard full of 2048-size GEMMs finishes long after a shard of
// small ones. PartitionWeighted schedules profiled points greedily
// onto the least-loaded shard in longest-processing-time order (LPT,
// makespan <= 4/3·OPT + one point of slack), and falls back to the
// PR 4 rendezvous placement for points the profile has never seen, so
// an empty profile degrades to exactly the unweighted partition.

import (
	"fmt"
	"sort"

	"accesys/internal/sweep"
)

// group is one fingerprint's worth of points: duplicates (e.g. ViT
// scenarios keyed by physical config) must share a shard so no result
// simulates twice, and only the first run is cold, so the group costs
// one wall regardless of its size.
type group struct {
	fingerprint string // raw
	indexes     []int  // expansion indexes, ascending
	wallNs      int64  // profiled wall; 0 when unprofiled
	profiled    bool
}

// PartitionWeighted assigns every point to one of n shards, balancing
// predicted wall time using the profile's estimates. Unprofiled
// fingerprints keep their rendezvous placement (charged at the mean
// profiled wall); profiled fingerprints are placed greedily in LPT
// order onto the least-loaded shard. The result is deterministic given
// the same points and profile state. A nil or empty-overlap profile
// returns exactly Partition's plan.
func PartitionWeighted(scenarioName string, full bool, points []sweep.Point, n int, prof *sweep.Profile) (*Plan, error) {
	if n < 1 {
		return nil, fmt.Errorf("shard: need at least one shard, have %d", n)
	}

	// Group points by fingerprint in first-appearance order.
	var groups []*group
	byFP := map[string]*group{}
	profiledPoints := 0
	for i, pt := range points {
		if pt.Fingerprint == "" {
			return nil, fmt.Errorf("shard: point %q has no fingerprint; uncacheable points cannot be sharded", pt.Key)
		}
		g, ok := byFP[pt.Fingerprint]
		if !ok {
			g = &group{fingerprint: pt.Fingerprint}
			if prof != nil {
				if w, found := prof.Wall(pt.Fingerprint); found {
					g.wallNs = w.Nanoseconds()
					g.profiled = true
				}
			}
			byFP[pt.Fingerprint] = g
			groups = append(groups, g)
		}
		g.indexes = append(g.indexes, i)
		if g.profiled {
			profiledPoints++
		}
	}

	var profiled []*group
	var meanNs, totalNs int64
	for _, g := range groups {
		if g.profiled {
			profiled = append(profiled, g)
			totalNs += g.wallNs
		}
	}
	if len(profiled) == 0 {
		// Nothing to balance on: the unweighted partition, exactly.
		return Partition(scenarioName, full, points, n)
	}
	meanNs = totalNs / int64(len(profiled))
	if meanNs < 1 {
		meanNs = 1
	}

	// Unprofiled groups keep their rendezvous shard (stable placement:
	// profiling more points never shuffles the unprofiled remainder),
	// charged at the mean profiled wall.
	loads := make([]int64, n)
	assigned := map[string]int{}
	for _, g := range groups {
		if g.profiled {
			continue
		}
		k := Assign(g.fingerprint, n)
		assigned[g.fingerprint] = k
		loads[k] += meanNs
	}

	// LPT: heaviest profiled group first onto the least-loaded shard.
	// Equal-wall groups order by earliest expansion index, and the
	// least-loaded scan uses a strict < so shards carrying equal load
	// always lose to the lowest shard index — both tie-breaks are
	// pinned (TestWeightedPartitionEqualLoadTieGoesToLowestShard), so
	// weighted plans are byte-stable across runs and hosts.
	sort.SliceStable(profiled, func(a, b int) bool {
		if profiled[a].wallNs != profiled[b].wallNs {
			return profiled[a].wallNs > profiled[b].wallNs
		}
		return profiled[a].indexes[0] < profiled[b].indexes[0]
	})
	for _, g := range profiled {
		best := 0
		for k := 1; k < n; k++ {
			if loads[k] < loads[best] {
				best = k
			}
		}
		assigned[g.fingerprint] = best
		loads[best] += g.wallNs
	}

	p := &Plan{
		Scenario:        scenarioName,
		Full:            full,
		Shards:          n,
		Counts:          make([]int, n),
		Weighted:        true,
		Profiled:        profiledPoints,
		PredictedWallNs: loads,
	}
	p.Points = make([]Assignment, len(points))
	for i, pt := range points {
		k := assigned[pt.Fingerprint]
		p.Points[i] = Assignment{Index: i, Key: pt.Key, Fingerprint: Digest(pt.Fingerprint), Shard: k}
		p.Counts[k]++
	}
	return p, nil
}
